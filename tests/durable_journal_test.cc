// Crash-consistency sweep for the durable write-ahead journal (journal.h,
// INTERNALS.md §16): kill the instance at EVERY journal entry boundary —
// and mid-record, leaving a torn prefix — under every commit protocol and
// both dispatch engines, then prove that RecoverFromJournal lands the
// instance bit-identically on fully-old or fully-new text, never torn.
// A corrupt log (truncation, bit flips) must be structurally rejected or
// cleanly recovered, never crash the recovery or silently produce text that
// matches no committed state.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/journal.h"
#include "src/core/program.h"
#include "src/core/txn.h"
#include "src/livepatch/livepatch.h"
#include "src/support/faultpoint.h"
#include "src/vm/superblock.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

constexpr char kSource[] = R"(
__attribute__((multiverse)) bool feature;
long count;
__attribute__((multiverse))
void tick() { if (feature) { count = count + 2; } else { count = count + 1; } }
long run(long n) { long i; for (i = 0; i < n; ++i) { tick(); } return count; }
)";

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

enum class CommitPath { kPlain, kQuiescence, kBreakpoint, kWaitFree };

const char* CommitPathName(CommitPath path) {
  switch (path) {
    case CommitPath::kPlain:
      return "plain";
    case CommitPath::kQuiescence:
      return "quiescence";
    case CommitPath::kBreakpoint:
      return "breakpoint";
    case CommitPath::kWaitFree:
      return "waitfree";
  }
  return "?";
}

struct JournalSweepConfig {
  DispatchEngine engine;
  CommitPath path;
};

std::vector<uint8_t> TextOf(Program* program) {
  std::vector<uint8_t> text(program->image().text_size);
  EXPECT_TRUE(program->vm()
                  .memory()
                  .ReadRaw(program->image().text_base, text.data(), text.size())
                  .ok());
  return text;
}

class DurableJournalSweepTest
    : public ::testing::TestWithParam<JournalSweepConfig> {
 protected:
  void SetUp() override { SetDefaultDispatchEngine(GetParam().engine); }
  void TearDown() override { SetDefaultDispatchEngine(DispatchEngine::kLegacy); }

  // A fresh boot-state program with `feature` staged for commit and `wal`
  // attached to the runtime's transaction options.
  std::unique_ptr<Program> Build(DurableJournal* wal, int64_t feature = 1) {
    Result<std::unique_ptr<Program>> built =
        Program::Build({{"journal", kSource}}, BuildOptions{});
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    std::unique_ptr<Program> program = std::move(*built);
    EXPECT_TRUE(program->WriteGlobal("feature", feature, 1).ok());
    TxnOptions txn;
    txn.max_attempts = 1;
    txn.wal = wal;
    program->runtime().set_txn_options(txn);
    return program;
  }

  // One journaled commit through the configured protocol.
  Status DoCommit(Program* program, DurableJournal* wal) {
    if (GetParam().path == CommitPath::kPlain) {
      return program->runtime().Commit().status();
    }
    LiveCommitOptions options;
    switch (GetParam().path) {
      case CommitPath::kQuiescence:
        options.protocol = CommitProtocol::kQuiescence;
        break;
      case CommitPath::kBreakpoint:
        options.protocol = CommitProtocol::kBreakpoint;
        break;
      case CommitPath::kWaitFree:
        options.protocol = CommitProtocol::kWaitFree;
        break;
      case CommitPath::kPlain:
        break;  // handled above
    }
    options.txn.max_attempts = 1;
    options.txn.wal = wal;
    return multiverse_commit_live(&program->vm(), &program->runtime(), options)
        .status();
  }

  // Crash-at-every-boundary sweep. `torn` selects mid-record death (a torn
  // prefix survives in the log) vs clean entry-boundary death.
  void SweepCrashes(bool torn) {
    // Calibrate: a clean journaled commit's append count (every append
    // crosses both crash sites), plus the fully-old and fully-new texts.
    DurableJournal probe_wal;
    std::unique_ptr<Program> twin = Build(&probe_wal);
    const std::vector<uint8_t> pristine_text = TextOf(twin.get());
    FaultInjector& injector = FaultInjector::Instance();
    const uint64_t before = injector.Count(FaultSite::kCrash);
    ASSERT_TRUE(DoCommit(twin.get(), &probe_wal).ok());
    const uint64_t appends = injector.Count(FaultSite::kCrash) - before;
    ASSERT_GT(appends, 2u) << "journaled commit must append begin+ops+seal";
    const std::vector<uint8_t> committed_text = TextOf(twin.get());
    ASSERT_NE(committed_text, pristine_text);

    const FaultSite site = torn ? FaultSite::kCrashTorn : FaultSite::kCrash;
    int recovered_old = 0;
    int recovered_new = 0;
    for (uint64_t hit = 0; hit < appends; ++hit) {
      SCOPED_TRACE(std::string(torn ? "torn" : "boundary") + " crash at append " +
                   std::to_string(hit));
      DurableJournal wal;
      std::unique_ptr<Program> program = Build(&wal);
      Status status;
      {
        ScopedFault fault(site, hit);
        status = DoCommit(program.get(), &wal);
      }
      ASSERT_FALSE(status.ok());
      ASSERT_TRUE(IsSimulatedCrash(status)) << status.ToString();
      ASSERT_TRUE(wal.dead());
      if (torn) {
        size_t torn_tail = 0;
        (void)wal.Parse(&torn_tail);
        EXPECT_GT(torn_tail, 0u) << "mid-record death must leave a torn prefix";
      }

      // Recover on the dead VM in place: its memory is the core image.
      Result<RecoveryOutcome> outcome =
          RecoverFromJournal(&program->vm(), &program->image(), &wal);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      const std::vector<uint8_t> recovered_text = TextOf(program.get());
      if (recovered_text == pristine_text) {
        ++recovered_old;
      } else if (recovered_text == committed_text) {
        ++recovered_new;
      } else {
        FAIL() << "recovered text matches neither fully-old nor fully-new";
      }
      EXPECT_EQ(outcome->final_text_checksum,
                TextChecksumOf(program->vm(), program->image()));
      // The log is resolved: torn tail dropped, a kRecovery record appended.
      size_t tail_after = 0;
      const std::vector<WalRecord> records = wal.Parse(&tail_after);
      EXPECT_EQ(tail_after, 0u);
      ASSERT_FALSE(records.empty());
      EXPECT_EQ(records.back().kind, WalRecordKind::kRecovery);

      // The same journal replayed onto a freshly rebuilt boot-state twin
      // must converge to the identical text (idempotent forcible writes).
      DurableJournal replica_wal;
      replica_wal.SetBytes(wal.bytes());
      std::unique_ptr<Program> replica = Build(nullptr);
      Result<RecoveryOutcome> replay =
          RecoverFromJournal(&replica->vm(), &replica->image(), &replica_wal);
      ASSERT_TRUE(replay.ok()) << replay.status().ToString();
      EXPECT_EQ(TextOf(replica.get()), recovered_text);
    }
    // An unsealed trailing transaction must have been undone at least once;
    // crashing at the very first boundary also recovers fully-old.
    EXPECT_GT(recovered_old, 0);
    // Within a single transaction the seal is the last append, so every
    // crash recovers fully-old; the fully-new side is swept by
    // TwoTransactionCrashRecoversEitherSide below.
    (void)recovered_new;
  }
};

TEST_P(DurableJournalSweepTest, CrashAtEveryEntryBoundaryIsNeverTorn) {
  SweepCrashes(/*torn=*/false);
}

TEST_P(DurableJournalSweepTest, TornRecordAtEveryBoundaryIsNeverTorn) {
  SweepCrashes(/*torn=*/true);
}

std::string JournalConfigName(
    const ::testing::TestParamInfo<JournalSweepConfig>& info) {
  return std::string(DispatchEngineName(info.param.engine)) + "_" +
         CommitPathName(info.param.path);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DurableJournalSweepTest,
    ::testing::Values(
        JournalSweepConfig{DispatchEngine::kLegacy, CommitPath::kPlain},
        JournalSweepConfig{DispatchEngine::kLegacy, CommitPath::kQuiescence},
        JournalSweepConfig{DispatchEngine::kLegacy, CommitPath::kBreakpoint},
        JournalSweepConfig{DispatchEngine::kLegacy, CommitPath::kWaitFree},
        JournalSweepConfig{DispatchEngine::kSuperblock, CommitPath::kPlain},
        JournalSweepConfig{DispatchEngine::kSuperblock, CommitPath::kQuiescence},
        JournalSweepConfig{DispatchEngine::kSuperblock, CommitPath::kBreakpoint},
        JournalSweepConfig{DispatchEngine::kSuperblock, CommitPath::kWaitFree}),
    JournalConfigName);

// Round-trip: every record kind serializes and parses back field-exact.
TEST(DurableJournalFormat, SerializationRoundTrip) {
  DurableJournal wal;
  const uint8_t old_bytes[5] = {0x11, 0x22, 0x33, 0x44, 0x55};
  const uint8_t new_bytes[5] = {0xaa, 0xbb, 0xcc, 0xdd, 0xee};
  ASSERT_TRUE(wal.AppendSwitchSet(0x2000, 4, 7, 9).ok());
  ASSERT_TRUE(wal.AppendTxnBegin(1, 2, 0xfeedull).ok());
  ASSERT_TRUE(wal.AppendOp(1, 0, 0x1004, 5, old_bytes, new_bytes, 5).ok());
  ASSERT_TRUE(wal.AppendOp(1, 1, 0x1010, 5, old_bytes, new_bytes, 5).ok());
  ASSERT_TRUE(wal.AppendSeal(1, 0xbeefull).ok());
  ASSERT_TRUE(wal.AppendTxnBegin(2, 1, 0xbeefull).ok());
  ASSERT_TRUE(wal.AppendAbort(2).ok());
  ASSERT_TRUE(wal.AppendRecovery(0xbeefull).ok());

  size_t torn_tail = 0;
  const std::vector<WalRecord> records = wal.Parse(&torn_tail);
  EXPECT_EQ(torn_tail, 0u);
  ASSERT_EQ(records.size(), 8u);
  EXPECT_EQ(wal.record_count(), 8u);

  EXPECT_EQ(records[0].kind, WalRecordKind::kSwitchSet);
  EXPECT_EQ(records[0].addr, 0x2000u);
  EXPECT_EQ(records[0].width, 4u);
  EXPECT_EQ(records[0].old_bytes[0], 7u);
  EXPECT_EQ(records[0].new_bytes[0], 9u);

  EXPECT_EQ(records[1].kind, WalRecordKind::kTxnBegin);
  EXPECT_EQ(records[1].txn_id, 1u);
  EXPECT_EQ(records[1].op_count, 2u);
  EXPECT_EQ(records[1].checksum, 0xfeedull);

  EXPECT_EQ(records[2].kind, WalRecordKind::kOp);
  EXPECT_EQ(records[2].txn_id, 1u);
  EXPECT_EQ(records[2].op_index, 0u);
  EXPECT_EQ(records[2].addr, 0x1004u);
  EXPECT_EQ(records[2].perms, 5u);
  EXPECT_EQ(records[2].width, 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records[2].old_bytes[i], old_bytes[i]);
    EXPECT_EQ(records[2].new_bytes[i], new_bytes[i]);
  }
  EXPECT_EQ(records[3].op_index, 1u);

  EXPECT_EQ(records[4].kind, WalRecordKind::kSeal);
  EXPECT_EQ(records[4].checksum, 0xbeefull);

  EXPECT_EQ(records[5].kind, WalRecordKind::kTxnBegin);
  EXPECT_EQ(records[6].kind, WalRecordKind::kAbort);
  EXPECT_EQ(records[6].txn_id, 2u);

  EXPECT_EQ(records[7].kind, WalRecordKind::kRecovery);
  EXPECT_EQ(records[7].checksum, 0xbeefull);
}

// A journal with a sealed first transaction and a crash inside the second
// must recover to EITHER side depending on the boundary — and the sweep must
// see both sides.
TEST(DurableJournalTwoTxn, TwoTransactionCrashRecoversEitherSide) {
  const auto build = [](DurableJournal* wal, int64_t feature) {
    Result<std::unique_ptr<Program>> built =
        Program::Build({{"twotxn", kSource}}, BuildOptions{});
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    std::unique_ptr<Program> program = std::move(*built);
    EXPECT_TRUE(program->WriteGlobal("feature", feature, 1).ok());
    TxnOptions txn;
    txn.max_attempts = 1;
    txn.wal = wal;
    program->runtime().set_txn_options(txn);
    return program;
  };

  // Calibrate state1 (feature=1 committed), state2 (feature=0 recommitted)
  // and the append counts of the second and third transactions.
  DurableJournal probe_wal;
  std::unique_ptr<Program> twin = build(&probe_wal, 1);
  ASSERT_TRUE(twin->runtime().Commit().ok());
  const std::vector<uint8_t> state1_text = TextOf(twin.get());
  ASSERT_TRUE(twin->WriteGlobal("feature", 0, 1).ok());
  FaultInjector& injector = FaultInjector::Instance();
  const uint64_t before2 = injector.Count(FaultSite::kCrash);
  ASSERT_TRUE(twin->runtime().Commit().ok());
  const uint64_t appends2 = injector.Count(FaultSite::kCrash) - before2;
  ASSERT_GT(appends2, 2u);
  const std::vector<uint8_t> state2_text = TextOf(twin.get());
  ASSERT_NE(state2_text, state1_text);
  ASSERT_TRUE(twin->WriteGlobal("feature", 1, 1).ok());
  const uint64_t before3 = injector.Count(FaultSite::kCrash);
  ASSERT_TRUE(twin->runtime().Commit().ok());
  const uint64_t appends3 = injector.Count(FaultSite::kCrash) - before3;
  ASSERT_GT(appends3, 2u);

  // The flip under test is the second transaction (state1 -> state2). The
  // seal record is the last append of a commit, so a crash at any of the
  // flip's own boundaries leaves it unsealed and recovers fully-old; the
  // fully-new side appears once the seal is durable — crash at any boundary
  // AFTER it (inside the third transaction) and recovery redoes the sealed
  // flip. The sweep must see both sides and nothing in between.
  int recovered_state1 = 0;
  int recovered_state2 = 0;
  for (uint64_t hit = 0; hit < appends2 + appends3; ++hit) {
    SCOPED_TRACE("post-txn1 crash at append " + std::to_string(hit));
    DurableJournal wal;
    std::unique_ptr<Program> program = build(&wal, 1);
    ASSERT_TRUE(program->runtime().Commit().ok());
    ASSERT_TRUE(program->WriteGlobal("feature", 0, 1).ok());
    Status status;
    {
      ScopedFault fault(FaultSite::kCrash, hit);
      status = program->runtime().Commit().status();
      if (status.ok()) {
        // The armed boundary lies beyond the flip: die in the next txn.
        ASSERT_TRUE(program->WriteGlobal("feature", 1, 1).ok());
        status = program->runtime().Commit().status();
      }
    }
    ASSERT_FALSE(status.ok());
    ASSERT_TRUE(IsSimulatedCrash(status)) << status.ToString();

    Result<RecoveryOutcome> outcome =
        RecoverFromJournal(&program->vm(), &program->image(), &wal);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    const std::vector<uint8_t> recovered = TextOf(program.get());
    if (recovered == state1_text) {
      ++recovered_state1;
      EXPECT_LT(hit, appends2) << "flip sealed but recovered fully-old";
    } else if (recovered == state2_text) {
      ++recovered_state2;
      EXPECT_GE(hit, appends2) << "flip unsealed but recovered fully-new";
      EXPECT_GE(outcome->txns_redone, 2);
    } else {
      FAIL() << "recovered text matches neither committed state";
    }
    // Sealed txns must replay forward even onto a boot-state twin; at most
    // the one in-flight txn is undone (none when the crash beat its begin
    // record to the log).
    EXPECT_GE(outcome->txns_redone, 1);
    EXPECT_LE(outcome->txns_undone, 1);
    DurableJournal replica_wal;
    replica_wal.SetBytes(wal.bytes());
    std::unique_ptr<Program> replica = build(nullptr, 1);
    Result<RecoveryOutcome> replay =
        RecoverFromJournal(&replica->vm(), &replica->image(), &replica_wal);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_EQ(TextOf(replica.get()), recovered);
  }
  EXPECT_GT(recovered_state1, 0) << "no crash recovered fully-old (state 1)";
  EXPECT_GT(recovered_state2, 0) << "no crash recovered fully-new (state 2)";
}

// 256-seed corruption fuzz: truncate at a random offset or flip a random
// bit, then recover onto a fresh boot twin. Every outcome must be either a
// structured reject or a clean recovery onto one of the three committed
// states — never a crash, never silent text that matches no state.
TEST(DurableJournalFuzz, TruncatedOrBitFlippedLogNeverYieldsSilentBadText) {
  DurableJournal base_wal;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"fuzz", kSource}}, BuildOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::unique_ptr<Program> program = std::move(*built);
  ASSERT_TRUE(program->WriteGlobal("feature", 1, 1).ok());
  TxnOptions txn;
  txn.wal = &base_wal;
  program->runtime().set_txn_options(txn);
  const std::vector<uint8_t> pristine_text = TextOf(program.get());
  ASSERT_TRUE(program->runtime().Commit().ok());
  const std::vector<uint8_t> state1_text = TextOf(program.get());
  ASSERT_TRUE(program->WriteGlobal("feature", 0, 1).ok());
  ASSERT_TRUE(program->runtime().Commit().ok());
  const std::vector<uint8_t> state2_text = TextOf(program.get());
  const std::vector<uint8_t> base_bytes = base_wal.bytes();
  ASSERT_GT(base_bytes.size(), 16u);

  int rejected = 0;
  int recovered = 0;
  for (uint64_t seed = 0; seed < 256; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    std::vector<uint8_t> mutated = base_bytes;
    if (seed % 2 == 0) {
      mutated.resize(Mix64(seed) % (mutated.size() + 1));
    } else {
      const size_t bit = Mix64(seed) % (mutated.size() * 8);
      mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    DurableJournal wal;
    wal.SetBytes(std::move(mutated));

    Result<std::unique_ptr<Program>> twin_built =
        Program::Build({{"fuzz", kSource}}, BuildOptions{});
    ASSERT_TRUE(twin_built.ok());
    std::unique_ptr<Program> twin = std::move(*twin_built);
    Result<RecoveryOutcome> outcome =
        RecoverFromJournal(&twin->vm(), &twin->image(), &wal);
    if (!outcome.ok()) {
      ++rejected;
      EXPECT_FALSE(outcome.status().message().empty());
      continue;
    }
    ++recovered;
    const std::vector<uint8_t> text = TextOf(twin.get());
    EXPECT_TRUE(text == pristine_text || text == state1_text ||
                text == state2_text)
        << "clean recovery must land on a committed state";
    // The resolved log must itself be reparseable with no torn tail.
    size_t tail = 0;
    (void)wal.Parse(&tail);
    EXPECT_EQ(tail, 0u);
  }
  // Clean recovery must be represented (a reject-only fuzz would mean the
  // parser lost its torn-tail tolerance); rejects depend on where the
  // damage lands, so they are counted but not required.
  EXPECT_GT(recovered, 0);
  (void)rejected;
}

}  // namespace
}  // namespace mv

// Unit tests for the transactional commit machinery (src/core/txn.h): the
// write-ahead PatchJournal (validate / apply / seal / rollback), the
// RunCommitTxn retry driver, and the runtime-level integration — every
// Table 1 operation recovering from injected faults (src/support/faultpoint.h)
// with bounded retry, and degrading to the pre-commit image when retry is
// exhausted.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/patching.h"
#include "src/core/program.h"
#include "src/core/txn.h"
#include "src/isa/cost_model.h"
#include "src/support/faultpoint.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

constexpr uint64_t kText = 0x1000;
constexpr uint64_t kTextSize = 0x4000;

// Raw-VM harness: a text segment with a recognizable byte pattern, no
// decodable program needed (the journal audits bytes and protections, it
// never decodes).
class JournalHarness {
 public:
  JournalHarness() : vm_(0x40000, 1) {
    EXPECT_TRUE(vm_.memory().Protect(kText, kTextSize, kPermRead | kPermExec).ok());
    EXPECT_TRUE(
        vm_.memory().Protect(0x10000, 0x10000, kPermRead | kPermWrite).ok());
    std::vector<uint8_t> pattern(kTextSize);
    for (size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<uint8_t>(0xA0 + (i % 16));
    }
    EXPECT_TRUE(vm_.memory().WriteRaw(kText, pattern.data(), pattern.size()).ok());
    vm_.FlushAllIcache();
  }

  // A plan op whose old_bytes are read from memory and whose new_bytes are
  // `fill` repeated.
  PatchOp MakeOp(uint64_t addr, uint8_t fill) {
    PatchOp op;
    op.addr = addr;
    EXPECT_TRUE(vm_.memory().ReadRaw(addr, op.old_bytes.data(), 5).ok());
    op.new_bytes.fill(fill);
    return op;
  }

  std::vector<uint8_t> Snapshot(uint64_t addr, uint64_t len) {
    std::vector<uint8_t> bytes(len);
    EXPECT_TRUE(vm_.memory().ReadRaw(addr, bytes.data(), len).ok());
    return bytes;
  }

  Vm& vm() { return vm_; }

 private:
  Vm vm_;
};

// --- Begin / Validate -------------------------------------------------------

TEST(PatchJournalTest, BeginRejectsOpOutsideGuestMemory) {
  JournalHarness h;
  PatchOp op;
  op.addr = h.vm().memory().size() - 2;  // 5-byte window runs off the end
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), nullptr, {op}, /*validate=*/false);
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(journal.status().ToString().find("outside guest memory"),
            std::string::npos);
}

TEST(PatchJournalTest, ValidateRejectsOpOutsideImageText) {
  JournalHarness h;
  Image image;
  image.text_base = kText;
  image.text_size = 0x100;
  PatchOp op = h.MakeOp(kText + 0x200, 0x11);  // mapped, but past image text
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), &image, {op}, /*validate=*/true);
  ASSERT_FALSE(journal.ok());
  EXPECT_NE(journal.status().ToString().find("outside the image text segment"),
            std::string::npos);
}

TEST(PatchJournalTest, ValidateRejectsNonExecutablePage) {
  JournalHarness h;
  PatchOp op = h.MakeOp(0x10000, 0x11);  // the RW data region
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), nullptr, {op}, /*validate=*/true);
  ASSERT_FALSE(journal.ok());
  EXPECT_NE(journal.status().ToString().find("non-executable"), std::string::npos);
}

TEST(PatchJournalTest, ValidateRejectsPreViolatedWX) {
  JournalHarness h;
  ASSERT_TRUE(h.vm()
                  .memory()
                  .Protect(kText, kPageSize, kPermRead | kPermWrite | kPermExec)
                  .ok());
  PatchOp op = h.MakeOp(kText + 8, 0x11);
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), nullptr, {op}, /*validate=*/true);
  ASSERT_FALSE(journal.ok());
  EXPECT_NE(journal.status().ToString().find("W^X violated"), std::string::npos);
}

TEST(PatchJournalTest, ValidateRejectsStaleExpectedBytes) {
  JournalHarness h;
  PatchOp op = h.MakeOp(kText, 0x11);
  op.old_bytes[2] ^= 0xFF;  // planner's view no longer matches memory
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), nullptr, {op}, /*validate=*/true);
  ASSERT_FALSE(journal.ok());
  EXPECT_NE(journal.status().ToString().find("expected bytes not present"),
            std::string::npos);

  // The same plan passes with validation off (the escape hatch tests use).
  EXPECT_TRUE(PatchJournal::Begin(&h.vm(), nullptr, {op}, /*validate=*/false).ok());
}

// --- Apply / Seal -----------------------------------------------------------

TEST(PatchJournalTest, ApplySealRoundTripPreservesWX) {
  JournalHarness h;
  const PatchPlan plan = {h.MakeOp(kText, 0x11), h.MakeOp(kText + 0x20, 0x22)};
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), nullptr, plan, /*validate=*/true);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  const uint64_t flushes_before = h.vm().icache_flushes();
  TxnOptions options;
  for (size_t i = 0; i < plan.size(); ++i) {
    ASSERT_TRUE(journal->ApplyOp(i, options).ok());
    EXPECT_TRUE(journal->touched(i));
  }
  EXPECT_GE(h.vm().icache_flushes(), flushes_before + plan.size());

  TxnStats stats;
  ASSERT_TRUE(journal->Seal(&stats).ok());
  EXPECT_EQ(stats.reflushes, 0);
  for (const PatchOp& op : plan) {
    std::array<uint8_t, 5> current{};
    ASSERT_TRUE(h.vm().memory().ReadRaw(op.addr, current.data(), 5).ok());
    EXPECT_EQ(current, op.new_bytes);
    EXPECT_EQ(h.vm().memory().PermsAt(op.addr), kPermRead | kPermExec);
  }
}

TEST(PatchJournalTest, SealDetectsForeignOverwrite) {
  JournalHarness h;
  const PatchPlan plan = {h.MakeOp(kText, 0x11)};
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), nullptr, plan, /*validate=*/true);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->ApplyOp(0, TxnOptions{}).ok());

  const uint8_t garbage[5] = {0xDE, 0xAD, 0xBE, 0xEF, 0x99};
  ASSERT_TRUE(h.vm().memory().WriteRaw(kText, garbage, 5).ok());
  TxnStats stats;
  Status sealed = journal->Seal(&stats);
  ASSERT_FALSE(sealed.ok());
  EXPECT_NE(sealed.ToString().find("bytes not committed"), std::string::npos);
}

TEST(PatchJournalTest, SealDetectsPageLeftWritable) {
  JournalHarness h;
  const PatchPlan plan = {h.MakeOp(kText, 0x11)};
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), nullptr, plan, /*validate=*/true);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->ApplyOp(0, TxnOptions{}).ok());
  ASSERT_TRUE(h.vm()
                  .memory()
                  .Protect(kText, kPageSize, kPermRead | kPermWrite | kPermExec)
                  .ok());
  TxnStats stats;
  Status sealed = journal->Seal(&stats);
  ASSERT_FALSE(sealed.ok());
  EXPECT_NE(sealed.ToString().find("left writable"), std::string::npos);
}

TEST(PatchJournalTest, SealRepairsSuppressedFlushInPlace) {
  JournalHarness h;
  const PatchPlan plan = {h.MakeOp(kText, 0x11)};
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), nullptr, plan, /*validate=*/true);
  ASSERT_TRUE(journal.ok());

  // A "forgotten invalidation": the applier writes the bytes and promises a
  // flush, but never issues it. Seal must detect the shortfall by counter
  // accounting and repair it by re-flushing the touched range.
  journal->MarkTouched(0);
  journal->ExpectFlush();
  Memory& memory = h.vm().memory();
  ASSERT_TRUE(memory.Protect(kText, 5, kPermRead | kPermWrite | kPermExec).ok());
  ASSERT_TRUE(memory.WriteRaw(kText, plan[0].new_bytes.data(), 5).ok());
  ASSERT_TRUE(memory.Protect(kText, 5, kPermRead | kPermExec).ok());

  const uint64_t flushes_before = h.vm().icache_flushes();
  TxnStats stats;
  ASSERT_TRUE(journal->Seal(&stats).ok());
  EXPECT_EQ(stats.reflushes, 1);
  EXPECT_EQ(stats.recovery_ticks, h.vm().cost_model().icache_flush_ipi);
  EXPECT_GT(h.vm().icache_flushes(), flushes_before);
}

// --- Rollback ---------------------------------------------------------------

TEST(PatchJournalTest, RollbackRestoresBytesAndProtections) {
  JournalHarness h;
  const std::vector<uint8_t> pristine = h.Snapshot(kText, 0x40);
  const PatchPlan plan = {h.MakeOp(kText, 0x11), h.MakeOp(kText + 0x20, 0x22)};
  Result<PatchJournal> journal =
      PatchJournal::Begin(&h.vm(), nullptr, plan, /*validate=*/true);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->ApplyOp(0, TxnOptions{}).ok());
  ASSERT_TRUE(journal->ApplyOp(1, TxnOptions{}).ok());

  TxnStats stats;
  ASSERT_TRUE(journal->Rollback(&stats).ok());
  EXPECT_EQ(stats.ops_rolled_back, 2);
  const CostModel& cost = h.vm().cost_model();
  EXPECT_EQ(stats.recovery_ticks, 2 * (cost.patch_write + cost.icache_flush_ipi));
  EXPECT_EQ(h.Snapshot(kText, 0x40), pristine);
  EXPECT_EQ(h.vm().memory().PermsAt(kText), kPermRead | kPermExec);
}

TEST(PatchJournalTest, OverlappingOpsLayerAtSealAndUnlayerOnRollback) {
  // A call site aliasing a patched prologue: op 1's window shares bytes with
  // op 0's. Applied in order the later write shadows part of the earlier one
  // (legal — Seal tolerates shadowed windows); reverse-order undo must
  // restore the original bytes exactly.
  JournalHarness h;
  const std::vector<uint8_t> pristine = h.Snapshot(kText, 16);
  PatchPlan plan = {h.MakeOp(kText, 0x11), h.MakeOp(kText + 2, 0x22)};
  {
    Result<PatchJournal> journal =
        PatchJournal::Begin(&h.vm(), nullptr, plan, /*validate=*/true);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_TRUE(journal->ApplyOp(0, TxnOptions{}).ok());
    ASSERT_TRUE(journal->ApplyOp(1, TxnOptions{}).ok());
    TxnStats stats;
    ASSERT_TRUE(journal->Seal(&stats).ok());
    const std::vector<uint8_t> layered = h.Snapshot(kText, 16);
    EXPECT_EQ(layered[0], 0x11);  // op 0 prefix survives
    EXPECT_EQ(layered[1], 0x11);
    for (int i = 2; i < 7; ++i) {
      EXPECT_EQ(layered[i], 0x22);  // op 1 shadows the tail
    }
  }
  {
    // Fresh journal over the same (already-layered) state cannot validate;
    // roll back the original one instead.
    Result<PatchJournal> journal =
        PatchJournal::Begin(&h.vm(), nullptr, plan, /*validate=*/false);
    ASSERT_TRUE(journal.ok());
    journal->MarkTouched(0);
    journal->MarkTouched(1);
    TxnStats stats;
    ASSERT_TRUE(journal->Rollback(&stats).ok());
    EXPECT_EQ(h.Snapshot(kText, 16), pristine);
  }
}

// --- RunCommitTxn (driver) --------------------------------------------------

struct HookHarness {
  JournalHarness h;
  PatchPlan plan;
  int plans = 0;
  int applies = 0;
  int restores = 0;
  int fail_first_n = 0;  // apply attempts 1..n fail
  std::vector<uint64_t> backoffs;
  TxnHooks hooks;

  HookHarness() {
    plan = {h.MakeOp(kText, 0x11)};
    hooks.plan = [this]() -> Result<PatchPlan> {
      ++plans;
      return plan;
    };
    hooks.apply = [this](PatchJournal* journal) -> Status {
      if (++applies <= fail_first_n) {
        return Status::Internal("induced apply failure");
      }
      return journal->ApplyOp(0, TxnOptions{});
    };
    hooks.restore = [this]() { ++restores; };
    hooks.backoff = [this](uint64_t ticks) { backoffs.push_back(ticks); };
  }
};

TEST(RunCommitTxnTest, TransientFailureIsRolledBackAndRetried) {
  HookHarness hh;
  hh.fail_first_n = 1;
  TxnOptions options;
  options.max_attempts = 3;
  options.backoff_ticks = 64;
  TxnStats stats;
  Status status = RunCommitTxn(&hh.h.vm(), nullptr, options, hh.hooks, &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(stats.attempts, 2);
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.ops_applied, 1);
  EXPECT_EQ(hh.restores, 1);  // restore follows every rollback
  ASSERT_EQ(hh.backoffs.size(), 1u);
  EXPECT_EQ(hh.backoffs[0], 64u);
  EXPECT_NE(stats.last_failure.find("induced apply failure"), std::string::npos);
}

TEST(RunCommitTxnTest, ExhaustedAttemptsReportStructuredError) {
  HookHarness hh;
  hh.fail_first_n = 100;  // never succeeds
  TxnOptions options;
  options.max_attempts = 2;
  TxnStats stats;
  Status status = RunCommitTxn(&hh.h.vm(), nullptr, options, hh.hooks, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("rolled back after 2 attempt(s)"),
            std::string::npos)
      << status.ToString();
  EXPECT_EQ(stats.attempts, 2);
  EXPECT_EQ(stats.rollbacks, 2);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(hh.restores, 2);
}

TEST(RunCommitTxnTest, NonRetryableFailureStopsAfterOneAttempt) {
  HookHarness hh;
  hh.fail_first_n = 100;
  hh.hooks.retryable = [](const Status&) { return false; };
  TxnOptions options;
  options.max_attempts = 5;
  TxnStats stats;
  Status status = RunCommitTxn(&hh.h.vm(), nullptr, options, hh.hooks, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("rolled back after 1 attempt(s)"),
            std::string::npos);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
}

TEST(RunCommitTxnTest, PlanFailurePassesThroughWithoutRollback) {
  HookHarness hh;
  hh.hooks.plan = []() -> Result<PatchPlan> {
    return Status::NotFound("no such descriptor");
  };
  TxnStats stats;
  Status status = RunCommitTxn(&hh.h.vm(), nullptr, TxnOptions{}, hh.hooks, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("no such descriptor"), std::string::npos);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_EQ(hh.restores, 0);  // plan hook restores its own bookkeeping
}

TEST(RunCommitTxnTest, ValidationFailureRestoresBookkeeping) {
  HookHarness hh;
  hh.plan[0].old_bytes[0] ^= 0xFF;  // will fail the expected-bytes check
  TxnStats stats;
  Status status = RunCommitTxn(&hh.h.vm(), nullptr, TxnOptions{}, hh.hooks, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("commit validation failed"), std::string::npos);
  EXPECT_EQ(hh.restores, 1);
  EXPECT_EQ(hh.applies, 0);  // nothing was applied
}

// --- Runtime integration: Table 1 operations recover from faults ------------

constexpr char kMultiverseSource[] = R"(
__attribute__((multiverse)) bool feature;
long count;
__attribute__((multiverse))
void tick() { if (feature) { count = count + 2; } else { count = count + 1; } }
long run(long n) { long i; for (i = 0; i < n; ++i) { tick(); } return count; }
)";

std::unique_ptr<Program> BuildMultiverse() {
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"txn_demo", kMultiverseSource}}, BuildOptions{});
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  std::unique_ptr<Program> program = std::move(*built);
  EXPECT_TRUE(program->WriteGlobal("feature", 1, 1).ok());
  return program;
}

std::vector<uint8_t> TextSnapshot(Program* program) {
  std::vector<uint8_t> text(program->image().text_size);
  EXPECT_TRUE(program->vm()
                  .memory()
                  .ReadRaw(program->image().text_base, text.data(), text.size())
                  .ok());
  return text;
}

// Behaviour discriminator: with `feature` flipped to 0 the *generic* code
// follows the switch (ticks of 1 -> 10), while a commit bound to the
// feature=1 variant ignores it (ticks of 2 -> 20). `feature` is restored to
// 1 afterwards so subsequent commits keep selecting the same variant.
void ExpectBehaviour(Program* program, uint64_t expected) {
  ASSERT_TRUE(program->WriteGlobal("count", 0, 8).ok());
  ASSERT_TRUE(program->WriteGlobal("feature", 0, 1).ok());
  Result<uint64_t> result = program->Call("run", {10});
  ASSERT_TRUE(program->WriteGlobal("feature", 1, 1).ok());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, expected);
}

// Occurrences of `site` a clean Commit() crosses, measured on a twin program.
uint64_t ProbeSite(FaultSite site) {
  std::unique_ptr<Program> probe = BuildMultiverse();
  const uint64_t before = FaultInjector::Instance().Count(site);
  EXPECT_TRUE(probe->runtime().Commit().ok());
  return FaultInjector::Instance().Count(site) - before;
}

class RuntimeTxnTest : public ::testing::TestWithParam<FaultSite> {};

TEST_P(RuntimeTxnTest, TransientMidCommitFaultIsRecovered) {
  const FaultSite site = GetParam();
  const uint64_t occurrences = ProbeSite(site);
  ASSERT_GT(occurrences, 0u);

  std::unique_ptr<Program> program = BuildMultiverse();
  ScopedFault fault(site, occurrences / 2);  // mid-commit
  Result<PatchStats> stats = program->runtime().Commit();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const TxnStats& txn = program->runtime().last_txn();
  if (site == FaultSite::kIcacheFlush) {
    // A suppressed invalidation is repaired at seal, not rolled back.
    EXPECT_EQ(txn.attempts, 1);
    EXPECT_EQ(txn.rollbacks, 0);
    EXPECT_GE(txn.reflushes, 1);
  } else {
    EXPECT_EQ(txn.attempts, 2);
    EXPECT_EQ(txn.rollbacks, 1);
    EXPECT_EQ(txn.retries, 1);
    EXPECT_GT(txn.ops_rolled_back, 0);
  }
  EXPECT_GT(txn.recovery_ticks, 0u);
  ExpectBehaviour(program.get(), 20);  // fully committed, never torn
}

INSTANTIATE_TEST_SUITE_P(FaultSites, RuntimeTxnTest,
                         ::testing::Values(FaultSite::kPatchWrite,
                                           FaultSite::kProtect,
                                           FaultSite::kIcacheFlush),
                         [](const ::testing::TestParamInfo<FaultSite>& info) {
                           std::string name = FaultSiteName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(RuntimeTxnTest, ExhaustedRetryDegradesToGenericImage) {
  const uint64_t occurrences = ProbeSite(FaultSite::kPatchWrite);
  std::unique_ptr<Program> program = BuildMultiverse();
  const std::vector<uint8_t> pristine = TextSnapshot(program.get());

  TxnOptions txn;
  txn.max_attempts = 1;  // no retry: the one fault is fatal
  program->runtime().set_txn_options(txn);
  {
    ScopedFault fault(FaultSite::kPatchWrite, occurrences / 2);
    Result<PatchStats> stats = program->runtime().Commit();
    ASSERT_FALSE(stats.ok());
    EXPECT_NE(stats.status().ToString().find("rolled back after 1 attempt(s)"),
              std::string::npos)
        << stats.status().ToString();
  }
  EXPECT_EQ(program->runtime().last_txn().rollbacks, 1);
  EXPECT_EQ(TextSnapshot(program.get()), pristine);
  ExpectBehaviour(program.get(), 10);  // generic behaviour, not torn

  // Regression (revert after a partial, rolled-back commit): Revert() must
  // see pristine bookkeeping — nothing to undo, nothing corrupted.
  Result<PatchStats> reverted = program->runtime().Revert();
  ASSERT_TRUE(reverted.ok()) << reverted.status().ToString();
  EXPECT_EQ(reverted->functions_reverted, 0);
  EXPECT_EQ(TextSnapshot(program.get()), pristine);

  // And with the injector disarmed the same commit goes through.
  Result<PatchStats> committed = program->runtime().Commit();
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  ExpectBehaviour(program.get(), 20);
}

TEST(RuntimeTxnTest, RevertIsTransactionalToo) {
  std::unique_ptr<Program> program = BuildMultiverse();
  const std::vector<uint8_t> pristine = TextSnapshot(program.get());
  ASSERT_TRUE(program->runtime().Commit().ok());
  const std::vector<uint8_t> committed = TextSnapshot(program.get());

  // Probe how many patch writes a revert performs (on a twin).
  uint64_t occurrences = 0;
  {
    std::unique_ptr<Program> twin = BuildMultiverse();
    ASSERT_TRUE(twin->runtime().Commit().ok());
    const uint64_t before = FaultInjector::Instance().Count(FaultSite::kPatchWrite);
    ASSERT_TRUE(twin->runtime().Revert().ok());
    occurrences = FaultInjector::Instance().Count(FaultSite::kPatchWrite) - before;
  }
  ASSERT_GT(occurrences, 0u);

  TxnOptions txn;
  txn.max_attempts = 1;
  program->runtime().set_txn_options(txn);
  {
    ScopedFault fault(FaultSite::kPatchWrite, occurrences / 2);
    Result<PatchStats> stats = program->runtime().Revert();
    ASSERT_FALSE(stats.ok());
    EXPECT_NE(stats.status().ToString().find("rolled back"), std::string::npos);
  }
  // The failed revert rolled back to the *committed* image.
  EXPECT_EQ(TextSnapshot(program.get()), committed);
  ExpectBehaviour(program.get(), 20);

  Result<PatchStats> reverted = program->runtime().Revert();
  ASSERT_TRUE(reverted.ok()) << reverted.status().ToString();
  EXPECT_EQ(TextSnapshot(program.get()), pristine);
  ExpectBehaviour(program.get(), 10);
}

TEST(RuntimeTxnTest, LastTxnReportsCleanCommit) {
  std::unique_ptr<Program> program = BuildMultiverse();
  ASSERT_TRUE(program->runtime().Commit().ok());
  const TxnStats& txn = program->runtime().last_txn();
  EXPECT_EQ(txn.attempts, 1);
  EXPECT_EQ(txn.rollbacks, 0);
  EXPECT_EQ(txn.retries, 0);
  EXPECT_EQ(txn.reflushes, 0);
  EXPECT_GT(txn.ops_applied, 0);
  EXPECT_EQ(txn.recovery_ticks, 0u);
}

}  // namespace
}  // namespace mv

// Tests for the fleet chaos engine and the coordinator's failure paths
// (src/fleet/chaos.h, coordinator.cc FlipWithRecovery): deterministic
// seeded schedules, timeout -> retry -> quarantine progression, crash ->
// restart -> journal recovery mid-wave, crash-during-canary followed by an
// auto-revert with bit-identical restoration on the survivors, and
// degraded-mode serving — a quarantined instance keeps answering its shard
// on the pre-rollout config while pinned tenants stay untouched.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fleet/chaos.h"
#include "src/fleet/coordinator.h"
#include "src/fleet/fleet.h"
#include "src/support/faultpoint.h"

namespace mv {
namespace {

std::unique_ptr<Fleet> BuildFleet(int instances) {
  FleetOptions options;
  options.instances = instances;
  options.cores_per_instance = 2;
  Result<std::unique_ptr<Fleet>> fleet =
      Fleet::Build({{"fleet_kernel", FleetRequestKernelSource()}}, options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  return fleet.ok() ? std::move(fleet.value()) : nullptr;
}

RolloutPolicy TolerantPolicy(int waves, int quarantine_after) {
  RolloutPolicy policy;
  policy.canary_pct = 25.0;
  policy.waves = waves;
  policy.max_rollbacks = 0;
  policy.observe_requests = 24;
  policy.inflight_requests = 12;
  policy.quarantine_after = quarantine_after;
  return policy;
}

const Fleet::Assignment kFlip = {{"fast_path", 1}, {"log_level", 1}};

std::map<int, std::pair<uint64_t, uint64_t>> Identities(Fleet* fleet) {
  std::map<int, std::pair<uint64_t, uint64_t>> out;
  for (int i = 0; i < fleet->size(); ++i) {
    Result<uint64_t> fingerprint = fleet->ConfigFingerprint(i);
    EXPECT_TRUE(fingerprint.ok()) << fingerprint.status().ToString();
    out[i] = {fingerprint.ok() ? *fingerprint : 0, fleet->TextChecksum(i)};
  }
  return out;
}

int CountEvents(const RolloutLog& log, RolloutEvent::Kind kind) {
  int count = 0;
  for (const RolloutEvent& event : log.events()) {
    count += event.kind == kind ? 1 : 0;
  }
  return count;
}

TEST(ChaosScheduleTest, SeededDrawsAreDeterministicAndSeedSensitive) {
  const ChaosSchedule a(0x5eedull);
  const ChaosSchedule b(0x5eedull);
  const ChaosSchedule c(0xc0ffeeull);
  int events_a = 0;
  int differs = 0;
  for (int wave = 0; wave < 8; ++wave) {
    for (int instance = 0; instance < 32; ++instance) {
      for (int attempt = 1; attempt <= 3; ++attempt) {
        const ChaosEventKind ea = a.At(wave, instance, attempt);
        EXPECT_EQ(ea, b.At(wave, instance, attempt));
        differs += ea != c.At(wave, instance, attempt) ? 1 : 0;
        events_a += ea != ChaosEventKind::kNone ? 1 : 0;
      }
    }
  }
  EXPECT_GT(events_a, 0) << "default rates must inject something over 768 slots";
  EXPECT_GT(differs, 0) << "a different seed must produce a different schedule";
}

TEST(ChaosScheduleTest, ScriptedSlotsOverrideSeededDraws) {
  ChaosSchedule schedule(1, /*crash_pct=*/100, /*degrade_pct=*/0);
  EXPECT_NE(schedule.At(0, 0, 1), ChaosEventKind::kNone);
  schedule.Script(0, 0, 1, ChaosEventKind::kNone);
  EXPECT_EQ(schedule.At(0, 0, 1), ChaosEventKind::kNone);
  schedule.Script(2, 5, 1, ChaosEventKind::kWedge);
  EXPECT_EQ(schedule.At(2, 5, 1), ChaosEventKind::kWedge);
  // Scripted crashes fire at the first journal boundary — guaranteed.
  schedule.Script(1, 3, 1, ChaosEventKind::kCrash);
  EXPECT_EQ(schedule.CrashHit(1, 3, 1), 0);
}

TEST(ChaosScheduleTest, RetriesDrawAtReducedOdds) {
  const ChaosSchedule schedule(7, /*crash_pct=*/40, /*degrade_pct=*/40);
  int first = 0;
  int retry = 0;
  for (int instance = 0; instance < 400; ++instance) {
    first += schedule.At(0, instance, 1) != ChaosEventKind::kNone ? 1 : 0;
    retry += schedule.At(0, instance, 2) != ChaosEventKind::kNone ? 1 : 0;
  }
  EXPECT_GT(first, retry) << "retries must fault less often than first attempts";
}

TEST(FleetChaosTest, CalmTolerantRolloutMatchesLegacyBehavior) {
  std::unique_ptr<Fleet> fleet = BuildFleet(4);
  ASSERT_NE(fleet, nullptr);
  CommitCoordinator coordinator(fleet.get(), TolerantPolicy(2, 3));
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_TRUE(rolled->advanced_to_full);
  EXPECT_EQ(rolled->flipped_instances, 4u);
  EXPECT_EQ(rolled->identity_mismatches, 0u);
  EXPECT_EQ(rolled->commit_timeouts, 0u);
  EXPECT_EQ(rolled->crash_recoveries, 0u);
  EXPECT_EQ(rolled->quarantined_instances, 0u);
}

TEST(FleetChaosTest, TimeoutRetryQuarantineProgression) {
  std::unique_ptr<Fleet> fleet = BuildFleet(4);
  ASSERT_NE(fleet, nullptr);
  const auto before = Identities(fleet.get());

  // Wedge the canary's mutator core on every attempt: each strike is logged
  // as a timeout, the retries back off, and the third strike quarantines.
  ChaosSchedule schedule(0, /*crash_pct=*/0, /*degrade_pct=*/0);
  schedule.Script(0, 0, 1, ChaosEventKind::kWedge);
  schedule.Script(0, 0, 2, ChaosEventKind::kWedge);
  schedule.Script(0, 0, 3, ChaosEventKind::kWedge);
  RolloutPolicy policy = TolerantPolicy(2, /*quarantine_after=*/3);
  policy.chaos = &schedule;
  policy.live.txn.max_attempts = 1;
  CommitCoordinator coordinator(fleet.get(), policy);
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  // The rollout advanced around the failing canary.
  EXPECT_TRUE(rolled->advanced_to_full);
  EXPECT_EQ(rolled->flipped_instances, 3u);
  EXPECT_EQ(rolled->commit_timeouts, 3u);
  EXPECT_EQ(rolled->quarantined_instances, 1u);
  ASSERT_EQ(rolled->quarantined, std::vector<int>{0});
  EXPECT_EQ(rolled->identity_mismatches, 0u);
  EXPECT_EQ(CountEvents(coordinator.log(), RolloutEvent::Kind::kTimeout), 3);
  EXPECT_EQ(CountEvents(coordinator.log(), RolloutEvent::Kind::kQuarantine), 1);

  // The quarantined instance is parked bit-identically on its old identity;
  // the rest of the fleet is fully-new.
  const auto after = Identities(fleet.get());
  EXPECT_EQ(after.at(0), before.at(0));
  EXPECT_EQ(*fleet->ReadSwitchValue(0, "fast_path"), 0);
  for (int i = 1; i < fleet->size(); ++i) {
    EXPECT_EQ(*fleet->ReadSwitchValue(i, "fast_path"), 1) << "instance " << i;
  }
  // Doubling backoff is visible in the audit trail.
  bool saw_backoff = false;
  for (const RolloutEvent& event : coordinator.log().events()) {
    saw_backoff |= event.detail.find("backoff") != std::string::npos;
  }
  EXPECT_TRUE(saw_backoff);
}

TEST(FleetChaosTest, CrashMidWaveRestartsRecoversAndRetries) {
  std::unique_ptr<Fleet> fleet = BuildFleet(4);
  ASSERT_NE(fleet, nullptr);

  // Kill instance 1 (wave 1's first flip) at a journal boundary on the first
  // attempt; the retry after restart-and-recover must land the flip.
  ChaosSchedule schedule(0, /*crash_pct=*/0, /*degrade_pct=*/0);
  schedule.Script(1, 1, 1, ChaosEventKind::kCrash);
  RolloutPolicy policy = TolerantPolicy(2, /*quarantine_after=*/3);
  policy.chaos = &schedule;
  CommitCoordinator coordinator(fleet.get(), policy);
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  EXPECT_TRUE(rolled->advanced_to_full);
  EXPECT_EQ(rolled->flipped_instances, 4u);
  EXPECT_EQ(rolled->crash_recoveries, 1u);
  EXPECT_EQ(rolled->quarantined_instances, 0u);
  EXPECT_EQ(rolled->identity_mismatches, 0u);
  EXPECT_EQ(CountEvents(coordinator.log(), RolloutEvent::Kind::kCrash), 1);
  EXPECT_EQ(CountEvents(coordinator.log(), RolloutEvent::Kind::kRecovery), 1);
  for (int i = 0; i < fleet->size(); ++i) {
    EXPECT_EQ(*fleet->ReadSwitchValue(i, "fast_path"), 1) << "instance " << i;
  }
}

TEST(FleetChaosTest, TornCrashRecoversTheSameWay) {
  std::unique_ptr<Fleet> fleet = BuildFleet(4);
  ASSERT_NE(fleet, nullptr);
  ChaosSchedule schedule(0, /*crash_pct=*/0, /*degrade_pct=*/0);
  schedule.Script(0, 0, 1, ChaosEventKind::kCrashTorn);
  RolloutPolicy policy = TolerantPolicy(2, /*quarantine_after=*/2);
  policy.chaos = &schedule;
  CommitCoordinator coordinator(fleet.get(), policy);
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_TRUE(rolled->advanced_to_full);
  EXPECT_EQ(rolled->crash_recoveries, 1u);
  EXPECT_EQ(rolled->identity_mismatches, 0u);
}

TEST(FleetChaosTest, CrashDuringCanaryThenBreachAutoRevertsBitIdentically) {
  std::unique_ptr<Fleet> fleet = BuildFleet(4);
  ASSERT_NE(fleet, nullptr);
  const auto before = Identities(fleet.get());

  // The canary crashes mid-commit (recovered from the journal, retried,
  // flipped), then the wave observation breaches an absurd latency budget:
  // the whole rollout must revert, including the crash-recovered instance,
  // and every survivor must restore bit-identically.
  ChaosSchedule schedule(0, /*crash_pct=*/0, /*degrade_pct=*/0);
  schedule.Script(0, 0, 1, ChaosEventKind::kCrash);
  RolloutPolicy policy = TolerantPolicy(2, /*quarantine_after=*/3);
  policy.chaos = &schedule;
  policy.max_latency_factor = 1e-9;  // every observation breaches
  CommitCoordinator coordinator(fleet.get(), policy);
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  EXPECT_TRUE(rolled->reverted);
  EXPECT_FALSE(rolled->advanced_to_full);
  EXPECT_EQ(rolled->crash_recoveries, 1u);
  EXPECT_EQ(rolled->identity_mismatches, 0u);
  EXPECT_EQ(Identities(fleet.get()), before);
  for (int i = 0; i < fleet->size(); ++i) {
    EXPECT_EQ(*fleet->ReadSwitchValue(i, "fast_path"), 0) << "instance " << i;
  }
}

TEST(FleetChaosTest, QuarantinedInstanceKeepsServingAndPinsAreUntouched) {
  std::unique_ptr<Fleet> fleet = BuildFleet(6);
  ASSERT_NE(fleet, nullptr);
  const uint64_t kTenant = 3;
  ASSERT_TRUE(fleet->PinTenant(kTenant, {{"fast_path", 0}}).ok());
  const int pinned = fleet->RouteTenant(kTenant);
  const uint64_t pinned_fingerprint = *fleet->ConfigFingerprint(pinned);
  const auto before = Identities(fleet.get());

  // Starve instance 0 (the canary) into quarantine.
  ChaosSchedule schedule(0, /*crash_pct=*/0, /*degrade_pct=*/0);
  schedule.Script(0, 0, 1, ChaosEventKind::kWedge);
  schedule.Script(0, 0, 2, ChaosEventKind::kWedge);
  RolloutPolicy policy = TolerantPolicy(2, /*quarantine_after=*/2);
  policy.chaos = &schedule;
  policy.live.txn.max_attempts = 1;
  CommitCoordinator coordinator(fleet.get(), policy);
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  ASSERT_EQ(rolled->quarantined, std::vector<int>{0});
  EXPECT_TRUE(rolled->advanced_to_full);
  EXPECT_EQ(rolled->identity_mismatches, 0u);

  // Degraded-mode serving: the quarantined instance still answers its shard
  // on the pre-rollout config — a full traffic slice drops zero requests.
  const uint64_t dropped_before =
      fleet->metrics().Fleet().totals.dropped_requests;
  ASSERT_TRUE(fleet->Serve(fleet->GenerateRequests(96), kFleetHandler).ok());
  EXPECT_EQ(fleet->metrics().Fleet().totals.dropped_requests, dropped_before);
  EXPECT_GT(fleet->metrics().instance(0).requests_served, 0u)
      << "quarantined instance must keep serving";
  EXPECT_EQ(Identities(fleet.get()).at(0), before.at(0));

  // The pinned tenant's instance never entered the rollout at all.
  EXPECT_EQ(*fleet->ConfigFingerprint(pinned), pinned_fingerprint);
  EXPECT_EQ(*fleet->ReadSwitchValue(pinned, "fast_path"), 0);
  EXPECT_EQ(fleet->RouteTenant(kTenant), pinned);
}

TEST(FleetRestartTest, RestartInstanceRebuildsBitIdenticalReplacement) {
  std::unique_ptr<Fleet> fleet = BuildFleet(2);
  ASSERT_NE(fleet, nullptr);
  ASSERT_TRUE(fleet->CommitAll({{"fast_path", 1}}).ok());
  const uint64_t committed_checksum = fleet->TextChecksum(0);
  const uint64_t committed_fingerprint = *fleet->ConfigFingerprint(0);

  // Kill instance 0 inside a plain commit, then restart it.
  ASSERT_TRUE(fleet->WriteSwitch(0, "log_level", 1).ok());
  Status died;
  {
    ScopedFault fault(FaultSite::kCrash, 2);
    died = fleet->runtime(0).Commit().status();
  }
  ASSERT_FALSE(died.ok());
  ASSERT_TRUE(IsSimulatedCrash(died)) << died.ToString();
  ASSERT_TRUE(fleet->journal(0)->dead());

  Result<RecoveryOutcome> outcome = fleet->RestartInstance(0);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The replacement is live, journaled, and provably on one side.
  EXPECT_FALSE(fleet->journal(0)->dead());
  const uint64_t checksum = fleet->TextChecksum(0);
  EXPECT_EQ(outcome->final_text_checksum, checksum);
  if (checksum == committed_checksum) {
    EXPECT_EQ(*fleet->ConfigFingerprint(0), committed_fingerprint);
  }
  // The replacement serves and commits normally.
  ASSERT_TRUE(fleet->Serve(fleet->GenerateRequests(16), kFleetHandler).ok());
  EXPECT_EQ(fleet->metrics().Fleet().totals.dropped_requests, 0u);
  ASSERT_TRUE(fleet->CommitAll({{"fast_path", 1}, {"log_level", 1}}).ok());
  EXPECT_EQ(*fleet->ReadSwitchValue(0, "log_level"), 1);
}

}  // namespace
}  // namespace mv

// Tests for the commit fast path (docs/INTERNALS.md §12): plan-cache
// memoization keyed by pre-state + configuration fingerprint, guard-index
// variant selection, per-switch dirty sets, stale-plan eviction, and the
// page-coalesced apply accounting. The cache is an optimization, never a
// semantic: every test here pins "cache on" to behave bit-identically to
// "cache off".
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/core/plan_cache.h"
#include "src/core/program.h"
#include "src/vm/superblock.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

// Two value switches with disjoint and joint referees, a partially-bound
// function (bind_only, §7.1), and a function-pointer switch — the full
// variety the dirty sets and the fingerprint have to track.
constexpr char kSource[] = R"(
__attribute__((multiverse)) bool config_a;
__attribute__((multiverse)) bool config_b;
__attribute__((multiverse)) long (*op)(long);
long acc;

__attribute__((multiverse))
void fa() { if (config_a) { acc = acc + 1; } else { acc = acc + 10; } }

__attribute__((multiverse))
void fb() { if (config_b) { acc = acc + 100; } else { acc = acc + 1000; } }

__attribute__((multiverse))
void fboth() {
  if (config_a) {
    if (config_b) { acc = acc + 2; } else { acc = acc + 3; }
  }
}

__attribute__((multiverse(config_a)))
void fbound() {
  if (config_a) { acc = acc + 4; }
  if (config_b) { acc = acc + 5; }
}

long twice(long x) { return 2 * x; }
long inc(long x) { return x + 1; }

long probe(long x) {
  acc = 0;
  fa();
  fb();
  fboth();
  fbound();
  return acc + op(x);
}
)";

std::unique_ptr<Program> Build(bool plan_cache = true) {
  BuildOptions options;
  options.attach.plan_cache = plan_cache;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"pc", kSource}}, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return built.ok() ? std::move(*built) : nullptr;
}

void SetConfig(Program* program, int64_t a, int64_t b, const char* op_target) {
  ASSERT_TRUE(program->WriteGlobal("config_a", a, 1).ok());
  ASSERT_TRUE(program->WriteGlobal("config_b", b, 1).ok());
  const int64_t target =
      static_cast<int64_t>(program->SymbolAddress(op_target).value());
  ASSERT_TRUE(program->WriteGlobal("op", target, 8).ok());
}

std::vector<uint8_t> Text(Program* program) {
  std::vector<uint8_t> text(program->image().text_size);
  EXPECT_TRUE(program->vm()
                  .memory()
                  .ReadRaw(program->image().text_base, text.data(), text.size())
                  .ok());
  return text;
}

TEST(PlanCacheTest, RepeatCommitHitsCacheAndSkipsSelection) {
  std::unique_ptr<Program> program = Build();
  ASSERT_NE(program, nullptr);
  MultiverseRuntime& runtime = program->runtime();
  SetConfig(program.get(), 1, 0, "twice");

  // Cold: generic -> config V is a first visit.
  ASSERT_TRUE(runtime.Commit().ok());
  EXPECT_EQ(runtime.fast_stats().plan_cache_misses, 1u);
  EXPECT_EQ(runtime.fast_stats().plan_cache_hits, 0u);
  EXPECT_EQ(runtime.plan_cache_entries(), 1u);

  // Idempotent recommit: the pre-state is now Config(V), a different key, so
  // one more cold lap closes the V -> V cycle...
  ASSERT_TRUE(runtime.Commit().ok());
  EXPECT_EQ(runtime.fast_stats().plan_cache_misses, 2u);
  const uint64_t reeval_after_cold = runtime.fast_stats().fns_reevaluated;

  // ...and from here on every commit is a hit that replays memoized
  // bookkeeping instead of re-running guard evaluation.
  ASSERT_TRUE(runtime.Commit().ok());
  EXPECT_EQ(runtime.fast_stats().plan_cache_hits, 1u);
  EXPECT_EQ(runtime.fast_stats().fns_reevaluated, reeval_after_cold);

  // Revert lands on the fully-generic pre-state: the original cold entry.
  ASSERT_TRUE(runtime.Revert().ok());
  ASSERT_TRUE(runtime.Commit().ok());
  EXPECT_EQ(runtime.fast_stats().plan_cache_hits, 2u);
  EXPECT_EQ(runtime.fast_stats().fns_reevaluated, reeval_after_cold);

  EXPECT_EQ(*program->Call("probe", {21}), 1u + 1000u + 3u + 4u + 42u);
}

TEST(PlanCacheTest, DisablingTheCacheClearsItAndCommitsStillWork) {
  std::unique_ptr<Program> program = Build();
  ASSERT_NE(program, nullptr);
  MultiverseRuntime& runtime = program->runtime();
  SetConfig(program.get(), 0, 1, "inc");
  ASSERT_TRUE(runtime.Commit().ok());
  EXPECT_EQ(runtime.plan_cache_entries(), 1u);

  runtime.set_plan_cache_enabled(false);
  EXPECT_EQ(runtime.plan_cache_entries(), 0u);
  const uint64_t misses = runtime.fast_stats().plan_cache_misses;
  ASSERT_TRUE(runtime.Commit().ok());
  ASSERT_TRUE(runtime.Commit().ok());
  EXPECT_EQ(runtime.plan_cache_entries(), 0u);
  EXPECT_EQ(runtime.fast_stats().plan_cache_misses, misses);
  EXPECT_EQ(runtime.fast_stats().plan_cache_hits, 0u);
  EXPECT_EQ(*program->Call("probe", {21}), 10u + 100u + 0u + 5u + 22u);
}

TEST(PlanCacheTest, DirtySetsReevaluateOnlyReferencingFunctions) {
  std::unique_ptr<Program> program = Build(/*plan_cache=*/false);
  ASSERT_NE(program, nullptr);
  MultiverseRuntime& runtime = program->runtime();

  const uint64_t var_a = program->SymbolAddress("config_a").value();
  const uint64_t var_b = program->SymbolAddress("config_b").value();
  const uint64_t fn_a = program->SymbolAddress("fa").value();
  const uint64_t fn_b = program->SymbolAddress("fb").value();
  const uint64_t fn_both = program->SymbolAddress("fboth").value();
  const uint64_t fn_bound = program->SymbolAddress("fbound").value();

  // The reverse map is exact: fbound is partially specialized on config_a
  // only, so its guards — and therefore its dirty set — never mention
  // config_b even though its body reads it.
  EXPECT_EQ(runtime.FunctionsReferencing(var_a),
            (std::vector<uint64_t>{fn_a, fn_both, fn_bound}));
  EXPECT_EQ(runtime.FunctionsReferencing(var_b),
            (std::vector<uint64_t>{fn_b, fn_both}));

  SetConfig(program.get(), 0, 0, "twice");
  ASSERT_TRUE(runtime.Commit().ok());
  const CommitFastPathStats& fast = runtime.fast_stats();

  // Untouched switches: every function (and the fn-ptr binding) is skipped.
  uint64_t reeval = fast.fns_reevaluated;
  uint64_t skipped = fast.fns_skipped;
  ASSERT_TRUE(runtime.Commit().ok());
  EXPECT_EQ(fast.fns_reevaluated - reeval, 0u);
  EXPECT_EQ(fast.fns_skipped - skipped, 5u);  // fa, fb, fboth, fbound, op

  // Touch config_a only: exactly its three referees re-evaluate.
  ASSERT_TRUE(program->WriteGlobal("config_a", 1, 1).ok());
  reeval = fast.fns_reevaluated;
  skipped = fast.fns_skipped;
  ASSERT_TRUE(runtime.Commit().ok());
  EXPECT_EQ(fast.fns_reevaluated - reeval, 3u);
  EXPECT_EQ(fast.fns_skipped - skipped, 2u);  // fb and the op binding

  // Touch the fn-ptr switch only: the binding re-evaluates, functions skip.
  ASSERT_TRUE(program
                  ->WriteGlobal("op",
                                static_cast<int64_t>(
                                    program->SymbolAddress("inc").value()),
                                8)
                  .ok());
  reeval = fast.fns_reevaluated;
  skipped = fast.fns_skipped;
  ASSERT_TRUE(runtime.Commit().ok());
  EXPECT_EQ(fast.fns_reevaluated - reeval, 1u);
  EXPECT_EQ(fast.fns_skipped - skipped, 4u);
  EXPECT_EQ(*program->Call("probe", {21}), 1u + 1000u + 3u + 4u + 22u);
}

TEST(PlanCacheTest, IndexedSelectionAgreesWithLinearOnAllConfigs) {
  std::unique_ptr<Program> program = Build();
  ASSERT_NE(program, nullptr);
  MultiverseRuntime& runtime = program->runtime();
  for (int64_t a = 0; a <= 1; ++a) {
    for (int64_t b = 0; b <= 1; ++b) {
      SetConfig(program.get(), a, b, a ? "twice" : "inc");
      for (const RtFunction& fn : runtime.table().functions) {
        SCOPED_TRACE(fn.name + " a=" + std::to_string(a) +
                     " b=" + std::to_string(b));
        Result<uint64_t> linear =
            runtime.SelectVariantForTest(fn.generic_addr, /*use_index=*/false);
        Result<uint64_t> indexed =
            runtime.SelectVariantForTest(fn.generic_addr, /*use_index=*/true);
        ASSERT_EQ(linear.ok(), indexed.ok()) << linear.status().ToString();
        if (linear.ok()) {
          EXPECT_EQ(*linear, *indexed);
        }
      }
    }
  }
}

TEST(PlanCacheTest, StalePlanIsEvictedAndForeignWriteStillSurfaces) {
  std::unique_ptr<Program> program = Build();
  ASSERT_NE(program, nullptr);
  MultiverseRuntime& runtime = program->runtime();
  SetConfig(program.get(), 1, 1, "twice");
  ASSERT_TRUE(runtime.Commit().ok());
  ASSERT_TRUE(runtime.Revert().ok());
  ASSERT_GE(runtime.plan_cache_entries(), 1u);

  // A foreign writer corrupts one planned call site behind the runtime's
  // back. The memoized plan's expected-old-bytes check must catch it — the
  // entry is evicted, the cold replan sees the same corruption, and the
  // commit fails exactly as it would have without a cache.
  const uint64_t site = runtime.table().callsites[0].site_addr;
  uint8_t original = 0;
  ASSERT_TRUE(program->vm().memory().ReadRaw(site, &original, 1).ok());
  const uint8_t corrupted = original ^ 0xff;
  ASSERT_TRUE(program->vm().memory().WriteRaw(site, &corrupted, 1).ok());
  program->vm().FlushIcache(site, 1);

  const uint64_t evictions = runtime.fast_stats().plan_cache_evictions;
  Result<PatchStats> failed = runtime.Commit();
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(runtime.fast_stats().plan_cache_evictions, evictions + 1);

  // Undo the corruption: the commit must succeed again (and the text must
  // land exactly where an uncorrupted commit would have put it).
  ASSERT_TRUE(program->vm().memory().WriteRaw(site, &original, 1).ok());
  program->vm().FlushIcache(site, 1);
  ASSERT_TRUE(runtime.Commit().ok()) << "commit after repair";
  EXPECT_EQ(*program->Call("probe", {21}), 1u + 100u + 2u + 4u + 5u + 42u);
}

TEST(PlanCacheTest, ColdCommitCoalescesProtectsAndFlushes) {
  std::unique_ptr<Program> program = Build();
  ASSERT_NE(program, nullptr);
  MultiverseRuntime& runtime = program->runtime();
  SetConfig(program.get(), 1, 0, "twice");
  ASSERT_TRUE(runtime.Commit().ok());
  const CommitFastPathStats& fast = runtime.fast_stats();
  EXPECT_GE(fast.pages_touched, 1u);
  // Page coalescing: one W^X toggle up + one down per touched page, at most.
  EXPECT_LE(fast.mprotect_calls, 2 * fast.pages_touched);
  EXPECT_GE(fast.flush_ranges, 1u);
}

// The differential property: with the cache on, every commit/revert sequence
// must produce bit-identical text and execution to the cache-off runtime —
// across random flip schedules, both fn-ptr retargets and value flips, and
// both dispatch engines.
class PlanCacheDifferentialTest : public ::testing::TestWithParam<DispatchEngine> {
 protected:
  void SetUp() override { SetDefaultDispatchEngine(GetParam()); }
  void TearDown() override { SetDefaultDispatchEngine(DispatchEngine::kLegacy); }
};

TEST_P(PlanCacheDifferentialTest, RandomFlipsAreBitIdenticalCacheOnVsOff) {
  std::unique_ptr<Program> cached = Build(/*plan_cache=*/true);
  std::unique_ptr<Program> uncached = Build(/*plan_cache=*/false);
  ASSERT_NE(cached, nullptr);
  ASSERT_NE(uncached, nullptr);

  std::mt19937 rng(0x9a12u);
  for (int i = 0; i < 80; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    const int64_t a = static_cast<int64_t>(rng() % 2);
    const int64_t b = static_cast<int64_t>(rng() % 2);
    const char* target = (rng() % 2) != 0 ? "twice" : "inc";
    const bool revert = (rng() % 8) == 0;
    SetConfig(cached.get(), a, b, target);
    SetConfig(uncached.get(), a, b, target);
    if (revert) {
      ASSERT_TRUE(cached->runtime().Revert().ok());
      ASSERT_TRUE(uncached->runtime().Revert().ok());
    } else {
      ASSERT_TRUE(cached->runtime().Commit().ok());
      ASSERT_TRUE(uncached->runtime().Commit().ok());
    }
    ASSERT_EQ(Text(cached.get()), Text(uncached.get()));
    Result<uint64_t> got = cached->Call("probe", {static_cast<uint64_t>(i)});
    Result<uint64_t> want = uncached->Call("probe", {static_cast<uint64_t>(i)});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(*got, *want);
  }
  // The schedule repeats configurations, so the cache must actually have
  // been exercised — otherwise this differential proves nothing.
  EXPECT_GT(cached->runtime().fast_stats().plan_cache_hits, 0u);
  EXPECT_EQ(uncached->runtime().fast_stats().plan_cache_hits, 0u);
}

// --- Shared plan cache across instances (src/fleet) ---
// Instances built from the same sources have bit-identical text, so a plan
// memoized by one is a valid journal for all of them — the fleet boots N
// instances with one cache and pays one cold plan per configuration
// transition. Divergence is caught by probe validation, never by luck.

std::unique_ptr<Program> BuildShared(const std::shared_ptr<PlanCache>& cache) {
  BuildOptions options;
  options.attach.shared_plan_cache = cache;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"pc", kSource}}, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return built.ok() ? std::move(*built) : nullptr;
}

TEST(PlanCacheTest, SharedCacheHitsAcrossInstancesWithIdenticalPreState) {
  auto cache = std::make_shared<PlanCache>();
  std::unique_ptr<Program> a = BuildShared(cache);
  std::unique_ptr<Program> b = BuildShared(cache);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  // Instance A plans the generic -> config transition cold...
  SetConfig(a.get(), 1, 0, "twice");
  ASSERT_TRUE(a->runtime().Commit().ok());
  EXPECT_EQ(a->runtime().fast_stats().plan_cache_misses, 1u);
  EXPECT_EQ(a->runtime().plan_cache_entries(), 1u);

  // ...and instance B, same sources + same pre-state token, replays it warm:
  // a hit on B's very first commit, planned by a different runtime.
  SetConfig(b.get(), 1, 0, "twice");
  ASSERT_TRUE(b->runtime().Commit().ok());
  EXPECT_EQ(b->runtime().fast_stats().plan_cache_hits, 1u);
  EXPECT_EQ(b->runtime().fast_stats().plan_cache_misses, 0u);

  // Replay must be bit-identical to planning, and both instances agree.
  EXPECT_EQ(Text(a.get()), Text(b.get()));
  EXPECT_EQ(*a->Call("probe", {21}), *b->Call("probe", {21}));
}

TEST(PlanCacheTest, SharedCachePoisonedOnDivergentInstance) {
  auto cache = std::make_shared<PlanCache>();
  std::unique_ptr<Program> a = BuildShared(cache);
  std::unique_ptr<Program> b = BuildShared(cache);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  SetConfig(a.get(), 1, 0, "twice");
  ASSERT_TRUE(a->runtime().Commit().ok());
  ASSERT_EQ(a->runtime().plan_cache_entries(), 1u);

  // Instance B diverges: someone scribbles over one of its call sites, so
  // A's memoized journal no longer describes B's text.
  const uint64_t site = b->runtime().table().callsites[0].site_addr;
  const uint8_t garbage[5] = {0x50, 0x50, 0x50, 0x50, 0x50};
  ASSERT_TRUE(b->vm().memory().WriteRaw(site, garbage, 5).ok());

  // Probe validation rejects the cached plan before a single byte is written
  // (eviction, not a torn replay), and the cold path's verifying patcher then
  // refuses the foreign bytes outright.
  SetConfig(b.get(), 1, 0, "twice");
  Result<PatchStats> commit = b->runtime().Commit();
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_GE(b->runtime().fast_stats().plan_cache_evictions, 1u);

  // The poison is scoped: instance A is merely back to a cold plan for that
  // transition, not corrupted — its next commits still work and still match
  // the uncached semantics.
  SetConfig(a.get(), 0, 1, "inc");
  ASSERT_TRUE(a->runtime().Commit().ok());
  EXPECT_EQ(*a->Call("probe", {21}), 10u + 100u + 5u + 22u);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, PlanCacheDifferentialTest,
                         ::testing::Values(DispatchEngine::kLegacy,
                                           DispatchEngine::kSuperblock),
                         [](const ::testing::TestParamInfo<DispatchEngine>& info) {
                           return std::string(DispatchEngineName(info.param));
                         });

}  // namespace
}  // namespace mv

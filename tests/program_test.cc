// Tests for the Program driver facade: build orchestration, the VMCALL
// bridge, guest output, user handlers, error reporting, and multi-core use.
#include <gtest/gtest.h>

#include "src/core/abi.h"
#include "src/core/program.h"

namespace mv {
namespace {

TEST(ProgramTest, BuildErrorsSurfaceDiagnostics) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> bad =
      Program::Build({{"bad", "long f( { return 0; }"}}, options);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("error"), std::string::npos);
}

TEST(ProgramTest, UnknownSymbolErrors) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program =
      Program::Build({{"p", "long f() { return 1; }"}}, options);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ((*program)->Call("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*program)->ReadGlobal("nope").status().code(), StatusCode::kNotFound);
}

TEST(ProgramTest, StepLimitIsReported) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program =
      Program::Build({{"p", "void spin() { while (1) { } }"}}, options);
  ASSERT_TRUE(program.ok());
  Result<uint64_t> result = (*program)->Call("spin", {}, /*max_steps=*/1000);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("step limit"), std::string::npos);
}

TEST(ProgramTest, GuestFaultIsReported) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build(
      {{"p", "long f() { long* p = (long*)0; return *p; }"}}, options);
  ASSERT_TRUE(program.ok());
  Result<uint64_t> result = (*program)->Call("f");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("fault"), std::string::npos);
}

TEST(ProgramTest, UserVmCallHandlerReceivesCodeAndArg) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build(
      {{"p", "long f(long x) { return __builtin_vmcall(20, x); }"}}, options);
  ASSERT_TRUE(program.ok());
  uint8_t seen_code = 0;
  uint64_t seen_arg = 0;
  (*program)->set_vmcall_handler([&](uint8_t code, uint64_t arg) -> int64_t {
    seen_code = code;
    seen_arg = arg;
    return static_cast<int64_t>(arg * 3);
  });
  Result<uint64_t> result = (*program)->Call("f", {14});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(seen_code, 20);
  EXPECT_EQ(seen_arg, 14u);
  EXPECT_EQ(*result, 42u);
}

TEST(ProgramTest, UnhandledUserVmCallErrors) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build(
      {{"p", "long f() { return __builtin_vmcall(20, 0); }"}}, options);
  ASSERT_TRUE(program.ok());
  Result<uint64_t> result = (*program)->Call("f");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(ProgramTest, OutputAccumulatesAndClears) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build(
      {{"p", R"(
void put(long c) { __builtin_vmcall(1, c); }
void hello() { put('h'); put('e'); put('y'); }
)"}},
      options);
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE((*program)->Call("hello").ok());
  EXPECT_EQ((*program)->output(), "hey");
  ASSERT_TRUE((*program)->Call("hello").ok());
  EXPECT_EQ((*program)->output(), "heyhey");
  (*program)->ClearOutput();
  EXPECT_EQ((*program)->output(), "");
}

TEST(ProgramTest, ReadWriteGlobalWidths) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build(
      {{"p", R"(
char c8;
short s16;
int i32;
long l64;
long f() { return 0; }
)"}},
      options);
  ASSERT_TRUE(program.ok());
  Program& p = **program;
  ASSERT_TRUE(p.WriteGlobal("c8", -1, 1).ok());
  ASSERT_TRUE(p.WriteGlobal("s16", -2, 2).ok());
  ASSERT_TRUE(p.WriteGlobal("i32", -3, 4).ok());
  ASSERT_TRUE(p.WriteGlobal("l64", -4, 8).ok());
  EXPECT_EQ(p.ReadGlobal("c8", 1).value(), -1);
  EXPECT_EQ(p.ReadGlobal("s16", 2).value(), -2);
  EXPECT_EQ(p.ReadGlobal("i32", 4).value(), -3);
  EXPECT_EQ(p.ReadGlobal("l64", 8).value(), -4);
}

TEST(ProgramTest, SpecializationCanBeDisabled) {
  const char* source = R"(
__attribute__((multiverse)) int flag;
__attribute__((multiverse)) void f() { if (flag) { __builtin_fence(); } }
)";
  BuildOptions options;
  options.specialize = false;
  Result<std::unique_ptr<Program>> program = Program::Build({{"p", source}}, options);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ((*program)->specialize_stats().variants_generated, 0u);
  EXPECT_TRUE((*program)->runtime().table().functions.empty() ||
              (*program)->runtime().table().functions[0].variants.empty());
  // Commit is a harmless no-op / fallback.
  Result<PatchStats> commit = (*program)->runtime().Commit();
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->functions_committed, 0);
}

TEST(ProgramTest, SeparateCoresRunIndependently) {
  BuildOptions options;
  options.vm_cores = 2;
  Result<std::unique_ptr<Program>> program = Program::Build(
      {{"p", R"(
long shared;
long add(long v) { shared = shared + v; return shared; }
)"}},
      options);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(*(*program)->Call("add", {5}, 100000, /*core=*/0), 5u);
  EXPECT_EQ(*(*program)->Call("add", {7}, 100000, /*core=*/1), 12u)
      << "cores must share the data segment";
}

TEST(ProgramTest, WarningsFlowThroughSpecializeStats) {
  const char* source = R"(
__attribute__((multiverse)) int flag;
__attribute__((multiverse)) void f() { flag = 1 - flag; if (flag) { } }
)";
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build({{"p", source}}, options);
  ASSERT_TRUE(program.ok());
  ASSERT_FALSE((*program)->specialize_stats().warnings.empty());
}

}  // namespace
}  // namespace mv

// Seeded descriptor-corruption fuzz: random bit flips in the .mv.* sections
// of a loaded image must never crash the runtime or let it patch garbage.
// Every corrupted table either fails Attach/Commit with a structured Status,
// or commits a still-valid configuration — in which case the guest must run
// without faulting and Revert must restore the text segment bit-exactly.
//
// Runs with paranoid descriptor validation (the default), the pass this fuzz
// exists to exercise; a sanitizer CI job runs the same suite to catch wild
// reads the Status paths might hide.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/core/program.h"
#include "src/core/runtime.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

constexpr int kSeeds = 256;
constexpr int kMaxBitFlips = 8;

constexpr char kSource[] = R"(
__attribute__((multiverse)) int mode;
__attribute__((multiverse)) bool debug_on;
long acc;
long dbg_hits;
__attribute__((multiverse))
void step() {
  if (mode == 0) { acc = acc + 1; }
  if (mode == 1) { acc = acc + 2; }
  if (mode == 2) { acc = acc + 3; }
}
__attribute__((multiverse))
void dbg_hook() { if (debug_on) { dbg_hits = dbg_hits + 1; } }
long run(long n) {
  long i;
  for (i = 0; i < n; ++i) { step(); dbg_hook(); }
  return acc;
}
)";

struct SectionSnapshot {
  uint64_t addr = 0;
  std::vector<uint8_t> bytes;
};

TEST(DescriptorFuzzTest, RandomBitFlipsNeverCrashOrPatchGarbage) {
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"fuzz", kSource}}, BuildOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::unique_ptr<Program> program = std::move(*built);
  ASSERT_TRUE(program->WriteGlobal("mode", 1, 4).ok());
  ASSERT_TRUE(program->WriteGlobal("debug_on", 0, 4).ok());
  Vm& vm = program->vm();
  const Image& image = program->image();

  // Snapshot every descriptor section and the text segment.
  std::vector<SectionSnapshot> sections;
  for (const auto& [name, placement] : image.sections) {
    if (name.rfind(".mv.", 0) != 0 || placement.size == 0) {
      continue;
    }
    SectionSnapshot snap;
    snap.addr = placement.addr;
    snap.bytes.resize(placement.size);
    ASSERT_TRUE(
        vm.memory().ReadRaw(snap.addr, snap.bytes.data(), snap.bytes.size()).ok());
    sections.push_back(std::move(snap));
  }
  ASSERT_GE(sections.size(), 3u) << "expected .mv.variables/.functions/.callsites";
  std::vector<uint8_t> pristine_text(image.text_size);
  ASSERT_TRUE(
      vm.memory().ReadRaw(image.text_base, pristine_text.data(), image.text_size).ok());

  AttachOptions paranoid;  // paranoid = true is the default under test
  int attach_rejected = 0;
  int commit_rejected = 0;
  int committed = 0;

  for (int seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(static_cast<uint32_t>(seed) * 2654435761u + 1);

    // Restore the pristine image, then corrupt one descriptor section.
    for (const SectionSnapshot& snap : sections) {
      ASSERT_TRUE(
          vm.memory().WriteRaw(snap.addr, snap.bytes.data(), snap.bytes.size()).ok());
    }
    ASSERT_TRUE(vm.memory()
                    .WriteRaw(image.text_base, pristine_text.data(), image.text_size)
                    .ok());
    vm.FlushAllIcache();
    ASSERT_TRUE(program->WriteGlobal("acc", 0, 8).ok());

    const SectionSnapshot& victim =
        sections[rng() % sections.size()];
    const int flips = 1 + static_cast<int>(rng() % kMaxBitFlips);
    for (int f = 0; f < flips; ++f) {
      const uint64_t offset = rng() % victim.bytes.size();
      uint8_t byte = 0;
      ASSERT_TRUE(vm.memory().ReadRaw(victim.addr + offset, &byte, 1).ok());
      byte ^= static_cast<uint8_t>(1u << (rng() % 8));
      ASSERT_TRUE(vm.memory().WriteRaw(victim.addr + offset, &byte, 1).ok());
    }

    // Attach must either reject with a structured diagnostic or produce a
    // runtime whose commit is safe.
    Result<MultiverseRuntime> runtime =
        MultiverseRuntime::Attach(&vm, image, paranoid);
    if (!runtime.ok()) {
      ++attach_rejected;
      EXPECT_FALSE(runtime.status().message().empty());
      continue;
    }

    // Whatever shape the corrupted guards took, the attach-time interval
    // index must agree with the linear selection scan on every function —
    // same value on success, rejection on both sides otherwise.
    for (const RtFunction& fn : runtime->table().functions) {
      Result<uint64_t> linear =
          runtime->SelectVariantForTest(fn.generic_addr, /*use_index=*/false);
      Result<uint64_t> indexed =
          runtime->SelectVariantForTest(fn.generic_addr, /*use_index=*/true);
      ASSERT_EQ(linear.ok(), indexed.ok())
          << fn.name << ": linear=" << linear.status().ToString()
          << " indexed=" << indexed.status().ToString();
      if (linear.ok()) {
        EXPECT_EQ(*linear, *indexed) << fn.name;
      }
    }

    Result<PatchStats> stats = runtime->Commit();
    if (!stats.ok()) {
      ++commit_rejected;
      EXPECT_FALSE(stats.status().message().empty());
      // A failed commit is transactional: the text is untouched.
      std::vector<uint8_t> text(image.text_size);
      ASSERT_TRUE(
          vm.memory().ReadRaw(image.text_base, text.data(), image.text_size).ok());
      EXPECT_EQ(text, pristine_text);
      continue;
    }

    // The corrupted-but-validated table committed: whatever configuration it
    // now describes, the patched image must still execute (no torn sites, no
    // wild patches) and revert bit-exactly.
    ++committed;
    Result<uint64_t> ran = program->Call("run", {4});
    EXPECT_TRUE(ran.ok()) << "seed " << seed
                          << " committed a non-executable image: "
                          << ran.status().ToString();
    Result<PatchStats> reverted = runtime->Revert();
    ASSERT_TRUE(reverted.ok()) << reverted.status().ToString();
    std::vector<uint8_t> text(image.text_size);
    ASSERT_TRUE(
        vm.memory().ReadRaw(image.text_base, text.data(), image.text_size).ok());
    EXPECT_EQ(text, pristine_text) << "seed " << seed << " left residue after revert";
  }

  // The fuzz must actually exercise all three outcomes over 256 seeds: flips
  // that break parsing/validation, and flips the validator proves harmless.
  EXPECT_GT(attach_rejected, 0);
  EXPECT_GT(committed, 0);
  // Not every corruption is caught at attach; commit-time rejections (e.g. a
  // switch whose storage address flipped out of range) are acceptable too,
  // so only record the split for the log.
  RecordProperty("attach_rejected", attach_rejected);
  RecordProperty("commit_rejected", commit_rejected);
  RecordProperty("committed", committed);
}

}  // namespace
}  // namespace mv

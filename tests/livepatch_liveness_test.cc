// Liveness of the live-commit protocols when a mutator core is pinned inside
// a CLI critical section: the quiescence rendezvous must time out (bounded
// wait), roll the attempt back, retry with backoff, and finally fail with a
// structured error and a pristine image — never hang, never tear. The
// breakpoint protocol has no safe-point requirement and must commit right
// through the critical section.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/program.h"
#include "src/livepatch/livepatch.h"
#include "src/obj/linker.h"
#include "src/support/faultpoint.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

// `hold()` disables interrupts and spins until the host releases `lock` —
// the shape of a spinlock-protected critical section (src/workloads/kernel.cc)
// reduced to its liveness-relevant core.
constexpr char kSource[] = R"(
__attribute__((multiverse)) bool feature;
long count;
long lock;
__attribute__((multiverse))
void tick() { if (feature) { count = count + 2; } else { count = count + 1; } }
long run(long n) { long i; for (i = 0; i < n; ++i) { tick(); } return count; }
void hold() {
  __builtin_cli();
  while (lock) { __builtin_pause(); }
  __builtin_sti();
}
)";

class LivenessHarness {
 public:
  LivenessHarness() {
    BuildOptions options;
    options.vm_cores = 2;
    Result<std::unique_ptr<Program>> built =
        Program::Build({{"liveness", kSource}}, options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    program_ = std::move(*built);
    EXPECT_TRUE(program_->WriteGlobal("feature", 1, 1).ok());
  }

  // Parks core 1 inside hold()'s interrupts-disabled spin loop.
  void PinCoreInCriticalSection() {
    ASSERT_TRUE(program_->WriteGlobal("lock", 1, 8).ok());
    Result<uint64_t> hold = program_->SymbolAddress("hold");
    ASSERT_TRUE(hold.ok());
    SetupCall(program_->image(), &program_->vm(), *hold, {}, /*core=*/1);
    for (int steps = 0; steps < 200; ++steps) {
      if (!program_->vm().core(1).interrupts_enabled) {
        return;
      }
      program_->vm().Step(1);
    }
    FAIL() << "core 1 never executed CLI";
  }

  void ReleaseLock() { ASSERT_TRUE(program_->WriteGlobal("lock", 0, 8).ok()); }

  std::vector<uint8_t> TextSnapshot() {
    std::vector<uint8_t> text(program_->image().text_size);
    EXPECT_TRUE(program_->vm()
                    .memory()
                    .ReadRaw(program_->image().text_base, text.data(), text.size())
                    .ok());
    return text;
  }

  Result<LiveCommitStats> Commit(CommitProtocol protocol, int max_attempts) {
    LiveCommitOptions options;
    options.protocol = protocol;
    options.mutator_cores = {1};
    options.max_rendezvous_steps = 200;  // bounded: the spinner must time out
    options.txn.max_attempts = max_attempts;
    options.txn.backoff_ticks = 64;
    return multiverse_commit_live(&program_->vm(), &program_->runtime(), options);
  }

  // Behaviour discriminator: run with `feature` flipped to 0 — the generic
  // image follows the switch (10), an image committed to the feature=1
  // variant ignores it (20). `feature` is restored afterwards.
  uint64_t Transcript() {
    EXPECT_TRUE(program_->WriteGlobal("count", 0, 8).ok());
    EXPECT_TRUE(program_->WriteGlobal("feature", 0, 1).ok());
    Result<uint64_t> result = program_->Call("run", {10});
    EXPECT_TRUE(program_->WriteGlobal("feature", 1, 1).ok());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : 0;
  }

  Program& program() { return *program_; }

 private:
  std::unique_ptr<Program> program_;
};

TEST(LivenessTest, QuiescenceTimesOutRollsBackAndReportsAfterBoundedRetry) {
  LivenessHarness h;
  h.PinCoreInCriticalSection();
  const std::vector<uint8_t> pristine = h.TextSnapshot();

  Result<LiveCommitStats> stats = h.Commit(CommitProtocol::kQuiescence, 2);
  ASSERT_FALSE(stats.ok()) << "rendezvous with a pinned core must not succeed";
  const std::string error = stats.status().ToString();
  EXPECT_NE(error.find("rolled back after 2 attempt(s)"), std::string::npos)
      << error;
  EXPECT_NE(error.find("safe point"), std::string::npos) << error;

  // Graceful degradation: the image is exactly pre-commit and the pinned core
  // is still alive in its critical section.
  EXPECT_EQ(h.TextSnapshot(), pristine);
  EXPECT_FALSE(h.program().vm().core(1).interrupts_enabled);
  EXPECT_FALSE(h.program().vm().core(1).halted);

  EXPECT_EQ(h.Transcript(), 10u);  // still generic behaviour, not torn
}

TEST(LivenessTest, QuiescenceSucceedsOnceTheCriticalSectionEnds) {
  LivenessHarness h;
  h.PinCoreInCriticalSection();

  Result<LiveCommitStats> blocked = h.Commit(CommitProtocol::kQuiescence, 1);
  ASSERT_FALSE(blocked.ok());

  // Release the lock: the retry's rendezvous steps the spinner out of the
  // loop (it STIs and returns), so the same commit now goes through.
  h.ReleaseLock();
  Result<LiveCommitStats> stats = h.Commit(CommitProtocol::kQuiescence, 2);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txn.rollbacks, 0);
  EXPECT_GT(stats->ops_applied, 0);

  EXPECT_EQ(h.Transcript(), 20u);
}

TEST(LivenessTest, BreakpointProtocolCommitsThroughACriticalSection) {
  // No stop-the-world rendezvous: a core that never leaves its critical
  // section (and never fetches an in-flight site) is simply not disturbed.
  LivenessHarness h;
  h.PinCoreInCriticalSection();

  Result<LiveCommitStats> stats = h.Commit(CommitProtocol::kBreakpoint, 2);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->txn.rollbacks, 0);
  EXPECT_FALSE(h.program().vm().core(1).interrupts_enabled);

  EXPECT_EQ(h.Transcript(), 20u);

  // Let the spinner finish cleanly once released.
  h.ReleaseLock();
  for (int steps = 0; steps < 1000 && !h.program().vm().core(1).halted; ++steps) {
    h.program().vm().Step(1);
  }
  EXPECT_TRUE(h.program().vm().core(1).halted);
}

// The quiescence timeout must also hold when the spin is *outside* any CLI
// region but inside a to-be-patched range — the other starvation mode. A
// faulted (wedged) mutator, by contrast, must not be retried at all.
TEST(LivenessTest, WedgedMutatorIsNotRetried) {
  LivenessHarness h;
  // Pin core 1 at a non-executable pc with interrupts disabled: the
  // rendezvous cannot treat it as safe, and the first single-step faults.
  Core& core = h.program().vm().core(1);
  core.pc = 0;  // before the text base: not executable
  core.halted = false;
  core.interrupts_enabled = false;

  Result<LiveCommitStats> stats = h.Commit(CommitProtocol::kQuiescence, 3);
  ASSERT_FALSE(stats.ok());
  const std::string error = stats.status().ToString();
  EXPECT_NE(error.find("rolled back after 1 attempt(s)"), std::string::npos)
      << error;  // non-retryable: one attempt despite max_attempts = 3
  EXPECT_NE(error.find("faulted"), std::string::npos) << error;
}

}  // namespace
}  // namespace mv

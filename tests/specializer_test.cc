// Tests for ahead-of-time variant generation (paper §3): domains, cross
// products, merging with guard ranges, warnings, and the explosion cap.
#include <gtest/gtest.h>

#include "src/core/specializer.h"
#include "src/frontend/frontend.h"

namespace mv {
namespace {

Module Compile(const std::string& source) {
  DiagnosticSink diag;
  Result<Module> module = CompileToIr(source, "spec", {}, &diag);
  EXPECT_TRUE(module.ok()) << module.status().ToString();
  return std::move(module.value());
}

const Function* FindVariant(const Module& module, const std::string& name) {
  for (const Function& fn : module.functions) {
    if (fn.name == name && fn.mv.is_variant()) {
      return &fn;
    }
  }
  return nullptr;
}

TEST(SpecializerTest, DefaultIntDomainIsBool) {
  Module module = Compile(R"(
__attribute__((multiverse)) int flag;
__attribute__((multiverse)) void f() { if (flag) { __builtin_fence(); } }
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->variants_generated, 2u);  // {0, 1}
  EXPECT_NE(FindVariant(module, "f.flag=0"), nullptr);
  EXPECT_NE(FindVariant(module, "f.flag=1"), nullptr);
}

TEST(SpecializerTest, EnumDomainCoversAllItems) {
  Module module = Compile(R"(
enum Level { L0, L1, L2 };
__attribute__((multiverse)) enum Level level;
int out;
__attribute__((multiverse)) void f() { if (level == L2) { out = 1; } }
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->variants_generated, 3u);
  // L0 and L1 variants are both empty and merge into one box [0,1].
  EXPECT_EQ(stats->variants_merged, 1u);
  EXPECT_EQ(stats->variants_kept, 2u);
  EXPECT_NE(FindVariant(module, "f.level=0-1"), nullptr);
}

TEST(SpecializerTest, ExplicitDomainRespected) {
  Module module = Compile(R"(
__attribute__((multiverse(4, 16, 64))) int block_size;
long f_out;
__attribute__((multiverse)) void f() { f_out = block_size * 2; }
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->variants_generated, 3u);
  EXPECT_EQ(stats->variants_merged, 0u);
  EXPECT_NE(FindVariant(module, "f.block_size=16"), nullptr);
}

TEST(SpecializerTest, CrossProductOfTwoSwitches) {
  Module module = Compile(R"(
__attribute__((multiverse)) bool a;
__attribute__((multiverse(0, 1, 2))) int b;
long out;
__attribute__((multiverse)) void f() { if (a) { out = b; } }
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->variants_generated, 6u);  // 2 x 3
  // a=0 collapses for all three b values into one variant with a box guard.
  EXPECT_EQ(stats->variants_merged, 2u);
  EXPECT_EQ(stats->variants_kept, 4u);

  const Function* generic = module.FindFunction("f");
  ASSERT_NE(generic, nullptr);
  ASSERT_EQ(generic->mv.variants.size(), 4u);
  // Find the merged record and check its guard ranges.
  bool found_box = false;
  for (const VariantRecord& record : generic->mv.variants) {
    for (const GuardRange& guard : record.guards) {
      if (guard.lo == 0 && guard.hi == 2) {
        found_box = true;
        // The other guard must pin a=0.
        for (const GuardRange& other : record.guards) {
          if (&other != &guard) {
            EXPECT_EQ(other.lo, 0);
            EXPECT_EQ(other.hi, 0);
          }
        }
      }
    }
  }
  EXPECT_TRUE(found_box) << "merged variant should carry a [0,2] range guard";
}

TEST(SpecializerTest, NonContiguousMergeSharesBodyWithSeparateGuards) {
  // f depends only on parity-ish structure: values 0 and 2 behave equally,
  // value 1 differs — 0 and 2 merge but [0,2] would wrongly cover 1.
  Module module = Compile(R"(
__attribute__((multiverse(0, 1, 2))) int mode;
long out;
__attribute__((multiverse)) void f() { if (mode == 1) { out = 111; } }
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->variants_generated, 3u);
  EXPECT_EQ(stats->variants_kept, 2u);
  const Function* generic = module.FindFunction("f");
  ASSERT_NE(generic, nullptr);
  // Three guard records but only two distinct bodies; the merged group emits
  // its members consecutively: [mode=0, mode=2] share a body, mode=1 differs.
  ASSERT_EQ(generic->mv.variants.size(), 3u);
  for (const VariantRecord& record : generic->mv.variants) {
    ASSERT_EQ(record.guards.size(), 1u);
    EXPECT_EQ(record.guards[0].lo, record.guards[0].hi)
        << "non-box merges must keep exact single-value guards";
  }
  EXPECT_EQ(generic->mv.variants[0].symbol, generic->mv.variants[1].symbol);
  EXPECT_NE(generic->mv.variants[0].symbol, generic->mv.variants[2].symbol);
  EXPECT_EQ(generic->mv.variants[0].guards[0].lo, 0);
  EXPECT_EQ(generic->mv.variants[1].guards[0].lo, 2);
  EXPECT_EQ(generic->mv.variants[2].guards[0].lo, 1);
}

TEST(SpecializerTest, WarnsOnWriteToBoundSwitch) {
  Module module = Compile(R"(
__attribute__((multiverse)) int flag;
__attribute__((multiverse)) void f() { if (flag) { flag = 0; } }
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  ASSERT_FALSE(stats->warnings.empty());
  EXPECT_NE(stats->warnings[0].find("write to bound configuration switch"),
            std::string::npos);
}

TEST(SpecializerTest, WarnsWhenNoSwitchReferenced) {
  Module module = Compile(R"(
__attribute__((multiverse)) void f() { __builtin_fence(); }
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->variants_generated, 0u);
  ASSERT_EQ(stats->warnings.size(), 1u);
  EXPECT_NE(stats->warnings[0].find("references no configuration switch"),
            std::string::npos);
}

TEST(SpecializerTest, ExplosionCapSkipsFunction) {
  Module module = Compile(R"(
__attribute__((multiverse(0,1,2,3,4,5,6,7))) int a;
__attribute__((multiverse(0,1,2,3,4,5,6,7))) int b;
__attribute__((multiverse(0,1,2,3,4,5,6,7))) int c;
long out;
__attribute__((multiverse)) void f() { out = a + b + c; }
)");
  SpecializeOptions options;
  options.max_variants_per_function = 64;  // 8^3 = 512 >> 64
  Result<SpecializeStats> stats = SpecializeModule(&module, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->variants_generated, 0u);
  ASSERT_EQ(stats->warnings.size(), 1u);
  EXPECT_NE(stats->warnings[0].find("exceed the per-function cap"), std::string::npos);
  // The generic function must remain intact and unspecialized.
  const Function* generic = module.FindFunction("f");
  ASSERT_NE(generic, nullptr);
  EXPECT_TRUE(generic->mv.variants.empty());
}

TEST(SpecializerTest, GenericBodyKeepsDynamicChecks) {
  Module module = Compile(R"(
__attribute__((multiverse)) int flag;
long out;
__attribute__((multiverse)) void f() { if (flag) { out = 1; } }
)");
  ASSERT_TRUE(SpecializeModule(&module).ok());
  const Function* generic = module.FindFunction("f");
  ASSERT_NE(generic, nullptr);
  bool loads_switch = false;
  for (const BasicBlock& bb : generic->blocks) {
    for (const Instr& instr : bb.instrs) {
      if (instr.op == IrOp::kLoadGlobal) {
        loads_switch = true;
      }
    }
  }
  EXPECT_TRUE(loads_switch) << "the generic variant must still read the switch";
  EXPECT_TRUE(generic->no_inline);
}

TEST(SpecializerTest, VariantsCarryBindingMetadata) {
  Module module = Compile(R"(
__attribute__((multiverse)) int flag;
long out;
__attribute__((multiverse)) void f() { if (flag) { out = 1; } }
)");
  ASSERT_TRUE(SpecializeModule(&module).ok());
  const Function* v1 = FindVariant(module, "f.flag=1");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->mv.generic_name, "f");
  ASSERT_EQ(v1->mv.binding.size(), 1u);
  EXPECT_EQ(v1->mv.binding.begin()->second, 1);
}

TEST(SpecializerTest, FnPtrSwitchesAreNotValueSwitches) {
  Module module = Compile(R"(
__attribute__((multiverse)) void (*handler)(void);
void noop() {}
__attribute__((multiverse)) int flag;
__attribute__((multiverse)) void f() {
  if (flag) { handler(); }
}
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  // Only `flag` participates in the cross product, not the fn pointer.
  EXPECT_EQ(stats->variants_generated, 2u);
}

TEST(SpecializerTest, PartialSpecializationBindsOnlyListedSwitches) {
  // Paper §7.1: "multiverse supports partially specialized function variants
  // in which only some of the referenced configuration variables are fixed".
  Module module = Compile(R"(
__attribute__((multiverse)) bool hot;
__attribute__((multiverse(0,1,2,3,4,5,6,7))) int level;
long out;
__attribute__((multiverse(hot)))
void f() {
  if (hot) {
    out = out + level;
  }
}
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  // Only `hot` participates: 2 variants instead of 2 x 8 = 16.
  EXPECT_EQ(stats->variants_generated, 2u);
  // The hot=1 variant must still read `level` dynamically.
  const Function* v1 = FindVariant(module, "f.hot=1");
  ASSERT_NE(v1, nullptr);
  bool reads_level = false;
  for (const BasicBlock& bb : v1->blocks) {
    for (const Instr& instr : bb.instrs) {
      if (instr.op == IrOp::kLoadGlobal) {
        reads_level = true;
      }
    }
  }
  EXPECT_TRUE(reads_level);
  // Guards only mention the bound switch.
  const Function* generic = module.FindFunction("f");
  ASSERT_NE(generic, nullptr);
  for (const VariantRecord& record : generic->mv.variants) {
    EXPECT_EQ(record.guards.size(), 1u);
  }
}

TEST(SpecializerTest, PartialSpecializationUnknownNameIsAnError) {
  DiagnosticSink diag;
  Result<Module> module = CompileToIr(R"(
__attribute__((multiverse)) int a;
__attribute__((multiverse(nonexistent)))
void f() { if (a) { } }
)",
                                      "spec", {}, &diag);
  EXPECT_FALSE(module.ok());
  EXPECT_NE(diag.ToString().find("not a configuration switch"), std::string::npos);
}

TEST(SpecializerTest, ExternMultiverseFunctionsSkipped) {
  Module module = Compile(R"(
extern __attribute__((multiverse)) void f();
void g() { f(); }
)");
  Result<SpecializeStats> stats = SpecializeModule(&module);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->functions_specialized, 0u);
  EXPECT_TRUE(stats->warnings.empty());
}

}  // namespace
}  // namespace mv

#include <gtest/gtest.h>

#include "src/mvir/builder.h"
#include "src/mvir/ir.h"
#include "src/opt/passes.h"

namespace mv {
namespace {

// ---------------------------------------------------------------------------
// Constant evaluation semantics.

TEST(NormalizeTest, SignedAndUnsignedWidths) {
  EXPECT_EQ(NormalizeValue(0x1FF, IrType::U8()), 0xFF);
  EXPECT_EQ(NormalizeValue(0xFF, IrType::I8()), -1);
  EXPECT_EQ(NormalizeValue(0x18000, IrType::I16()), -32768);
  EXPECT_EQ(NormalizeValue(0xFFFFFFFF, IrType::U32()), 0xFFFFFFFF);
  EXPECT_EQ(NormalizeValue(0xFFFFFFFF, IrType::I32()), -1);
  EXPECT_EQ(NormalizeValue(-1, IrType::I64()), -1);
  EXPECT_EQ(NormalizeValue(12345, IrType::Ptr()), 12345);
}

struct EvalBinCase {
  const char* name;
  BinKind kind;
  int64_t lhs;
  int64_t rhs;
  IrType type;
  std::optional<int64_t> expected;
};

class EvalBinTest : public ::testing::TestWithParam<EvalBinCase> {};

TEST_P(EvalBinTest, Evaluates) {
  const EvalBinCase& c = GetParam();
  EXPECT_EQ(EvalBin(c.kind, c.lhs, c.rhs, c.type), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EvalBinTest,
    ::testing::Values(
        EvalBinCase{"add", BinKind::kAdd, 2, 3, IrType::I32(), 5},
        EvalBinCase{"add_wrap_u32", BinKind::kAdd, 0xFFFFFFFF, 1, IrType::U32(), 0},
        EvalBinCase{"add_wrap_i32", BinKind::kAdd, INT32_MAX, 1, IrType::I32(),
                    INT32_MIN},
        EvalBinCase{"sub", BinKind::kSub, 2, 3, IrType::I64(), -1},
        EvalBinCase{"mul_trunc_u8", BinKind::kMul, 16, 17, IrType::U8(), 16},
        EvalBinCase{"sdiv", BinKind::kSDiv, -7, 2, IrType::I32(), -3},
        EvalBinCase{"sdiv_zero", BinKind::kSDiv, 1, 0, IrType::I32(), std::nullopt},
        EvalBinCase{"sdiv_overflow", BinKind::kSDiv, INT64_MIN, -1, IrType::I64(),
                    std::nullopt},
        EvalBinCase{"udiv", BinKind::kUDiv, -1, 2, IrType::U64(),
                    static_cast<int64_t>(UINT64_MAX / 2)},
        EvalBinCase{"srem", BinKind::kSRem, -7, 2, IrType::I32(), -1},
        EvalBinCase{"urem_zero", BinKind::kURem, 5, 0, IrType::U32(), std::nullopt},
        EvalBinCase{"and", BinKind::kAnd, 0xFF, 0x0F, IrType::I32(), 0x0F},
        EvalBinCase{"shl_narrow", BinKind::kShl, 1, 9, IrType::U8(), 0},
        EvalBinCase{"lshr", BinKind::kLShr, -1, 63, IrType::U64(), 1},
        EvalBinCase{"ashr", BinKind::kAShr, -16, 2, IrType::I64(), -4}),
    [](const ::testing::TestParamInfo<EvalBinCase>& info) { return info.param.name; });

TEST(EvalCmpTest, SignedVsUnsigned) {
  EXPECT_EQ(EvalCmp(CmpPred::kSLt, -1, 1), 1);
  EXPECT_EQ(EvalCmp(CmpPred::kULt, -1, 1), 0);
  EXPECT_EQ(EvalCmp(CmpPred::kEq, 5, 5), 1);
  EXPECT_EQ(EvalCmp(CmpPred::kNe, 5, 5), 0);
  EXPECT_EQ(EvalCmp(CmpPred::kUGe, -1, 0), 1);
  EXPECT_EQ(EvalCmp(CmpPred::kSGe, -1, 0), 0);
}

// ---------------------------------------------------------------------------
// IR pass behaviour on hand-built functions.

// Builds: fn() { if (LOAD g0) { store g1 <- 1 } else { store g1 <- 2 } ret }
Module MakeBranchyModule() {
  Module module;
  module.name = "test";
  GlobalVar g0;
  g0.name = "cfg";
  g0.type = IrType::I32();
  g0.is_multiverse = true;
  g0.domain = {0, 1};
  module.globals.push_back(g0);
  GlobalVar g1;
  g1.name = "out";
  g1.type = IrType::I32();
  module.globals.push_back(g1);

  Function fn;
  fn.name = "branchy";
  fn.mv.is_multiverse = true;
  const uint32_t entry = fn.AddBlock();
  const uint32_t then_bb = fn.AddBlock();
  const uint32_t else_bb = fn.AddBlock();
  const uint32_t exit_bb = fn.AddBlock();
  IrBuilder b(&fn);
  b.SetBlock(entry);
  Operand cond = b.LoadGlobal(0, IrType::I32());
  b.CondBr(cond, then_bb, else_bb);
  b.SetBlock(then_bb);
  b.StoreGlobal(1, Operand::Const(1, IrType::I32()), IrType::I32());
  b.Br(exit_bb);
  b.SetBlock(else_bb);
  b.StoreGlobal(1, Operand::Const(2, IrType::I32()), IrType::I32());
  b.Br(exit_bb);
  b.SetBlock(exit_bb);
  b.Ret();
  module.functions.push_back(std::move(fn));
  EXPECT_TRUE(VerifyModule(module).ok());
  return module;
}

TEST(SubstituteTest, ReplacesReadsAndWarnsOnWrites) {
  Module module = MakeBranchyModule();
  Function& fn = module.functions[0];
  // Add a write to the switch to provoke the warning.
  Instr write;
  write.op = IrOp::kStoreGlobal;
  write.global = 0;
  write.type = IrType::I32();
  write.args = {Operand::Const(9, IrType::I32())};
  fn.blocks[0].instrs.insert(fn.blocks[0].instrs.begin(), write);

  std::vector<std::string> warnings;
  EXPECT_TRUE(SubstituteGlobalReads(fn, {{0, 1}}, &warnings));
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("write to bound configuration switch"), std::string::npos);
  // No kLoadGlobal of g0 remains.
  for (const BasicBlock& bb : fn.blocks) {
    for (const Instr& instr : bb.instrs) {
      EXPECT_FALSE(instr.op == IrOp::kLoadGlobal && instr.global == 0);
    }
  }
}

TEST(PipelineTest, SpecializedBranchCollapses) {
  for (int64_t value : {0, 1}) {
    Module module = MakeBranchyModule();
    Function& fn = module.functions[0];
    SubstituteGlobalReads(fn, {{0, value}}, nullptr);
    EXPECT_TRUE(RunPipeline(fn, module));
    ASSERT_TRUE(VerifyFunction(fn, module).ok());
    // A single block remains: store of the selected constant + ret.
    ASSERT_EQ(fn.blocks.size(), 1u);
    ASSERT_EQ(fn.blocks[0].instrs.size(), 2u);
    const Instr& store = fn.blocks[0].instrs[0];
    EXPECT_EQ(store.op, IrOp::kStoreGlobal);
    EXPECT_EQ(store.args[0].imm, value != 0 ? 1 : 2);
  }
}

TEST(PipelineTest, DifferentBindingsCanonicalizeDifferently) {
  Module m0 = MakeBranchyModule();
  Module m1 = MakeBranchyModule();
  SubstituteGlobalReads(m0.functions[0], {{0, 0}}, nullptr);
  SubstituteGlobalReads(m1.functions[0], {{0, 1}}, nullptr);
  RunPipeline(m0.functions[0], m0);
  RunPipeline(m1.functions[0], m1);
  EXPECT_FALSE(FunctionsEquivalent(m0.functions[0], m1.functions[0]));
}

TEST(CanonicalizeTest, InvariantUnderRenumbering) {
  // Same computation, built with different vreg/block numbering gaps.
  auto build = [](bool with_gap) {
    Function fn;
    fn.name = "f";
    fn.AddBlock();
    IrBuilder b(&fn);
    b.SetBlock(0);
    if (with_gap) {
      fn.NewVreg();  // burn a vreg id
      fn.NewVreg();
    }
    Operand x = b.Bin(BinKind::kAdd, Operand::Const(1, IrType::I64()),
                      Operand::Const(2, IrType::I64()), IrType::I64());
    b.Ret(x);
    return fn;
  };
  const Function a = build(false);
  const Function c = build(true);
  EXPECT_TRUE(FunctionsEquivalent(a, c));
}

TEST(SlotForwardingTest, ForwardsWithinBlock) {
  Function fn;
  fn.name = "f";
  const uint32_t slot = fn.AddSlot("x", IrType::I64());
  fn.AddBlock();
  IrBuilder b(&fn);
  b.SetBlock(0);
  b.StoreSlot(slot, Operand::Const(7, IrType::I64()));
  Operand loaded = b.LoadSlot(slot);
  b.Ret(loaded);
  Module module;
  module.functions.push_back(fn);

  Function& f = module.functions[0];
  EXPECT_TRUE(ForwardSlots(f));
  FoldConstants(f);
  EliminateDeadCode(f);
  // ret should now return the constant directly; the load is gone.
  const Instr& ret = f.blocks[0].instrs.back();
  ASSERT_EQ(ret.op, IrOp::kRet);
  ASSERT_TRUE(ret.args[0].is_const());
  EXPECT_EQ(ret.args[0].imm, 7);
}

TEST(SlotForwardingTest, AddressTakenBlocksPromotion) {
  Function fn;
  fn.name = "f";
  const uint32_t slot = fn.AddSlot("x", IrType::I64());
  fn.AddBlock();
  IrBuilder b(&fn);
  b.SetBlock(0);
  b.StoreSlot(slot, Operand::Const(7, IrType::I64()));
  Operand addr = b.SlotAddr(slot);
  b.Store(addr, Operand::Const(9, IrType::I64()), IrType::I64());
  Operand loaded = b.LoadSlot(slot);
  b.Ret(loaded);
  Module module;
  module.functions.push_back(fn);

  Function& f = module.functions[0];
  RunPipeline(f, module);
  const Instr& ret = f.blocks[0].instrs.back();
  ASSERT_EQ(ret.op, IrOp::kRet);
  // Must NOT be folded to 7: the slot was modified through its address.
  EXPECT_FALSE(ret.args[0].is_const());
}

TEST(SlotForwardingTest, SingleStoreConstantPromotesAcrossBlocks) {
  Function fn;
  fn.name = "f";
  const uint32_t slot = fn.AddSlot("x", IrType::I64());
  const uint32_t entry = fn.AddBlock();
  const uint32_t next = fn.AddBlock();
  IrBuilder b(&fn);
  b.SetBlock(entry);
  b.StoreSlot(slot, Operand::Const(5, IrType::I64()));
  b.Br(next);
  b.SetBlock(next);
  Operand loaded = b.LoadSlot(slot);
  Operand sum = b.Bin(BinKind::kAdd, loaded, Operand::Const(1, IrType::I64()),
                      IrType::I64());
  b.Ret(sum);
  Module module;
  module.functions.push_back(fn);

  Function& f = module.functions[0];
  RunPipeline(f, module);
  ASSERT_EQ(f.blocks.size(), 1u);  // merged
  const Instr& ret = f.blocks[0].instrs.back();
  ASSERT_TRUE(ret.args[0].is_const());
  EXPECT_EQ(ret.args[0].imm, 6);
}

TEST(CfgTest, RemovesUnreachableBlocks) {
  Function fn;
  fn.name = "f";
  const uint32_t entry = fn.AddBlock();
  const uint32_t dead = fn.AddBlock();
  const uint32_t exit_bb = fn.AddBlock();
  IrBuilder b(&fn);
  b.SetBlock(entry);
  b.Br(exit_bb);
  b.SetBlock(dead);
  b.StoreGlobal(0, Operand::Const(1, IrType::I32()), IrType::I32());
  b.Br(exit_bb);
  b.SetBlock(exit_bb);
  b.Ret();
  Module module;
  GlobalVar g;
  g.name = "g";
  g.type = IrType::I32();
  module.globals.push_back(g);
  module.functions.push_back(fn);

  Function& f = module.functions[0];
  EXPECT_TRUE(SimplifyCfg(f));
  ASSERT_TRUE(VerifyFunction(f, module).ok());
  EXPECT_EQ(f.blocks.size(), 1u);
}

TEST(CfgTest, SelfLoopSurvives) {
  Function fn;
  fn.name = "f";
  const uint32_t entry = fn.AddBlock();
  const uint32_t loop = fn.AddBlock();
  IrBuilder b(&fn);
  b.SetBlock(entry);
  b.Br(loop);
  b.SetBlock(loop);
  b.Fence();  // side effect so DCE keeps it
  b.Br(loop);
  Module module;
  module.functions.push_back(fn);
  Function& f = module.functions[0];
  SimplifyCfg(f);
  ASSERT_TRUE(VerifyFunction(f, module).ok());
  // The infinite loop must still exist.
  bool has_self_loop = false;
  for (const BasicBlock& bb : f.blocks) {
    const Instr* term = bb.terminator();
    if (term != nullptr && term->op == IrOp::kBr && term->bb_then == bb.id) {
      has_self_loop = true;
    }
  }
  EXPECT_TRUE(has_self_loop);
}

TEST(DceTest, KeepsSideEffectsDropsDeadValues) {
  Function fn;
  fn.name = "f";
  fn.AddSlot("never_read", IrType::I64());
  fn.AddBlock();
  IrBuilder b(&fn);
  b.SetBlock(0);
  b.Bin(BinKind::kAdd, Operand::Const(1, IrType::I64()), Operand::Const(2, IrType::I64()),
        IrType::I64());                                        // dead value
  b.StoreSlot(0, Operand::Const(3, IrType::I64()));            // dead store
  b.StoreGlobal(0, Operand::Const(4, IrType::I32()), IrType::I32());  // side effect
  b.Ret();
  Module module;
  GlobalVar g;
  g.name = "g";
  g.type = IrType::I32();
  module.globals.push_back(g);
  module.functions.push_back(fn);

  Function& f = module.functions[0];
  EXPECT_TRUE(EliminateDeadCode(f));
  ASSERT_EQ(f.blocks[0].instrs.size(), 2u);
  EXPECT_EQ(f.blocks[0].instrs[0].op, IrOp::kStoreGlobal);
  EXPECT_EQ(f.blocks[0].instrs[1].op, IrOp::kRet);
}

// Algebraic identities must agree with plain evaluation for random operands.
struct IdentityCase {
  const char* name;
  BinKind kind;
  int64_t c;
  bool const_on_lhs;
};

class AlgebraicIdentityTest : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(AlgebraicIdentityTest, FoldedFormMatchesEvaluation) {
  const IdentityCase& c = GetParam();
  // Build: fn(slot x) { v = load x; r = v OP c (or c OP v); store g <- r }
  Module module;
  GlobalVar g;
  g.name = "out";
  g.type = IrType::I64();
  module.globals.push_back(g);
  Function fn;
  fn.name = "f";
  const uint32_t slot = fn.AddSlot("x", IrType::I64(), /*is_param=*/true);
  fn.param_types.push_back(IrType::I64());
  fn.AddBlock();
  IrBuilder b(&fn);
  b.SetBlock(0);
  Operand x = b.LoadSlot(slot);
  Operand lhs = c.const_on_lhs ? Operand::Const(c.c, IrType::I64()) : x;
  Operand rhs = c.const_on_lhs ? x : Operand::Const(c.c, IrType::I64());
  Operand r = b.Bin(c.kind, lhs, rhs, IrType::I64());
  b.StoreGlobal(0, r, IrType::I64());
  b.Ret();
  module.functions.push_back(std::move(fn));
  ASSERT_TRUE(VerifyModule(module).ok());

  Function& f = module.functions[0];
  RunPipeline(f, module);
  ASSERT_TRUE(VerifyFunction(f, module).ok());
  // The binary operation must have been simplified away.
  int bin_count = 0;
  for (const BasicBlock& bb : f.blocks) {
    for (const Instr& instr : bb.instrs) {
      if (instr.op == IrOp::kBin) {
        ++bin_count;
      }
    }
  }
  EXPECT_EQ(bin_count, 0) << "identity was not simplified";
  // And the store must receive either the loaded value or the constant 0.
  const Instr* store = nullptr;
  for (const BasicBlock& bb : f.blocks) {
    for (const Instr& instr : bb.instrs) {
      if (instr.op == IrOp::kStoreGlobal) {
        store = &instr;
      }
    }
  }
  ASSERT_NE(store, nullptr);
  const std::optional<int64_t> direct = EvalBin(c.kind, 123, c.c, IrType::I64());
  const std::optional<int64_t> swapped = EvalBin(c.kind, c.c, 123, IrType::I64());
  const int64_t expected = c.const_on_lhs ? *swapped : *direct;
  if (store->args[0].is_const()) {
    EXPECT_EQ(store->args[0].imm, expected);
  } else {
    EXPECT_EQ(expected, 123) << "non-constant result must be the identity value";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Identities, AlgebraicIdentityTest,
    ::testing::Values(IdentityCase{"add0", BinKind::kAdd, 0, false},
                      IdentityCase{"add0_lhs", BinKind::kAdd, 0, true},
                      IdentityCase{"sub0", BinKind::kSub, 0, false},
                      IdentityCase{"mul1", BinKind::kMul, 1, false},
                      IdentityCase{"mul0", BinKind::kMul, 0, false},
                      IdentityCase{"mul0_lhs", BinKind::kMul, 0, true},
                      IdentityCase{"and_allones", BinKind::kAnd, -1, false},
                      IdentityCase{"and0", BinKind::kAnd, 0, false},
                      IdentityCase{"or0", BinKind::kOr, 0, false},
                      IdentityCase{"xor0", BinKind::kXor, 0, false},
                      IdentityCase{"shl0", BinKind::kShl, 0, false},
                      IdentityCase{"ashr0", BinKind::kAShr, 0, false}),
    [](const ::testing::TestParamInfo<IdentityCase>& info) { return info.param.name; });

TEST(VerifierTest, CatchesMalformedFunctions) {
  Module module;
  Function fn;
  fn.name = "bad";
  fn.AddBlock();  // unterminated
  module.functions.push_back(fn);
  EXPECT_FALSE(VerifyModule(module).ok());

  module.functions[0].blocks[0].instrs.push_back([] {
    Instr ret;
    ret.op = IrOp::kRet;
    return ret;
  }());
  EXPECT_TRUE(VerifyModule(module).ok());

  // Use-before-def within a block.
  Instr use;
  use.op = IrOp::kBin;
  use.bin = BinKind::kAdd;
  use.result = 1;
  use.type = IrType::I64();
  use.args = {Operand::Vreg(0, IrType::I64()), Operand::Const(1, IrType::I64())};
  module.functions[0].next_vreg = 2;
  module.functions[0].blocks[0].instrs.insert(
      module.functions[0].blocks[0].instrs.begin(), use);
  EXPECT_FALSE(VerifyModule(module).ok());
}

}  // namespace
}  // namespace mv

// Robustness of the descriptor parser and the patcher against malformed or
// adversarial descriptor data: the runtime must fail cleanly, never crash or
// patch through bogus metadata.
#include <gtest/gtest.h>

#include "src/core/descriptors.h"
#include "src/core/program.h"
#include "src/core/runtime.h"

namespace mv {
namespace {

std::unique_ptr<Program> BuildSample() {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build(
      {{"d", R"(
__attribute__((multiverse)) int flag;
long out;
__attribute__((multiverse)) void f() { if (flag) { out = 1; } }
void caller() { f(); }
)"}},
      options);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? std::move(*program) : nullptr;
}

TEST(DescriptorRobustnessTest, TruncatedVariableSectionRejected) {
  std::unique_ptr<Program> program = BuildSample();
  ASSERT_NE(program, nullptr);
  Image image = program->image();
  image.sections[".mv.variables"].size -= 8;  // no longer a multiple of 32
  Result<DescriptorTable> table = DescriptorTable::Parse(program->vm().memory(), image);
  EXPECT_FALSE(table.ok());
}

TEST(DescriptorRobustnessTest, TruncatedFunctionSectionRejected) {
  std::unique_ptr<Program> program = BuildSample();
  ASSERT_NE(program, nullptr);
  Image image = program->image();
  image.sections[".mv.functions"].size += 4;
  EXPECT_FALSE(DescriptorTable::Parse(program->vm().memory(), image).ok());
}

TEST(DescriptorRobustnessTest, TruncatedCallsiteSectionRejected) {
  std::unique_ptr<Program> program = BuildSample();
  ASSERT_NE(program, nullptr);
  Image image = program->image();
  image.sections[".mv.callsites"].size = 8;
  EXPECT_FALSE(DescriptorTable::Parse(program->vm().memory(), image).ok());
}

TEST(DescriptorRobustnessTest, MissingSectionsMeanEmptyTables) {
  std::unique_ptr<Program> program = BuildSample();
  ASSERT_NE(program, nullptr);
  Image image = program->image();
  image.sections.erase(".mv.variables");
  image.sections.erase(".mv.functions");
  image.sections.erase(".mv.callsites");
  Result<DescriptorTable> table = DescriptorTable::Parse(program->vm().memory(), image);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_TRUE(table->variables.empty());
  EXPECT_TRUE(table->functions.empty());
  EXPECT_TRUE(table->callsites.empty());
}

TEST(DescriptorRobustnessTest, DanglingPointersInDescriptorsFailParse) {
  std::unique_ptr<Program> program = BuildSample();
  ASSERT_NE(program, nullptr);
  // Corrupt the variants pointer of the first function record (offset 24)
  // to point far outside memory.
  const SectionPlacement& fns = program->image().sections.at(".mv.functions");
  const uint64_t bogus = program->vm().memory().size() + 0x1000;
  ASSERT_TRUE(program->vm().memory().WriteRaw(fns.addr + 24, &bogus, 8).ok());
  Result<DescriptorTable> table =
      DescriptorTable::Parse(program->vm().memory(), program->image());
  EXPECT_FALSE(table.ok());
}

TEST(DescriptorRobustnessTest, GuardAgainstUnknownVariableFailsCommit) {
  std::unique_ptr<Program> program = BuildSample();
  ASSERT_NE(program, nullptr);
  // Corrupt the first guard's variable address after attach: re-attach a
  // fresh runtime so it parses the corrupted table.
  const SectionPlacement& guards = program->image().sections.at(".mv.guards");
  ASSERT_GT(guards.size, 0u);
  const uint64_t bogus = 0x4242;
  ASSERT_TRUE(program->vm().memory().WriteRaw(guards.addr, &bogus, 8).ok());
  // Paranoid attach (the default) rejects the corrupt guard up front with a
  // structured diagnostic.
  Result<MultiverseRuntime> runtime =
      MultiverseRuntime::Attach(&program->vm(), program->image());
  ASSERT_FALSE(runtime.ok());
  EXPECT_EQ(runtime.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(runtime.status().ToString().find("unknown"), std::string::npos)
      << runtime.status().ToString();
  // With validation off, the corruption surfaces later, at commit time.
  AttachOptions trusting;
  trusting.paranoid = false;
  Result<MultiverseRuntime> lax =
      MultiverseRuntime::Attach(&program->vm(), program->image(), trusting);
  ASSERT_TRUE(lax.ok());
  Result<PatchStats> commit = lax->Commit();
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), StatusCode::kInternal);
}

TEST(DescriptorRobustnessTest, MisalignedCallSiteRejected) {
  std::unique_ptr<Program> program = BuildSample();
  ASSERT_NE(program, nullptr);
  // Corrupt the first callsite record's site address (offset 8) to a text
  // address whose five patch bytes straddle an 8-byte word boundary. The
  // wait-free protocol retargets sites with a single atomic word store, so
  // paranoid attach must reject any site with addr % 8 > 3.
  const SectionPlacement& sites = program->image().sections.at(".mv.callsites");
  ASSERT_GT(sites.size, 0u);
  uint64_t site_addr = 0;
  ASSERT_TRUE(
      program->vm().memory().ReadRaw(sites.addr + 8, &site_addr, 8).ok());
  ASSERT_LE(site_addr % 8, 3u);
  const uint64_t misaligned = (site_addr & ~UINT64_C(7)) + 4;
  ASSERT_TRUE(
      program->vm().memory().WriteRaw(sites.addr + 8, &misaligned, 8).ok());
  Result<MultiverseRuntime> runtime =
      MultiverseRuntime::Attach(&program->vm(), program->image());
  ASSERT_FALSE(runtime.ok());
  EXPECT_EQ(runtime.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(runtime.status().ToString().find("word-aligned"), std::string::npos)
      << runtime.status().ToString();
}

TEST(DescriptorRobustnessTest, UnterminatedNameStringRejected) {
  std::unique_ptr<Program> program = BuildSample();
  ASSERT_NE(program, nullptr);
  // Point the variable name reference at the very end of memory, where no
  // NUL terminator can follow.
  const SectionPlacement& vars = program->image().sections.at(".mv.variables");
  const uint64_t end = program->vm().memory().size() - 1;
  const uint8_t non_nul = 'x';
  ASSERT_TRUE(program->vm().memory().WriteRaw(end, &non_nul, 1).ok());
  ASSERT_TRUE(program->vm().memory().WriteRaw(vars.addr + 16, &end, 8).ok());
  EXPECT_FALSE(DescriptorTable::Parse(program->vm().memory(), program->image()).ok());
}

}  // namespace
}  // namespace mv

#include <gtest/gtest.h>

#include "src/isa/cost_model.h"
#include "src/isa/isa.h"

namespace mv {
namespace {

// --- Parameterized encode/decode round-trip over every instruction form. ---

struct RoundTripCase {
  const char* name;
  Insn insn;
};

class EncodeDecodeTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(EncodeDecodeTest, RoundTrips) {
  const Insn& original = GetParam().insn;
  std::vector<uint8_t> bytes;
  Result<int> size = Encode(original, &bytes);
  ASSERT_TRUE(size.ok()) << size.status().ToString();
  EXPECT_EQ(static_cast<size_t>(*size), bytes.size());

  Result<Insn> decoded = Decode(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, original.op);
  EXPECT_EQ(decoded->a, original.a);
  EXPECT_EQ(decoded->size, bytes.size());
  EXPECT_EQ(decoded->imm, original.imm) << GetParam().name;
  // Disassembly must never be empty.
  EXPECT_FALSE(decoded->ToString().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, EncodeDecodeTest,
    ::testing::Values(
        RoundTripCase{"mov_ri", MakeMovRI(3, -123456789012345)},
        RoundTripCase{"mov_ri_max", MakeMovRI(0, INT64_MAX)},
        RoundTripCase{"mov_rr", MakeMovRR(4, 5)},
        RoundTripCase{"ld8u", MakeLoad(Op::kLd8U, 1, 2, -16)},
        RoundTripCase{"ld8s", MakeLoad(Op::kLd8S, 1, 2, 0)},
        RoundTripCase{"ld16u", MakeLoad(Op::kLd16U, 1, 2, 4)},
        RoundTripCase{"ld16s", MakeLoad(Op::kLd16S, 1, 2, 4)},
        RoundTripCase{"ld32u", MakeLoad(Op::kLd32U, 1, 2, 4)},
        RoundTripCase{"ld32s", MakeLoad(Op::kLd32S, 1, 2, 4)},
        RoundTripCase{"ld64", MakeLoad(Op::kLd64, 1, 2, 1 << 20)},
        RoundTripCase{"st8", MakeStore(Op::kSt8, 1, 2, 3)},
        RoundTripCase{"st16", MakeStore(Op::kSt16, 1, 2, 3)},
        RoundTripCase{"st32", MakeStore(Op::kSt32, 1, 2, 3)},
        RoundTripCase{"st64", MakeStore(Op::kSt64, 1, 2, -8)},
        RoundTripCase{"ldg", MakeLdg(7, GWidth::kS32, 0x1234)},
        RoundTripCase{"stg", MakeStg(7, GWidth::kU16, 0x4321)},
        RoundTripCase{"add", MakeAluRR(Op::kAdd, 1, 2)},
        RoundTripCase{"sub", MakeAluRR(Op::kSub, 1, 2)},
        RoundTripCase{"mul", MakeAluRR(Op::kMul, 1, 2)},
        RoundTripCase{"udiv", MakeAluRR(Op::kUDiv, 1, 2)},
        RoundTripCase{"urem", MakeAluRR(Op::kURem, 1, 2)},
        RoundTripCase{"sdiv", MakeAluRR(Op::kSDiv, 1, 2)},
        RoundTripCase{"srem", MakeAluRR(Op::kSRem, 1, 2)},
        RoundTripCase{"and", MakeAluRR(Op::kAnd, 1, 2)},
        RoundTripCase{"or", MakeAluRR(Op::kOr, 1, 2)},
        RoundTripCase{"xor", MakeAluRR(Op::kXor, 1, 2)},
        RoundTripCase{"shl", MakeAluRR(Op::kShl, 1, 2)},
        RoundTripCase{"shr", MakeAluRR(Op::kShr, 1, 2)},
        RoundTripCase{"sar", MakeAluRR(Op::kSar, 1, 2)},
        RoundTripCase{"addi", MakeAluRI(Op::kAddI, 1, -100)},
        RoundTripCase{"subi", MakeAluRI(Op::kSubI, 1, 100)},
        RoundTripCase{"muli", MakeAluRI(Op::kMulI, 1, 7)},
        RoundTripCase{"andi", MakeAluRI(Op::kAndI, 1, 0xff)},
        RoundTripCase{"ori", MakeAluRI(Op::kOrI, 1, 0x10)},
        RoundTripCase{"xori", MakeAluRI(Op::kXorI, 1, -1)},
        RoundTripCase{"shli", MakeShiftI(Op::kShlI, 1, 63)},
        RoundTripCase{"shri", MakeShiftI(Op::kShrI, 1, 1)},
        RoundTripCase{"sari", MakeShiftI(Op::kSarI, 1, 32)},
        RoundTripCase{"not", MakeUnary(Op::kNot, 9)},
        RoundTripCase{"neg", MakeUnary(Op::kNeg, 9)},
        RoundTripCase{"cmp", MakeCmp(1, 2)},
        RoundTripCase{"cmpi", MakeCmpI(1, -5)},
        RoundTripCase{"setcc", MakeSetCC(Cond::kLe, 4)},
        RoundTripCase{"jmp", MakeJmp(-1000)},
        RoundTripCase{"jcc", MakeJcc(Cond::kA, 2000)},
        RoundTripCase{"call", MakeCall(123)},
        RoundTripCase{"callr", MakeCallR(11)},
        RoundTripCase{"callm", MakeCallM(0x2040)},
        RoundTripCase{"ret", MakeSimple(Op::kRet)},
        RoundTripCase{"push", MakePush(14)},
        RoundTripCase{"pop", MakePop(14)},
        RoundTripCase{"nop", MakeSimple(Op::kNop)},
        RoundTripCase{"hlt", MakeSimple(Op::kHlt)},
        RoundTripCase{"pause", MakeSimple(Op::kPause)},
        RoundTripCase{"fence", MakeSimple(Op::kFence)},
        RoundTripCase{"sti", MakeSimple(Op::kSti)},
        RoundTripCase{"cli", MakeSimple(Op::kCli)},
        RoundTripCase{"xchg", MakeAluRR(Op::kXchg, 0, 1)},
        RoundTripCase{"rdtsc", MakeRdtsc(6)},
        RoundTripCase{"hypercall", MakeHypercall(1)},
        RoundTripCase{"vmcall", MakeVmCall(200)}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.name;
    });

// --- Properties the binary patcher depends on. ---

TEST(IsaSizeTest, PatchableInstructionsAreFiveBytes) {
  for (const Insn& insn :
       {MakeCall(0), MakeJmp(0), MakeCallR(3), MakeCallM(0x1000)}) {
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(Encode(insn, &bytes).ok());
    EXPECT_EQ(bytes.size(), 5u) << OpName(insn.op);
  }
  EXPECT_EQ(kCallInsnSize, 5);
  EXPECT_EQ(kJmpInsnSize, 5);
}

TEST(IsaSizeTest, NopIsOneByte) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(Encode(MakeSimple(Op::kNop), &bytes).ok());
  EXPECT_EQ(bytes.size(), 1u);
}

TEST(IsaErrorTest, DecodeRejectsUnknownOpcode) {
  const uint8_t bad[] = {0xEE};
  EXPECT_FALSE(Decode(bad, 1).ok());
}

TEST(IsaErrorTest, DecodeRejectsTruncation) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(Encode(MakeMovRI(0, 42), &bytes).ok());
  EXPECT_FALSE(Decode(bytes.data(), bytes.size() - 1).ok());
  EXPECT_FALSE(Decode(bytes.data(), 0).ok());
}

TEST(IsaErrorTest, DecodeRejectsBadRegister) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(Encode(MakeMovRR(1, 2), &bytes).ok());
  bytes[1] = 16;  // register out of range
  EXPECT_FALSE(Decode(bytes.data(), bytes.size()).ok());
}

TEST(IsaErrorTest, EncodeRejectsOutOfRangeImmediates) {
  std::vector<uint8_t> bytes;
  EXPECT_FALSE(Encode(MakeShiftI(Op::kShlI, 0, 64), &bytes).ok());
  Insn addi = MakeAluRI(Op::kAddI, 0, 0);
  addi.imm = int64_t{1} << 40;
  EXPECT_FALSE(Encode(addi, &bytes).ok());
  Insn vmcall = MakeVmCall(0);
  vmcall.imm = 300;
  EXPECT_FALSE(Encode(vmcall, &bytes).ok());
}

TEST(IsaTest, GWidthProperties) {
  EXPECT_EQ(GWidthBytes(GWidth::kU8), 1);
  EXPECT_EQ(GWidthBytes(GWidth::kS16), 2);
  EXPECT_EQ(GWidthBytes(GWidth::kU32), 4);
  EXPECT_EQ(GWidthBytes(GWidth::kS64), 8);
  EXPECT_TRUE(GWidthSigned(GWidth::kS8));
  EXPECT_FALSE(GWidthSigned(GWidth::kU64));
}

TEST(IsaTest, DisassembleSequence) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(Encode(MakeMovRI(0, 7), &bytes).ok());
  ASSERT_TRUE(Encode(MakeSimple(Op::kRet), &bytes).ok());
  const std::string text = Disassemble(bytes.data(), bytes.size(), 0x1000);
  EXPECT_NE(text.find("mov r0, 7"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
  EXPECT_NE(text.find("00001000:"), std::string::npos);
}

TEST(CostModelTest, TicksPerCycleConversion) {
  EXPECT_DOUBLE_EQ(TicksToCycles(4), 1.0);
  EXPECT_DOUBLE_EQ(TicksToCycles(66), 16.5);  // the Skylake mispredict penalty
}

}  // namespace
}  // namespace mv

// Frontend tests: lexing/parsing diagnostics plus execution-backed semantics —
// mvc snippets are compiled through the full pipeline and run in the VM, so
// every case checks lexer, parser, lowering, optimizer, codegen, linker and
// VM at once.
#include <gtest/gtest.h>

#include "src/core/program.h"
#include "src/frontend/frontend.h"
#include "src/frontend/lexer.h"

namespace mv {
namespace {

// Compiles a full program and calls `fn`; returns r0.
uint64_t Exec(const std::string& source, const std::string& fn,
              std::vector<uint64_t> args = {}) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build({{"t", source}}, options);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!program.ok()) {
    return 0xDEAD;
  }
  Result<uint64_t> result = (*program)->Call(fn, args);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : 0xDEAD;
}

// Expects compilation to fail and the diagnostic text to mention `expect`.
void ExpectCompileError(const std::string& source, const std::string& expect) {
  DiagnosticSink diag;
  Result<Module> module = CompileToIr(source, "t", {}, &diag);
  EXPECT_FALSE(module.ok()) << "compilation unexpectedly succeeded";
  EXPECT_NE(diag.ToString().find(expect), std::string::npos)
      << "diagnostics were:\n"
      << diag.ToString();
}

// ---------------------------------------------------------------------------
// Lexer.

TEST(LexerTest, NumbersAndSuffixes) {
  DiagnosticSink diag;
  Lexer lexer("42 0x2A 1u 2l 3ul '\\n' 'a'", &diag);
  std::vector<Token> tokens = lexer.Tokenize();
  ASSERT_FALSE(diag.has_errors());
  ASSERT_EQ(tokens.size(), 8u);  // 7 literals + eof
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_TRUE(tokens[2].is_unsigned);
  EXPECT_TRUE(tokens[3].is_long);
  EXPECT_TRUE(tokens[4].is_unsigned);
  EXPECT_TRUE(tokens[4].is_long);
  EXPECT_EQ(tokens[5].int_value, '\n');
  EXPECT_EQ(tokens[6].int_value, 'a');
}

TEST(LexerTest, CommentsAndOperators) {
  DiagnosticSink diag;
  Lexer lexer("a /* block */ += b // line\n << c", &diag);
  std::vector<Token> tokens = lexer.Tokenize();
  ASSERT_FALSE(diag.has_errors());
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[1].kind, Tok::kPlusAssign);
  EXPECT_EQ(tokens[3].kind, Tok::kShl);
}

TEST(LexerTest, StringEscapes) {
  DiagnosticSink diag;
  Lexer lexer(R"("a\tb\0")", &diag);
  std::vector<Token> tokens = lexer.Tokenize();
  ASSERT_FALSE(diag.has_errors());
  EXPECT_EQ(tokens[0].text, std::string("a\tb\0", 4));
}

TEST(LexerTest, ReportsUnterminatedString) {
  DiagnosticSink diag;
  Lexer lexer("\"abc", &diag);
  (void)lexer.Tokenize();
  EXPECT_TRUE(diag.has_errors());
}

TEST(LexerTest, TracksLineAndColumn) {
  DiagnosticSink diag;
  Lexer lexer("a\n  b", &diag);
  std::vector<Token> tokens = lexer.Tokenize();
  EXPECT_EQ(tokens[1].loc.line, 2u);
  EXPECT_EQ(tokens[1].loc.column, 3u);
}

// ---------------------------------------------------------------------------
// Execution-backed expression/statement semantics.

struct ExprCase {
  const char* name;
  const char* body;       // body of `long f(long a, long b)`
  uint64_t a;
  uint64_t b;
  uint64_t expected;
};

class ExprSemanticsTest : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprSemanticsTest, Evaluates) {
  const ExprCase& c = GetParam();
  const std::string source =
      std::string("long f(long a, long b) {\n") + c.body + "\n}\n";
  EXPECT_EQ(Exec(source, "f", {c.a, c.b}), c.expected) << c.body;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExprSemanticsTest,
    ::testing::Values(
        ExprCase{"add", "return a + b;", 2, 3, 5},
        ExprCase{"sub", "return a - b;", 2, 3, static_cast<uint64_t>(-1)},
        ExprCase{"mul", "return a * b;", 7, 6, 42},
        ExprCase{"div", "return a / b;", 100, 7, 14},
        ExprCase{"mod", "return a % b;", 100, 7, 2},
        ExprCase{"neg_div", "return a / b;", static_cast<uint64_t>(-100), 7,
                 static_cast<uint64_t>(-14)},
        ExprCase{"shift_left", "return a << b;", 3, 4, 48},
        ExprCase{"shift_right_signed", "return a >> b;", static_cast<uint64_t>(-64), 3,
                 static_cast<uint64_t>(-8)},
        ExprCase{"bitand", "return a & b;", 0xFF, 0x0F, 0x0F},
        ExprCase{"bitor", "return a | b;", 0xF0, 0x0F, 0xFF},
        ExprCase{"bitxor", "return a ^ b;", 0xFF, 0x0F, 0xF0},
        ExprCase{"bitnot", "return ~a;", 0, 0, static_cast<uint64_t>(-1)},
        ExprCase{"unary_minus", "return -a;", 5, 0, static_cast<uint64_t>(-5)},
        ExprCase{"lognot", "return !a;", 0, 0, 1},
        ExprCase{"lognot2", "return !a;", 3, 0, 0},
        ExprCase{"precedence", "return a + b * 2;", 1, 3, 7},
        ExprCase{"parens", "return (a + b) * 2;", 1, 3, 8},
        ExprCase{"compare_lt", "return a < b;", 1, 2, 1},
        ExprCase{"compare_signed", "return a < b;", static_cast<uint64_t>(-1), 0, 1},
        ExprCase{"ternary_then", "return a ? 10 : 20;", 1, 0, 10},
        ExprCase{"ternary_else", "return a ? 10 : 20;", 0, 0, 20},
        ExprCase{"comma_free_assign", "long x; x = a; x += b; return x;", 4, 5, 9},
        ExprCase{"compound_shift", "long x = a; x <<= 2; x |= 1; return x;", 2, 0, 9},
        ExprCase{"pre_increment", "long x = a; long y = ++x; return y * 100 + x;", 5, 0,
                 606},
        ExprCase{"post_increment", "long x = a; long y = x++; return y * 100 + x;", 5, 0,
                 506},
        ExprCase{"pre_decrement", "long x = a; --x; return x;", 5, 0, 4}),
    [](const ::testing::TestParamInfo<ExprCase>& info) { return info.param.name; });

INSTANTIATE_TEST_SUITE_P(
    ShortCircuit, ExprSemanticsTest,
    ::testing::Values(
        ExprCase{"and_tt", "return a && b;", 2, 3, 1},
        ExprCase{"and_tf", "return a && b;", 2, 0, 0},
        ExprCase{"and_ft", "return a && b;", 0, 3, 0},
        ExprCase{"or_ff", "return a || b;", 0, 0, 0},
        ExprCase{"or_ft", "return a || b;", 0, 3, 1},
        ExprCase{"mixed", "return a && b || !a;", 0, 0, 1}),
    [](const ::testing::TestParamInfo<ExprCase>& info) { return info.param.name; });

INSTANTIATE_TEST_SUITE_P(
    ControlFlow, ExprSemanticsTest,
    ::testing::Values(
        ExprCase{"while_sum", "long s = 0; long i = 0; while (i < a) { s += i; i += 1; } "
                              "return s;",
                 10, 0, 45},
        ExprCase{"for_sum", "long s = 0; long i; for (i = 1; i <= a; i = i + 1) s += i; "
                            "return s;",
                 10, 0, 55},
        ExprCase{"for_decl_scope", "long s = 0; for (long i = 0; i < a; ++i) { s += 2; } "
                                   "return s;",
                 4, 0, 8},
        ExprCase{"do_while", "long i = 0; do { i += 1; } while (i < a); return i;", 5, 0,
                 5},
        ExprCase{"do_while_once", "long i = 0; do { i += 1; } while (i < a); return i;",
                 0, 0, 1},
        ExprCase{"break_stmt", "long i = 0; while (1) { if (i == a) break; i += 1; } "
                               "return i;",
                 7, 0, 7},
        ExprCase{"continue_stmt",
                 "long s = 0; long i; for (i = 0; i < a; ++i) { if (i % 2) continue; s "
                 "+= i; } return s;",
                 10, 0, 20},
        ExprCase{"nested_if", "if (a) { if (b) return 3; return 2; } return 1;", 1, 1, 3},
        ExprCase{"else_chain", "if (a == 0) return 10; else if (a == 1) return 11; else "
                               "return 12;",
                 1, 0, 11},
        ExprCase{"early_return_unreachable", "return a; b = 99; return b;", 4, 0, 4}),
    [](const ::testing::TestParamInfo<ExprCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Integer conversion semantics (C-like narrowing, signedness).

struct ConvCase {
  const char* name;
  const char* source;  // must define `long f(long a, long b)`
  uint64_t a;
  uint64_t expected;
};

class ConversionTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConversionTest, Evaluates) {
  const ConvCase& c = GetParam();
  EXPECT_EQ(Exec(c.source, "f", {c.a, 0}), c.expected) << c.source;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConversionTest,
    ::testing::Values(
        ConvCase{"char_wraps", "long f(long a, long b) { char c = (char)a; return c; }",
                 300, 44},
        ConvCase{"uchar_wraps",
                 "long f(long a, long b) { unsigned char c = (unsigned char)a; return c; "
                 "}",
                 300, 44},
        ConvCase{"char_sign_extends",
                 "long f(long a, long b) { char c = (char)a; return c; }", 255,
                 static_cast<uint64_t>(-1)},
        ConvCase{"short_narrow",
                 "long f(long a, long b) { short s = (short)a; return s; }", 0x18000,
                 static_cast<uint64_t>(-32768)},
        ConvCase{"int_wraps", "long f(long a, long b) { int i = (int)a; return i; }",
                 0x100000001ull, 1},
        ConvCase{"uint_zero_extends",
                 "long f(long a, long b) { unsigned int u = (unsigned int)a; return u; }",
                 0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFull},
        ConvCase{"bool_normalizes",
                 "long f(long a, long b) { bool t = a; return t; }", 42, 1},
        ConvCase{"bool_zero", "long f(long a, long b) { bool t = a; return t; }", 0, 0},
        ConvCase{"unsigned_compare",
                 "long f(long a, long b) { unsigned int x = (unsigned int)a; return x > "
                 "2000000000u; }",
                 0xF0000000ull, 1},
        ConvCase{"narrow_arith_wraps",
                 "long f(long a, long b) { unsigned char c = 200; c = c + 100; return c; "
                 "}",
                 0, 44},
        ConvCase{"int_overflow_wraps",
                 "long f(long a, long b) { int x = 2147483647; x = x + 1; return x; }", 0,
                 static_cast<uint64_t>(INT32_MIN)},
        ConvCase{"sizeof_values",
                 "long f(long a, long b) { return sizeof(char) + sizeof(short) + "
                 "sizeof(int) + sizeof(long) + sizeof(int*); }",
                 0, 1 + 2 + 4 + 8 + 8}),
    [](const ::testing::TestParamInfo<ConvCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Pointers, arrays, globals, strings, enums, functions.

TEST(FrontendTest, PointerArithmeticAndDeref) {
  const char* source = R"(
long arr[8] = {10, 20, 30, 40, 50, 60, 70, 80};
long f(long i) {
  long* p = arr;
  p = p + i;
  return *p + p[1];
}
)";
  EXPECT_EQ(Exec(source, "f", {2}), 30u + 40u);
}

TEST(FrontendTest, AddressOfLocalAndWriteThrough) {
  const char* source = R"(
void bump(long* p) { *p = *p + 1; }
long f(long a) {
  long x = a;
  bump(&x);
  bump(&x);
  return x;
}
)";
  EXPECT_EQ(Exec(source, "f", {40}), 42u);
}

TEST(FrontendTest, PointerDifferenceScaled) {
  const char* source = R"(
long arr[8];
long f(long i) {
  long* p = arr;
  long* q = &arr[i];
  return q - p;
}
)";
  EXPECT_EQ(Exec(source, "f", {5}), 5u);
}

TEST(FrontendTest, StringLiteralContents) {
  const char* source = R"mvc(
long f(long i) {
  unsigned char* s = (unsigned char*)"abc";
  return s[i];
}
)mvc";
  EXPECT_EQ(Exec(source, "f", {1}), static_cast<uint64_t>('b'));
  EXPECT_EQ(Exec(source, "f", {3}), 0u);  // NUL terminator
}

TEST(FrontendTest, GlobalArrayInitializerAndByteAccess) {
  const char* source = R"(
unsigned char bytes[4] = {1, 2, 3, 4};
int scalar = -7;
long f(long i) { return bytes[i] + scalar; }
)";
  EXPECT_EQ(Exec(source, "f", {3}), static_cast<uint64_t>(4 - 7));
}

TEST(FrontendTest, EnumConstantsAndTypes) {
  const char* source = R"(
enum Mode { MODE_A, MODE_B = 5, MODE_C };
enum Mode current;
long f(long x) {
  current = (enum Mode)x;
  if (current == MODE_B) return 100;
  return MODE_C;
}
)";
  EXPECT_EQ(Exec(source, "f", {5}), 100u);
  EXPECT_EQ(Exec(source, "f", {0}), 6u);
}

TEST(FrontendTest, RecursionWorks) {
  const char* source = R"(
long fib(long n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
)";
  EXPECT_EQ(Exec(source, "fib", {10}), 55u);
}

TEST(FrontendTest, MutualRecursionAcrossDeclarations) {
  const char* source = R"(
long is_odd(long n);
long is_even(long n) { if (n == 0) return 1; return is_odd(n - 1); }
long is_odd(long n) { if (n == 0) return 0; return is_even(n - 1); }
)";
  EXPECT_EQ(Exec(source, "is_even", {10}), 1u);
  EXPECT_EQ(Exec(source, "is_odd", {10}), 0u);
}

TEST(FrontendTest, FunctionPointerLocals) {
  const char* source = R"(
long twice(long x) { return 2 * x; }
long thrice(long x) { return 3 * x; }
long (*pick)(long);
long f(long which) {
  pick = which ? twice : thrice;
  return pick(10);
}
)";
  EXPECT_EQ(Exec(source, "f", {1}), 20u);
  EXPECT_EQ(Exec(source, "f", {0}), 30u);
}

TEST(FrontendTest, StaticDefinesPinGlobalReads) {
  const char* source = R"(
int feature;
long f(long a) {
  if (feature) return a * 2;
  return a;
}
)";
  BuildOptions options;
  options.frontend.defines["feature"] = 1;
  Result<std::unique_ptr<Program>> program = Program::Build({{"t", source}}, options);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // Even with feature==0 in memory, reads were pinned to 1 at compile time.
  ASSERT_TRUE((*program)->WriteGlobal("feature", 0, 4).ok());
  Result<uint64_t> result = (*program)->Call("f", {21});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42u);
}

TEST(FrontendTest, MultipleTranslationUnits) {
  const char* config = R"(
__attribute__((multiverse)) int mode;
int shared_counter;
)";
  const char* logic = R"(
extern __attribute__((multiverse)) int mode;
extern int shared_counter;
__attribute__((multiverse))
long step(long x) {
  if (mode) { shared_counter = shared_counter + 1; }
  return x + 1;
}
)";
  const char* app = R"(
extern long step(long x);
long run(long n) {
  long i;
  long v = 0;
  for (i = 0; i < n; ++i) { v = step(v); }
  return v;
}
)";
  BuildOptions options;
  Result<std::unique_ptr<Program>> program =
      Program::Build({{"config", config}, {"logic", logic}, {"app", app}}, options);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_TRUE((*program)->WriteGlobal("mode", 1, 4).ok());
  Result<uint64_t> result = (*program)->Call("run", {5});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 5u);
  EXPECT_EQ((*program)->ReadGlobal("shared_counter", 4).value(), 5);
  // Commit across translation units must work, too.
  Result<PatchStats> commit = (*program)->runtime().Commit();
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->functions_committed, 1);
  EXPECT_EQ(*(*program)->Call("run", {5}), 5u);
}

TEST(FrontendTest, BuiltinsLowerAndRun) {
  const char* source = R"(
int lock;
long f(long v) {
  long old = __builtin_xchg(&lock, (int)v);
  __builtin_fence();
  __builtin_pause();
  return old + lock;
}
)";
  EXPECT_EQ(Exec(source, "f", {9}), 9u);  // old 0 + new 9
}

// ---------------------------------------------------------------------------
// Diagnostics.

TEST(FrontendErrorTest, UnknownVariable) {
  ExpectCompileError("long f() { return nope; }", "unknown variable");
}

TEST(FrontendErrorTest, UndeclaredFunction) {
  ExpectCompileError("long f() { return g(); }", "undeclared function");
}

TEST(FrontendErrorTest, ArityMismatch) {
  ExpectCompileError("long g(long a) { return a; } long f() { return g(1, 2); }",
                     "expects 1 argument");
}

TEST(FrontendErrorTest, BreakOutsideLoop) {
  ExpectCompileError("void f() { break; }", "outside of a loop");
}

TEST(FrontendErrorTest, LocalArrayUnsupported) {
  ExpectCompileError("void f() { int a[4]; }", "local arrays are not supported");
}

TEST(FrontendErrorTest, MultiverseOnPointerVariable) {
  ExpectCompileError("__attribute__((multiverse)) int* p;",
                     "configuration switches must have integer");
}

TEST(FrontendErrorTest, MultiverseOnArray) {
  ExpectCompileError("__attribute__((multiverse)) int a[4];",
                     "arrays cannot be configuration switches");
}

TEST(FrontendErrorTest, VoidReturnWithValue) {
  ExpectCompileError("void f() { return 1; }", "void function cannot return a value");
}

TEST(FrontendErrorTest, MissingReturnValue) {
  ExpectCompileError("long f() { return; }", "must return a value");
}

TEST(FrontendErrorTest, DerefNonPointer) {
  ExpectCompileError("long f(long a) { return *a; }", "dereference a non-pointer");
}

TEST(FrontendErrorTest, RedefinedLocal) {
  ExpectCompileError("void f() { long x; long x; }", "redefinition");
}

TEST(FrontendErrorTest, UnknownAttribute) {
  ExpectCompileError("__attribute__((sparkly)) int x;", "unknown attribute");
}

TEST(FrontendErrorTest, ConflictingFunctionDeclaration) {
  ExpectCompileError("long f(long a); int f(long a) { return 0; }",
                     "conflicting declaration");
}

TEST(FrontendErrorTest, SyntaxErrorRecoversWithDiagnostic) {
  ExpectCompileError("long f( { return 0; }", "expected");
}

}  // namespace
}  // namespace mv

// Correctness tests for the case-study workloads: the benchmarks are only
// meaningful if the simulated kernel/libc/grep/python substrates behave
// correctly in every binding mode.
#include <gtest/gtest.h>

#include "src/support/rng.h"
#include "src/workloads/grep.h"
#include "src/workloads/harness.h"
#include "src/workloads/kernel.h"
#include "src/workloads/libc.h"
#include "src/workloads/python.h"

namespace mv {
namespace {

// ---------------------------------------------------------------------------
// Spinlock kernel.

class SpinBindingTest : public ::testing::TestWithParam<SpinBinding> {};

TEST_P(SpinBindingTest, LockUnlockKeepsInvariants) {
  const SpinBinding binding = GetParam();
  Result<std::unique_ptr<Program>> kernel = BuildSpinlockKernel(binding);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  for (bool smp : {false, true}) {
    if (binding == SpinBinding::kStaticUp && smp) {
      continue;  // the UP kernel cannot run SMP
    }
    ASSERT_TRUE(SetSmpMode(kernel->get(), binding, smp).ok());
    ASSERT_TRUE((*kernel)->Call("bench_pair", {1000}).ok());
    // The lock must be free and preemption balanced afterwards.
    EXPECT_EQ((*kernel)->ReadGlobal("lock_word", 4).value(), 0);
    EXPECT_EQ((*kernel)->ReadGlobal("preempt_count", 4).value(), 0);
    // Interrupts re-enabled by the last unlock.
    EXPECT_TRUE((*kernel)->vm().core(0).interrupts_enabled);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBindings, SpinBindingTest,
                         ::testing::Values(SpinBinding::kNoElision,
                                           SpinBinding::kDynamicIf,
                                           SpinBinding::kMultiverse,
                                           SpinBinding::kStaticUp,
                                           SpinBinding::kStaticSmp),
                         [](const ::testing::TestParamInfo<SpinBinding>& info) {
                           switch (info.param) {
                             case SpinBinding::kNoElision: return "no_elision";
                             case SpinBinding::kDynamicIf: return "dynamic_if";
                             case SpinBinding::kMultiverse: return "multiverse";
                             case SpinBinding::kStaticUp: return "static_up";
                             case SpinBinding::kStaticSmp: return "static_smp";
                           }
                           return "unknown";
                         });

TEST(SpinlockTest, SmpLockActuallyExcludesSecondCore) {
  // Two cores contend on the SMP spinlock; instruction-level interleaving
  // must never let both into the critical section.
  Result<std::unique_ptr<Program>> built = BuildSpinlockKernel(SpinBinding::kMultiverse);
  ASSERT_TRUE(built.ok());
  Program& kernel = **built;
  ASSERT_TRUE(SetSmpMode(&kernel, SpinBinding::kMultiverse, /*smp=*/true).ok());

  // Rebuild a 2-core VM is not possible post-hoc; instead run the mutual
  // exclusion check on a dedicated 2-core build.
  BuildOptions options;
  options.vm_cores = 2;
  Result<std::unique_ptr<Program>> built2 = Program::Build(
      {{"mutex", R"(
__attribute__((multiverse)) int config_smp;
int lock_word;
long in_critical;
long max_in_critical;
__attribute__((multiverse))
void spin_lock(int* lock) {
  if (config_smp) {
    while (__builtin_xchg(lock, 1)) { __builtin_pause(); }
  }
}
__attribute__((multiverse))
void spin_unlock(int* lock) {
  if (config_smp) { *lock = 0; }
}
void worker(long rounds) {
  long i;
  for (i = 0; i < rounds; ++i) {
    spin_lock(&lock_word);
    in_critical = in_critical + 1;
    if (in_critical > max_in_critical) { max_in_critical = in_critical; }
    in_critical = in_critical - 1;
    spin_unlock(&lock_word);
  }
}
)"}},
      options);
  ASSERT_TRUE(built2.ok()) << built2.status().ToString();
  Program& mutex = **built2;
  ASSERT_TRUE(mutex.WriteGlobal("config_smp", 1, 4).ok());
  ASSERT_TRUE(mutex.runtime().Commit().ok());

  const uint64_t worker = mutex.SymbolAddress("worker").value();
  SetupCall(mutex.image(), &mutex.vm(), worker, {200}, 0);
  SetupCall(mutex.image(), &mutex.vm(), worker, {200}, 1);
  // Interleave with an uneven pattern to shake out races.
  Rng rng(99);
  bool done0 = false;
  bool done1 = false;
  for (uint64_t step = 0; step < 3'000'000 && !(done0 && done1); ++step) {
    const int core = rng.NextBool() ? 1 : 0;
    if (core == 0 && !done0) {
      done0 = mutex.vm().Step(0).has_value();
    } else if (core == 1 && !done1) {
      done1 = mutex.vm().Step(1).has_value();
    }
  }
  ASSERT_TRUE(done0 && done1) << "workers did not finish";
  EXPECT_EQ(mutex.ReadGlobal("max_in_critical").value(), 1)
      << "mutual exclusion violated";
  EXPECT_EQ(mutex.ReadGlobal("lock_word", 4).value(), 0);
}

TEST(SpinlockTest, MultiverseUpIsFasterThanDynamicIf) {
  Result<std::unique_ptr<Program>> dynamic = BuildSpinlockKernel(SpinBinding::kDynamicIf);
  Result<std::unique_ptr<Program>> multiverse =
      BuildSpinlockKernel(SpinBinding::kMultiverse);
  ASSERT_TRUE(dynamic.ok() && multiverse.ok());
  ASSERT_TRUE(SetSmpMode(dynamic->get(), SpinBinding::kDynamicIf, false).ok());
  ASSERT_TRUE(SetSmpMode(multiverse->get(), SpinBinding::kMultiverse, false).ok());
  const double dyn = MeasureSpinlockPair(dynamic->get(), 20000).value();
  const double mv = MeasureSpinlockPair(multiverse->get(), 20000).value();
  EXPECT_LT(mv, dyn);
}

// ---------------------------------------------------------------------------
// PV-Ops kernel.

TEST(PvopsTest, AllBindingsToggleInterruptsCorrectly) {
  for (PvBinding binding :
       {PvBinding::kCurrent, PvBinding::kMultiverse, PvBinding::kStaticOff}) {
    for (bool xen : {false, true}) {
      Result<PvopsKernel> kernel = BuildPvopsKernel(binding, xen);
      ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
      Program& program = *kernel->program;
      program.vm().core(0).interrupts_enabled = false;
      ASSERT_TRUE(program.Call("bench_toggle", {3}).ok());
      // The pair ends with a disable.
      EXPECT_FALSE(program.vm().core(0).interrupts_enabled)
          << PvBindingName(binding) << (xen ? " xen" : " native");
    }
  }
}

TEST(PvopsTest, BaselinePatcherInlinesNativeBodies) {
  Result<PvopsKernel> kernel = BuildPvopsKernel(PvBinding::kCurrent, /*xen=*/false);
  ASSERT_TRUE(kernel.ok());
  ASSERT_NE(kernel->baseline, nullptr);
  EXPECT_EQ(kernel->baseline->num_sites(), 2u);
  // Restore and re-patch to read the stats directly.
  ASSERT_TRUE(kernel->baseline->RestoreAll().ok());
  Result<PvPatchStats> stats = kernel->baseline->PatchAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sites_inlined, 2);  // sti/cli bodies fit into the call site
  EXPECT_EQ(stats->sites_patched, 0);
}

TEST(PvopsTest, XenThunksAreNotInlinedUnderCustomConvention) {
  Result<PvopsKernel> kernel = BuildPvopsKernel(PvBinding::kCurrent, /*xen=*/true);
  ASSERT_TRUE(kernel.ok());
  ASSERT_TRUE(kernel->baseline->RestoreAll().ok());
  Result<PvPatchStats> stats = kernel->baseline->PatchAll();
  ASSERT_TRUE(stats.ok());
  // The pvop-convention thunks push/pop registers: too big to inline.
  EXPECT_EQ(stats->sites_inlined, 0);
  EXPECT_EQ(stats->sites_patched, 2);
}

TEST(PvopsTest, MultiverseBeatsBaselineInGuest) {
  Result<PvopsKernel> current = BuildPvopsKernel(PvBinding::kCurrent, /*xen=*/true);
  Result<PvopsKernel> multiverse = BuildPvopsKernel(PvBinding::kMultiverse, /*xen=*/true);
  ASSERT_TRUE(current.ok() && multiverse.ok());
  const double cur = MeasurePvopPair(current->program.get(), 20000).value();
  const double mv = MeasurePvopPair(multiverse->program.get(), 20000).value();
  EXPECT_LT(mv, cur);
}

// ---------------------------------------------------------------------------
// Mini musl.

class LibcModeTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(LibcModeTest, MallocFreeRandomFputcBehave) {
  const int threads = std::get<0>(GetParam());
  const bool commit = std::get<1>(GetParam());
  Result<std::unique_ptr<Program>> built = BuildLibc();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Program& libc = **built;
  ASSERT_TRUE(SetThreadMode(&libc, threads, commit).ok());

  // malloc returns distinct, aligned, writable chunks; free recycles them.
  const uint64_t p1 = *libc.Call("malloc_", {32});
  const uint64_t p2 = *libc.Call("malloc_", {32});
  ASSERT_NE(p1, 0u);
  ASSERT_NE(p2, 0u);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(p1 % 8, 0u);
  ASSERT_TRUE(libc.vm().memory().Writable(p1, 32));
  ASSERT_TRUE(libc.Call("free_", {p1}).ok());
  const uint64_t p3 = *libc.Call("malloc_", {16});
  EXPECT_EQ(p3, p1) << "LIFO free list must recycle the last freed chunk";

  // malloc(0) may return NULL and free(NULL) must be a no-op.
  EXPECT_EQ(*libc.Call("malloc_", {0}), 0u);
  EXPECT_TRUE(libc.Call("free_", {0}).ok());

  // random() produces a deterministic, advancing sequence.
  const uint64_t r1 = *libc.Call("random_");
  const uint64_t r2 = *libc.Call("random_");
  EXPECT_NE(r1, r2);

  // fputc buffers bytes and returns its argument.
  EXPECT_EQ(*libc.Call("fputc_", {'x'}), static_cast<uint64_t>('x'));
  EXPECT_EQ(*libc.Call("fputc_", {'y'}), static_cast<uint64_t>('y'));
  EXPECT_EQ(libc.ReadGlobal("fpos").value(), 2);
  uint64_t fbuf = libc.SymbolAddress("fbuf").value();
  char two[2];
  ASSERT_TRUE(libc.vm().memory().ReadRaw(fbuf, two, 2).ok());
  EXPECT_EQ(two[0], 'x');
  EXPECT_EQ(two[1], 'y');

  // No lock may be left behind in any mode.
  EXPECT_EQ(libc.ReadGlobal("malloc_lock_word", 4).value(), 0);
  EXPECT_EQ(libc.ReadGlobal("file_lock_word", 4).value(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, LibcModeTest,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return std::string(std::get<0>(info.param) == 0 ? "single" : "multi") +
             (std::get<1>(info.param) ? "_committed" : "_generic");
    });

TEST(LibcTest, MallocExhaustionReturnsNull) {
  Result<std::unique_ptr<Program>> built = BuildLibc();
  ASSERT_TRUE(built.ok());
  Program& libc = **built;
  ASSERT_TRUE(SetThreadMode(&libc, 0, true).ok());
  // The arena is 256 KiB; a 300 KiB request must fail cleanly.
  EXPECT_EQ(*libc.Call("malloc_", {300 * 1024}), 0u);
  EXPECT_EQ(libc.ReadGlobal("malloc_lock_word", 4).value(), 0);
}

TEST(LibcTest, SingleThreadCommitSpeedsUpEveryFunction) {
  Result<std::unique_ptr<Program>> generic_build = BuildLibc();
  Result<std::unique_ptr<Program>> committed_build = BuildLibc();
  ASSERT_TRUE(generic_build.ok() && committed_build.ok());
  ASSERT_TRUE(SetThreadMode(generic_build->get(), 0, false).ok());
  ASSERT_TRUE(SetThreadMode(committed_build->get(), 0, true).ok());
  const LibcBenchResult generic = MeasureLibc(generic_build->get(), 20000).value();
  const LibcBenchResult committed = MeasureLibc(committed_build->get(), 20000).value();
  EXPECT_LT(committed.random_cycles, generic.random_cycles);
  EXPECT_LT(committed.malloc0_cycles, generic.malloc0_cycles);
  EXPECT_LT(committed.malloc1_cycles, generic.malloc1_cycles);
  EXPECT_LT(committed.fputc_cycles, generic.fputc_cycles);
}

// ---------------------------------------------------------------------------
// Mini grep.

TEST(GrepTest, MatchCountAgreesWithHostReference) {
  Result<std::unique_ptr<Program>> built = BuildGrep(/*seed=*/7);
  ASSERT_TRUE(built.ok());
  Program& grep = **built;

  // Host-side reference count over the same buffer.
  const uint64_t buf = grep.SymbolAddress("gbuf").value();
  std::vector<uint8_t> text(kGrepBufferSize);
  ASSERT_TRUE(grep.vm().memory().ReadRaw(buf, text.data(), text.size()).ok());
  uint64_t expected = 0;
  for (size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] == 'a' && text[i + 1] != '\n' && text[i + 2] == 'a') {
      ++expected;
    }
  }

  for (bool commit : {false, true}) {
    ASSERT_TRUE(SetGrepMode(&grep, 1, commit).ok());
    Result<GrepRunResult> run = RunGrep(&grep, kGrepBufferSize, 1);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->matches, expected) << (commit ? "committed" : "generic");
  }
}

TEST(GrepTest, MultibyteModeFiltersHighBytes) {
  Result<std::unique_ptr<Program>> built = BuildGrep();
  ASSERT_TRUE(built.ok());
  Program& grep = **built;
  // Plant a multi-byte lead before an 'a' candidate: "?a.a" with ? > 193.
  const uint64_t buf = grep.SymbolAddress("gbuf").value();
  const uint8_t planted[] = {0xC8, 'a', 'x', 'a'};
  ASSERT_TRUE(grep.vm().memory().WriteRaw(buf, planted, 4).ok());

  ASSERT_TRUE(SetGrepMode(&grep, 1, true).ok());
  const uint64_t sb = RunGrep(&grep, kGrepBufferSize, 1)->matches;
  ASSERT_TRUE(SetGrepMode(&grep, 4, true).ok());
  const uint64_t mb = RunGrep(&grep, kGrepBufferSize, 1)->matches;
  EXPECT_EQ(sb, mb + 1) << "the planted candidate must only count in single-byte mode";
}

TEST(GrepTest, CommitDoesNotChangeMatchesButSavesCycles) {
  Result<std::unique_ptr<Program>> a = BuildGrep();
  Result<std::unique_ptr<Program>> b = BuildGrep();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(SetGrepMode(a->get(), 1, false).ok());
  ASSERT_TRUE(SetGrepMode(b->get(), 1, true).ok());
  Result<GrepRunResult> generic = RunGrep(a->get(), kGrepBufferSize, 1);
  Result<GrepRunResult> committed = RunGrep(b->get(), kGrepBufferSize, 1);
  ASSERT_TRUE(generic.ok() && committed.ok());
  EXPECT_EQ(generic->matches, committed->matches);
  EXPECT_LT(committed->cycles, generic->cycles);
}

// ---------------------------------------------------------------------------
// Mini cPython GC.

TEST(PythonGcTest, TrackingFollowsTheFlag) {
  Result<std::unique_ptr<Program>> built = BuildPythonGc();
  ASSERT_TRUE(built.ok());
  Program& python = **built;

  ASSERT_TRUE(SetGcEnabled(&python, true, true).ok());
  ASSERT_TRUE(python.Call("bench_alloc", {10}).ok());
  EXPECT_EQ(python.ReadGlobal("gc_count").value(), 10);

  const int64_t before = python.ReadGlobal("gc_count").value();
  ASSERT_TRUE(SetGcEnabled(&python, false, true).ok());
  ASSERT_TRUE(python.Call("bench_alloc", {10}).ok());
  EXPECT_EQ(python.ReadGlobal("gc_count").value(), before)
      << "disabled GC must not track";
}

TEST(PythonGcTest, GcListIsWellFormed) {
  Result<std::unique_ptr<Program>> built = BuildPythonGc();
  ASSERT_TRUE(built.ok());
  Program& python = **built;
  ASSERT_TRUE(SetGcEnabled(&python, true, true).ok());
  ASSERT_TRUE(python.Call("bench_alloc", {5}).ok());
  // Walk the linked list from gc_head; it must contain exactly gc_count nodes.
  uint64_t node = static_cast<uint64_t>(python.ReadGlobal("gc_head").value());
  int nodes = 0;
  while (node != 0 && nodes < 100) {
    ++nodes;
    ASSERT_TRUE(python.vm().memory().ReadRaw(node, &node, 8).ok());
  }
  EXPECT_EQ(nodes, python.ReadGlobal("gc_count").value());
}

}  // namespace
}  // namespace mv

// Tests for the fleet commit orchestration layer (src/fleet): wave
// partitioning, canary rollouts that auto-advance on healthy counters,
// threshold breaches that auto-revert the whole rollout through the journaled
// commit path, mid-wave instance-level transaction failure, and per-tenant
// variant pinning surviving a fleet-wide flip.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/fleet/coordinator.h"
#include "src/fleet/fleet.h"
#include "src/support/faultpoint.h"

namespace mv {
namespace {

std::unique_ptr<Fleet> BuildFleet(int instances) {
  FleetOptions options;
  options.instances = instances;
  options.cores_per_instance = 2;
  Result<std::unique_ptr<Fleet>> fleet = Fleet::Build(
      {{"fleet_kernel", FleetRequestKernelSource()}}, options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  return fleet.ok() ? std::move(fleet.value()) : nullptr;
}

RolloutPolicy SmallPolicy(int waves) {
  RolloutPolicy policy;
  policy.canary_pct = 12.5;
  policy.waves = waves;
  policy.max_rollbacks = 0;
  policy.observe_requests = 24;
  policy.inflight_requests = 12;
  return policy;
}

const Fleet::Assignment kFlip = {{"fast_path", 1}, {"log_level", 1}};

// Every instance's (config fingerprint, text checksum) pair.
std::map<int, std::pair<uint64_t, uint64_t>> Identities(Fleet* fleet) {
  std::map<int, std::pair<uint64_t, uint64_t>> out;
  for (int i = 0; i < fleet->size(); ++i) {
    Result<uint64_t> fingerprint = fleet->ConfigFingerprint(i);
    EXPECT_TRUE(fingerprint.ok()) << fingerprint.status().ToString();
    out[i] = {fingerprint.ok() ? *fingerprint : 0, fleet->TextChecksum(i)};
  }
  return out;
}

TEST(PartitionWavesTest, CanaryFirstThenEvenWaves) {
  std::vector<int> instances;
  for (int i = 0; i < 64; ++i) {
    instances.push_back(i);
  }
  const auto waves = CommitCoordinator::PartitionWaves(instances, 12.5, 4);
  ASSERT_EQ(waves.size(), 4u);
  EXPECT_EQ(waves[0].size(), 8u);  // 12.5% of 64
  size_t total = 0;
  for (const auto& wave : waves) {
    total += wave.size();
  }
  EXPECT_EQ(total, 64u);  // exact cover, no instance dropped or repeated
  EXPECT_EQ(waves[0][0], 0);
  EXPECT_EQ(waves[3].back(), 63);
}

TEST(PartitionWavesTest, CanaryClampedToAtLeastOneInstance) {
  const auto waves = CommitCoordinator::PartitionWaves({0, 1, 2}, 1.0, 2);
  ASSERT_GE(waves.size(), 1u);
  EXPECT_EQ(waves[0].size(), 1u);  // 1% of 3 rounds to 0, clamped up
}

TEST(PartitionWavesTest, SingleWaveTakesEverything) {
  const auto waves = CommitCoordinator::PartitionWaves({4, 5, 6, 7}, 25.0, 1);
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0].size(), 4u);
}

TEST(CommitCoordinatorTest, HealthyRolloutAdvancesWaveByWaveToFull) {
  std::unique_ptr<Fleet> fleet = BuildFleet(6);
  ASSERT_NE(fleet, nullptr);
  CommitCoordinator coordinator(fleet.get(), SmallPolicy(3));
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  EXPECT_TRUE(rolled->advanced_to_full);
  EXPECT_FALSE(rolled->reverted);
  EXPECT_EQ(rolled->waves_attempted, 3);
  EXPECT_EQ(rolled->flipped_instances, 6u);
  EXPECT_EQ(rolled->identity_mismatches, 0u);
  for (const WaveReport& wave : rolled->waves) {
    EXPECT_TRUE(wave.healthy) << wave.breach;
    EXPECT_EQ(wave.delta.totals.dropped_requests, 0u);
    EXPECT_EQ(wave.delta.totals.torn_requests, 0u);
  }
  for (int i = 0; i < fleet->size(); ++i) {
    EXPECT_EQ(*fleet->ReadSwitchValue(i, "fast_path"), 1) << "instance " << i;
    EXPECT_EQ(*fleet->ReadSwitchValue(i, "log_level"), 1) << "instance " << i;
  }
}

TEST(CommitCoordinatorTest, ThresholdBreachRevertsAndRestoresFingerprints) {
  std::unique_ptr<Fleet> fleet = BuildFleet(6);
  ASSERT_NE(fleet, nullptr);
  const auto before = Identities(fleet.get());

  CommitCoordinator coordinator(fleet.get(), SmallPolicy(3));
  // One-shot patch-write fault on the canary flip: the commit itself recovers
  // by rollback + retry, but the rollback count breaches max_rollbacks=0.
  bool armed = false;
  coordinator.set_flip_hook([&armed](int, int) {
    if (!armed) {
      armed = true;
      FaultInjector::Instance().Arm(FaultSite::kPatchWrite, 0);
    }
  });
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  FaultInjector::Instance().Disarm();
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  EXPECT_TRUE(rolled->reverted);
  EXPECT_FALSE(rolled->advanced_to_full);
  EXPECT_EQ(rolled->waves_attempted, 1);  // breach on the canary wave
  EXPECT_NE(rolled->breach.find("rollbacks"), std::string::npos);
  EXPECT_EQ(rolled->identity_mismatches, 0u);
  // Bit-identical restoration, proven independently of the coordinator.
  EXPECT_EQ(Identities(fleet.get()), before);
  for (int i = 0; i < fleet->size(); ++i) {
    EXPECT_EQ(*fleet->ReadSwitchValue(i, "fast_path"), 0) << "instance " << i;
  }
}

TEST(CommitCoordinatorTest, MidWaveInstanceRollbackAbandonsAndRevertsAll) {
  std::unique_ptr<Fleet> fleet = BuildFleet(8);
  ASSERT_NE(fleet, nullptr);
  const auto before = Identities(fleet.get());

  RolloutPolicy policy = SmallPolicy(2);
  // No retry budget: the injected fault becomes a terminal transaction
  // failure. The journal rolls that instance's text back in reverse order and
  // the coordinator abandons the rollout mid-wave.
  policy.live.txn.max_attempts = 1;
  CommitCoordinator coordinator(fleet.get(), policy);
  // Arm on the second flip of the second wave: some instances have already
  // flipped when the failure hits.
  int flips = 0;
  coordinator.set_flip_hook([&flips](int, int) {
    if (++flips == 3) {
      FaultInjector::Instance().Arm(FaultSite::kPatchWrite, 0);
    }
  });
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  FaultInjector::Instance().Disarm();
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  EXPECT_TRUE(rolled->reverted);
  EXPECT_NE(rolled->breach.find("flip failed"), std::string::npos);
  bool saw_flip_failed = false;
  for (const RolloutEvent& event : coordinator.log().events()) {
    saw_flip_failed |= event.kind == RolloutEvent::Kind::kFlipFailed;
  }
  EXPECT_TRUE(saw_flip_failed);
  // Everyone is fully-old again: the instances flipped before the failure
  // were reverted, the failed instance was restored by its own journal.
  EXPECT_EQ(rolled->identity_mismatches, 0u);
  EXPECT_EQ(Identities(fleet.get()), before);
}

TEST(FleetBootTest, BootCommitsAreAudited) {
  FleetOptions options;
  options.instances = 3;
  options.cores_per_instance = 1;
  RolloutLog log;
  options.boot_log = &log;
  Result<std::unique_ptr<Fleet>> fleet = Fleet::Build(
      {{"fleet_kernel", FleetRequestKernelSource()}}, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  int boot_commits = 0;
  for (const RolloutEvent& event : log.events()) {
    EXPECT_EQ(event.kind, RolloutEvent::Kind::kBootCommit);
    EXPECT_EQ(event.instance, boot_commits);  // in instance order
    ++boot_commits;
  }
  EXPECT_EQ(boot_commits, 3);
}

TEST(FleetBootTest, FailedBootCommitRollsBackEarlierInstances) {
  FleetOptions options;
  options.instances = 3;
  options.cores_per_instance = 1;
  // No retry budget: the injected patch-write fault becomes a terminal boot
  // failure instead of a recovered rollback+retry.
  options.build.attach.txn.max_attempts = 1;
  const std::vector<ProgramSource> sources = {
      {"fleet_kernel", FleetRequestKernelSource()}};

  // Probe: a disarmed build counts the patch writes the whole boot crosses.
  const uint64_t before = FaultInjector::Instance().Count(FaultSite::kPatchWrite);
  {
    Result<std::unique_ptr<Fleet>> probe = Fleet::Build(sources, options);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  }
  const uint64_t writes =
      FaultInjector::Instance().Count(FaultSite::kPatchWrite) - before;
  ASSERT_GT(writes, 0u);

  // Kill the LAST patch write of the (deterministic) build: it lands inside
  // the final instance's boot commit, after the earlier instances committed.
  RolloutLog log;
  options.boot_log = &log;
  ScopedFault fault(FaultSite::kPatchWrite, writes - 1);
  Result<std::unique_ptr<Fleet>> fleet = Fleet::Build(sources, options);
  ASSERT_FALSE(fleet.ok());

  // Structured propagation: the Status carries the failing instance, the
  // underlying commit error, and the rollback notes for its predecessors.
  EXPECT_NE(fleet.status().message().find("instance 2 boot commit"),
            std::string::npos)
      << fleet.status().ToString();
  EXPECT_NE(fleet.status().message().find("instance 1 rolled back"),
            std::string::npos)
      << fleet.status().ToString();
  EXPECT_NE(fleet.status().message().find("instance 0 rolled back"),
            std::string::npos)
      << fleet.status().ToString();

  // The audit trail: boot commits for 0 and 1, the failure on 2, then the
  // rollbacks in reverse boot order.
  std::vector<RolloutEvent::Kind> kinds;
  std::vector<int> instances;
  for (const RolloutEvent& event : log.events()) {
    kinds.push_back(event.kind);
    instances.push_back(event.instance);
  }
  const std::vector<RolloutEvent::Kind> want_kinds = {
      RolloutEvent::Kind::kBootCommit, RolloutEvent::Kind::kBootCommit,
      RolloutEvent::Kind::kFlipFailed, RolloutEvent::Kind::kBootRollback,
      RolloutEvent::Kind::kBootRollback};
  const std::vector<int> want_instances = {0, 1, 2, 1, 0};
  EXPECT_EQ(kinds, want_kinds) << log.ToString();
  EXPECT_EQ(instances, want_instances) << log.ToString();
}

TEST(CommitCoordinatorTest, TenantPinSurvivesFleetWideFlip) {
  std::unique_ptr<Fleet> fleet = BuildFleet(6);
  ASSERT_NE(fleet, nullptr);
  const uint64_t kTenant = 3;
  ASSERT_TRUE(fleet->PinTenant(kTenant, {{"fast_path", 0}}).ok());
  const int pinned = fleet->RouteTenant(kTenant);
  const uint64_t pinned_fingerprint = *fleet->ConfigFingerprint(pinned);

  CommitCoordinator coordinator(fleet.get(), SmallPolicy(3));
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  EXPECT_TRUE(rolled->advanced_to_full);
  EXPECT_EQ(rolled->flipped_instances, 5u);  // pinned instance excluded
  EXPECT_EQ(rolled->identity_mismatches, 0u);
  // The pin held through the fleet-wide flip...
  EXPECT_EQ(*fleet->ConfigFingerprint(pinned), pinned_fingerprint);
  EXPECT_EQ(*fleet->ReadSwitchValue(pinned, "fast_path"), 0);
  // ...and the pinned tenant still routes to its dedicated instance.
  EXPECT_EQ(fleet->RouteTenant(kTenant), pinned);
  for (int i = 0; i < fleet->size(); ++i) {
    if (i != pinned) {
      EXPECT_EQ(*fleet->ReadSwitchValue(i, "fast_path"), 1) << "instance " << i;
    }
  }
}

TEST(CommitCoordinatorTest, RolloutLogProvesEveryInstanceFullyOldOrFullyNew) {
  std::unique_ptr<Fleet> fleet = BuildFleet(4);
  ASSERT_NE(fleet, nullptr);
  CommitCoordinator coordinator(fleet.get(), SmallPolicy(2));
  Result<RolloutReport> rolled =
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn);
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();

  int proofs = 0;
  for (const RolloutEvent& event : coordinator.log().events()) {
    if (event.kind == RolloutEvent::Kind::kProof) {
      ++proofs;
      EXPECT_EQ(event.detail.find("MISMATCH"), std::string::npos)
          << event.detail;
    }
  }
  EXPECT_EQ(proofs, fleet->size());  // one verdict per instance, none mixed
}

}  // namespace
}  // namespace mv

// Differential oracle for the variational executor (src/vm/varexec.h,
// src/core/varprove.h): on small switch domains, the verdicts of the
// one-pass variational run must agree bit-for-bit with brute-force
// enumeration — per-config transcripts, fault streams, return values and
// data checksums — across both dispatch engines and both commit engines
// (the plain transactional commit and the wait-free live protocol).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/program.h"
#include "src/core/varprove.h"
#include "src/livepatch/livepatch.h"
#include "src/vm/superblock.h"

namespace mv {
namespace {

// Two switches (2 x 3 = 6 configs), transcript-producing: the varexec
// transcript must match the brute-force putchar stream exactly.
constexpr char kTwoSwitch[] = R"(
__attribute__((multiverse)) bool verbose;
__attribute__((multiverse(1, 2, 4))) int stride;
long sum;
__attribute__((multiverse))
void step(long i) {
  if (i % stride == 0) {
    sum = sum + i;
    if (verbose) { __builtin_vmcall(1, 'a' + (i % 26)); }
  }
}
long drive(long n) {
  long i;
  for (i = 0; i < n; ++i) { step(i); }
  return sum;
}
)";

// Three switches (2 x 3 x 2 = 12 configs) with a faulting subdomain:
// divisor = 0 raises kDivByZero for exactly those configs, so the fault
// stream itself is config-dependent.
constexpr char kThreeSwitchFaulting[] = R"(
__attribute__((multiverse)) bool twist;
__attribute__((multiverse(0, 1, 2))) int divisor;
__attribute__((multiverse(1, 2))) int gain;
long acc;
__attribute__((multiverse))
long mix(long x) {
  long v = x * gain;
  v = v / divisor;
  if (twist) { v = v ^ 21; }
  return v;
}
long drive(long n) {
  long i;
  for (i = 1; i <= n; ++i) { acc = acc + mix(i * 7); }
  return acc;
}
)";

// Four boolean switches (16 configs), memory-heavy: the data-segment
// checksum is the discriminating observable.
constexpr char kFourSwitch[] = R"(
__attribute__((multiverse)) bool fa;
__attribute__((multiverse)) bool fb;
__attribute__((multiverse)) bool fc;
__attribute__((multiverse)) bool fd;
long cells[32];
__attribute__((multiverse))
void phase(long i) {
  long v = i;
  if (fa) { v = v * 3; }
  if (fb) { v = v + cells[(i * 5) % 32]; }
  if (fc) { v = v ^ (i << 2); }
  if (fd) { v = v - 11; }
  cells[i % 32] = cells[i % 32] + v;
}
long drive(long n) {
  long i;
  long sum;
  for (i = 0; i < n; ++i) { phase(i); }
  sum = 0;
  for (i = 0; i < 32; ++i) { sum = sum + cells[i]; }
  return sum;
}
)";

CommitDriver WaitFreeDriver() {
  return [](Program* program) -> Status {
    LiveCommitOptions options;
    options.protocol = CommitProtocol::kWaitFree;
    return multiverse_commit_live(&program->vm(), &program->runtime(), options)
        .status();
  };
}

struct Case {
  const char* name;
  const char* source;
  uint64_t arg;
};

const Case kCases[] = {
    {"two_switch", kTwoSwitch, 24},
    {"three_switch_faulting", kThreeSwitchFaulting, 9},
    {"four_switch", kFourSwitch, 40},
};

void RunDifferential(const Case& test_case, DispatchEngine engine,
                     bool waitfree) {
  SCOPED_TRACE(std::string(test_case.name) + " / " +
               DispatchEngineName(engine) + " / " +
               (waitfree ? "waitfree" : "plain"));
  Result<std::unique_ptr<Program>> built =
      Program::Build({{test_case.name, test_case.source}}, {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Program& program = **built;
  program.vm().SetDispatchEngine(engine);

  VarProveOptions options;
  options.entry = "drive";
  options.args = {test_case.arg};
  if (waitfree) {
    options.commit = WaitFreeDriver();
  }

  Result<ConfigSpace> space = CollectConfigSpace(&program);
  ASSERT_TRUE(space.ok()) << space.status().ToString();

  Result<VarProveReport> proved = ProveEquivalence(&program, options);
  ASSERT_TRUE(proved.ok()) << proved.status().ToString();
  for (const std::string& mismatch : proved->mismatches) {
    ADD_FAILURE() << mismatch;
  }
  ASSERT_EQ(proved->num_configs, space->num_configs);
  ASSERT_EQ(proved->generic_outcomes.size(), space->num_configs);
  ASSERT_EQ(proved->committed_outcomes.size(), space->num_configs);

  // Brute force every config in both modes and demand bit-identical
  // observables from the variational pass.
  for (size_t config = 0; config < space->num_configs; ++config) {
    SCOPED_TRACE("config " + space->DescribeConfig(config));
    for (const bool committed : {false, true}) {
      const ConfigOutcome& vex = committed
                                     ? proved->committed_outcomes[config]
                                     : proved->generic_outcomes[config];
      Result<BruteOutcome> brute =
          RunOneConfig(&program, *space, config, committed, options);
      ASSERT_TRUE(brute.ok()) << brute.status().ToString();
      EXPECT_EQ(vex.exit, brute->exit) << (committed ? "committed" : "generic");
      EXPECT_EQ(vex.fault.kind, brute->fault.kind);
      if (vex.fault.kind != FaultKind::kNone) {
        EXPECT_EQ(vex.fault.addr, brute->fault.addr);
        EXPECT_EQ(vex.fault.pc, brute->fault.pc);
      }
      EXPECT_EQ(vex.transcript, brute->transcript);
      if (vex.exit == VmExit::Kind::kHalt) {
        EXPECT_EQ(vex.r0, brute->r0);
      }
      EXPECT_EQ(vex.mem_checksum, brute->mem_checksum);
    }
  }

  // The whole point: the variational passes must retire fewer instructions
  // than running each config separately would.
  uint64_t brute_total = 0;
  for (size_t config = 0; config < space->num_configs; ++config) {
    Result<BruteOutcome> brute =
        RunOneConfig(&program, *space, config, false, options);
    ASSERT_TRUE(brute.ok());
    brute_total += brute->instret;
  }
  EXPECT_LT(proved->generic_stats.instructions_executed, brute_total)
      << "variational sharing saved nothing";
}

TEST(VarexecDifferentialTest, LegacyEnginePlainCommit) {
  for (const Case& test_case : kCases) {
    RunDifferential(test_case, DispatchEngine::kLegacy, false);
  }
}

TEST(VarexecDifferentialTest, SuperblockEnginePlainCommit) {
  for (const Case& test_case : kCases) {
    RunDifferential(test_case, DispatchEngine::kSuperblock, false);
  }
}

TEST(VarexecDifferentialTest, LegacyEngineWaitFreeCommit) {
  for (const Case& test_case : kCases) {
    RunDifferential(test_case, DispatchEngine::kLegacy, true);
  }
}

TEST(VarexecDifferentialTest, SuperblockEngineWaitFreeCommit) {
  for (const Case& test_case : kCases) {
    RunDifferential(test_case, DispatchEngine::kSuperblock, true);
  }
}

// Commit classes must partition the config space, and the class count must
// not exceed the config count (it is sub-linear whenever the specializer
// merged variants under guard ranges).
TEST(VarexecDifferentialTest, CommitClassesPartitionTheSpace) {
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"cls", kFourSwitch}}, {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Program& program = **built;
  Result<ConfigSpace> space = CollectConfigSpace(&program);
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->num_configs, 16u);
  Result<std::vector<CommitClass>> classes =
      EnumerateCommitClasses(&program, *space, PlainCommitDriver());
  ASSERT_TRUE(classes.ok()) << classes.status().ToString();
  std::vector<PresenceCondition> masks;
  for (const CommitClass& cls : *classes) {
    masks.push_back(cls.members);
    EXPECT_TRUE(cls.members.Test(cls.rep_config));
  }
  EXPECT_TRUE(IsPartition(masks, space->num_configs));
  EXPECT_LE(classes->size(), space->num_configs);
}

}  // namespace
}  // namespace mv

// Unit tests for the live-patching subsystem: the BKPT trap, the per-core
// instruction caches with stale-fetch detection, the batched
// LivePatchSession plans, and multiverse_commit_live() on an otherwise idle
// machine (where every protocol must degrade to a plain commit).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/livepatch_session.h"
#include "src/core/patching.h"
#include "src/core/program.h"
#include "src/isa/isa.h"
#include "src/livepatch/livepatch.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

constexpr uint64_t kText = 0x1000;
constexpr uint64_t kStackTop = 0x20000;

class VmHarness {
 public:
  explicit VmHarness(int cores = 1) : vm_(0x40000, cores) {
    EXPECT_TRUE(vm_.memory().Protect(kText, 0x4000, kPermRead | kPermExec).ok());
    EXPECT_TRUE(
        vm_.memory().Protect(0x10000, kStackTop - 0x10000, kPermRead | kPermWrite).ok());
  }

  uint64_t Assemble(const std::vector<Insn>& insns, uint64_t addr) {
    std::vector<uint8_t> bytes;
    for (const Insn& insn : insns) {
      Result<int> size = Encode(insn, &bytes);
      EXPECT_TRUE(size.ok()) << size.status().ToString();
    }
    EXPECT_TRUE(vm_.memory().WriteRaw(addr, bytes.data(), bytes.size()).ok());
    vm_.FlushIcache(addr, bytes.size());
    return addr + bytes.size();
  }

  void Start(int core, uint64_t pc = kText) {
    Core& c = vm_.core(core);
    c.pc = pc;
    c.halted = false;
    c.regs[kRegSP] = kStackTop - 16 - 0x1000 * static_cast<uint64_t>(core);
  }

  Vm& vm() { return vm_; }

 private:
  Vm vm_;
};

// --- BKPT instruction -------------------------------------------------------

TEST(BkptTest, EncodesToOneByteAndRoundTrips) {
  std::vector<uint8_t> bytes;
  Result<int> size = Encode(MakeSimple(Op::kBkpt), &bytes);
  ASSERT_TRUE(size.ok()) << size.status().ToString();
  EXPECT_EQ(*size, 1);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], kBkptByte);

  Result<Insn> decoded = Decode(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, Op::kBkpt);
  EXPECT_EQ(decoded->size, 1);
}

TEST(BkptTest, ExitsWithPcStillAtTheBreakpoint) {
  VmHarness harness;
  harness.Assemble({MakeMovRI(0, 7), MakeSimple(Op::kBkpt), MakeMovRI(0, 9),
                    MakeSimple(Op::kHlt)},
                   kText);
  harness.Start(0);
  const VmExit exit = harness.vm().Run(0, 1000);
  ASSERT_EQ(exit.kind, VmExit::Kind::kBreakpoint) << exit.ToString();

  Core& core = harness.vm().core(0);
  const uint64_t bkpt_pc = core.pc;
  EXPECT_EQ(core.regs[0], 7u);  // first insn retired, the BKPT did not
  EXPECT_EQ(core.bkpt_traps, 1u);

  uint8_t byte = 0;
  ASSERT_TRUE(harness.vm().memory().ReadRaw(bkpt_pc, &byte, 1).ok());
  EXPECT_EQ(byte, kBkptByte);

  // The host trap handler's view: replace the BKPT, flush, resume — the core
  // re-executes from the same pc.
  const uint8_t nop = static_cast<uint8_t>(Op::kNop);
  ASSERT_TRUE(WriteCodeBytes(&harness.vm(), bkpt_pc, &nop, 1).ok());
  const VmExit resumed = harness.vm().Run(0, 1000);
  ASSERT_EQ(resumed.kind, VmExit::Kind::kHalt) << resumed.ToString();
  EXPECT_EQ(core.regs[0], 9u);
}

// --- Per-core instruction caches -------------------------------------------

TEST(IcacheTest, CachesAreSeparatePerCore) {
  VmHarness harness(2);
  harness.Assemble({MakeMovRI(0, 1), MakeSimple(Op::kHlt)}, kText);
  harness.vm().FlushAllIcache();

  harness.Start(0);
  ASSERT_EQ(harness.vm().Run(0, 100).kind, VmExit::Kind::kHalt);
  EXPECT_GT(harness.vm().icache_entries(0), 0u);
  EXPECT_EQ(harness.vm().icache_entries(1), 0u);

  harness.Start(1);
  ASSERT_EQ(harness.vm().Run(1, 100).kind, VmExit::Kind::kHalt);
  EXPECT_GT(harness.vm().icache_entries(1), 0u);
  EXPECT_EQ(harness.vm().icache_entries(),
            harness.vm().icache_entries(0) + harness.vm().icache_entries(1));
}

TEST(IcacheTest, FlushInvalidatesEveryCore) {
  VmHarness harness(2);
  const uint64_t end = harness.Assemble({MakeMovRI(0, 1), MakeSimple(Op::kHlt)}, kText);
  harness.vm().FlushAllIcache();
  for (int core = 0; core < 2; ++core) {
    harness.Start(core);
    ASSERT_EQ(harness.vm().Run(core, 100).kind, VmExit::Kind::kHalt);
  }
  const uint64_t flushes_before = harness.vm().icache_flushes();
  harness.vm().FlushIcache(kText, end - kText);
  EXPECT_EQ(harness.vm().icache_entries(0), 0u);
  EXPECT_EQ(harness.vm().icache_entries(1), 0u);
  EXPECT_EQ(harness.vm().icache_flushes(), flushes_before + 1);
}

TEST(IcacheTest, UnflushedWriteExecutesStaleBytesUndetected) {
  // Without the detector, a code write that skips the flush keeps executing
  // the old decode from the icache — the silent hazard (paper §7.3).
  VmHarness harness;
  harness.Assemble({MakeMovRI(0, 1), MakeSimple(Op::kHlt)}, kText);
  harness.Start(0);
  ASSERT_EQ(harness.vm().Run(0, 100).kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.vm().core(0).regs[0], 1u);

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(Encode(MakeMovRI(0, 2), &bytes).ok());
  ASSERT_TRUE(
      WriteCodeBytes(&harness.vm(), kText, bytes.data(), bytes.size(), /*flush=*/false)
          .ok());
  harness.Start(0);
  ASSERT_EQ(harness.vm().Run(0, 100).kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.vm().core(0).regs[0], 1u);  // stale!
  EXPECT_EQ(harness.vm().core(0).stale_fetches, 0u);
}

TEST(IcacheTest, StaleFetchDetectorFaultsInsteadOfExecutingStaleBytes) {
  VmHarness harness;
  harness.vm().set_stale_fetch_detection(true);
  harness.Assemble({MakeMovRI(0, 1), MakeSimple(Op::kHlt)}, kText);
  harness.Start(0);
  ASSERT_EQ(harness.vm().Run(0, 100).kind, VmExit::Kind::kHalt);

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(Encode(MakeMovRI(0, 2), &bytes).ok());
  ASSERT_TRUE(
      WriteCodeBytes(&harness.vm(), kText, bytes.data(), bytes.size(), /*flush=*/false)
          .ok());
  harness.Start(0);
  const VmExit exit = harness.vm().Run(0, 100);
  ASSERT_EQ(exit.kind, VmExit::Kind::kFault) << exit.ToString();
  EXPECT_EQ(exit.fault.kind, FaultKind::kStaleFetch);
  EXPECT_EQ(harness.vm().core(0).stale_fetches, 1u);

  // After the flush the new bytes execute.
  harness.vm().FlushIcache(kText, bytes.size());
  harness.Start(0);
  ASSERT_EQ(harness.vm().Run(0, 100).kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.vm().core(0).regs[0], 2u);
}

TEST(IcacheTest, SafePointQueries) {
  VmHarness harness;
  harness.Start(0, kText + 2);
  const CodeRange range{kText, 5};
  EXPECT_TRUE(harness.vm().PcInRange(0, range));
  EXPECT_FALSE(harness.vm().AtSafePoint(0, {range}));
  EXPECT_TRUE(harness.vm().AtSafePoint(0, {CodeRange{kText + 16, 5}}));
  harness.Start(0, kText + 5);  // one past the end: safe
  EXPECT_TRUE(harness.vm().AtSafePoint(0, {range}));
}

// --- LivePatchSession -------------------------------------------------------

constexpr char kMultiverseSource[] = R"(
__attribute__((multiverse)) bool feature;
long count;
__attribute__((multiverse))
void tick() { if (feature) { count = count + 2; } else { count = count + 1; } }
long run(long n) { long i; for (i = 0; i < n; ++i) { tick(); } return count; }
)";

std::unique_ptr<Program> BuildMultiverse(int cores = 1) {
  BuildOptions options;
  options.vm_cores = cores;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"mv_demo", kMultiverseSource}}, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(*built);
}

TEST(LivePatchSessionTest, PlanRecordsWritesWithoutApplyingThem) {
  std::unique_ptr<Program> program = BuildMultiverse();
  ASSERT_TRUE(program->WriteGlobal("feature", 1, 1).ok());

  // Snapshot the text segment, plan a commit, and verify nothing changed.
  const uint64_t base = program->image().text_base;
  const uint64_t size = program->image().text_size;
  std::vector<uint8_t> before(size);
  ASSERT_TRUE(program->vm().memory().ReadRaw(base, before.data(), size).ok());

  LivePatchSession session(&program->runtime());
  Result<PatchStats> stats = session.PlanCommit();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->functions_committed, 0);
  ASSERT_FALSE(session.plan().empty());

  std::vector<uint8_t> after(size);
  ASSERT_TRUE(program->vm().memory().ReadRaw(base, after.data(), size).ok());
  EXPECT_EQ(before, after) << "planning must not touch guest memory";

  // Every op records the bytes currently in memory as old_bytes and a
  // different 5-byte sequence as new_bytes, within the text segment.
  for (const PatchOp& op : session.plan()) {
    EXPECT_GE(op.addr, base);
    EXPECT_LE(op.addr + 5, base + size);
    uint8_t current[5];
    ASSERT_TRUE(program->vm().memory().ReadRaw(op.addr, current, 5).ok());
    EXPECT_EQ(std::memcmp(current, op.old_bytes.data(), 5), 0);
    EXPECT_NE(std::memcmp(op.old_bytes.data(), op.new_bytes.data(), 5), 0);
  }
  const std::vector<CodeRange> ranges = session.UnsafeRanges();
  ASSERT_EQ(ranges.size(), session.plan().size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].addr, session.plan()[i].addr);
    EXPECT_EQ(ranges[i].len, 5u);
  }

  // Applying the plan yields the committed behaviour.
  ASSERT_TRUE(session.ApplyAll(&program->vm()).ok());
  Result<uint64_t> result = program->Call("run", {10});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 20u);
}

TEST(LivePatchSessionTest, PlannedCommitMatchesPlainCommit) {
  // Twin programs: one committed through a plan + ApplyAll, one through the
  // paper's immediate Commit(). The resulting text segments must be
  // byte-identical.
  std::unique_ptr<Program> planned = BuildMultiverse();
  std::unique_ptr<Program> plain = BuildMultiverse();
  ASSERT_TRUE(planned->WriteGlobal("feature", 1, 1).ok());
  ASSERT_TRUE(plain->WriteGlobal("feature", 1, 1).ok());

  {
    LivePatchSession session(&planned->runtime());
    ASSERT_TRUE(session.PlanCommit().ok());
    ASSERT_TRUE(session.ApplyAll(&planned->vm()).ok());
  }
  ASSERT_TRUE(plain->runtime().Commit().ok());

  const uint64_t size = planned->image().text_size;
  ASSERT_EQ(size, plain->image().text_size);
  std::vector<uint8_t> a(size), b(size);
  ASSERT_TRUE(
      planned->vm().memory().ReadRaw(planned->image().text_base, a.data(), size).ok());
  ASSERT_TRUE(plain->vm().memory().ReadRaw(plain->image().text_base, b.data(), size).ok());
  EXPECT_EQ(a, b);
}

// --- multiverse_commit_live on an idle machine ------------------------------

class LiveCommitIdleTest : public ::testing::TestWithParam<CommitProtocol> {};

TEST_P(LiveCommitIdleTest, MatchesPlainCommitSemantics) {
  std::unique_ptr<Program> program = BuildMultiverse();
  ASSERT_TRUE(program->WriteGlobal("feature", 1, 1).ok());

  LiveCommitOptions options;
  options.protocol = GetParam();
  Result<LiveCommitStats> stats =
      multiverse_commit_live(&program->vm(), &program->runtime(), options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->patch.functions_committed, 0);
  EXPECT_GT(stats->ops_applied, 0);
  EXPECT_GT(stats->commit_ticks, 0u);
  EXPECT_GT(stats->icache_flushes, 0u);
  // Nothing was running: nobody to stop, trap, or park.
  EXPECT_EQ(stats->cores_stopped, 0);
  EXPECT_EQ(stats->bkpt_traps, 0);
  EXPECT_EQ(stats->stopped_ticks, 0u);
  EXPECT_EQ(stats->parked_ticks, 0u);

  Result<uint64_t> result = program->Call("run", {10});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, 20u);

  // No BKPT byte may survive a completed breakpoint-protocol commit.
  const uint64_t base = program->image().text_base;
  std::vector<uint8_t> text(program->image().text_size);
  ASSERT_TRUE(program->vm().memory().ReadRaw(base, text.data(), text.size()).ok());
  const std::string disasm = Disassemble(text.data(), text.size(), base);
  EXPECT_EQ(disasm.find("bkpt"), std::string::npos);
}

TEST_P(LiveCommitIdleTest, BreakpointCostsMoreThanQuiescenceWhenIdle) {
  // Sanity of the cost model: per-op flushes (breakpoint) must not be cheaper
  // than the single batched apply (quiescence). Run under the same plan.
  std::unique_ptr<Program> program = BuildMultiverse();
  ASSERT_TRUE(program->WriteGlobal("feature", 1, 1).ok());
  LiveCommitOptions options;
  options.protocol = GetParam();
  Result<LiveCommitStats> stats =
      multiverse_commit_live(&program->vm(), &program->runtime(), options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  if (GetParam() == CommitProtocol::kBreakpoint) {
    // 3 writes + 3 flushes per op.
    EXPECT_GE(stats->icache_flushes, 3u * static_cast<uint64_t>(stats->ops_applied));
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, LiveCommitIdleTest,
                         ::testing::Values(CommitProtocol::kUnsafe,
                                           CommitProtocol::kQuiescence,
                                           CommitProtocol::kBreakpoint),
                         [](const ::testing::TestParamInfo<CommitProtocol>& info) {
                           return std::string(CommitProtocolName(info.param));
                         });

TEST(LiveCommitTest, ProtocolNamesRoundTrip) {
  for (CommitProtocol p : {CommitProtocol::kUnsafe, CommitProtocol::kQuiescence,
                           CommitProtocol::kBreakpoint}) {
    Result<CommitProtocol> parsed = ParseCommitProtocol(CommitProtocolName(p));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_TRUE(ParseCommitProtocol("stop-machine").ok());
  EXPECT_TRUE(ParseCommitProtocol("bkpt").ok());
  EXPECT_FALSE(ParseCommitProtocol("yolo").ok());
}

TEST(LiveCommitTest, StrayBreakpointReachingProgramCallIsAnError) {
  std::unique_ptr<Program> program = BuildMultiverse();
  // Plant a BKPT over the entry of run() without any commit in flight.
  const uint64_t run_addr = *program->SymbolAddress("run");
  ASSERT_TRUE(WriteCodeBytes(&program->vm(), run_addr, &kBkptByte, 1).ok());
  Result<uint64_t> result = program->Call("run", {1});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("breakpoint"), std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace mv

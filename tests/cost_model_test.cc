// Regression tests pinning the cost-model relationships the reproduction's
// conclusions depend on (see DESIGN.md §2 and EXPERIMENTS.md). If someone
// retunes src/isa/cost_model.h, these tests say which paper-level claims are
// affected.
#include <gtest/gtest.h>

#include "src/isa/cost_model.h"
#include "src/isa/isa.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

constexpr uint64_t kText = 0x1000;

// Runs a single instruction (plus HLT) on a fresh VM and returns its cost in
// ticks.
uint64_t CostOf(const Insn& insn, bool guest = false) {
  Vm vm(1 << 20);
  vm.set_hypervisor_guest(guest);
  EXPECT_TRUE(vm.memory().Protect(kText, 0x1000, kPermRead | kPermExec).ok());
  EXPECT_TRUE(vm.memory().Protect(0x8000, 0x1000, kPermRead | kPermWrite).ok());
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(Encode(insn, &bytes).ok());
  uint8_t hlt = static_cast<uint8_t>(Op::kHlt);
  EXPECT_TRUE(vm.memory().WriteRaw(kText, bytes.data(), bytes.size()).ok());
  EXPECT_TRUE(vm.memory().WriteRaw(kText + bytes.size(), &hlt, 1).ok());
  Core& core = vm.core(0);
  core.pc = kText;
  core.regs[1] = 0x8000;  // a valid data pointer for memory ops
  core.regs[kRegSP] = 0x8800;
  const VmExit exit = vm.Run(0, 100);
  EXPECT_EQ(exit.kind, VmExit::Kind::kHalt) << exit.ToString();
  return core.ticks;
}

TEST(CostModelTest, DocumentedStraightLineCosts) {
  const CostModel cm;
  EXPECT_EQ(CostOf(MakeMovRI(0, 5)), cm.mov);
  EXPECT_EQ(CostOf(MakeAluRI(Op::kAddI, 0, 1)), cm.alu);
  EXPECT_EQ(CostOf(MakeCmpI(0, 0)), cm.cmp);
  EXPECT_EQ(CostOf(MakeLoad(Op::kLd64, 0, 1, 0)), cm.load);
  EXPECT_EQ(CostOf(MakeStore(Op::kSt64, 0, 1, 0)), cm.store);
  EXPECT_EQ(CostOf(MakeLdg(0, GWidth::kU32, 0x8000)), cm.global_load);
  EXPECT_EQ(CostOf(MakeSimple(Op::kNop)), cm.nop);
  EXPECT_EQ(CostOf(MakeSimple(Op::kSti)), cm.sti_cli_native);
  EXPECT_EQ(CostOf(MakeAluRR(Op::kXchg, 0, 1)), cm.xchg_atomic);
  EXPECT_EQ(CostOf(MakeHypercall(0)), cm.hypercall);
}

TEST(CostModelTest, MispredictPenaltyIsTheSkylakeFootnote) {
  // Paper footnote 1: "e.g., Intel Skylake: 16.5/19-20 cycles".
  const CostModel cm;
  EXPECT_DOUBLE_EQ(TicksToCycles(cm.branch_mispredict_penalty), 16.5);
}

TEST(CostModelTest, GuestTrapDwarfsHypercall) {
  // The reason PV-Ops exist: a privileged instruction in a guest must cost
  // far more than its paravirtual replacement.
  const CostModel cm;
  EXPECT_GT(CostOf(MakeSimple(Op::kCli), /*guest=*/true), 10 * cm.hypercall);
  EXPECT_EQ(CostOf(MakeSimple(Op::kCli), /*guest=*/true), cm.sti_cli_guest_trap);
}

TEST(CostModelTest, AtomicExchangeDominatesUncontendedLock) {
  // The SMP/UP gap in Figures 1 and 4 comes from the locked operation being
  // an order of magnitude above plain ALU work.
  const CostModel cm;
  EXPECT_GE(cm.xchg_atomic, 10 * cm.alu);
  // ...and the dynamic-check overhead (global load + cmp + predicted branch)
  // must stay small relative to it, or the multicore bars would diverge.
  EXPECT_LT(cm.global_load + cm.cmp + cm.branch_predicted, cm.xchg_atomic / 4);
}

TEST(CostModelTest, NopCostMakesEradicatedCallSitesCheap) {
  // Five NOPs (an eradicated call site, Figure 3 c) must cost well under the
  // call+return round trip they replace, or NOPing would not pay off.
  const CostModel cm;
  EXPECT_LT(5 * cm.nop, (cm.call + cm.ret) / 2);
}

TEST(CostModelTest, DynamicCheckCostMatchesFig1Delta) {
  // The per-function dynamic-variability overhead: load switch, compare,
  // predicted branch. Figure 1's B-A delta is two of these (lock + unlock);
  // the model keeps it in the low single-digit cycles like the paper's 3.1.
  const CostModel cm;
  const double per_fn = TicksToCycles(cm.global_load + cm.cmp + cm.branch_predicted);
  EXPECT_GE(2 * per_fn, 2.0);
  EXPECT_LE(2 * per_fn, 7.0);
}

}  // namespace
}  // namespace mv

// Multi-core interleaving property test for the livepatch protocols: N
// mutator cores single-step through the spinlock workload while the host
// issues a live commit at EVERY possible interleaving point (every prefix
// length of the deterministic round-robin schedule). For each commit point ×
// protocol the test asserts
//   * soundness: the run completes with the generic-behaviour results
//     (per-worker counters, lock released, preemption balanced) — committing
//     must never change what the program computes, only how fast;
//   * no torn or stale retirement: the stale-fetch detector is armed for the
//     whole run, so a single stale icache hit fails the sweep.
// A fault-injection variant drops the icache flushes and asserts the
// detector fires (instead of stale bytes executing silently), and the
// paper's unsafe baseline is swept to demonstrate the motivating anomaly:
// at some commit point a core resumes inside a rewritten site and tears.
//
// The workload extends the multiverse spinlock kernel with a multiversed
// debug hook whose off-variant is empty — its call sites are NOP-eradicated
// by the boot commit, so mutator pcs can legitimately sit *inside* a 5-byte
// patch range: the torn-execution hazard the protocols must handle.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/program.h"
#include "src/core/varprove.h"
#include "src/livepatch/livepatch.h"
#include "src/obj/linker.h"
#include "src/vm/presence.h"
#include "src/workloads/kernel.h"

namespace mv {
namespace {

// Rounds per worker. The every-point sweeps use a short workload (the sweep
// is quadratic in its length); the fault-injection sweep needs one long
// enough to outlive the whole patch window, or the workers halt before ever
// re-fetching a patched site and there is legitimately nothing stale.
constexpr uint64_t kShortRounds = 2;
constexpr uint64_t kLongRounds = 16;

std::string InterleaveSource() {
  return SpinlockKernelSource(SpinBinding::kMultiverse) + R"(
long c0; long c1;
long done0; long done1;
long dbg_hits;
__attribute__((multiverse)) int debug_on;

__attribute__((multiverse))
void dbg_hook() { if (debug_on) { dbg_hits = dbg_hits + 1; } }

void worker(long rounds, long slot) {
  long i;
  for (i = 0; i < rounds; ++i) {
    spin_lock_irq(&lock_word);
    if (slot) { c1 = c1 + 1; } else { c0 = c0 + 1; }
    spin_unlock_irq(&lock_word);
    dbg_hook();
  }
  if (slot) { done1 = 1; } else { done0 = 1; }
}
)";
}

enum class RunOutcome {
  kClean,     // completed with generic-behaviour results
  kDetected,  // the stale-fetch detector fired (fault-injection success)
  kAnomaly,   // torn execution / wrong results / unexpected exit
};

struct SweepResult {
  int points = 0;
  int clean = 0;
  int detected = 0;
  int anomaly = 0;
  // Protocol activity accumulated over the sweep.
  uint64_t bkpt_traps = 0;
  uint64_t cores_stopped = 0;
  uint64_t parked_ticks = 0;
  uint64_t stopped_ticks = 0;
  std::string first_anomaly;
};

class InterleaveFixture {
 public:
  InterleaveFixture(int num_mutators, bool detect, uint64_t rounds,
                    DispatchEngine engine = DispatchEngine::kLegacy)
      : num_mutators_(num_mutators), detect_(detect), rounds_(rounds),
        engine_(engine) {
    Rebuild();
  }

  Program& program() { return *program_; }

  std::vector<int> MutatorCores() const {
    std::vector<int> cores;
    for (int i = 0; i < num_mutators_; ++i) {
      cores.push_back(i + 1);
    }
    return cores;
  }

  void Rebuild() {
    BuildOptions options;
    options.vm_cores = 1 + num_mutators_;
    Result<std::unique_ptr<Program>> built =
        Program::Build({{"interleave", InterleaveSource()}}, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    program_ = std::move(*built);
    program_->vm().SetDispatchEngine(engine_);
    program_->vm().set_stale_fetch_detection(detect_);
    worker_ = *program_->SymbolAddress("worker");
    Boot();
  }

  // Restores boot state on the same program: generic text, zeroed globals,
  // boot commit, workers re-armed. Only valid after a clean run (text and
  // runtime bookkeeping consistent).
  void Reset() {
    ASSERT_TRUE(program_->runtime().Revert().ok());
    program_->vm().FlushAllIcache();
    Boot();
  }

  // Flips the multiverse configuration the way a hotplug would and asks for
  // the live commit.
  void RaiseConfig() {
    ASSERT_TRUE(program_->WriteGlobal("config_smp", 1, 4).ok());
    ASSERT_TRUE(program_->WriteGlobal("debug_on", 1, 4).ok());
  }

  // Advances the deterministic round-robin schedule by one single step.
  // Returns false once every worker has halted. Outcome degrades to
  // kAnomaly if a worker exits any way other than HLT.
  bool StepSchedule(RunOutcome* outcome) {
    for (int attempt = 0; attempt < num_mutators_; ++attempt) {
      const int core = 1 + (rr_++ % num_mutators_);
      Core& c = program_->vm().core(core);
      if (c.halted) {
        continue;
      }
      std::optional<VmExit> exit = program_->vm().Step(core);
      if (exit.has_value() && exit->kind != VmExit::Kind::kHalt) {
        *outcome = exit->kind == VmExit::Kind::kFault &&
                           exit->fault.kind == FaultKind::kStaleFetch
                       ? RunOutcome::kDetected
                       : RunOutcome::kAnomaly;
        return false;
      }
      return true;
    }
    return false;  // all halted
  }

  // Runs the remaining schedule to completion and classifies the run.
  RunOutcome Drain(std::string* why) {
    RunOutcome outcome = RunOutcome::kClean;
    for (uint64_t step = 0; step < 1'000'000; ++step) {
      if (!StepSchedule(&outcome)) {
        if (outcome != RunOutcome::kClean) {
          *why = "mutator exit during drain";
          return outcome;
        }
        return CheckFinalState(why);
      }
    }
    *why = "workers did not finish (livelock)";
    return RunOutcome::kAnomaly;
  }

  // The soundness oracle: the generic program (uncommitted, same config)
  // deterministically produces exactly these per-core values, so a committed
  // run that deviates has changed behaviour. Deliberately NOT checked:
  // preempt_count — the Figure 1 code updates it outside the critical
  // section, so its final value is interleaving-dependent with >1 core in
  // generic and committed code alike.
  RunOutcome CheckFinalState(std::string* why) {
    const int64_t c0 = *program_->ReadGlobal("c0");
    const int64_t c1 = num_mutators_ > 1 ? *program_->ReadGlobal("c1") : 0;
    const int64_t expect1 = num_mutators_ > 1 ? static_cast<int64_t>(rounds_) : 0;
    if (c0 != static_cast<int64_t>(rounds_) || c1 != expect1) {
      *why = "worker counters diverged from generic behaviour";
      return RunOutcome::kAnomaly;
    }
    if (*program_->ReadGlobal("done0") != 1 ||
        (num_mutators_ > 1 && *program_->ReadGlobal("done1") != 1)) {
      *why = "a worker did not reach its completion flag";
      return RunOutcome::kAnomaly;
    }
    if (*program_->ReadGlobal("lock_word", 4) != 0) {
      *why = "lock still held after all workers finished";
      return RunOutcome::kAnomaly;
    }
    return RunOutcome::kClean;
  }

 private:
  void Boot() {
    for (const char* name : {"c0", "c1", "done0", "done1", "dbg_hits"}) {
      ASSERT_TRUE(program_->WriteGlobal(name, 0, 8).ok());
    }
    for (const char* name : {"config_smp", "debug_on", "lock_word", "preempt_count"}) {
      ASSERT_TRUE(program_->WriteGlobal(name, 0, 4).ok());
    }
    // Boot commit: UP spinlocks, debug hook compiled out (NOP-eradicated
    // call sites — the interior-pc hazard material).
    Result<PatchStats> stats = program_->runtime().Commit();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (int i = 0; i < num_mutators_; ++i) {
      SetupCall(program_->image(), &program_->vm(), worker_,
                {rounds_, static_cast<uint64_t>(i)}, i + 1);
    }
    rr_ = 0;
  }

  int num_mutators_;
  bool detect_;
  uint64_t rounds_;
  DispatchEngine engine_;
  std::unique_ptr<Program> program_;
  uint64_t worker_ = 0;
  int rr_ = 0;
};

// Counts the schedule length of an undisturbed run (= the number of commit
// points to sweep).
int ScheduleLength(int num_mutators, uint64_t rounds, DispatchEngine engine) {
  InterleaveFixture fixture(num_mutators, /*detect=*/true, rounds, engine);
  RunOutcome outcome = RunOutcome::kClean;
  int steps = 0;
  while (fixture.StepSchedule(&outcome)) {
    ++steps;
    EXPECT_LT(steps, 1'000'000) << "dry run did not terminate";
  }
  EXPECT_EQ(outcome, RunOutcome::kClean);
  std::string why;
  EXPECT_EQ(fixture.CheckFinalState(&why), RunOutcome::kClean) << why;
  return steps;
}

// Sweeps a live commit across the schedule's interleaving points: every
// `stride`-th prefix length of the round-robin schedule gets one fresh run
// with the commit issued at that point.
SweepResult Sweep(CommitProtocol protocol, int num_mutators, bool flush_icache,
                  DispatchEngine engine = DispatchEngine::kLegacy,
                  uint64_t rounds = kShortRounds, int stride = 1) {
  const int total_steps = ScheduleLength(num_mutators, rounds, engine);
  EXPECT_GT(total_steps, 0);

  SweepResult result;
  InterleaveFixture fixture(num_mutators, /*detect=*/true, rounds, engine);
  for (int k = 0; k <= total_steps; k += stride) {
    ++result.points;
    RunOutcome outcome = RunOutcome::kClean;
    std::string why;

    for (int step = 0; step < k && outcome == RunOutcome::kClean; ++step) {
      fixture.StepSchedule(&outcome);
    }
    if (outcome == RunOutcome::kClean) {
      fixture.RaiseConfig();
      LiveCommitOptions options;
      options.protocol = protocol;
      options.mutator_cores = fixture.MutatorCores();
      options.flush_icache = flush_icache;
      Result<LiveCommitStats> stats = multiverse_commit_live(
          &fixture.program().vm(), &fixture.program().runtime(), options);
      if (stats.ok()) {
        result.bkpt_traps += static_cast<uint64_t>(stats->bkpt_traps);
        result.cores_stopped += static_cast<uint64_t>(stats->cores_stopped);
        result.parked_ticks += stats->parked_ticks;
        result.stopped_ticks += stats->stopped_ticks;
        if (protocol == CommitProtocol::kBreakpoint) {
          // The headline property: no stop-machine, ever.
          EXPECT_EQ(stats->cores_stopped, 0)
              << "breakpoint protocol stopped cores at commit point " << k;
        }
        if (protocol == CommitProtocol::kWaitFree) {
          // The headline property: zero disturbance — nothing stopped,
          // nothing parked, no trap-barrier, no misalignment fallback.
          EXPECT_EQ(stats->cores_stopped, 0)
              << "waitfree protocol stopped cores at commit point " << k;
          EXPECT_EQ(stats->parked_ticks, 0u)
              << "waitfree protocol parked a core at commit point " << k;
          EXPECT_EQ(stats->bkpt_traps, 0)
              << "waitfree protocol trapped a core at commit point " << k;
          EXPECT_FALSE(stats->waitfree_fallback)
              << "compiler-emitted plan misaligned at commit point " << k;
          EXPECT_GT(stats->word_stores, 0u);
        }
        outcome = fixture.Drain(&why);
      } else {
        const bool stale =
            stats.status().ToString().find("stale-fetch") != std::string::npos;
        outcome = stale ? RunOutcome::kDetected : RunOutcome::kAnomaly;
        why = stats.status().ToString();
      }
    } else {
      why = "pre-commit schedule failed";
    }

    switch (outcome) {
      case RunOutcome::kClean:
        ++result.clean;
        fixture.Reset();
        break;
      case RunOutcome::kDetected:
        ++result.detected;
        fixture.Rebuild();
        break;
      case RunOutcome::kAnomaly:
        ++result.anomaly;
        if (result.first_anomaly.empty()) {
          result.first_anomaly =
              "commit point " + std::to_string(k) + ": " + why;
        }
        fixture.Rebuild();
        break;
    }
  }
  return result;
}

// --- the property, per protocol × mutator count × dispatch engine ----------
//
// The dispatch-engine axis pins the livepatch protocols against the
// superblock engine: quiescence/breakpoint safety and stale-fetch verdicts
// must be preserved verbatim when whole decoded traces are cached instead of
// single instructions (see src/vm/superblock.h for the equivalence rules).

class LivepatchInterleaveTest
    : public ::testing::TestWithParam<
          std::tuple<CommitProtocol, int, DispatchEngine>> {};

TEST_P(LivepatchInterleaveTest, EveryCommitPointIsSoundAndStaleFree) {
  const auto [protocol, mutators, engine] = GetParam();
  const SweepResult result = Sweep(protocol, mutators, /*flush_icache=*/true, engine);
  EXPECT_EQ(result.anomaly, 0) << result.first_anomaly;
  EXPECT_EQ(result.detected, 0) << "stale fetch under a flushing protocol";
  EXPECT_EQ(result.clean, result.points);
  if (protocol == CommitProtocol::kQuiescence) {
    EXPECT_GT(result.cores_stopped, 0u) << "stop-machine never engaged";
  }
  if (protocol == CommitProtocol::kWaitFree) {
    EXPECT_EQ(result.cores_stopped, 0u) << "waitfree stopped a core";
    EXPECT_EQ(result.parked_ticks, 0u) << "waitfree parked a core";
    EXPECT_EQ(result.bkpt_traps, 0u) << "waitfree trapped a core";
  }
}

TEST_P(LivepatchInterleaveTest, SuppressedIcacheFlushIsDetectedNotSilent) {
  const auto [protocol, mutators, engine] = GetParam();
  // The breakpoint protocol co-executes mutators during the patch window, so a
  // short workload can halt before ever re-fetching a patched site — nothing
  // would be stale. Use a long workload (strided to keep the sweep cheap) so
  // the mutators outlive the commit and revisit patched sites.
  const SweepResult result = Sweep(protocol, mutators, /*flush_icache=*/false,
                                   engine, kLongRounds, /*stride=*/9);
  // Every commit point either stays coherent by luck (cold caches) or the
  // detector fires; stale bytes must never retire silently — a silent stale
  // execution would corrupt the counters and show up as an anomaly.
  EXPECT_EQ(result.anomaly, 0) << result.first_anomaly;
  EXPECT_GT(result.detected, 0)
      << "dropping the icache flush was never detected across "
      << result.points << " commit points";
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, LivepatchInterleaveTest,
    ::testing::Combine(::testing::Values(CommitProtocol::kQuiescence,
                                         CommitProtocol::kBreakpoint,
                                         CommitProtocol::kWaitFree),
                       ::testing::Values(1, 2),
                       ::testing::Values(DispatchEngine::kLegacy,
                                         DispatchEngine::kSuperblock,
                                         DispatchEngine::kThreaded)),
    [](const ::testing::TestParamInfo<std::tuple<CommitProtocol, int, DispatchEngine>>&
           info) {
      return std::string(CommitProtocolName(std::get<0>(info.param))) + "_x" +
             std::to_string(std::get<1>(info.param)) + "_" +
             DispatchEngineName(std::get<2>(info.param));
    });

// --- class-driven coverage of the config cross product ----------------------

// The parameterized sweeps above flip ONE fixed target assignment. This case
// drives the interleave sweep over the FULL switch-domain cross product
// (config_smp x debug_on) by enumerating the commit classes (varprove.h):
// each class representative gets its own commit-point sweep, and the class
// presence conditions are verified to partition the config space — so every
// configuration's live-commit transition is covered by exactly one swept
// representative instead of one sweep per config.
TEST(ClassDrivenInterleaveSweep, EveryCommitClassIsSoundAtSampledPoints) {
  // Enumerate the classes on a probe twin (class enumeration commits and
  // reverts; the swept fixture must stay pristine).
  Result<std::unique_ptr<Program>> probe =
      Program::Build({{"interleave", InterleaveSource()}}, BuildOptions{});
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const Result<ConfigSpace> space = CollectConfigSpace(probe->get());
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  ASSERT_EQ(space->num_configs, 4u);  // config_smp x debug_on
  Result<std::vector<CommitClass>> classes =
      EnumerateCommitClasses(probe->get(), *space, PlainCommitDriver());
  ASSERT_TRUE(classes.ok()) << classes.status().ToString();

  std::vector<PresenceCondition> masks;
  size_t configs_covered = 0;
  for (const CommitClass& cls : *classes) {
    masks.push_back(cls.members);
    configs_covered += cls.members.Count();
  }
  ASSERT_TRUE(IsPartition(masks, space->num_configs));
  ASSERT_EQ(configs_covered, space->num_configs);

  const int total_steps =
      ScheduleLength(/*num_mutators=*/1, kShortRounds, DispatchEngine::kLegacy);
  ASSERT_GT(total_steps, 0);

  for (const CommitClass& cls : *classes) {
    SCOPED_TRACE("class rep " + space->DescribeConfig(cls.rep_config));
    const std::vector<int64_t> values = space->Assignment(cls.rep_config);
    InterleaveFixture fixture(/*num_mutators=*/1, /*detect=*/true, kShortRounds);
    for (int k = 0; k <= total_steps; k += 3) {
      SCOPED_TRACE("commit point " + std::to_string(k));
      RunOutcome outcome = RunOutcome::kClean;
      for (int step = 0; step < k && outcome == RunOutcome::kClean; ++step) {
        fixture.StepSchedule(&outcome);
      }
      ASSERT_EQ(outcome, RunOutcome::kClean);
      // Flip to the class representative's assignment mid-schedule.
      for (size_t s = 0; s < space->switches.size(); ++s) {
        ASSERT_TRUE(fixture.program()
                        .WriteGlobal(space->switches[s].name, values[s],
                                     static_cast<int>(space->switches[s].width))
                        .ok());
      }
      LiveCommitOptions options;
      options.protocol = CommitProtocol::kWaitFree;
      options.mutator_cores = fixture.MutatorCores();
      Result<LiveCommitStats> stats = multiverse_commit_live(
          &fixture.program().vm(), &fixture.program().runtime(), options);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      std::string why;
      EXPECT_EQ(fixture.Drain(&why), RunOutcome::kClean) << why;
      fixture.Reset();
    }
  }
}

// --- the motivating baseline ------------------------------------------------

TEST(LivepatchInterleaveUnsafeTest, UnsafeBaselineTearsAtSomeCommitPoint) {
  // The paper's unsynchronized commit, swept over the same commit points: at
  // least one interleaving must tear (a core resumes inside a rewritten
  // NOP-eradicated site and decodes garbage) — the reason this subsystem
  // exists. Clean points also exist (e.g. commits after the workers halt).
  // The hazard must survive the superblock engine unchanged: block caching
  // may never make the unsafe baseline accidentally safe (or differently
  // unsafe) — that would mean the engine altered fetch semantics.
  for (DispatchEngine engine :
       {DispatchEngine::kLegacy, DispatchEngine::kSuperblock,
        DispatchEngine::kThreaded}) {
    const SweepResult result =
        Sweep(CommitProtocol::kUnsafe, 2, /*flush_icache=*/true, engine);
    EXPECT_GT(result.anomaly, 0)
        << DispatchEngineName(engine)
        << ": the unsafe baseline never tore; the hazard this subsystem "
           "guards against has disappeared from the workload";
    EXPECT_GT(result.clean, 0) << DispatchEngineName(engine);
  }
}

}  // namespace
}  // namespace mv

// Randomized differential testing of the whole toolchain: generate random
// mvc expression programs together with a host-side evaluator, then check
// that frontend -> IR -> optimizer -> codegen -> linker -> VM produces
// exactly the host-computed result — generically AND committed under every
// switch assignment.
//
// This is the broadest soundness net in the suite: constant folding, slot
// forwarding, CFG simplification, narrow-integer normalization, the
// specializer and the patcher all have to agree with a 30-line reference
// interpreter.
#include <gtest/gtest.h>

#include <functional>

#include "src/core/program.h"
#include "src/support/rng.h"
#include "src/support/str.h"

namespace mv {
namespace {

// A generated expression: mvc source text plus a host evaluator over
// (a, b, s0, s1) where s0/s1 are the configuration switches.
struct GenExpr {
  std::string text;
  std::function<int64_t(int64_t a, int64_t b, int64_t s0, int64_t s1)> eval;
};

class ExprGenerator {
 public:
  explicit ExprGenerator(uint64_t seed) : rng_(seed) {}

  GenExpr Generate(int depth) {
    if (depth <= 0) {
      return Leaf();
    }
    switch (rng_.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
        return Binary(depth, "+", [](int64_t l, int64_t r) {
          return static_cast<int64_t>(static_cast<uint64_t>(l) + static_cast<uint64_t>(r));
        });
      case 3:
        return Binary(depth, "-", [](int64_t l, int64_t r) {
          return static_cast<int64_t>(static_cast<uint64_t>(l) - static_cast<uint64_t>(r));
        });
      case 4:
        return Binary(depth, "*", [](int64_t l, int64_t r) {
          return static_cast<int64_t>(static_cast<uint64_t>(l) * static_cast<uint64_t>(r));
        });
      case 5:
        return Binary(depth, "&", [](int64_t l, int64_t r) { return l & r; });
      case 6:
        return Binary(depth, "|", [](int64_t l, int64_t r) { return l | r; });
      case 7:
        return Binary(depth, "^", [](int64_t l, int64_t r) { return l ^ r; });
      case 8: {
        // Comparison: always defined.
        GenExpr lhs = Generate(depth - 1);
        GenExpr rhs = Generate(depth - 1);
        const int which = static_cast<int>(rng_.NextBelow(3));
        const char* op = which == 0 ? "<" : which == 1 ? "==" : ">";
        GenExpr out;
        out.text = "(" + lhs.text + " " + op + " " + rhs.text + ")";
        out.eval = [le = lhs.eval, re = rhs.eval, which](int64_t a, int64_t b, int64_t s0,
                                                         int64_t s1) -> int64_t {
          const int64_t l = le(a, b, s0, s1);
          const int64_t r = re(a, b, s0, s1);
          return which == 0 ? l < r : which == 1 ? l == r : l > r;
        };
        return out;
      }
      default: {
        // Conditional on a switch: this is where specialization bites.
        GenExpr lhs = Generate(depth - 1);
        GenExpr rhs = Generate(depth - 1);
        const bool use_s0 = rng_.NextBool();
        GenExpr out;
        out.text = std::string("(") + (use_s0 ? "s0" : "s1") + " ? " + lhs.text + " : " +
                   rhs.text + ")";
        out.eval = [le = lhs.eval, re = rhs.eval, use_s0](int64_t a, int64_t b, int64_t s0,
                                                          int64_t s1) -> int64_t {
          return (use_s0 ? s0 : s1) != 0 ? le(a, b, s0, s1) : re(a, b, s0, s1);
        };
        return out;
      }
    }
  }

 private:
  GenExpr Leaf() {
    switch (rng_.NextBelow(5)) {
      case 0: {
        const int64_t value = rng_.NextInRange(-1000, 1000);
        GenExpr out;
        out.text = value < 0 ? StrFormat("(0 - %lld)", -(long long)value)
                             : StrFormat("%lld", (long long)value);
        out.eval = [value](int64_t, int64_t, int64_t, int64_t) { return value; };
        return out;
      }
      case 1:
        return GenExpr{"a", [](int64_t a, int64_t, int64_t, int64_t) { return a; }};
      case 2:
        return GenExpr{"b", [](int64_t, int64_t b, int64_t, int64_t) { return b; }};
      case 3:
        return GenExpr{"s0", [](int64_t, int64_t, int64_t s0, int64_t) { return s0; }};
      default:
        return GenExpr{"s1", [](int64_t, int64_t, int64_t, int64_t s1) { return s1; }};
    }
  }

  GenExpr Binary(int depth, const char* op,
                 std::function<int64_t(int64_t, int64_t)> fold) {
    GenExpr lhs = Generate(depth - 1);
    GenExpr rhs = Generate(depth - 1);
    GenExpr out;
    out.text = "(" + lhs.text + " " + op + " " + rhs.text + ")";
    out.eval = [le = lhs.eval, re = rhs.eval, fold](int64_t a, int64_t b, int64_t s0,
                                                    int64_t s1) {
      return fold(le(a, b, s0, s1), re(a, b, s0, s1));
    };
    return out;
  }

  Rng rng_;
};

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, RandomProgramMatchesHostEvaluator) {
  const uint64_t seed = GetParam();
  ExprGenerator gen(seed);
  const GenExpr expr = gen.Generate(4);

  const std::string source = StrFormat(
      R"(
__attribute__((multiverse)) int s0;
__attribute__((multiverse)) int s1;
__attribute__((multiverse))
long f(long a, long b) {
  return %s;
}
long call_f(long a, long b) { return f(a, b); }
)",
      expr.text.c_str());

  BuildOptions options;
  Result<std::unique_ptr<Program>> built = Program::Build({{"rand", source}}, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString() << "\nsource:\n" << source;
  Program& program = **built;

  Rng inputs(seed ^ 0xABCD);
  for (int64_t s0 : {0, 1}) {
    for (int64_t s1 : {0, 1}) {
      ASSERT_TRUE(program.WriteGlobal("s0", s0, 4).ok());
      ASSERT_TRUE(program.WriteGlobal("s1", s1, 4).ok());
      for (int round = 0; round < 4; ++round) {
        const int64_t a = inputs.NextInRange(-100000, 100000);
        const int64_t b = inputs.NextInRange(-100000, 100000);
        const auto expected = static_cast<uint64_t>(expr.eval(a, b, s0, s1));

        ASSERT_TRUE(program.runtime().Revert().ok());
        Result<uint64_t> generic = program.Call(
            "call_f", {static_cast<uint64_t>(a), static_cast<uint64_t>(b)});
        ASSERT_TRUE(generic.ok()) << generic.status().ToString();
        EXPECT_EQ(*generic, expected)
            << "generic mismatch: " << expr.text << " a=" << a << " b=" << b
            << " s0=" << s0 << " s1=" << s1;

        Result<PatchStats> commit = program.runtime().Commit();
        ASSERT_TRUE(commit.ok());
        Result<uint64_t> committed = program.Call(
            "call_f", {static_cast<uint64_t>(a), static_cast<uint64_t>(b)});
        ASSERT_TRUE(committed.ok());
        EXPECT_EQ(*committed, expected)
            << "committed mismatch: " << expr.text << " a=" << a << " b=" << b
            << " s0=" << s0 << " s1=" << s1;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range<uint64_t>(1, 25));

// Loop-accumulator differential: a bounded loop folds a random expression of
// the induction variable into an accumulator with a random operator — checks
// loop lowering, slot promotion and the specializer together.
class LoopDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LoopDifferentialTest, AccumulatorMatchesHostEvaluator) {
  const uint64_t seed = GetParam();
  ExprGenerator gen(seed * 31 + 7);
  const GenExpr body = gen.Generate(3);
  Rng rng(seed * 101 + 3);
  const int iterations = static_cast<int>(rng.NextInRange(1, 17));
  const int acc_op = static_cast<int>(rng.NextBelow(3));  // + ^ |
  const char* op_text = acc_op == 0 ? "+" : acc_op == 1 ? "^" : "|";

  const std::string source = StrFormat(
      R"(
__attribute__((multiverse)) int s0;
__attribute__((multiverse)) int s1;
__attribute__((multiverse))
long f(long a, long b) {
  long acc = 0;
  long i;
  for (i = 0; i < %d; ++i) {
    long t = %s;
    acc = acc %s (t + i);
  }
  return acc;
}
long call_f(long a, long b) { return f(a, b); }
)",
      iterations, body.text.c_str(), op_text);

  BuildOptions options;
  Result<std::unique_ptr<Program>> built = Program::Build({{"loop", source}}, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString() << "\nsource:\n" << source;
  Program& program = **built;

  auto host_eval = [&](int64_t a, int64_t b, int64_t s0, int64_t s1) -> uint64_t {
    uint64_t acc = 0;
    for (int i = 0; i < iterations; ++i) {
      const uint64_t t =
          static_cast<uint64_t>(body.eval(a, b, s0, s1)) + static_cast<uint64_t>(i);
      acc = acc_op == 0 ? acc + t : acc_op == 1 ? (acc ^ t) : (acc | t);
    }
    return acc;
  };

  for (int64_t s0 : {0, 1}) {
    for (int64_t s1 : {0, 1}) {
      ASSERT_TRUE(program.WriteGlobal("s0", s0, 4).ok());
      ASSERT_TRUE(program.WriteGlobal("s1", s1, 4).ok());
      const int64_t a = rng.NextInRange(-5000, 5000);
      const int64_t b = rng.NextInRange(-5000, 5000);
      const uint64_t expected = host_eval(a, b, s0, s1);

      ASSERT_TRUE(program.runtime().Revert().ok());
      EXPECT_EQ(*program.Call("call_f", {static_cast<uint64_t>(a),
                                         static_cast<uint64_t>(b)}),
                expected)
          << "generic: " << source;
      ASSERT_TRUE(program.runtime().Commit().ok());
      EXPECT_EQ(*program.Call("call_f", {static_cast<uint64_t>(a),
                                         static_cast<uint64_t>(b)}),
                expected)
          << "committed: " << source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopDifferentialTest, ::testing::Range<uint64_t>(1, 13));

// Narrow-type differential sweep: the same idea specialized to the
// wrap-around semantics of char/short/int arithmetic.
struct NarrowCase {
  const char* type_name;
  int bits;
  bool is_signed;
};

class NarrowArithmeticTest : public ::testing::TestWithParam<NarrowCase> {};

TEST_P(NarrowArithmeticTest, WrapsLikeTwoComplement) {
  const NarrowCase& c = GetParam();
  const std::string source = StrFormat(
      R"(
long f(long a, long b) {
  %s x = (%s)a;
  %s y = (%s)b;
  %s sum = x + y;
  %s prod = x * y;
  %s shifted = x << 3;
  return (long)sum ^ ((long)prod + (long)shifted);
}
)",
      c.type_name, c.type_name, c.type_name, c.type_name, c.type_name, c.type_name,
      c.type_name);
  BuildOptions options;
  Result<std::unique_ptr<Program>> built = Program::Build({{"narrow", source}}, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  auto normalize = [&](int64_t v) -> int64_t {
    const int shift = 64 - c.bits;
    if (c.is_signed) {
      return (v << shift) >> shift;
    }
    return static_cast<int64_t>((static_cast<uint64_t>(v) << shift) >> shift);
  };

  Rng rng(c.bits * 977 + (c.is_signed ? 1 : 0));
  for (int i = 0; i < 50; ++i) {
    const int64_t a = static_cast<int64_t>(rng.Next());
    const int64_t b = static_cast<int64_t>(rng.Next());
    const int64_t x = normalize(a);
    const int64_t y = normalize(b);
    const int64_t sum = normalize(x + y);
    const int64_t prod =
        normalize(static_cast<int64_t>(static_cast<uint64_t>(x) * static_cast<uint64_t>(y)));
    const int64_t shifted = normalize(x << 3);
    const auto expected =
        static_cast<uint64_t>(sum ^ (static_cast<int64_t>(static_cast<uint64_t>(prod) +
                                                          static_cast<uint64_t>(shifted))));
    Result<uint64_t> got =
        (*built)->Call("f", {static_cast<uint64_t>(a), static_cast<uint64_t>(b)});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected) << c.type_name << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Types, NarrowArithmeticTest,
    ::testing::Values(NarrowCase{"char", 8, true}, NarrowCase{"unsigned char", 8, false},
                      NarrowCase{"short", 16, true},
                      NarrowCase{"unsigned short", 16, false}, NarrowCase{"int", 32, true},
                      NarrowCase{"unsigned int", 32, false}),
    [](const ::testing::TestParamInfo<NarrowCase>& info) {
      std::string name = info.param.type_name;
      for (char& ch : name) {
        if (ch == ' ') {
          ch = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace mv

// Tests for the comparator mechanisms in src/baseline: the PV-Ops patcher
// and the `alternative` instruction-site patcher.
#include <gtest/gtest.h>

#include "src/baseline/alternatives.h"
#include "src/baseline/paravirt.h"
#include "src/core/program.h"

namespace mv {
namespace {

TEST(AlternativesTest, CollectsAndPatchesMarkedInstructions) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> built = Program::Build(
      {{"alt", R"(
long count;
void toggle() {
  __builtin_fence();
  count = count + 1;
  __builtin_fence();
}
)"}},
      options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Program& program = **built;

  AlternativesPatcher patcher(&program.vm());
  const uint64_t addr = program.SymbolAddress("toggle").value();
  const uint64_t size = program.FunctionSize("toggle").value();
  ASSERT_TRUE(patcher.CollectSites(addr, size, Op::kFence).ok());
  EXPECT_EQ(patcher.num_sites(), 2u);

  const double before = [&] {
    Core& core = program.vm().core(0);
    const uint64_t t = core.ticks;
    EXPECT_TRUE(program.Call("toggle").ok());
    return TicksToCycles(core.ticks - t);
  }();

  Result<int> patched = patcher.Apply();
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  EXPECT_EQ(*patched, 2);

  const double after = [&] {
    Core& core = program.vm().core(0);
    const uint64_t t = core.ticks;
    EXPECT_TRUE(program.Call("toggle").ok());
    return TicksToCycles(core.ticks - t);
  }();
  EXPECT_LT(after, before) << "NOPed fences must be cheaper";
  EXPECT_EQ(program.ReadGlobal("count").value(), 2) << "behaviour preserved";

  // Restore brings the original bytes (and cost) back.
  Result<int> restored = patcher.Restore();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, 2);
  const double restored_cost = [&] {
    Core& core = program.vm().core(0);
    const uint64_t t = core.ticks;
    EXPECT_TRUE(program.Call("toggle").ok());
    return TicksToCycles(core.ticks - t);
  }();
  EXPECT_DOUBLE_EQ(restored_cost, before);
}

TEST(AlternativesTest, ReplacementMustFitTheSite) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> built = Program::Build(
      {{"alt", "void f() { __builtin_fence(); }"}}, options);
  ASSERT_TRUE(built.ok());
  Program& program = **built;
  AlternativesPatcher patcher(&program.vm());
  ASSERT_TRUE(patcher
                  .CollectSites(program.SymbolAddress("f").value(),
                                program.FunctionSize("f").value(), Op::kFence)
                  .ok());
  ASSERT_EQ(patcher.num_sites(), 1u);
  // FENCE is 1 byte; a 2-byte replacement cannot fit.
  const std::vector<uint8_t> too_big = {static_cast<uint8_t>(Op::kNop),
                                        static_cast<uint8_t>(Op::kNop)};
  EXPECT_FALSE(patcher.Apply(too_big).ok());
  // A same-size replacement works (swap FENCE for PAUSE).
  const std::vector<uint8_t> pause = {static_cast<uint8_t>(Op::kPause)};
  Result<int> patched = patcher.Apply(pause);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(*patched, 1);
  EXPECT_TRUE(program.Call("f").ok());
}

TEST(AlternativesTest, RestoreWithoutApplyIsNoop) {
  Vm vm(1 << 20);
  AlternativesPatcher patcher(&vm);
  Result<int> restored = patcher.Restore();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, 0);
}

TEST(ParavirtTest, AttachWithoutSectionIsEmpty) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"p", "long f() { return 0; }"}}, options);
  ASSERT_TRUE(built.ok());
  Result<ParavirtPatcher> patcher =
      ParavirtPatcher::Attach(&(*built)->vm(), (*built)->image());
  ASSERT_TRUE(patcher.ok());
  EXPECT_EQ(patcher->num_sites(), 0u);
  Result<PvPatchStats> stats = patcher->PatchAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sites_patched + stats->sites_inlined, 0);
}

TEST(ParavirtTest, PatchRestoreRoundTripPreservesBehaviour) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> built = Program::Build(
      {{"pv", R"(
long (*op)(long);
long dbl(long x) { return 2 * x; }
long run(long x) { return op(x); }
)"}},
      options);
  ASSERT_TRUE(built.ok());
  Program& program = **built;
  const uint64_t dbl = program.SymbolAddress("dbl").value();
  ASSERT_TRUE(program.WriteGlobal("op", static_cast<int64_t>(dbl), 8).ok());

  Result<ParavirtPatcher> patcher = ParavirtPatcher::Attach(&program.vm(), program.image());
  ASSERT_TRUE(patcher.ok());
  ASSERT_EQ(patcher->num_sites(), 1u);

  EXPECT_EQ(*program.Call("run", {21}), 42u);
  Result<PvPatchStats> stats = patcher->PatchAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sites_patched, 1);
  EXPECT_EQ(*program.Call("run", {21}), 42u);
  ASSERT_TRUE(patcher->RestoreAll().ok());
  EXPECT_EQ(*program.Call("run", {21}), 42u);
}

TEST(ParavirtTest, NullPointersAreSkipped) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> built = Program::Build(
      {{"pv", R"(
void (*hook)(void);
void run() { hook(); }
)"}},
      options);
  ASSERT_TRUE(built.ok());
  Result<ParavirtPatcher> patcher =
      ParavirtPatcher::Attach(&(*built)->vm(), (*built)->image());
  ASSERT_TRUE(patcher.ok());
  Result<PvPatchStats> stats = patcher->PatchAll();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sites_skipped, 1);
  EXPECT_EQ(stats->sites_patched, 0);
}

}  // namespace
}  // namespace mv

// Backend-specific tests: properties of the emitted machine code that the
// runtime patcher and the cost model rely on.
#include <gtest/gtest.h>

#include "src/codegen/codegen.h"
#include "src/core/patching.h"
#include "src/core/program.h"
#include "src/frontend/frontend.h"
#include "src/isa/isa.h"

namespace mv {
namespace {

std::unique_ptr<Program> Build(const std::string& source) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build({{"cg", source}}, options);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? std::move(*program) : nullptr;
}

// Decodes the code of a defined function into instructions.
std::vector<Insn> DecodeFunction(Program* program, const std::string& name) {
  const uint64_t addr = program->SymbolAddress(name).value();
  const uint64_t size = program->FunctionSize(name).value();
  std::vector<Insn> insns;
  uint64_t off = 0;
  while (off < size) {
    Result<Insn> insn =
        Decode(program->vm().memory().raw(addr + off), static_cast<size_t>(size - off));
    if (!insn.ok()) {
      ADD_FAILURE() << "decode failed at +" << off << ": " << insn.status().ToString();
      break;
    }
    insns.push_back(*insn);
    off += insn->size;
  }
  return insns;
}

TEST(CodegenTest, LeafWithoutLocalsHasNoFrame) {
  std::unique_ptr<Program> program = Build("void leaf() { __builtin_cli(); }");
  ASSERT_NE(program, nullptr);
  const std::vector<Insn> insns = DecodeFunction(program.get(), "leaf");
  ASSERT_EQ(insns.size(), 2u);
  EXPECT_EQ(insns[0].op, Op::kCli);
  EXPECT_EQ(insns[1].op, Op::kRet);
}

TEST(CodegenTest, EmptyFunctionIsJustRet) {
  std::unique_ptr<Program> program = Build("void nothing() {}");
  ASSERT_NE(program, nullptr);
  const std::vector<Insn> insns = DecodeFunction(program.get(), "nothing");
  ASSERT_EQ(insns.size(), 1u);
  EXPECT_EQ(insns[0].op, Op::kRet);
}

TEST(CodegenTest, TinyLeafQualifiesForInlining) {
  std::unique_ptr<Program> program = Build("void leaf() { __builtin_sti(); }");
  ASSERT_NE(program, nullptr);
  const uint64_t addr = program->SymbolAddress("leaf").value();
  std::optional<std::vector<uint8_t>> body =
      ExtractTinyBody(program->vm().memory(), addr);
  ASSERT_TRUE(body.has_value());
  ASSERT_EQ(body->size(), 1u);
  EXPECT_EQ((*body)[0], static_cast<uint8_t>(Op::kSti));
}

TEST(CodegenTest, FunctionWithLocalsDoesNotQualify) {
  std::unique_ptr<Program> program =
      Build("long f(long a) { long x = a + 1; return x; }");
  ASSERT_NE(program, nullptr);
  const uint64_t addr = program->SymbolAddress("f").value();
  EXPECT_FALSE(ExtractTinyBody(program->vm().memory(), addr).has_value());
  // Its prologue must be a frame setup (SubI on SP).
  const std::vector<Insn> insns = DecodeFunction(program.get(), "f");
  ASSERT_FALSE(insns.empty());
  EXPECT_EQ(insns[0].op, Op::kSubI);
  EXPECT_EQ(insns[0].a, kRegSP);
}

TEST(CodegenTest, PvopConventionSavesAndRestoresRegisters) {
  std::unique_ptr<Program> program =
      Build("__attribute__((pvop)) void thunk() { __builtin_hypercall(0); }");
  ASSERT_NE(program, nullptr);
  const std::vector<Insn> insns = DecodeFunction(program.get(), "thunk");
  int pushes = 0;
  int pops = 0;
  for (const Insn& insn : insns) {
    pushes += insn.op == Op::kPush ? 1 : 0;
    pops += insn.op == Op::kPop ? 1 : 0;
  }
  EXPECT_EQ(pushes, 4);
  EXPECT_EQ(pops, 4);
  EXPECT_EQ(insns.back().op, Op::kRet);
  // And the convention makes the body non-inlinable.
  const uint64_t addr = program->SymbolAddress("thunk").value();
  EXPECT_FALSE(ExtractTinyBody(program->vm().memory(), addr).has_value());
}

TEST(CodegenTest, FnPtrCallsUseSingleCallMInstruction) {
  std::unique_ptr<Program> program = Build(R"(
void (*hook)(void);
void fire() { hook(); }
)");
  ASSERT_NE(program, nullptr);
  const std::vector<Insn> insns = DecodeFunction(program.get(), "fire");
  int callm = 0;
  for (const Insn& insn : insns) {
    callm += insn.op == Op::kCallM ? 1 : 0;
    EXPECT_NE(insn.op, Op::kCallR) << "global fn-ptr calls must not use CALLR";
    EXPECT_NE(insn.op, Op::kLdg) << "no separate pointer load before the call";
  }
  EXPECT_EQ(callm, 1);
}

TEST(CodegenTest, CmpBranchFusionAvoidsSetcc) {
  std::unique_ptr<Program> program = Build(R"(
long f(long a) {
  if (a < 10) { return 1; }
  return 2;
}
)");
  ASSERT_NE(program, nullptr);
  const std::vector<Insn> insns = DecodeFunction(program.get(), "f");
  for (const Insn& insn : insns) {
    EXPECT_NE(insn.op, Op::kSetCC)
        << "a compare feeding only a branch must fuse into CMP+Jcc";
  }
}

TEST(CodegenTest, ComparisonAsValueUsesSetcc) {
  std::unique_ptr<Program> program = Build("long f(long a, long b) { return a < b; }");
  ASSERT_NE(program, nullptr);
  const std::vector<Insn> insns = DecodeFunction(program.get(), "f");
  bool has_setcc = false;
  for (const Insn& insn : insns) {
    has_setcc |= insn.op == Op::kSetCC;
  }
  EXPECT_TRUE(has_setcc);
}

TEST(CodegenTest, MultiversedCallSitesAreExactlyCallRel32) {
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) int flag;
__attribute__((multiverse)) void f() { if (flag) { __builtin_fence(); } }
void a() { f(); }
void b() { f(); f(); }
)");
  ASSERT_NE(program, nullptr);
  const DescriptorTable& table = program->runtime().table();
  ASSERT_EQ(table.callsites.size(), 3u);
  const uint64_t generic = program->SymbolAddress("f").value();
  for (const RtCallsite& site : table.callsites) {
    Result<Insn> insn = Decode(program->vm().memory().raw(site.site_addr), 5);
    ASSERT_TRUE(insn.ok());
    EXPECT_EQ(insn->op, Op::kCall);
    EXPECT_EQ(insn->size, kCallInsnSize);
    // The rel32 must resolve to the generic function.
    EXPECT_EQ(site.site_addr + 5 + static_cast<uint64_t>(insn->imm), generic);
  }
}

TEST(CodegenTest, VariantSymbolsAreEmitted) {
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) int flag;
long out;
__attribute__((multiverse)) void f() { if (flag) { out = 1; } }
)");
  ASSERT_NE(program, nullptr);
  // The variants exist as linker-visible symbols, like the paper's
  // multi.A=1.B=0 naming scheme (Figure 2).
  EXPECT_TRUE(program->SymbolAddress("f.flag=0").ok());
  EXPECT_TRUE(program->SymbolAddress("f.flag=1").ok());
  EXPECT_GT(program->FunctionSize("f").value(),
            program->FunctionSize("f.flag=0").value());
}

TEST(CodegenTest, DeepCallChainPreservesValues) {
  // Values live across calls must be spilled and reloaded correctly.
  std::unique_ptr<Program> program = Build(R"(
long id(long x) { return x; }
long f(long a, long b, long c) {
  long r1 = id(a);
  long r2 = id(b);
  long r3 = id(c);
  return r1 * 100 + r2 * 10 + r3 + id(r1);
}
)");
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(*program->Call("f", {1, 2, 3}), 124u);
}

TEST(CodegenTest, SixtySlotsStillWork) {
  // Frame addressing with many locals (stress for slot offsets).
  std::string source = "long f(long a) {\n";
  for (int i = 0; i < 60; ++i) {
    source += "  long v" + std::to_string(i) + " = a + " + std::to_string(i) + ";\n";
  }
  source += "  return v0 + v30 + v59;\n}\n";
  std::unique_ptr<Program> program = Build(source);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(*program->Call("f", {100}), 100u + 130u + 159u);
}

}  // namespace
}  // namespace mv

// Threaded-tier-specific tests (src/vm/threaded.h): the deopt-at-every-slot
// sweep, promotion-threshold behaviour, patch-point commit observability and
// mid-block step-budget parity.
//
// The three-engine differential suite (dispatch_differential_test.cc) proves
// the happy paths agree; this file drives the threaded executor's *exits*.
// The forced-deopt probe (Vm::set_threaded_deopt_probe) counts dispatches
// and deopts the trace at the Nth slot boundary, so sweeping N over a range
// wider than any trace forces a transfer out of compiled code at every slot
// of every trace — each of which must land at a bit-identical architectural
// state to the superblock interpreter running the same program.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/isa/isa.h"
#include "src/support/str.h"
#include "src/vm/superblock.h"
#include "src/vm/threaded.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

constexpr uint64_t kText = 0x1000;
constexpr uint64_t kData = 0x8000;
constexpr uint64_t kStackTop = 0x20000;

std::string CoreTranscript(const Vm& vm) {
  std::string out;
  for (int i = 0; i < vm.num_cores(); ++i) {
    const Core& c = vm.core(i);
    out += StrFormat("core %d: pc=%llx halted=%d zf=%d lts=%d ltu=%d\n", i,
                     (unsigned long long)c.pc, c.halted ? 1 : 0, c.zf ? 1 : 0,
                     c.lt_signed ? 1 : 0, c.lt_unsigned ? 1 : 0);
    out += "  regs:";
    for (int r = 0; r < kNumRegs; ++r) {
      out += StrFormat(" %llx", (unsigned long long)c.regs[r]);
    }
    out += StrFormat(
        "\n  ticks=%llu instret=%llu condbr=%llu condmiss=%llu retmiss=%llu "
        "atomics=%llu\n",
        (unsigned long long)c.ticks, (unsigned long long)c.instret,
        (unsigned long long)c.cond_branches,
        (unsigned long long)c.cond_mispredicts,
        (unsigned long long)c.ret_mispredicts,
        (unsigned long long)c.atomic_ops);
  }
  return out;
}

class ThreadedVm {
 public:
  explicit ThreadedVm(DispatchEngine engine) : vm_(0x40000, 1) {
    vm_.SetDispatchEngine(engine);
    EXPECT_TRUE(vm_.memory().Protect(kText, 0x4000, kPermRead | kPermExec).ok());
    EXPECT_TRUE(vm_.memory().Protect(kData, 0x4000, kPermRead | kPermWrite).ok());
    EXPECT_TRUE(vm_.memory()
                    .Protect(0x10000, kStackTop - 0x10000, kPermRead | kPermWrite)
                    .ok());
  }

  void Assemble(const std::vector<Insn>& insns, uint64_t addr) {
    std::vector<uint8_t> bytes;
    for (const Insn& insn : insns) {
      Result<int> size = Encode(insn, &bytes);
      EXPECT_TRUE(size.ok()) << size.status().ToString();
    }
    EXPECT_TRUE(vm_.memory().WriteRaw(addr, bytes.data(), bytes.size()).ok());
    vm_.FlushIcache(addr, bytes.size());
  }

  std::string Run(uint64_t max_steps = 100000) {
    Core& c = vm_.core(0);
    c.pc = kText;
    c.halted = false;
    c.regs[kRegSP] = kStackTop - 16;
    const VmExit exit = vm_.Run(0, max_steps);
    return "exit " + exit.ToString() + "\n" + CoreTranscript(vm_);
  }

  Vm& vm() { return vm_; }

 private:
  Vm vm_;
};

// A loop body exercising every handler family the executor has paths through:
// plain ALU, fused load+ALU, stores (the self-eviction check), push/pop,
// RDTSC (tick-accumulator flush), and a fused CMPI+Jcc terminator.
std::vector<Insn> SweepProgram(int64_t iterations) {
  return {
      MakeMovRI(0, iterations),       // 10 bytes
      MakeMovRI(1, kData),            // 10 bytes at +10
      MakeMovRI(2, 7),                // 10 bytes at +20
      // Loop head at +30.
      MakeStore(Op::kSt64, 2, 1, 0),  // 7 bytes at +30
      MakeLoad(Op::kLd64, 3, 1, 0),   // 7 bytes at +37
      MakeAluRR(Op::kAdd, 3, 2),      // 3 bytes at +44 (fuses into LoadAdd)
      MakePush(3),                    // 2 bytes at +47
      MakePop(4),                     // 2 bytes at +49
      MakeRdtsc(5),                   // 2 bytes at +51
      MakeAluRI(Op::kAndI, 5, 1023),  // 6 bytes at +53
      MakeStore(Op::kSt64, 5, 1, 8),  // 7 bytes at +59
      MakeAluRI(Op::kSubI, 0, 1),     // 6 bytes at +66
      MakeCmpI(0, 0),                 // 6 bytes at +72 (fuses into CmpIJcc)
      MakeJcc(Cond::kNe, -54),        // 6 bytes at +78: back to +30
      MakeSimple(Op::kHlt),           // at +84
  };
}

// The acceptance sweep: force a deopt at every slot of every compiled trace
// and require the post-deopt state to be bit-identical to the superblock
// interpreter. Probe value n deopts at the n-th dispatched slot (then every
// n-th after that), so sweeping n past the widest trace hits every slot
// index in every trace, at shifting loop iterations.
TEST(ThreadedDispatchTest, DeoptAtEverySlotMatchesSuperblock) {
  ThreadedVm reference(DispatchEngine::kSuperblock);
  reference.Assemble(SweepProgram(50), kText);
  const std::string expected = reference.Run();

  // Fast path (no probe) first.
  {
    ThreadedVm fast(DispatchEngine::kThreaded);
    fast.Assemble(SweepProgram(50), kText);
    EXPECT_EQ(expected, fast.Run()) << "unprobed threaded run diverged";
    EXPECT_GT(fast.vm().threaded_promotions(), 0u);
  }

  for (uint64_t probe = 1; probe <= 64; ++probe) {
    ThreadedVm probed(DispatchEngine::kThreaded);
    probed.vm().set_threaded_deopt_probe(probe);
    probed.Assemble(SweepProgram(50), kText);
    EXPECT_EQ(expected, probed.Run()) << "probe=" << probe;
    EXPECT_GT(probed.vm().threaded_promotions(), 0u) << "probe=" << probe;
    EXPECT_GT(probed.vm().threaded_deopts(), 0u) << "probe=" << probe;
  }
}

// A block below the promotion threshold must never be lowered; past it, the
// hot loop must be.
TEST(ThreadedDispatchTest, PromotionRequiresThreshold) {
  {
    ThreadedVm cold(DispatchEngine::kThreaded);
    cold.Assemble(SweepProgram(kThreadedPromotionThreshold / 2), kText);
    cold.Run();
    EXPECT_EQ(cold.vm().threaded_promotions(), 0u);
  }
  {
    ThreadedVm hot(DispatchEngine::kThreaded);
    hot.Assemble(SweepProgram(8 * kThreadedPromotionThreshold), kText);
    hot.Run();
    EXPECT_GT(hot.vm().threaded_promotions(), 0u);
  }
}

// Patch-point observability: an invalidation that lands on a registered
// patch point lowered into a live trace counts as a patch-point commit on
// compiled code; an invalidation elsewhere in the same block does not.
TEST(ThreadedDispatchTest, PatchPointCommitsOnCompiledCodeAreCounted) {
  ThreadedVm t(DispatchEngine::kThreaded);
  // Register before promotion so the builder lowers the site into the trace:
  // the load instruction at +37 inside the loop body.
  t.vm().RegisterPatchPoint(kText + 37, 5);
  t.Assemble(SweepProgram(50), kText);
  t.Run();
  ASSERT_GT(t.vm().threaded_promotions(), 0u);
  EXPECT_EQ(t.vm().threaded_patchpoint_commits(), 0u);

  // Commit-shaped invalidation over the patch point: observable.
  t.vm().FlushIcache(kText + 37, 1);
  EXPECT_EQ(t.vm().threaded_patchpoint_commits(), 1u);

  // Re-promote, then invalidate a range inside the block but away from the
  // registered site: evicts the trace, but is not a patch-point commit.
  t.Run();
  ASSERT_GT(t.vm().threaded_promotions(), 1u);
  t.vm().FlushIcache(kText + 66, 1);
  EXPECT_EQ(t.vm().threaded_patchpoint_commits(), 1u);
}

// Mid-run step budgets: every budget value must stop at exactly the same
// architectural boundary as the superblock interpreter, whether that lands
// before a trace entry (entry guard deopt) or mid-block.
TEST(ThreadedDispatchTest, StepBudgetParityAtEveryBoundary) {
  for (uint64_t budget = 1; budget <= 120; ++budget) {
    ThreadedVm sb(DispatchEngine::kSuperblock);
    sb.Assemble(SweepProgram(50), kText);
    const std::string expected = sb.Run(budget);

    ThreadedVm tc(DispatchEngine::kThreaded);
    tc.Assemble(SweepProgram(50), kText);
    EXPECT_EQ(expected, tc.Run(budget)) << "budget=" << budget;
  }
}

}  // namespace
}  // namespace mv

// End-to-end smoke tests: mvc source -> specialized, linked, loaded program
// -> commit/revert via the runtime -> execution in the VM.
#include <gtest/gtest.h>

#include "src/core/program.h"

namespace mv {
namespace {

constexpr char kFig2Source[] = R"(
__attribute__((multiverse)) bool A;
__attribute__((multiverse)) int B;

int calc_calls;
int log_calls;

void calc() { calc_calls = calc_calls + 1; }
void log_event() { log_calls = log_calls + 1; }

__attribute__((multiverse))
void multi() {
  if (A) {
    calc();
    if (B) {
      log_event();
    }
  }
}

void foo() {
  multi();
}
)";

class Fig2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildOptions options;
    Result<std::unique_ptr<Program>> program = Program::Build(
        {{"fig2", kFig2Source}}, options);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    program_ = std::move(*program);
  }

  int64_t CallsAfterFoo(int64_t a, int64_t b) {
    EXPECT_TRUE(program_->WriteGlobal("calc_calls", 0, 4).ok());
    EXPECT_TRUE(program_->WriteGlobal("log_calls", 0, 4).ok());
    EXPECT_TRUE(program_->WriteGlobal("A", a, 1).ok());
    EXPECT_TRUE(program_->WriteGlobal("B", b, 4).ok());
    Result<uint64_t> result = program_->Call("foo");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    const int64_t calc = program_->ReadGlobal("calc_calls", 4).value();
    const int64_t log = program_->ReadGlobal("log_calls", 4).value();
    return calc * 10 + log;
  }

  std::unique_ptr<Program> program_;
};

TEST_F(Fig2Test, GenericBehaviour) {
  EXPECT_EQ(CallsAfterFoo(0, 0), 0);
  EXPECT_EQ(CallsAfterFoo(0, 1), 0);
  EXPECT_EQ(CallsAfterFoo(1, 0), 10);
  EXPECT_EQ(CallsAfterFoo(1, 1), 11);
}

TEST_F(Fig2Test, VariantsGeneratedAndMerged) {
  // 2x2 cross product; A=0 collapses to one empty body (paper Figure 2).
  const SpecializeStats& stats = program_->specialize_stats();
  EXPECT_EQ(stats.functions_specialized, 1u);
  EXPECT_EQ(stats.variants_generated, 4u);
  EXPECT_EQ(stats.variants_merged, 1u);
  EXPECT_EQ(stats.variants_kept, 3u);
}

TEST_F(Fig2Test, CommittedBehaviourMatchesGeneric) {
  for (int64_t a = 0; a <= 1; ++a) {
    for (int64_t b = 0; b <= 1; ++b) {
      ASSERT_TRUE(program_->WriteGlobal("A", a, 1).ok());
      ASSERT_TRUE(program_->WriteGlobal("B", b, 4).ok());
      Result<PatchStats> commit = program_->runtime().Commit();
      ASSERT_TRUE(commit.ok()) << commit.status().ToString();
      EXPECT_EQ(commit->generic_fallbacks, 0);
      EXPECT_EQ(CallsAfterFoo(a, b), a ? (b ? 11 : 10) : 0)
          << "committed behaviour diverges for A=" << a << " B=" << b;
      Result<PatchStats> revert = program_->runtime().Revert();
      ASSERT_TRUE(revert.ok()) << revert.status().ToString();
    }
  }
}

TEST_F(Fig2Test, OutOfDomainFallsBackToGeneric) {
  // A=3, B=4: no variant guard matches; generic stays (paper Figure 3 d).
  ASSERT_TRUE(program_->WriteGlobal("A", 1, 1).ok());
  ASSERT_TRUE(program_->WriteGlobal("B", 4, 4).ok());
  Result<PatchStats> commit = program_->runtime().Commit();
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->generic_fallbacks, 1);
  // Generic still behaves correctly for the out-of-domain value.
  EXPECT_EQ(CallsAfterFoo(1, 4), 11);
}

TEST_F(Fig2Test, CommitIsIdempotent) {
  ASSERT_TRUE(program_->WriteGlobal("A", 1, 1).ok());
  ASSERT_TRUE(program_->WriteGlobal("B", 1, 4).ok());
  ASSERT_TRUE(program_->runtime().Commit().ok());
  Result<PatchStats> second = program_->runtime().Commit();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->callsites_patched, 0);
  EXPECT_EQ(CallsAfterFoo(1, 1), 11);
}

}  // namespace
}  // namespace mv

// CommitScheduler coalescing-correctness suite (src/core/commit_scheduler.h).
//
// The scheduler's contract, checked end to end on the server workload:
//   * last-writer-wins coalescing commits text bit-identical to applying the
//     same flip sequence one commit at a time (the final values are all that
//     matter — the intermediate values never existed);
//   * null-flip elision is sound: a batch whose final values leave the
//     selection signature unchanged is dropped without a commit, and the
//     text stays bit-identical;
//   * a failed batch commit keeps its pending slots and the next Flush
//     retries the same coalesced batch;
//   * the window/backpressure clock arithmetic and the monotonic counters.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/commit_scheduler.h"
#include "src/core/program.h"
#include "src/workloads/server.h"

namespace mv {
namespace {

std::unique_ptr<Program> MustBuildServer() {
  Result<std::unique_ptr<Program>> program = BuildServer(/*cores=*/1);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(*program);
}

// One flip in the storm stream: (switch name, value).
struct Flip {
  const char* name;
  int64_t value;
};

TEST(CommitSchedulerTest, LastWriterWinsMatchesSequentialCommits) {
  // The coalesced batch: srv_log_enabled is rewritten three times; only the
  // final value may influence the committed text.
  const std::vector<Flip> flips = {{"srv_log_enabled", 1},
                                   {"srv_checksum_on", 1},
                                   {"srv_log_enabled", 0},
                                   {"srv_multi_worker", 1},
                                   {"srv_log_enabled", 1}};

  std::unique_ptr<Program> coalesced = MustBuildServer();
  CommitScheduler scheduler(coalesced.get(), StormOptions{});
  for (const Flip& flip : flips) {
    ASSERT_TRUE(scheduler.Submit(flip.name, flip.value, /*now=*/0).ok());
  }
  Result<bool> drained = scheduler.Flush(/*now=*/0);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_TRUE(*drained);
  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(scheduler.stats().flips_submitted, 5u);
  EXPECT_EQ(scheduler.stats().flips_coalesced, 2u);  // two absorbed rewrites
  EXPECT_EQ(scheduler.stats().plans_committed, 1u);  // one plan for 5 flips
  EXPECT_EQ(scheduler.stats().max_queue_depth, 3u);  // bounded by #switches

  // The reference: the same stream, one full commit per flip.
  std::unique_ptr<Program> sequential = MustBuildServer();
  for (const Flip& flip : flips) {
    ASSERT_TRUE(sequential->WriteGlobal(flip.name, flip.value, 4).ok());
    Result<CommitOutcome> outcome = sequential->runtime().CommitWithOutcome();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }

  // Bit-identical committed text, and an identical request transcript.
  EXPECT_EQ(coalesced->runtime().TextChecksum(),
            sequential->runtime().TextChecksum());
  for (uint64_t payload : {7ull, 99ull, 1234567ull}) {
    Result<uint64_t> a = coalesced->Call(kServerHandler, {1, payload});
    Result<uint64_t> b = sequential->Call(kServerHandler, {1, payload});
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
  EXPECT_EQ(coalesced->ReadGlobal(kServerServedCounter).value(),
            sequential->ReadGlobal(kServerServedCounter).value());
}

TEST(CommitSchedulerTest, NullBatchIsElidedWithoutCommit) {
  std::unique_ptr<Program> program = MustBuildServer();
  CommitScheduler scheduler(program.get(), StormOptions{});
  const uint64_t checksum_before = program->runtime().TextChecksum();

  // Re-submit the values the boot commit already installed (all off).
  for (const std::string& name : ServerSwitches()) {
    ASSERT_TRUE(scheduler.Submit(name, 0, /*now=*/0).ok());
  }
  Result<bool> drained = scheduler.Flush(/*now=*/0);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_TRUE(*drained);
  EXPECT_EQ(scheduler.stats().flips_elided_null, 4u);
  EXPECT_EQ(scheduler.stats().batches_elided, 1u);
  EXPECT_EQ(scheduler.stats().plans_committed, 0u);
  EXPECT_EQ(program->runtime().TextChecksum(), checksum_before);
}

TEST(CommitSchedulerTest, ToggleAndRestoreWithinWindowIsElided) {
  std::unique_ptr<Program> program = MustBuildServer();
  CommitScheduler scheduler(program.get(), StormOptions{});
  const uint64_t checksum_before = program->runtime().TextChecksum();

  // The debounce window absorbs a flap: on, then back off before the drain.
  ASSERT_TRUE(scheduler.Submit("srv_checksum_on", 1, /*now=*/0).ok());
  ASSERT_TRUE(scheduler.Submit("srv_checksum_on", 0, /*now=*/10).ok());
  Result<bool> drained = scheduler.Flush(/*now=*/20);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(scheduler.stats().flips_coalesced, 1u);
  EXPECT_EQ(scheduler.stats().flips_elided_null, 1u);
  EXPECT_EQ(scheduler.stats().plans_committed, 0u);
  EXPECT_EQ(program->runtime().TextChecksum(), checksum_before);
}

TEST(CommitSchedulerTest, ElisionDisabledStillCommitsNullBatches) {
  std::unique_ptr<Program> program = MustBuildServer();
  StormOptions options;
  options.elide_null_flips = false;
  CommitScheduler scheduler(program.get(), options);
  ASSERT_TRUE(scheduler.Submit("srv_trace_on", 0, /*now=*/0).ok());
  Result<bool> drained = scheduler.Flush(/*now=*/0);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(scheduler.stats().flips_elided_null, 0u);
  EXPECT_EQ(scheduler.stats().plans_committed, 1u);
}

TEST(CommitSchedulerTest, FailedCommitKeepsPendingAndRetries) {
  std::unique_ptr<Program> program = MustBuildServer();
  StormOptions options;
  int commits = 0;
  Program* prog = program.get();
  options.commit = [&commits, prog]() -> Result<BatchCommitResult> {
    if (++commits == 1) {
      return Status::Internal("injected batch-commit failure");
    }
    Result<CommitOutcome> outcome = prog->runtime().CommitWithOutcome();
    if (!outcome.ok()) {
      return outcome.status();
    }
    BatchCommitResult result;
    result.stats = outcome->stats;
    return result;
  };
  CommitScheduler scheduler(program.get(), options);
  ASSERT_TRUE(scheduler.Submit("srv_log_enabled", 1, /*now=*/0).ok());

  Result<bool> failed = scheduler.Flush(/*now=*/0);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(scheduler.stats().commit_failures, 1u);
  EXPECT_EQ(scheduler.pending_switches(), 1u);  // the batch survived

  Result<bool> retried = scheduler.Flush(/*now=*/100);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(*retried);
  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(scheduler.stats().plans_committed, 1u);
  EXPECT_EQ(commits, 2);
}

TEST(CommitSchedulerTest, WindowAndBackpressureClocks) {
  std::unique_ptr<Program> program = MustBuildServer();
  StormOptions options;
  options.window_cycles = 1000;
  Program* prog = program.get();
  options.commit = [prog]() -> Result<BatchCommitResult> {
    Result<CommitOutcome> outcome = prog->runtime().CommitWithOutcome();
    if (!outcome.ok()) {
      return outcome.status();
    }
    BatchCommitResult result;
    result.stats = outcome->stats;
    result.commit_cycles = 5000;  // a deliberately slow modelled commit
    return result;
  };
  CommitScheduler scheduler(program.get(), options);

  // The first submission into an idle scheduler opens the window.
  ASSERT_TRUE(scheduler.Submit("srv_log_enabled", 1, /*now=*/200).ok());
  EXPECT_DOUBLE_EQ(scheduler.window_deadline(), 1200);
  EXPECT_FALSE(scheduler.Poll(/*now=*/1199).value());
  Result<bool> drained = scheduler.Poll(/*now=*/1200);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_TRUE(*drained);
  EXPECT_DOUBLE_EQ(scheduler.busy_until(), 6200);  // 1200 + 5000

  // A submission landing while the drain is in flight is a backpressure
  // wait, and its window opens only after the drain retires.
  ASSERT_TRUE(scheduler.Submit("srv_trace_on", 1, /*now=*/3000).ok());
  EXPECT_EQ(scheduler.stats().backpressure_waits, 1u);
  EXPECT_DOUBLE_EQ(scheduler.window_deadline(), 7200);  // 6200 + 1000
  EXPECT_EQ(scheduler.stats().batch_cycles.size(), 1u);
  EXPECT_DOUBLE_EQ(scheduler.stats().busy_cycles, 5000);
}

TEST(CommitSchedulerTest, SummaryFoldsIntoCommitStats) {
  std::unique_ptr<Program> program = MustBuildServer();
  CommitScheduler scheduler(program.get(), StormOptions{});
  ASSERT_TRUE(scheduler.Submit("srv_log_enabled", 1, /*now=*/0).ok());
  ASSERT_TRUE(scheduler.Submit("srv_trace_on", 0, /*now=*/0).ok());  // null
  ASSERT_TRUE(scheduler.Flush(/*now=*/0).ok());

  const StormStats& stats = scheduler.stats();
  EXPECT_EQ(stats.flips_submitted, 2u);
  EXPECT_EQ(stats.plans_committed, 1u);
  EXPECT_DOUBLE_EQ(stats.CoalescingRatio(), 2.0);

  const CommitStats summary = stats.Summary();
  EXPECT_EQ(summary.storm_flips_submitted, 2u);
  EXPECT_EQ(summary.storm_plans_committed, 1u);
  EXPECT_EQ(summary.storm_flips_elided_null, stats.flips_elided_null);

  // The funnel arithmetic: Accumulate sums, Delta recovers the increment,
  // the p99 gauge carries.
  CommitStats base;
  base.storm_flips_submitted = 10;
  CommitStats total = base;
  total.Accumulate(summary);
  EXPECT_EQ(total.storm_flips_submitted, 12u);
  const CommitStats delta = total.Delta(base);
  EXPECT_EQ(delta.storm_flips_submitted, summary.storm_flips_submitted);
  EXPECT_EQ(delta.storm_plans_committed, summary.storm_plans_committed);
}

// An all-null storm commits nothing: the ratio degenerates to the flip count
// (documented as "coalesces infinitely").
TEST(CommitSchedulerTest, AllNullStormCommitsNoPlans) {
  std::unique_ptr<Program> program = MustBuildServer();
  CommitScheduler scheduler(program.get(), StormOptions{});
  for (int round = 0; round < 8; ++round) {
    for (const std::string& name : ServerSwitches()) {
      ASSERT_TRUE(
          scheduler.Submit(name, 0, /*now=*/round * 10.0).ok());
    }
    ASSERT_TRUE(scheduler.Flush(/*now=*/round * 10.0 + 5).ok());
  }
  EXPECT_EQ(scheduler.stats().plans_committed, 0u);
  EXPECT_EQ(scheduler.stats().batches_elided, 8u);
  EXPECT_EQ(scheduler.stats().flips_elided_null, 32u);
  EXPECT_DOUBLE_EQ(scheduler.stats().CoalescingRatio(), 32.0);
}

}  // namespace
}  // namespace mv

// Presence-condition algebra and the fork/merge partition invariant
// (src/vm/presence.h): masks over flattened config-space indices must never
// lose a configuration and never double-count one.
#include <gtest/gtest.h>

#include <random>

#include "src/vm/presence.h"

namespace mv {
namespace {

TEST(PresenceConditionTest, ConstructorsAndBasics) {
  const PresenceCondition all = PresenceCondition::All(130);
  EXPECT_EQ(all.Count(), 130u);
  EXPECT_TRUE(all.IsAll());
  EXPECT_TRUE(all.Any());

  const PresenceCondition none = PresenceCondition::None(130);
  EXPECT_EQ(none.Count(), 0u);
  EXPECT_TRUE(none.Empty());
  EXPECT_FALSE(none.IsAll());

  const PresenceCondition one = PresenceCondition::Single(130, 129);
  EXPECT_EQ(one.Count(), 1u);
  EXPECT_TRUE(one.Test(129));
  EXPECT_FALSE(one.Test(128));
  EXPECT_EQ(one.Configs(), std::vector<size_t>{129});
}

TEST(PresenceConditionTest, SetClearTest) {
  PresenceCondition pc(70);
  pc.Set(0);
  pc.Set(63);
  pc.Set(64);
  pc.Set(69);
  EXPECT_EQ(pc.Count(), 4u);
  EXPECT_EQ(pc.ToString(), "{0,63,64,69}");
  pc.Clear(63);
  EXPECT_FALSE(pc.Test(63));
  EXPECT_EQ(pc.Count(), 3u);
}

TEST(PresenceConditionTest, AlgebraIdentities) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng() % 200;
    PresenceCondition a(n);
    PresenceCondition b(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng() % 2) a.Set(i);
      if (rng() % 2) b.Set(i);
    }
    // De Morgan.
    EXPECT_EQ(a.Union(b).Complement(),
              a.Complement().Intersect(b.Complement()));
    EXPECT_EQ(a.Intersect(b).Complement(),
              a.Complement().Union(b.Complement()));
    // Minus is intersect-with-complement.
    EXPECT_EQ(a.Minus(b), a.Intersect(b.Complement()));
    // Complement round-trips (and never touches bits past the size).
    EXPECT_EQ(a.Complement().Complement(), a);
    EXPECT_EQ(a.Complement().Count(), n - a.Count());
    // Union/intersect bounds.
    EXPECT_EQ(a.Union(a.Complement()).Count(), n);
    EXPECT_TRUE(a.Intersect(a.Complement()).Empty());
    EXPECT_EQ(a.Union(b).Count() + a.Intersect(b).Count(),
              a.Count() + b.Count());
    // Disjointness is intersect-emptiness.
    EXPECT_EQ(a.Disjoint(b), a.Intersect(b).Empty());
  }
}

TEST(PresenceConditionTest, PartitionCheck) {
  const size_t n = 10;
  std::vector<PresenceCondition> parts;
  parts.push_back(PresenceCondition::Single(n, 3));
  PresenceCondition rest = PresenceCondition::Single(n, 3).Complement();
  parts.push_back(rest);
  EXPECT_TRUE(IsPartition(parts, n));

  // Losing a config breaks the partition.
  parts[1].Clear(7);
  EXPECT_FALSE(IsPartition(parts, n));
  // Double-counting breaks it too.
  parts[1].Set(7);
  parts[1].Set(3);
  EXPECT_FALSE(IsPartition(parts, n));
}

// The executor's lifecycle as a property test: start with the full space,
// apply random forks (split one mask into disjoint non-empty parts — what
// region resolution does) and random merges (union two masks — what
// reconvergence does). The partition invariant must hold after every step:
// no config lost, no config double-counted. 256 seeds.
TEST(PresenceConditionTest, ForkMergePartitionProperty) {
  for (uint32_t seed = 0; seed < 256; ++seed) {
    std::mt19937 rng(seed);
    const size_t n = 1 + rng() % 150;
    std::vector<PresenceCondition> masks;
    masks.push_back(PresenceCondition::All(n));
    for (int step = 0; step < 60; ++step) {
      if (rng() % 2 == 0) {
        // Fork: split a mask with >= 2 configs into two non-empty parts.
        std::vector<size_t> candidates;
        for (size_t i = 0; i < masks.size(); ++i) {
          if (masks[i].Count() >= 2) candidates.push_back(i);
        }
        if (!candidates.empty()) {
          const size_t victim = candidates[rng() % candidates.size()];
          const std::vector<size_t> configs = masks[victim].Configs();
          PresenceCondition left(n);
          PresenceCondition right(n);
          // Guarantee both sides non-empty, distribute the rest randomly.
          left.Set(configs[0]);
          right.Set(configs[1]);
          for (size_t i = 2; i < configs.size(); ++i) {
            (rng() % 2 ? left : right).Set(configs[i]);
          }
          ASSERT_TRUE(left.Disjoint(right));
          ASSERT_EQ(left.Union(right), masks[victim]);
          masks[victim] = left;
          masks.push_back(right);
        }
      } else if (masks.size() >= 2) {
        // Merge: union two partition members (disjoint by the invariant).
        const size_t a = rng() % masks.size();
        size_t b = rng() % masks.size();
        if (b == a) b = (b + 1) % masks.size();
        ASSERT_TRUE(masks[a].Disjoint(masks[b]))
            << "partition members must be disjoint";
        masks[a] = masks[a].Union(masks[b]);
        masks.erase(masks.begin() + static_cast<long>(b));
      }
      ASSERT_TRUE(IsPartition(masks, n))
          << "seed " << seed << " step " << step << ": partition violated";
      size_t total = 0;
      for (const PresenceCondition& mask : masks) {
        ASSERT_FALSE(mask.Empty()) << "empty context mask";
        total += mask.Count();
      }
      ASSERT_EQ(total, n) << "configs lost or double-counted";
    }
  }
}

}  // namespace
}  // namespace mv

// Multi-threaded mini-musl integration: the paper commits the single-thread
// variant only while exactly one thread runs and re-commits the locking
// variants when a second thread is spawned (pthread_create) or exits
// (pthread_exit). These tests drive that life cycle on a 2-core VM with
// instruction-level interleaving and verify that the heap stays consistent.
#include <gtest/gtest.h>

#include <set>

#include "src/core/program.h"
#include "src/support/rng.h"
#include "src/workloads/libc.h"

namespace mv {
namespace {

// The mini musl plus a worker that hammers malloc/free and records every
// returned chunk for overlap checking.
std::string ThreadedLibcSource() {
  return LibcSource() + R"(
long observed[2048];
long completed[2];

// Each worker records into its own region of `observed`, so no extra
// synchronization is needed for the bookkeeping itself.
void worker(long rounds, long slot) {
  long i;
  for (i = 0; i < rounds; ++i) {
    long p = malloc_(24);
    if (p == 0) { return; }
    // Write a signature into the chunk and verify it before freeing: a racy
    // allocator handing the same chunk to both cores would trip this.
    ((long*)p)[0] = p ^ slot;
    ((long*)p)[1] = i;
    if (((long*)p)[0] != (p ^ slot)) { return; }
    observed[(slot * 1024 + i) & 2047] = p;
    free_(p);
  }
  completed[slot & 1] = rounds;
}
)";
}

TEST(LibcThreadsTest, ThreadLifecycleCommitsAndReverts) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"musl_mt", ThreadedLibcSource()}}, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Program& libc = **built;
  const uint64_t lock_fn = libc.SymbolAddress("libc_lock").value();

  // Boot: single-threaded, committed -> the empty lock variant is installed.
  ASSERT_TRUE(SetThreadMode(&libc, 0, /*commit=*/true).ok());
  EXPECT_NE(libc.runtime().InstalledVariant(lock_fn), 0u);

  // pthread_create: threads_minus_1 = 1, commit -> locking variant installed.
  ASSERT_TRUE(SetThreadMode(&libc, 1, /*commit=*/true).ok());
  const uint64_t mt_variant = libc.runtime().InstalledVariant(lock_fn);
  EXPECT_NE(mt_variant, 0u);

  // pthread_exit of the second thread: back to the single-thread variant.
  ASSERT_TRUE(SetThreadMode(&libc, 0, /*commit=*/true).ok());
  EXPECT_NE(libc.runtime().InstalledVariant(lock_fn), 0u);
  EXPECT_NE(libc.runtime().InstalledVariant(lock_fn), mt_variant);
}

TEST(LibcThreadsTest, ConcurrentMallocFreeKeepsHeapConsistent) {
  BuildOptions options;
  options.vm_cores = 2;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"musl_mt", ThreadedLibcSource()}}, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Program& libc = **built;

  // Two threads running: multi-threaded mode, committed (locks active).
  ASSERT_TRUE(SetThreadMode(&libc, 1, /*commit=*/true).ok());

  const uint64_t worker = libc.SymbolAddress("worker").value();
  constexpr uint64_t kRounds = 150;
  SetupCall(libc.image(), &libc.vm(), worker, {kRounds, 0}, 0);
  SetupCall(libc.image(), &libc.vm(), worker, {kRounds, 1}, 1);

  Rng rng(4242);
  bool done0 = false;
  bool done1 = false;
  for (uint64_t step = 0; step < 20'000'000 && !(done0 && done1); ++step) {
    const int core = rng.NextBool() ? 1 : 0;
    if (core == 0 && !done0) {
      std::optional<VmExit> exit = libc.vm().Step(0);
      if (exit.has_value()) {
        ASSERT_EQ(exit->kind, VmExit::Kind::kHalt) << exit->ToString();
        done0 = true;
      }
    } else if (core == 1 && !done1) {
      std::optional<VmExit> exit = libc.vm().Step(1);
      if (exit.has_value()) {
        ASSERT_EQ(exit->kind, VmExit::Kind::kHalt) << exit->ToString();
        done1 = true;
      }
    }
  }
  ASSERT_TRUE(done0 && done1) << "workers did not finish";

  // The malloc lock must be free, both workers must have completed all
  // rounds (an allocator race trips their signature check and aborts early),
  // and the heap must still serve allocations.
  EXPECT_EQ(libc.ReadGlobal("malloc_lock_word", 4).value(), 0);
  const uint64_t completed = libc.SymbolAddress("completed").value();
  int64_t done_rounds[2] = {0, 0};
  ASSERT_TRUE(libc.vm().memory().ReadRaw(completed, done_rounds, 16).ok());
  EXPECT_EQ(done_rounds[0], static_cast<int64_t>(kRounds));
  EXPECT_EQ(done_rounds[1], static_cast<int64_t>(kRounds));
  const uint64_t p = *libc.Call("malloc_", {64});
  EXPECT_NE(p, 0u);

  // Free-list sanity: walk it; every chunk header must be inside the heap
  // and the list must be acyclic.
  const uint64_t heap = libc.SymbolAddress("heap").value();
  const int64_t brk = libc.ReadGlobal("heap_brk").value();
  uint64_t node = static_cast<uint64_t>(libc.ReadGlobal("free_head").value());
  std::set<uint64_t> seen;
  while (node != 0) {
    ASSERT_GE(node, heap);
    ASSERT_LT(node, heap + static_cast<uint64_t>(brk));
    ASSERT_TRUE(seen.insert(node).second) << "cycle in the free list";
    ASSERT_TRUE(libc.vm().memory().ReadRaw(node + 8, &node, 8).ok());
  }
}

}  // namespace
}  // namespace mv

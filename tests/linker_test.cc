// Linker, loader and object-format tests: symbol resolution, relocation,
// section concatenation across translation units, image protections.
#include <gtest/gtest.h>

#include "src/codegen/codegen.h"
#include "src/core/descriptors.h"
#include "src/core/program.h"
#include "src/frontend/frontend.h"
#include "src/obj/linker.h"

namespace mv {
namespace {

Result<ObjectFile> CompileObject(const std::string& source, const std::string& name) {
  DiagnosticSink diag;
  MV_ASSIGN_OR_RETURN(Module module, CompileToIr(source, name, {}, &diag));
  ObjectFile obj;
  obj.name = name;
  MV_ASSIGN_OR_RETURN(CodegenInfo info, GenerateObject(module, &obj));
  MV_RETURN_IF_ERROR(EmitDescriptors(module, info, &obj));
  return obj;
}

TEST(LinkerTest, ResolvesCrossObjectCallsAndGlobals) {
  Result<ObjectFile> lib = CompileObject(R"(
int counter;
long bump(long by) { counter = counter + (int)by; return counter; }
)",
                                         "lib");
  Result<ObjectFile> app = CompileObject(R"(
extern int counter;
extern long bump(long by);
long run() { bump(2); bump(3); return counter; }
)",
                                         "app");
  ASSERT_TRUE(lib.ok()) << lib.status().ToString();
  ASSERT_TRUE(app.ok()) << app.status().ToString();

  Vm vm(16 << 20);
  Result<Image> image = LinkAndLoad({*lib, *app}, LinkOptions{}, &vm);
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  SetupCall(*image, &vm, image->SymbolAddress("run").value(), {});
  const VmExit exit = vm.Run(0, 1000000);
  ASSERT_EQ(exit.kind, VmExit::Kind::kHalt) << exit.ToString();
  EXPECT_EQ(vm.core(0).regs[0], 5u);
}

TEST(LinkerTest, DuplicateSymbolIsAnError) {
  Result<ObjectFile> a = CompileObject("long f() { return 1; }", "a");
  Result<ObjectFile> b = CompileObject("long f() { return 2; }", "b");
  ASSERT_TRUE(a.ok() && b.ok());
  Vm vm(16 << 20);
  Result<Image> image = LinkAndLoad({*a, *b}, LinkOptions{}, &vm);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kAlreadyExists);
  EXPECT_NE(image.status().message().find("'f'"), std::string::npos);
}

TEST(LinkerTest, UndefinedSymbolIsAnError) {
  Result<ObjectFile> a =
      CompileObject("extern long missing(); long f() { return missing(); }", "a");
  ASSERT_TRUE(a.ok());
  Vm vm(16 << 20);
  Result<Image> image = LinkAndLoad({*a}, LinkOptions{}, &vm);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kNotFound);
}

TEST(LinkerTest, DescriptorSectionsConcatenateAcrossObjects) {
  // Each TU defines one switch and one multiversed function; the merged
  // .mv.variables section must hold both records back to back (paper §5).
  Result<ObjectFile> a = CompileObject(R"(
__attribute__((multiverse)) int sa;
long oa;
__attribute__((multiverse)) void fa() { if (sa) { oa = 1; } }
)",
                                       "a");
  Result<ObjectFile> b = CompileObject(R"(
__attribute__((multiverse)) int sb;
long ob;
__attribute__((multiverse)) void fb() { if (sb) { ob = 1; } }
)",
                                       "b");
  ASSERT_TRUE(a.ok() && b.ok());
  Vm vm(16 << 20);
  Result<Image> image = LinkAndLoad({*a, *b}, LinkOptions{}, &vm);
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  Result<DescriptorTable> table = DescriptorTable::Parse(vm.memory(), *image);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->variables.size(), 2u);
  EXPECT_EQ(table->variables[0].name, "sa");
  EXPECT_EQ(table->variables[1].name, "sb");
  ASSERT_EQ(table->functions.size(), 2u);
  EXPECT_EQ(table->functions[0].name, "fa");
  EXPECT_EQ(table->functions[1].name, "fb");
  EXPECT_EQ(table->functions[0].generic_addr, image->SymbolAddress("fa").value());
}

TEST(LinkerTest, ImageProtectionsAreWXExclusive) {
  Result<ObjectFile> obj = CompileObject(R"(
int data_word = 5;
long f() { return data_word; }
)",
                                         "obj");
  ASSERT_TRUE(obj.ok());
  Vm vm(16 << 20);
  Result<Image> image = LinkAndLoad({*obj}, LinkOptions{}, &vm);
  ASSERT_TRUE(image.ok());

  const uint64_t text = image->text_base;
  EXPECT_EQ(vm.memory().PermsAt(text), kPermRead | kPermExec);
  EXPECT_FALSE(vm.memory().Writable(text, 1));

  const uint64_t data = image->SymbolAddress("data_word").value();
  EXPECT_EQ(vm.memory().PermsAt(data), kPermRead | kPermWrite);

  auto mv_vars = image->sections.find(".mv.variables");
  if (mv_vars != image->sections.end() && mv_vars->second.size > 0) {
    EXPECT_EQ(vm.memory().PermsAt(mv_vars->second.addr), kPermRead);
  }
}

TEST(LinkerTest, StringLiteralsAreReadOnly) {
  Result<ObjectFile> obj = CompileObject(R"mvc(
unsigned char* get() { return (unsigned char*)"immutable"; }
long poke() {
  unsigned char* s = (unsigned char*)"immutable2";
  s[0] = 'X';   // must fault: string literals live in .rodata
  return s[0];
}
)mvc",
                                         "ro");
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  Vm vm(16 << 20);
  Result<Image> image = LinkAndLoad({*obj}, LinkOptions{}, &vm);
  ASSERT_TRUE(image.ok());
  auto rodata = image->sections.find(".rodata");
  ASSERT_NE(rodata, image->sections.end());
  ASSERT_GT(rodata->second.size, 0u);
  EXPECT_EQ(vm.memory().PermsAt(rodata->second.addr), kPermRead);

  // Reading works...
  SetupCall(*image, &vm, image->SymbolAddress("get").value(), {});
  ASSERT_EQ(vm.Run(0, 10000).kind, VmExit::Kind::kHalt);
  const uint64_t ptr = vm.core(0).regs[0];
  char first = 0;
  ASSERT_TRUE(vm.memory().ReadRaw(ptr, &first, 1).ok());
  EXPECT_EQ(first, 'i');

  // ...writing faults.
  SetupCall(*image, &vm, image->SymbolAddress("poke").value(), {});
  const VmExit exit = vm.Run(0, 10000);
  ASSERT_EQ(exit.kind, VmExit::Kind::kFault);
  EXPECT_EQ(exit.fault.kind, FaultKind::kWriteProtection);
}

TEST(LinkerTest, HaltStubReturnsControl) {
  Result<ObjectFile> obj = CompileObject("long f() { return 7; }", "obj");
  ASSERT_TRUE(obj.ok());
  Vm vm(16 << 20);
  Result<Image> image = LinkAndLoad({*obj}, LinkOptions{}, &vm);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->symbols.count("$halt"), 1u);
  SetupCall(*image, &vm, image->SymbolAddress("f").value(), {});
  const VmExit exit = vm.Run(0, 10000);
  EXPECT_EQ(exit.kind, VmExit::Kind::kHalt);
  EXPECT_EQ(vm.core(0).regs[0], 7u);
}

TEST(LinkerTest, SetupCallPassesSixArguments) {
  Result<ObjectFile> obj = CompileObject(
      "long f(long a, long b, long c, long d, long e, long g) { return a + 10*b + "
      "100*c + 1000*d + 10000*e + 100000*g; }",
      "obj");
  ASSERT_TRUE(obj.ok());
  Vm vm(16 << 20);
  Result<Image> image = LinkAndLoad({*obj}, LinkOptions{}, &vm);
  ASSERT_TRUE(image.ok());
  SetupCall(*image, &vm, image->SymbolAddress("f").value(), {1, 2, 3, 4, 5, 6});
  ASSERT_EQ(vm.Run(0, 10000).kind, VmExit::Kind::kHalt);
  EXPECT_EQ(vm.core(0).regs[0], 654321u);
}

TEST(LinkerTest, TooSmallMemoryFailsCleanly) {
  Result<ObjectFile> obj = CompileObject("long f() { return 1; }", "obj");
  ASSERT_TRUE(obj.ok());
  Vm vm(8 * 1024);  // far too small for text + stack
  Result<Image> image = LinkAndLoad({*obj}, LinkOptions{}, &vm);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kOutOfRange);
}

TEST(LinkerTest, FunctionsAreAlignedAndPadded) {
  Result<ObjectFile> obj = CompileObject(R"(
void tiny1() {}
void tiny2() {}
long f() { tiny1(); tiny2(); return 0; }
)",
                                         "obj");
  ASSERT_TRUE(obj.ok());
  Vm vm(16 << 20);
  Result<Image> image = LinkAndLoad({*obj}, LinkOptions{}, &vm);
  ASSERT_TRUE(image.ok());
  const uint64_t t1 = image->SymbolAddress("tiny1").value();
  const uint64_t t2 = image->SymbolAddress("tiny2").value();
  EXPECT_EQ(t1 % 16, 0u);
  EXPECT_EQ(t2 % 16, 0u);
  // Even a ret-only function occupies >= 8 bytes, so prologue patching
  // (5 bytes) cannot reach the next function.
  EXPECT_GE(t2 - t1, 8u);
}

TEST(ObjectTest, SectionHelpers) {
  ObjectFile obj;
  const int text = obj.FindOrAddSection(".text", true);
  EXPECT_EQ(obj.FindOrAddSection(".text"), text);
  EXPECT_EQ(obj.FindSection(".data"), -1);
  obj.AddSymbol("sym", text, 4);
  EXPECT_EQ(obj.symbols.size(), 1u);
  EXPECT_TRUE(obj.symbols[0].is_defined());
}

}  // namespace
}  // namespace mv

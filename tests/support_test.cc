#include <gtest/gtest.h>

#include "src/support/diagnostics.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/str.h"

namespace mv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("thing missing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "thing missing");
  EXPECT_EQ(status.ToString(), "not-found: thing missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (uint8_t c = 0; c <= static_cast<uint8_t>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::Internal("boom"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> v = std::move(result.value());
  EXPECT_EQ(*v, 7);
}

Result<int> Doubler(Result<int> in) {
  MV_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  Result<int> err = Doubler(Status::OutOfRange("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(StrTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrTest, HexString) { EXPECT_EQ(HexString(0xdeadbeef), "0xdeadbeef"); }

TEST(StrTest, StartsWith) {
  EXPECT_TRUE(StartsWith(".mv.variables", ".mv."));
  EXPECT_FALSE(StartsWith(".m", ".mv."));
}

TEST(StrTest, HashStableAndSensitive) {
  const uint64_t h1 = HashBytes("hello", 5);
  EXPECT_EQ(h1, HashBytes("hello", 5));
  EXPECT_NE(h1, HashBytes("hellp", 5));
  EXPECT_NE(h1, HashBytes("hello", 4));
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  Rng c(124);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) {
      all_equal_c = false;
    }
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(16), 16u);
    const int64_t v = rng.NextInRange(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(DiagnosticsTest, CountsAndFormats) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.has_errors());
  sink.Warning({2, 5}, "odd");
  sink.Error({3, 1}, "bad");
  sink.Note({0, 0}, "context");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.warning_count(), 1u);
  const std::string text = sink.ToString();
  EXPECT_NE(text.find("2:5: warning: odd"), std::string::npos);
  EXPECT_NE(text.find("3:1: error: bad"), std::string::npos);
  EXPECT_NE(text.find("<unknown>: note: context"), std::string::npos);
}

}  // namespace
}  // namespace mv

// Randomized self-modifying-code differential test: seeded sequences of
//   { patch a text slot, flush-or-suppress the icache broadcast,
//     execute some steps, switch the executing core }
// are replayed under the legacy, superblock and threaded dispatch engines,
// and the full per-action transcripts (exit reasons, stale-fetch verdicts,
// per-core registers, tick counters) must be byte-identical.
//
// This is the hostile half of the differential suite: the scenarios in
// dispatch_differential_test.cc pin the happy paths, while these sequences
// drive the engines through arbitrary interleavings of the icache's
// deliberate non-coherence — stale decodes executing silently (detection
// off) and kStaleFetch verdicts on suppressed flushes (detection on), per
// core, with superblocks being built and evicted underneath.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/isa/isa.h"
#include "src/support/rng.h"
#include "src/support/str.h"
#include "src/vm/superblock.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

constexpr uint64_t kText = 0x1000;
constexpr uint64_t kStackTop = 0x20000;
constexpr int kNumSlots = 8;
constexpr int kSlotSize = 10;  // every slot is padded to the MOVRI size
constexpr int kCores = 2;

std::string Transcript(const Vm& vm) {
  std::string out;
  for (int i = 0; i < vm.num_cores(); ++i) {
    const Core& c = vm.core(i);
    out += StrFormat("  core %d: pc=%llx halted=%d ticks=%llu instret=%llu stale=%llu\n",
                     i, (unsigned long long)c.pc, c.halted ? 1 : 0,
                     (unsigned long long)c.ticks, (unsigned long long)c.instret,
                     (unsigned long long)c.stale_fetches);
    out += "   ";
    for (int r = 0; r < kNumRegs; ++r) {
      out += StrFormat(" %llx", (unsigned long long)c.regs[r]);
    }
    out += "\n";
  }
  return out;
}

// One straight-line program of kNumSlots fixed-width slots ending in HLT.
// Patches rewrite whole slots (shorter instructions are NOP-padded), so the
// text is always decodable and execution always terminates — the randomness
// is confined to *which* stale bytes each core's caches are holding.
class SelfModVm {
 public:
  explicit SelfModVm(DispatchEngine engine, bool detect) : vm_(0x40000, kCores) {
    vm_.SetDispatchEngine(engine);
    vm_.set_stale_fetch_detection(detect);
    EXPECT_TRUE(vm_.memory().Protect(kText, 0x4000, kPermRead | kPermExec).ok());
    EXPECT_TRUE(
        vm_.memory().Protect(0x10000, kStackTop - 0x10000, kPermRead | kPermWrite).ok());
    for (int slot = 0; slot < kNumSlots; ++slot) {
      PatchSlot(slot, MakeMovRI(slot % 8, slot), /*flush=*/true);
    }
    std::vector<uint8_t> hlt;
    EXPECT_TRUE(Encode(MakeSimple(Op::kHlt), &hlt).ok());
    EXPECT_TRUE(
        vm_.memory().WriteRaw(kText + kNumSlots * kSlotSize, hlt.data(), hlt.size()).ok());
  }

  void PatchSlot(int slot, const Insn& insn, bool flush) {
    std::vector<uint8_t> bytes;
    Result<int> size = Encode(insn, &bytes);
    EXPECT_TRUE(size.ok()) << size.status().ToString();
    while (bytes.size() < kSlotSize) {
      EXPECT_TRUE(Encode(MakeSimple(Op::kNop), &bytes).ok());
    }
    const uint64_t addr = kText + static_cast<uint64_t>(slot) * kSlotSize;
    EXPECT_TRUE(vm_.memory().WriteRaw(addr, bytes.data(), bytes.size()).ok());
    if (flush) {
      vm_.FlushIcache(addr, kSlotSize);
    }
  }

  std::string Execute(int core, uint64_t max_steps) {
    Core& c = vm_.core(core);
    c.pc = kText;
    c.halted = false;
    c.regs[kRegSP] = kStackTop - 16 - 0x1000 * static_cast<uint64_t>(core);
    const VmExit exit = vm_.Run(core, max_steps);
    std::string out = "  " + exit.ToString();
    if (exit.kind == VmExit::Kind::kFault) {
      out += StrFormat(" [kind=%d pc=%llx]", static_cast<int>(exit.fault.kind),
                       (unsigned long long)exit.fault.pc);
    }
    return out + "\n" + Transcript(vm_);
  }

  Vm& vm() { return vm_; }

 private:
  Vm vm_;
};

struct ScenarioResult {
  std::string transcript;
  uint64_t stale_fetches = 0;  // summed over cores at the end of the run
};

// Replays the seed's action sequence on one engine. The Rng is deterministic,
// so both engines see the exact same actions; the action log is part of the
// transcript to make a divergence self-describing.
ScenarioResult RunScenario(uint64_t seed, bool detect, DispatchEngine engine) {
  SelfModVm vm(engine, detect);
  Rng rng(seed);
  int core = 0;
  std::string transcript;
  // Action mix: patching is common and usually suppresses the flush (the
  // hazard under test), the belated flush-all is rare (it heals every core at
  // once), and runs are long enough to revisit patched slots — otherwise a
  // seed can get through the whole sequence without one detectable stale hit
  // and the verdict comparison would be vacuous.
  for (int action = 0; action < 120; ++action) {
    transcript += StrFormat("[%d] ", action);
    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
      case 2: {  // patch a slot, usually suppressing the flush broadcast
        const int slot = static_cast<int>(rng.NextBelow(kNumSlots));
        const bool flush = rng.NextBelow(4) == 0;
        Insn insn;
        switch (rng.NextBelow(5)) {
          case 0:
            insn = MakeMovRI(static_cast<uint8_t>(rng.NextBelow(8)),
                             rng.NextInRange(-1000, 1000));
            break;
          case 1:
            insn = MakeAluRI(Op::kAddI, static_cast<uint8_t>(rng.NextBelow(8)),
                             static_cast<int32_t>(rng.NextInRange(-50, 50)));
            break;
          case 2:
            insn = MakeCmpI(static_cast<uint8_t>(rng.NextBelow(8)),
                            static_cast<int32_t>(rng.NextInRange(-5, 5)));
            break;
          case 3:
            insn = MakeRdtsc(static_cast<uint8_t>(rng.NextBelow(8)));
            break;
          default:
            insn = MakeSimple(Op::kNop);
            break;
        }
        transcript += StrFormat("patch slot=%d op=%d flush=%d\n", slot,
                                static_cast<int>(insn.op), flush ? 1 : 0);
        vm.PatchSlot(slot, insn, flush);
        break;
      }
      case 3: {  // belated flush broadcast over the whole text
        transcript += "flush-all\n";
        vm.vm().FlushAllIcache();
        break;
      }
      case 4: {  // switch the executing core (per-core icache staleness)
        core = static_cast<int>(rng.NextBelow(kCores));
        transcript += StrFormat("switch core=%d\n", core);
        break;
      }
      default: {  // execute, possibly running out of budget mid-block
        const uint64_t steps = 2 + rng.NextBelow(14);
        transcript += StrFormat("run core=%d steps=%llu\n", core,
                                (unsigned long long)steps);
        transcript += vm.Execute(core, steps);
        break;
      }
    }
  }
  ScenarioResult result;
  result.transcript = std::move(transcript);
  for (int i = 0; i < vm.vm().num_cores(); ++i) {
    result.stale_fetches += vm.vm().core(i).stale_fetches;
  }
  return result;
}

class DispatchSelfModRandomTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(DispatchSelfModRandomTest, EnginesAgreeOnStaleVerdicts) {
  const auto [seed, detect] = GetParam();
  const ScenarioResult legacy = RunScenario(seed, detect, DispatchEngine::kLegacy);
  const ScenarioResult superblock =
      RunScenario(seed, detect, DispatchEngine::kSuperblock);
  EXPECT_EQ(legacy.transcript, superblock.transcript);
  EXPECT_EQ(legacy.stale_fetches, superblock.stale_fetches);
  const ScenarioResult threaded =
      RunScenario(seed, detect, DispatchEngine::kThreaded);
  EXPECT_EQ(legacy.transcript, threaded.transcript);
  EXPECT_EQ(legacy.stale_fetches, threaded.stale_fetches);
  if (detect) {
    // The sequences must actually exercise the detector, or the "identical
    // verdicts" property is vacuous. Across ~120 actions with coin-flip
    // flush suppression this fires reliably for every seed.
    EXPECT_GT(legacy.stale_fetches, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DispatchSelfModRandomTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 13),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, bool>>& info) {
      return StrFormat("seed%llu_%s", (unsigned long long)std::get<0>(info.param),
                       std::get<1>(info.param) ? "detect" : "silent");
    });

}  // namespace
}  // namespace mv

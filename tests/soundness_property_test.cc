// The paper's soundness property (§7.4), as a parameterized sweep:
//
//   "the resulting functions have, for the respective assignment, the same
//    functionality as the original function"
//
// For every test program, every assignment of its configuration switches
// (including out-of-domain values) and every binding state (generic vs
// committed), running the program must produce identical observable state:
// return values, output, and the values of all observable globals.
#include <gtest/gtest.h>

#include "src/core/program.h"
#include "src/support/str.h"

namespace mv {
namespace {

struct SwitchSpec {
  const char* name;
  int width;
  std::vector<int64_t> values;  // includes out-of-domain probes
};

struct ProgramSpec {
  const char* name;
  const char* source;
  std::vector<SwitchSpec> switches;
  const char* entry;                      // long entry(long seed)
  std::vector<const char*> observables;   // globals to compare
};

class SoundnessTest : public ::testing::TestWithParam<ProgramSpec> {};

struct Observation {
  uint64_t ret = 0;
  std::string output;
  std::vector<int64_t> globals;

  bool operator==(const Observation& o) const {
    return ret == o.ret && output == o.output && globals == o.globals;
  }
};

Observation Observe(Program* program, const ProgramSpec& spec, uint64_t seed) {
  Observation obs;
  program->ClearOutput();
  Result<uint64_t> ret = program->Call(spec.entry, {seed}, 500'000'000ull);
  EXPECT_TRUE(ret.ok()) << ret.status().ToString();
  obs.ret = ret.ok() ? *ret : 0xDEAD;
  obs.output = program->output();
  for (const char* name : spec.observables) {
    obs.globals.push_back(program->ReadGlobal(name).value());
  }
  return obs;
}

void ResetObservables(Program* program, const ProgramSpec& spec) {
  for (const char* name : spec.observables) {
    ASSERT_TRUE(program->WriteGlobal(name, 0, 8).ok());
  }
}

TEST_P(SoundnessTest, CommittedEqualsGenericForEveryAssignment) {
  const ProgramSpec& spec = GetParam();

  BuildOptions options;
  Result<std::unique_ptr<Program>> built = Program::Build({{spec.name, spec.source}}, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Program* program = built->get();

  // Enumerate the cross product of all probe values.
  std::vector<std::vector<int64_t>> assignments(1);
  for (const SwitchSpec& sw : spec.switches) {
    std::vector<std::vector<int64_t>> next;
    for (const auto& partial : assignments) {
      for (int64_t value : sw.values) {
        auto extended = partial;
        extended.push_back(value);
        next.push_back(std::move(extended));
      }
    }
    assignments = std::move(next);
  }

  for (const auto& assignment : assignments) {
    std::string label;
    for (size_t i = 0; i < assignment.size(); ++i) {
      label += StrFormat("%s=%lld ", spec.switches[i].name, (long long)assignment[i]);
    }
    for (size_t i = 0; i < assignment.size(); ++i) {
      ASSERT_TRUE(program->WriteGlobal(spec.switches[i].name, assignment[i],
                                       spec.switches[i].width)
                      .ok());
    }

    // Reference: generic execution.
    ASSERT_TRUE(program->runtime().Revert().ok());
    ResetObservables(program, spec);
    const Observation generic = Observe(program, spec, 17);

    // Committed execution.
    Result<PatchStats> commit = program->runtime().Commit();
    ASSERT_TRUE(commit.ok()) << label << commit.status().ToString();
    ResetObservables(program, spec);
    const Observation committed = Observe(program, spec, 17);

    EXPECT_EQ(generic.ret, committed.ret) << label;
    EXPECT_EQ(generic.output, committed.output) << label;
    EXPECT_EQ(generic.globals, committed.globals) << label;

    // And after reverting again, still the generic behaviour.
    ASSERT_TRUE(program->runtime().Revert().ok());
    ResetObservables(program, spec);
    EXPECT_TRUE(Observe(program, spec, 17) == generic) << label << "(post-revert)";
  }
}

// ---------------------------------------------------------------------------
// The program corpus.

constexpr char kFig2[] = R"(
__attribute__((multiverse)) bool A;
__attribute__((multiverse)) int B;
long calc_calls;
long log_calls;
void calc() { calc_calls = calc_calls + 1; }
void log_event() { log_calls = log_calls + 1; }
__attribute__((multiverse))
void multi() {
  if (A) {
    calc();
    if (B) { log_event(); }
  }
}
long drive(long n) {
  long i;
  for (i = 0; i < n; ++i) { multi(); }
  return calc_calls * 1000 + log_calls;
}
)";

constexpr char kArithmetic[] = R"(
__attribute__((multiverse(0, 1, 2, 3))) int scale;
long acc;
__attribute__((multiverse))
long transform(long x) {
  long v = x;
  if (scale == 0) { return v; }
  v = v << scale;
  if (scale >= 2) { v = v + (x % (scale + 1)); }
  return v - scale;
}
long drive(long seed) {
  long i;
  for (i = 0; i < 50; ++i) {
    acc = acc + transform(seed + i * 13);
  }
  return acc;
}
)";

constexpr char kLocking[] = R"(
__attribute__((multiverse)) int threads;
int lockword;
long ops;
__attribute__((multiverse))
void lock_it() {
  if (threads) {
    while (__builtin_xchg(&lockword, 1)) { __builtin_pause(); }
  }
}
__attribute__((multiverse))
void unlock_it() {
  if (threads) { lockword = 0; }
}
long drive(long n) {
  long i;
  for (i = 0; i < n; ++i) {
    lock_it();
    ops = ops + 1;
    unlock_it();
  }
  return ops + lockword;
}
)";

constexpr char kTwoSwitchOutput[] = R"(
__attribute__((multiverse)) bool verbose;
__attribute__((multiverse(1, 2, 4))) int stride;
long sum;
__attribute__((multiverse))
void step(long i) {
  if (i % stride == 0) {
    sum = sum + i;
    if (verbose) { __builtin_vmcall(1, '.'); }
  }
}
long drive(long n) {
  long i;
  for (i = 0; i < 16; ++i) { step(i + n); }
  return sum;
}
)";

constexpr char kPartialDomain[] = R"(
// Only half the domain gets variants; the rest exercises the generic
// fallback while committed state is active for the other function.
__attribute__((multiverse(5))) int special;
long a_out;
long b_out;
__attribute__((multiverse)) void fa() { a_out = a_out + special; }
long drive(long n) {
  long i;
  for (i = 0; i < n % 7 + 1; ++i) { fa(); }
  b_out = a_out * 2;
  return a_out;
}
)";

constexpr char kPartialBind[] = R"(
__attribute__((multiverse)) bool hot;
__attribute__((multiverse(0, 1, 2))) int level;
long out;
// Partial specialization: only `hot` is bound; `level` stays dynamic.
__attribute__((multiverse(hot)))
void f() {
  if (hot) {
    out = out + level + 1;
  } else {
    out = out + 1;
  }
}
long drive(long n) {
  long i;
  for (i = 0; i < n % 5 + 1; ++i) { f(); }
  return out;
}
)";

INSTANTIATE_TEST_SUITE_P(
    Corpus, SoundnessTest,
    ::testing::Values(
        ProgramSpec{"fig2", kFig2,
                    {{"A", 1, {0, 1, 2}}, {"B", 4, {0, 1, -1, 7}}},
                    "drive",
                    {"calc_calls", "log_calls"}},
        ProgramSpec{"arithmetic", kArithmetic,
                    {{"scale", 4, {0, 1, 2, 3, 9}}},
                    "drive",
                    {"acc"}},
        ProgramSpec{"locking", kLocking,
                    {{"threads", 4, {0, 1}}},
                    "drive",
                    {"ops"}},
        ProgramSpec{"two_switch_output", kTwoSwitchOutput,
                    {{"verbose", 1, {0, 1}}, {"stride", 4, {1, 2, 4, 3}}},
                    "drive",
                    {"sum"}},
        ProgramSpec{"partial_domain", kPartialDomain,
                    {{"special", 4, {5, 6, 0}}},
                    "drive",
                    {"a_out", "b_out"}},
        ProgramSpec{"partial_bind", kPartialBind,
                    {{"hot", 1, {0, 1}}, {"level", 4, {0, 1, 2, 9}}},
                    "drive",
                    {"out"}}),
    [](const ::testing::TestParamInfo<ProgramSpec>& info) { return info.param.name; });

}  // namespace
}  // namespace mv

#include <gtest/gtest.h>

#include "src/isa/isa.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

constexpr uint64_t kText = 0x1000;
constexpr uint64_t kData = 0x8000;
constexpr uint64_t kStackTop = 0x20000;

// Builds a VM with text at kText (R+X), data at kData (R+W) and a stack.
class VmHarness {
 public:
  explicit VmHarness(int cores = 1) : vm_(0x40000, cores) {
    EXPECT_TRUE(vm_.memory().Protect(kText, 0x4000, kPermRead | kPermExec).ok());
    EXPECT_TRUE(vm_.memory().Protect(kData, 0x4000, kPermRead | kPermWrite).ok());
    EXPECT_TRUE(
        vm_.memory().Protect(0x10000, kStackTop - 0x10000, kPermRead | kPermWrite).ok());
  }

  // Assembles instructions at `addr` (default: append at kText).
  uint64_t Assemble(const std::vector<Insn>& insns, uint64_t addr) {
    std::vector<uint8_t> bytes;
    for (const Insn& insn : insns) {
      Result<int> size = Encode(insn, &bytes);
      EXPECT_TRUE(size.ok()) << size.status().ToString();
    }
    EXPECT_TRUE(vm_.memory().WriteRaw(addr, bytes.data(), bytes.size()).ok());
    vm_.FlushIcache(addr, bytes.size());
    return addr + bytes.size();
  }

  // Runs core `core` from kText until halt; returns the exit.
  VmExit Run(int core = 0, uint64_t pc = kText, uint64_t max_steps = 100000) {
    Core& c = vm_.core(core);
    c.pc = pc;
    c.halted = false;
    c.regs[kRegSP] = kStackTop - 16 - 0x1000 * static_cast<uint64_t>(core);
    return vm_.Run(core, max_steps);
  }

  Vm& vm() { return vm_; }
  uint64_t reg(int r, int core = 0) { return vm_.core(core).regs[r]; }

 private:
  Vm vm_;
};

// ---------------------------------------------------------------------------
// ALU semantics, parameterized.

struct AluCase {
  const char* name;
  Op op;
  uint64_t lhs;
  uint64_t rhs;
  uint64_t expected;
};

class VmAluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(VmAluTest, ComputesExpected) {
  const AluCase& c = GetParam();
  VmHarness harness;
  harness.Assemble(
      {MakeMovRI(0, static_cast<int64_t>(c.lhs)), MakeMovRI(1, static_cast<int64_t>(c.rhs)),
       MakeAluRR(c.op, 0, 1), MakeSimple(Op::kHlt)},
      kText);
  const VmExit exit = harness.Run();
  ASSERT_EQ(exit.kind, VmExit::Kind::kHalt) << exit.ToString();
  EXPECT_EQ(harness.reg(0), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, VmAluTest,
    ::testing::Values(
        AluCase{"add", Op::kAdd, 7, 8, 15},
        AluCase{"add_wrap", Op::kAdd, UINT64_MAX, 1, 0},
        AluCase{"sub", Op::kSub, 7, 9, static_cast<uint64_t>(-2)},
        AluCase{"mul", Op::kMul, 6, 7, 42},
        AluCase{"udiv", Op::kUDiv, 100, 7, 14},
        AluCase{"urem", Op::kURem, 100, 7, 2},
        AluCase{"sdiv_neg", Op::kSDiv, static_cast<uint64_t>(-100), 7,
                static_cast<uint64_t>(-14)},
        AluCase{"srem_neg", Op::kSRem, static_cast<uint64_t>(-100), 7,
                static_cast<uint64_t>(-2)},
        AluCase{"sdiv_min_neg1", Op::kSDiv, static_cast<uint64_t>(INT64_MIN),
                static_cast<uint64_t>(-1), static_cast<uint64_t>(INT64_MIN)},
        AluCase{"and", Op::kAnd, 0xF0F0, 0xFF00, 0xF000},
        AluCase{"or", Op::kOr, 0xF0F0, 0x0F0F, 0xFFFF},
        AluCase{"xor", Op::kXor, 0xFF, 0x0F, 0xF0},
        AluCase{"shl", Op::kShl, 1, 40, uint64_t{1} << 40},
        AluCase{"shl_mask", Op::kShl, 1, 65, 2},  // shift amounts mask to 6 bits
        AluCase{"shr", Op::kShr, uint64_t{1} << 40, 40, 1},
        AluCase{"sar", Op::kSar, static_cast<uint64_t>(-256), 4,
                static_cast<uint64_t>(-16)}),
    [](const ::testing::TestParamInfo<AluCase>& info) { return info.param.name; });

TEST(VmTest, DivisionByZeroFaults) {
  VmHarness harness;
  harness.Assemble({MakeMovRI(0, 1), MakeMovRI(1, 0), MakeAluRR(Op::kUDiv, 0, 1),
                    MakeSimple(Op::kHlt)},
                   kText);
  const VmExit exit = harness.Run();
  ASSERT_EQ(exit.kind, VmExit::Kind::kFault);
  EXPECT_EQ(exit.fault.kind, FaultKind::kDivByZero);
}

// ---------------------------------------------------------------------------
// Conditions: all ten, on signed/unsigned boundary values.

struct CondCase {
  const char* name;
  Cond cc;
  int64_t lhs;
  int64_t rhs;
  bool expected;
};

class VmCondTest : public ::testing::TestWithParam<CondCase> {};

TEST_P(VmCondTest, SetccMatches) {
  const CondCase& c = GetParam();
  VmHarness harness;
  harness.Assemble({MakeMovRI(0, c.lhs), MakeMovRI(1, c.rhs), MakeCmp(0, 1),
                    MakeSetCC(c.cc, 2), MakeSimple(Op::kHlt)},
                   kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(2), c.expected ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConds, VmCondTest,
    ::testing::Values(
        CondCase{"eq_true", Cond::kEq, 5, 5, true},
        CondCase{"eq_false", Cond::kEq, 5, 6, false},
        CondCase{"ne_true", Cond::kNe, 5, 6, true},
        CondCase{"lt_signed", Cond::kLt, -1, 0, true},
        CondCase{"lt_signed_false", Cond::kLt, 0, -1, false},
        CondCase{"le_eq", Cond::kLe, 3, 3, true},
        CondCase{"gt_signed", Cond::kGt, 0, -1, true},
        CondCase{"ge_eq", Cond::kGe, 3, 3, true},
        CondCase{"b_unsigned", Cond::kB, 1, -1 /* big unsigned */, true},
        CondCase{"b_unsigned_false", Cond::kB, -1, 1, false},
        CondCase{"be_eq", Cond::kBe, 7, 7, true},
        CondCase{"a_unsigned", Cond::kA, -1, 1, true},
        CondCase{"ae_eq", Cond::kAe, 7, 7, true}),
    [](const ::testing::TestParamInfo<CondCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Memory: widths, sign extension, protection faults.

TEST(VmTest, LoadStoreWidthsAndSignExtension) {
  VmHarness harness;
  harness.Assemble(
      {
          MakeMovRI(1, kData),
          MakeMovRI(0, -2),  // 0xFFFF...FE
          MakeStore(Op::kSt8, 0, 1, 0),
          MakeLoad(Op::kLd8U, 2, 1, 0),   // 0xFE
          MakeLoad(Op::kLd8S, 3, 1, 0),   // -2
          MakeMovRI(0, 0x12345678),
          MakeStore(Op::kSt32, 0, 1, 8),
          MakeLoad(Op::kLd16U, 4, 1, 8),  // 0x5678
          MakeLoad(Op::kLd32S, 5, 1, 8),
          MakeSimple(Op::kHlt),
      },
      kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(2), 0xFEu);
  EXPECT_EQ(harness.reg(3), static_cast<uint64_t>(-2));
  EXPECT_EQ(harness.reg(4), 0x5678u);
  EXPECT_EQ(harness.reg(5), 0x12345678u);
}

TEST(VmTest, GlobalLoadStoreAbsolute) {
  VmHarness harness;
  harness.Assemble({MakeMovRI(0, -5), MakeStg(0, GWidth::kU32, kData + 4),
                    MakeLdg(1, GWidth::kS32, kData + 4), MakeLdg(2, GWidth::kU32, kData + 4),
                    MakeSimple(Op::kHlt)},
                   kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(1), static_cast<uint64_t>(-5));
  EXPECT_EQ(harness.reg(2), 0xFFFFFFFBu);
}

TEST(VmTest, WriteToTextFaults) {
  VmHarness harness;
  harness.Assemble({MakeMovRI(1, kText), MakeMovRI(0, 0), MakeStore(Op::kSt8, 0, 1, 0),
                    MakeSimple(Op::kHlt)},
                   kText);
  const VmExit exit = harness.Run();
  ASSERT_EQ(exit.kind, VmExit::Kind::kFault);
  EXPECT_EQ(exit.fault.kind, FaultKind::kWriteProtection);
  EXPECT_EQ(exit.fault.addr, kText);
}

TEST(VmTest, ExecOfDataFaults) {
  VmHarness harness;
  const VmExit exit = harness.Run(0, kData);
  ASSERT_EQ(exit.kind, VmExit::Kind::kFault);
  EXPECT_EQ(exit.fault.kind, FaultKind::kExecProtection);
}

TEST(VmTest, UnmappedAccessFaults) {
  VmHarness harness;
  harness.Assemble({MakeMovRI(1, 0x0), MakeLoad(Op::kLd64, 0, 1, 0), MakeSimple(Op::kHlt)},
                   kText);
  const VmExit exit = harness.Run();
  ASSERT_EQ(exit.kind, VmExit::Kind::kFault);
  EXPECT_EQ(exit.fault.kind, FaultKind::kUnmapped);
}

TEST(VmTest, BadOpcodeFaults) {
  VmHarness harness;
  const uint8_t bad = 0xEE;
  ASSERT_TRUE(harness.vm().memory().WriteRaw(kText, &bad, 1).ok());
  const VmExit exit = harness.Run();
  ASSERT_EQ(exit.kind, VmExit::Kind::kFault);
  EXPECT_EQ(exit.fault.kind, FaultKind::kBadOpcode);
}

// ---------------------------------------------------------------------------
// Control flow, calls, stack.

TEST(VmTest, CallAndReturn) {
  VmHarness harness;
  // callee at kText+0x100: r0 = r0 + 1; ret
  harness.Assemble({MakeAluRI(Op::kAddI, 0, 1), MakeSimple(Op::kRet)}, kText + 0x100);
  // caller: r0 = 41; call +...; hlt
  const int32_t rel = static_cast<int32_t>((kText + 0x100) - (kText + 10 + 5));
  harness.Assemble({MakeMovRI(0, 41), MakeCall(rel), MakeSimple(Op::kHlt)}, kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(0), 42u);
}

TEST(VmTest, IndirectCallThroughRegisterAndMemory) {
  VmHarness harness;
  harness.Assemble({MakeAluRI(Op::kAddI, 0, 5), MakeSimple(Op::kRet)}, kText + 0x100);
  // Store the target into data, then CALLM through it; also CALLR.
  uint64_t target = kText + 0x100;
  ASSERT_TRUE(harness.vm().memory().WriteRaw(kData + 32, &target, 8).ok());
  harness.Assemble({MakeMovRI(0, 0), MakeCallM(kData + 32), MakeMovRI(11, kText + 0x100),
                    MakeCallR(11), MakeSimple(Op::kHlt)},
                   kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(0), 10u);
}

TEST(VmTest, PushPopRoundTrip) {
  VmHarness harness;
  harness.Assemble({MakeMovRI(0, 111), MakeMovRI(1, 222), MakePush(0), MakePush(1),
                    MakePop(2), MakePop(3), MakeSimple(Op::kHlt)},
                   kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(2), 222u);
  EXPECT_EQ(harness.reg(3), 111u);
}

TEST(VmTest, BackwardLoopExecutes) {
  VmHarness harness;
  // r0 = 10; loop: r0 -= 1; cmp r0,0; jne loop; hlt
  harness.Assemble(
      {
          MakeMovRI(0, 10),            // 10 bytes
          MakeAluRI(Op::kSubI, 0, 1),  // 6 bytes at +10
          MakeCmpI(0, 0),              // 6 bytes at +16
          MakeJcc(Cond::kNe, -18),     // 6 bytes at +22: back to +10
          MakeSimple(Op::kHlt),
      },
      kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(0), 0u);
}

// ---------------------------------------------------------------------------
// Branch prediction and cost accounting.

TEST(VmTest, WarmLoopHasFewMispredicts) {
  VmHarness harness;
  harness.Assemble(
      {
          MakeMovRI(0, 1000),
          MakeAluRI(Op::kSubI, 0, 1),
          MakeCmpI(0, 0),
          MakeJcc(Cond::kNe, -18),
          MakeSimple(Op::kHlt),
      },
      kText);
  ASSERT_EQ(harness.Run(0, kText, 100000).kind, VmExit::Kind::kHalt);
  const Core& core = harness.vm().core(0);
  EXPECT_EQ(core.cond_branches, 1000u);
  // Only the warm-up transitions and the final not-taken mispredict.
  EXPECT_LE(core.cond_mispredicts, 4u);
}

TEST(VmTest, FlushedPredictorsMispredictAgain) {
  VmHarness harness;
  harness.Assemble(
      {
          MakeMovRI(0, 8),
          MakeAluRI(Op::kSubI, 0, 1),
          MakeCmpI(0, 0),
          MakeJcc(Cond::kNe, -18),
          MakeSimple(Op::kHlt),
      },
      kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  const uint64_t first = harness.vm().core(0).cond_mispredicts;
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);  // warm second run
  const uint64_t second = harness.vm().core(0).cond_mispredicts - first;
  harness.vm().FlushPredictors();
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  const uint64_t cold =
      harness.vm().core(0).cond_mispredicts - first - second;
  EXPECT_GT(cold, second);
}

TEST(VmTest, MispredictCostsCycles) {
  VmHarness harness;
  // An alternating branch pattern defeats the 2-bit counter.
  harness.Assemble(
      {
          MakeMovRI(0, 100),
          MakeMovRI(1, 0),
          // loop:
          MakeAluRI(Op::kXorI, 1, 1),   // r1 ^= 1 (at +20, 6 bytes)
          MakeCmpI(1, 0),               // +26
          MakeJcc(Cond::kNe, 0),        // +32: taken every other iteration (fall through)
          MakeAluRI(Op::kSubI, 0, 1),   // +38
          MakeCmpI(0, 0),               // +44
          MakeJcc(Cond::kNe, -36),      // +50: back to +20
          MakeSimple(Op::kHlt),
      },
      kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  const Core& core = harness.vm().core(0);
  EXPECT_GT(core.cond_mispredicts, 20u);  // the alternating branch hurts
}

// ---------------------------------------------------------------------------
// Icache incoherence: the property the patcher must respect.

TEST(VmTest, StaleIcacheExecutesOldCodeUntilFlushed) {
  VmHarness harness;
  harness.Assemble({MakeMovRI(0, 1), MakeSimple(Op::kHlt)}, kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(0), 1u);

  // Overwrite the immediate directly in memory, without flushing.
  std::vector<uint8_t> patched;
  ASSERT_TRUE(Encode(MakeMovRI(0, 2), &patched).ok());
  ASSERT_TRUE(harness.vm().memory().WriteRaw(kText, patched.data(), patched.size()).ok());

  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(0), 1u) << "stale decoded instruction should still execute";

  harness.vm().FlushIcache(kText, patched.size());
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(0), 2u) << "flush must make the new code visible";
}

// ---------------------------------------------------------------------------
// System instructions.

TEST(VmTest, StiCliToggleInterruptFlag) {
  VmHarness harness;
  harness.Assemble({MakeSimple(Op::kCli), MakeSimple(Op::kHlt)}, kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_FALSE(harness.vm().core(0).interrupts_enabled);
  harness.Assemble({MakeSimple(Op::kSti), MakeSimple(Op::kHlt)}, kText);
  harness.vm().FlushIcache(kText, 16);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_TRUE(harness.vm().core(0).interrupts_enabled);
}

TEST(VmTest, GuestModeMakesPrivilegedOpsExpensive) {
  VmHarness native;
  native.Assemble({MakeSimple(Op::kSti), MakeSimple(Op::kCli), MakeSimple(Op::kHlt)},
                  kText);
  ASSERT_EQ(native.Run().kind, VmExit::Kind::kHalt);
  const uint64_t native_ticks = native.vm().core(0).ticks;
  EXPECT_EQ(native.vm().core(0).priv_traps, 0u);

  VmHarness guest;
  guest.vm().set_hypervisor_guest(true);
  guest.Assemble({MakeSimple(Op::kSti), MakeSimple(Op::kCli), MakeSimple(Op::kHlt)},
                 kText);
  ASSERT_EQ(guest.Run().kind, VmExit::Kind::kHalt);
  EXPECT_EQ(guest.vm().core(0).priv_traps, 2u);
  EXPECT_GT(guest.vm().core(0).ticks, native_ticks * 10);
}

TEST(VmTest, HypercallTogglesInterruptsCheaply) {
  VmHarness guest;
  guest.vm().set_hypervisor_guest(true);
  guest.Assemble({MakeHypercall(1), MakeSimple(Op::kHlt)}, kText);
  ASSERT_EQ(guest.Run().kind, VmExit::Kind::kHalt);
  EXPECT_FALSE(guest.vm().core(0).interrupts_enabled);
  EXPECT_EQ(guest.vm().core(0).priv_traps, 0u);
}

TEST(VmTest, VmCallExitsWithCodeAndResumes) {
  VmHarness harness;
  harness.Assemble({MakeMovRI(0, 99), MakeVmCall(7), MakeAluRI(Op::kAddI, 0, 1),
                    MakeSimple(Op::kHlt)},
                   kText);
  Core& core = harness.vm().core(0);
  core.pc = kText;
  core.regs[kRegSP] = kStackTop - 16;
  VmExit exit = harness.vm().Run(0, 1000);
  ASSERT_EQ(exit.kind, VmExit::Kind::kVmCall);
  EXPECT_EQ(exit.vmcall_code, 7);
  EXPECT_EQ(core.regs[0], 99u);
  core.regs[0] = 5;  // host writes the result
  exit = harness.vm().Run(0, 1000);
  ASSERT_EQ(exit.kind, VmExit::Kind::kHalt);
  EXPECT_EQ(core.regs[0], 6u);
}

TEST(VmTest, RdtscIsMonotonic) {
  VmHarness harness;
  harness.Assemble({MakeRdtsc(1), MakeRdtsc(2), MakeSimple(Op::kHlt)}, kText);
  ASSERT_EQ(harness.Run().kind, VmExit::Kind::kHalt);
  EXPECT_GT(harness.reg(2), harness.reg(1));
}

TEST(VmTest, StepLimitExit) {
  VmHarness harness;
  harness.Assemble({MakeJmp(-5)}, kText);  // infinite loop
  const VmExit exit = harness.Run(0, kText, 100);
  EXPECT_EQ(exit.kind, VmExit::Kind::kStepLimit);
}

// ---------------------------------------------------------------------------
// Multi-core: shared memory, per-core state, atomic exchange.

TEST(VmTest, CoresShareMemoryButNotRegisters) {
  VmHarness harness(2);
  harness.Assemble({MakeMovRI(0, 1), MakeMovRI(1, kData), MakeStore(Op::kSt64, 0, 1, 0),
                    MakeSimple(Op::kHlt)},
                   kText);
  harness.Assemble({MakeMovRI(1, kData), MakeLoad(Op::kLd64, 2, 1, 0),
                    MakeSimple(Op::kHlt)},
                   kText + 0x200);
  ASSERT_EQ(harness.Run(0, kText).kind, VmExit::Kind::kHalt);
  ASSERT_EQ(harness.Run(1, kText + 0x200).kind, VmExit::Kind::kHalt);
  EXPECT_EQ(harness.reg(2, 1), 1u);
  EXPECT_EQ(harness.reg(2, 0), 0u);  // core 0 never wrote r2
}

TEST(VmTest, XchgIsAtomicPerInstruction) {
  // Two cores race XCHG on one word; exactly one of them must win each time.
  VmHarness harness(2);
  // Each core: r0=1; xchg r0,[kData]; hlt  -> r0 holds the previous value.
  harness.Assemble({MakeMovRI(0, 1), MakeMovRI(1, kData), MakeAluRR(Op::kXchg, 0, 1),
                    MakeSimple(Op::kHlt)},
                   kText);
  for (int core = 0; core < 2; ++core) {
    Core& c = harness.vm().core(core);
    c.pc = kText;
    c.halted = false;
    c.regs[kRegSP] = kStackTop - 16 - 0x1000 * static_cast<uint64_t>(core);
  }
  // Interleave single steps.
  bool done0 = false;
  bool done1 = false;
  for (int i = 0; i < 100 && !(done0 && done1); ++i) {
    if (!done0) {
      done0 = harness.vm().Step(0).has_value();
    }
    if (!done1) {
      done1 = harness.vm().Step(1).has_value();
    }
  }
  ASSERT_TRUE(done0 && done1);
  // Exactly one core observed the initial 0; the other observed 1.
  const uint64_t sum = harness.reg(0, 0) + harness.reg(0, 1);
  EXPECT_EQ(sum, 1u);
}

}  // namespace
}  // namespace mv

// The systematic fault-injection sweep behind the recovery invariant of
// docs/INTERNALS.md §11: kill the commit at EVERY fault point (patch-write,
// mprotect, icache-flush) at EVERY occurrence index, under every commit path
// (plain runtime, quiescence, breakpoint) and both dispatch engines. After
// each injected fault the image must behave bit-identically to the
// fully-generic or the fully-committed program — never a mixture — and a
// disarmed retry of a failed commit must succeed. All three dispatch
// engines are swept: the threaded tier's compiled traces must tear down as
// cleanly as interpreted superblocks under every protocol's fault points.
//
// Stale-fetch detection stays on for the whole sweep, so a recovery that
// restored bytes but skipped an invalidation is caught as a fault, not
// silently executed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/commit_scheduler.h"
#include "src/core/patching.h"
#include "src/core/program.h"
#include "src/core/varprove.h"
#include "src/livepatch/livepatch.h"
#include "src/support/faultpoint.h"
#include "src/vm/presence.h"
#include "src/vm/superblock.h"
#include "src/vm/vm.h"

namespace mv {
namespace {

constexpr char kSource[] = R"(
__attribute__((multiverse)) bool feature;
long count;
__attribute__((multiverse))
void tick() { if (feature) { count = count + 2; } else { count = count + 1; } }
long run(long n) { long i; for (i = 0; i < n; ++i) { tick(); } return count; }
)";

enum class CommitPath { kPlain, kQuiescence, kBreakpoint, kWaitFree };

const char* CommitPathName(CommitPath path) {
  switch (path) {
    case CommitPath::kPlain:
      return "plain";
    case CommitPath::kQuiescence:
      return "quiescence";
    case CommitPath::kBreakpoint:
      return "breakpoint";
    case CommitPath::kWaitFree:
      return "waitfree";
  }
  return "?";
}

struct SweepConfig {
  DispatchEngine engine;
  CommitPath path;
  // When set, the sweep arms faults against plan-cache HITS: the cache is
  // pre-warmed with a disarmed commit/revert lap, so every armed commit
  // replays a memoized plan. A fault during that replay must roll back just
  // as cleanly as a cold one — and must evict the plan it interrupted.
  bool warm_cache = false;
};

class FaultSweepTest : public ::testing::TestWithParam<SweepConfig> {
 protected:
  void SetUp() override { SetDefaultDispatchEngine(GetParam().engine); }
  void TearDown() override { SetDefaultDispatchEngine(DispatchEngine::kLegacy); }

  std::unique_ptr<Program> Build() {
    BuildOptions build;
    // Non-warm configs pin the cache off so every armed commit exercises the
    // cold selection+planning path; warm configs sweep the hit path instead.
    build.attach.plan_cache = GetParam().warm_cache;
    Result<std::unique_ptr<Program>> built =
        Program::Build({{"sweep", kSource}}, build);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    std::unique_ptr<Program> program = std::move(*built);
    EXPECT_TRUE(program->WriteGlobal("feature", 1, 1).ok());
    program->vm().set_stale_fetch_detection(true);
    // Single attempt: the sweep classifies each injected fault as either
    // recovered-to-generic (error + rollback) or committed (seal repair);
    // the retry that would mask the distinction is issued explicitly below.
    TxnOptions txn;
    txn.max_attempts = 1;
    program->runtime().set_txn_options(txn);
    return program;
  }

  // One transactional commit through the configured path.
  Status DoCommit(Program* program) {
    if (GetParam().path == CommitPath::kPlain) {
      return program->runtime().Commit().status();
    }
    LiveCommitOptions options;
    switch (GetParam().path) {
      case CommitPath::kQuiescence:
        options.protocol = CommitProtocol::kQuiescence;
        break;
      case CommitPath::kBreakpoint:
        options.protocol = CommitProtocol::kBreakpoint;
        break;
      case CommitPath::kWaitFree:
        options.protocol = CommitProtocol::kWaitFree;
        break;
      case CommitPath::kPlain:
        break;  // handled above
    }
    options.txn.max_attempts = 1;
    return multiverse_commit_live(&program->vm(), &program->runtime(), options)
        .status();
  }

  std::vector<uint8_t> Text(Program* program) {
    std::vector<uint8_t> text(program->image().text_size);
    EXPECT_TRUE(program->vm()
                    .memory()
                    .ReadRaw(program->image().text_base, text.data(), text.size())
                    .ok());
    return text;
  }

  // The workload transcript: deterministic guest execution from a reset
  // state, with `feature` flipped to 0 for the run. Generic code follows the
  // switch (6); an image committed to the feature=1 variant ignores it (12).
  // `feature` is restored so later commits select the same variant.
  uint64_t Transcript(Program* program) {
    EXPECT_TRUE(program->WriteGlobal("count", 0, 8).ok());
    EXPECT_TRUE(program->WriteGlobal("feature", 0, 1).ok());
    Result<uint64_t> result = program->Call("run", {6});
    EXPECT_TRUE(program->WriteGlobal("feature", 1, 1).ok());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : 0;
  }
};

TEST_P(FaultSweepTest, EveryFaultPointAtEveryIndexIsNeverTorn) {
  // Calibrate on a twin: fault-point occurrence counts of one clean commit,
  // the committed text, and the committed transcript.
  std::unique_ptr<Program> twin = Build();
  if (GetParam().warm_cache) {
    // Warm lap: the calibrating commit below must itself be a cache hit so
    // the probed occurrence counts describe the hit path.
    ASSERT_TRUE(DoCommit(twin.get()).ok());
    ASSERT_TRUE(twin->runtime().Revert().ok());
  }
  FaultInjector& injector = FaultInjector::Instance();
  uint64_t probe[kFaultSiteCount];
  for (size_t s = 0; s < kFaultSiteCount; ++s) {
    probe[s] = injector.Count(static_cast<FaultSite>(s));
  }
  ASSERT_TRUE(DoCommit(twin.get()).ok());
  if (GetParam().warm_cache) {
    ASSERT_GT(twin->runtime().fast_stats().plan_cache_hits, 0u)
        << "calibration commit was expected to replay a memoized plan";
  }
  for (size_t s = 0; s < kFaultSiteCount; ++s) {
    probe[s] = injector.Count(static_cast<FaultSite>(s)) - probe[s];
  }
  const std::vector<uint8_t> committed_text = Text(twin.get());
  const uint64_t committed_transcript = Transcript(twin.get());
  EXPECT_EQ(committed_transcript, 12u);

  std::unique_ptr<Program> program = Build();
  const std::vector<uint8_t> pristine_text = Text(program.get());
  const uint64_t generic_transcript = Transcript(program.get());
  EXPECT_EQ(generic_transcript, 6u);
  if (GetParam().warm_cache) {
    // Pre-warm so the first armed commit already replays a memoized plan;
    // every later iteration re-warms itself through the disarmed retry.
    ASSERT_TRUE(DoCommit(program.get()).ok());
    ASSERT_TRUE(program->runtime().Revert().ok());
    ASSERT_EQ(Text(program.get()), pristine_text);
  }

  int recovered = 0;   // fault -> structured error -> generic image
  int committed = 0;   // fault absorbed (seal repair) -> committed image
  for (size_t s = 0; s < kFaultSiteCount; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    if (site == FaultSite::kCrash || site == FaultSite::kCrashTorn) {
      // The crash sites live on the durable-journal append path, which only
      // exists when a WAL is attached — and their contract is the opposite
      // of this sweep's (the image IS torn until RecoverFromJournal runs).
      // The crash-at-every-boundary sweep lives in durable_journal_test.
      ASSERT_EQ(probe[s], 0u) << FaultSiteName(site)
                              << " crossed without a journal attached";
      continue;
    }
    ASSERT_GT(probe[s], 0u) << FaultSiteName(site)
                            << " never crossed — sweep would be vacuous";
    for (uint64_t hit = 0; hit < probe[s]; ++hit) {
      SCOPED_TRACE(std::string(FaultSiteName(site)) + " hit " +
                   std::to_string(hit));
      Status status;
      {
        ScopedFault fault(site, hit);
        status = DoCommit(program.get());
      }
      if (status.ok()) {
        // The fault was absorbed in place (a suppressed invalidation is
        // repaired at seal): the image must be FULLY committed.
        ++committed;
        EXPECT_EQ(Text(program.get()), committed_text);
        EXPECT_EQ(Transcript(program.get()), committed_transcript);
      } else {
        // The attempt was rolled back: the image must be FULLY generic and
        // the error structured.
        ++recovered;
        EXPECT_NE(status.ToString().find("rolled back"), std::string::npos)
            << status.ToString();
        EXPECT_EQ(Text(program.get()), pristine_text);
        EXPECT_EQ(Transcript(program.get()), generic_transcript);
        if (GetParam().warm_cache && GetParam().path == CommitPath::kPlain) {
          // A rollback means the runtime can no longer trust any memoized
          // post-state bookkeeping: the cache must be empty, not stale.
          EXPECT_EQ(program->runtime().plan_cache_entries(), 0u)
              << "fault during a cached apply must invalidate the plan cache";
        }

        // Transient-fault model: the injector is one-shot, so an immediate
        // retry of the identical commit must complete.
        Status retried = DoCommit(program.get());
        ASSERT_TRUE(retried.ok()) << retried.ToString();
        EXPECT_EQ(Text(program.get()), committed_text);
      }
      // Return to the pristine state for the next (site, hit) pair.
      Result<PatchStats> reverted = program->runtime().Revert();
      ASSERT_TRUE(reverted.ok()) << reverted.status().ToString();
      ASSERT_EQ(Text(program.get()), pristine_text);
    }
  }
  // The sweep must have exercised both outcomes: real rollbacks and at least
  // one absorbed (repaired-in-place) fault.
  EXPECT_GT(recovered, 0);
  EXPECT_GT(committed, 0);
}

// The same sweep through the CommitScheduler's batched commit path
// (src/core/commit_scheduler.h): a coalesced drain killed at every fault
// point must leave the image fully-old or fully-new, keep its pending slots
// across the rollback, and retry the SAME coalesced batch to completion.
TEST_P(FaultSweepTest, SchedulerBatchedDrainIsNeverTornAndRetries) {
  // The scheduler under sweep commits through the configured path; the
  // iteration below restores the image with Revert(), which bypasses the
  // scheduler's signature baseline, so elision is pinned off — this sweep is
  // about the commit path, and elided batches never reach it anyway.
  auto storm_options = [this](Program* prog) {
    StormOptions options;
    options.elide_null_flips = false;
    options.commit = [this, prog]() -> Result<BatchCommitResult> {
      Status status = DoCommit(prog);
      if (!status.ok()) {
        return status;
      }
      return BatchCommitResult{};
    };
    return options;
  };

  // Calibrate on a twin: fault-point occurrence counts of one clean
  // coalesced drain, the committed text, and the committed transcript.
  std::unique_ptr<Program> twin = Build();
  if (GetParam().warm_cache) {
    ASSERT_TRUE(DoCommit(twin.get()).ok());
    ASSERT_TRUE(twin->runtime().Revert().ok());
  }
  FaultInjector& injector = FaultInjector::Instance();
  uint64_t probe[kFaultSiteCount];
  for (size_t s = 0; s < kFaultSiteCount; ++s) {
    probe[s] = injector.Count(static_cast<FaultSite>(s));
  }
  {
    CommitScheduler calibrate(twin.get(), storm_options(twin.get()));
    ASSERT_TRUE(calibrate.Submit("feature", 0, /*now=*/0).ok());
    ASSERT_TRUE(calibrate.Submit("feature", 1, /*now=*/0).ok());
    Result<bool> drained = calibrate.Flush(/*now=*/0);
    ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  }
  for (size_t s = 0; s < kFaultSiteCount; ++s) {
    probe[s] = injector.Count(static_cast<FaultSite>(s)) - probe[s];
  }
  const std::vector<uint8_t> committed_text = Text(twin.get());
  const uint64_t committed_transcript = Transcript(twin.get());
  EXPECT_EQ(committed_transcript, 12u);

  std::unique_ptr<Program> program = Build();
  const std::vector<uint8_t> pristine_text = Text(program.get());
  const uint64_t generic_transcript = Transcript(program.get());
  EXPECT_EQ(generic_transcript, 6u);
  if (GetParam().warm_cache) {
    ASSERT_TRUE(DoCommit(program.get()).ok());
    ASSERT_TRUE(program->runtime().Revert().ok());
    ASSERT_EQ(Text(program.get()), pristine_text);
  }

  int recovered = 0;
  int committed = 0;
  for (size_t s = 0; s < kFaultSiteCount; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    if (site == FaultSite::kCrash || site == FaultSite::kCrashTorn) {
      continue;  // journal-append sites; see the main sweep's rationale
    }
    ASSERT_GT(probe[s], 0u) << FaultSiteName(site)
                            << " never crossed — sweep would be vacuous";
    for (uint64_t hit = 0; hit < probe[s]; ++hit) {
      SCOPED_TRACE(std::string(FaultSiteName(site)) + " hit " +
                   std::to_string(hit));
      // A fresh scheduler per iteration, fed a flapping flip: the drain
      // coalesces {0, 1} into one slot before the armed commit runs.
      CommitScheduler scheduler(program.get(), storm_options(program.get()));
      ASSERT_TRUE(scheduler.Submit("feature", 0, /*now=*/0).ok());
      ASSERT_TRUE(scheduler.Submit("feature", 1, /*now=*/0).ok());
      ASSERT_EQ(scheduler.pending_switches(), 1u);
      Result<bool> drained = [&] {
        ScopedFault fault(site, hit);
        return scheduler.Flush(/*now=*/0);
      }();
      if (drained.ok()) {
        // Absorbed fault (seal repair): the batch committed whole.
        ++committed;
        EXPECT_TRUE(scheduler.idle());
        EXPECT_EQ(scheduler.stats().plans_committed, 1u);
        EXPECT_EQ(Text(program.get()), committed_text);
        EXPECT_EQ(Transcript(program.get()), committed_transcript);
      } else {
        // Rolled back: fully generic image, and the queued flip SURVIVED —
        // the pending slot still holds the coalesced batch.
        ++recovered;
        EXPECT_NE(drained.status().ToString().find("rolled back"),
                  std::string::npos)
            << drained.status().ToString();
        EXPECT_EQ(scheduler.pending_switches(), 1u);
        EXPECT_EQ(scheduler.stats().commit_failures, 1u);
        EXPECT_EQ(Text(program.get()), pristine_text);
        EXPECT_EQ(Transcript(program.get()), generic_transcript);

        // The disarmed retry drains the SAME batch to completion.
        Result<bool> retried = scheduler.Flush(/*now=*/100);
        ASSERT_TRUE(retried.ok()) << retried.status().ToString();
        EXPECT_TRUE(*retried);
        EXPECT_TRUE(scheduler.idle());
        EXPECT_EQ(scheduler.stats().plans_committed, 1u);
        EXPECT_EQ(Text(program.get()), committed_text);
      }
      Result<PatchStats> reverted = program->runtime().Revert();
      ASSERT_TRUE(reverted.ok()) << reverted.status().ToString();
      ASSERT_EQ(Text(program.get()), pristine_text);
    }
  }
  EXPECT_GT(recovered, 0);
  EXPECT_GT(committed, 0);
}

std::string ConfigName(const ::testing::TestParamInfo<SweepConfig>& info) {
  std::string name = std::string(DispatchEngineName(info.param.engine)) + "_" +
                     CommitPathName(info.param.path);
  if (info.param.warm_cache) {
    name += "_warmcache";
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FaultSweepTest,
    ::testing::Values(SweepConfig{DispatchEngine::kLegacy, CommitPath::kPlain},
                      SweepConfig{DispatchEngine::kLegacy, CommitPath::kQuiescence},
                      SweepConfig{DispatchEngine::kLegacy, CommitPath::kBreakpoint},
                      SweepConfig{DispatchEngine::kSuperblock, CommitPath::kPlain},
                      SweepConfig{DispatchEngine::kSuperblock,
                                  CommitPath::kQuiescence},
                      SweepConfig{DispatchEngine::kSuperblock,
                                  CommitPath::kBreakpoint},
                      SweepConfig{DispatchEngine::kThreaded, CommitPath::kPlain},
                      SweepConfig{DispatchEngine::kThreaded,
                                  CommitPath::kQuiescence},
                      SweepConfig{DispatchEngine::kThreaded,
                                  CommitPath::kBreakpoint},
                      SweepConfig{DispatchEngine::kLegacy, CommitPath::kWaitFree},
                      SweepConfig{DispatchEngine::kSuperblock,
                                  CommitPath::kWaitFree},
                      SweepConfig{DispatchEngine::kThreaded,
                                  CommitPath::kWaitFree},
                      SweepConfig{DispatchEngine::kLegacy, CommitPath::kPlain,
                                  /*warm_cache=*/true},
                      SweepConfig{DispatchEngine::kSuperblock, CommitPath::kPlain,
                                  /*warm_cache=*/true},
                      SweepConfig{DispatchEngine::kThreaded, CommitPath::kPlain,
                                  /*warm_cache=*/true}),
    ConfigName);

// Class-driven sweep over the FULL switch-domain cross product: instead of
// re-running the fault sweep once per configuration, enumerate the commit
// classes (varprove.h) — configs that commit to bit-identical text — and
// sweep every fault point once per CLASS representative. The class presence
// conditions are verified to partition the config space, so the never-torn
// verdict of each representative covers every member configuration exactly
// once, at sub-linear sweep cost.
TEST(ClassDrivenFaultSweep, EveryClassRepresentativeCoversItsWholeClass) {
  constexpr char kCrossSource[] = R"(
__attribute__((multiverse)) bool feature;
__attribute__((multiverse(0, 1, 2))) int mode;
long count;
__attribute__((multiverse))
void tick() { if (feature) { count = count + 2; } else { count = count + 1; } }
__attribute__((multiverse))
void adjust() { if (mode >= 1) { count = count * 2; } else { count = count + 3; } }
long run(long n) { long i; for (i = 0; i < n; ++i) { tick(); adjust(); } return count; }
)";
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"cross", kCrossSource}}, BuildOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::unique_ptr<Program> program = std::move(*built);
  program->vm().set_stale_fetch_detection(true);
  TxnOptions txn;
  txn.max_attempts = 1;  // each injected fault classifies, no masking retry
  program->runtime().set_txn_options(txn);

  const Result<ConfigSpace> space = CollectConfigSpace(program.get());
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  ASSERT_EQ(space->num_configs, 6u);  // bool x {0,1,2}

  Result<std::vector<CommitClass>> classes =
      EnumerateCommitClasses(program.get(), *space, PlainCommitDriver());
  ASSERT_TRUE(classes.ok()) << classes.status().ToString();
  // Sub-linear: the specializer merges mode's {1,2} under a guard range.
  EXPECT_LT(classes->size(), space->num_configs);

  // The coverage proof: class membership masks partition the cross product —
  // every config is swept by exactly one representative.
  std::vector<PresenceCondition> masks;
  size_t configs_covered = 0;
  for (const CommitClass& cls : *classes) {
    masks.push_back(cls.members);
    configs_covered += cls.members.Count();
  }
  EXPECT_TRUE(IsPartition(masks, space->num_configs));
  EXPECT_EQ(configs_covered, space->num_configs);

  const auto write_assignment = [&](size_t config) {
    const std::vector<int64_t> values = space->Assignment(config);
    for (size_t s = 0; s < space->switches.size(); ++s) {
      ASSERT_TRUE(program
                      ->WriteGlobal(space->switches[s].name, values[s],
                                    static_cast<int>(space->switches[s].width))
                      .ok());
    }
  };
  const auto text = [&] {
    std::vector<uint8_t> bytes(program->image().text_size);
    EXPECT_TRUE(program->vm()
                    .memory()
                    .ReadRaw(program->image().text_base, bytes.data(),
                             bytes.size())
                    .ok());
    return bytes;
  };
  const std::vector<uint8_t> pristine_text = text();

  FaultInjector& injector = FaultInjector::Instance();
  int recovered = 0;
  int completed = 0;
  for (const CommitClass& cls : *classes) {
    SCOPED_TRACE("class rep config " + space->DescribeConfig(cls.rep_config));
    write_assignment(cls.rep_config);

    // Probe this class's fault-point occurrence counts with a clean lap.
    uint64_t probe[kFaultSiteCount];
    for (size_t s = 0; s < kFaultSiteCount; ++s) {
      probe[s] = injector.Count(static_cast<FaultSite>(s));
    }
    ASSERT_TRUE(program->runtime().Commit().ok());
    for (size_t s = 0; s < kFaultSiteCount; ++s) {
      probe[s] = injector.Count(static_cast<FaultSite>(s)) - probe[s];
    }
    const std::vector<uint8_t> committed_text = text();
    ASSERT_TRUE(program->runtime().Revert().ok());
    ASSERT_EQ(text(), pristine_text);

    for (size_t s = 0; s < kFaultSiteCount; ++s) {
      const FaultSite site = static_cast<FaultSite>(s);
      for (uint64_t hit = 0; hit < probe[s]; ++hit) {
        SCOPED_TRACE(std::string(FaultSiteName(site)) + " hit " +
                     std::to_string(hit));
        Status status;
        {
          ScopedFault fault(site, hit);
          status = program->runtime().Commit().status();
        }
        if (status.ok()) {
          ++completed;
          EXPECT_EQ(text(), committed_text);
        } else {
          ++recovered;
          EXPECT_NE(status.ToString().find("rolled back"), std::string::npos)
              << status.ToString();
          EXPECT_EQ(text(), pristine_text);
          Status retried = program->runtime().Commit().status();
          ASSERT_TRUE(retried.ok()) << retried.ToString();
          EXPECT_EQ(text(), committed_text);
        }
        ASSERT_TRUE(program->runtime().Revert().ok());
        ASSERT_EQ(text(), pristine_text);
      }
    }
  }
  EXPECT_GT(recovered, 0);
  EXPECT_GT(completed, 0);
}

// The journaled body-patch path (TryBodyPatch) crosses the same fault points
// as a commit; killing it at every occurrence must leave the generic body
// either fully intact (rolled back) or fully replaced — never torn.
TEST(BodyPatchFaultSweep, EveryFaultPointRollsBackOrCompletes) {
  constexpr char kBodySource[] = R"(
long a_val;
void generic_like() {
  a_val = a_val + 1;
  a_val = a_val * 3;
}
void variant_like() {
  a_val = a_val + 7;
}
long probe() { a_val = 0; generic_like(); return a_val; }
)";
  const auto build = [&] {
    Result<std::unique_ptr<Program>> built =
        Program::Build({{"body", kBodySource}}, BuildOptions{});
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return built.ok() ? std::move(*built) : nullptr;
  };
  const auto patch = [](Program* program) {
    return TryBodyPatch(&program->vm(),
                        program->SymbolAddress("generic_like").value(),
                        program->FunctionSize("generic_like").value(),
                        program->SymbolAddress("variant_like").value(),
                        program->FunctionSize("variant_like").value());
  };

  // Calibrate occurrence counts on a twin.
  std::unique_ptr<Program> twin = build();
  ASSERT_NE(twin, nullptr);
  FaultInjector& injector = FaultInjector::Instance();
  uint64_t probe_counts[kFaultSiteCount];
  for (size_t s = 0; s < kFaultSiteCount; ++s) {
    probe_counts[s] = injector.Count(static_cast<FaultSite>(s));
  }
  Result<bool> clean = patch(twin.get());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_TRUE(*clean);
  for (size_t s = 0; s < kFaultSiteCount; ++s) {
    probe_counts[s] = injector.Count(static_cast<FaultSite>(s)) - probe_counts[s];
  }
  EXPECT_EQ(*twin->Call("probe"), 7u);

  int rolled_back = 0;
  int completed = 0;
  for (size_t s = 0; s < kFaultSiteCount; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    if (probe_counts[s] == 0) {
      continue;  // this site is not on the body-patch path
    }
    for (uint64_t hit = 0; hit < probe_counts[s]; ++hit) {
      SCOPED_TRACE(std::string(FaultSiteName(site)) + " hit " +
                   std::to_string(hit));
      // A fresh program per iteration: the body patch has no revert.
      std::unique_ptr<Program> program = build();
      ASSERT_NE(program, nullptr);
      Result<bool> patched = [&] {
        ScopedFault fault(site, hit);
        return patch(program.get());
      }();
      if (patched.ok()) {
        ++completed;
        ASSERT_TRUE(*patched);
        EXPECT_EQ(*program->Call("probe"), 7u);
      } else {
        ++rolled_back;
        EXPECT_NE(patched.status().ToString().find("rolled back"),
                  std::string::npos)
            << patched.status().ToString();
        EXPECT_EQ(*program->Call("probe"), 3u)
            << "rolled-back body must still behave generically";
        // Disarmed retry on the same image must complete.
        Result<bool> retried = patch(program.get());
        ASSERT_TRUE(retried.ok()) << retried.status().ToString();
        ASSERT_TRUE(*retried);
        EXPECT_EQ(*program->Call("probe"), 7u);
      }
    }
  }
  EXPECT_GT(rolled_back, 0);
  EXPECT_GT(completed, 0);
}

}  // namespace
}  // namespace mv

// Three-engine differential tests: every scenario runs once under the legacy
// per-instruction engine, once under the superblock engine and once under the
// threaded-code tier, and all runs must produce byte-identical transcripts —
// final architectural state of every core (registers, pc, flags), exit
// reasons, fault streams, simulated cycle counts (quarter-cycle ticks, so
// rounding cannot hide a divergence), retired-instruction counts, predictor
// counters and RDTSC readings.
//
// This is the proof obligation for src/vm/superblock.h and src/vm/threaded.h:
// the block-dispatch tiers are allowed to be faster on the host, and nothing
// else.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/core/program.h"
#include "src/isa/isa.h"
#include "src/support/str.h"
#include "src/vm/superblock.h"
#include "src/vm/vm.h"
#include "src/workloads/grep.h"
#include "src/workloads/harness.h"
#include "src/workloads/kernel.h"
#include "src/workloads/libc.h"

namespace mv {
namespace {

constexpr uint64_t kText = 0x1000;
constexpr uint64_t kData = 0x8000;
constexpr uint64_t kStackTop = 0x20000;

// Serializes everything an engine could plausibly get wrong: architectural
// registers and flags, plus every microarchitectural counter the cost model
// maintains. Ticks (not cycles) so quarter-cycle drift is visible.
std::string CoreTranscript(const Vm& vm) {
  std::string out;
  for (int i = 0; i < vm.num_cores(); ++i) {
    const Core& c = vm.core(i);
    out += StrFormat("core %d: pc=%llx halted=%d zf=%d lts=%d ltu=%d int=%d\n", i,
                     (unsigned long long)c.pc, c.halted ? 1 : 0, c.zf ? 1 : 0,
                     c.lt_signed ? 1 : 0, c.lt_unsigned ? 1 : 0,
                     c.interrupts_enabled ? 1 : 0);
    out += "  regs:";
    for (int r = 0; r < kNumRegs; ++r) {
      out += StrFormat(" %llx", (unsigned long long)c.regs[r]);
    }
    out += StrFormat(
        "\n  ticks=%llu instret=%llu condbr=%llu condmiss=%llu icall=%llu "
        "icallmiss=%llu retmiss=%llu atomics=%llu privtraps=%llu bkpts=%llu "
        "stale=%llu\n",
        (unsigned long long)c.ticks, (unsigned long long)c.instret,
        (unsigned long long)c.cond_branches, (unsigned long long)c.cond_mispredicts,
        (unsigned long long)c.indirect_calls,
        (unsigned long long)c.indirect_mispredicts,
        (unsigned long long)c.ret_mispredicts, (unsigned long long)c.atomic_ops,
        (unsigned long long)c.priv_traps, (unsigned long long)c.bkpt_traps,
        (unsigned long long)c.stale_fetches);
  }
  return out;
}

std::string ExitTranscript(const VmExit& exit) {
  std::string out = "exit " + exit.ToString();
  if (exit.kind == VmExit::Kind::kFault) {
    out += StrFormat(" [kind=%d pc=%llx addr=%llx]", static_cast<int>(exit.fault.kind),
                     (unsigned long long)exit.fault.pc,
                     (unsigned long long)exit.fault.addr);
  }
  return out + "\n";
}

// A scenario maps an engine to a transcript. Each test runs the scenario
// once per engine and diffs the transcripts against the legacy reference;
// gtest's string diff pinpoints the first divergent line.
using ScenarioFn = std::function<std::string(DispatchEngine)>;

void ExpectEngineAgreement(const ScenarioFn& scenario) {
  const std::string legacy = scenario(DispatchEngine::kLegacy);
  const std::string superblock = scenario(DispatchEngine::kSuperblock);
  EXPECT_EQ(legacy, superblock) << "legacy vs superblock";
  const std::string threaded = scenario(DispatchEngine::kThreaded);
  EXPECT_EQ(legacy, threaded) << "legacy vs threaded";
}

// Raw-VM harness mirroring tests/vm_test.cc, plus an unflushed-write knob
// for the staleness scenarios.
class RawVm {
 public:
  explicit RawVm(DispatchEngine engine, int cores = 1) : vm_(0x40000, cores) {
    vm_.SetDispatchEngine(engine);
    EXPECT_TRUE(vm_.memory().Protect(kText, 0x4000, kPermRead | kPermExec).ok());
    EXPECT_TRUE(vm_.memory().Protect(kData, 0x4000, kPermRead | kPermWrite).ok());
    EXPECT_TRUE(
        vm_.memory().Protect(0x10000, kStackTop - 0x10000, kPermRead | kPermWrite).ok());
  }

  uint64_t Assemble(const std::vector<Insn>& insns, uint64_t addr, bool flush = true) {
    std::vector<uint8_t> bytes;
    for (const Insn& insn : insns) {
      Result<int> size = Encode(insn, &bytes);
      EXPECT_TRUE(size.ok()) << size.status().ToString();
    }
    EXPECT_TRUE(vm_.memory().WriteRaw(addr, bytes.data(), bytes.size()).ok());
    if (flush) {
      vm_.FlushIcache(addr, bytes.size());
    }
    return addr + bytes.size();
  }

  void Reset(int core = 0, uint64_t pc = kText) {
    Core& c = vm_.core(core);
    c.pc = pc;
    c.halted = false;
    c.regs[kRegSP] = kStackTop - 16 - 0x1000 * static_cast<uint64_t>(core);
  }

  VmExit Run(int core = 0, uint64_t max_steps = 100000) {
    return vm_.Run(core, max_steps);
  }

  Vm& vm() { return vm_; }

 private:
  Vm vm_;
};

// ---------------------------------------------------------------------------
// Straight-line and looping code: registers, flags, predictor counters.

TEST(DispatchDifferentialTest, WarmLoopWithCallsAndStack) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    RawVm raw(engine);
    // Callee at kText+0x100: r0 += r1; ret.
    raw.Assemble({MakeAluRR(Op::kAdd, 0, 1), MakeSimple(Op::kRet)}, kText + 0x100);
    // Loop 200 times: call callee (rel and indirect), push/pop, xchg.
    const int32_t rel = static_cast<int32_t>((kText + 0x100) - (kText + 20 + 5));
    raw.Assemble(
        {
            MakeMovRI(2, 200),           // 10 bytes
            MakeMovRI(3, kText + 0x100),  // 10 bytes at +10
            MakeCall(rel),               // 5 bytes at +20
            MakeCallR(3),                // 5 bytes at +25
            MakePush(0),                 // 2 bytes at +30
            MakePop(4),                  // 2 bytes at +32
            MakeMovRI(5, kData),         // 10 bytes at +34
            MakeAluRR(Op::kXchg, 4, 5),  // 3 bytes at +44
            MakeAluRI(Op::kSubI, 2, 1),  // 6 bytes at +47
            MakeCmpI(2, 0),              // 6 bytes at +53
            MakeJcc(Cond::kNe, -45),     // 6 bytes at +59: back to +20
            MakeSimple(Op::kHlt),
        },
        kText);
    raw.Reset();
    const VmExit exit = raw.Run();
    std::string transcript = ExitTranscript(exit) + CoreTranscript(raw.vm());
    if (engine != DispatchEngine::kLegacy) {
      EXPECT_GT(raw.vm().superblocks_built(), 0u);
    }
    if (engine == DispatchEngine::kThreaded) {
      // 200 iterations through an 8-entry promotion threshold: the hot loop
      // must actually have been compiled.
      EXPECT_GT(raw.vm().threaded_promotions(), 0u);
    }
    return transcript;
  });
}

TEST(DispatchDifferentialTest, AluAndMemoryWidths) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    RawVm raw(engine);
    raw.Assemble(
        {
            MakeMovRI(0, -123456789), MakeMovRI(1, kData),
            MakeStore(Op::kSt64, 0, 1, 0), MakeStore(Op::kSt32, 0, 1, 8),
            MakeStore(Op::kSt16, 0, 1, 12), MakeStore(Op::kSt8, 0, 1, 14),
            MakeLoad(Op::kLd64, 2, 1, 0), MakeLoad(Op::kLd32U, 3, 1, 8),
            MakeLoad(Op::kLd32S, 4, 1, 8), MakeLoad(Op::kLd16U, 5, 1, 12),
            MakeLoad(Op::kLd16S, 6, 1, 12), MakeLoad(Op::kLd8U, 7, 1, 14),
            MakeLoad(Op::kLd8S, 8, 1, 14), MakeAluRR(Op::kMul, 2, 4),
            MakeAluRR(Op::kSDiv, 2, 5), MakeAluRR(Op::kXor, 3, 6),
            MakeShiftI(Op::kShlI, 7, 3), MakeShiftI(Op::kSarI, 4, 2),
            MakeUnary(Op::kNot, 3), MakeUnary(Op::kNeg, 5),
            MakeCmp(2, 3), MakeSetCC(Cond::kLt, 9),
            MakeSimple(Op::kHlt),
        },
        kText);
    raw.Reset();
    const VmExit exit = raw.Run();
    return ExitTranscript(exit) + CoreTranscript(raw.vm());
  });
}

TEST(DispatchDifferentialTest, RdtscReadsIdenticalMidLoop) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    RawVm raw(engine);
    // Store one RDTSC reading per iteration; the readings depend on the tick
    // counter at the exact instruction boundary, so any accounting skew in
    // the block walk shows up as a different value in memory.
    raw.Assemble(
        {
            MakeMovRI(0, 8),              // iterations, 10 bytes
            MakeMovRI(1, kData),          // 10 bytes at +10
            MakeRdtsc(2),                 // 2 bytes at +20
            MakeStore(Op::kSt64, 2, 1, 0),  // 7 bytes at +22
            MakeAluRI(Op::kAddI, 1, 8),   // 6 bytes at +29
            MakeAluRI(Op::kSubI, 0, 1),   // 6 bytes at +35
            MakeCmpI(0, 0),               // 6 bytes at +41
            MakeJcc(Cond::kNe, -33),      // 6 bytes at +47: back to +20
            MakeSimple(Op::kHlt),
        },
        kText);
    raw.Reset();
    const VmExit exit = raw.Run();
    std::string transcript = ExitTranscript(exit);
    for (int i = 0; i < 8; ++i) {
      uint64_t value = 0;
      EXPECT_TRUE(raw.vm().memory().ReadRaw(kData + 8 * static_cast<uint64_t>(i), &value, 8).ok());
      transcript += StrFormat("rdtsc[%d]=%llu\n", i, (unsigned long long)value);
    }
    return transcript + CoreTranscript(raw.vm());
  });
}

// ---------------------------------------------------------------------------
// Exit reasons and fault streams.

TEST(DispatchDifferentialTest, FaultStreams) {
  // Each program faults mid-superblock; the fault pc, address and the state
  // at the fault (pc unadvanced, no ticks charged for the faulting insn)
  // must agree. Faults are resumable: skip the faulting instruction and keep
  // going so one scenario observes a *stream* of faults, not just the first.
  ExpectEngineAgreement([](DispatchEngine engine) {
    RawVm raw(engine);
    raw.Assemble(
        {
            MakeMovRI(0, 100),            // 10 bytes
            MakeMovRI(1, 0),              // 10 bytes at +10
            MakeAluRR(Op::kUDiv, 0, 1),   // div by zero, 3 bytes at +20
            MakeMovRI(2, 0x3f000),        // unmapped, 10 bytes at +23
            MakeLoad(Op::kLd64, 3, 2, 0),  // access fault, 6 bytes at +33
            MakeStore(Op::kSt64, 3, 2, 0),  // access fault, 6 bytes at +39
            MakeSimple(Op::kHlt),
        },
        kText);
    raw.Reset();
    std::string transcript;
    for (int i = 0; i < 8; ++i) {
      const VmExit exit = raw.Run();
      transcript += ExitTranscript(exit);
      transcript += CoreTranscript(raw.vm());
      if (exit.kind != VmExit::Kind::kFault) {
        break;
      }
      // Resume past the faulting instruction (re-decode to get its size).
      uint8_t bytes[10] = {};
      EXPECT_TRUE(raw.vm().memory().ReadRaw(exit.fault.pc, bytes, sizeof(bytes)).ok());
      Result<Insn> insn = Decode(bytes, sizeof(bytes));
      EXPECT_TRUE(insn.ok());
      raw.vm().core(0).pc = exit.fault.pc + insn->size;
    }
    return transcript;
  });
}

TEST(DispatchDifferentialTest, BreakpointVmcallAndStepLimitExits) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    std::string transcript;
    {
      // BKPT parks pc on the breakpoint byte — the livepatch protocols
      // depend on the exact pc.
      RawVm raw(engine);
      raw.Assemble({MakeMovRI(0, 7), MakeSimple(Op::kBkpt), MakeSimple(Op::kHlt)},
                   kText);
      raw.Reset();
      transcript += ExitTranscript(raw.Run()) + CoreTranscript(raw.vm());
    }
    {
      RawVm raw(engine);
      raw.Assemble({MakeMovRI(0, 42), MakeVmCall(9), MakeSimple(Op::kHlt)}, kText);
      raw.Reset();
      const VmExit exit = raw.Run();
      transcript += ExitTranscript(exit);
      transcript += StrFormat("vmcall_code=%d\n", exit.vmcall_code);
      transcript += CoreTranscript(raw.vm());
    }
    {
      // Step limit must land on the same instruction boundary even when the
      // budget runs out in the middle of a superblock.
      RawVm raw(engine);
      raw.Assemble({MakeJmp(-5)}, kText);
      raw.Reset();
      transcript += ExitTranscript(raw.Run(0, 173)) + CoreTranscript(raw.vm());
      // Resuming after a mid-block step-limit exit must also agree.
      transcript += ExitTranscript(raw.Run(0, 40)) + CoreTranscript(raw.vm());
    }
    {
      // Zero-budget run on a halted core: legacy reports kStepLimit.
      RawVm raw(engine);
      raw.Assemble({MakeSimple(Op::kHlt)}, kText);
      raw.Reset();
      transcript += ExitTranscript(raw.Run());
      transcript += ExitTranscript(raw.Run(0, 0));
      transcript += ExitTranscript(raw.Run(0, 10));  // halted: kHalt again
      transcript += CoreTranscript(raw.vm());
    }
    return transcript;
  });
}

// ---------------------------------------------------------------------------
// Multi-core round-robin interleaving: the superblock engine must not change
// step granularity — Step retires exactly one instruction per call.

TEST(DispatchDifferentialTest, TwoCoreRoundRobinStepTrace) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    RawVm raw(engine, 2);
    // Core 0 increments [kData] 50 times; core 1 spins XCHG-ing a flag and
    // accumulating reads of the shared counter, so the exact interleaving is
    // visible in its register file.
    raw.Assemble(
        {
            MakeMovRI(0, 50),             // 10
            MakeMovRI(1, kData),          // 10 at +10
            MakeLoad(Op::kLd64, 2, 1, 0),  // 7 at +20
            MakeAluRI(Op::kAddI, 2, 1),   // 6 at +27
            MakeStore(Op::kSt64, 2, 1, 0),  // 7 at +33
            MakeAluRI(Op::kSubI, 0, 1),   // 6 at +40
            MakeCmpI(0, 0),               // 6 at +46
            MakeJcc(Cond::kNe, -38),      // 6 at +52: back to +20
            MakeSimple(Op::kHlt),
        },
        kText);
    raw.Assemble(
        {
            MakeMovRI(0, 40),             // 10
            MakeMovRI(1, kData),          // 10 at +10
            MakeMovRI(3, 1),              // 10 at +20
            MakeAluRR(Op::kXchg, 3, 1),   // 3 at +30 (atomic, counts atomics)
            MakeLoad(Op::kLd64, 2, 1, 0),  // 7 at +33
            MakeAluRR(Op::kAdd, 4, 2),    // 3 at +40
            MakeAluRI(Op::kSubI, 0, 1),   // 6 at +43
            MakeCmpI(0, 0),               // 6 at +49
            MakeJcc(Cond::kNe, -31),      // 6 at +55: back to +30
            MakeSimple(Op::kHlt),
        },
        kText + 0x200);
    raw.Reset(0, kText);
    raw.Reset(1, kText + 0x200);
    std::string transcript;
    bool done[2] = {false, false};
    for (int iter = 0; iter < 2000 && !(done[0] && done[1]); ++iter) {
      for (int core = 0; core < 2; ++core) {
        if (done[core]) {
          continue;
        }
        std::optional<VmExit> exit = raw.vm().Step(core);
        const Core& c = raw.vm().core(core);
        // Per-step trace: any granularity change diverges immediately.
        transcript += StrFormat("c%d pc=%llx t=%llu\n", core,
                                (unsigned long long)c.pc, (unsigned long long)c.ticks);
        if (exit.has_value()) {
          transcript += ExitTranscript(*exit);
          done[core] = true;
        }
      }
    }
    return transcript + CoreTranscript(raw.vm());
  });
}

// ---------------------------------------------------------------------------
// Staleness semantics: the icache is deliberately non-coherent, and the
// superblock engine must reproduce its hazards exactly — including the
// kStaleFetch verdicts when detection is armed.

TEST(DispatchDifferentialTest, SuppressedFlushKeepsStaleDecode) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    RawVm raw(engine);
    // v1: r0 = 111. Execute to warm the caches.
    raw.Assemble({MakeMovRI(0, 111), MakeSimple(Op::kHlt)}, kText);
    raw.Reset();
    std::string transcript = ExitTranscript(raw.Run());
    // Patch to r0 = 222 WITHOUT flushing: both engines must keep executing
    // the stale 111 decode.
    raw.Assemble({MakeMovRI(0, 222), MakeSimple(Op::kHlt)}, kText, /*flush=*/false);
    raw.Reset();
    transcript += ExitTranscript(raw.Run());
    transcript += CoreTranscript(raw.vm());
    // After the flush broadcast, the new bytes take effect on both engines.
    raw.vm().FlushIcache(kText, 16);
    raw.Reset();
    transcript += ExitTranscript(raw.Run());
    return transcript + CoreTranscript(raw.vm());
  });
}

TEST(DispatchDifferentialTest, StaleFetchDetectionFiresMidSuperblock) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    RawVm raw(engine);
    raw.vm().set_stale_fetch_detection(true);
    // Three-instruction straight line; patch only the MIDDLE instruction
    // without a flush, so under the superblock engine the stale fetch fires
    // on the second element of a cached block, not at block entry.
    raw.Assemble(
        {MakeMovRI(0, 1), MakeMovRI(1, 2), MakeMovRI(2, 3), MakeSimple(Op::kHlt)},
        kText);
    raw.Reset();
    std::string transcript = ExitTranscript(raw.Run());
    raw.Assemble({MakeMovRI(1, 99)}, kText + 10, /*flush=*/false);
    raw.Reset();
    const VmExit exit = raw.Run();
    transcript += ExitTranscript(exit);
    transcript += CoreTranscript(raw.vm());
    // The detector reports and keeps reporting on every re-fetch.
    raw.Reset();
    transcript += ExitTranscript(raw.Run());
    transcript += CoreTranscript(raw.vm());
    // A flush heals it; the patched instruction then executes.
    raw.vm().FlushIcache(kText + 10, 10);
    raw.Reset();
    transcript += ExitTranscript(raw.Run());
    return transcript + CoreTranscript(raw.vm());
  });
}

TEST(DispatchDifferentialTest, PartialFlushDetectsOnlyUnflushedRange) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    RawVm raw(engine);
    raw.vm().set_stale_fetch_detection(true);
    raw.Assemble(
        {MakeMovRI(0, 1), MakeMovRI(1, 2), MakeMovRI(2, 3), MakeSimple(Op::kHlt)},
        kText);
    raw.Reset();
    std::string transcript = ExitTranscript(raw.Run());
    // Patch insns at +0 and +10, but flush only the first: the verdict must
    // fire exactly once, at +10, under both engines.
    raw.Assemble({MakeMovRI(0, 77), MakeMovRI(1, 88)}, kText, /*flush=*/false);
    raw.vm().FlushIcache(kText, 10);
    raw.Reset();
    transcript += ExitTranscript(raw.Run());
    return transcript + CoreTranscript(raw.vm());
  });
}

// ---------------------------------------------------------------------------
// Mid-run engine switches: the icache carries staleness across a switch, so
// switching engines mid-run must behave exactly like never switching.

TEST(DispatchDifferentialTest, MidRunEngineSwitchMatchesPureRuns) {
  // Reference: the whole scenario under one engine.
  auto scenario = [](Vm& vm, RawVm& raw, const std::function<void()>& at_midpoint) {
    raw.Reset();
    std::string transcript;
    // Run 60 steps of a 10-iteration loop, switch (or not), finish.
    transcript += ExitTranscript(raw.Run(0, 37));
    at_midpoint();
    transcript += ExitTranscript(raw.Run(0, 100000));
    transcript += CoreTranscript(vm);
    return transcript;
  };
  auto build = [](RawVm& raw) {
    raw.Assemble(
        {
            MakeMovRI(0, 10),
            MakeMovRI(3, 0),
            MakeAluRI(Op::kAddI, 3, 7),   // at +20
            MakeAluRI(Op::kSubI, 0, 1),
            MakeCmpI(0, 0),
            MakeJcc(Cond::kNe, -24),      // back to +20
            MakeSimple(Op::kHlt),
        },
        kText);
  };

  RawVm pure(DispatchEngine::kLegacy);
  build(pure);
  const std::string reference = scenario(pure.vm(), pure, [] {});

  constexpr DispatchEngine kEngines[] = {DispatchEngine::kLegacy,
                                         DispatchEngine::kSuperblock,
                                         DispatchEngine::kThreaded};
  for (DispatchEngine start : kEngines) {
    for (DispatchEngine other : kEngines) {
      if (start == other) {
        continue;
      }
      RawVm switched(start);
      build(switched);
      const std::string transcript = scenario(
          switched.vm(), switched, [&] { switched.vm().SetDispatchEngine(other); });
      EXPECT_EQ(reference, transcript)
          << "switch " << DispatchEngineName(start) << " -> "
          << DispatchEngineName(other);
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-toolchain programs: compile mvc source, run under both engines.

TEST(DispatchDifferentialTest, Fig2ProgramAllSwitchAssignments) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    constexpr char kSource[] = R"(
__attribute__((multiverse)) bool A;
__attribute__((multiverse)) int B;

int calc_calls;
int log_calls;

void calc() { calc_calls = calc_calls + 1; }
void log_event() { log_calls = log_calls + 1; }

__attribute__((multiverse))
void multi() {
  if (A) {
    calc();
    if (B) {
      log_event();
    }
  }
}

void foo() {
  multi();
}
)";
    BuildOptions options;
    Result<std::unique_ptr<Program>> built =
        Program::Build({{"fig2", kSource}}, options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    std::unique_ptr<Program> program = std::move(*built);
    program->vm().SetDispatchEngine(engine);
    std::string transcript;
    for (int64_t a = 0; a <= 1; ++a) {
      for (int64_t b = 0; b <= 1; ++b) {
        EXPECT_TRUE(program->WriteGlobal("A", a, 1).ok());
        EXPECT_TRUE(program->WriteGlobal("B", b, 4).ok());
        Result<uint64_t> result = program->Call("foo");
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        transcript += StrFormat(
            "a=%lld b=%lld calc=%lld log=%lld\n", (long long)a, (long long)b,
            (long long)program->ReadGlobal("calc_calls", 4).value(),
            (long long)program->ReadGlobal("log_calls", 4).value());
      }
    }
    return transcript + CoreTranscript(program->vm());
  });
}

// ---------------------------------------------------------------------------
// The paper's case-study workloads, end to end. These push millions of
// instructions through both engines, covering the compiled-code idioms the
// raw scenarios cannot (multiverse dispatch, runtime commit, livepatching).

TEST(DispatchDifferentialTest, SpinlockKernelWorkload) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    Result<std::unique_ptr<Program>> built =
        BuildSpinlockKernel(SpinBinding::kDynamicIf);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    std::unique_ptr<Program> program = std::move(*built);
    program->vm().SetDispatchEngine(engine);
    std::string transcript;
    for (bool smp : {false, true}) {
      Status status = SetSmpMode(program.get(), SpinBinding::kDynamicIf, smp);
      EXPECT_TRUE(status.ok()) << status.ToString();
      Result<double> pair = MeasureSpinlockPair(program.get());
      EXPECT_TRUE(pair.ok()) << pair.status().ToString();
      transcript += StrFormat("smp=%d pair=%.17g\n", smp ? 1 : 0, pair.value());
    }
    return transcript + CoreTranscript(program->vm());
  });
}

TEST(DispatchDifferentialTest, GrepWorkload) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    Result<std::unique_ptr<Program>> built = BuildGrep();
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    std::unique_ptr<Program> program = std::move(*built);
    program->vm().SetDispatchEngine(engine);
    std::string transcript;
    for (bool commit : {false, true}) {
      Status status = SetGrepMode(program.get(), 1, commit);
      EXPECT_TRUE(status.ok()) << status.ToString();
      Result<GrepRunResult> result = RunGrep(program.get());
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      transcript += StrFormat("commit=%d cycles=%.17g matches=%llu\n", commit ? 1 : 0,
                              result->cycles, (unsigned long long)result->matches);
    }
    return transcript + CoreTranscript(program->vm());
  });
}

TEST(DispatchDifferentialTest, MuslLibcWorkload) {
  ExpectEngineAgreement([](DispatchEngine engine) {
    Result<std::unique_ptr<Program>> built = BuildLibc();
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    std::unique_ptr<Program> program = std::move(*built);
    program->vm().SetDispatchEngine(engine);
    Status status = SetThreadMode(program.get(), 0, /*commit=*/true);
    EXPECT_TRUE(status.ok()) << status.ToString();
    Result<LibcBenchResult> result = MeasureLibc(program.get());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::string transcript =
        StrFormat("random=%.17g malloc0=%.17g malloc1=%.17g fputc=%.17g\n",
                  result->random_cycles, result->malloc0_cycles,
                  result->malloc1_cycles, result->fputc_cycles);
    return transcript + CoreTranscript(program->vm());
  });
}

}  // namespace
}  // namespace mv

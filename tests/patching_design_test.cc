// Tests for the low-level patching utilities and the §7.1 design-space
// artifacts: tiny-body extraction rules, body patching (the rejected
// alternative), and the VM trace hook used for patching forensics.
#include <gtest/gtest.h>

#include "src/core/patching.h"
#include "src/core/program.h"
#include "src/isa/isa.h"

namespace mv {
namespace {

std::unique_ptr<Program> Build(const std::string& source) {
  BuildOptions options;
  Result<std::unique_ptr<Program>> program = Program::Build({{"pd", source}}, options);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? std::move(*program) : nullptr;
}

TEST(TinyBodyTest, EmptyBodyExtractsToZeroBytes) {
  std::unique_ptr<Program> program = Build("void f() {}");
  ASSERT_NE(program, nullptr);
  std::optional<std::vector<uint8_t>> body =
      ExtractTinyBody(program->vm().memory(), program->SymbolAddress("f").value());
  ASSERT_TRUE(body.has_value());
  EXPECT_TRUE(body->empty());
}

TEST(TinyBodyTest, CallsDisqualify) {
  std::unique_ptr<Program> program = Build(R"(
void g() {}
void f() { g(); }
)");
  ASSERT_NE(program, nullptr);
  EXPECT_FALSE(ExtractTinyBody(program->vm().memory(),
                               program->SymbolAddress("f").value())
                   .has_value());
}

TEST(TinyBodyTest, MultipleTinyInstructionsFit) {
  std::unique_ptr<Program> program = Build(R"(
void f() {
  __builtin_cli();
  __builtin_sti();
  __builtin_pause();
}
)");
  ASSERT_NE(program, nullptr);
  std::optional<std::vector<uint8_t>> body =
      ExtractTinyBody(program->vm().memory(), program->SymbolAddress("f").value());
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->size(), 3u);
}

TEST(BodyPatchTest, StraightLineVariantIsApplicable) {
  std::unique_ptr<Program> program = Build(R"(
long a_val;
void generic_like() {
  a_val = a_val + 1;
  a_val = a_val * 3;
}
void variant_like() {
  a_val = a_val + 7;
}
long probe() { generic_like(); return a_val; }
)");
  ASSERT_NE(program, nullptr);
  ASSERT_TRUE(program->WriteGlobal("a_val", 0, 8).ok());
  EXPECT_EQ(*program->Call("probe"), 3u);  // (0+1)*3

  Result<bool> patched = TryBodyPatch(
      &program->vm(), program->SymbolAddress("generic_like").value(),
      program->FunctionSize("generic_like").value(),
      program->SymbolAddress("variant_like").value(),
      program->FunctionSize("variant_like").value());
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  EXPECT_TRUE(*patched);

  ASSERT_TRUE(program->WriteGlobal("a_val", 0, 8).ok());
  EXPECT_EQ(*program->Call("probe"), 7u) << "generic body must now behave like variant";
}

TEST(BodyPatchTest, PcRelativeInstructionsAreRefused) {
  std::unique_ptr<Program> program = Build(R"(
long a_val;
void helper() { a_val = a_val + 1; }
void generic_like() {
  a_val = a_val + 1;
  a_val = a_val + 2;
  a_val = a_val + 3;
  a_val = a_val + 4;
}
void variant_with_call() { helper(); }
void variant_with_branch(long n) {
  while (n > 0) { n = n - 1; }
}
)");
  ASSERT_NE(program, nullptr);
  const uint64_t gaddr = program->SymbolAddress("generic_like").value();
  const uint64_t gsize = program->FunctionSize("generic_like").value();

  Result<bool> with_call =
      TryBodyPatch(&program->vm(), gaddr, gsize,
                   program->SymbolAddress("variant_with_call").value(),
                   program->FunctionSize("variant_with_call").value());
  ASSERT_TRUE(with_call.ok());
  EXPECT_FALSE(*with_call) << "bodies containing CALL rel32 need relocation";

  Result<bool> with_branch =
      TryBodyPatch(&program->vm(), gaddr, gsize,
                   program->SymbolAddress("variant_with_branch").value(),
                   program->FunctionSize("variant_with_branch").value());
  ASSERT_TRUE(with_branch.ok());
  EXPECT_FALSE(*with_branch) << "bodies containing Jcc need relocation";
}

TEST(BodyPatchTest, OversizedVariantIsRefused) {
  std::unique_ptr<Program> program = Build(R"(
long a_val;
void small_generic() { a_val = 1; }
void big_variant() {
  a_val = a_val + 1;
  a_val = a_val + 2;
  a_val = a_val + 3;
  a_val = a_val + 4;
  a_val = a_val + 5;
  a_val = a_val + 6;
}
)");
  ASSERT_NE(program, nullptr);
  Result<bool> patched = TryBodyPatch(
      &program->vm(), program->SymbolAddress("small_generic").value(),
      program->FunctionSize("small_generic").value(),
      program->SymbolAddress("big_variant").value(),
      program->FunctionSize("big_variant").value());
  ASSERT_TRUE(patched.ok());
  EXPECT_FALSE(*patched);
}

TEST(TraceHookTest, ObservesExecutedInstructions) {
  std::unique_ptr<Program> program = Build(R"(
void f() {
  __builtin_cli();
  __builtin_sti();
}
)");
  ASSERT_NE(program, nullptr);
  std::vector<Op> executed;
  program->vm().set_trace_hook(
      [&](const Vm::TraceEntry& entry) { executed.push_back(entry.insn.op); });
  ASSERT_TRUE(program->Call("f").ok());
  // cli, sti, ret, plus the halt stub.
  ASSERT_GE(executed.size(), 4u);
  EXPECT_EQ(executed[0], Op::kCli);
  EXPECT_EQ(executed[1], Op::kSti);
  EXPECT_EQ(executed[2], Op::kRet);
  EXPECT_EQ(executed.back(), Op::kHlt);

  // Clearing the hook stops tracing.
  program->vm().set_trace_hook(nullptr);
  const size_t count = executed.size();
  ASSERT_TRUE(program->Call("f").ok());
  EXPECT_EQ(executed.size(), count);
}

TEST(TraceHookTest, TraceSeesPatchedCode) {
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) int flag;
__attribute__((multiverse))
void toggle() {
  if (flag) {
    __builtin_cli();
  }
}
void enter() { toggle(); }
)");
  ASSERT_NE(program, nullptr);
  ASSERT_TRUE(program->WriteGlobal("flag", 0, 4).ok());
  ASSERT_TRUE(program->runtime().Commit().ok());
  // flag=0: the call site is NOPed; the trace must show NOPs, not a CALL.
  int nops = 0;
  int calls = 0;
  program->vm().set_trace_hook([&](const Vm::TraceEntry& entry) {
    nops += entry.insn.op == Op::kNop ? 1 : 0;
    calls += entry.insn.op == Op::kCall ? 1 : 0;
  });
  ASSERT_TRUE(program->Call("enter").ok());
  EXPECT_EQ(nops, 5);
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace mv

// Tests for the multiverse runtime library (paper §4): descriptor parsing,
// variant selection through guards, call-site patching, prologue redirection
// (completeness), tiny-body inlining, W^X handling, revert fidelity, and the
// constrained API variants of Table 1.
#include <gtest/gtest.h>

#include "src/core/abi.h"
#include "src/core/descriptors.h"
#include "src/core/program.h"
#include "src/isa/isa.h"
#include "src/support/rng.h"

namespace mv {
namespace {

std::unique_ptr<Program> Build(const std::string& source,
                               BuildOptions options = BuildOptions()) {
  Result<std::unique_ptr<Program>> program = Program::Build({{"rt", source}}, options);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program.ok() ? std::move(*program) : nullptr;
}

// ---------------------------------------------------------------------------
// Descriptor tables.

TEST(DescriptorTest, ParsedTablesMatchSource) {
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) bool a;
__attribute__((multiverse(3, 9))) int b;
long out;
__attribute__((multiverse)) void f() { if (a) { out = b; } }
void caller1() { f(); }
void caller2() { f(); f(); }
)");
  ASSERT_NE(program, nullptr);
  const DescriptorTable& table = program->runtime().table();

  ASSERT_EQ(table.variables.size(), 2u);
  EXPECT_EQ(table.variables[0].name, "a");
  EXPECT_EQ(table.variables[0].width, 1u);
  EXPECT_FALSE(table.variables[0].is_signed);
  EXPECT_EQ(table.variables[1].name, "b");
  EXPECT_EQ(table.variables[1].width, 4u);
  EXPECT_TRUE(table.variables[1].is_signed);

  ASSERT_EQ(table.functions.size(), 1u);
  EXPECT_EQ(table.functions[0].name, "f");
  EXPECT_EQ(table.functions[0].generic_addr,
            program->SymbolAddress("f").value());
  // 2 x 2 cross product; a=0 merges over b: 3 kept bodies.
  EXPECT_EQ(table.functions[0].variants.size(), 3u);

  EXPECT_EQ(table.callsites.size(), 3u);
  for (const RtCallsite& site : table.callsites) {
    EXPECT_EQ(site.callee_addr, table.functions[0].generic_addr);
  }
}

TEST(DescriptorTest, SizeFormulaMatchesPaper) {
  EXPECT_EQ(DescriptorSectionBytes(1, 0, {}, {}), 32u);
  EXPECT_EQ(DescriptorSectionBytes(0, 3, {}, {}), 48u);
  // One function, two variants with 1 and 2 guards:
  // 48 + (32 + 16) + (32 + 32) = 160.
  EXPECT_EQ(DescriptorSectionBytes(0, 0, {2}, {1, 2}), 160u);
}

TEST(DescriptorTest, SectionsMatchFormulaExactly) {
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) bool a;
long out;
__attribute__((multiverse)) void f() { if (a) { out = 1; } }
void c1() { f(); }
)");
  ASSERT_NE(program, nullptr);
  const DescriptorTable& table = program->runtime().table();
  std::vector<size_t> variants;
  std::vector<size_t> guards;
  for (const RtFunction& fn : table.functions) {
    variants.push_back(fn.variants.size());
    for (const RtVariant& v : fn.variants) {
      guards.push_back(v.guards.size());
    }
  }
  uint64_t actual = 0;
  for (const char* name :
       {".mv.variables", ".mv.functions", ".mv.variants", ".mv.guards", ".mv.callsites"}) {
    auto it = program->image().sections.find(name);
    if (it != program->image().sections.end()) {
      actual += it->second.size;
    }
  }
  EXPECT_EQ(actual, DescriptorSectionBytes(table.variables.size(), table.callsites.size(),
                                           variants, guards));
}

// ---------------------------------------------------------------------------
// Commit / revert semantics.

constexpr char kGuardedSource[] = R"(
__attribute__((multiverse(0, 1, 2, 3))) int mode;
long out;
__attribute__((multiverse))
void apply() {
  if (mode >= 2) {
    out = out + 100;
  } else {
    if (mode == 1) {
      out = out + 10;
    } else {
      out = out + 1;
    }
  }
}
void run() { apply(); }
)";

TEST(RuntimeTest, CommitSelectsVariantByGuards) {
  std::unique_ptr<Program> program = Build(kGuardedSource);
  ASSERT_NE(program, nullptr);
  const uint64_t generic = program->SymbolAddress("apply").value();

  for (int64_t mode = 0; mode <= 3; ++mode) {
    ASSERT_TRUE(program->WriteGlobal("mode", mode, 4).ok());
    Result<PatchStats> commit = program->runtime().Commit();
    ASSERT_TRUE(commit.ok()) << commit.status().ToString();
    EXPECT_EQ(commit->generic_fallbacks, 0);
    EXPECT_NE(program->runtime().InstalledVariant(generic), 0u);

    ASSERT_TRUE(program->WriteGlobal("out", 0, 8).ok());
    ASSERT_TRUE(program->Call("run").ok());
    const int64_t expected = mode >= 2 ? 100 : (mode == 1 ? 10 : 1);
    EXPECT_EQ(program->ReadGlobal("out").value(), expected) << "mode=" << mode;
  }
}

TEST(RuntimeTest, MergedRangeGuardCoversBothValues) {
  std::unique_ptr<Program> program = Build(kGuardedSource);
  ASSERT_NE(program, nullptr);
  const uint64_t generic = program->SymbolAddress("apply").value();
  // mode=2 and mode=3 produce the same body; committing either must install
  // the same variant address.
  ASSERT_TRUE(program->WriteGlobal("mode", 2, 4).ok());
  ASSERT_TRUE(program->runtime().Commit().ok());
  const uint64_t v2 = program->runtime().InstalledVariant(generic);
  ASSERT_TRUE(program->WriteGlobal("mode", 3, 4).ok());
  ASSERT_TRUE(program->runtime().Commit().ok());
  const uint64_t v3 = program->runtime().InstalledVariant(generic);
  EXPECT_EQ(v2, v3);
  EXPECT_NE(v2, 0u);
}

TEST(RuntimeTest, RevertRestoresExactBytes) {
  std::unique_ptr<Program> program = Build(kGuardedSource);
  ASSERT_NE(program, nullptr);

  // Snapshot the whole text segment before committing.
  const uint64_t text_base = program->image().text_base;
  const uint64_t text_size = program->image().text_size;
  std::vector<uint8_t> before(text_size);
  ASSERT_TRUE(program->vm().memory().ReadRaw(text_base, before.data(), text_size).ok());

  ASSERT_TRUE(program->WriteGlobal("mode", 1, 4).ok());
  ASSERT_TRUE(program->runtime().Commit().ok());
  std::vector<uint8_t> committed(text_size);
  ASSERT_TRUE(
      program->vm().memory().ReadRaw(text_base, committed.data(), text_size).ok());
  EXPECT_NE(before, committed) << "commit must actually patch the text";

  ASSERT_TRUE(program->runtime().Revert().ok());
  std::vector<uint8_t> after(text_size);
  ASSERT_TRUE(program->vm().memory().ReadRaw(text_base, after.data(), text_size).ok());
  EXPECT_EQ(before, after) << "revert must restore the pristine text bytes";
}

TEST(RuntimeTest, OutOfDomainSignalsAndReverts) {
  std::unique_ptr<Program> program = Build(kGuardedSource);
  ASSERT_NE(program, nullptr);
  const uint64_t generic = program->SymbolAddress("apply").value();

  ASSERT_TRUE(program->WriteGlobal("mode", 1, 4).ok());
  ASSERT_TRUE(program->runtime().Commit().ok());
  ASSERT_NE(program->runtime().InstalledVariant(generic), 0u);

  // Out-of-domain value: must fall back to generic and signal.
  ASSERT_TRUE(program->WriteGlobal("mode", 77, 4).ok());
  Result<PatchStats> commit = program->runtime().Commit();
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->generic_fallbacks, 1);
  EXPECT_EQ(program->runtime().InstalledVariant(generic), 0u);

  // Generic behaviour is still correct for the odd value (mode >= 2 branch).
  ASSERT_TRUE(program->WriteGlobal("out", 0, 8).ok());
  ASSERT_TRUE(program->Call("run").ok());
  EXPECT_EQ(program->ReadGlobal("out").value(), 100);
}

TEST(RuntimeTest, CompletenessPrologueCapturesUntrackedCallers) {
  // Call the multiversed function through a *local* function pointer: the
  // call site is not recorded, so only the generic-prologue JMP can redirect
  // it (paper §7.4 completeness).
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) int fast;
long calls_fast;
long calls_slow;
__attribute__((multiverse))
void work() {
  if (fast) { calls_fast = calls_fast + 1; } else { calls_slow = calls_slow + 1; }
}
long via_pointer() {
  void (*fp)(void);
  fp = work;
  fp();
  return 0;
}
)");
  ASSERT_NE(program, nullptr);
  ASSERT_TRUE(program->WriteGlobal("fast", 1, 4).ok());
  ASSERT_TRUE(program->runtime().Commit().ok());
  ASSERT_TRUE(program->Call("via_pointer").ok());
  EXPECT_EQ(program->ReadGlobal("calls_fast").value(), 1);

  // After revert, the generic prologue must be back in place.
  ASSERT_TRUE(program->WriteGlobal("fast", 0, 4).ok());
  ASSERT_TRUE(program->runtime().Revert().ok());
  ASSERT_TRUE(program->Call("via_pointer").ok());
  EXPECT_EQ(program->ReadGlobal("calls_slow").value(), 1);
}

TEST(RuntimeTest, TinyBodiesAreInlinedAndEmptyBodiesNopped) {
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) bool irq_hard;
__attribute__((multiverse))
void irq_off() {
  if (irq_hard) {
    __builtin_cli();
  }
}
void enter() { irq_off(); }
)");
  ASSERT_NE(program, nullptr);

  // irq_hard=1 -> variant body is a single CLI: inlined.
  ASSERT_TRUE(program->WriteGlobal("irq_hard", 1, 1).ok());
  Result<PatchStats> commit = program->runtime().Commit();
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->callsites_inlined, 1);
  EXPECT_EQ(commit->callsites_patched, 0);
  program->vm().core(0).interrupts_enabled = true;
  ASSERT_TRUE(program->Call("enter").ok());
  EXPECT_FALSE(program->vm().core(0).interrupts_enabled)
      << "inlined CLI must still execute";

  // irq_hard=0 -> empty body: the call site becomes pure NOPs (Fig. 3 c).
  ASSERT_TRUE(program->WriteGlobal("irq_hard", 0, 1).ok());
  ASSERT_TRUE(program->runtime().Commit().ok());
  const uint64_t site = program->runtime().table().callsites[0].site_addr;
  std::array<uint8_t, 5> bytes{};
  ASSERT_TRUE(program->vm().memory().ReadRaw(site, bytes.data(), 5).ok());
  for (uint8_t b : bytes) {
    EXPECT_EQ(b, static_cast<uint8_t>(Op::kNop));
  }
  program->vm().core(0).interrupts_enabled = true;
  ASSERT_TRUE(program->Call("enter").ok());
  EXPECT_TRUE(program->vm().core(0).interrupts_enabled);
}

TEST(RuntimeTest, TextSegmentProtectedAfterPatching) {
  std::unique_ptr<Program> program = Build(kGuardedSource);
  ASSERT_NE(program, nullptr);
  ASSERT_TRUE(program->WriteGlobal("mode", 1, 4).ok());
  ASSERT_TRUE(program->runtime().Commit().ok());
  // After patching, guest writes to the text segment must still fault:
  // protection was restored (W^X discipline, paper §7.2).
  const uint64_t site = program->runtime().table().callsites[0].site_addr;
  EXPECT_FALSE(program->vm().memory().Writable(site, 5));
}

TEST(RuntimeTest, ForeignModificationDetected) {
  std::unique_ptr<Program> program = Build(kGuardedSource);
  ASSERT_NE(program, nullptr);
  const uint64_t site = program->runtime().table().callsites[0].site_addr;
  // Someone else scribbles on the call site...
  const uint8_t garbage[5] = {0x50, 0x50, 0x50, 0x50, 0x50};
  ASSERT_TRUE(program->vm().memory().WriteRaw(site, garbage, 5).ok());
  // ...and the verifying patcher refuses to touch it.
  ASSERT_TRUE(program->WriteGlobal("mode", 1, 4).ok());
  Result<PatchStats> commit = program->runtime().Commit();
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RuntimeTest, CommitFnAffectsOnlyThatFunction) {
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) int flag;
long out_a;
long out_b;
__attribute__((multiverse)) void fa() { if (flag) { out_a = out_a + 1; } }
__attribute__((multiverse)) void fb() { if (flag) { out_b = out_b + 1; } }
void run() { fa(); fb(); }
)");
  ASSERT_NE(program, nullptr);
  const uint64_t fa = program->SymbolAddress("fa").value();
  const uint64_t fb = program->SymbolAddress("fb").value();
  ASSERT_TRUE(program->WriteGlobal("flag", 1, 4).ok());
  Result<PatchStats> commit = program->runtime().CommitFn(fa);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->functions_committed, 1);
  EXPECT_NE(program->runtime().InstalledVariant(fa), 0u);
  EXPECT_EQ(program->runtime().InstalledVariant(fb), 0u);

  // Name-based API resolves the same function.
  Result<PatchStats> revert = program->runtime().RevertFn(std::string("fa"));
  ASSERT_TRUE(revert.ok());
  EXPECT_EQ(program->runtime().InstalledVariant(fa), 0u);
}

TEST(RuntimeTest, CommitRefsAffectsOnlyReferencingFunctions) {
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) int alpha;
__attribute__((multiverse)) int beta;
long out_a;
long out_b;
__attribute__((multiverse)) void fa() { if (alpha) { out_a = out_a + 1; } }
__attribute__((multiverse)) void fb() { if (beta) { out_b = out_b + 1; } }
)");
  ASSERT_NE(program, nullptr);
  const uint64_t fa = program->SymbolAddress("fa").value();
  const uint64_t fb = program->SymbolAddress("fb").value();
  ASSERT_TRUE(program->runtime().CommitRefs(std::string("alpha")).ok());
  EXPECT_NE(program->runtime().InstalledVariant(fa), 0u);
  EXPECT_EQ(program->runtime().InstalledVariant(fb), 0u);
  ASSERT_TRUE(program->runtime().RevertRefs(std::string("alpha")).ok());
  EXPECT_EQ(program->runtime().InstalledVariant(fa), 0u);
}

TEST(RuntimeTest, UnknownAddressesReturnNotFound) {
  std::unique_ptr<Program> program = Build(kGuardedSource);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->runtime().CommitFn(uint64_t{0x1234}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(program->runtime().CommitRefs(uint64_t{0x1234}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(program->runtime().CommitFn(std::string("nope")).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Function-pointer switches (paper §4).

constexpr char kFnPtrSource[] = R"(
__attribute__((multiverse)) long (*op)(long);
long twice(long x) { return 2 * x; }
long inc(long x) { return x + 1; }
long run(long x) { return op(x); }
)";

TEST(RuntimeTest, FnPtrCommitPatchesToDirectCall) {
  std::unique_ptr<Program> program = Build(kFnPtrSource);
  ASSERT_NE(program, nullptr);
  const uint64_t twice = program->SymbolAddress("twice").value();
  const uint64_t inc = program->SymbolAddress("inc").value();

  ASSERT_TRUE(program->WriteGlobal("op", static_cast<int64_t>(twice), 8).ok());
  EXPECT_EQ(*program->Call("run", {21}), 42u);

  Result<PatchStats> commit = program->runtime().CommitRefs(std::string("op"));
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->callsites_patched, 1);
  EXPECT_EQ(*program->Call("run", {21}), 42u);

  // The call site must now be a direct CALL instruction.
  const uint64_t site = program->runtime().table().callsites[0].site_addr;
  Result<Insn> insn =
      Decode(program->vm().memory().raw(site), 5);
  ASSERT_TRUE(insn.ok());
  EXPECT_EQ(insn->op, Op::kCall);

  // Committed semantics: updating the pointer without re-commit changes
  // nothing (the binding is fixed until the next commit).
  ASSERT_TRUE(program->WriteGlobal("op", static_cast<int64_t>(inc), 8).ok());
  EXPECT_EQ(*program->Call("run", {21}), 42u) << "stale binding must stay";
  ASSERT_TRUE(program->runtime().CommitRefs(std::string("op")).ok());
  EXPECT_EQ(*program->Call("run", {21}), 22u);

  // Revert restores the indirect call: now the pointer value matters again.
  ASSERT_TRUE(program->runtime().RevertRefs(std::string("op")).ok());
  ASSERT_TRUE(program->WriteGlobal("op", static_cast<int64_t>(twice), 8).ok());
  EXPECT_EQ(*program->Call("run", {21}), 42u);
}

TEST(RuntimeTest, NullFnPtrCommitSkipsAndSignals) {
  std::unique_ptr<Program> program = Build(kFnPtrSource);
  ASSERT_NE(program, nullptr);
  Result<PatchStats> commit = program->runtime().CommitRefs(std::string("op"));
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->generic_fallbacks, 1);
  EXPECT_EQ(commit->callsites_patched, 0);
}

// ---------------------------------------------------------------------------
// In-guest API (vmcall bridge).

TEST(RuntimeTest, GuestCommitViaVmCall) {
  std::unique_ptr<Program> program = Build(R"(
__attribute__((multiverse)) int flag;
long out;
__attribute__((multiverse)) void f() { if (flag) { out = out + 1; } }
long reconfigure(long v) {
  flag = (int)v;
  return __builtin_vmcall(2, 0);   // multiverse_commit()
}
void run() { f(); }
)");
  ASSERT_NE(program, nullptr);
  Result<uint64_t> committed = program->Call("reconfigure", {1});
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(*committed, 1u);  // one function committed
  const uint64_t generic = program->SymbolAddress("f").value();
  EXPECT_NE(program->runtime().InstalledVariant(generic), 0u);
  ASSERT_TRUE(program->Call("run").ok());
  EXPECT_EQ(program->ReadGlobal("out").value(), 1);
}

TEST(RuntimeTest, GuestPutCharCollectsOutput) {
  std::unique_ptr<Program> program = Build(R"(
void say() {
  __builtin_vmcall(1, 'h');
  __builtin_vmcall(1, 'i');
}
)");
  ASSERT_NE(program, nullptr);
  ASSERT_TRUE(program->Call("say").ok());
  EXPECT_EQ(program->output(), "hi");
}

// ---------------------------------------------------------------------------
// Randomized interleaving property: any sequence of commit/revert/value
// changes keeps behaviour equal to the generic reference.

TEST(RuntimeTest, RandomCommitRevertInterleavingStaysSound) {
  std::unique_ptr<Program> program = Build(kGuardedSource);
  ASSERT_NE(program, nullptr);
  Rng rng(2026);
  int64_t reference_out = 0;
  ASSERT_TRUE(program->WriteGlobal("out", 0, 8).ok());
  for (int step = 0; step < 60; ++step) {
    const int64_t mode = rng.NextInRange(0, 4);  // 4 is out-of-domain
    ASSERT_TRUE(program->WriteGlobal("mode", mode, 4).ok());
    switch (rng.NextBelow(3)) {
      case 0:
        ASSERT_TRUE(program->runtime().Commit().ok());
        break;
      case 1:
        ASSERT_TRUE(program->runtime().Revert().ok());
        break;
      default:
        break;  // leave the current binding stale: value changed, no commit
    }
    // IMPORTANT: a stale binding uses the *bound* value, not the current one.
    // To keep a computable reference, re-commit before every call.
    ASSERT_TRUE(program->runtime().Commit().ok());
    ASSERT_TRUE(program->Call("run").ok());
    reference_out += mode >= 2 ? 100 : (mode == 1 ? 10 : 1);
    ASSERT_EQ(program->ReadGlobal("out").value(), reference_out) << "step " << step;
  }
}

}  // namespace
}  // namespace mv

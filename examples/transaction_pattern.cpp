// The consistency/transaction pattern of paper §2: multiverse deliberately
// performs no synchronization of its own, so a subsystem that reconfigures
// several switches together — possibly alongside a data-layout change —
// wraps the writes and per-variable commits in its own lock:
//
//   void subsystem_set_config(bool _A, bool _B) {
//     wait_sync_and_lock(&subsystem);
//     A = _A; multiverse_commit_refs(&A);
//     B = _B; multiverse_commit_refs(&B);
//     translate_objects(&subsystem);
//     unlock(&subsystem);
//   }
//
// This example runs that exact shape *inside the guest*: the reconfiguration
// function takes the subsystem lock, updates each switch, calls the in-guest
// multiverse_commit_refs (a VMCALL into the runtime), migrates the data to
// the new representation, and unlocks. The hot path stays branch-free.
#include <cstdio>

#include "src/core/program.h"
#include "src/workloads/harness.h"

namespace {

constexpr char kSource[] = R"(
__attribute__((multiverse)) bool compressed;   // object representation
__attribute__((multiverse)) bool checksummed;  // integrity mode

int subsystem_lock;
long objects[256];
long object_count;
long checksum_state;

void lock_subsystem() {
  while (__builtin_xchg(&subsystem_lock, 1)) { __builtin_pause(); }
}
void unlock_subsystem() {
  subsystem_lock = 0;
}

// The performance-critical path: bound to the current configuration.
__attribute__((multiverse))
long store_object(long value) {
  long v = value;
  if (compressed) {
    v = v >> 4;                  // "compressed" representation
  }
  if (checksummed) {
    checksum_state = checksum_state ^ v;
  }
  objects[object_count & 255] = v;
  object_count = object_count + 1;
  return v;
}

// Layout migration for already-stored objects (the translate_objects step).
void translate_objects(long was_compressed, long now_compressed) {
  long i;
  if (was_compressed == now_compressed) { return; }
  for (i = 0; i < object_count; ++i) {
    if (i >= 256) { break; }
    if (now_compressed) {
      objects[i] = objects[i] >> 4;
    } else {
      objects[i] = objects[i] << 4;
    }
  }
}

// The paper's subsystem_set_config, verbatim in structure.
void subsystem_set_config(long new_compressed, long new_checksummed) {
  long was = compressed;
  lock_subsystem();
  compressed = (bool)new_compressed;
  __builtin_vmcall(4, (long)&compressed);    // multiverse_commit_refs(&compressed)
  checksummed = (bool)new_checksummed;
  __builtin_vmcall(4, (long)&checksummed);   // multiverse_commit_refs(&checksummed)
  translate_objects(was, new_compressed);
  unlock_subsystem();
}

void workload(long n) {
  long i;
  for (i = 0; i < n; ++i) {
    store_object(i * 16 + 5);
  }
}
)";

}  // namespace

int main() {
  using namespace mv;

  BuildOptions options;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"transaction", kSource}}, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  Program& program = **built;

  auto run = [&](const char* phase) {
    Core& core = program.vm().core(0);
    const uint64_t before = core.ticks;
    (void)program.Call("workload", {20000});
    const double per_op = TicksToCycles(core.ticks - before) / 20000.0;
    std::printf("%-52s %6.2f cycles/store\n", phase, per_op);
  };

  std::printf("subsystem reconfiguration via the paper's transaction pattern\n\n");
  run("boot defaults (uncommitted, dynamic checks):");

  (void)program.Call("subsystem_set_config", {0, 0});
  run("configured (plain, no checksum; committed):");

  (void)program.Call("subsystem_set_config", {1, 1});
  run("reconfigured (compressed + checksummed; committed):");

  (void)program.Call("subsystem_set_config", {1, 0});
  run("reconfigured (compressed only; committed):");

  std::printf("\nsubsystem lock free: %s\n",
              program.ReadGlobal("subsystem_lock", 4).value() == 0 ? "yes" : "NO!");
  std::printf("objects stored: %lld\n",
              (long long)program.ReadGlobal("object_count").value());
  return 0;
}

// Enum-valued configuration switches, explicit domains, per-variable commit,
// and the out-of-domain fallback: a logging subsystem whose level is an enum
// (default policy: one variant per enumerator, paper §3) and a sampling rate
// with an explicit domain restricted to the two values worth specializing.
#include <cstdio>

#include "src/core/program.h"
#include "src/workloads/harness.h"

namespace {

constexpr char kSource[] = R"(
enum LogLevel { LOG_OFF = 0, LOG_ERROR = 1, LOG_INFO = 2, LOG_DEBUG = 3 };

// Default domain: all enumerators (4 variants before merging).
__attribute__((multiverse)) enum LogLevel log_level;

// Explicit domain (paper 3's extended attribute syntax): only 1 and 1000
// get variants; other rates run on the generic code.
__attribute__((multiverse(1, 1000))) int sample_rate;

long messages_emitted;
long events;

__attribute__((multiverse))
void log_event(long severity) {
  if (log_level >= severity) {
    if (events % sample_rate == 0) {
      messages_emitted = messages_emitted + 1;
    }
  }
  events = events + 1;
}

void run(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    log_event(2);
  }
}
)";

}  // namespace

int main() {
  using namespace mv;

  BuildOptions options;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"feature_flags", kSource}}, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Program> program = std::move(*built);
  const SpecializeStats& stats = program->specialize_stats();
  std::printf("cross product 4 levels x 2 rates = %zu variants generated, %zu kept\n",
              stats.variants_generated, stats.variants_kept);

  auto cycles_per_event = [&]() {
    Core& core = program->vm().core(0);
    const uint64_t before = core.ticks;
    (void)program->Call("run", {50000});
    return TicksToCycles(core.ticks - before) / 50000.0;
  };

  (void)program->WriteGlobal("log_level", 0, 4);   // LOG_OFF
  (void)program->WriteGlobal("sample_rate", 1000, 4);
  std::printf("dynamic,   level=OFF:   %6.2f cycles/event\n", cycles_per_event());

  Result<PatchStats> commit = program->runtime().Commit();
  std::printf("commit: %d bound, %d fallbacks\n", commit->functions_committed,
              commit->generic_fallbacks);
  std::printf("committed, level=OFF:   %6.2f cycles/event\n", cycles_per_event());

  // Per-variable commit (multiverse_commit_refs): only re-bind functions
  // referencing log_level.
  (void)program->WriteGlobal("log_level", 3, 4);  // LOG_DEBUG
  (void)program->runtime().CommitRefs("log_level");
  const double debug_cycles = cycles_per_event();
  std::printf("committed, level=DEBUG: %6.2f cycles/event (messages=%lld)\n", debug_cycles,
              (long long)program->ReadGlobal("messages_emitted").value());

  // Out-of-domain rate: no variant guard matches -> generic fallback,
  // signalled through the stats (paper Figure 3 d).
  (void)program->WriteGlobal("sample_rate", 7, 4);
  Result<PatchStats> fallback = program->runtime().Commit();
  std::printf("commit with sample_rate=7 (outside domain): %d bound, %d fallbacks\n",
              fallback->functions_committed, fallback->generic_fallbacks);
  std::printf("generic fallback:       %6.2f cycles/event — still correct, just slower\n",
              cycles_per_event());
  return 0;
}

// Function-pointer configuration switches (paper §4): the other
// commonly-used form of dynamic variability, where variant generation is
// manual and multiverse "only" turns the indirect calls into direct calls —
// or inlines the target body outright.
//
// Scenario: a checksum backend selected at startup (scalar vs unrolled), like
// a kernel selecting a SIMD implementation for the running CPU.
#include <cstdio>

#include "src/core/program.h"
#include "src/workloads/harness.h"

namespace {

constexpr char kSource[] = R"(
// The backend switch: an attributed function pointer.
__attribute__((multiverse)) long (*checksum)(long);

unsigned char data[65536];

long checksum_scalar(long len) {
  long i;
  long sum = 0;
  for (i = 0; i < len; i = i + 1) {
    sum = sum + data[i];
  }
  return sum;
}

long checksum_unrolled(long len) {
  long i;
  long sum = 0;
  for (i = 0; i + 4 <= len; i = i + 4) {
    sum = sum + data[i] + data[i + 1] + data[i + 2] + data[i + 3];
  }
  while (i < len) {
    sum = sum + data[i];
    i = i + 1;
  }
  return sum;
}

void init_data() {
  long i;
  for (i = 0; i < 65536; i = i + 1) {
    data[i] = (unsigned char)(i * 37 + 11);
  }
}

long run(long rounds) {
  long i;
  long sum = 0;
  for (i = 0; i < rounds; i = i + 1) {
    sum = sum + checksum(64);   // hot indirect call through the switch
  }
  return sum;
}
)";

}  // namespace

int main() {
  using namespace mv;

  BuildOptions options;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"fnptr_backend", kSource}}, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Program> program = std::move(*built);

  (void)program->Call("init_data");
  auto bench = [&]() {
    Core& core = program->vm().core(0);
    const uint64_t before = core.ticks;
    Result<uint64_t> sum = program->Call("run", {20000}, 1'000'000'000ull);
    if (!sum.ok()) {
      std::fprintf(stderr, "run failed: %s\n", sum.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("    checksum sum=%llu, %.2f cycles/call\n", (unsigned long long)*sum,
                TicksToCycles(core.ticks - before) / 20000.0);
  };

  const uint64_t scalar = program->SymbolAddress("checksum_scalar").value();
  const uint64_t unrolled = program->SymbolAddress("checksum_unrolled").value();

  std::printf("backend = scalar, indirect calls:\n");
  (void)program->WriteGlobal("checksum", static_cast<int64_t>(scalar), 8);
  bench();

  std::printf("backend = scalar, committed (direct calls patched in):\n");
  (void)program->runtime().CommitRefs("checksum");
  bench();

  std::printf("backend = unrolled, committed:\n");
  (void)program->WriteGlobal("checksum", static_cast<int64_t>(unrolled), 8);
  (void)program->runtime().CommitRefs("checksum");
  bench();

  std::printf("reverted (indirect again):\n");
  (void)program->runtime().RevertRefs("checksum");
  bench();
  return 0;
}

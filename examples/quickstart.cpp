// Quickstart: the multiverse workflow end to end in ~60 lines of guest code.
//
//  1. Write mvc code with __attribute__((multiverse)) on a configuration
//     switch and on the functions that test it.
//  2. Build — the toolchain generates specialized variants ahead of time.
//  3. Run with the switch evaluated dynamically (generic code).
//  4. Flip the switch and multiverse_commit() — the runtime binary-patches
//     the specialized variant into every call site.
#include <cstdio>

#include "src/core/program.h"
#include "src/workloads/harness.h"

namespace {

constexpr char kSource[] = R"(
// A feature flag: checked on every request when dynamic, free when committed.
__attribute__((multiverse)) bool auditing;

long audit_log_entries;
long handled;

__attribute__((multiverse))
void handle_request(long id) {
  if (auditing) {
    audit_log_entries = audit_log_entries + 1;
  }
  handled = handled + 1;
  (void)id;
}

void serve(long n) {
  long i;
  for (i = 0; i < n; i = i + 1) {
    handle_request(i);
  }
}
)";

}  // namespace

int main() {
  using namespace mv;

  BuildOptions options;
  Result<std::unique_ptr<Program>> built =
      Program::Build({{"quickstart", kSource}}, options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Program> program = std::move(*built);

  const SpecializeStats& stats = program->specialize_stats();
  std::printf("specializer: %zu variants generated, %zu kept after merging\n",
              stats.variants_generated, stats.variants_kept);

  auto serve_cycles = [&]() {
    Core& core = program->vm().core(0);
    const uint64_t before = core.ticks;
    Result<uint64_t> r = program->Call("serve", {100000});
    if (!r.ok()) {
      std::fprintf(stderr, "run failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    return TicksToCycles(core.ticks - before) / 100000.0;
  };

  // Dynamic: the flag is tested on every request.
  (void)program->WriteGlobal("auditing", 0, 1);
  std::printf("dynamic  (auditing=off): %6.2f cycles/request\n", serve_cycles());

  // Committed: the flag is bound; the variant has no test at all.
  Result<PatchStats> commit = program->runtime().Commit();
  std::printf("commit: %d function(s) bound, %d call site(s) patched\n",
              commit->functions_committed,
              commit->callsites_patched + commit->callsites_inlined);
  std::printf("committed (auditing=off): %6.2f cycles/request\n", serve_cycles());

  // Reconfigure at run time: flip the flag, re-commit.
  (void)program->WriteGlobal("auditing", 1, 1);
  (void)program->runtime().Commit();
  std::printf("committed (auditing=on):  %6.2f cycles/request\n", serve_cycles());
  std::printf("audit entries written: %lld\n",
              (long long)program->ReadGlobal("audit_log_entries").value());

  // And back to fully generic code.
  (void)program->runtime().Revert();
  std::printf("reverted  (auditing=on):  %6.2f cycles/request\n", serve_cycles());
  return 0;
}

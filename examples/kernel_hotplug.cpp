// CPU-hotplug scenario from the paper's introduction: a system that boots on
// one CPU, later gets a second CPU ("more CPUs could be added later at run
// time for extra money"), and drops back to one — re-binding the multiversed
// spinlock implementation at every transition (paper §2's hotplug_add_cpu).
#include <cstdio>

#include "src/workloads/kernel.h"

int main() {
  using namespace mv;

  Result<std::unique_ptr<Program>> built = BuildSpinlockKernel(SpinBinding::kMultiverse);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Program> kernel = std::move(*built);

  auto report = [&](const char* phase) {
    Result<double> cycles = MeasureSpinlockPair(kernel.get(), 50'000);
    if (!cycles.ok()) {
      std::fprintf(stderr, "measure failed: %s\n", cycles.status().ToString().c_str());
      std::exit(1);
    }
    const int64_t smp = kernel->ReadGlobal("config_smp", 4).value();
    std::printf("%-34s config_smp=%lld  lock+unlock = %6.2f cycles\n", phase,
                (long long)smp, *cycles);
  };

  // Boot on a single CPU: commit the UP world.
  (void)SetSmpMode(kernel.get(), SpinBinding::kMultiverse, /*smp=*/false);
  report("boot (uniprocessor, committed):");

  // Hotplug a second CPU: flip the switch, commit the SMP world
  // (the paper's hotplug_add_cpu(): nrcpu++; config_smp = true; commit).
  (void)SetSmpMode(kernel.get(), SpinBinding::kMultiverse, /*smp=*/true);
  report("hotplug add CPU (SMP, committed):");

  // Back to one CPU to save energy.
  (void)SetSmpMode(kernel.get(), SpinBinding::kMultiverse, /*smp=*/false);
  report("hot-unplug CPU (UP, committed):");

  // Revert to fully generic code (e.g. before a live update).
  (void)kernel->runtime().Revert();
  report("reverted (generic, dynamic test):");

  // The generic code still honours the current value — binding at commit
  // time never changes behaviour, only cost.
  (void)kernel->WriteGlobal("config_smp", 1, 4);
  report("generic with config_smp=1:");
  return 0;
}

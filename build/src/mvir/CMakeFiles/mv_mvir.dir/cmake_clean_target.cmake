file(REMOVE_RECURSE
  "libmv_mvir.a"
)

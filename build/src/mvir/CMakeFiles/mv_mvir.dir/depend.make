# Empty dependencies file for mv_mvir.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mv_mvir.dir/ir.cc.o"
  "CMakeFiles/mv_mvir.dir/ir.cc.o.d"
  "libmv_mvir.a"
  "libmv_mvir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_mvir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

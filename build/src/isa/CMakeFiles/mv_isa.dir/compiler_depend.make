# Empty compiler generated dependencies file for mv_isa.
# This may be replaced when dependencies are built.

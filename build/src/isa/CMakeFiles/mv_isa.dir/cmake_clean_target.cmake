file(REMOVE_RECURSE
  "libmv_isa.a"
)

# Empty dependencies file for mv_isa.
# This may be replaced when dependencies are built.

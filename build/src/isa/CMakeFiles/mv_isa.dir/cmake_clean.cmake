file(REMOVE_RECURSE
  "CMakeFiles/mv_isa.dir/isa.cc.o"
  "CMakeFiles/mv_isa.dir/isa.cc.o.d"
  "libmv_isa.a"
  "libmv_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

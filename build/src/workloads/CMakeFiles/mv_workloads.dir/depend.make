# Empty dependencies file for mv_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmv_workloads.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mv_workloads.dir/grep.cc.o"
  "CMakeFiles/mv_workloads.dir/grep.cc.o.d"
  "CMakeFiles/mv_workloads.dir/harness.cc.o"
  "CMakeFiles/mv_workloads.dir/harness.cc.o.d"
  "CMakeFiles/mv_workloads.dir/kernel.cc.o"
  "CMakeFiles/mv_workloads.dir/kernel.cc.o.d"
  "CMakeFiles/mv_workloads.dir/libc.cc.o"
  "CMakeFiles/mv_workloads.dir/libc.cc.o.d"
  "CMakeFiles/mv_workloads.dir/python.cc.o"
  "CMakeFiles/mv_workloads.dir/python.cc.o.d"
  "libmv_workloads.a"
  "libmv_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

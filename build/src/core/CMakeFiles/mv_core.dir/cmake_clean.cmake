file(REMOVE_RECURSE
  "CMakeFiles/mv_core.dir/descriptors.cc.o"
  "CMakeFiles/mv_core.dir/descriptors.cc.o.d"
  "CMakeFiles/mv_core.dir/patching.cc.o"
  "CMakeFiles/mv_core.dir/patching.cc.o.d"
  "CMakeFiles/mv_core.dir/program.cc.o"
  "CMakeFiles/mv_core.dir/program.cc.o.d"
  "CMakeFiles/mv_core.dir/runtime.cc.o"
  "CMakeFiles/mv_core.dir/runtime.cc.o.d"
  "CMakeFiles/mv_core.dir/specializer.cc.o"
  "CMakeFiles/mv_core.dir/specializer.cc.o.d"
  "libmv_core.a"
  "libmv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

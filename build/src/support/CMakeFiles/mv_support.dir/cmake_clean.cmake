file(REMOVE_RECURSE
  "CMakeFiles/mv_support.dir/diagnostics.cc.o"
  "CMakeFiles/mv_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/mv_support.dir/status.cc.o"
  "CMakeFiles/mv_support.dir/status.cc.o.d"
  "CMakeFiles/mv_support.dir/str.cc.o"
  "CMakeFiles/mv_support.dir/str.cc.o.d"
  "libmv_support.a"
  "libmv_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

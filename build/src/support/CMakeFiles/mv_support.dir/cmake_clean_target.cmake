file(REMOVE_RECURSE
  "libmv_support.a"
)

# Empty compiler generated dependencies file for mv_baseline.
# This may be replaced when dependencies are built.

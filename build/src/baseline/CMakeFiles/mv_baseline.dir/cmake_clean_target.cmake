file(REMOVE_RECURSE
  "libmv_baseline.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mv_baseline.dir/alternatives.cc.o"
  "CMakeFiles/mv_baseline.dir/alternatives.cc.o.d"
  "CMakeFiles/mv_baseline.dir/paravirt.cc.o"
  "CMakeFiles/mv_baseline.dir/paravirt.cc.o.d"
  "libmv_baseline.a"
  "libmv_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

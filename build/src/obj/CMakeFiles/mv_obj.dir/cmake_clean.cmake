file(REMOVE_RECURSE
  "CMakeFiles/mv_obj.dir/linker.cc.o"
  "CMakeFiles/mv_obj.dir/linker.cc.o.d"
  "CMakeFiles/mv_obj.dir/object.cc.o"
  "CMakeFiles/mv_obj.dir/object.cc.o.d"
  "libmv_obj.a"
  "libmv_obj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_obj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

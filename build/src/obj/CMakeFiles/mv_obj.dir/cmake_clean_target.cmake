file(REMOVE_RECURSE
  "libmv_obj.a"
)

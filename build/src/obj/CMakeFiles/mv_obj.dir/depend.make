# Empty dependencies file for mv_obj.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obj/linker.cc" "src/obj/CMakeFiles/mv_obj.dir/linker.cc.o" "gcc" "src/obj/CMakeFiles/mv_obj.dir/linker.cc.o.d"
  "/root/repo/src/obj/object.cc" "src/obj/CMakeFiles/mv_obj.dir/object.cc.o" "gcc" "src/obj/CMakeFiles/mv_obj.dir/object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/mv_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mv_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mv_vm.dir/memory.cc.o"
  "CMakeFiles/mv_vm.dir/memory.cc.o.d"
  "CMakeFiles/mv_vm.dir/vm.cc.o"
  "CMakeFiles/mv_vm.dir/vm.cc.o.d"
  "libmv_vm.a"
  "libmv_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmv_vm.a"
)

# Empty compiler generated dependencies file for mv_vm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mv_codegen.dir/codegen.cc.o"
  "CMakeFiles/mv_codegen.dir/codegen.cc.o.d"
  "libmv_codegen.a"
  "libmv_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

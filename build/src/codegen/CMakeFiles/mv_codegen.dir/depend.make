# Empty dependencies file for mv_codegen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmv_codegen.a"
)

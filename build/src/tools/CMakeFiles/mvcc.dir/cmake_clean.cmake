file(REMOVE_RECURSE
  "CMakeFiles/mvcc.dir/mvcc_main.cc.o"
  "CMakeFiles/mvcc.dir/mvcc_main.cc.o.d"
  "mvcc"
  "mvcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

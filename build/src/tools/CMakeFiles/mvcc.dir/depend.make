# Empty dependencies file for mvcc.
# This may be replaced when dependencies are built.

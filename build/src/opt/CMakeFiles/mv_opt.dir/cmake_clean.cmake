file(REMOVE_RECURSE
  "CMakeFiles/mv_opt.dir/cfg.cc.o"
  "CMakeFiles/mv_opt.dir/cfg.cc.o.d"
  "CMakeFiles/mv_opt.dir/equality.cc.o"
  "CMakeFiles/mv_opt.dir/equality.cc.o.d"
  "CMakeFiles/mv_opt.dir/fold.cc.o"
  "CMakeFiles/mv_opt.dir/fold.cc.o.d"
  "CMakeFiles/mv_opt.dir/slots.cc.o"
  "CMakeFiles/mv_opt.dir/slots.cc.o.d"
  "libmv_opt.a"
  "libmv_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cfg.cc" "src/opt/CMakeFiles/mv_opt.dir/cfg.cc.o" "gcc" "src/opt/CMakeFiles/mv_opt.dir/cfg.cc.o.d"
  "/root/repo/src/opt/equality.cc" "src/opt/CMakeFiles/mv_opt.dir/equality.cc.o" "gcc" "src/opt/CMakeFiles/mv_opt.dir/equality.cc.o.d"
  "/root/repo/src/opt/fold.cc" "src/opt/CMakeFiles/mv_opt.dir/fold.cc.o" "gcc" "src/opt/CMakeFiles/mv_opt.dir/fold.cc.o.d"
  "/root/repo/src/opt/slots.cc" "src/opt/CMakeFiles/mv_opt.dir/slots.cc.o" "gcc" "src/opt/CMakeFiles/mv_opt.dir/slots.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mvir/CMakeFiles/mv_mvir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

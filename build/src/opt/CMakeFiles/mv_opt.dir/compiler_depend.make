# Empty compiler generated dependencies file for mv_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmv_opt.a"
)

file(REMOVE_RECURSE
  "libmv_frontend.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mv_frontend.dir/ctype.cc.o"
  "CMakeFiles/mv_frontend.dir/ctype.cc.o.d"
  "CMakeFiles/mv_frontend.dir/lexer.cc.o"
  "CMakeFiles/mv_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/mv_frontend.dir/lower.cc.o"
  "CMakeFiles/mv_frontend.dir/lower.cc.o.d"
  "CMakeFiles/mv_frontend.dir/parser.cc.o"
  "CMakeFiles/mv_frontend.dir/parser.cc.o.d"
  "libmv_frontend.a"
  "libmv_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mv_frontend.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for libc_threads_test.
# This may be replaced when dependencies are built.

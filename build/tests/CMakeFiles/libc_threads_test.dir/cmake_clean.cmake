file(REMOVE_RECURSE
  "CMakeFiles/libc_threads_test.dir/libc_threads_test.cc.o"
  "CMakeFiles/libc_threads_test.dir/libc_threads_test.cc.o.d"
  "libc_threads_test"
  "libc_threads_test.pdb"
  "libc_threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libc_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

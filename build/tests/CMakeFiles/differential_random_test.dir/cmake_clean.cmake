file(REMOVE_RECURSE
  "CMakeFiles/differential_random_test.dir/differential_random_test.cc.o"
  "CMakeFiles/differential_random_test.dir/differential_random_test.cc.o.d"
  "differential_random_test"
  "differential_random_test.pdb"
  "differential_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

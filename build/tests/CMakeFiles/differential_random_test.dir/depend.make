# Empty dependencies file for differential_random_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for patching_design_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/patching_design_test.dir/patching_design_test.cc.o"
  "CMakeFiles/patching_design_test.dir/patching_design_test.cc.o.d"
  "patching_design_test"
  "patching_design_test.pdb"
  "patching_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patching_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for descriptor_robustness_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/descriptor_robustness_test.dir/descriptor_robustness_test.cc.o"
  "CMakeFiles/descriptor_robustness_test.dir/descriptor_robustness_test.cc.o.d"
  "descriptor_robustness_test"
  "descriptor_robustness_test.pdb"
  "descriptor_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descriptor_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

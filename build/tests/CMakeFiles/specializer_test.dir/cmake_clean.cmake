file(REMOVE_RECURSE
  "CMakeFiles/specializer_test.dir/specializer_test.cc.o"
  "CMakeFiles/specializer_test.dir/specializer_test.cc.o.d"
  "specializer_test"
  "specializer_test.pdb"
  "specializer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for specializer_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for e2e_smoke_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/e2e_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/specializer_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/linker_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_property_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/differential_random_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/descriptor_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/patching_design_test[1]_include.cmake")
include("/root/repo/build/tests/libc_threads_test[1]_include.cmake")
add_test(mvcc_cli_smoke "/root/repo/build/src/tools/mvcc" "/root/repo/build/tests/cli_demo.mvc" "--stats" "--set" "feature=1" "--commit" "--run" "run" "--" "10")
set_tests_properties(mvcc_cli_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "run\\(\\) = 20" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")

# Empty dependencies file for kernel_hotplug.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kernel_hotplug.dir/kernel_hotplug.cpp.o"
  "CMakeFiles/kernel_hotplug.dir/kernel_hotplug.cpp.o.d"
  "kernel_hotplug"
  "kernel_hotplug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_hotplug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for feature_flags.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/feature_flags.dir/feature_flags.cpp.o"
  "CMakeFiles/feature_flags.dir/feature_flags.cpp.o.d"
  "feature_flags"
  "feature_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/function_pointers.cpp" "examples/CMakeFiles/function_pointers.dir/function_pointers.cpp.o" "gcc" "examples/CMakeFiles/function_pointers.dir/function_pointers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/mv_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mv_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/mv_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/mv_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/obj/CMakeFiles/mv_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mv_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/mvir/CMakeFiles/mv_mvir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mv_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mv_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

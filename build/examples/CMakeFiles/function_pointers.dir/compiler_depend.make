# Empty compiler generated dependencies file for function_pointers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/function_pointers.dir/function_pointers.cpp.o"
  "CMakeFiles/function_pointers.dir/function_pointers.cpp.o.d"
  "function_pointers"
  "function_pointers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_pointers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

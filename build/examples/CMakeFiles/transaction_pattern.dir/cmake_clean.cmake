file(REMOVE_RECURSE
  "CMakeFiles/transaction_pattern.dir/transaction_pattern.cpp.o"
  "CMakeFiles/transaction_pattern.dir/transaction_pattern.cpp.o.d"
  "transaction_pattern"
  "transaction_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

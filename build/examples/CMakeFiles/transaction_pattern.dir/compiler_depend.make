# Empty compiler generated dependencies file for transaction_pattern.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_musl.dir/bench_fig5_musl.cc.o"
  "CMakeFiles/bench_fig5_musl.dir/bench_fig5_musl.cc.o.d"
  "bench_fig5_musl"
  "bench_fig5_musl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_musl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

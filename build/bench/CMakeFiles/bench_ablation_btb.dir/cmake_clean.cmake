file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_btb.dir/bench_ablation_btb.cc.o"
  "CMakeFiles/bench_ablation_btb.dir/bench_ablation_btb.cc.o.d"
  "bench_ablation_btb"
  "bench_ablation_btb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

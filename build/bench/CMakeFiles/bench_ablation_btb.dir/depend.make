# Empty dependencies file for bench_ablation_btb.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_cpython_gc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_cpython_gc.dir/bench_cpython_gc.cc.o"
  "CMakeFiles/bench_cpython_gc.dir/bench_cpython_gc.cc.o.d"
  "bench_cpython_gc"
  "bench_cpython_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpython_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

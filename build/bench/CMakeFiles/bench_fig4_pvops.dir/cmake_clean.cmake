file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pvops.dir/bench_fig4_pvops.cc.o"
  "CMakeFiles/bench_fig4_pvops.dir/bench_fig4_pvops.cc.o.d"
  "bench_fig4_pvops"
  "bench_fig4_pvops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pvops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

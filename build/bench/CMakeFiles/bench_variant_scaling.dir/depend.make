# Empty dependencies file for bench_variant_scaling.
# This may be replaced when dependencies are built.

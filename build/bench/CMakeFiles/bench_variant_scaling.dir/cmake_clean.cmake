file(REMOVE_RECURSE
  "CMakeFiles/bench_variant_scaling.dir/bench_variant_scaling.cc.o"
  "CMakeFiles/bench_variant_scaling.dir/bench_variant_scaling.cc.o.d"
  "bench_variant_scaling"
  "bench_variant_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variant_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

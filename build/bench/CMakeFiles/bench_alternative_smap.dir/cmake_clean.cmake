file(REMOVE_RECURSE
  "CMakeFiles/bench_alternative_smap.dir/bench_alternative_smap.cc.o"
  "CMakeFiles/bench_alternative_smap.dir/bench_alternative_smap.cc.o.d"
  "bench_alternative_smap"
  "bench_alternative_smap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alternative_smap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_alternative_smap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_grep.dir/bench_grep.cc.o"
  "CMakeFiles/bench_grep.dir/bench_grep.cc.o.d"
  "bench_grep"
  "bench_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_grep.
# This may be replaced when dependencies are built.

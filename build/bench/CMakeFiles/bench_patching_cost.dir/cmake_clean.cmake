file(REMOVE_RECURSE
  "CMakeFiles/bench_patching_cost.dir/bench_patching_cost.cc.o"
  "CMakeFiles/bench_patching_cost.dir/bench_patching_cost.cc.o.d"
  "bench_patching_cost"
  "bench_patching_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patching_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_patching_cost.
# This may be replaced when dependencies are built.

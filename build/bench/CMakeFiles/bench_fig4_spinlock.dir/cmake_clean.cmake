file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_spinlock.dir/bench_fig4_spinlock.cc.o"
  "CMakeFiles/bench_fig4_spinlock.dir/bench_fig4_spinlock.cc.o.d"
  "bench_fig4_spinlock"
  "bench_fig4_spinlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_spinlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

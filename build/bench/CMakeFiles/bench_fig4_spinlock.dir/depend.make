# Empty dependencies file for bench_fig4_spinlock.
# This may be replaced when dependencies are built.

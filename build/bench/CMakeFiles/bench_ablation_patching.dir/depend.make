# Empty dependencies file for bench_ablation_patching.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_patching.dir/bench_ablation_patching.cc.o"
  "CMakeFiles/bench_ablation_patching.dir/bench_ablation_patching.cc.o.d"
  "bench_ablation_patching"
  "bench_ablation_patching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_patching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

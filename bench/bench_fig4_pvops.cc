// Reproduces Figure 4 (right): paravirtual operations (sti+cli pair) under
// the kernel's current PV-Ops patching, under multiverse, and with
// paravirtualization compiled out — on native hardware and as a Xen guest.
//
// Paper (approximate, i5-7400): native — all three ≈ 2–3 cycles (both
// patching mechanisms inline the one-instruction bodies); Xen guest —
// current ≈ 10, multiverse ≈ 7.5 (the custom no-scratch calling convention
// costs the current mechanism extra saves/restores).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/kernel.h"

namespace mv {
namespace {

double Measure(PvBinding binding, bool xen) {
  PvopsKernel kernel = CheckOk(BuildPvopsKernel(binding, xen), "build pvops kernel");
  return CheckOk(MeasurePvopPair(kernel.program.get()), "measure");
}

void Run() {
  PrintHeader("Paravirtual operations: sti+cli through the pvop layer",
              "Figure 4, right");

  struct Row {
    PvBinding binding;
    double paper_native;
    double paper_xen;  // <0: not shown in the paper
  };
  const Row rows[] = {
      {PvBinding::kCurrent, 2.5, 10.0},
      {PvBinding::kMultiverse, 2.5, 7.5},
      {PvBinding::kStaticOff, 2.5, -1.0},
  };

  std::printf("  %-34s %12s %14s\n", "", "Native", "XEN (guest)");
  for (const Row& row : rows) {
    const double native = Measure(row.binding, /*xen=*/false);
    const double xen = Measure(row.binding, /*xen=*/true);
    JsonMetric(std::string(PvBindingName(row.binding)) + " native", native,
               "cycles");
    JsonMetric(std::string(PvBindingName(row.binding)) + " xen", xen, "cycles");
    if (row.paper_xen < 0) {
      std::printf("  %-34s %8.2f cyc %10.2f cyc   (paper: ~%.1f / not shown)\n",
                  PvBindingName(row.binding), native, xen, row.paper_native);
    } else {
      std::printf("  %-34s %8.2f cyc %10.2f cyc   (paper: ~%.1f / ~%.1f)\n",
                  PvBindingName(row.binding), native, xen, row.paper_native,
                  row.paper_xen);
    }
  }

  PrintNote("");
  PrintNote("Expected shape: on native hardware all three are equal — both");
  PrintNote("patching mechanisms inline the 1-instruction sti/cli bodies into");
  PrintNote("the call sites. In the guest, multiverse beats the current");
  PrintNote("mechanism because the compiler-generated variants use the standard");
  PrintNote("calling convention instead of the no-scratch pvop convention.");
  PrintNote("(The ifdef kernel executes raw sti/cli in the guest and traps.)");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Reproduces Figure 4 (left): spinlock lock+unlock cycles for the four
// kernel variants of §6.1, in unicore and multicore mode.
//
// Paper (approximate bar heights, i5-7400, Linux 4.16.7):
//   Unicore:   no-elision ≈ 28.8, elision[if] ≈ 12, elision[multiverse] ≈ 7.5,
//              elision[ifdef off] ≈ 6.6
//   Multicore: all SMP-capable kernels ≈ 29 (ifdef-off kernel is UP-only)
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/kernel.h"

namespace mv {
namespace {

void Run() {
  PrintHeader("Kernel spinlocks: lock elision mechanisms", "Figure 4, left");

  struct Row {
    SpinBinding binding;
    double paper_up;
    double paper_smp;  // <0: not applicable
  };
  const Row rows[] = {
      {SpinBinding::kNoElision, 28.8, 28.8},
      {SpinBinding::kDynamicIf, 12.0, 29.0},
      {SpinBinding::kMultiverse, 7.5, 29.0},
      {SpinBinding::kStaticUp, 6.6, -1.0},
  };

  std::printf("  %-34s %12s %12s\n", "", "Unicore", "Multicore");
  for (const Row& row : rows) {
    std::unique_ptr<Program> up_kernel =
        CheckOk(BuildSpinlockKernel(row.binding), "build kernel");
    CheckOk(SetSmpMode(up_kernel.get(), row.binding, /*smp=*/false), "set UP");
    const double up = CheckOk(MeasureSpinlockPair(up_kernel.get()), "measure UP");

    JsonMetric(std::string(SpinBindingName(row.binding)) + " unicore", up,
               "cycles");
    if (row.paper_smp < 0) {
      std::printf("  %-34s %8.2f cyc %12s   (paper: ~%.1f / n/a)\n",
                  SpinBindingName(row.binding), up, "n/a", row.paper_up);
      continue;
    }
    std::unique_ptr<Program> smp_kernel =
        CheckOk(BuildSpinlockKernel(row.binding), "build kernel");
    CheckOk(SetSmpMode(smp_kernel.get(), row.binding, /*smp=*/true), "set SMP");
    const double smp = CheckOk(MeasureSpinlockPair(smp_kernel.get()), "measure SMP");
    std::printf("  %-34s %8.2f cyc %8.2f cyc   (paper: ~%.1f / ~%.1f)\n",
                SpinBindingName(row.binding), up, smp, row.paper_up, row.paper_smp);
    JsonMetric(std::string(SpinBindingName(row.binding)) + " multicore", smp,
               "cycles");
  }

  PrintNote("");
  PrintNote("Expected shape (unicore): ifdef-off <= multiverse < if < no-elision;");
  PrintNote("multiverse roughly halves the lock cost vs the mainline kernel.");
  PrintNote("Expected shape (multicore): the locked atomic dominates; bindings");
  PrintNote("differ only by the residual dynamic check.");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

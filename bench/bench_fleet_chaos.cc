// Fleet chaos benchmark: crash-consistent rollouts under injected failure.
//
// Phase A (headline): a 64-instance fleet serves a sharded tenant stream
// while {fast_path=1, log_level=1} rolls out wave by wave — and EVERY
// instance is killed at a durable-journal entry boundary on its first flip
// attempt. Each death is recovered by replaying the instance's write-ahead
// journal (redo sealed transactions, undo the unsealed tail), rebuilding a
// replacement from source and proving it bit-identical to the recovered
// image before it rejoins the fleet. On top of the scripted deaths, a seeded
// ChaosSchedule wedges cores, stretches commits past the deadline and drops
// health reports on the retries. Headline numbers: 0 torn instances, 0
// dropped healthy-instance requests, crash recoveries == fleet size, and
// every instance proven fully-old or fully-new after the dust settles.
//
// Phase B (protocol matrix): the same scripted crash-every-instance rollout
// for each live-commit protocol (quiescence, breakpoint, wait-free) on a
// quarter-size fleet — the journal's crash story must hold at every wave
// under every protocol, not just the preferred one.
//
// MV_FLEET_INSTANCES / MV_FLEET_WAVES / MV_CHAOS_SEED env overrides let the
// CI chaos-smoke job run a small fleet; defaults reproduce the full-size
// experiment.
#include <algorithm>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fleet/chaos.h"
#include "src/fleet/coordinator.h"
#include "src/fleet/fleet.h"
#include "src/workloads/harness.h"

namespace mv {
namespace {

int EnvOr(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

std::unique_ptr<Fleet> BuildFleet(int instances) {
  FleetOptions options;
  options.instances = instances;
  options.cores_per_instance = 2;
  std::vector<ProgramSource> sources = {
      {"fleet_kernel", FleetRequestKernelSource()}};
  return CheckOk(Fleet::Build(sources, options), "fleet build");
}

const Fleet::Assignment kFlip = {{"fast_path", 1}, {"log_level", 1}};

struct ChaosRunResult {
  RolloutReport report;
  HealthSummary health;
  int recoveries_old = 0;   // journal recovered the pre-rollout text
  int recoveries_new = 0;   // journal redid a sealed flip
  int waves_with_crashes = 0;
};

// One chaos rollout: every instance scripted to die at its first flip
// attempt, seeded chaos layered on the retries. Asserts the crash-consistency
// headline (0 torn, 0 dropped, every instance recovered and proven) and
// returns the accounting for the caller to print.
ChaosRunResult RunChaosRollout(int instances, int waves, uint64_t seed,
                               std::optional<CommitProtocol> protocol) {
  std::unique_ptr<Fleet> fleet = BuildFleet(instances);

  ChaosSchedule schedule(seed);
  // Scripted layer: whichever wave an instance lands in, it dies once at a
  // journal boundary. Most die on the first attempt, BEFORE their flip seals
  // — even instances cleanly between records, odd instances mid-record (torn
  // tail for recovery to drop) — so recovery undoes the tail and lands
  // fully-old. Every 8th instance instead lands its flip but has the health
  // report dropped, then dies at the first boundary of the retry: the sealed
  // flip is now behind the crash point, so recovery must REDO it and land
  // fully-new. Both sides of the never-torn proof get exercised.
  for (int wave = 0; wave < waves; ++wave) {
    for (int instance = 0; instance < instances; ++instance) {
      if (instance % 8 == 3) {
        schedule.Script(wave, instance, 1, ChaosEventKind::kDropHealth);
        schedule.Script(wave, instance, 2, ChaosEventKind::kCrash);
      } else {
        schedule.Script(wave, instance, 1,
                        instance % 2 == 0 ? ChaosEventKind::kCrash
                                          : ChaosEventKind::kCrashTorn);
      }
    }
  }

  RolloutPolicy policy;
  policy.canary_pct = 12.5;
  policy.waves = waves;
  policy.max_rollbacks = 0;
  policy.observe_requests = 96;
  policy.inflight_requests = 32;
  policy.protocol = protocol;
  policy.quarantine_after = 4;
  policy.commit_timeout_cycles = 5'000'000;
  policy.chaos = &schedule;
  CommitCoordinator coordinator(fleet.get(), policy);

  ChaosRunResult out;
  out.report = CheckOk(coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn),
                       "chaos rollout");
  out.health = fleet->metrics().Fleet();

  // --- the crash-consistency headline, asserted, not just printed ---------
  CheckOk(out.report.advanced_to_full
              ? Status::Ok()
              : Status::Internal("chaos rollout did not reach 100%: " +
                                 out.report.breach),
          "rollout advanced despite chaos");
  CheckOk(out.report.identity_mismatches == 0
              ? Status::Ok()
              : Status::Internal("instance neither fully-old nor fully-new"),
          "0 torn instances");
  CheckOk(out.health.totals.dropped_requests == 0
              ? Status::Ok()
              : Status::Internal("healthy-instance requests dropped"),
          "0 dropped healthy-instance requests");
  CheckOk(out.health.totals.torn_requests == 0
              ? Status::Ok()
              : Status::Internal("torn requests observed"),
          "0 torn requests");
  CheckOk(out.report.crash_recoveries >= static_cast<uint64_t>(instances)
              ? Status::Ok()
              : Status::Internal("an instance dodged its scripted death"),
          "every instance crashed and recovered");

  // Post-rollout, every instance must be on exactly one side: fully-new
  // (flipped) or fully-old (quarantined — parked on the pre-rollout config,
  // still serving its shard).
  std::set<int> quarantined(out.report.quarantined.begin(),
                            out.report.quarantined.end());
  for (int i = 0; i < instances; ++i) {
    const int64_t fast_path =
        CheckOk(fleet->ReadSwitchValue(i, "fast_path"), "post switch");
    const bool expect_new = quarantined.count(i) == 0;
    CheckOk(fast_path == (expect_new ? 1 : 0)
                ? Status::Ok()
                : Status::Internal("instance on the wrong side post-rollout"),
            "post-rollout side proof");
  }

  // Quarantined instances keep serving in degraded mode: a full traffic
  // slice after the rollout still drops nothing.
  const uint64_t dropped_before = out.health.totals.dropped_requests;
  CheckOk(fleet->Serve(fleet->GenerateRequests(4 * instances), kFleetHandler),
          "post-rollout serve");
  CheckOk(fleet->metrics().Fleet().totals.dropped_requests == dropped_before
              ? Status::Ok()
              : Status::Internal("quarantined instance dropped requests"),
          "degraded-mode serving");

  // Recovery audit: which side did each journal replay land on, and did
  // every wave see its crashes?
  std::set<int> crash_waves;
  for (const RolloutEvent& event : coordinator.log().events()) {
    if (event.kind == RolloutEvent::Kind::kCrash) {
      crash_waves.insert(event.wave);
    } else if (event.kind == RolloutEvent::Kind::kRecovery) {
      out.recoveries_old +=
          event.detail.find("fully-old") != std::string::npos ? 1 : 0;
      out.recoveries_new +=
          event.detail.find("fully-new") != std::string::npos ? 1 : 0;
    }
  }
  out.waves_with_crashes = static_cast<int>(crash_waves.size());
  CheckOk(out.waves_with_crashes == out.report.waves_attempted
              ? Status::Ok()
              : Status::Internal("a wave advanced without its crash"),
          "crashes at every wave");
  CheckOk(out.recoveries_old > 0 && out.recoveries_new > 0
              ? Status::Ok()
              : Status::Internal("recovery sweep missed one side of the "
                                 "never-torn proof"),
          "both fully-old and fully-new recoveries seen");

  RecordCommitOutcome(out.health.totals.commit);
  return out;
}

void Run() {
  PrintHeader("Fleet chaos: crash-consistent rollouts under injected failure",
              "beyond-paper: ROADMAP fleet north-star; INTERNALS.md §16");
  const int instances = EnvOr("MV_FLEET_INSTANCES", 64);
  const int waves = EnvOr("MV_FLEET_WAVES", 4);
  const uint64_t seed =
      static_cast<uint64_t>(EnvOr("MV_CHAOS_SEED", 20260807));
  PrintNote("Every instance is killed at a write-ahead-journal boundary on");
  PrintNote("its first flip attempt (even instances at a record boundary,");
  PrintNote("odd ones mid-record); seeded chaos wedges cores and slows");
  PrintNote("commits on the retries. Recovery replays the journal, rebuilds");
  PrintNote("a replacement from source and proves it bit-identical.");

  ChaosRunResult headline = RunChaosRollout(instances, waves, seed,
                                            /*protocol=*/std::nullopt);
  const RolloutReport& report = headline.report;
  PrintRow("fleet size", instances, "inst", "every instance killed once");
  PrintRow("rollout waves", report.waves_attempted, "");
  PrintRow("waves with crashes", headline.waves_with_crashes, "",
           "headline: every wave");
  PrintRow("crash recoveries", double(report.crash_recoveries), "",
           "journal replay + rebuild + proof");
  PrintRow("recovered fully-old", headline.recoveries_old, "",
           "unsealed tail undone");
  PrintRow("recovered fully-new", headline.recoveries_new, "",
           "sealed flip redone");
  PrintRow("commit timeouts (strikes)", double(report.commit_timeouts), "",
           "wedge / deadline / dropped health");
  PrintRow("quarantined instances", double(report.quarantined_instances),
           "inst", "serving pre-rollout config");
  PrintRow("instances flipped", double(report.flipped_instances), "inst");
  PrintRow("torn instances", double(report.identity_mismatches), "",
           "headline: zero");
  PrintRow("dropped healthy requests",
           double(headline.health.totals.dropped_requests), "req",
           "headline: zero");
  PrintRow("torn requests", double(headline.health.totals.torn_requests),
           "req", "headline: zero");
  PrintRow("requests served",
           double(headline.health.totals.requests_served), "req");
  RecordChaosCounters(report.crash_recoveries, report.quarantined_instances,
                      report.commit_timeouts);

  PrintNote("-- protocol matrix: same scripted deaths under each live-commit "
            "protocol --");
  const CommitProtocol kProtocols[] = {CommitProtocol::kQuiescence,
                                       CommitProtocol::kBreakpoint,
                                       CommitProtocol::kWaitFree};
  const int matrix_instances = std::max(8, instances / 4);
  for (CommitProtocol protocol : kProtocols) {
    ChaosRunResult r =
        RunChaosRollout(matrix_instances, waves, seed ^ static_cast<uint64_t>(protocol),
                        protocol);
    const std::string prefix = std::string(CommitProtocolName(protocol));
    PrintRow(prefix + ": crash recoveries", double(r.report.crash_recoveries),
             "", "all proven fully-old or fully-new");
    JsonMetric(prefix + ": waves with crashes", r.waves_with_crashes);
    JsonMetric(prefix + ": recovered fully-old", r.recoveries_old);
    JsonMetric(prefix + ": recovered fully-new", r.recoveries_new);
    JsonMetric(prefix + ": commit timeouts", double(r.report.commit_timeouts));
    JsonMetric(prefix + ": quarantined",
               double(r.report.quarantined_instances));
    JsonMetric(prefix + ": torn instances",
               double(r.report.identity_mismatches));
    JsonMetric(prefix + ": dropped requests",
               double(r.health.totals.dropped_requests));
    RecordChaosCounters(r.report.crash_recoveries,
                        r.report.quarantined_instances,
                        r.report.commit_timeouts);
  }
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

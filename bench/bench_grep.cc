// Reproduces §6.2.3: GNU grep end-to-end with the multiversed multibyte-mode
// variable, searching "a.a" in hexadecimal-formatted random text.
//
// Paper (2 GiB ramdisk file, 100 runs): 7.84 s -> 7.63 s, −2.73 %.
// Our input is scaled down (the VM interprets); the metric is the relative
// change of the whole matcher run.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/grep.h"
#include "src/workloads/harness.h"

namespace mv {
namespace {

void Run() {
  PrintHeader("GNU grep: multibyte-mode specialization of the match loop",
              "Section 6.2.3");

  // Single-byte locale (mb_cur_max = 1), like the paper's benchmark run.
  std::unique_ptr<Program> without = CheckOk(BuildGrep(), "build grep");
  CheckOk(SetGrepMode(without.get(), 1, /*commit=*/false), "set mode");
  const GrepRunResult base = CheckOk(RunGrep(without.get()), "run grep");

  std::unique_ptr<Program> with = CheckOk(BuildGrep(), "build grep");
  CheckOk(SetGrepMode(with.get(), 1, /*commit=*/true), "set mode");
  const GrepRunResult committed = CheckOk(RunGrep(with.get()), "run grep");

  if (base.matches != committed.matches) {
    std::fprintf(stderr, "FATAL: match counts diverge (%llu vs %llu)\n",
                 (unsigned long long)base.matches, (unsigned long long)committed.matches);
    std::abort();
  }

  const double delta = (committed.cycles - base.cycles) / base.cycles * 100.0;
  std::printf("  matches found: %llu (both runs)\n", (unsigned long long)base.matches);
  std::printf("  w/o multiverse: %12.0f cycles  (%.3f s scaled @%.1f GHz)\n", base.cycles,
              CyclesToSeconds(base.cycles), kNominalGHz);
  std::printf("  w/  multiverse: %12.0f cycles  (%.3f s scaled @%.1f GHz)\n",
              committed.cycles, CyclesToSeconds(committed.cycles), kNominalGHz);
  std::printf("  delta: %+.2f %%   (paper: -2.73 %%, 7.84 s -> 7.63 s)\n", delta);
  JsonMetric("matches", static_cast<double>(base.matches));
  JsonMetric("w/o multiverse", base.cycles, "cycles");
  JsonMetric("w/ multiverse", committed.cycles, "cycles");
  JsonMetric("delta", delta, "%");

  // Cross-check: the multibyte mode still works after revert.
  std::unique_ptr<Program> mb = CheckOk(BuildGrep(), "build grep");
  CheckOk(SetGrepMode(mb.get(), 4, /*commit=*/true), "set mb mode");
  const GrepRunResult mb_run = CheckOk(RunGrep(mb.get()), "run grep mb");
  std::printf("\n  multibyte locale (mb_cur_max=4, committed): %llu matches, %.0f cycles\n",
              (unsigned long long)mb_run.matches, mb_run.cycles);
  JsonMetric("multibyte committed", mb_run.cycles, "cycles");
  PrintNote("");
  PrintNote("Expected shape: a small single-digit-percent end-to-end win — the");
  PrintNote("mode check is a small fraction of a well-optimized inner loop.");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Ablation for the paper's §1 motivation: the dynamic-variability branch is
// nearly free in a warm microbenchmark loop but costs 15-20 cycles when
// mispredicted on real execution paths ("the induced branch has a high
// chance to be mispredicted, which causes a penalty of 15-20 cycles that
// would effectively kill the possible benefit").
//
// We measure the spinlock pair with warm predictors (the paper's
// microbenchmark situation) and with predictors flushed before every pair
// (the cold/polluted-BTB situation of real kernel execution paths), for the
// dynamic-if kernel and the multiversed kernel.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/harness.h"
#include "src/workloads/kernel.h"

namespace mv {
namespace {

// Measures one lock/unlock pair `rounds` times, flushing all predictor state
// before each pair, and returns the mean cycles per pair.
double MeasureColdPair(Program* program, int rounds) {
  const uint64_t fn =
      CheckOk(program->SymbolAddress("bench_pair"), "resolve bench_pair");
  double total = 0;
  // Warm the icache/decoder first so only predictor state is cold.
  CheckOk(program->CallAt(fn, {64}), "warmup");
  for (int i = 0; i < rounds; ++i) {
    program->vm().FlushPredictors();
    Core& core = program->vm().core(0);
    const uint64_t before = core.ticks;
    CheckOk(program->CallAt(fn, {1}), "cold pair");
    total += TicksToCycles(core.ticks - before);
  }
  // Subtract the cold cost of the empty loop harness the same way.
  const uint64_t empty =
      CheckOk(program->SymbolAddress("bench_empty"), "resolve bench_empty");
  double harness = 0;
  CheckOk(program->CallAt(empty, {64}), "warmup empty");
  for (int i = 0; i < rounds; ++i) {
    program->vm().FlushPredictors();
    Core& core = program->vm().core(0);
    const uint64_t before = core.ticks;
    CheckOk(program->CallAt(empty, {1}), "cold empty");
    harness += TicksToCycles(core.ticks - before);
  }
  return (total - harness) / rounds;
}

void Run() {
  PrintHeader("Branch-predictor ablation: warm loop vs cold execution path",
              "Section 1 motivation (footnote: 16.5/19-20 cycle penalty)");

  for (SpinBinding binding : {SpinBinding::kDynamicIf, SpinBinding::kMultiverse}) {
    std::unique_ptr<Program> program =
        CheckOk(BuildSpinlockKernel(binding), "build kernel");
    CheckOk(SetSmpMode(program.get(), binding, /*smp=*/false), "set UP");
    const double warm = CheckOk(MeasureSpinlockPair(program.get()), "warm measure");
    const double cold = MeasureColdPair(program.get(), 64);
    std::printf("  %-28s warm: %7.2f cyc/pair   cold predictors: %7.2f cyc/pair\n",
                SpinBindingName(binding), warm, cold);
    JsonMetric(std::string(SpinBindingName(binding)) + " warm", warm,
               "cycles/pair");
    JsonMetric(std::string(SpinBindingName(binding)) + " cold", cold,
               "cycles/pair");
  }
  PrintNote("");
  PrintNote("Expected shape: with cold predictors the dynamic-if kernel pays");
  PrintNote("additional misprediction penalties for its config_smp branches,");
  PrintNote("while the multiversed kernel has no such branches to mispredict —");
  PrintNote("its warm/cold gap comes only from the call/return machinery that");
  PrintNote("both kernels share.");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Shared output helpers for the benchmark binaries: each binary reproduces
// one table/figure of the paper and prints it in a paper-like layout, plus
// the paper's published numbers for side-by-side comparison.
#ifndef MULTIVERSE_BENCH_BENCH_COMMON_H_
#define MULTIVERSE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace mv {

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n(reproduces %s)\n", experiment, paper_ref);
  std::printf("==============================================================\n");
}

inline void PrintRow(const std::string& label, double value, const char* unit,
                     const char* note = "") {
  std::printf("  %-44s %10.2f %-8s %s\n", label.c_str(), value, unit, note);
}

inline void PrintNote(const std::string& note) { std::printf("  %s\n", note.c_str()); }

// Benchmarks abort on infrastructure errors — a failed build is a bug, not a
// data point.
template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result.value());
}

inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

}  // namespace mv

#endif  // MULTIVERSE_BENCH_BENCH_COMMON_H_

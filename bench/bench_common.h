// Shared output helpers for the benchmark binaries: each binary reproduces
// one table/figure of the paper and prints it in a paper-like layout, plus
// the paper's published numbers for side-by-side comparison.
#ifndef MULTIVERSE_BENCH_BENCH_COMMON_H_
#define MULTIVERSE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/commit_stats.h"
#include "src/core/plan_cache.h"
#include "src/support/status.h"
#include "src/vm/superblock.h"

namespace mv {

// Machine-readable results. Every bench main goes through BenchMain(), which
// parses `--json <path>`; when given, all PrintRow values plus any metrics
// recorded with JsonMetric (cycles, ticks, icache flushes, patch counts, ...)
// are written to `path` as one JSON document at exit, so the per-PR
// BENCH_*.json perf trajectory can accumulate.
class BenchReport {
 public:
  static BenchReport& Instance() {
    static BenchReport report;
    return report;
  }

  void Init(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      std::string engine_name;
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[i + 1];
        ++i;
      } else if (arg == "--dispatch" && i + 1 < argc) {
        engine_name = argv[i + 1];
        ++i;
      } else if (arg.rfind("--dispatch=", 0) == 0) {
        engine_name = arg.substr(std::string("--dispatch=").size());
      }
      if (!engine_name.empty()) {
        Result<DispatchEngine> engine = ParseDispatchEngine(engine_name);
        if (!engine.ok()) {
          std::fprintf(stderr, "bench: %s\n", engine.status().ToString().c_str());
          std::exit(2);
        }
        // Newly constructed Vms (one per Program::Build) inherit this.
        SetDefaultDispatchEngine(*engine);
      }
    }
  }

  void SetExperiment(const std::string& name, const std::string& paper_ref) {
    if (experiment_.empty()) {
      experiment_ = name;
      paper_ref_ = paper_ref;
    }
  }

  void Add(const std::string& label, double value, const std::string& unit) {
    metrics_.push_back(Metric{label, unit, value});
  }

  // Accumulates transactional-commit accounting (txn.h TxnStats) into the
  // report header: every --json document carries top-level "rollbacks" and
  // "retries" so the perf trajectory shows when a bench run had to recover.
  void RecordTxn(int rollbacks, int retries) {
    rollbacks_ += rollbacks;
    retries_ += retries;
  }

  // Live-commit disturbance accounting. Every --json document carries
  // top-level "disturbance_cycles" and "parked_cycles" (0 for benches that
  // never commit under load) so the perf trajectory can assert the wait-free
  // headline — zero disturbance — without parsing per-row metric labels.
  void RecordDisturbance(double disturbance_cycles, double parked_cycles) {
    disturbance_cycles_ += disturbance_cycles;
    parked_cycles_ += parked_cycles;
  }

  // Variational-execution accounting (src/vm/varexec.h). Carried as
  // top-level "configs_covered" / "varexec_forks" / "varexec_merges" fields
  // in every --json document so perf-smoke and the varexec-smoke CI job can
  // assert exhaustive coverage (configs_covered == |domain cross-product|)
  // without parsing per-row metric labels.
  void RecordVarexec(uint64_t configs_covered, uint64_t forks, uint64_t merges) {
    configs_covered_ += configs_covered;
    varexec_forks_ += forks;
    varexec_merges_ += merges;
  }

  // Failure-tolerance accounting (fleet chaos engine, durable journal).
  // Carried as top-level "crash_recoveries" / "quarantined_instances" /
  // "commit_timeouts" fields in every --json document so the chaos-smoke CI
  // job can assert that injected crashes really exercised the recovery path
  // (crash_recoveries > 0) without parsing per-row metric labels.
  void RecordChaos(uint64_t crash_recoveries, uint64_t quarantined_instances,
                   uint64_t commit_timeouts) {
    crash_recoveries_ += crash_recoveries;
    quarantined_instances_ += quarantined_instances;
    commit_timeouts_ += commit_timeouts;
  }

  // Threaded-tier accounting (src/vm/threaded.h). Carried as top-level
  // "threaded_promotions" / "threaded_deopts" / "threaded_patchpoint_commits"
  // fields in every --json document so perf-smoke can assert the compiled
  // tier actually engaged (promotions > 0) and that live commits landing on
  // compiled traces were observed, without parsing per-row metric labels.
  void RecordThreaded(uint64_t promotions, uint64_t deopts,
                      uint64_t patchpoint_commits) {
    threaded_promotions_ += promotions;
    threaded_deopts_ += deopts;
    threaded_patchpoint_commits_ += patchpoint_commits;
  }

  // Commit-storm scheduler accounting (src/core/commit_scheduler.h). Carried
  // as top-level "storm_flips_submitted" / "storm_flips_elided_null" /
  // "storm_plans_committed" / "storm_batch_p99_cycles" fields in every --json
  // document so perf-smoke can assert the coalescing ratio and the bounded
  // batch latency without parsing per-row metric labels. The p99 field is a
  // gauge: the worst batch p99 any recorded outcome reported.
  void RecordStorm(uint64_t flips_submitted, uint64_t flips_elided_null,
                   uint64_t plans_committed, double batch_p99_cycles) {
    storm_flips_submitted_ += flips_submitted;
    storm_flips_elided_null_ += flips_elided_null;
    storm_plans_committed_ += plans_committed;
    if (batch_p99_cycles > storm_batch_p99_cycles_) {
      storm_batch_p99_cycles_ = batch_p99_cycles;
    }
  }

  // Superblock invalidation accounting: evictions incurred by the same
  // workload under the broadcast baseline vs. scoped (epoch-gated, word-
  // granular) invalidation. Carried at top level in every --json document so
  // CI can assert scoped < broadcast.
  void RecordEvictions(uint64_t broadcast, uint64_t scoped) {
    sb_evictions_broadcast_ += broadcast;
    sb_evictions_scoped_ += scoped;
  }

  void Write() const {
    if (path_.empty()) {
      return;
    }
    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open --json path '%s'\n", path_.c_str());
      std::exit(1);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"experiment\": \"%s\",\n", Escaped(experiment_).c_str());
    std::fprintf(f, "  \"paper_ref\": \"%s\",\n", Escaped(paper_ref_).c_str());
    std::fprintf(f, "  \"dispatch\": \"%s\",\n",
                 DispatchEngineName(DefaultDispatchEngine()));
    std::fprintf(f, "  \"rollbacks\": %d,\n", rollbacks_);
    std::fprintf(f, "  \"retries\": %d,\n", retries_);
    std::fprintf(f, "  \"disturbance_cycles\": %.10g,\n", disturbance_cycles_);
    std::fprintf(f, "  \"parked_cycles\": %.10g,\n", parked_cycles_);
    std::fprintf(f, "  \"superblock_evictions_broadcast\": %llu,\n",
                 (unsigned long long)sb_evictions_broadcast_);
    std::fprintf(f, "  \"superblock_evictions_scoped\": %llu,\n",
                 (unsigned long long)sb_evictions_scoped_);
    std::fprintf(f, "  \"crash_recoveries\": %llu,\n",
                 (unsigned long long)crash_recoveries_);
    std::fprintf(f, "  \"quarantined_instances\": %llu,\n",
                 (unsigned long long)quarantined_instances_);
    std::fprintf(f, "  \"commit_timeouts\": %llu,\n",
                 (unsigned long long)commit_timeouts_);
    std::fprintf(f, "  \"threaded_promotions\": %llu,\n",
                 (unsigned long long)threaded_promotions_);
    std::fprintf(f, "  \"threaded_deopts\": %llu,\n",
                 (unsigned long long)threaded_deopts_);
    std::fprintf(f, "  \"threaded_patchpoint_commits\": %llu,\n",
                 (unsigned long long)threaded_patchpoint_commits_);
    std::fprintf(f, "  \"storm_flips_submitted\": %llu,\n",
                 (unsigned long long)storm_flips_submitted_);
    std::fprintf(f, "  \"storm_flips_elided_null\": %llu,\n",
                 (unsigned long long)storm_flips_elided_null_);
    std::fprintf(f, "  \"storm_plans_committed\": %llu,\n",
                 (unsigned long long)storm_plans_committed_);
    std::fprintf(f, "  \"storm_batch_p99_cycles\": %.10g,\n",
                 storm_batch_p99_cycles_);
    std::fprintf(f, "  \"configs_covered\": %llu,\n",
                 (unsigned long long)configs_covered_);
    std::fprintf(f, "  \"varexec_forks\": %llu,\n",
                 (unsigned long long)varexec_forks_);
    std::fprintf(f, "  \"varexec_merges\": %llu,\n",
                 (unsigned long long)varexec_merges_);
    // Commit fast-path accounting (plan_cache.h), process-wide so every bench
    // document carries the counters regardless of how many runtimes it built.
    const CommitFastPathStats& fast = GlobalCommitCounters::Instance().totals;
    std::fprintf(f, "  \"plan_cache_hits\": %llu,\n",
                 (unsigned long long)fast.plan_cache_hits);
    std::fprintf(f, "  \"plan_cache_misses\": %llu,\n",
                 (unsigned long long)fast.plan_cache_misses);
    std::fprintf(f, "  \"mprotect_calls\": %llu,\n",
                 (unsigned long long)fast.mprotect_calls);
    std::fprintf(f, "  \"flush_ranges\": %llu,\n",
                 (unsigned long long)fast.flush_ranges);
    std::fprintf(f, "  \"fns_reevaluated\": %llu,\n",
                 (unsigned long long)fast.fns_reevaluated);
    std::fprintf(f, "  \"fns_skipped\": %llu,\n",
                 (unsigned long long)fast.fns_skipped);
    std::fprintf(f, "  \"metrics\": [\n");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "    {\"label\": \"%s\", \"value\": %.10g, \"unit\": \"%s\"}%s\n",
                   Escaped(m.label).c_str(), m.value, Escaped(m.unit).c_str(),
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Metric {
    std::string label;
    std::string unit;
    double value = 0;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string path_;
  std::string experiment_;
  std::string paper_ref_;
  std::vector<Metric> metrics_;
  int rollbacks_ = 0;
  int retries_ = 0;
  double disturbance_cycles_ = 0;
  double parked_cycles_ = 0;
  uint64_t sb_evictions_broadcast_ = 0;
  uint64_t sb_evictions_scoped_ = 0;
  uint64_t threaded_promotions_ = 0;
  uint64_t threaded_deopts_ = 0;
  uint64_t threaded_patchpoint_commits_ = 0;
  uint64_t crash_recoveries_ = 0;
  uint64_t quarantined_instances_ = 0;
  uint64_t commit_timeouts_ = 0;
  uint64_t configs_covered_ = 0;
  uint64_t varexec_forks_ = 0;
  uint64_t varexec_merges_ = 0;
  uint64_t storm_flips_submitted_ = 0;
  uint64_t storm_flips_elided_null_ = 0;
  uint64_t storm_plans_committed_ = 0;
  double storm_batch_p99_cycles_ = 0;
};

// Convenience forwarder for bench bodies.
inline void RecordTxnOutcome(int rollbacks, int retries) {
  BenchReport::Instance().RecordTxn(rollbacks, retries);
}

// Failure-tolerance forwarder (mirrors RecordTxnOutcome): benches that crash
// instances or run fault-tolerant rollouts funnel their recovery accounting
// into the --json header through this one call.
inline void RecordChaosCounters(uint64_t crash_recoveries,
                                uint64_t quarantined_instances,
                                uint64_t commit_timeouts) {
  BenchReport::Instance().RecordChaos(crash_recoveries, quarantined_instances,
                                      commit_timeouts);
}

// Threaded-tier forwarder (mirrors RecordChaosCounters): benches that run the
// compiled tier funnel its promotion/deopt/patch-point accounting into the
// --json header through this one call.
inline void RecordThreadedCounters(uint64_t promotions, uint64_t deopts,
                                   uint64_t patchpoint_commits) {
  BenchReport::Instance().RecordThreaded(promotions, deopts, patchpoint_commits);
}

// One-call accounting for a whole commit outcome (commit_stats.h). Benches
// used to hand-pick counters out of TxnStats/LiveCommitStats individually,
// which drifted as counters were added; anything that produces a CommitStats
// (LiveCommitStats::Summary(), CommitStatsFromTxn, CommitOutcome::stats)
// lands in the report header through this single funnel.
inline void RecordCommitOutcome(const CommitStats& stats) {
  BenchReport::Instance().RecordTxn(stats.rollbacks, stats.retries);
  BenchReport::Instance().RecordDisturbance(stats.disturbance_cycles,
                                            stats.parked_cycles);
  BenchReport::Instance().RecordStorm(
      stats.storm_flips_submitted, stats.storm_flips_elided_null,
      stats.storm_plans_committed, stats.storm_batch_p99_cycles);
}

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n(reproduces %s)\n", experiment, paper_ref);
  std::printf("==============================================================\n");
  BenchReport::Instance().SetExperiment(experiment, paper_ref);
}

inline void PrintRow(const std::string& label, double value, const char* unit,
                     const char* note = "") {
  std::printf("  %-44s %10.2f %-8s %s\n", label.c_str(), value, unit, note);
  BenchReport::Instance().Add(label, value, unit);
}

inline void PrintNote(const std::string& note) { std::printf("  %s\n", note.c_str()); }

// Records a value into the --json report without printing it — for benches
// whose table layout does not go through PrintRow.
inline void JsonMetric(const std::string& label, double value,
                       const std::string& unit = "") {
  BenchReport::Instance().Add(label, value, unit);
}

// Uniform bench entry point: parses common flags (--json <path>), runs the
// benchmark body, and writes the report.
inline int BenchMain(int argc, char** argv, void (*run)()) {
  BenchReport::Instance().Init(argc, argv);
  run();
  BenchReport::Instance().Write();
  return 0;
}

// Benchmarks abort on infrastructure errors — a failed build is a bug, not a
// data point.
template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result.value());
}

inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

}  // namespace mv

#endif  // MULTIVERSE_BENCH_BENCH_COMMON_H_

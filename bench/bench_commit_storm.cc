// Commit storm: the CommitScheduler (src/core/commit_scheduler.h) absorbing
// a control-plane flood of switch flips while the server workload
// (src/workloads/server.h) serves a deterministic request stream — the
// scenario beyond the paper's one-flip-per-epoch premise (§6.2.2 generalized
// to a server's operational knobs; EXPERIMENTS.md S9).
//
// Model, per (protocol x engine) cell:
//   * core 0 runs an open-loop event loop: requests arrive on a fixed
//     schedule, each is served to completion; latency = completion - arrival
//     in modelled cycles, so a commit that blocks the loop shows up as
//     queueing delay on every request behind it.
//   * core 1 runs a serve_batch mutator mid-flight the whole time — the live
//     protocols must commit around it (mutator_cores = {1}), and its served
//     counter is the torn-request detector.
//   * a deterministic SplitMix64 flip stream (2 flips per request slot) is
//     submitted to the scheduler by arrival time; the scheduler debounces,
//     elides null batches, and commits coalesced plans through
//     multiverse_commit_live.
//
// Both passes serve the same request stream from the same all-on starting
// configuration (the worst-cost config the storm can select), so the
// baseline/storm p99 comparison isolates commit-machinery overhead from
// configuration content. Headline assertions, every cell:
//   p99(storm) <= 1.15 x p99(no-storm), coalescing ratio >= 4,
//   0 torn background requests, 0 dropped foreground requests,
//   absorbed flip rate >= 1000 flips/sec of modelled time.
// Plus the S9 before/after contrast: the same storm with one commit per flip
// (no scheduler) on the wait-free/superblock cell.
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/commit_scheduler.h"
#include "src/core/program.h"
#include "src/livepatch/livepatch.h"
#include "src/obj/linker.h"
#include "src/support/rng.h"
#include "src/workloads/harness.h"
#include "src/workloads/server.h"

namespace mv {
namespace {

constexpr uint64_t kBaselineRequests = 1200;  // no-storm p99 sample size
constexpr uint64_t kStormRequests = 3000;     // storm p99 sample size
constexpr uint64_t kBatchRequests = 400;      // core-1 background batch
constexpr uint64_t kWarmupSteps = 500;        // park core 1 mid-batch
constexpr uint64_t kFlipSeed = 0x57082024ull;
// Storm shape: two flips per request slot, window sized for ~6 drains per
// pass (span / 6) so drain stalls stay inside the 1% latency tail.
constexpr int kFlipsPerSlot = 2;
constexpr int kWindowsPerSpan = 6;

double P99(std::vector<double> samples) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  size_t index = (99 * samples.size() + 99) / 100;  // ceil(0.99 * n)
  if (index > samples.size()) {
    index = samples.size();
  }
  return samples[index - 1];
}

// Builds the server and commits the all-on configuration: the worst-cost
// config in the storm's reach, so baseline and storm p99 are comparable.
std::unique_ptr<Program> BuildAllOnServer() {
  std::unique_ptr<Program> program =
      CheckOk(BuildServer(/*cores=*/2), "build server");
  for (const std::string& name : ServerSwitches()) {
    CheckOk(program->WriteGlobal(name, 1, 4), "set switch on");
  }
  CheckOk(program->runtime().Commit().status(), "all-on commit");
  return program;
}

// Serves `count` requests with no storm and no queueing (each request
// arrives exactly when the loop is free): latency == service time. The storm
// pass reuses the same request stream, so any p99 delta is queueing behind
// commits, not configuration content.
std::vector<double> ServeBaseline(Program* program, uint64_t count) {
  std::vector<double> latencies;
  latencies.reserve(count);
  for (uint64_t r = 0; r < count; ++r) {
    latencies.push_back(CheckOk(
        ServeRequestCycles(program, r & 7, SplitMix64(kFlipSeed + 2 * r)),
        "serve baseline request"));
  }
  return latencies;
}

// One measured live commit (flip srv_trace_on off and back on), used to
// calibrate the storm's inter-arrival slack to the cell's commit cost.
double ProbeCommitCycles(Program* program, CommitProtocol protocol) {
  double worst = 0;
  for (int value : {0, 1}) {
    CheckOk(program->WriteGlobal("srv_trace_on", value, 4), "probe flip");
    LiveCommitOptions options;
    options.protocol = protocol;
    LiveCommitStats stats = CheckOk(
        multiverse_commit_live(&program->vm(), &program->runtime(), options),
        "probe commit");
    worst = std::max(worst, stats.CommitCycles());
  }
  return worst;
}

struct StormOutcome {
  double p99_baseline = 0;
  double p99_storm = 0;
  double span_cycles = 0;
  uint64_t dropped = 0;  // foreground requests that failed (must be 0)
  uint64_t torn = 0;     // background requests that tore (must be 0)
  StormStats storm;
};

// The full cell: baseline pass, probe, storm pass, background drain.
// `per_flip` replaces the scheduler with one commit per flip — the S9
// before/after contrast (and the reason the scheduler exists).
StormOutcome RunCell(CommitProtocol protocol, bool per_flip) {
  std::unique_ptr<Program> program = BuildAllOnServer();
  StormOutcome outcome;

  // --- no-storm baseline --------------------------------------------------
  std::vector<double> base = ServeBaseline(program.get(), kBaselineRequests);
  double mean_service = 0;
  for (double cycles : base) {
    mean_service += cycles;
  }
  mean_service /= static_cast<double>(base.size());
  outcome.p99_baseline = P99(base);

  // Calibrate the open-loop schedule: enough slack per request that the loop
  // recovers from one coalesced commit stall within a handful of requests.
  const double commit_cost = ProbeCommitCycles(program.get(), protocol);
  const double slack = std::max(mean_service, commit_cost / 4.0);
  const double inter_arrival = mean_service + slack;
  const double span = static_cast<double>(kStormRequests) * inter_arrival;
  const double window = span / kWindowsPerSpan;
  const double flip_gap = inter_arrival / kFlipsPerSlot;
  const uint64_t total_flips = kStormRequests * kFlipsPerSlot;

  // --- background mutator -------------------------------------------------
  const int64_t served_before =
      CheckOk(program->ReadGlobal(kServerServedCounter), "read served");
  const uint64_t batch_addr =
      CheckOk(program->SymbolAddress(kServerBatchFn), "resolve serve_batch");
  SetupCall(program->image(), &program->vm(), batch_addr, {3, kBatchRequests},
            /*core=*/1);
  for (uint64_t i = 0; i < kWarmupSteps; ++i) {
    if (program->vm().Step(1).has_value()) {
      break;
    }
  }

  // --- the storm ----------------------------------------------------------
  StormOptions options;
  options.window_cycles = window;
  Program* prog = program.get();
  options.commit = [prog, protocol]() -> Result<BatchCommitResult> {
    LiveCommitOptions live;
    live.protocol = protocol;
    live.mutator_cores = {1};
    MV_ASSIGN_OR_RETURN(
        LiveCommitStats stats,
        multiverse_commit_live(&prog->vm(), &prog->runtime(), live));
    BatchCommitResult result;
    result.stats = stats.Summary();
    result.commit_cycles = stats.CommitCycles();
    return result;
  };
  CommitScheduler scheduler(prog, options);

  const std::vector<std::string>& switches = ServerSwitches();
  std::vector<double> latencies;
  latencies.reserve(kStormRequests);
  double now = 0;
  double per_flip_stall = 0;  // commit cycles charged by the no-scheduler path
  uint64_t per_flip_commits = 0;
  uint64_t next_flip = 0;
  for (uint64_t r = 0; r < kStormRequests; ++r) {
    const double arrival = static_cast<double>(r) * inter_arrival;
    // Control plane: every flip due by this arrival hits the scheduler (or,
    // in the per-flip contrast, a full commit of its own).
    while (next_flip < total_flips &&
           static_cast<double>(next_flip) * flip_gap <= arrival) {
      const uint64_t draw = SplitMix64(kFlipSeed ^ (next_flip * 2 + 1));
      const std::string& name = switches[draw % switches.size()];
      // Biased toward "off" (P(on) = 1/4): like the null-variability
      // observation motivating elision, most config pushes restate the
      // steady state, so whole windows frequently debounce to a null batch.
      const int64_t value = ((draw >> 32) & 3) == 0 ? 1 : 0;
      const double flip_at = static_cast<double>(next_flip) * flip_gap;
      if (per_flip) {
        CheckOk(prog->WriteGlobal(name, value, 4), "per-flip write");
        LiveCommitOptions live;
        live.protocol = protocol;
        live.mutator_cores = {1};
        LiveCommitStats stats = CheckOk(
            multiverse_commit_live(&prog->vm(), &prog->runtime(), live),
            "per-flip commit");
        per_flip_stall += stats.CommitCycles();
        now = std::max(now, flip_at) + stats.CommitCycles();
        ++per_flip_commits;
      } else {
        CheckOk(scheduler.Submit(name, value, flip_at), "submit flip");
      }
      ++next_flip;
    }
    if (!per_flip) {
      // A drain that runs here blocks the loop for its commit latency: the
      // scheduler charges it to busy_until and the requests behind it queue.
      CheckOk(scheduler.Poll(now).status(), "poll scheduler");
      now = std::max(now, scheduler.busy_until());
    }
    const double start = std::max(arrival, now);
    Result<double> served =
        ServeRequestCycles(prog, r & 7, SplitMix64(kFlipSeed + 2 * r));
    if (!served.ok()) {
      if (outcome.dropped == 0) {
        std::fprintf(stderr, "request %llu dropped: %s\n",
                     (unsigned long long)r,
                     served.status().ToString().c_str());
      }
      ++outcome.dropped;
      continue;
    }
    now = start + *served;
    latencies.push_back(now - arrival);
  }
  if (!per_flip) {
    CheckOk(scheduler.Flush(now).status(), "flush scheduler");
    CheckOk(scheduler.idle() ? Status::Ok()
                             : Status::Internal("scheduler not drained"),
            "scheduler drained");
  }
  outcome.p99_storm = P99(latencies);
  outcome.span_cycles = span;
  outcome.storm = scheduler.stats();
  if (per_flip) {
    outcome.storm.flips_submitted = total_flips;
    outcome.storm.plans_committed = per_flip_commits;
    outcome.storm.busy_cycles = per_flip_stall;
  }

  // --- drain the background batch: 0 torn or bust -------------------------
  const uint64_t budget = 10'000 * (kBatchRequests + 1) + 100'000;
  const VmExit exit = program->vm().Run(1, budget);
  CheckOk(exit.kind == VmExit::Kind::kHalt
              ? Status::Ok()
              : Status::Internal("background batch tore: " + exit.ToString()),
          "drain background batch");
  const int64_t served_after =
      CheckOk(program->ReadGlobal(kServerServedCounter), "read served after");
  const uint64_t foreground = kStormRequests - outcome.dropped;
  const uint64_t expected = foreground + kBatchRequests;
  const uint64_t delta = static_cast<uint64_t>(served_after - served_before);
  outcome.torn = delta < expected ? expected - delta : 0;
  return outcome;
}

void ReportCell(const std::string& label, const StormOutcome& outcome) {
  PrintRow(label + ": p99 no-storm", outcome.p99_baseline, "cycles");
  PrintRow(label + ": p99 under storm", outcome.p99_storm, "cycles");
  JsonMetric(label + ": flips submitted",
             static_cast<double>(outcome.storm.flips_submitted));
  JsonMetric(label + ": flips elided null",
             static_cast<double>(outcome.storm.flips_elided_null));
  JsonMetric(label + ": plans committed",
             static_cast<double>(outcome.storm.plans_committed));
  JsonMetric(label + ": coalescing ratio", outcome.storm.CoalescingRatio());
  JsonMetric(label + ": batch p99", outcome.storm.BatchP99Cycles(), "cycles");
  JsonMetric(label + ": backpressure waits",
             static_cast<double>(outcome.storm.backpressure_waits));
  JsonMetric(label + ": max queue depth",
             static_cast<double>(outcome.storm.max_queue_depth));
  const double flips_per_sec =
      static_cast<double>(outcome.storm.flips_submitted) /
      CyclesToSeconds(outcome.span_cycles);
  JsonMetric(label + ": flips per sec", flips_per_sec, "1/s");
  JsonMetric(label + ": torn", static_cast<double>(outcome.torn));
  JsonMetric(label + ": dropped", static_cast<double>(outcome.dropped));
}

void CheckCell(const std::string& label, const StormOutcome& outcome) {
  CheckOk(outcome.torn == 0
              ? Status::Ok()
              : Status::Internal(label + ": background requests tore"),
          "0 torn");
  CheckOk(outcome.dropped == 0
              ? Status::Ok()
              : Status::Internal(label + ": foreground requests dropped"),
          "0 dropped");
  CheckOk(outcome.p99_storm <= 1.15 * outcome.p99_baseline
              ? Status::Ok()
              : Status::Internal(label + ": storm p99 above 1.15x baseline"),
          "flat p99 under storm");
  CheckOk(outcome.storm.CoalescingRatio() >= 4.0
              ? Status::Ok()
              : Status::Internal(label + ": coalescing ratio below 4"),
          "coalescing ratio");
  const double flips_per_sec =
      static_cast<double>(outcome.storm.flips_submitted) /
      CyclesToSeconds(outcome.span_cycles);
  CheckOk(flips_per_sec >= 1000.0
              ? Status::Ok()
              : Status::Internal(label + ": storm below 1000 flips/sec"),
          "absorbed flip rate");
}

void Run() {
  PrintHeader("Commit storm: coalesced scheduler vs. per-flip commits",
              "beyond-paper; musl lock elision (6.2.2) as a server workload");
  PrintNote("2-core server VM; core 0 serves an open-loop request stream,");
  PrintNote("core 1 runs a background batch mid-flight; a SplitMix64 flip");
  PrintNote("stream floods the CommitScheduler, which debounces, elides null");
  PrintNote("batches, and commits coalesced plans through every protocol on");
  PrintNote("every dispatch engine.");

  const DispatchEngine prior = DefaultDispatchEngine();
  CommitStats accumulated;
  for (DispatchEngine engine : {DispatchEngine::kLegacy,
                                DispatchEngine::kSuperblock,
                                DispatchEngine::kThreaded}) {
    SetDefaultDispatchEngine(engine);
    for (CommitProtocol protocol : {CommitProtocol::kQuiescence,
                                    CommitProtocol::kBreakpoint,
                                    CommitProtocol::kWaitFree}) {
      const std::string label = std::string(CommitProtocolName(protocol)) +
                                "/" + DispatchEngineName(engine);
      const StormOutcome outcome = RunCell(protocol, /*per_flip=*/false);
      ReportCell(label, outcome);
      CheckCell(label, outcome);
      accumulated.Accumulate(outcome.storm.Summary());
    }
  }

  // S9 before/after: the same storm, one commit per flip, on the wait-free/
  // superblock cell — what the request loop pays without the scheduler.
  SetDefaultDispatchEngine(DispatchEngine::kSuperblock);
  const StormOutcome per_flip = RunCell(CommitProtocol::kWaitFree,
                                        /*per_flip=*/true);
  PrintRow("per-flip (no scheduler): p99 no-storm", per_flip.p99_baseline,
           "cycles");
  PrintRow("per-flip (no scheduler): p99 under storm", per_flip.p99_storm,
           "cycles");
  JsonMetric("per-flip (no scheduler): plans committed",
             static_cast<double>(per_flip.storm.plans_committed));
  JsonMetric("per-flip (no scheduler): torn",
             static_cast<double>(per_flip.torn));
  CheckOk(per_flip.torn == 0 ? Status::Ok()
                             : Status::Internal("per-flip run tore"),
          "per-flip 0 torn");
  // The contrast the scheduler exists for: per-flip commits blow the tail.
  CheckOk(per_flip.p99_storm > 1.15 * per_flip.p99_baseline
              ? Status::Ok()
              : Status::Internal("per-flip p99 unexpectedly flat — storm too "
                                 "weak to need the scheduler"),
          "per-flip p99 blows up");
  SetDefaultDispatchEngine(prior);

  PrintNote("all cells: p99 <= 1.15x no-storm, ratio >= 4, 0 torn/dropped.");
  // The elision path must actually engage across the sweep: a biased stream
  // whose windows frequently debounce back to the committed configuration.
  CheckOk(accumulated.storm_flips_elided_null > 0
              ? Status::Ok()
              : Status::Internal("no null batch was ever elided"),
          "null-flip elision engaged");
  RecordCommitOutcome(accumulated);
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// The combinatorial-explosion study of paper §7.1: variant count, descriptor
// bytes and text-segment growth as a function of the number of boolean
// switches one function references — and the two mitigations the paper
// offers: narrowed domains (here: booleans already are narrow) and *partial
// specialization*, which pins the cross product to the switches worth
// binding.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/program.h"
#include "src/support/str.h"

namespace mv {
namespace {

std::string ScalingSource(int num_switches, int bind_only) {
  std::string source;
  for (int i = 0; i < num_switches; ++i) {
    source += StrFormat("__attribute__((multiverse)) bool s%d;\n", i);
  }
  source += "long out;\n";
  if (bind_only > 0) {
    std::string names;
    for (int i = 0; i < bind_only; ++i) {
      names += (i != 0 ? ", s" : "s") + std::to_string(i);
    }
    source += StrFormat("__attribute__((multiverse(%s)))\n", names.c_str());
  } else {
    source += "__attribute__((multiverse))\n";
  }
  source += "void f() {\n";
  for (int i = 0; i < num_switches; ++i) {
    source += StrFormat("  if (s%d) { out = out + %d; }\n", i, i + 1);
  }
  source += "}\nvoid caller() { f(); }\n";
  return source;
}

struct Row {
  size_t generated = 0;
  size_t kept = 0;
  uint64_t descriptor_bytes = 0;
  uint64_t text_bytes = 0;
};

Row Measure(int num_switches, int bind_only) {
  BuildOptions options;
  options.specializer.max_variants_per_function = 1024;
  std::unique_ptr<Program> program = CheckOk(
      Program::Build({{"scale", ScalingSource(num_switches, bind_only)}}, options),
      "build");
  Row row;
  row.generated = program->specialize_stats().variants_generated;
  row.kept = program->specialize_stats().variants_kept;
  for (const char* name :
       {".mv.variables", ".mv.functions", ".mv.variants", ".mv.guards", ".mv.callsites"}) {
    auto it = program->image().sections.find(name);
    if (it != program->image().sections.end()) {
      row.descriptor_bytes += it->second.size;
    }
  }
  row.text_bytes = program->image().text_size;
  return row;
}

void Run() {
  PrintHeader("Variant explosion and partial specialization", "Section 7.1 discussion");

  std::printf("  full cross product (all referenced switches bound):\n");
  std::printf("    %-10s %10s %8s %12s %10s\n", "#switches", "generated", "kept",
              "descriptors", "text");
  for (int n = 1; n <= 6; ++n) {
    const Row row = Measure(n, 0);
    std::printf("    %-10d %10zu %8zu %9llu B %7llu B\n", n, row.generated, row.kept,
                (unsigned long long)row.descriptor_bytes,
                (unsigned long long)row.text_bytes);
    JsonMetric("full cross product n=" + std::to_string(n) + " variants kept",
               static_cast<double>(row.kept));
    JsonMetric("full cross product n=" + std::to_string(n) + " text",
               static_cast<double>(row.text_bytes), "bytes");
  }

  std::printf("\n  partial specialization (6 switches referenced, k bound):\n");
  std::printf("    %-10s %10s %8s %12s %10s\n", "k bound", "generated", "kept",
              "descriptors", "text");
  for (int k = 1; k <= 6; ++k) {
    const Row row = Measure(6, k);
    std::printf("    %-10d %10zu %8zu %9llu B %7llu B\n", k, row.generated, row.kept,
                (unsigned long long)row.descriptor_bytes,
                (unsigned long long)row.text_bytes);
    JsonMetric("partial specialization k=" + std::to_string(k) + " variants kept",
               static_cast<double>(row.kept));
    JsonMetric("partial specialization k=" + std::to_string(k) + " text",
               static_cast<double>(row.text_bytes), "bytes");
  }

  PrintNote("");
  PrintNote("Expected shape: the cross product doubles per boolean switch (2^n);");
  PrintNote("partial specialization caps it at 2^k while the unbound switches");
  PrintNote("stay dynamic inside every variant — the developer-controlled");
  PrintNote("mitigation the paper describes alongside explicit domains.");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// The SMAP scenario of paper §1.1: the kernel's `alternative` macro family
// exists to patch single instructions at boot — e.g. Supervisor Mode Access
// Protection toggles (stac/clac around user accesses) are "deactivated at
// boot time by overwriting with nop instructions if the boot processor does
// not support it".
//
// Multiverse subsumes this mechanism (the paper's unification claim): the
// CPU feature becomes a configuration switch, the toggle functions become
// multiversed variation points, and the committed variants are either the
// bare instruction (inlined into the call site, since it fits in 5 bytes) or
// nothing (the call site becomes NOPs) — byte-for-byte what `alternative`
// achieves, but through one generic compiler-assisted mechanism.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baseline/alternatives.h"
#include "src/core/program.h"
#include "src/support/str.h"
#include "src/workloads/harness.h"

namespace mv {
namespace {

// The access-protection toggle is modelled with FENCE (a serializing
// instruction of comparable cost to stac/clac).
constexpr char kSmapTemplate[] = R"(
%s int cpu_has_smap;

long user_bytes[64];
long sum;

%s
void uaccess_begin() {
  if (cpu_has_smap) {
    __builtin_fence();
  }
}

%s
void uaccess_end() {
  if (cpu_has_smap) {
    __builtin_fence();
  }
}

long copy_from_user(long idx) {
  long v;
  uaccess_begin();
  v = user_bytes[idx & 63];
  uaccess_end();
  return v;
}

void bench_copy(long n) {
  long i;
  for (i = 0; i < n; ++i) {
    sum = sum + copy_from_user(i);
  }
}

void bench_empty(long n) {
  long i;
  for (i = 0; i < n; ++i) {
  }
}
)";

double Measure(bool multiverse, bool has_smap, bool pinned) {
  const char* attr = multiverse ? "__attribute__((multiverse))" : "";
  const std::string source = StrFormat(kSmapTemplate, attr, attr, attr);
  BuildOptions options;
  if (pinned) {
    options.frontend.defines["cpu_has_smap"] = has_smap ? 1 : 0;
  }
  std::unique_ptr<Program> program =
      CheckOk(Program::Build({{"smap", source}}, options), "build smap kernel");
  CheckOk(program->WriteGlobal("cpu_has_smap", has_smap ? 1 : 0, 4), "write feature");
  if (multiverse) {
    CheckOk(program->runtime().Commit(), "commit");
  }
  return CheckOk(
      MeasurePerOpCycles(program.get(), "bench_copy", "bench_empty", 100000),
      "measure");
}

// The kernel's actual mechanism: compile the toggle in unconditionally, NOP
// it out at boot if the CPU lacks the feature.
constexpr char kAlternativeTemplate[] = R"(
long user_bytes[64];
long sum;

void uaccess_begin() {
  __builtin_fence();
}

void uaccess_end() {
  __builtin_fence();
}

long copy_from_user(long idx) {
  long v;
  uaccess_begin();
  v = user_bytes[idx & 63];
  uaccess_end();
  return v;
}

void bench_copy(long n) {
  long i;
  for (i = 0; i < n; ++i) {
    sum = sum + copy_from_user(i);
  }
}

void bench_empty(long n) {
  long i;
  for (i = 0; i < n; ++i) {
  }
}
)";

double MeasureAlternative(bool has_smap) {
  BuildOptions options;
  std::unique_ptr<Program> program = CheckOk(
      Program::Build({{"smap_alt", kAlternativeTemplate}}, options), "build alt kernel");
  if (!has_smap) {
    // Boot: the processor lacks SMAP; NOP the marked instructions in place.
    AlternativesPatcher patcher(&program->vm());
    for (const char* fn : {"uaccess_begin", "uaccess_end"}) {
      const uint64_t addr = CheckOk(program->SymbolAddress(fn), "symbol");
      const uint64_t size = CheckOk(program->FunctionSize(fn), "size");
      CheckOk(patcher.CollectSites(addr, size, Op::kFence), "collect");
    }
    const int patched = CheckOk(patcher.Apply(), "apply");
    if (patched != 2) {
      std::fprintf(stderr, "FATAL: expected 2 alternative sites, got %d\n", patched);
      std::abort();
    }
  }
  return CheckOk(
      MeasurePerOpCycles(program.get(), "bench_copy", "bench_empty", 100000),
      "measure");
}

void Run() {
  PrintHeader("SMAP-style boot-time feature patching: alternative vs multiverse",
              "Section 1.1 (alternative macro family)");

  std::printf("  %-44s %10s %10s\n", "", "SMAP off", "SMAP on");
  const double dyn_off = Measure(false, false, false);
  const double dyn_on = Measure(false, true, false);
  std::printf("  %-44s %6.2f cyc %6.2f cyc\n",
              "dynamic check per uaccess (no patching)", dyn_off, dyn_on);
  const double mv_off = Measure(true, false, false);
  const double mv_on = Measure(true, true, false);
  std::printf("  %-44s %6.2f cyc %6.2f cyc\n",
              "multiverse committed (call sites NOPed/inlined)", mv_off, mv_on);
  const double alt_off = MeasureAlternative(false);
  const double alt_on = MeasureAlternative(true);
  std::printf("  %-44s %6.2f cyc %6.2f cyc\n",
              "alternative macro (instructions NOPed at boot)", alt_off, alt_on);
  const double ifdef_off = Measure(false, false, true);
  const double ifdef_on = Measure(false, true, true);
  std::printf("  %-44s %6.2f cyc %6.2f cyc\n",
              "ideal compile-time binding (ifdef)", ifdef_off, ifdef_on);
  JsonMetric("dynamic check SMAP off", dyn_off, "cycles");
  JsonMetric("dynamic check SMAP on", dyn_on, "cycles");
  JsonMetric("multiverse SMAP off", mv_off, "cycles");
  JsonMetric("multiverse SMAP on", mv_on, "cycles");
  JsonMetric("alternative SMAP off", alt_off, "cycles");
  JsonMetric("alternative SMAP on", alt_on, "cycles");
  JsonMetric("ifdef SMAP off", ifdef_off, "cycles");
  JsonMetric("ifdef SMAP on", ifdef_on, "cycles");

  PrintNote("");
  PrintNote("Expected shape: committed multiverse matches (or beats, thanks to");
  PrintNote("call-site inlining) what the special-purpose `alternative` macro");
  PrintNote("achieves, without any hand-written patch metadata — the paper's");
  PrintNote("unification claim for the kernel's ad-hoc patching mechanisms.");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Dispatch-engine shootout: legacy fetch/decode vs superblock walk vs the
// threaded-code tier on the three case-study workloads (spinlock kernel,
// grep, musl libc).
//
// All engines must be bit-identical in modelled time — this bench enforces
// identical simulated cycle counts, retired-instruction counts and workload
// results across the full engine matrix, then reports the host-side
// interpreter speed (interpreted MIPS) per engine and the wall-clock speedup
// each tier buys over the previous one. Unlike the other benches, the
// interesting metric here is host wall-clock, not modelled cycles: the
// modelled numbers are asserted equal.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/vm/superblock.h"
#include "src/workloads/grep.h"
#include "src/workloads/harness.h"
#include "src/workloads/kernel.h"
#include "src/workloads/libc.h"

namespace mv {
namespace {

struct WorkloadRun {
  double wall_s = 0;       // host wall-clock of the measured section
  double sim_cycles = 0;   // modelled cycles consumed (all cores)
  uint64_t instret = 0;    // instructions retired in the section
  double metric = 0;       // workload result, for the equivalence check
  uint64_t threaded_promotions = 0;   // compiled-tier accounting (0 for the
  uint64_t threaded_deopts = 0;       // interpreting engines)
  uint64_t threaded_patchpoint_commits = 0;
};

void CaptureThreaded(const Vm& vm, WorkloadRun* run) {
  run->threaded_promotions = vm.threaded_promotions();
  run->threaded_deopts = vm.threaded_deopts();
  run->threaded_patchpoint_commits = vm.threaded_patchpoint_commits();
}

uint64_t TotalInstret(const Vm& vm) {
  uint64_t total = 0;
  for (int i = 0; i < vm.num_cores(); ++i) {
    total += vm.core(i).instret;
  }
  return total;
}

uint64_t TotalTicks(const Vm& vm) {
  uint64_t total = 0;
  for (int i = 0; i < vm.num_cores(); ++i) {
    total += vm.core(i).ticks;
  }
  return total;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Each workload builds a fresh Program (which inherits the process-default
// dispatch engine), then measures wall-clock around the run section only —
// compilation is host-side work common to both engines.
WorkloadRun RunSpinlock() {
  std::unique_ptr<Program> program =
      CheckOk(BuildSpinlockKernel(SpinBinding::kDynamicIf), "build spinlock");
  CheckOk(SetSmpMode(program.get(), SpinBinding::kDynamicIf, /*smp=*/true),
          "set smp");
  const Vm& vm = program->vm();
  WorkloadRun run;
  const uint64_t instret0 = TotalInstret(vm);
  const uint64_t ticks0 = TotalTicks(vm);
  const double t0 = Now();
  run.metric = CheckOk(MeasureSpinlockPair(program.get()), "measure spinlock");
  run.wall_s = Now() - t0;
  run.instret = TotalInstret(vm) - instret0;
  run.sim_cycles = TicksToCycles(TotalTicks(vm) - ticks0);
  CaptureThreaded(vm, &run);
  return run;
}

WorkloadRun RunGrepWorkload() {
  std::unique_ptr<Program> program = CheckOk(BuildGrep(), "build grep");
  CheckOk(SetGrepMode(program.get(), 1, /*commit=*/false), "set grep mode");
  const Vm& vm = program->vm();
  WorkloadRun run;
  const uint64_t instret0 = TotalInstret(vm);
  const uint64_t ticks0 = TotalTicks(vm);
  const double t0 = Now();
  const GrepRunResult result = CheckOk(RunGrep(program.get()), "run grep");
  run.wall_s = Now() - t0;
  run.instret = TotalInstret(vm) - instret0;
  run.sim_cycles = TicksToCycles(TotalTicks(vm) - ticks0);
  run.metric = result.cycles + static_cast<double>(result.matches);
  CaptureThreaded(vm, &run);
  return run;
}

WorkloadRun RunLibc() {
  std::unique_ptr<Program> program = CheckOk(BuildLibc(), "build libc");
  CheckOk(SetThreadMode(program.get(), 0, /*commit=*/false), "set thread mode");
  const Vm& vm = program->vm();
  WorkloadRun run;
  const uint64_t instret0 = TotalInstret(vm);
  const uint64_t ticks0 = TotalTicks(vm);
  const double t0 = Now();
  const LibcBenchResult result =
      CheckOk(MeasureLibc(program.get()), "measure libc");
  run.wall_s = Now() - t0;
  run.instret = TotalInstret(vm) - instret0;
  run.sim_cycles = TicksToCycles(TotalTicks(vm) - ticks0);
  run.metric = result.random_cycles + result.malloc0_cycles +
               result.malloc1_cycles + result.fputc_cycles;
  CaptureThreaded(vm, &run);
  return run;
}

struct Workload {
  const char* name;
  WorkloadRun (*run)();
};

constexpr int kReps = 3;

// Best-of-kReps wall-clock; the modelled numbers must not vary across reps
// (the simulator is deterministic), so any drift is a bug.
WorkloadRun Measure(const Workload& workload, DispatchEngine engine) {
  SetDefaultDispatchEngine(engine);
  WorkloadRun best;
  for (int rep = 0; rep < kReps; ++rep) {
    WorkloadRun run = workload.run();
    if (rep == 0) {
      best = run;
    } else {
      if (run.sim_cycles != best.sim_cycles || run.instret != best.instret ||
          run.metric != best.metric) {
        std::fprintf(stderr, "FATAL: %s/%s not deterministic across reps\n",
                     workload.name, DispatchEngineName(engine));
        std::abort();
      }
      if (run.wall_s < best.wall_s) {
        best.wall_s = run.wall_s;
      }
    }
  }
  return best;
}

void Run() {
  PrintHeader("VM dispatch: legacy fetch vs superblock walk vs threaded code",
              "host-side speed; modelled cycles asserted bit-identical");
  // This bench drives all engines itself; restore the process default (the
  // --dispatch flag, or legacy) so the JSON header stays truthful.
  const DispatchEngine saved_default = DefaultDispatchEngine();

  const Workload workloads[] = {
      {"spinlock", RunSpinlock},
      {"grep", RunGrepWorkload},
      {"musl", RunLibc},
  };
  const size_t n_workloads = sizeof(workloads) / sizeof(workloads[0]);

  std::printf("  %-10s %14s %12s %9s %9s %9s %9s %9s\n", "workload",
              "sim cycles", "insns", "leg MIPS", "sb MIPS", "tc MIPS",
              "sb/leg", "tc/sb");
  double log_sb_speedup_sum = 0;
  double log_tc_speedup_sum = 0;
  uint64_t promotions = 0;
  uint64_t deopts = 0;
  uint64_t ppcommits = 0;
  for (const Workload& workload : workloads) {
    const WorkloadRun legacy = Measure(workload, DispatchEngine::kLegacy);
    const WorkloadRun sb = Measure(workload, DispatchEngine::kSuperblock);
    const WorkloadRun tc = Measure(workload, DispatchEngine::kThreaded);
    const WorkloadRun* engine_runs[] = {&sb, &tc};
    const char* engine_names[] = {"superblock", "threaded"};
    for (size_t e = 0; e < 2; ++e) {
      const WorkloadRun& run = *engine_runs[e];
      if (legacy.sim_cycles != run.sim_cycles ||
          legacy.instret != run.instret || legacy.metric != run.metric) {
        std::fprintf(stderr,
                     "FATAL: %s diverges legacy vs %s: "
                     "sim %.2f vs %.2f cycles, %llu vs %llu insns, "
                     "metric %.6f vs %.6f\n",
                     workload.name, engine_names[e], legacy.sim_cycles,
                     run.sim_cycles, (unsigned long long)legacy.instret,
                     (unsigned long long)run.instret, legacy.metric,
                     run.metric);
        std::abort();
      }
    }
    promotions += tc.threaded_promotions;
    deopts += tc.threaded_deopts;
    ppcommits += tc.threaded_patchpoint_commits;
    const double legacy_mips =
        static_cast<double>(legacy.instret) / legacy.wall_s / 1e6;
    const double sb_mips = static_cast<double>(sb.instret) / sb.wall_s / 1e6;
    const double tc_mips = static_cast<double>(tc.instret) / tc.wall_s / 1e6;
    const double sb_speedup = legacy.wall_s / sb.wall_s;
    const double tc_speedup = sb.wall_s / tc.wall_s;
    log_sb_speedup_sum += std::log(sb_speedup);
    log_tc_speedup_sum += std::log(tc_speedup);
    std::printf("  %-10s %14.0f %12llu %9.1f %9.1f %9.1f %8.2fx %8.2fx\n",
                workload.name, legacy.sim_cycles,
                (unsigned long long)legacy.instret, legacy_mips, sb_mips,
                tc_mips, sb_speedup, tc_speedup);
    JsonMetric(std::string(workload.name) + " sim cycles", legacy.sim_cycles,
               "cycles");
    JsonMetric(std::string(workload.name) + " legacy", legacy_mips, "MIPS");
    JsonMetric(std::string(workload.name) + " superblock", sb_mips, "MIPS");
    JsonMetric(std::string(workload.name) + " threaded", tc_mips, "MIPS");
    JsonMetric(std::string(workload.name) + " speedup", sb_speedup, "x");
    JsonMetric(std::string(workload.name) + " threaded speedup", tc_speedup,
               "x");
  }
  const double sb_geomean = std::exp(log_sb_speedup_sum / n_workloads);
  const double tc_geomean = std::exp(log_tc_speedup_sum / n_workloads);
  RecordThreadedCounters(promotions, deopts, ppcommits);
  SetDefaultDispatchEngine(saved_default);
  std::printf("  geomean wall-clock speedup, superblock vs legacy: %.2fx\n",
              sb_geomean);
  std::printf("  geomean wall-clock speedup, threaded vs superblock: %.2fx\n",
              tc_geomean);
  JsonMetric("geomean speedup", sb_geomean, "x");
  JsonMetric("geomean speedup threaded", tc_geomean, "x");
  PrintNote("");
  PrintNote("Simulated cycle counts, retired-instruction counts and workload");
  PrintNote("results are asserted identical across all engines before any");
  PrintNote("speed number is reported: the dispatch tiers buy wall-clock only.");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

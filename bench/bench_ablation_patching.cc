// Ablation for the design choices discussed in paper §7.1:
//   1. call-site patching + generic-prologue JMP (the multiverse design)
//      vs prologue-JMP only (what a body-patching/trampoline design would
//      give for untracked callers) — measures the cost of funnelling every
//      call through the extra jump;
//   2. tiny-body call-site inlining on vs off — the optimization that makes
//      empty lock bodies disappear entirely (Figure 3 c).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/patching.h"
#include "src/support/str.h"
#include "src/workloads/harness.h"
#include "src/workloads/kernel.h"

namespace mv {
namespace {

void Run() {
  PrintHeader("Patching-design ablation: call-site patching and inlining",
              "Section 7.1 discussion");

  // --- 1. Call-site patching vs prologue-jmp-only. -------------------------
  {
    std::unique_ptr<Program> program =
        CheckOk(BuildSpinlockKernel(SpinBinding::kMultiverse), "build kernel");
    CheckOk(program->WriteGlobal("config_smp", 0, 4), "write switch");

    // Full multiverse commit: call sites point straight at the variant.
    CheckOk(program->runtime().Commit(), "commit");
    const double direct =
        CheckOk(MeasureSpinlockPair(program.get()), "measure direct");

    // Prologue-only: restore the call sites but keep the generic->variant
    // JMP, so every call goes generic-entry -> jmp -> variant.
    PatchStats stats;
    const DescriptorTable& table = program->runtime().table();
    for (const RtCallsite& site : table.callsites) {
      // Re-point each call site back at the generic function.
      std::array<uint8_t, 5> bytes =
          CheckOk(EncodeCallBytes(site.site_addr, site.callee_addr), "encode");
      CheckOk(PatchCode(&program->vm(), site.site_addr, bytes), "patch");
    }
    (void)stats;
    const double through_jmp =
        CheckOk(MeasureSpinlockPair(program.get()), "measure via jmp");

    std::printf("  committed, call sites patched:      %7.2f cyc/pair\n", direct);
    std::printf("  committed, prologue JMP only:       %7.2f cyc/pair\n", through_jmp);
    JsonMetric("call sites patched", direct, "cycles/pair");
    JsonMetric("prologue JMP only", through_jmp, "cycles/pair");
    std::printf("  -> call-site patching saves %.2f cyc/pair; the prologue JMP is\n",
                through_jmp - direct);
    std::printf("     what guarantees completeness for untracked callers (7.4)\n");
  }

  // --- 2. Tiny-body inlining on vs off (pvops, native). ---------------------
  {
    // With inlining (the default runtime behaviour).
    PvopsKernel with_inline =
        CheckOk(BuildPvopsKernel(PvBinding::kMultiverse, /*xen=*/false), "build pvops");
    const double inlined =
        CheckOk(MeasurePvopPair(with_inline.program.get()), "measure inlined");

    // Without: re-patch the call sites to direct calls explicitly.
    PvopsKernel no_inline =
        CheckOk(BuildPvopsKernel(PvBinding::kMultiverse, /*xen=*/false), "build pvops");
    Program* program = no_inline.program.get();
    const DescriptorTable& table = program->runtime().table();
    for (const RtCallsite& site : table.callsites) {
      uint64_t target = 0;
      CheckOk(program->vm().memory().ReadRaw(site.callee_addr, &target, 8),
              "read fnptr");
      std::array<uint8_t, 5> bytes =
          CheckOk(EncodeCallBytes(site.site_addr, target), "encode call");
      CheckOk(PatchCode(&program->vm(), site.site_addr, bytes), "patch direct");
    }
    const double direct_call = CheckOk(MeasurePvopPair(program), "measure direct");

    std::printf("\n  pvops committed, bodies inlined:    %7.2f cyc/pair\n", inlined);
    std::printf("  pvops committed, direct calls only: %7.2f cyc/pair\n", direct_call);
    JsonMetric("pvops bodies inlined", inlined, "cycles/pair");
    JsonMetric("pvops direct calls only", direct_call, "cycles/pair");
    std::printf("  -> inlining 1-instruction bodies saves %.2f cyc/pair (the reason\n",
                direct_call - inlined);
    std::printf("     both patching mechanisms reach ifdef-level speed natively)\n");
  }

  // --- 3. The rejected body-patching design (paper 7.1). -------------------
  {
    std::unique_ptr<Program> program =
        CheckOk(BuildSpinlockKernel(SpinBinding::kMultiverse), "build kernel");
    int applicable = 0;
    int refused = 0;
    for (const char* generic : {"spin_lock_irq", "spin_unlock_irq"}) {
      const uint64_t gaddr = CheckOk(program->SymbolAddress(generic), "generic addr");
      const uint64_t gsize = CheckOk(program->FunctionSize(generic), "generic size");
      for (const char* suffix : {".config_smp=0", ".config_smp=1"}) {
        const std::string variant = std::string(generic) + suffix;
        Result<uint64_t> vaddr = program->SymbolAddress(variant);
        Result<uint64_t> vsize = program->FunctionSize(variant);
        if (!vaddr.ok() || !vsize.ok()) {
          continue;
        }
        const bool ok =
            CheckOk(TryBodyPatch(&program->vm(), gaddr, gsize, *vaddr, *vsize),
                    "body patch");
        if (ok) {
          ++applicable;
        } else {
          ++refused;
        }
      }
    }
    JsonMetric("body patching applicable", applicable);
    JsonMetric("body patching refused", refused);
    std::printf("\n  body patching (the rejected 7.1 design) on the spinlock kernel's\n");
    std::printf("  variants: %d applicable, %d refused (pc-relative instructions or\n",
                applicable, refused);
    std::printf("  size) — relocation support would be needed, which is the library\n");
    std::printf("  complexity the paper avoids by patching call sites instead.\n");
  }
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Commit throughput on recurring configurations (docs/EXPERIMENTS.md S3).
//
// The paper's workloads flip between a small set of configurations (UP<->SMP,
// GC on/off), so commit latency is dominated by repeat commits of states the
// runtime has already seen. This bench measures exactly that: A<->B flip laps
// over a synthetic kernel, cold (first visit to each pre-state/config pair,
// full selection + planning) vs warm (plan-cache hit: validate -> apply ->
// seal only), and asserts the fast path is both faster and bit-identical.
//
// A twin program attached with the plan cache disabled is driven through the
// identical flip schedule; after every flip the full text segment and a probe
// execution transcript must match the cached program exactly — the cache may
// only ever change how fast the text gets there, never what it says.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/program.h"
#include "src/livepatch/livepatch.h"
#include "src/support/str.h"

namespace mv {
namespace {

// Two configuration switches, two multiversed lock functions, plus a probe
// entry whose result depends on which variants are burnt in.
std::string FlipSource(int callers) {
  std::string source = R"(
__attribute__((multiverse)) int config_smp;
__attribute__((multiverse)) int config_preempt;
int lock_word;
int preempt_count;

__attribute__((multiverse))
void spin_lock(int* lock) {
  if (config_preempt) {
    preempt_count = preempt_count + 1;
  }
  if (config_smp) {
    while (__builtin_xchg(lock, 1)) {
      __builtin_pause();
    }
  }
}

__attribute__((multiverse))
void spin_unlock(int* lock) {
  if (config_smp) {
    *lock = 0;
  }
  if (config_preempt) {
    preempt_count = preempt_count - 1;
  }
}

int probe() {
  spin_lock(&lock_word);
  int held = lock_word;
  spin_unlock(&lock_word);
  return held * 2 + preempt_count;
}
)";
  for (int i = 0; i < callers; ++i) {
    source += StrFormat(
        "void subsystem_%d() { spin_lock(&lock_word); spin_unlock(&lock_word); }\n", i);
  }
  return source;
}

struct Config {
  int64_t smp;
  int64_t preempt;
};

void SetConfig(Program* program, const Config& config) {
  CheckOk(program->WriteGlobal("config_smp", config.smp, 4), "write config_smp");
  CheckOk(program->WriteGlobal("config_preempt", config.preempt, 4),
          "write config_preempt");
}

std::vector<uint8_t> TextBytes(Program* program) {
  std::vector<uint8_t> text(program->image().text_size);
  CheckOk(program->vm().memory().ReadRaw(program->image().text_base, text.data(),
                                         text.size()),
          "read text segment");
  return text;
}

void Run() {
  PrintHeader("Commit throughput: cold vs plan-cache-warm A<->B flips",
              "Section 6.1 (commit latency), this repo's fast path");

  constexpr int kCallers = 96;
  BuildOptions cached_options;
  std::unique_ptr<Program> cached = CheckOk(
      Program::Build({{"flip", FlipSource(kCallers)}}, cached_options),
      "build cached program");
  BuildOptions uncached_options;
  uncached_options.attach.plan_cache = false;
  std::unique_ptr<Program> uncached = CheckOk(
      Program::Build({{"flip", FlipSource(kCallers)}}, uncached_options),
      "build uncached twin");

  const Config kA{0, 1};
  const Config kB{1, 0};

  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto us_since = [](std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  // Drives both programs through one flip to `config` — only the cached
  // program's commit is timed (the twin and the bit-identity checks are the
  // referee, not the contestant) — and verifies the cached program's text
  // and probe transcript are bit-identical to the twin's.
  const auto flip_both = [&](const Config& config) -> double {
    SetConfig(cached.get(), config);
    const auto start = now();
    CheckOk(cached->runtime().Commit(), "cached commit");
    const double us = us_since(start);
    SetConfig(uncached.get(), config);
    CheckOk(uncached->runtime().Commit(), "uncached commit");
    if (TextBytes(cached.get()) != TextBytes(uncached.get())) {
      std::fprintf(stderr, "FATAL: text diverged between cached and uncached\n");
      std::abort();
    }
    const uint64_t got = CheckOk(cached->Call("probe", {}), "cached probe");
    const uint64_t want = CheckOk(uncached->Call("probe", {}), "uncached probe");
    if (got != want) {
      std::fprintf(stderr,
                   "FATAL: probe transcript diverged: cached=%llu uncached=%llu\n",
                   (unsigned long long)got, (unsigned long long)want);
      std::abort();
    }
    return us;
  };

  // Cold lap: every commit is a first visit to its (pre-state, config) pair,
  // so each one runs full selection + planning.
  const double cold_us = (flip_both(kA) + flip_both(kB)) / 2.0;

  // One more untimed lap: B->A from pre-state B is still cold (the first A
  // commit ran from the fully-generic state); after this lap the A<->B cycle
  // is closed and every further flip is a cache hit.
  flip_both(kA);
  flip_both(kB);

  const CommitFastPathStats& fast = cached->runtime().fast_stats();
  const uint64_t hits_before = fast.plan_cache_hits;
  const uint64_t mprotect_before = fast.mprotect_calls;
  const uint64_t flush_before = fast.flush_ranges;
  const uint64_t pages_before = fast.pages_touched;
  const uint64_t reeval_before = fast.fns_reevaluated;

  constexpr int kWarmLaps = 100;
  double warm_total_us = 0;
  for (int i = 0; i < kWarmLaps; ++i) {
    warm_total_us += flip_both(kA);
    warm_total_us += flip_both(kB);
  }
  const double warm_us = warm_total_us / (2.0 * kWarmLaps);

  const uint64_t warm_commits = 2 * kWarmLaps;
  const uint64_t hits = fast.plan_cache_hits - hits_before;
  const double warm_mprotect =
      static_cast<double>(fast.mprotect_calls - mprotect_before) / warm_commits;
  const double warm_flushes =
      static_cast<double>(fast.flush_ranges - flush_before) / warm_commits;
  const double warm_pages =
      static_cast<double>(fast.pages_touched - pages_before) / warm_commits;
  const double speedup = cold_us / warm_us;

  std::printf("  flip corpus: %d callers, 2 switches, %zu call sites\n", kCallers,
              cached->runtime().table().callsites.size());
  std::printf("  cold commit (full selection + planning): %10.2f us\n", cold_us);
  std::printf("  warm commit (plan-cache hit):            %10.2f us\n", warm_us);
  std::printf("  speedup:                                 %10.2fx\n", speedup);
  std::printf("  warm flips: %llu/%llu cache hits, %llu functions re-evaluated\n",
              (unsigned long long)hits, (unsigned long long)warm_commits,
              (unsigned long long)(fast.fns_reevaluated - reeval_before));
  std::printf("  per warm commit: %.2f mprotects, %.2f flush ranges, %.2f pages\n",
              warm_mprotect, warm_flushes, warm_pages);

  JsonMetric("cold_commit_us", cold_us, "us");
  JsonMetric("warm_commit_us", warm_us, "us");
  JsonMetric("warm_speedup", speedup, "x");
  JsonMetric("warm_cache_hits", static_cast<double>(hits));
  JsonMetric("warm_commits", static_cast<double>(warm_commits));
  JsonMetric("warm_mprotect_calls", warm_mprotect);
  JsonMetric("warm_flush_ranges", warm_flushes);
  JsonMetric("warm_pages_touched", warm_pages);
  RecordCommitOutcome(CommitStatsFromTxn(cached->runtime().last_txn()));

  if (hits != warm_commits) {
    std::fprintf(stderr, "FATAL: expected every warm flip to hit the plan cache "
                         "(%llu/%llu)\n",
                 (unsigned long long)hits, (unsigned long long)warm_commits);
    std::abort();
  }
  // Page coalescing: at most one W^X toggle up + one down per touched page.
  if (warm_mprotect > 2.0 * warm_pages) {
    std::fprintf(stderr, "FATAL: warm mprotect calls (%.2f) exceed 2x pages (%.2f)\n",
                 warm_mprotect, warm_pages);
    std::abort();
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "FATAL: warm commits only %.2fx faster than cold "
                         "(acceptance floor: 2x)\n",
                 speedup);
    std::abort();
  }

  // The waitfree column: the same warm A<->B flips driven through the
  // wait-free live protocol. The plan cache must keep hitting (the live
  // paths replay memoized plans through their own apply hook), no core may
  // be disturbed, and the committed text must stay bit-identical to the
  // uncached plain-commit twin.
  const uint64_t live_hits_before = fast.plan_cache_hits;
  constexpr int kLiveLaps = 50;
  double live_total_us = 0;
  uint64_t live_word_stores = 0;
  double live_disturbance = 0;
  double live_parked = 0;
  const auto flip_live = [&](const Config& config) {
    SetConfig(cached.get(), config);
    LiveCommitOptions options;
    options.protocol = CommitProtocol::kWaitFree;
    const auto start = now();
    const LiveCommitStats stats =
        CheckOk(multiverse_commit_live(&cached->vm(), &cached->runtime(), options),
                "waitfree live commit");
    live_total_us += us_since(start);
    live_word_stores += stats.word_stores;
    live_disturbance += stats.DisturbanceCycles();
    live_parked += TicksToCycles(stats.parked_ticks);
    if (stats.waitfree_fallback) {
      std::fprintf(stderr, "FATAL: waitfree flip fell back to breakpoint\n");
      std::abort();
    }
    SetConfig(uncached.get(), config);
    CheckOk(uncached->runtime().Commit(), "uncached commit");
    if (TextBytes(cached.get()) != TextBytes(uncached.get())) {
      std::fprintf(stderr, "FATAL: waitfree text diverged from plain commit\n");
      std::abort();
    }
  };
  for (int i = 0; i < kLiveLaps; ++i) {
    flip_live(kA);
    flip_live(kB);
  }
  const uint64_t live_commits = 2 * kLiveLaps;
  const uint64_t live_hits = fast.plan_cache_hits - live_hits_before;
  const double live_us = live_total_us / static_cast<double>(live_commits);

  std::printf("  warm waitfree live commit:               %10.2f us\n", live_us);
  std::printf("  waitfree flips: %llu/%llu cache hits, %llu word stores, "
              "%.0f disturbance cycles\n",
              (unsigned long long)live_hits, (unsigned long long)live_commits,
              (unsigned long long)live_word_stores, live_disturbance);

  JsonMetric("warm_waitfree_commit_us", live_us, "us");
  JsonMetric("waitfree_cache_hits", static_cast<double>(live_hits));
  JsonMetric("waitfree_commits", static_cast<double>(live_commits));
  JsonMetric("waitfree_word_stores", static_cast<double>(live_word_stores));
  JsonMetric("waitfree_disturbance_cycles", live_disturbance, "cycles");
  {
    CommitStats live_stats;
    live_stats.disturbance_cycles = live_disturbance;
    live_stats.parked_cycles = live_parked;
    RecordCommitOutcome(live_stats);
  }

  if (live_hits != live_commits) {
    std::fprintf(stderr, "FATAL: waitfree flips missed the plan cache "
                         "(%llu/%llu)\n",
                 (unsigned long long)live_hits, (unsigned long long)live_commits);
    std::abort();
  }
  if (live_disturbance != 0 || live_parked != 0) {
    std::fprintf(stderr, "FATAL: waitfree flips disturbed cores "
                         "(%.2f cycles, %.2f parked)\n",
                 live_disturbance, live_parked);
    std::abort();
  }
  if (live_word_stores == 0) {
    std::fprintf(stderr, "FATAL: waitfree flips issued no word stores\n");
    std::abort();
  }
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Reproduces Figure 5: the musl C library with multiversed locking —
// random(), malloc(0), malloc(1), fputc('a') in single- and multi-threaded
// mode, without and with a multiverse commit.
//
// Paper (10 M invocations, i5-6400): single-threaded improvements of
// −43 % (random) to −54 % (malloc(1)); fputc bandwidth 124 → 264 MiB/s;
// only minor impact in multi-threaded mode.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/harness.h"
#include "src/workloads/libc.h"

namespace mv {
namespace {

LibcBenchResult Measure(int threads_minus_1, bool commit) {
  std::unique_ptr<Program> libc = CheckOk(BuildLibc(), "build mini musl");
  CheckOk(SetThreadMode(libc.get(), threads_minus_1, commit), "set thread mode");
  return CheckOk(MeasureLibc(libc.get()), "measure");
}

void PrintMode(const char* mode, const LibcBenchResult& without,
               const LibcBenchResult& with, double paper_random, double paper_malloc0,
               double paper_malloc1, double paper_fputc) {
  auto delta = [](double a, double b) { return (b - a) / a * 100.0; };
  std::printf("  %s\n", mode);
  std::printf("    %-12s %14s %14s %10s %12s\n", "", "w/o multiverse", "w/ multiverse",
              "delta", "paper delta");
  struct Row {
    const char* name;
    double a;
    double b;
    double paper;
  };
  const Row rows[] = {
      {"random()", without.random_cycles, with.random_cycles, paper_random},
      {"malloc(0)", without.malloc0_cycles, with.malloc0_cycles, paper_malloc0},
      {"malloc(1)", without.malloc1_cycles, with.malloc1_cycles, paper_malloc1},
      {"fputc('a')", without.fputc_cycles, with.fputc_cycles, paper_fputc},
  };
  for (const Row& row : rows) {
    if (row.paper != 0) {
      std::printf("    %-12s %10.2f cyc %10.2f cyc %+9.1f%% %10.0f%%\n", row.name, row.a,
                  row.b, delta(row.a, row.b), row.paper);
    } else {
      std::printf("    %-12s %10.2f cyc %10.2f cyc %+9.1f%% %11s\n", row.name, row.a,
                  row.b, delta(row.a, row.b), "~0%");
    }
    const std::string prefix = std::string(mode) + " " + row.name;
    JsonMetric(prefix + " w/o multiverse", row.a, "cycles");
    JsonMetric(prefix + " w/ multiverse", row.b, "cycles");
  }
}

void Run() {
  PrintHeader("musl C library: single-thread lock elision", "Figure 5");

  const LibcBenchResult st_without = Measure(0, /*commit=*/false);
  const LibcBenchResult st_with = Measure(0, /*commit=*/true);
  PrintMode("Single threaded (threads_minus_1 = 0):", st_without, st_with, -43, -51, -54,
            -53);

  const LibcBenchResult mt_without = Measure(1, /*commit=*/false);
  const LibcBenchResult mt_with = Measure(1, /*commit=*/true);
  PrintMode("Multi threaded (threads_minus_1 = 1):", mt_without, mt_with, 0, 0, 0, 0);

  // fputc output bandwidth (paper: 124 MiB/s -> 264 MiB/s).
  const double bw_without =
      kNominalGHz * 1e9 / st_without.fputc_cycles / (1024.0 * 1024.0);
  const double bw_with = kNominalGHz * 1e9 / st_with.fputc_cycles / (1024.0 * 1024.0);
  PrintNote("");
  std::printf("  fputc bandwidth @%.1f GHz: %.0f MiB/s -> %.0f MiB/s (x%.2f; paper: 124 "
              "-> 264 MiB/s, x2.13)\n",
              kNominalGHz, bw_without, bw_with, bw_with / bw_without);
  JsonMetric("fputc bandwidth w/o multiverse", bw_without, "MiB/s");
  JsonMetric("fputc bandwidth w/ multiverse", bw_with, "MiB/s");
  PrintNote("");
  PrintNote("Expected shape: large single-threaded wins (the committed empty");
  PrintNote("lock bodies are NOP-inlined into the call sites), minor impact in");
  PrintNote("multi-threaded mode.");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Fleet rollout benchmark: canary-coordinated configuration flips across a
// fleet of independent multiverse instances, under sustained request load.
//
// Phase A (healthy): a 64-instance fleet serves a sharded tenant stream while
// the CommitCoordinator rolls {fast_path=1, log_level=1} out wave by wave —
// canary first, auto-advancing on healthy counters — with one tenant pinned
// to the old variants on a dedicated instance. Headline: fleet-wide flip
// latency, ZERO dropped and ZERO torn requests while every instance flips
// with an in-flight batch racing the commit, and the pin surviving the
// fleet-wide flip.
//
// Phase B (unhealthy): the same rollout with a one-shot patch-write fault
// armed on the canary flip. The canary recovers by journal rollback + retry,
// the health evaluation sees the rollback, breaches the zero-rollback policy
// and auto-reverts — after which every instance's config fingerprint and
// text checksum are bit-identical to its pre-rollout values.
//
// MV_FLEET_INSTANCES / MV_FLEET_WAVES env overrides let the CI smoke job run
// a small fleet; defaults reproduce the full-size experiment.
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fleet/coordinator.h"
#include "src/fleet/fleet.h"
#include "src/support/faultpoint.h"
#include "src/workloads/harness.h"

namespace mv {
namespace {

int EnvOr(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

std::unique_ptr<Fleet> BuildFleet(int instances) {
  FleetOptions options;
  options.instances = instances;
  options.cores_per_instance = 2;
  std::vector<ProgramSource> sources = {
      {"fleet_kernel", FleetRequestKernelSource()}};
  return CheckOk(Fleet::Build(sources, options), "fleet build");
}

RolloutPolicy Policy(int waves) {
  RolloutPolicy policy;
  policy.canary_pct = 12.5;
  policy.waves = waves;
  policy.max_rollbacks = 0;  // any journal rollback is a breach
  policy.observe_requests = 96;
  policy.inflight_requests = 32;
  return policy;
}

const Fleet::Assignment kFlip = {{"fast_path", 1}, {"log_level", 1}};

void RunHealthy(int instances, int waves) {
  std::unique_ptr<Fleet> fleet = BuildFleet(instances);
  const CommitFastPathStats before = GlobalCommitCounters::Instance().totals;

  // Pin one tenant to the old fast_path on a dedicated instance; the rollout
  // must flow around it.
  const uint64_t kPinnedTenant = 5;
  CheckOk(fleet->PinTenant(kPinnedTenant, {{"fast_path", 0}}), "pin tenant");
  const int pinned_instance = fleet->RouteTenant(kPinnedTenant);
  const uint64_t pinned_fingerprint =
      CheckOk(fleet->ConfigFingerprint(pinned_instance), "pinned fingerprint");

  CommitCoordinator coordinator(fleet.get(), Policy(waves));
  const RolloutReport report = CheckOk(
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn), "rollout");

  CheckOk(report.advanced_to_full
              ? Status::Ok()
              : Status::Internal("healthy rollout did not reach 100%: " +
                                 report.breach),
          "healthy rollout advanced");
  CheckOk(report.identity_mismatches == 0
              ? Status::Ok()
              : Status::Internal("instance neither fully-old nor fully-new"),
          "identity proof");

  // The pin survived: same fingerprint, still serving the old variant.
  CheckOk(CheckOk(fleet->ConfigFingerprint(pinned_instance),
                  "pinned fingerprint after") == pinned_fingerprint
              ? Status::Ok()
              : Status::Internal("tenant pin lost by fleet-wide flip"),
          "pin survived rollout");
  CheckOk(CheckOk(fleet->ReadSwitchValue(pinned_instance, "fast_path"),
                  "pinned switch") == 0
              ? Status::Ok()
              : Status::Internal("pinned switch value changed"),
          "pinned switch value");

  const HealthSummary health = fleet->metrics().Fleet();
  CheckOk(health.totals.dropped_requests == 0 && health.totals.torn_requests == 0
              ? Status::Ok()
              : Status::Internal("requests dropped or torn during rollout"),
          "zero dropped, zero torn");

  const CommitFastPathStats after = GlobalCommitCounters::Instance().totals;
  const double cold_plans = double(after.plan_cache_misses - before.plan_cache_misses);
  const double warm_plans = double(after.plan_cache_hits - before.plan_cache_hits);

  PrintRow("fleet size", instances, "inst", "one canary + rolling waves");
  PrintRow("rollout waves", report.waves_attempted, "");
  PrintRow("instances flipped", double(report.flipped_instances), "inst",
           "pinned instance excluded");
  PrintRow("fleet-wide flip latency", report.fleet_flip_cycles, "cycles",
           "sum of slowest in-wave flips");
  PrintRow("flip latency per wave (max)",
           report.fleet_flip_cycles / double(report.waves_attempted), "cycles");
  PrintRow("requests served", double(health.totals.requests_served), "req");
  PrintRow("dropped requests", double(health.totals.dropped_requests), "req",
           "headline: zero");
  PrintRow("torn requests", double(health.totals.torn_requests), "req",
           "headline: zero");
  PrintRow("mean request latency", health.totals.MeanRequestCycles(), "cycles");
  PrintRow("plan-cache cold plans", cold_plans, "", "first instance per config");
  PrintRow("plan-cache warm replays", warm_plans, "",
           "every other instance, probe-validated");
  for (const WaveReport& wave : report.waves) {
    const std::string prefix = "wave " + std::to_string(wave.wave);
    JsonMetric(prefix + ": instances", double(wave.instances.size()));
    JsonMetric(prefix + ": flip cycles (max)", wave.flip_cycles_max, "cycles");
    JsonMetric(prefix + ": rollbacks", wave.delta.totals.commit.rollbacks);
    JsonMetric(prefix + ": dropped", double(wave.delta.totals.dropped_requests));
    JsonMetric(prefix + ": torn", double(wave.delta.totals.torn_requests));
    JsonMetric(prefix + ": mean request cycles",
               wave.delta.totals.MeanRequestCycles(), "cycles");
  }
  JsonMetric("dropped_requests", double(health.totals.dropped_requests));
  JsonMetric("torn_requests", double(health.totals.torn_requests));
  JsonMetric("identity_mismatches", double(report.identity_mismatches));
  RecordCommitOutcome(health.totals.commit);
  RecordChaosCounters(report.crash_recoveries, report.quarantined_instances,
                      report.commit_timeouts);
}

void RunUnhealthy(int instances, int waves) {
  std::unique_ptr<Fleet> fleet = BuildFleet(instances);

  // Every instance's identity before the rollout; auto-revert must restore
  // all of them bit-identically.
  std::map<int, std::pair<uint64_t, uint64_t>> pre;
  for (int i = 0; i < fleet->size(); ++i) {
    pre[i] = {CheckOk(fleet->ConfigFingerprint(i), "pre fingerprint"),
              fleet->TextChecksum(i)};
  }

  CommitCoordinator coordinator(fleet.get(), Policy(waves));
  // Arm a one-shot patch-write fault on the first (canary) flip: the commit
  // recovers by rollback + retry, but the rollback breaches max_rollbacks=0.
  bool armed = false;
  coordinator.set_flip_hook([&armed](int, int) {
    if (!armed) {
      armed = true;
      FaultInjector::Instance().Arm(FaultSite::kPatchWrite, 0);
    }
  });
  const RolloutReport report = CheckOk(
      coordinator.Rollout(kFlip, kFleetHandler, kFleetLoadFn), "rollout");
  FaultInjector::Instance().Disarm();

  CheckOk(report.reverted ? Status::Ok()
                          : Status::Internal("unhealthy canary did not revert"),
          "auto-revert triggered");
  CheckOk(report.identity_mismatches == 0
              ? Status::Ok()
              : Status::Internal("revert left a mixed-config instance"),
          "revert identity proof");

  // Independent re-check against the snapshot taken before the rollout.
  int mismatches = 0;
  for (int i = 0; i < fleet->size(); ++i) {
    if (CheckOk(fleet->ConfigFingerprint(i), "post fingerprint") != pre[i].first ||
        fleet->TextChecksum(i) != pre[i].second) {
      ++mismatches;
    }
  }
  CheckOk(mismatches == 0
              ? Status::Ok()
              : Status::Internal("instance not bit-identical after revert"),
          "pre/post fingerprint + text checksum identical");

  const HealthSummary health = fleet->metrics().Fleet();
  PrintRow("canary rollbacks (injected)", health.totals.commit.rollbacks, "",
           "one-shot patch-write fault");
  PrintRow("breach-to-revert instances", double(report.reverted_instances),
           "inst", "reverse flip order");
  PrintRow("revert: fingerprint mismatches", mismatches, "",
           "headline: zero");
  PrintRow("revert: instances restored", double(report.reverted_instances), "");
  PrintRow("unhealthy phase dropped requests",
           double(health.totals.dropped_requests), "req");
  PrintRow("unhealthy phase torn requests",
           double(health.totals.torn_requests), "req");
  JsonMetric("unhealthy: dropped_requests",
             double(health.totals.dropped_requests));
  JsonMetric("unhealthy: torn_requests", double(health.totals.torn_requests));
  RecordCommitOutcome(health.totals.commit);
  RecordChaosCounters(report.crash_recoveries, report.quarantined_instances,
                      report.commit_timeouts);
}

void Run() {
  PrintHeader("Fleet rollout: canary waves, auto-revert, tenant pinning",
              "beyond-paper: ROADMAP fleet north-star; INTERNALS.md §14");
  const int instances = EnvOr("MV_FLEET_INSTANCES", 64);
  const int waves = EnvOr("MV_FLEET_WAVES", 4);
  PrintNote("Each instance: independent Vm + runtime, 2 cores (core 0 serves");
  PrintNote("the tenant stream, core 1 runs the in-flight batch each flip");
  PrintNote("races). One shared plan cache across the fleet: instance 0 plans");
  PrintNote("cold, the rest replay the journal after probe validation.");
  RunHealthy(instances, waves);
  PrintNote("-- unhealthy canary: one-shot patch-write fault, policy "
            "max_rollbacks=0 --");
  RunUnhealthy(instances, waves);
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

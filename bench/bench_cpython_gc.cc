// Reproduces §6.2.1: the cPython garbage-collector enable flag on the
// object-allocation path.
//
// The paper modified 12 lines in one file but could not measure a significant
// effect: real-hardware jitter exceeded the per-allocation difference even
// with core pinning and real-time priority. Our simulator is deterministic,
// so the (small) effect is visible; we report it next to the paper's null
// result.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/python.h"

namespace mv {
namespace {

double Measure(bool gc_enabled, bool commit) {
  std::unique_ptr<Program> python = CheckOk(BuildPythonGc(), "build mini cpython");
  CheckOk(SetGcEnabled(python.get(), gc_enabled, commit), "set gc");
  return CheckOk(MeasureGcAlloc(python.get()), "measure");
}

void Run() {
  PrintHeader("cPython: gc.enable flag on _PyObject_GC_Alloc", "Section 6.2.1");

  struct Row {
    const char* label;
    bool enabled;
    bool commit;
  };
  const Row rows[] = {
      {"gc enabled,  w/o multiverse", true, false},
      {"gc enabled,  w/  multiverse", true, true},
      {"gc disabled, w/o multiverse", false, false},
      {"gc disabled, w/  multiverse", false, true},
  };
  for (const Row& row : rows) {
    PrintRow(row.label, Measure(row.enabled, row.commit), "cyc/alloc");
  }
  PrintNote("");
  PrintNote("Paper: no statistically significant effect measurable on real");
  PrintNote("hardware (jitter exceeded the difference even in single-user");
  PrintNote("mode with pinning and RT priority). The deterministic simulator");
  PrintNote("resolves the small per-allocation difference instead.");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Reproduces the motivating table of paper Figure 1: the cost of one
// spin_lock_irq/spin_unlock_irq pair under (A) static binding, (B) dynamic
// binding, and (C) multiverse, for SMP = false and SMP = true.
//
// Paper numbers (avg. cycles):        A       B       C
//   SMP=false                       6.64    9.75    7.48
//   SMP=true                       28.82   28.91   28.86
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/kernel.h"

namespace mv {
namespace {

double Measure(SpinBinding binding, bool smp) {
  // Static bindings pin the value at build time.
  SpinBinding build = binding;
  if (binding == SpinBinding::kStaticUp && smp) {
    build = SpinBinding::kStaticSmp;
  }
  std::unique_ptr<Program> program =
      CheckOk(BuildSpinlockKernel(build), "build spinlock kernel");
  CheckOk(SetSmpMode(program.get(), build, smp), "set SMP mode");
  return CheckOk(MeasureSpinlockPair(program.get()), "measure");
}

void Run() {
  PrintHeader("Spinlock binding comparison: static / dynamic / multiverse",
              "Figure 1 table");

  struct Column {
    const char* name;
    SpinBinding binding;
    double paper_up;
    double paper_smp;
  };
  const Column columns[] = {
      {"A: static binding (#ifdef)", SpinBinding::kStaticUp, 6.64, 28.82},
      {"B: dynamic binding (if)", SpinBinding::kDynamicIf, 9.75, 28.91},
      {"C: multiverse", SpinBinding::kMultiverse, 7.48, 28.86},
  };

  std::printf("  %-30s %14s %14s\n", "", "SMP=false", "SMP=true");
  for (const Column& col : columns) {
    const double up = Measure(col.binding, /*smp=*/false);
    const double smp = Measure(col.binding, /*smp=*/true);
    std::printf("  %-30s %8.2f cyc %12.2f cyc   (paper: %5.2f / %5.2f)\n", col.name, up,
                smp, col.paper_up, col.paper_smp);
    JsonMetric(std::string(col.name) + " SMP=false", up, "cycles");
    JsonMetric(std::string(col.name) + " SMP=true", smp, "cycles");
  }
  PrintNote("");
  PrintNote("Expected shape: in the UP case A < C < B (multiverse removes the");
  PrintNote("dynamic test but keeps out-of-line calls); in the SMP case the");
  PrintNote("atomic lock operation dominates and all bindings are close.");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Variational config-space execution (src/vm/varexec.h, src/core/varprove.h):
// exhaustive variant/generic equivalence over the full switch-domain cross
// product in one shared-state pass, vs brute-force per-config enumeration.
//
// Headline: configs covered per VM-instruction. The 4-switch workload below
// spans 4^4 = 256 configurations (2^8 — the varexec-smoke CI job asserts
// "configs_covered" == 2^"domain_bits" from this JSON); the variational pass
// shares the config-independent prefix across all of them and must beat
// enumerating the space config-by-config by >= 5x retired instructions.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "src/core/program.h"
#include "src/core/varprove.h"

namespace mv {
namespace {

// Four switches with 4-value domains. Each phase function specializes to 2
// distinct bodies (the specializer merges {0,1} and {2,3} under guard
// ranges), so 256 configs collapse to 2^4 = 16 commit classes. The bulk of
// the work — the mixing loop — never observes a switch, which is exactly
// the sharing opportunity variational execution exploits.
constexpr char kFourSwitchWorkload[] = R"(
__attribute__((multiverse(0, 1, 2, 3))) int sw0;
__attribute__((multiverse(0, 1, 2, 3))) int sw1;
__attribute__((multiverse(0, 1, 2, 3))) int sw2;
__attribute__((multiverse(0, 1, 2, 3))) int sw3;
long state[16];
__attribute__((multiverse))
void phase0(long i) {
  if (sw0 >= 2) { state[0] = state[0] + i * 3; } else { state[0] = state[0] + i; }
}
__attribute__((multiverse))
void phase1(long i) {
  if (sw1 >= 2) { state[1] = state[1] ^ (i << 1); } else { state[1] = state[1] + i; }
}
__attribute__((multiverse))
void phase2(long i) {
  if (sw2 >= 2) { state[2] = state[2] - i; } else { state[2] = state[2] + i * 2; }
}
__attribute__((multiverse))
void phase3(long i) {
  if (sw3 >= 2) { state[3] = state[3] + i * 5; } else { state[3] = state[3] + i; }
}
long drive(long n) {
  long i;
  long sum;
  for (i = 0; i < n; ++i) {
    state[i % 16] = state[i % 16] + i * 7 + (i % 5);
  }
  phase0(n);
  phase1(n);
  phase2(n);
  phase3(n);
  sum = 0;
  for (i = 0; i < 16; ++i) { sum = sum + state[i]; }
  return sum;
}
)";

void Run() {
  PrintHeader("Variational config-space execution: exhaustive coverage cost",
              "ROADMAP item 3 (Wong et al., PAPERS.md); paper SS7.1 domains");

  BuildOptions build;
  build.vm_memory = 4ull << 20;  // brute force snapshots memory per run
  std::unique_ptr<Program> program = CheckOk(
      Program::Build({{"varexec", kFourSwitchWorkload}}, build), "build");

  const ConfigSpace space = CheckOk(CollectConfigSpace(program.get()), "space");
  std::printf("  switches: %zu, cross product: %zu configurations\n",
              space.switches.size(), space.num_configs);

  VarProveOptions options;
  options.entry = "drive";
  options.args = {700};

  // The exhaustive variational proof: every config, generic AND committed.
  const VarProveReport report =
      CheckOk(ProveEquivalence(program.get(), options), "prove");
  if (!report.equivalent()) {
    for (const std::string& mismatch : report.mismatches) {
      std::fprintf(stderr, "FATAL: %s\n", mismatch.c_str());
    }
    std::abort();
  }
  const uint64_t varexec_insns = report.instructions_executed();

  // Brute-force denominator: the same 2 x 256 config-executions, one VM run
  // each.
  uint64_t brute_insns = 0;
  for (size_t config = 0; config < space.num_configs; ++config) {
    for (const bool committed : {false, true}) {
      const BruteOutcome outcome = CheckOk(
          RunOneConfig(program.get(), space, config, committed, options),
          "brute run");
      brute_insns += outcome.instret;
    }
  }

  const double ratio =
      static_cast<double>(brute_insns) / static_cast<double>(varexec_insns);
  const double domain_bits = 8;  // 4^4 = 2^8

  PrintRow("configurations covered (exhaustive)",
           static_cast<double>(report.num_configs), "configs");
  PrintRow("commit classes", static_cast<double>(report.num_classes), "classes");
  PrintRow("brute-force instructions (512 runs)",
           static_cast<double>(brute_insns), "insns");
  PrintRow("variational instructions (2 passes)",
           static_cast<double>(varexec_insns), "insns");
  PrintRow("coverage speedup (brute / variational)", ratio, "x",
           "(>= 5x required)");
  PrintRow("varexec forks",
           static_cast<double>(report.generic_stats.forks +
                               report.committed_stats.forks), "forks");
  PrintRow("varexec merges",
           static_cast<double>(report.generic_stats.merges +
                               report.committed_stats.merges), "merges");
  PrintRow("peak contexts (generic pass)",
           static_cast<double>(report.generic_stats.peak_contexts), "contexts");
  PrintRow("peak contexts (committed pass)",
           static_cast<double>(report.committed_stats.peak_contexts),
           "contexts");
  JsonMetric("domain_bits", domain_bits);
  JsonMetric("configs_per_kinsn_variational",
             static_cast<double>(report.num_configs) * 2000.0 /
                 static_cast<double>(varexec_insns));
  JsonMetric("configs_per_kinsn_brute",
             static_cast<double>(report.num_configs) * 2000.0 /
                 static_cast<double>(brute_insns));

  BenchReport::Instance().RecordVarexec(
      report.num_configs,
      report.generic_stats.forks + report.committed_stats.forks,
      report.generic_stats.merges + report.committed_stats.merges);

  if (report.num_configs != 256) {
    std::fprintf(stderr, "FATAL: expected 256 configs, covered %zu\n",
                 report.num_configs);
    std::abort();
  }
  if (ratio < 5.0) {
    std::fprintf(stderr,
                 "FATAL: variational coverage only %.2fx cheaper than "
                 "enumeration (need >= 5x)\n",
                 ratio);
    std::abort();
  }
  PrintNote("every configuration's variant execution proven bit-identical "
            "to its generic execution");
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Commit recovery: rollback and recovery latency of the transactional
// commit (src/core/txn.h) under injected faults (src/support/faultpoint.h) —
// beyond the paper, whose soundness argument (§7.4) covers only the happy
// path.
//
// Scenario: a multiverse program whose commit rewrites a handful of call
// sites and prologues. For each instrumented primitive of the patching stack
// (patch-write, mprotect, icache-flush) one mid-commit occurrence is armed to
// fail; the transactional driver rolls the attempt back (or repairs it at
// seal, for a suppressed invalidation) and retries. Reported per fault site:
//   (a) recovery latency in modelled cycles (undo writes + re-flushes),
//   (b) ops rolled back / re-flushed, attempts until the commit stuck, and
//   (c) the same commit driven through a live-patch protocol, where the
//       recovery shows up on the host patch clock.
// The --json header's top-level rollbacks/retries fields record that this
// bench exercised recovery on purpose.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/core/journal.h"
#include "src/core/program.h"
#include "src/isa/cost_model.h"
#include "src/livepatch/livepatch.h"
#include "src/support/faultpoint.h"

namespace mv {
namespace {

// Three multiversed functions (two specializable bodies and one empty-variant
// hook that NOP-eradicates its call site) give the commit a multi-op plan:
// call-site rewrites, inlined sites, and generic-prologue JMPs.
constexpr char kSource[] = R"(
__attribute__((multiverse)) bool feature;
__attribute__((multiverse)) int debug_on;
long acc;
long dbg_hits;

__attribute__((multiverse))
void tick() { if (feature) { acc = acc + 2; } else { acc = acc + 1; } }

__attribute__((multiverse))
void dbg_hook() { if (debug_on) { dbg_hits = dbg_hits + 1; } }

long run(long n) {
  long i;
  for (i = 0; i < n; ++i) { tick(); dbg_hook(); }
  return acc;
}
)";

std::unique_ptr<Program> Build() {
  std::unique_ptr<Program> program =
      CheckOk(Program::Build({{"recovery", kSource}}, BuildOptions{}),
              "build recovery program");
  CheckOk(program->WriteGlobal("feature", 1, 1), "set feature");
  CheckOk(program->WriteGlobal("debug_on", 0, 4), "set debug_on");
  return program;
}

void VerifyCommitted(Program* program) {
  const uint64_t result = CheckOk(program->Call("run", {10}), "run committed");
  CheckOk(result == 20 ? Status::Ok()
                       : Status::Internal("committed program computed " +
                                          std::to_string(result)),
          "committed behaviour");
}

void RunFault(FaultSite site, uint64_t probe_count) {
  const std::string name = FaultSiteName(site);
  std::unique_ptr<Program> program = Build();

  // Kill the middle occurrence of the primitive: deep enough that real work
  // must be undone, early enough that work remains after the fault.
  ScopedFault fault(site, probe_count / 2);
  CheckOk(program->runtime().Commit().status(), "recovered commit");
  const TxnStats& txn = program->runtime().last_txn();
  RecordCommitOutcome(CommitStatsFromTxn(txn));

  PrintRow(name + ": recovery latency", TicksToCycles(txn.recovery_ticks),
           "cycles", txn.rollbacks > 0 ? "rollback + reverse-order undo"
                                       : "seal repair, no rollback");
  PrintRow(name + ": attempts", txn.attempts, "");
  PrintRow(name + ": ops rolled back", txn.ops_rolled_back, "ops");
  JsonMetric(name + ": rollbacks", txn.rollbacks);
  JsonMetric(name + ": retries", txn.retries);
  JsonMetric(name + ": reflushes", txn.reflushes);
  VerifyCommitted(program.get());
}

void RunLiveRecovery() {
  // The same fault under a live-patch protocol: the retry and the undo
  // writes land on the host patch clock, so recovery is visible as commit
  // latency.
  std::unique_ptr<Program> clean = Build();
  LiveCommitOptions options;
  options.protocol = CommitProtocol::kQuiescence;
  const LiveCommitStats base = CheckOk(
      multiverse_commit_live(&clean->vm(), &clean->runtime(), options),
      "clean live commit");

  std::unique_ptr<Program> program = Build();
  ScopedFault fault(FaultSite::kPatchWrite, base.ops_applied > 1
                                                ? static_cast<uint64_t>(
                                                      base.ops_applied / 2)
                                                : 0);
  const LiveCommitStats stats = CheckOk(
      multiverse_commit_live(&program->vm(), &program->runtime(), options),
      "recovered live commit");
  RecordCommitOutcome(stats.Summary());

  PrintRow("live quiescence: clean commit latency", base.CommitCycles(),
           "cycles");
  PrintRow("live quiescence: recovered commit latency", stats.CommitCycles(),
           "cycles", "includes rollback + backoff + retry");
  PrintRow("live quiescence: recovery latency",
           TicksToCycles(stats.txn.recovery_ticks), "cycles");
  JsonMetric("live quiescence: rollbacks", stats.txn.rollbacks);
  JsonMetric("live quiescence: retries", stats.txn.retries);
  VerifyCommitted(program.get());
}

// Crash at a durable-journal entry boundary mid-commit: unlike the in-process
// fault sites above, there is no rollback — the process is gone. Restart
// replays the write-ahead log (redo sealed, undo the unsealed tail), proves
// the text checksum, and a rebuilt replacement converges to the same image.
void RunCrashRecovery(FaultSite site) {
  const std::string name = FaultSiteName(site);

  // Calibrate: a clean journaled commit, counting journal appends and
  // recording the committed checksum.
  DurableJournal probe_wal;
  std::unique_ptr<Program> probe = Build();
  TxnOptions journaled;
  journaled.max_attempts = 1;
  journaled.wal = &probe_wal;
  probe->runtime().set_txn_options(journaled);
  FaultInjector& injector = FaultInjector::Instance();
  const uint64_t before = injector.Count(FaultSite::kCrash);
  CheckOk(probe->runtime().Commit().status(), "clean journaled commit");
  const uint64_t appends = injector.Count(FaultSite::kCrash) - before;
  const uint64_t committed = probe->runtime().TextChecksum();

  // Kill the instance halfway through the journal's append sequence.
  DurableJournal wal;
  std::unique_ptr<Program> program = Build();
  journaled.wal = &wal;
  program->runtime().set_txn_options(journaled);
  const uint64_t pristine = program->runtime().TextChecksum();
  Status died;
  {
    ScopedFault fault(site, appends / 2);
    died = program->runtime().Commit().status();
  }
  CheckOk(!died.ok() && IsSimulatedCrash(died)
              ? Status::Ok()
              : Status::Internal("commit survived the armed crash"),
          "simulated process death");

  // Restart: replay the journal onto the dead image.
  const RecoveryOutcome outcome =
      CheckOk(RecoverFromJournal(&program->vm(), &program->image(), &wal),
              "journal recovery");
  const bool fully_old = outcome.final_text_checksum == pristine;
  CheckOk(fully_old || outcome.final_text_checksum == committed
              ? Status::Ok()
              : Status::Internal("recovered text is neither old nor new"),
          "never-torn recovery proof");

  // A rebuilt replacement replaying the same log converges to the same image
  // and carries on: its commit lands the flip the crash interrupted.
  DurableJournal replica_wal;
  replica_wal.SetBytes(wal.bytes());
  std::unique_ptr<Program> replica = Build();
  const RecoveryOutcome replay = CheckOk(
      RecoverFromJournal(&replica->vm(), &replica->image(), &replica_wal),
      "twin replay");
  CheckOk(replay.final_text_checksum == outcome.final_text_checksum
              ? Status::Ok()
              : Status::Internal("twin replay diverged from the dead image"),
          "replay convergence");
  journaled.wal = &replica_wal;
  replica->runtime().set_txn_options(journaled);
  CheckOk(replica->runtime().Commit().status(), "replacement commit");
  VerifyCommitted(replica.get());

  PrintRow(name + ": journal appends per commit", double(appends), "");
  PrintRow(name + ": txns undone", outcome.txns_undone, "",
           fully_old ? "recovered fully-old" : "recovered fully-new");
  PrintRow(name + ": ops undone", outcome.ops_undone, "ops");
  PrintRow(name + ": torn tail dropped", double(outcome.torn_tail_bytes),
           "bytes");
  JsonMetric(name + ": txns redone", outcome.txns_redone);
  JsonMetric(name + ": switch sets undone", outcome.switch_sets_undone);
  RecordChaosCounters(/*crash_recoveries=*/1, /*quarantined_instances=*/0,
                      /*commit_timeouts=*/0);
}

void Run() {
  PrintHeader("Commit recovery: rollback latency under injected faults",
              "beyond-paper robustness; failure model of INTERNALS.md §11");
  PrintNote("One mid-commit primitive is armed to fail (faultpoint.h); the");
  PrintNote("transactional driver rolls back in reverse order (or repairs a");
  PrintNote("suppressed icache flush at seal) and retries with backoff.");

  // Baseline + probe: a clean commit, counting how often each primitive runs.
  uint64_t probe[kFaultSiteCount] = {};
  {
    std::unique_ptr<Program> program = Build();
    FaultInjector& injector = FaultInjector::Instance();
    uint64_t before[kFaultSiteCount];
    for (size_t s = 0; s < kFaultSiteCount; ++s) {
      before[s] = injector.Count(static_cast<FaultSite>(s));
    }
    CheckOk(program->runtime().Commit().status(), "clean commit");
    const TxnStats& txn = program->runtime().last_txn();
    RecordCommitOutcome(CommitStatsFromTxn(txn));
    for (size_t s = 0; s < kFaultSiteCount; ++s) {
      probe[s] = injector.Count(static_cast<FaultSite>(s)) - before[s];
    }
    PrintRow("clean commit: ops applied", txn.ops_applied, "ops");
    PrintRow("clean commit: rollbacks", txn.rollbacks, "");
    VerifyCommitted(program.get());
  }

  RunFault(FaultSite::kPatchWrite, probe[0]);
  RunFault(FaultSite::kProtect, probe[1]);
  RunFault(FaultSite::kIcacheFlush, probe[2]);
  RunLiveRecovery();
  PrintNote("-- process death at a write-ahead-journal boundary (no rollback "
            "runs; restart replays the log) --");
  RunCrashRecovery(FaultSite::kCrash);
  RunCrashRecovery(FaultSite::kCrashTorn);
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Commit under load: the cost of a safe multiverse_commit() while other
// cores execute (new subsystem, src/livepatch/ — beyond the paper, which
// performs no cross-modification synchronization, §2/§7.3).
//
// Scenario: the multiverse spinlock kernel on a 4-core VM. Cores 1..3 hammer
// spin_lock_irq/spin_unlock_irq (bench_loop) while core 0 — the "hotplug
// CPU" — flips config_smp 0 -> 1 and commits; core 1 starts parked inside a
// NOP-eradicated call site (the adversarial interleaving). Reported per
// protocol:
//   (a) commit latency in modelled cycles (host patch clock), and
//   (b) per-mutator-core disturbance: frozen cycles (quiescence), parked
//       cycles + trap count (breakpoint), rendezvous single-steps.
// The unsafe baseline is the paper's semantics; under load it may tear (a
// core resumes inside a half-written site), which the bench reports as the
// motivating anomaly instead of a data point.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/program.h"
#include "src/livepatch/livepatch.h"
#include "src/obj/linker.h"
#include "src/workloads/kernel.h"

namespace mv {
namespace {

constexpr int kCores = 4;
constexpr uint64_t kRounds = 300;           // bench_loop iterations per mutator
constexpr uint64_t kWarmup[kCores] = {0, 0, 700, 900};  // staggered pcs

// The spinlock kernel plus a multiversed debug hook whose off-variant is
// empty: its call site is NOP-eradicated by the boot commit, so a mutator pc
// can sit *inside* the 5-byte site — the torn-execution hazard that makes
// the unsafe baseline tear and the protocols earn their keep.
std::string LoadedKernelSource() {
  return SpinlockKernelSource(SpinBinding::kMultiverse) + R"(
long dbg_hits;
__attribute__((multiverse)) int debug_on;

__attribute__((multiverse))
void dbg_hook() { if (debug_on) { dbg_hits = dbg_hits + 1; } }

void bench_loop(long rounds) {
  long i;
  for (i = 0; i < rounds; ++i) {
    spin_lock_irq(&lock_word);
    spin_unlock_irq(&lock_word);
    dbg_hook();
  }
}
)";
}

// Finds the NOP-eradicated dbg_hook call site inside bench_loop: a maximal
// run of exactly five one-byte NOPs (0x50) — one eradicated 5-byte CALL.
uint64_t FindNopSite(Program* program, uint64_t bench_loop) {
  const Image& image = program->image();
  uint64_t end = image.text_base + image.text_size;
  for (const auto& [name, addr] : image.symbols) {
    if (addr > bench_loop && addr < end) {
      end = addr;
    }
  }
  std::vector<uint8_t> body(end - bench_loop);
  CheckOk(program->vm().memory().ReadRaw(bench_loop, body.data(), body.size()),
          "read bench_loop body");
  auto nop = [&](size_t i) { return i < body.size() && body[i] == 0x50; };
  for (size_t i = 0; i + 5 <= body.size(); ++i) {
    if (nop(i) && nop(i + 1) && nop(i + 2) && nop(i + 3) && nop(i + 4) &&
        !(i > 0 && nop(i - 1)) && !nop(i + 5)) {
      return bench_loop + i;
    }
  }
  CheckOk(Status::Internal("no NOP-eradicated site in bench_loop"),
          "find NOP site");
  return 0;
}

std::unique_ptr<Program> BuildLoadedKernel() {
  BuildOptions options;
  options.vm_cores = kCores;
  std::unique_ptr<Program> program =
      CheckOk(Program::Build({{"spinlock_kernel", LoadedKernelSource()}}, options),
              "build spinlock kernel");
  // Boot uniprocessor: config_smp = 0, debug off, committed while nothing
  // runs.
  CheckOk(program->WriteGlobal("config_smp", 0, 4), "set config_smp=0");
  CheckOk(program->WriteGlobal("debug_on", 0, 4), "set debug_on=0");
  CheckOk(program->runtime().Commit().status(), "boot commit");

  // Start the mutators mid-flight: each is somewhere inside the lock/unlock
  // loop when the hotplug commit begins. Core 1 is deterministically parked
  // *inside* the NOP-eradicated site (the adversarial interleaving point).
  const uint64_t bench_loop = CheckOk(program->SymbolAddress("bench_loop"),
                                      "resolve bench_loop");
  const uint64_t nop_site = FindNopSite(program.get(), bench_loop);
  for (int core = 1; core < kCores; ++core) {
    SetupCall(program->image(), &program->vm(), bench_loop, {kRounds}, core);
    if (core == 1) {
      for (uint64_t i = 0; i < 5000; ++i) {
        if (program->vm().Step(core).has_value()) {
          break;
        }
        const uint64_t pc = program->vm().core(core).pc;
        if (pc > nop_site && pc < nop_site + 5) {
          break;
        }
      }
      CheckOk(program->vm().core(core).pc > nop_site &&
                      program->vm().core(core).pc < nop_site + 5
                  ? Status::Ok()
                  : Status::Internal("core 1 never reached the site interior"),
              "park core 1 inside the NOP site");
      continue;
    }
    for (uint64_t i = 0; i < kWarmup[core]; ++i) {
      if (program->vm().Step(core).has_value()) {
        break;
      }
    }
  }
  CheckOk(program->WriteGlobal("config_smp", 1, 4), "set config_smp=1");
  CheckOk(program->WriteGlobal("debug_on", 1, 4), "set debug_on=1");
  return program;
}

// Runs the remaining mutator work to completion after the commit returned.
// Round-robin, so a core spinning on a lock held by another still sees the
// holder make progress. Fails if a mutator exits any way other than HLT —
// after an unsafe commit that is the torn execution the bench demonstrates.
Status DrainMutators(Program* program) {
  for (uint64_t round = 0; round < 40'000'000; ++round) {
    bool all_halted = true;
    for (int core = 1; core < kCores; ++core) {
      if (program->vm().core(core).halted) {
        continue;
      }
      all_halted = false;
      std::optional<VmExit> exit = program->vm().Step(core);
      if (exit.has_value() && exit->kind != VmExit::Kind::kHalt) {
        return Status::Internal("mutator core did not halt: " + exit->ToString());
      }
    }
    if (all_halted) {
      return Status::Ok();
    }
  }
  return Status::Internal("mutators did not finish");
}

void RunProtocol(CommitProtocol protocol) {
  std::unique_ptr<Program> program = BuildLoadedKernel();
  LiveCommitOptions options;
  options.protocol = protocol;
  options.mutator_cores = {1, 2, 3};

  const std::string name = CommitProtocolName(protocol);
  Result<LiveCommitStats> result =
      multiverse_commit_live(&program->vm(), &program->runtime(), options);
  if (!result.ok()) {
    // Expected only for the unsafe baseline: torn cross-modification.
    PrintNote(name + ": COMMIT TORE UNDER LOAD -> " + result.status().ToString());
    JsonMetric(name + ": torn", 1);
    return;
  }
  const LiveCommitStats& stats = *result;
  Status drained = DrainMutators(program.get());
  if (!drained.ok()) {
    if (protocol == CommitProtocol::kUnsafe) {
      PrintNote(name + ": COMMIT TORE UNDER LOAD -> " + drained.ToString());
      JsonMetric(name + ": torn", 1);
      return;
    }
    CheckOk(drained, "drain mutators");
  }

  PrintRow(name + ": commit latency", stats.CommitCycles(), "cycles");
  PrintRow(name + ": mutator disturbance", stats.DisturbanceCycles(), "cycles",
           "frozen + parked, all mutator cores");
  PrintRow(name + ": cores stopped", stats.cores_stopped, "cores");
  PrintRow(name + ": breakpoint traps", stats.bkpt_traps, "traps");
  PrintRow(name + ": rendezvous steps", stats.rendezvous_steps, "insns");
  JsonMetric(name + ": patch ops", stats.ops_applied);
  JsonMetric(name + ": icache flushes", stats.icache_flushes);
  JsonMetric(name + ": commit ticks", static_cast<double>(stats.commit_ticks), "ticks");
  JsonMetric(name + ": functions committed", stats.patch.functions_committed);
  JsonMetric(name + ": callsites patched",
             stats.patch.callsites_patched + stats.patch.callsites_inlined);
  JsonMetric(name + ": torn", 0);

  if (protocol == CommitProtocol::kBreakpoint) {
    // The point of the protocol: the spinlock commit completes without
    // stopping the machine.
    CheckOk(stats.cores_stopped == 0
                ? Status::Ok()
                : Status::Internal("breakpoint protocol stopped cores"),
            "breakpoint protocol stop-free");
  }
  // Workload sanity after a mid-flight rebinding: every lock acquired during
  // the commit window was released. (preempt_count is deliberately not
  // checked: the Figure-1 kernel updates it outside the critical section, so
  // its final value races with >1 mutator core — in generic and committed
  // code alike.)
  CheckOk(program->ReadGlobal("lock_word", 4).value() == 0
              ? Status::Ok()
              : Status::Internal("lock_word still held after live commit"),
          "lock released");
}

void Run() {
  PrintHeader("Commit under load: live-patching protocols vs. unsafe baseline",
              "the missing synchronization of paper §2/§7.3 (beyond-paper)");
  PrintNote("4-core VM, multiverse spinlock kernel; cores 1-3 run bench_loop");
  PrintNote("while core 0 hotplugs config_smp 0->1 + debug_on and commits;");
  PrintNote("core 1 starts inside a NOP-eradicated site (adversarial point).");

  // Anchor: the same batched commit with no mutators = plain commit cost.
  {
    std::unique_ptr<Program> program = BuildLoadedKernel();
    CheckOk(DrainMutators(program.get()), "drain before idle commit");
    LiveCommitOptions options;
    options.protocol = CommitProtocol::kUnsafe;
    LiveCommitStats stats = CheckOk(
        multiverse_commit_live(&program->vm(), &program->runtime(), options),
        "quiescent-machine commit");
    PrintRow("idle machine (no mutators): commit latency", stats.CommitCycles(),
             "cycles");
    JsonMetric("idle: patch ops", stats.ops_applied);
  }

  RunProtocol(CommitProtocol::kUnsafe);
  RunProtocol(CommitProtocol::kQuiescence);
  RunProtocol(CommitProtocol::kBreakpoint);
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Commit under load: the cost of a safe multiverse_commit() while other
// cores execute (new subsystem, src/livepatch/ — beyond the paper, which
// performs no cross-modification synchronization, §2/§7.3).
//
// Scenario: the multiverse spinlock kernel on a 4-core VM. Cores 1..3 hammer
// spin_lock_irq/spin_unlock_irq (bench_loop) while core 0 — the "hotplug
// CPU" — flips config_smp 0 -> 1 and commits; core 1 starts parked inside a
// NOP-eradicated call site (the adversarial interleaving). Reported per
// protocol:
//   (a) commit latency in modelled cycles (host patch clock), and
//   (b) per-mutator-core disturbance: frozen cycles (quiescence), parked
//       cycles + trap count (breakpoint), rendezvous single-steps — and the
//       wait-free headline: 0 stopped, 0 parked, 0 trapped.
// The unsafe baseline is the paper's semantics; under load it may tear (a
// core resumes inside a half-written site), which the bench reports as the
// motivating anomaly instead of a data point.
//
// Two cross-checks beyond the per-protocol table:
//   * bit-identity: the post-commit text segment and a deterministic
//     post-commit replay transcript must match the quiescence result exactly,
//     for every protocol, on BOTH dispatch engines — wait-free trades no
//     correctness for its zero disturbance;
//   * superblock invalidation: the same wait-free hotplug commit is run under
//     the broadcast baseline ("any code write/protect evicts overlapping
//     blocks on every core") and under scoped invalidation (word-granular,
//     epoch-gated, X-retaining protects skipped); scoped must evict fewer.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/descriptors.h"
#include "src/core/program.h"
#include "src/livepatch/livepatch.h"
#include "src/obj/linker.h"
#include "src/workloads/kernel.h"

namespace mv {
namespace {

constexpr int kCores = 4;
constexpr uint64_t kRounds = 300;           // bench_loop iterations per mutator
constexpr uint64_t kWarmup[kCores] = {0, 0, 700, 900};  // staggered pcs
constexpr uint64_t kReplayRounds = 50;      // post-commit transcript workload

// The spinlock kernel plus a multiversed debug hook whose off-variant is
// empty: its call site is NOP-eradicated by the boot commit, so a mutator pc
// can sit *inside* the 5-byte site — the torn-execution hazard that makes
// the unsafe baseline tear and the protocols earn their keep.
std::string LoadedKernelSource() {
  return SpinlockKernelSource(SpinBinding::kMultiverse) + R"(
long dbg_hits;
__attribute__((multiverse)) int debug_on;

__attribute__((multiverse))
void dbg_hook() { if (debug_on) { dbg_hits = dbg_hits + 1; } }

void bench_loop(long rounds) {
  long i;
  for (i = 0; i < rounds; ++i) {
    spin_lock_irq(&lock_word);
    spin_unlock_irq(&lock_word);
    dbg_hook();
  }
}
)";
}

// Finds the NOP-eradicated dbg_hook call site inside bench_loop through the
// descriptor table — the authoritative record of every patchable site.
// (Scanning the text for a five-NOP run is fragile now that codegen inserts
// its own alignment NOPs next to patchable sites.)
uint64_t FindNopSite(Program* program, uint64_t bench_loop) {
  const uint64_t dbg_hook =
      CheckOk(program->SymbolAddress("dbg_hook"), "resolve dbg_hook");
  const Image& image = program->image();
  uint64_t end = image.text_base + image.text_size;
  for (const auto& [name, addr] : image.symbols) {
    if (addr > bench_loop && addr < end) {
      end = addr;
    }
  }
  DescriptorTable table = CheckOk(
      DescriptorTable::Parse(program->vm().memory(), image), "parse descriptors");
  for (const RtCallsite& site : table.callsites) {
    if (site.callee_addr == dbg_hook && site.site_addr >= bench_loop &&
        site.site_addr < end) {
      return site.site_addr;
    }
  }
  CheckOk(Status::Internal("no dbg_hook site in bench_loop"), "find NOP site");
  return 0;
}

std::unique_ptr<Program> BuildLoadedKernel() {
  BuildOptions options;
  options.vm_cores = kCores;
  std::unique_ptr<Program> program =
      CheckOk(Program::Build({{"spinlock_kernel", LoadedKernelSource()}}, options),
              "build spinlock kernel");
  // Boot uniprocessor: config_smp = 0, debug off, committed while nothing
  // runs.
  CheckOk(program->WriteGlobal("config_smp", 0, 4), "set config_smp=0");
  CheckOk(program->WriteGlobal("debug_on", 0, 4), "set debug_on=0");
  CheckOk(program->runtime().Commit().status(), "boot commit");

  // Start the mutators mid-flight: each is somewhere inside the lock/unlock
  // loop when the hotplug commit begins. Core 1 is deterministically parked
  // *inside* the NOP-eradicated site (the adversarial interleaving point).
  const uint64_t bench_loop = CheckOk(program->SymbolAddress("bench_loop"),
                                      "resolve bench_loop");
  const uint64_t nop_site = FindNopSite(program.get(), bench_loop);
  for (int core = 1; core < kCores; ++core) {
    SetupCall(program->image(), &program->vm(), bench_loop, {kRounds}, core);
    if (core == 1) {
      for (uint64_t i = 0; i < 5000; ++i) {
        if (program->vm().Step(core).has_value()) {
          break;
        }
        const uint64_t pc = program->vm().core(core).pc;
        if (pc > nop_site && pc < nop_site + 5) {
          break;
        }
      }
      CheckOk(program->vm().core(core).pc > nop_site &&
                      program->vm().core(core).pc < nop_site + 5
                  ? Status::Ok()
                  : Status::Internal("core 1 never reached the site interior"),
              "park core 1 inside the NOP site");
      continue;
    }
    for (uint64_t i = 0; i < kWarmup[core]; ++i) {
      if (program->vm().Step(core).has_value()) {
        break;
      }
    }
  }
  CheckOk(program->WriteGlobal("config_smp", 1, 4), "set config_smp=1");
  CheckOk(program->WriteGlobal("debug_on", 1, 4), "set debug_on=1");
  return program;
}

// Runs the remaining mutator work to completion after the commit returned.
// Round-robin, so a core spinning on a lock held by another still sees the
// holder make progress. Fails if a mutator exits any way other than HLT —
// after an unsafe commit that is the torn execution the bench demonstrates.
Status DrainMutators(Program* program) {
  for (uint64_t round = 0; round < 40'000'000; ++round) {
    bool all_halted = true;
    for (int core = 1; core < kCores; ++core) {
      if (program->vm().core(core).halted) {
        continue;
      }
      all_halted = false;
      std::optional<VmExit> exit = program->vm().Step(core);
      if (exit.has_value() && exit->kind != VmExit::Kind::kHalt) {
        return Status::Internal("mutator core did not halt: " + exit->ToString());
      }
    }
    if (all_halted) {
      return Status::Ok();
    }
  }
  return Status::Internal("mutators did not finish");
}

// What a protocol run leaves behind, for the bit-identity cross-check: the
// full post-commit text segment plus a deterministic replay transcript (a
// fresh single-core bench_loop pass over the committed code).
struct ProtocolOutcome {
  LiveCommitStats stats;
  std::vector<uint8_t> text;
  std::vector<uint64_t> transcript;  // {replay dbg_hits, lock_word, r0}
};

// One hotplug-commit-under-load run. Returns nullopt if the commit tore
// (expected only for the unsafe baseline). With `report` set, prints the
// paper-style rows and records JSON metrics; identity/cross-engine runs pass
// report=false so metric labels stay unique in the JSON document.
std::optional<ProtocolOutcome> RunProtocol(CommitProtocol protocol, bool report) {
  std::unique_ptr<Program> program = BuildLoadedKernel();
  LiveCommitOptions options;
  options.protocol = protocol;
  options.mutator_cores = {1, 2, 3};

  const std::string name = CommitProtocolName(protocol);
  Result<LiveCommitStats> result =
      multiverse_commit_live(&program->vm(), &program->runtime(), options);
  if (!result.ok()) {
    // Expected only for the unsafe baseline: torn cross-modification.
    if (report) {
      PrintNote(name + ": COMMIT TORE UNDER LOAD -> " + result.status().ToString());
      JsonMetric(name + ": torn", 1);
    }
    return std::nullopt;
  }
  const LiveCommitStats& stats = *result;
  Status drained = DrainMutators(program.get());
  if (!drained.ok()) {
    if (protocol == CommitProtocol::kUnsafe) {
      if (report) {
        PrintNote(name + ": COMMIT TORE UNDER LOAD -> " + drained.ToString());
        JsonMetric(name + ": torn", 1);
      }
      return std::nullopt;
    }
    CheckOk(drained, "drain mutators");
  }

  if (report) {
    PrintRow(name + ": commit latency", stats.CommitCycles(), "cycles");
    PrintRow(name + ": mutator disturbance", stats.DisturbanceCycles(), "cycles",
             "frozen + parked, all mutator cores");
    PrintRow(name + ": cores stopped", stats.cores_stopped, "cores");
    PrintRow(name + ": breakpoint traps", stats.bkpt_traps, "traps");
    PrintRow(name + ": rendezvous steps", stats.rendezvous_steps, "insns");
    JsonMetric(name + ": patch ops", stats.ops_applied);
    JsonMetric(name + ": icache flushes", stats.icache_flushes);
    JsonMetric(name + ": commit ticks", static_cast<double>(stats.commit_ticks), "ticks");
    JsonMetric(name + ": functions committed", stats.patch.functions_committed);
    JsonMetric(name + ": callsites patched",
               stats.patch.callsites_patched + stats.patch.callsites_inlined);
    // Per-protocol disturbance decomposition (satellite of the wait-free PR:
    // every protocol row carries the counters CI asserts on).
    JsonMetric(name + ": disturbance cycles", stats.DisturbanceCycles(), "cycles");
    JsonMetric(name + ": parked cycles", TicksToCycles(stats.parked_ticks),
               "cycles");
    JsonMetric(name + ": superblock evictions", stats.superblock_evictions);
    if (protocol == CommitProtocol::kWaitFree) {
      JsonMetric(name + ": word stores", stats.word_stores);
    }
    JsonMetric(name + ": torn", 0);
  }

  if (protocol == CommitProtocol::kBreakpoint) {
    // The point of the protocol: the spinlock commit completes without
    // stopping the machine.
    CheckOk(stats.cores_stopped == 0
                ? Status::Ok()
                : Status::Internal("breakpoint protocol stopped cores"),
            "breakpoint protocol stop-free");
  }
  if (protocol == CommitProtocol::kWaitFree) {
    // The wait-free headline: no core stopped, parked, or trapped — ever.
    CheckOk(stats.cores_stopped == 0 && stats.parked_ticks == 0 &&
                    stats.bkpt_traps == 0
                ? Status::Ok()
                : Status::Internal("waitfree protocol disturbed a core"),
            "waitfree protocol disturbance-free");
    CheckOk(!stats.waitfree_fallback
                ? Status::Ok()
                : Status::Internal("waitfree fell back to breakpoint"),
            "waitfree sites word-aligned");
  }
  // Workload sanity after a mid-flight rebinding: every lock acquired during
  // the commit window was released. (preempt_count is deliberately not
  // checked: the Figure-1 kernel updates it outside the critical section, so
  // its final value races with >1 mutator core — in generic and committed
  // code alike.)
  CheckOk(program->ReadGlobal("lock_word", 4).value() == 0
              ? Status::Ok()
              : Status::Internal("lock_word still held after live commit"),
          "lock released");

  ProtocolOutcome outcome;
  outcome.stats = stats;
  const Image& image = program->image();
  outcome.text.resize(image.text_size);
  CheckOk(program->vm().memory().ReadRaw(image.text_base, outcome.text.data(),
                                         outcome.text.size()),
          "read post-commit text");
  // Deterministic replay transcript: a fresh single-core pass over the
  // committed code. Identical text must yield an identical transcript.
  CheckOk(program->WriteGlobal("dbg_hits", 0, 8), "reset dbg_hits");
  const uint64_t r0 =
      CheckOk(program->Call("bench_loop", {kReplayRounds}), "replay bench_loop");
  outcome.transcript = {
      static_cast<uint64_t>(CheckOk(program->ReadGlobal("dbg_hits", 8),
                                    "read replay dbg_hits")),
      static_cast<uint64_t>(CheckOk(program->ReadGlobal("lock_word", 4),
                                    "read replay lock_word")),
      r0};
  return outcome;
}

// Bit-identity cross-check: quiescence (stop-machine, trivially correct) is
// the reference; every wait-free commit must leave the exact same text bytes
// and replay transcript, on both dispatch engines.
void CheckWaitFreeIdentity() {
  const DispatchEngine prior = DefaultDispatchEngine();
  for (DispatchEngine engine :
       {DispatchEngine::kLegacy, DispatchEngine::kSuperblock}) {
    SetDefaultDispatchEngine(engine);
    std::optional<ProtocolOutcome> reference =
        RunProtocol(CommitProtocol::kQuiescence, /*report=*/false);
    std::optional<ProtocolOutcome> waitfree =
        RunProtocol(CommitProtocol::kWaitFree, /*report=*/false);
    CheckOk(reference.has_value() && waitfree.has_value()
                ? Status::Ok()
                : Status::Internal("identity run did not complete"),
            "identity runs");
    const std::string engine_name = DispatchEngineName(engine);
    CheckOk(waitfree->text == reference->text
                ? Status::Ok()
                : Status::Internal("waitfree text differs from quiescence on " +
                                   engine_name),
            "post-commit text identity");
    CheckOk(waitfree->transcript == reference->transcript
                ? Status::Ok()
                : Status::Internal(
                      "waitfree transcript differs from quiescence on " +
                      engine_name),
            "post-commit transcript identity");
    JsonMetric("identity vs quiescence (" + engine_name + ")", 1);
  }
  SetDefaultDispatchEngine(prior);
  PrintNote("waitfree text + replay transcript == quiescence on both engines.");
}

// Superblock invalidation: the same wait-free hotplug commit under the
// broadcast baseline vs. scoped (word-granular, epoch-gated) invalidation.
// Runs on the superblock engine regardless of --dispatch (the legacy engine
// caches no superblocks, so both counters would read zero). Evictions are
// counted from pre-commit to post-drain, so the scoped mode's deferred
// (reconcile-time) evictions on remote cores are charged too.
void CompareInvalidationModes() {
  const DispatchEngine prior = DefaultDispatchEngine();
  SetDefaultDispatchEngine(DispatchEngine::kSuperblock);
  uint64_t evictions[2] = {0, 0};
  const SuperblockInvalidation modes[2] = {SuperblockInvalidation::kBroadcast,
                                           SuperblockInvalidation::kScoped};
  for (int i = 0; i < 2; ++i) {
    std::unique_ptr<Program> program = BuildLoadedKernel();
    program->vm().set_superblock_invalidation(modes[i]);
    LiveCommitOptions options;
    options.protocol = CommitProtocol::kWaitFree;
    options.mutator_cores = {1, 2, 3};
    const uint64_t before = program->vm().superblock_evictions();
    CheckOk(
        multiverse_commit_live(&program->vm(), &program->runtime(), options)
            .status(),
        "invalidation-mode commit");
    CheckOk(DrainMutators(program.get()), "invalidation-mode drain");
    evictions[i] = program->vm().superblock_evictions() - before;
    if (modes[i] == SuperblockInvalidation::kScoped) {
      JsonMetric("scoped: protect evictions skipped",
                 program->vm().superblock_protect_skips());
    }
  }
  SetDefaultDispatchEngine(prior);
  PrintRow("superblock evictions (broadcast)", evictions[0], "blocks");
  PrintRow("superblock evictions (scoped)", evictions[1], "blocks");
  BenchReport::Instance().RecordEvictions(evictions[0], evictions[1]);
  CheckOk(evictions[1] < evictions[0]
              ? Status::Ok()
              : Status::Internal("scoped invalidation did not evict fewer "
                                 "blocks than broadcast"),
          "scoped < broadcast evictions");
}

void Run() {
  PrintHeader("Commit under load: live-patching protocols vs. unsafe baseline",
              "the missing synchronization of paper §2/§7.3 (beyond-paper)");
  PrintNote("4-core VM, multiverse spinlock kernel; cores 1-3 run bench_loop");
  PrintNote("while core 0 hotplugs config_smp 0->1 + debug_on and commits;");
  PrintNote("core 1 starts inside a NOP-eradicated site (adversarial point).");

  // Anchor: the same batched commit with no mutators = plain commit cost.
  {
    std::unique_ptr<Program> program = BuildLoadedKernel();
    CheckOk(DrainMutators(program.get()), "drain before idle commit");
    LiveCommitOptions options;
    options.protocol = CommitProtocol::kUnsafe;
    LiveCommitStats stats = CheckOk(
        multiverse_commit_live(&program->vm(), &program->runtime(), options),
        "quiescent-machine commit");
    PrintRow("idle machine (no mutators): commit latency", stats.CommitCycles(),
             "cycles");
    JsonMetric("idle: patch ops", stats.ops_applied);
  }

  RunProtocol(CommitProtocol::kUnsafe, /*report=*/true);
  std::optional<ProtocolOutcome> quiescence =
      RunProtocol(CommitProtocol::kQuiescence, /*report=*/true);
  std::optional<ProtocolOutcome> breakpoint =
      RunProtocol(CommitProtocol::kBreakpoint, /*report=*/true);
  std::optional<ProtocolOutcome> waitfree =
      RunProtocol(CommitProtocol::kWaitFree, /*report=*/true);
  CheckOk(quiescence.has_value() && breakpoint.has_value() &&
                  waitfree.has_value()
              ? Status::Ok()
              : Status::Internal("a safe protocol tore"),
          "safe protocols complete");

  // The perf headline: wait-free disturbance strictly below both prior
  // protocols (it is zero by construction; they are not).
  CheckOk(waitfree->stats.DisturbanceCycles() <
                      quiescence->stats.DisturbanceCycles() &&
                  waitfree->stats.DisturbanceCycles() <
                      breakpoint->stats.DisturbanceCycles()
              ? Status::Ok()
              : Status::Internal("waitfree disturbance not below baselines"),
          "waitfree disturbance strictly lowest");
  RecordCommitOutcome(waitfree->stats.Summary());

  CheckWaitFreeIdentity();
  CompareInvalidationModes();
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// Reproduces the §6.1 patching-cost and §5 size-accounting numbers:
//   * "Multiverse records 1161 call sites of spinlock functions. Patching all
//     these call sites takes approximately 16 milliseconds."
//   * descriptor overhead: 32 B per configuration switch, 16 B per call
//     site, 48 + #variants*(32 + #guards*16) B per multiversed function.
//   * "the whole run-time library consists of less than 850 lines of code".
//
// We synthesize a program with >= 1161 recorded call sites of two multiversed
// lock functions (the paper's spinlock count), measure wall-clock commit and
// revert times, and validate the descriptor accounting formula against the
// actual section sizes.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/descriptors.h"
#include "src/support/str.h"
#include "src/workloads/kernel.h"

namespace mv {
namespace {

// Generates a kernel-like program where `callers` functions each contain one
// spin_lock_irq and one spin_unlock_irq call site.
std::string ManyCallsitesSource(int callers) {
  std::string source = R"(
__attribute__((multiverse)) int config_smp;
int lock_word;
int preempt_count;

__attribute__((multiverse))
void spin_lock_irq(int* lock) {
  __builtin_cli();
  preempt_count = preempt_count + 1;
  if (config_smp) {
    while (__builtin_xchg(lock, 1)) {
      __builtin_pause();
    }
  }
}

__attribute__((multiverse))
void spin_unlock_irq(int* lock) {
  preempt_count = preempt_count - 1;
  if (config_smp) {
    *lock = 0;
  }
  __builtin_sti();
}
)";
  for (int i = 0; i < callers; ++i) {
    source += StrFormat(
        "void subsystem_%d() { spin_lock_irq(&lock_word); spin_unlock_irq(&lock_word); "
        "}\n",
        i);
  }
  return source;
}

void Run() {
  PrintHeader("Patching cost and descriptor size accounting", "Section 6.1 / Section 5");

  // 581 callers x 2 call sites = 1162 >= the paper's 1161 spinlock call sites.
  constexpr int kCallers = 581;
  BuildOptions options;
  std::unique_ptr<Program> program = CheckOk(
      Program::Build({{"many_sites", ManyCallsitesSource(kCallers)}}, options),
      "build synthetic kernel");

  const DescriptorTable& table = program->runtime().table();
  std::printf("  recorded call sites: %zu (paper: 1161)\n", table.callsites.size());
  std::printf("  multiversed functions: %zu, configuration switches: %zu\n",
              table.functions.size(), table.variables.size());

  CheckOk(program->WriteGlobal("config_smp", 0, 4), "write switch");
  // Warm-up commit/revert (first run decodes variant bodies). The warm-up
  // commit is also the cold coalescing measurement: one plan-cache miss with
  // the page-coalesced apply layer, against the per-site baseline of two
  // mprotects and one flush IPI per 5-byte op.
  const CommitFastPathStats& fast = program->runtime().fast_stats();
  const uint64_t mprotect_before = fast.mprotect_calls;
  const uint64_t flush_before = fast.flush_ranges;
  const uint64_t pages_before = fast.pages_touched;
  PatchStats cold = CheckOk(program->runtime().Commit(), "warmup commit");
  const uint64_t cold_mprotect = fast.mprotect_calls - mprotect_before;
  const uint64_t cold_flushes = fast.flush_ranges - flush_before;
  const uint64_t cold_pages = fast.pages_touched - pages_before;
  const uint64_t cold_ops = static_cast<uint64_t>(
      cold.callsites_patched + cold.callsites_inlined + cold.prologues_patched);
  std::printf("  coalesced cold commit: %llu ops -> %llu mprotects (baseline %llu), "
              "%llu flush ranges (baseline %llu), %llu pages\n",
              (unsigned long long)cold_ops, (unsigned long long)cold_mprotect,
              (unsigned long long)(2 * cold_ops), (unsigned long long)cold_flushes,
              (unsigned long long)cold_ops, (unsigned long long)cold_pages);
  JsonMetric("cold commit ops", static_cast<double>(cold_ops));
  JsonMetric("cold commit mprotect calls", static_cast<double>(cold_mprotect));
  JsonMetric("per-site baseline mprotect calls", static_cast<double>(2 * cold_ops));
  JsonMetric("cold commit flush ranges", static_cast<double>(cold_flushes));
  JsonMetric("per-site baseline flush ranges", static_cast<double>(cold_ops));
  JsonMetric("cold commit pages touched", static_cast<double>(cold_pages));
  if (cold_ops > 0 && cold_mprotect >= 2 * cold_ops) {
    std::fprintf(stderr, "FATAL: page coalescing did not reduce mprotect calls "
                         "(%llu ops, %llu mprotects)\n",
                 (unsigned long long)cold_ops, (unsigned long long)cold_mprotect);
    std::abort();
  }
  CheckOk(program->runtime().Revert(), "warmup revert");

  constexpr int kRounds = 50;
  const auto start = std::chrono::steady_clock::now();
  PatchStats last;
  for (int i = 0; i < kRounds; ++i) {
    last = CheckOk(program->runtime().Commit(), "commit");
    CheckOk(program->runtime().Revert(), "revert");
  }
  const auto end = std::chrono::steady_clock::now();
  const double ms_per_cycle =
      std::chrono::duration<double, std::milli>(end - start).count() / kRounds;

  std::printf("  commit+revert of all %zu sites: %.3f ms per round-trip\n",
              table.callsites.size(), ms_per_cycle);
  std::printf("  (paper: ~16 ms for one commit of 1161 sites on real hardware;\n");
  std::printf("   the host patcher writes simulated memory, so it is faster)\n");
  std::printf("  per-commit: %d sites patched, %d inlined, %d prologues\n",
              last.callsites_patched, last.callsites_inlined, last.prologues_patched);
  JsonMetric("recorded call sites", static_cast<double>(table.callsites.size()));
  JsonMetric("commit+revert round-trip", ms_per_cycle, "ms");
  // The timed rounds repeat one configuration, so after the warm-up round
  // trip every commit should be a plan-cache hit.
  JsonMetric("round-trip cache hits",
             static_cast<double>(fast.plan_cache_hits));
  JsonMetric("round-trip cache misses",
             static_cast<double>(fast.plan_cache_misses));
  JsonMetric("callsites patched", last.callsites_patched);
  JsonMetric("callsites inlined", last.callsites_inlined);
  JsonMetric("prologues patched", last.prologues_patched);

  // --- Descriptor size accounting (the paper's §5 formula). ---
  std::vector<size_t> variants_per_function;
  std::vector<size_t> guards_per_variant;
  for (const RtFunction& fn : table.functions) {
    variants_per_function.push_back(fn.variants.size());
    for (const RtVariant& variant : fn.variants) {
      guards_per_variant.push_back(variant.guards.size());
    }
  }
  const uint64_t formula =
      DescriptorSectionBytes(table.variables.size(), table.callsites.size(),
                             variants_per_function, guards_per_variant);
  uint64_t actual = 0;
  for (const char* name :
       {".mv.variables", ".mv.functions", ".mv.variants", ".mv.guards", ".mv.callsites"}) {
    auto it = program->image().sections.find(name);
    if (it != program->image().sections.end()) {
      actual += it->second.size;
      std::printf("  %-16s %8llu bytes\n", name, (unsigned long long)it->second.size);
    }
  }
  std::printf("  formula 32*vars + 16*sites + sum(48 + v*(32 + g*16)): %llu bytes\n",
              (unsigned long long)formula);
  std::printf("  actual descriptor sections:                           %llu bytes %s\n",
              (unsigned long long)actual, formula == actual ? "(exact match)" : "(MISMATCH!)");
  JsonMetric("descriptor bytes (formula)", static_cast<double>(formula), "bytes");
  JsonMetric("descriptor bytes (actual)", static_cast<double>(actual), "bytes");
  if (formula != actual) {
    std::abort();
  }
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::BenchMain(argc, argv, mv::Run); }

// mvfleet — fleet rollout driver: N multiverse instances, canary rollouts.
//
//   mvfleet --instances 64 --canary-pct 12.5 --waves 4 --revert-threshold 0
//           --pin 7=fast_path:0 --flip fast_path=1 --flip log_level=1 --json out.json
//
// Builds a Fleet (from the given .mvc sources, or the built-in request
// kernel), optionally pins tenants to config overrides, then hands a switch
// assignment to the CommitCoordinator: flip the canary cohort, observe
// health, auto-advance wave by wave or auto-revert the whole rollout.
//
// Exit codes: 0 rollout advanced to 100%, 3 rollout auto-reverted (every
// instance restored to its pre-rollout config), 5 rollout advanced but one
// or more instances were quarantined on their pre-rollout config (degraded
// but serving), 1 build/infrastructure error, identity mismatch, or unknown
// --dispatch engine (rejected with a structured usage error), 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/plan_cache.h"
#include "src/fleet/chaos.h"
#include "src/fleet/coordinator.h"
#include "src/fleet/fleet.h"
#include "src/support/faultpoint.h"
#include "src/vm/superblock.h"

namespace mv {
namespace {

struct CliOptions {
  std::vector<std::string> files;
  int instances = 8;
  int cores = 2;
  double canary_pct = 12.5;
  int waves = 4;
  int revert_threshold = 0;
  int tenants = 64;
  uint64_t requests = 128;
  uint64_t inflight = 48;
  std::vector<std::pair<uint64_t, Fleet::Assignment>> pins;
  Fleet::Assignment base;  // --set: boot configuration
  Fleet::Assignment flip;  // --flip: the rollout assignment
  std::optional<CommitProtocol> protocol;
  std::optional<uint64_t> chaos_seed;
  uint64_t commit_timeout = 0;
  double storm_window = 0;  // > 0 routes flips through the CommitScheduler
  std::optional<int> quarantine_after;
  std::string handler = kFleetHandler;
  std::string load_fn = kFleetLoadFn;
  bool unhealthy_canary = false;
  std::string log_path;
  std::string json_path;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: mvfleet [options] [file.mvc...]\n"
      "  --instances N        fleet size (default 8)\n"
      "  --cores N            cores per instance; core 1 runs the in-flight\n"
      "                       batch each flip races (default 2)\n"
      "  --canary-pct P       canary wave size, %% of the unpinned fleet\n"
      "                       (default 12.5)\n"
      "  --waves W            rollout waves, canary included (default 4)\n"
      "  --revert-threshold N journal rollbacks tolerated per wave before\n"
      "                       the rollout auto-reverts (default 0)\n"
      "  --pin tenant=name:v[,name:v...]\n"
      "                       pin a tenant to config overrides on a dedicated\n"
      "                       instance, excluded from rollouts (repeatable)\n"
      "  --set name=value     boot configuration, committed fleet-wide before\n"
      "                       the rollout (repeatable)\n"
      "  --flip name=value    the rollout assignment (repeatable; default\n"
      "                       fast_path=1 log_level=1 for the built-in kernel)\n"
      "  --tenants N          tenant id space of the request stream (default 64)\n"
      "  --requests N         observation slice per wave (default 128)\n"
      "  --inflight N         in-flight batch size racing each flip (default 48)\n"
      "  --live protocol      force one commit protocol (unsafe | quiescence |\n"
      "                       breakpoint | waitfree); default: per-instance\n"
      "                       selection (waitfree where alignment allows)\n"
      "  --handler fn         request handler symbol (default handle_request)\n"
      "  --load fn            in-flight batch symbol (default serve_batch)\n"
      "  --unhealthy-canary   arm a one-shot patch-write fault on the first\n"
      "                       canary flip (demonstrates auto-revert)\n"
      "  --chaos SEED         inject a deterministic seeded chaos schedule\n"
      "                       (crashes, wedged cores, slow commits, dropped\n"
      "                       health reports); same seed, same havoc. Implies\n"
      "                       --quarantine-after 2 unless given explicitly\n"
      "  --storm-window N     route every flip through the CommitScheduler:\n"
      "                       the assignment's switch writes debounce in one\n"
      "                       N-cycle window, null batches are elided, the\n"
      "                       rest commit as one coalesced plan (0 = off)\n"
      "  --commit-timeout C   per-instance commit deadline in modelled cycles;\n"
      "                       a commit past the deadline is a strike (0 = off)\n"
      "  --quarantine-after N park an instance on its pre-rollout config after\n"
      "                       N failed flip attempts instead of reverting the\n"
      "                       rollout; it keeps serving degraded (0 = off)\n"
      "  --dispatch engine    VM dispatch engine (legacy | superblock |\n"
      "                       threaded)\n"
      "  --log path           write the rollout event log (the audit trail)\n"
      "  --json path          write the rollout report as JSON\n"
      "With no files, a built-in request-processor kernel is used.\n");
}

bool ParseKeyValue(const char* text, std::string* key, int64_t* value) {
  const char* eq = std::strchr(text, '=');
  if (eq == nullptr) {
    return false;
  }
  *key = std::string(text, eq);
  *value = std::strtoll(eq + 1, nullptr, 0);
  return !key->empty();
}

// --pin 7=fast_path:0,log_level:2
bool ParsePin(const char* text, uint64_t* tenant, Fleet::Assignment* overrides) {
  const char* eq = std::strchr(text, '=');
  if (eq == nullptr || eq == text) {
    return false;
  }
  *tenant = std::strtoull(text, nullptr, 0);
  std::stringstream rest(eq + 1);
  std::string item;
  while (std::getline(rest, item, ',')) {
    const size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0) {
      return false;
    }
    overrides->emplace_back(item.substr(0, colon),
                            std::strtoll(item.c_str() + colon + 1, nullptr, 0));
  }
  return !overrides->empty();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

void WriteJson(const std::string& path, const CliOptions& options,
               const RolloutReport& report, Fleet* fleet) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "mvfleet: cannot open --json path '%s'\n", path.c_str());
    return;
  }
  const HealthSummary fleet_health = fleet->metrics().Fleet();
  const CommitFastPathStats& fast = GlobalCommitCounters::Instance().totals;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"instances\": %d,\n", fleet->size());
  std::fprintf(f, "  \"waves\": %d,\n", report.waves_attempted);
  std::fprintf(f, "  \"canary_pct\": %.10g,\n", options.canary_pct);
  std::fprintf(f, "  \"advanced_to_full\": %s,\n",
               report.advanced_to_full ? "true" : "false");
  std::fprintf(f, "  \"reverted\": %s,\n", report.reverted ? "true" : "false");
  std::fprintf(f, "  \"breach\": \"%s\",\n", JsonEscape(report.breach).c_str());
  std::fprintf(f, "  \"fleet_flip_cycles\": %.10g,\n", report.fleet_flip_cycles);
  std::fprintf(f, "  \"flipped_instances\": %llu,\n",
               (unsigned long long)report.flipped_instances);
  std::fprintf(f, "  \"reverted_instances\": %llu,\n",
               (unsigned long long)report.reverted_instances);
  std::fprintf(f, "  \"identity_mismatches\": %llu,\n",
               (unsigned long long)report.identity_mismatches);
  std::fprintf(f, "  \"crash_recoveries\": %llu,\n",
               (unsigned long long)report.crash_recoveries);
  std::fprintf(f, "  \"commit_timeouts\": %llu,\n",
               (unsigned long long)report.commit_timeouts);
  std::fprintf(f, "  \"quarantined_instances\": %llu,\n",
               (unsigned long long)report.quarantined_instances);
  std::fprintf(f, "  \"quarantined\": [");
  for (size_t i = 0; i < report.quarantined.size(); ++i) {
    std::fprintf(f, "%s%d", i > 0 ? ", " : "", report.quarantined[i]);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"requests_served\": %llu,\n",
               (unsigned long long)fleet_health.totals.requests_served);
  std::fprintf(f, "  \"dropped_requests\": %llu,\n",
               (unsigned long long)fleet_health.totals.dropped_requests);
  std::fprintf(f, "  \"torn_requests\": %llu,\n",
               (unsigned long long)fleet_health.totals.torn_requests);
  std::fprintf(f, "  \"rollbacks\": %d,\n", fleet_health.totals.commit.rollbacks);
  std::fprintf(f, "  \"retries\": %d,\n", fleet_health.totals.commit.retries);
  std::fprintf(f, "  \"disturbance_cycles\": %.10g,\n",
               fleet_health.totals.commit.disturbance_cycles);
  std::fprintf(f, "  \"waitfree_fallbacks\": %d,\n",
               fleet_health.totals.commit.waitfree_fallbacks);
  std::fprintf(f, "  \"plan_cache_hits\": %llu,\n",
               (unsigned long long)fast.plan_cache_hits);
  std::fprintf(f, "  \"plan_cache_misses\": %llu,\n",
               (unsigned long long)fast.plan_cache_misses);
  std::fprintf(f, "  \"wave_health\": [\n");
  for (size_t i = 0; i < report.waves.size(); ++i) {
    const WaveReport& wave = report.waves[i];
    std::fprintf(f,
                 "    {\"wave\": %d, \"instances\": %zu, \"healthy\": %s, "
                 "\"flip_cycles_max\": %.10g, \"rollbacks\": %d, "
                 "\"dropped\": %llu, \"torn\": %llu, "
                 "\"mean_request_cycles\": %.10g, \"breach\": \"%s\"}%s\n",
                 wave.wave, wave.instances.size(),
                 wave.healthy ? "true" : "false", wave.flip_cycles_max,
                 wave.delta.totals.commit.rollbacks,
                 (unsigned long long)wave.delta.totals.dropped_requests,
                 (unsigned long long)wave.delta.totals.torn_requests,
                 wave.delta.totals.MeanRequestCycles(),
                 JsonEscape(wave.breach).c_str(),
                 i + 1 < report.waves.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mvfleet: %s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--instances") {
      options.instances = std::atoi(next("--instances"));
    } else if (arg == "--cores") {
      options.cores = std::atoi(next("--cores"));
    } else if (arg == "--canary-pct") {
      options.canary_pct = std::atof(next("--canary-pct"));
    } else if (arg == "--waves") {
      options.waves = std::atoi(next("--waves"));
    } else if (arg == "--revert-threshold") {
      options.revert_threshold = std::atoi(next("--revert-threshold"));
    } else if (arg == "--tenants") {
      options.tenants = std::atoi(next("--tenants"));
    } else if (arg == "--requests") {
      options.requests = std::strtoull(next("--requests"), nullptr, 0);
    } else if (arg == "--inflight") {
      options.inflight = std::strtoull(next("--inflight"), nullptr, 0);
    } else if (arg == "--pin") {
      uint64_t tenant = 0;
      Fleet::Assignment overrides;
      if (!ParsePin(next("--pin"), &tenant, &overrides)) {
        std::fprintf(stderr, "mvfleet: bad --pin argument '%s'\n", argv[i]);
        return 2;
      }
      options.pins.emplace_back(tenant, std::move(overrides));
    } else if (arg == "--set" || arg == "--flip") {
      std::string key;
      int64_t value = 0;
      if (!ParseKeyValue(next(arg.c_str()), &key, &value)) {
        std::fprintf(stderr, "mvfleet: bad %s argument '%s'\n", arg.c_str(),
                     argv[i]);
        return 2;
      }
      (arg == "--set" ? options.base : options.flip).emplace_back(key, value);
    } else if (arg == "--live") {
      Result<CommitProtocol> protocol = ParseCommitProtocol(next("--live"));
      if (!protocol.ok()) {
        std::fprintf(stderr, "mvfleet: %s\n", protocol.status().ToString().c_str());
        return 2;
      }
      options.protocol = *protocol;
    } else if (arg == "--chaos") {
      options.chaos_seed = std::strtoull(next("--chaos"), nullptr, 0);
    } else if (arg == "--commit-timeout") {
      options.commit_timeout = std::strtoull(next("--commit-timeout"), nullptr, 0);
    } else if (arg == "--storm-window") {
      options.storm_window = std::strtod(next("--storm-window"), nullptr);
      if (options.storm_window <= 0) {
        std::fprintf(stderr, "mvfleet: bad --storm-window '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--quarantine-after") {
      options.quarantine_after = std::atoi(next("--quarantine-after"));
    } else if (arg == "--handler") {
      options.handler = next("--handler");
    } else if (arg == "--load") {
      options.load_fn = next("--load");
    } else if (arg == "--unhealthy-canary") {
      options.unhealthy_canary = true;
    } else if (arg == "--dispatch") {
      Result<DispatchEngine> engine = ParseDispatchEngine(next("--dispatch"));
      if (!engine.ok()) {
        std::fprintf(stderr, "mvfleet: usage error: %s\n",
                     engine.status().ToString().c_str());
        Usage();
        return 1;
      }
      SetDefaultDispatchEngine(*engine);
    } else if (arg == "--log") {
      options.log_path = next("--log");
    } else if (arg == "--json") {
      options.json_path = next("--json");
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mvfleet: unknown option '%s'\n", arg.c_str());
      Usage();
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.instances < 1 || options.waves < 1) {
    std::fprintf(stderr, "mvfleet: --instances and --waves must be >= 1\n");
    return 2;
  }

  // Sources: the given files, or the built-in request kernel (which also
  // supplies the default assignment when none was given).
  std::vector<ProgramSource> sources;
  if (options.files.empty()) {
    sources.push_back({"fleet_kernel", FleetRequestKernelSource()});
    if (options.flip.empty()) {
      options.flip = {{"fast_path", 1}, {"log_level", 1}};
    }
  } else {
    for (const std::string& path : options.files) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "mvfleet: cannot read '%s'\n", path.c_str());
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      sources.push_back({path, buffer.str()});
    }
    if (options.flip.empty()) {
      std::fprintf(stderr, "mvfleet: --flip name=value is required with "
                           "explicit sources\n");
      return 2;
    }
  }

  FleetOptions fleet_options;
  fleet_options.instances = options.instances;
  fleet_options.cores_per_instance = options.cores;
  fleet_options.tenants = options.tenants;
  Result<std::unique_ptr<Fleet>> built = Fleet::Build(sources, fleet_options);
  if (!built.ok()) {
    std::fprintf(stderr, "mvfleet: build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Fleet> fleet = std::move(built.value());

  Status boot = fleet->CommitAll(options.base);
  if (!boot.ok()) {
    std::fprintf(stderr, "mvfleet: boot commit: %s\n", boot.ToString().c_str());
    return 1;
  }
  for (const auto& [tenant, overrides] : options.pins) {
    Status pin = fleet->PinTenant(tenant, overrides);
    if (!pin.ok()) {
      std::fprintf(stderr, "mvfleet: pin tenant %llu: %s\n",
                   (unsigned long long)tenant, pin.ToString().c_str());
      return 1;
    }
  }

  RolloutPolicy policy;
  policy.canary_pct = options.canary_pct;
  policy.waves = options.waves;
  policy.max_rollbacks = options.revert_threshold;
  policy.observe_requests = options.requests;
  policy.inflight_requests = options.inflight;
  policy.protocol = options.protocol;
  policy.storm_window_cycles = options.storm_window;
  policy.commit_timeout_cycles = options.commit_timeout;
  // --chaos without an explicit --quarantine-after defaults to 2 strikes:
  // chaos without a quarantine path would turn every persistent injected
  // fault into a whole-rollout revert.
  policy.quarantine_after = options.quarantine_after.value_or(
      options.chaos_seed.has_value() ? 2 : 0);
  std::optional<ChaosSchedule> chaos;
  if (options.chaos_seed.has_value()) {
    chaos.emplace(*options.chaos_seed);
    policy.chaos = &*chaos;
  }

  CommitCoordinator coordinator(fleet.get(), policy);
  if (options.unhealthy_canary) {
    bool armed = false;
    coordinator.set_flip_hook([&armed](int, int) {
      if (!armed) {
        armed = true;
        FaultInjector::Instance().Arm(FaultSite::kPatchWrite, 0);
      }
    });
  }

  std::printf("mvfleet: %d instance(s), canary %.3g%%, %d wave(s), "
              "revert threshold %d rollback(s)\n",
              fleet->size(), options.canary_pct, options.waves,
              options.revert_threshold);
  if (options.chaos_seed.has_value()) {
    std::printf("mvfleet: chaos seed %llu, quarantine after %d strike(s), "
                "commit timeout %llu cycle(s)\n",
                (unsigned long long)*options.chaos_seed, policy.quarantine_after,
                (unsigned long long)options.commit_timeout);
  }
  for (const TenantPin& pin : fleet->pins()) {
    std::printf("mvfleet: tenant %llu pinned to instance %d\n",
                (unsigned long long)pin.tenant, pin.instance);
  }
  Result<RolloutReport> rolled =
      coordinator.Rollout(options.flip, options.handler, options.load_fn);
  FaultInjector::Instance().Disarm();
  if (!rolled.ok()) {
    std::fprintf(stderr, "mvfleet: rollout: %s\n",
                 rolled.status().ToString().c_str());
    return 1;
  }
  const RolloutReport& report = *rolled;

  std::printf("%s", coordinator.log().ToString().c_str());
  const HealthSummary fleet_health = fleet->metrics().Fleet();
  std::printf("mvfleet: served %llu request(s), dropped %llu, torn %llu\n",
              (unsigned long long)fleet_health.totals.requests_served,
              (unsigned long long)fleet_health.totals.dropped_requests,
              (unsigned long long)fleet_health.totals.torn_requests);
  std::printf("mvfleet: fleet flip latency %.0f cycles over %d wave(s)\n",
              report.fleet_flip_cycles, report.waves_attempted);
  if (report.crash_recoveries > 0 || report.commit_timeouts > 0 ||
      report.quarantined_instances > 0) {
    std::printf("mvfleet: %llu crash recovery(ies), %llu commit timeout "
                "strike(s), %llu quarantined instance(s)\n",
                (unsigned long long)report.crash_recoveries,
                (unsigned long long)report.commit_timeouts,
                (unsigned long long)report.quarantined_instances);
  }
  if (report.advanced_to_full) {
    std::printf("mvfleet: rollout advanced to 100%% (%llu flipped, "
                "%llu identity mismatch(es))\n",
                (unsigned long long)report.flipped_instances,
                (unsigned long long)report.identity_mismatches);
  } else {
    std::printf("mvfleet: rollout auto-reverted (%s); %llu restored, "
                "%llu identity mismatch(es)\n",
                report.breach.c_str(),
                (unsigned long long)report.reverted_instances,
                (unsigned long long)report.identity_mismatches);
  }

  if (!options.log_path.empty()) {
    Status wrote = coordinator.log().WriteTo(options.log_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "mvfleet: %s\n", wrote.ToString().c_str());
      return 1;
    }
  }
  if (!options.json_path.empty()) {
    WriteJson(options.json_path, options, report, fleet.get());
  }
  if (report.identity_mismatches > 0) {
    return 1;
  }
  if (!report.advanced_to_full) {
    return 3;
  }
  return report.quarantined_instances > 0 ? 5 : 0;
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::Main(argc, argv); }

// mvcc — the multiverse C compiler driver.
//
// Compiles .mvc translation units through the full pipeline (frontend ->
// specializer -> optimizer -> codegen -> linker), optionally dumps the IR,
// the disassembly or the descriptor tables, and can load and run the result
// in the VM with or without a multiverse commit.
//
//   mvcc [options] file.mvc...
//     -D name=value        pin a global at compile time (static variability)
//     --no-specialize      disable the multiverse plugin
//     --dump-ir            print the optimized IR of every module
//     --dump-asm           disassemble the linked text segment
//     --dump-descriptors   print the parsed multiverse descriptor tables
//     --stats              print specializer statistics
//     --run entry [-- a b ...]   call `entry` and print r0 and cycle count
//     --varexec entry [-- a b ...]  variational execution: prove every
//                          configuration's variant run equivalent to its
//                          generic run, exhaustively, in one shared pass
//     --commit             multiverse_commit() before --run
//     --live protocol      commit via the live-patching subsystem
//                          (unsafe | quiescence | breakpoint | waitfree)
//     --set name=value     write a global before commit/run (may repeat)
//     --storm rate,secs    replay a deterministic switch-flip storm of `rate`
//                          flips per virtual second for `secs` seconds
//                          through the CommitScheduler (implies --commit)
//     --storm-window N     scheduler debounce window in modelled cycles
//                          (default 60000, ~20us at the nominal 3 GHz)
//     --guest              run as a paravirtualized guest
//     --dispatch engine    VM dispatch engine (legacy | superblock | threaded)
//     --no-paranoid        trust the descriptor sections (skip validation)
//     --no-plan-cache      disable commit plan memoization (fast path)
//
// Exit codes: 0 success, 1 build/run error or unknown --dispatch engine
// (rejected with a structured usage error), 2 usage error, 3 commit failed
// and was rolled back (the image is back in its pre-commit state), 4 the
// variational proof ran and found a variant/generic divergence.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/commit_scheduler.h"
#include "src/core/descriptors.h"
#include "src/core/program.h"
#include "src/core/varprove.h"
#include "src/isa/isa.h"
#include "src/livepatch/livepatch.h"
#include "src/support/rng.h"
#include "src/support/str.h"
#include "src/workloads/harness.h"

namespace mv {
namespace {

struct CliOptions {
  std::vector<std::string> files;
  std::map<std::string, int64_t> defines;
  std::vector<std::pair<std::string, int64_t>> sets;
  bool specialize = true;
  bool dump_ir = false;
  bool dump_asm = false;
  bool dump_descriptors = false;
  bool stats = false;
  bool commit = false;
  bool live = false;
  CommitProtocol live_protocol = CommitProtocol::kQuiescence;
  bool guest = false;
  bool paranoid = true;
  bool plan_cache = true;
  DispatchEngine dispatch = DispatchEngine::kLegacy;
  uint64_t storm_rate = 0;     // flips per virtual second; 0 = no storm
  double storm_secs = 0;       // storm duration in virtual seconds
  double storm_window = 60'000;  // scheduler debounce window, modelled cycles
  uint64_t trace = 0;
  std::string run_entry;
  std::string varexec_entry;
  std::vector<uint64_t> run_args;
};

void Usage() {
  std::fprintf(stderr,
               "usage: mvcc [options] file.mvc...\n"
               "  -D name=value      compile-time pinned configuration value\n"
               "  --set name=value   write a global after load (repeatable)\n"
               "  --no-specialize    disable multiverse variant generation\n"
               "  --dump-ir          print optimized IR\n"
               "  --dump-asm         disassemble the linked text segment\n"
               "  --dump-descriptors print multiverse descriptor tables\n"
               "  --stats            print specializer statistics\n"
               "  --commit           multiverse_commit() before running\n"
               "  --live protocol    commit through the live-patching subsystem\n"
               "                     (unsafe | quiescence | breakpoint | waitfree);\n"
               "                     implies --commit\n"
               "  --storm rate,secs  replay a deterministic flip storm of rate\n"
               "                     flips per virtual second for secs seconds\n"
               "                     through the CommitScheduler; implies\n"
               "                     --commit (combine with --live to batch\n"
               "                     through a live protocol)\n"
               "  --storm-window N   debounce window in modelled cycles\n"
               "                     (default 60000)\n"
               "  --guest            run as a paravirtualized guest\n"
               "  --paranoid         validate descriptor tables at attach (default)\n"
               "  --no-paranoid      trust the descriptor sections as emitted\n"
               "  --no-plan-cache    disable commit plan memoization (fast path)\n"
               "  --dispatch engine  VM dispatch engine (legacy | superblock |\n"
               "                     threaded)\n"
               "  --trace N          print the first N executed instructions\n"
               "  --run entry [-- args...]  call entry() and report r0/cycles\n"
               "  --varexec entry [-- args...]  prove variant/generic\n"
               "                     equivalence over the WHOLE switch-domain\n"
               "                     cross product in one variational pass\n");
}

bool ParseKeyValue(const char* text, std::string* key, int64_t* value) {
  const char* eq = std::strchr(text, '=');
  if (eq == nullptr) {
    return false;
  }
  *key = std::string(text, eq);
  *value = std::strtoll(eq + 1, nullptr, 0);
  return !key->empty();
}

int Main(int argc, char** argv) {
  CliOptions options;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "-D" && i + 1 < argc) {
      std::string key;
      int64_t value = 0;
      if (!ParseKeyValue(argv[++i], &key, &value)) {
        std::fprintf(stderr, "mvcc: bad -D argument '%s'\n", argv[i]);
        return 2;
      }
      options.defines[key] = value;
    } else if (arg == "--set" && i + 1 < argc) {
      std::string key;
      int64_t value = 0;
      if (!ParseKeyValue(argv[++i], &key, &value)) {
        std::fprintf(stderr, "mvcc: bad --set argument '%s'\n", argv[i]);
        return 2;
      }
      options.sets.emplace_back(key, value);
    } else if (arg == "--no-specialize") {
      options.specialize = false;
    } else if (arg == "--dump-ir") {
      options.dump_ir = true;
    } else if (arg == "--dump-asm") {
      options.dump_asm = true;
    } else if (arg == "--dump-descriptors") {
      options.dump_descriptors = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--commit") {
      options.commit = true;
    } else if (arg == "--live" && i + 1 < argc) {
      Result<CommitProtocol> protocol = ParseCommitProtocol(argv[++i]);
      if (!protocol.ok()) {
        std::fprintf(stderr, "mvcc: %s\n", protocol.status().ToString().c_str());
        return 2;
      }
      options.live = true;
      options.live_protocol = *protocol;
      options.commit = true;
    } else if (arg == "--storm" && i + 1 < argc) {
      char* rest = nullptr;
      options.storm_rate = std::strtoull(argv[++i], &rest, 0);
      if (options.storm_rate == 0 || rest == nullptr || *rest != ',') {
        std::fprintf(stderr, "mvcc: bad --storm argument '%s' (want rate,secs)\n",
                     argv[i]);
        return 2;
      }
      options.storm_secs = std::strtod(rest + 1, nullptr);
      if (options.storm_secs <= 0) {
        std::fprintf(stderr, "mvcc: bad --storm duration in '%s'\n", argv[i]);
        return 2;
      }
      options.commit = true;
    } else if (arg == "--storm-window" && i + 1 < argc) {
      options.storm_window = std::strtod(argv[++i], nullptr);
      if (options.storm_window <= 0) {
        std::fprintf(stderr, "mvcc: bad --storm-window '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--guest") {
      options.guest = true;
    } else if (arg == "--paranoid") {
      options.paranoid = true;
    } else if (arg == "--no-paranoid") {
      options.paranoid = false;
    } else if (arg == "--no-plan-cache") {
      options.plan_cache = false;
    } else if (arg == "--dispatch" && i + 1 < argc) {
      Result<DispatchEngine> engine = ParseDispatchEngine(argv[++i]);
      if (!engine.ok()) {
        std::fprintf(stderr, "mvcc: usage error: %s\n",
                     engine.status().ToString().c_str());
        Usage();
        return 1;
      }
      options.dispatch = *engine;
    } else if (arg == "--trace" && i + 1 < argc) {
      options.trace = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--run" && i + 1 < argc) {
      options.run_entry = argv[++i];
    } else if (arg == "--varexec" && i + 1 < argc) {
      options.varexec_entry = argv[++i];
    } else if (arg == "--") {
      for (++i; i < argc; ++i) {
        options.run_args.push_back(std::strtoull(argv[i], nullptr, 0));
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mvcc: unknown option '%s'\n", arg.c_str());
      Usage();
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    std::fprintf(stderr, "mvcc: no input files\n");
    Usage();
    return 2;
  }

  std::vector<ProgramSource> sources;
  for (const std::string& path : options.files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "mvcc: cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string name = path;
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) {
      name = name.substr(slash + 1);
    }
    sources.push_back({name, text.str()});
  }

  BuildOptions build;
  build.frontend.defines = options.defines;
  build.specialize = options.specialize;
  build.hypervisor_guest = options.guest;
  build.attach.paranoid = options.paranoid;
  build.attach.plan_cache = options.plan_cache;
  Result<std::unique_ptr<Program>> built = Program::Build(sources, build);
  if (!built.ok()) {
    std::fprintf(stderr, "mvcc: %s\n", built.status().ToString().c_str());
    return 1;
  }
  Program& program = **built;
  program.vm().SetDispatchEngine(options.dispatch);

  if (options.stats) {
    const SpecializeStats& stats = program.specialize_stats();
    std::printf("specializer: %zu function(s), %zu variant(s) generated, %zu merged, "
                "%zu kept\n",
                stats.functions_specialized, stats.variants_generated,
                stats.variants_merged, stats.variants_kept);
    for (const std::string& warning : stats.warnings) {
      std::printf("warning: %s\n", warning.c_str());
    }
  }

  if (options.dump_ir) {
    for (const Module& module : program.modules()) {
      std::fputs(module.ToString().c_str(), stdout);
    }
  }

  if (options.dump_asm) {
    const uint64_t base = program.image().text_base;
    const uint64_t size = program.image().text_size;
    std::vector<uint8_t> text(size);
    if (program.vm().memory().ReadRaw(base, text.data(), size).ok()) {
      std::fputs(Disassemble(text.data(), text.size(), base).c_str(), stdout);
    }
  }

  if (options.dump_descriptors) {
    const DescriptorTable& table = program.runtime().table();
    std::printf("multiverse.variables (%zu):\n", table.variables.size());
    for (const RtVariable& v : table.variables) {
      std::printf("  %-24s addr=0x%llx width=%u %s%s\n", v.name.c_str(),
                  (unsigned long long)v.addr, v.width, v.is_signed ? "signed" : "unsigned",
                  v.is_fnptr ? " fnptr" : "");
    }
    std::printf("multiverse.functions (%zu):\n", table.functions.size());
    for (const RtFunction& fn : table.functions) {
      std::printf("  %-24s generic=0x%llx variants=%zu\n", fn.name.c_str(),
                  (unsigned long long)fn.generic_addr, fn.variants.size());
      for (const RtVariant& variant : fn.variants) {
        std::printf("    variant 0x%llx guards:", (unsigned long long)variant.fn_addr);
        for (const RtGuard& guard : variant.guards) {
          const RtVariable* var = table.FindVariable(guard.var_addr);
          std::printf(" %s in [%d, %d]", var != nullptr ? var->name.c_str() : "?",
                      guard.lo, guard.hi);
        }
        std::printf("\n");
      }
    }
    std::printf("multiverse.callsites (%zu):\n", table.callsites.size());
    for (const RtCallsite& site : table.callsites) {
      std::printf("  site=0x%llx callee=0x%llx\n", (unsigned long long)site.site_addr,
                  (unsigned long long)site.callee_addr);
    }
  }

  for (const auto& [name, value] : options.sets) {
    Status status = program.WriteGlobal(name, value, 8);
    if (!status.ok()) {
      std::fprintf(stderr, "mvcc: --set %s: %s\n", name.c_str(),
                   status.ToString().c_str());
      return 1;
    }
  }

  if (options.live) {
    // No guest code runs yet, so the mutator set is empty — this exercises
    // the protocol machinery (plan, BKPT/stop-machine sequencing, flushes)
    // and reports the modelled commit latency.
    LiveCommitOptions live;
    live.protocol = options.live_protocol;
    Result<LiveCommitStats> stats =
        multiverse_commit_live(&program.vm(), &program.runtime(), live);
    if (!stats.ok()) {
      // The transactional driver's diagnostic is a structured one-liner; a
      // rolled-back commit leaves the image in its pre-commit state.
      const bool rolled_back =
          stats.status().ToString().find("rolled back") != std::string::npos;
      std::fprintf(stderr, "mvcc: error: live commit [%s] %s: %s\n",
                   CommitProtocolName(options.live_protocol),
                   rolled_back ? "rolled back" : "failed",
                   stats.status().ToString().c_str());
      return rolled_back ? 3 : 1;
    }
    std::printf("live commit [%s]: %d committed, %d fallbacks, %d sites patched, "
                "%d inlined; %d ops, %llu flushes, %.2f cycles\n",
                CommitProtocolName(options.live_protocol),
                stats->patch.functions_committed, stats->patch.generic_fallbacks,
                stats->patch.callsites_patched, stats->patch.callsites_inlined,
                stats->ops_applied, (unsigned long long)stats->icache_flushes,
                stats->CommitCycles());
    std::printf("live commit-stats: mprotect=%llu flush-ranges=%llu "
                "disturbance-cycles=%.2f word-stores=%llu sb-evictions=%llu%s\n",
                (unsigned long long)stats->mprotect_calls,
                (unsigned long long)stats->flush_ranges,
                stats->DisturbanceCycles(),
                (unsigned long long)stats->word_stores,
                (unsigned long long)stats->superblock_evictions,
                stats->waitfree_fallback ? " waitfree-fallback=breakpoint" : "");
    if (stats->txn.rollbacks > 0) {
      std::printf("live commit recovery: %d attempt(s), %d rollback(s), "
                  "%d retries, last failure: %s\n",
                  stats->txn.attempts, stats->txn.rollbacks, stats->txn.retries,
                  stats->txn.last_failure.c_str());
    }
  } else if (options.commit) {
    Result<PatchStats> stats = program.runtime().Commit();
    const TxnStats& txn = program.runtime().last_txn();
    if (!stats.ok()) {
      std::fprintf(stderr,
                   "mvcc: error: commit %s after %d attempt(s), %d rollback(s): %s\n",
                   txn.rollbacks > 0 ? "rolled back" : "failed", txn.attempts,
                   txn.rollbacks, stats.status().ToString().c_str());
      return txn.rollbacks > 0 ? 3 : 1;
    }
    std::printf("commit: %d committed, %d fallbacks, %d sites patched, %d inlined\n",
                stats->functions_committed, stats->generic_fallbacks,
                stats->callsites_patched, stats->callsites_inlined);
    const CommitFastPathStats& fast = program.runtime().fast_stats();
    std::printf("commit-stats: cache-hits=%llu cache-misses=%llu mprotect=%llu "
                "flush-ranges=%llu fns-reevaluated=%llu fns-skipped=%llu\n",
                (unsigned long long)fast.plan_cache_hits,
                (unsigned long long)fast.plan_cache_misses,
                (unsigned long long)fast.mprotect_calls,
                (unsigned long long)fast.flush_ranges,
                (unsigned long long)fast.fns_reevaluated,
                (unsigned long long)fast.fns_skipped);
    if (txn.rollbacks > 0) {
      std::printf("commit recovery: %d attempt(s), %d rollback(s), %d retries, "
                  "last failure: %s\n",
                  txn.attempts, txn.rollbacks, txn.retries, txn.last_failure.c_str());
    }
  }

  if (options.storm_rate > 0) {
    const DescriptorTable& table = program.runtime().table();
    if (table.variables.empty()) {
      std::fprintf(stderr, "mvcc: --storm: program has no multiverse switches\n");
      return 1;
    }
    StormOptions storm;
    storm.window_cycles = options.storm_window;
    if (options.live) {
      const CommitProtocol protocol = options.live_protocol;
      Program* prog = &program;
      storm.commit = [prog, protocol]() -> Result<BatchCommitResult> {
        LiveCommitOptions live;
        live.protocol = protocol;
        Result<LiveCommitStats> stats =
            multiverse_commit_live(&prog->vm(), &prog->runtime(), live);
        if (!stats.ok()) {
          return stats.status();
        }
        BatchCommitResult result;
        result.stats = stats->Summary();
        result.commit_cycles = stats->CommitCycles();
        return result;
      };
    }
    CommitScheduler scheduler(&program, storm);

    // A deterministic replayable storm: flip k lands at k / rate virtual
    // seconds, targeting a SplitMix64-drawn switch with a 0/1 value.
    const double inter_flip_cycles =
        kNominalGHz * 1e9 / (double)options.storm_rate;
    const uint64_t total_flips =
        (uint64_t)((double)options.storm_rate * options.storm_secs);
    Status storm_status = Status::Ok();
    for (uint64_t k = 0; k < total_flips; ++k) {
      const double now = (double)k * inter_flip_cycles;
      Result<bool> drained = scheduler.Poll(now);
      if (!drained.ok()) {
        storm_status = drained.status();
        break;
      }
      const uint64_t draw = SplitMix64(0x53746f726d5eedull ^ (k * 2 + 1));
      const RtVariable& var = table.variables[draw % table.variables.size()];
      storm_status =
          scheduler.Submit(var.name, (int64_t)((draw >> 32) & 1), now);
      if (!storm_status.ok()) {
        break;
      }
    }
    if (storm_status.ok()) {
      storm_status =
          scheduler.Flush(options.storm_secs * kNominalGHz * 1e9).status();
    }
    if (!storm_status.ok()) {
      const bool rolled_back =
          storm_status.ToString().find("rolled back") != std::string::npos;
      std::fprintf(stderr, "mvcc: error: storm %s: %s\n",
                   rolled_back ? "rolled back" : "failed",
                   storm_status.ToString().c_str());
      return rolled_back ? 3 : 1;
    }
    const StormStats& stats = scheduler.stats();
    std::printf("storm [%llu flips/sec x %.3f sec, window=%.0f cycles]: "
                "%llu submitted, %llu coalesced, %llu elided-null, "
                "%llu plan(s), ratio %.1f\n",
                (unsigned long long)options.storm_rate, options.storm_secs,
                options.storm_window,
                (unsigned long long)stats.flips_submitted,
                (unsigned long long)stats.flips_coalesced,
                (unsigned long long)stats.flips_elided_null,
                (unsigned long long)stats.plans_committed,
                stats.CoalescingRatio());
    std::printf("storm-stats: batches=%llu elided-batches=%llu failures=%llu "
                "backpressure-waits=%llu max-depth=%llu batch-p99=%.2f cycles\n",
                (unsigned long long)stats.batches_drained,
                (unsigned long long)stats.batches_elided,
                (unsigned long long)stats.commit_failures,
                (unsigned long long)stats.backpressure_waits,
                (unsigned long long)stats.max_queue_depth,
                stats.BatchP99Cycles());
  }

  if (!options.varexec_entry.empty()) {
    VarProveOptions prove;
    prove.entry = options.varexec_entry;
    prove.args = options.run_args;
    if (options.live) {
      const CommitProtocol protocol = options.live_protocol;
      prove.commit = [protocol](Program* p) -> Status {
        LiveCommitOptions live;
        live.protocol = protocol;
        return multiverse_commit_live(&p->vm(), &p->runtime(), live).status();
      };
    }
    Result<VarProveReport> report = ProveEquivalence(&program, prove);
    if (!report.ok()) {
      std::fprintf(stderr, "mvcc: varexec failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("varexec: %zu configuration(s) over %zu switch(es), "
                "%zu commit class(es)\n",
                report->num_configs, report->num_switches, report->num_classes);
    std::printf("varexec-stats: insns=%llu forks=%llu merges=%llu "
                "peak-contexts=%llu (vs %zu independent runs)\n",
                (unsigned long long)report->instructions_executed(),
                (unsigned long long)(report->generic_stats.forks +
                                     report->committed_stats.forks),
                (unsigned long long)(report->generic_stats.merges +
                                     report->committed_stats.merges),
                (unsigned long long)std::max(
                    report->generic_stats.peak_contexts,
                    report->committed_stats.peak_contexts),
                2 * report->num_configs);
    if (!report->equivalent()) {
      for (const std::string& mismatch : report->mismatches) {
        std::fprintf(stderr, "varexec mismatch: %s\n", mismatch.c_str());
      }
      std::fprintf(stderr, "mvcc: varexec: %zu configuration(s) diverged\n",
                   report->mismatches.size());
      return 4;
    }
    std::printf("varexec: all %zu configurations proven equivalent "
                "(variant == generic, exhaustively)\n",
                report->num_configs);
  }

  if (!options.run_entry.empty()) {
    uint64_t traced = 0;
    if (options.trace > 0) {
      program.vm().set_trace_hook([&](const Vm::TraceEntry& entry) {
        if (traced++ < options.trace) {
          std::printf("trace %08llx: %s\n", (unsigned long long)entry.pc,
                      entry.insn.ToString().c_str());
        }
      });
    }
    Core& core = program.vm().core(0);
    const uint64_t before = core.ticks;
    Result<uint64_t> result = program.Call(options.run_entry, options.run_args);
    if (!result.ok()) {
      std::fprintf(stderr, "mvcc: run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    if (!program.output().empty()) {
      std::fputs(program.output().c_str(), stdout);
      if (program.output().back() != '\n') {
        std::fputc('\n', stdout);
      }
    }
    std::printf("%s() = %llu (0x%llx), %.2f cycles\n", options.run_entry.c_str(),
                (unsigned long long)*result, (unsigned long long)*result,
                TicksToCycles(core.ticks - before));
  }
  return 0;
}

}  // namespace
}  // namespace mv

int main(int argc, char** argv) { return mv::Main(argc, argv); }

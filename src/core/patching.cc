#include "src/core/patching.h"

#include <cstring>

#include "src/isa/isa.h"
#include "src/support/faultpoint.h"

namespace mv {

Status WriteCodeBytes(Vm* vm, uint64_t addr, const uint8_t* data, uint64_t len,
                      bool flush) {
  Memory& memory = vm->memory();
  const uint8_t old_perms = memory.PermsAt(addr);
  MV_RETURN_IF_ERROR(memory.Protect(addr, len, old_perms | kPermWrite));
  // Fault point: the adversarial partial write — one byte lands, then the
  // patcher dies. The page is deliberately left writable: a crashed patcher
  // restores nothing, so recovery must fix both the bytes *and* the W^X
  // state.
  if (FaultInjector::Instance().ShouldFail(FaultSite::kPatchWrite)) {
    if (len > 0) {
      (void)memory.WriteRaw(addr, data, 1);
    }
    return Status::Internal("patch write torn after 1 byte (injected fault)");
  }
  MV_RETURN_IF_ERROR(memory.WriteRaw(addr, data, len));
  MV_RETURN_IF_ERROR(memory.Protect(addr, len, old_perms));
  if (flush) {
    vm->FlushIcache(addr, len);
  }
  return Status::Ok();
}

Status PatchCode(Vm* vm, uint64_t addr, const std::array<uint8_t, 5>& bytes) {
  return WriteCodeBytes(vm, addr, bytes.data(), bytes.size());
}

Result<std::array<uint8_t, 5>> EncodeCallBytes(uint64_t site_addr, uint64_t target) {
  const int64_t rel =
      static_cast<int64_t>(target) - static_cast<int64_t>(site_addr + kCallInsnSize);
  if (rel > INT32_MAX || rel < INT32_MIN) {
    return Status::OutOfRange("call target out of rel32 range");
  }
  std::vector<uint8_t> encoded;
  Result<int> size = Encode(MakeCall(static_cast<int32_t>(rel)), &encoded);
  if (!size.ok()) {
    return size.status();
  }
  std::array<uint8_t, 5> bytes{};
  std::memcpy(bytes.data(), encoded.data(), 5);
  return bytes;
}

std::optional<std::vector<uint8_t>> ExtractTinyBody(const Memory& memory, uint64_t fn_addr) {
  std::vector<uint8_t> body;
  uint64_t addr = fn_addr;
  for (int guard = 0; guard < 8; ++guard) {
    if (addr + 1 > memory.size()) {
      return std::nullopt;
    }
    Result<Insn> insn = Decode(memory.raw(addr), memory.size() - addr);
    if (!insn.ok()) {
      return std::nullopt;
    }
    switch (insn->op) {
      case Op::kRet:
        return body.size() <= kCallInsnSize ? std::optional(body) : std::nullopt;
      case Op::kJmp:
      case Op::kJcc:
      case Op::kCall:
      case Op::kCallR:
      case Op::kPush:
      case Op::kPop:
      case Op::kHlt:
      case Op::kVmCall:
        return std::nullopt;
      default:
        break;
    }
    if ((insn->op == Op::kAddI || insn->op == Op::kSubI || insn->op == Op::kMovRI ||
         insn->op == Op::kMovRR) &&
        insn->a == kRegSP) {
      return std::nullopt;
    }
    for (int i = 0; i < insn->size; ++i) {
      body.push_back(memory.raw(addr)[i]);
    }
    if (body.size() > kCallInsnSize) {
      return std::nullopt;
    }
    addr += insn->size;
  }
  return std::nullopt;
}

Result<bool> TryBodyPatch(Vm* vm, uint64_t generic_addr, uint64_t generic_size,
                          uint64_t variant_addr, uint64_t variant_size) {
  if (variant_size > generic_size) {
    return false;  // does not fit
  }
  Memory& memory = vm->memory();
  // Scan the variant for pc-relative instructions: copying those without
  // relocation would redirect control flow to garbage.
  uint64_t addr = variant_addr;
  const uint64_t end = variant_addr + variant_size;
  while (addr < end) {
    Result<Insn> insn = Decode(memory.raw(addr), memory.size() - addr);
    if (!insn.ok()) {
      return insn.status();
    }
    switch (insn->op) {
      case Op::kCall:
      case Op::kJmp:
      case Op::kJcc:
        return false;  // would need relocation
      default:
        break;
    }
    addr += insn->size;
  }

  std::vector<uint8_t> body(generic_size, static_cast<uint8_t>(Op::kNop));
  MV_RETURN_IF_ERROR(memory.ReadRaw(variant_addr, body.data(), variant_size));

  const uint8_t old_perms = memory.PermsAt(generic_addr);
  MV_RETURN_IF_ERROR(memory.Protect(generic_addr, generic_size, old_perms | kPermWrite));
  MV_RETURN_IF_ERROR(memory.WriteRaw(generic_addr, body.data(), body.size()));
  MV_RETURN_IF_ERROR(memory.Protect(generic_addr, generic_size, old_perms));
  vm->FlushIcache(generic_addr, generic_size);
  return true;
}

}  // namespace mv

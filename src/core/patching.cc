#include "src/core/patching.h"

#include <algorithm>
#include <cstring>

#include "src/core/txn.h"
#include "src/isa/isa.h"
#include "src/support/faultpoint.h"

namespace mv {

Status WriteCodeBytes(Vm* vm, uint64_t addr, const uint8_t* data, uint64_t len,
                      bool flush) {
  Memory& memory = vm->memory();
  const uint8_t old_perms = memory.PermsAt(addr);
  MV_RETURN_IF_ERROR(memory.Protect(addr, len, old_perms | kPermWrite));
  // Fault point: the adversarial partial write — one byte lands, then the
  // patcher dies. The page is deliberately left writable: a crashed patcher
  // restores nothing, so recovery must fix both the bytes *and* the W^X
  // state.
  if (FaultInjector::Instance().ShouldFail(FaultSite::kPatchWrite)) {
    if (len > 0) {
      (void)memory.WriteRaw(addr, data, 1);
    }
    return Status::Internal("patch write torn after 1 byte (injected fault)");
  }
  MV_RETURN_IF_ERROR(memory.WriteRaw(addr, data, len));
  MV_RETURN_IF_ERROR(memory.Protect(addr, len, old_perms));
  if (flush) {
    vm->FlushIcache(addr, len);
  }
  return Status::Ok();
}

Status PatchCode(Vm* vm, uint64_t addr, const std::array<uint8_t, 5>& bytes) {
  return WriteCodeBytes(vm, addr, bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------------
// PageWriteBatch

Status PageWriteBatch::Acquire(uint64_t addr, uint64_t len) {
  if (len == 0) {
    return Status::Ok();
  }
  Memory& memory = vm_->memory();
  const uint64_t first = addr / kPageSize;
  const uint64_t last = (addr + len - 1) / kPageSize;
  for (uint64_t page = first; page <= last; ++page) {
    const uint64_t base = page * kPageSize;
    if (pages_.count(base) != 0) {
      continue;  // already writable
    }
    const uint8_t old_perms = memory.PermsAt(base);
    ++protect_calls_;
    MV_RETURN_IF_ERROR(memory.Protect(base, kPageSize, old_perms | kPermWrite));
    pages_.emplace(base, old_perms);
    ++pages_acquired_;
  }
  return Status::Ok();
}

Status PageWriteBatch::Write(uint64_t addr, const uint8_t* data, uint64_t len) {
  Memory& memory = vm_->memory();
  // Fault point: the adversarial partial write — one byte lands, then the
  // patcher dies with every acquired page still writable. Same semantics as
  // WriteCodeBytes, so the sweep's recovery invariant carries over.
  if (FaultInjector::Instance().ShouldFail(FaultSite::kPatchWrite)) {
    if (len > 0) {
      (void)memory.WriteRaw(addr, data, 1);
    }
    return Status::Internal("patch write torn after 1 byte (injected fault)");
  }
  return memory.WriteRaw(addr, data, len);
}

void PageWriteBatch::QueueFlush(uint64_t addr, uint64_t len) {
  if (len > 0) {
    flushes_.push_back(CodeRange{addr, len});
  }
}

Status PageWriteBatch::Release() {
  Memory& memory = vm_->memory();
  for (const auto& [base, perms] : pages_) {
    ++protect_calls_;
    MV_RETURN_IF_ERROR(memory.Protect(base, kPageSize, perms));
  }
  pages_.clear();
  return Status::Ok();
}

std::vector<CodeRange> PageWriteBatch::MergedFlushRanges() const {
  // Invalidation hardware is cache-line granular (CLFLUSH, IC IVAU), so each
  // queued range is widened to line boundaries before the union — that is
  // what lets the 5-byte sites of adjacent small callers chain-merge into a
  // handful of ranges instead of one flush IPI per site. Over-flushing is
  // always safe; under-flushing is what the seal audit exists to catch.
  constexpr uint64_t kLine = 64;
  std::vector<CodeRange> sorted;
  sorted.reserve(flushes_.size());
  for (const CodeRange& r : flushes_) {
    const uint64_t lo = r.addr & ~(kLine - 1);
    const uint64_t hi = (r.addr + r.len + kLine - 1) & ~(kLine - 1);
    sorted.push_back(CodeRange{lo, hi - lo});
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const CodeRange& a, const CodeRange& b) { return a.addr < b.addr; });
  std::vector<CodeRange> merged;
  for (const CodeRange& r : sorted) {
    if (!merged.empty() && r.addr <= merged.back().addr + merged.back().len) {
      const uint64_t end = std::max(merged.back().addr + merged.back().len, r.addr + r.len);
      merged.back().len = end - merged.back().addr;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

Result<std::array<uint8_t, 5>> EncodeCallBytes(uint64_t site_addr, uint64_t target) {
  const int64_t rel =
      static_cast<int64_t>(target) - static_cast<int64_t>(site_addr + kCallInsnSize);
  if (rel > INT32_MAX || rel < INT32_MIN) {
    return Status::OutOfRange("call target out of rel32 range");
  }
  std::vector<uint8_t> encoded;
  Result<int> size = Encode(MakeCall(static_cast<int32_t>(rel)), &encoded);
  if (!size.ok()) {
    return size.status();
  }
  std::array<uint8_t, 5> bytes{};
  std::memcpy(bytes.data(), encoded.data(), 5);
  return bytes;
}

std::optional<std::vector<uint8_t>> ExtractTinyBody(const Memory& memory, uint64_t fn_addr) {
  std::vector<uint8_t> body;
  uint64_t addr = fn_addr;
  for (int guard = 0; guard < 8; ++guard) {
    if (addr + 1 > memory.size()) {
      return std::nullopt;
    }
    Result<Insn> insn = Decode(memory.raw(addr), memory.size() - addr);
    if (!insn.ok()) {
      return std::nullopt;
    }
    switch (insn->op) {
      case Op::kRet:
        return body.size() <= kCallInsnSize ? std::optional(body) : std::nullopt;
      case Op::kJmp:
      case Op::kJcc:
      case Op::kCall:
      case Op::kCallR:
      case Op::kPush:
      case Op::kPop:
      case Op::kHlt:
      case Op::kVmCall:
        return std::nullopt;
      default:
        break;
    }
    if ((insn->op == Op::kAddI || insn->op == Op::kSubI || insn->op == Op::kMovRI ||
         insn->op == Op::kMovRR) &&
        insn->a == kRegSP) {
      return std::nullopt;
    }
    for (int i = 0; i < insn->size; ++i) {
      body.push_back(memory.raw(addr)[i]);
    }
    if (body.size() > kCallInsnSize) {
      return std::nullopt;
    }
    addr += insn->size;
  }
  return std::nullopt;
}

Result<bool> TryBodyPatch(Vm* vm, uint64_t generic_addr, uint64_t generic_size,
                          uint64_t variant_addr, uint64_t variant_size) {
  if (variant_size > generic_size) {
    return false;  // does not fit
  }
  Memory& memory = vm->memory();
  // Scan the variant for pc-relative instructions: copying those without
  // relocation would redirect control flow to garbage.
  uint64_t addr = variant_addr;
  const uint64_t end = variant_addr + variant_size;
  while (addr < end) {
    Result<Insn> insn = Decode(memory.raw(addr), memory.size() - addr);
    if (!insn.ok()) {
      return insn.status();
    }
    switch (insn->op) {
      case Op::kCall:
      case Op::kJmp:
      case Op::kJcc:
        return false;  // would need relocation
      default:
        break;
    }
    addr += insn->size;
  }

  std::vector<uint8_t> body(generic_size, static_cast<uint8_t>(Op::kNop));
  MV_RETURN_IF_ERROR(memory.ReadRaw(variant_addr, body.data(), variant_size));

  constexpr uint64_t kOp = 5;  // PatchOp window size
  if (generic_size < kOp) {
    // Too small to journal as 5-byte ops; a single verified write still
    // crosses every fault point and reads back the result.
    MV_RETURN_IF_ERROR(WriteCodeBytes(vm, generic_addr, body.data(), body.size()));
    std::vector<uint8_t> readback(body.size());
    MV_RETURN_IF_ERROR(memory.ReadRaw(generic_addr, readback.data(), readback.size()));
    if (readback != body) {
      return Status::Internal("body patch torn (read-back mismatch)");
    }
    return true;
  }

  // Chunk the overwrite into journaled 5-byte ops; the tail chunk overlaps
  // backward so the whole body is covered without writing past the function.
  PatchPlan plan;
  for (uint64_t off = 0;; off += kOp) {
    if (off + kOp > generic_size) {
      off = generic_size - kOp;
    }
    PatchOp op;
    op.addr = generic_addr + off;
    MV_RETURN_IF_ERROR(memory.ReadRaw(op.addr, op.old_bytes.data(), kOp));
    std::memcpy(op.new_bytes.data(), body.data() + off, kOp);
    plan.push_back(op);
    if (off + kOp >= generic_size) {
      break;
    }
  }

  MV_ASSIGN_OR_RETURN(PatchJournal journal,
                      PatchJournal::Begin(vm, /*image=*/nullptr, plan, /*validate=*/true));
  TxnOptions options;
  Status applied = journal.ApplyCoalesced(options, /*stats=*/nullptr);
  TxnStats txn;
  if (applied.ok()) {
    applied = journal.Seal(&txn);
  }
  if (!applied.ok()) {
    Status undo = journal.Rollback(&txn);
    if (!undo.ok()) {
      return Status::Internal("body patch rollback failed — image may be torn: " +
                              undo.message());
    }
    return Status(applied.code(),
                  "body patch rolled back: " + applied.ToString());
  }
  return true;
}

}  // namespace mv

// Multiverse descriptors: the binary metadata contract between the compiler
// and the runtime library (paper §3, §5, Figure 2).
//
// Each translation unit emits three descriptor kinds into dedicated sections;
// the linker concatenates same-named sections, so the runtime addresses each
// kind as one contiguous array:
//   .mv.variables  — one record per configuration switch
//   .mv.functions  — one record per multiversed function (with variants)
//   .mv.callsites  — one record per recorded call site
// plus the auxiliary .mv.variants / .mv.guards / .mv.strings sections the
// function records point into.
//
// Record sizes match the paper's accounting exactly (§5): 32 bytes per
// variable, 16 bytes per call site, and 48 + #variants*(32 + #guards*16)
// bytes per multiversed function.
#ifndef MULTIVERSE_SRC_CORE_DESCRIPTORS_H_
#define MULTIVERSE_SRC_CORE_DESCRIPTORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/mvir/ir.h"
#include "src/obj/linker.h"
#include "src/obj/object.h"
#include "src/support/status.h"
#include "src/vm/memory.h"

namespace mv {

inline constexpr size_t kVariableDescSize = 32;
inline constexpr size_t kFunctionDescSize = 48;
inline constexpr size_t kVariantDescSize = 32;
inline constexpr size_t kGuardDescSize = 16;
inline constexpr size_t kCallsiteDescSize = 16;

// Variable-descriptor flag bits.
inline constexpr uint32_t kVarFlagSigned = 1u << 0;
inline constexpr uint32_t kVarFlagFnPtr = 1u << 1;

// Emits the .mv.* descriptor sections for `module` into `obj`, using the
// call-site records collected during code generation. Also emits the
// .pv.callsites section for indirect calls through non-multiverse function
// pointers (consumed by the paravirt baseline patcher, src/baseline).
Status EmitDescriptors(const Module& module, const CodegenInfo& info, ObjectFile* obj);

// --- Runtime-side parsed view ---------------------------------------------

struct RtVariable {
  uint64_t addr = 0;
  uint32_t width = 0;       // bytes: 1/2/4/8
  bool is_signed = false;
  bool is_fnptr = false;
  std::string name;
};

struct RtGuard {
  uint64_t var_addr = 0;
  int32_t lo = 0;
  int32_t hi = 0;
};

struct RtVariant {
  uint64_t fn_addr = 0;
  std::vector<RtGuard> guards;
};

struct RtFunction {
  uint64_t generic_addr = 0;
  std::string name;
  std::vector<RtVariant> variants;
};

struct RtCallsite {
  uint64_t callee_addr = 0;  // generic function address, or fn-ptr variable address
  uint64_t site_addr = 0;    // address of the 5-byte CALL/CALLR instruction
};

struct DescriptorTable {
  std::vector<RtVariable> variables;
  std::vector<RtFunction> functions;
  std::vector<RtCallsite> callsites;

  const RtVariable* FindVariable(uint64_t addr) const;
  const RtFunction* FindFunction(uint64_t generic_addr) const;

  // Parsing hardening knobs. The paranoid mode (on by default, `mvcc
  // --no-paranoid` to disable) treats the descriptor sections as untrusted
  // input: every cross-section reference (variants pointer, guards pointer,
  // name string) must land inside its own section with record alignment, and
  // counts are capped — a flipped bit yields a structured diagnostic, never a
  // wild read or an unbounded scan.
  struct ParseOptions {
    bool paranoid = true;
    uint32_t max_variants_per_function = 1024;
    uint32_t max_guards_per_variant = 1024;
    uint64_t max_name_length = 4096;
  };

  // Parses the descriptor sections of a loaded image (paper §5: "we only
  // inspect the descriptors of the binary itself").
  static Result<DescriptorTable> Parse(const Memory& memory, const Image& image);
  static Result<DescriptorTable> Parse(const Memory& memory, const Image& image,
                                       const ParseOptions& options);
};

// Semantic validation of a parsed table against the loaded image (the
// `--paranoid` pass, on by default in MultiverseRuntime::Attach): switch
// widths and storage, generic/variant entries resolving to real image
// symbols inside the text segment, guards referencing known switches, call
// sites that decode as the expected CALL/CALLR and do not overlap each
// other. Rejecting here turns a corrupt table into a diagnostic instead of a
// runtime that patches garbage addresses.
Status ValidateDescriptorTable(const DescriptorTable& table, const Memory& memory,
                               const Image& image);

// Byte-size accounting used by the size benchmarks and tests: exactly the
// paper's formula from §5.
uint64_t DescriptorSectionBytes(size_t n_variables, size_t n_callsites,
                                const std::vector<size_t>& variants_per_function,
                                const std::vector<size_t>& guards_per_variant);

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_DESCRIPTORS_H_

// The commit fast path's memoization layer (docs/INTERNALS.md §12).
//
// The paper's headline workloads (pv-ops, spinlock elision, CPython GC
// toggles) flip between a small set of recurring configurations, yet a plain
// multiverse_commit() re-derives everything from scratch: variant selection,
// tiny-body decoding, call-site verification, plan construction. The
// PlanCache memoizes the fully-planned PatchJournal op list per
// configuration, so a repeat commit skips selection and planning entirely and
// goes straight to validate -> apply -> seal.
//
// A cached plan is a diff, not a state: its expected old bytes are only valid
// from the exact pre-commit state it was planned in. Entries are therefore
// keyed by (pre-state token, configuration fingerprint) and matched on the
// exact configuration value vector — never on the hash alone. The pre-state
// token is content-based (fully-generic, or fully-committed-to-values-V), so
// an A<->B flip cycle converges onto two cache entries after one cold lap.
// Even a wrongly-matched entry cannot tear the image: the journal's
// expected-old-bytes validation (PR 3) rejects it before the first byte
// moves, and the runtime then evicts the entry and replans cold.
//
// Invalidation: the whole cache is dropped on attach (trivially — it starts
// empty), on any rollback (including foreign-write detection at seal), and on
// RestoreState from outside the fast path (a livepatch session rewinding
// bookkeeping). Entries are also evicted one-by-one when validation proves
// them stale.
#ifndef MULTIVERSE_SRC_CORE_PLAN_CACHE_H_
#define MULTIVERSE_SRC_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/patching.h"

namespace mv {

struct RuntimeSnapshot;  // runtime.cc; opaque bookkeeping snapshot

// Identity of the runtime's logical patch state, compared by content so
// recurring configurations converge. kUnknown never matches anything — it is
// the safe default after partial operations (CommitFn, CommitRefs, livepatch
// sessions) whose resulting text is not a pure function of the switch vector.
struct StateToken {
  enum class Kind : uint8_t { kGeneric, kConfig, kUnknown };

  Kind kind = Kind::kGeneric;
  // kConfig: the full configuration value vector the image is committed to
  // (one slot per descriptor variable, fingerprinted slots meaningful).
  std::vector<int64_t> values;

  static StateToken Generic() { return StateToken{}; }
  static StateToken Config(std::vector<int64_t> v) {
    return StateToken{Kind::kConfig, std::move(v)};
  }
  static StateToken Unknown() { return StateToken{Kind::kUnknown, {}}; }

  bool Matches(const StateToken& other) const {
    return kind != Kind::kUnknown && other.kind != Kind::kUnknown &&
           kind == other.kind && values == other.values;
  }
};

// FNV-1a over the referenced switch values + the descriptor epoch. Used as a
// cheap reject before the exact value-vector comparison.
uint64_t ConfigFingerprint(const std::vector<int64_t>& values, uint64_t epoch);

class PlanCache {
 public:
  struct Entry {
    uint64_t fingerprint = 0;
    StateToken pre_state;          // state the plan's old bytes assume
    std::vector<int64_t> values;   // configuration the plan commits to
    PatchPlan plan;
    PatchStats stats;              // what the cold commit reported
    // Bookkeeping snapshot taken right after the cold commit succeeded; a
    // cache hit restores it instead of replaying selection.
    std::shared_ptr<const RuntimeSnapshot> post_state;
  };

  static constexpr size_t kDefaultCapacity = 64;

  explicit PlanCache(size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  // Exact match on pre-state and configuration values (fingerprint is only
  // the fast reject). Returned pointer is invalidated by any mutation.
  const Entry* Lookup(const StateToken& pre_state, uint64_t fingerprint,
                      const std::vector<int64_t>& values) const;
  void Insert(Entry entry);  // FIFO eviction at capacity
  // Drops the entry Lookup would have returned (stale plan detected).
  void EvictMatching(const StateToken& pre_state, uint64_t fingerprint,
                     const std::vector<int64_t>& values);
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

 private:
  size_t capacity_;
  std::vector<Entry> entries_;
};

// Fast-path accounting, per runtime and mirrored into a process-wide total so
// every bench --json document can surface the counters regardless of how many
// Program/runtime instances the bench constructs.
struct CommitFastPathStats {
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_evictions = 0;      // stale entries dropped at validate
  uint64_t plan_cache_invalidations = 0;  // whole-cache clears (rollback, ...)
  uint64_t mprotect_calls = 0;            // via coalesced applies
  uint64_t flush_ranges = 0;              // merged ranges actually issued
  uint64_t pages_touched = 0;
  uint64_t fns_reevaluated = 0;           // guard evaluation actually ran
  uint64_t fns_skipped = 0;               // dirty-set skip: switches unchanged
};

class GlobalCommitCounters {
 public:
  static GlobalCommitCounters& Instance() {
    static GlobalCommitCounters counters;
    return counters;
  }

  CommitFastPathStats totals;

  void Reset() { totals = CommitFastPathStats{}; }

 private:
  GlobalCommitCounters() = default;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_PLAN_CACHE_H_

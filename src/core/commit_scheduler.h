// CommitScheduler — the commit-storm front end of the transactional commit
// path (docs/INTERNALS.md §18).
//
// Every commit path below this layer handles one configuration transition at
// a time; the paper's premise is one flip per epoch (thread create/exit, CPU
// hotplug). A production control plane is nothing like that: thousands of
// switch-flip requests per second arrive from config pushes, autoscalers and
// per-tenant overrides — and "Small Yet Configurable" (PAPERS.md) observes
// that a large fraction of them are *null*: the new values select exactly the
// code already installed. Committing each flip individually burns a journaled
// plan (and a protocol rendezvous) per flip and stalls the request loop; the
// scheduler turns the stream into bounded batches:
//
//   debounce   Submissions land in a per-switch pending slot, last writer
//              wins. A slot absorbs any number of re-submissions within the
//              window at zero commit cost — the queue depth is bounded by
//              the number of switches, never by the storm rate.
//   window     The first submission into an idle scheduler opens a window of
//              `window_cycles`; Poll() closes it once the deadline passes
//              (Flush() closes it immediately). Closing drains every pending
//              slot in one shot.
//   elide      After the drained values are written, the selection signature
//              (runtime.h SelectionSignatureNow) is compared with the
//              signature of the last committed state. Equal signatures mean
//              the committed text is already bit-identical to what a commit
//              would produce — the whole batch is null and is dropped
//              without planning a single patch. Soundness: committed text is
//              a pure function of the selection signature, not of the raw
//              switch values; the values themselves are ordinary data writes
//              that need no patching.
//   coalesce   A batch that does change the signature commits ONCE — one
//              journaled plan (served from the plan cache when warm, applied
//              through PageWriteBatch), whatever the protocol — so N flips
//              cost one commit: the coalescing ratio.
//   backpressure  The scheduler models its own occupancy: a drain charges
//              its commit latency to `busy_until`, and submissions arriving
//              while a drain is still in flight are accounted as
//              backpressure waits and start the next window only after the
//              drain retires. Sustained storms therefore degrade to one
//              bounded batch per (window + commit) period instead of an
//              unbounded queue.
//
// The scheduler is deliberately protocol-agnostic: the commit callback
// performs one full coalesced commit (default: the runtime's plain
// transactional Commit()); callers that must not disturb mutator cores wrap
// multiverse_commit_live with kWaitFree. The write callback defaults to
// descriptor-width global writes; the fleet passes Fleet::WriteSwitch so
// every drained value still lands in the durable write-ahead journal first.
//
// Failure contract: a drain whose commit fails (rolled back by the journal)
// KEEPS its pending slots — the switch values are already written, the text
// is restored, and the next Poll/Flush retries the same coalesced batch.
// Queued flips survive rollback; the fault sweep asserts it at every fault
// point.
#ifndef MULTIVERSE_SRC_CORE_COMMIT_SCHEDULER_H_
#define MULTIVERSE_SRC_CORE_COMMIT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/commit_stats.h"
#include "src/core/program.h"
#include "src/support/status.h"

namespace mv {

// What one coalesced batch commit cost: the reusable health counters plus the
// modelled latency the scheduler charges to its busy clock (plain commits
// have no patch clock and report 0).
struct BatchCommitResult {
  CommitStats stats;
  double commit_cycles = 0;
};

struct StormOptions {
  // Debounce window in modelled cycles: how long the first submission into an
  // idle scheduler waits for companions before the batch drains. At the
  // nominal 3 GHz clock the default is ~20 microseconds.
  double window_cycles = 60'000;
  // Drop batches whose selection signature is unchanged (null flips). Off
  // only for measurement baselines — elision is always sound.
  bool elide_null_flips = true;
  // Writes one drained value. Default: descriptor-width WriteGlobal on the
  // scheduler's program. The fleet substitutes Fleet::WriteSwitch so the
  // write-ahead intent record lands in the durable journal.
  std::function<Status(const std::string& name, int64_t value)> write_switch;
  // Performs ONE coalesced commit over the values just written. Default: the
  // plain transactional Commit() (plan cache + PageWriteBatch underneath).
  // Live callers wrap multiverse_commit_live and report CommitCycles().
  std::function<Result<BatchCommitResult>()> commit;
};

// Monotonic scheduler accounting. flips_submitted counts every Submit();
// flips_coalesced the submissions absorbed by an already-pending slot;
// flips_elided_null the pending slots dropped by whole-batch null elision.
// plans_committed counts the journaled plans actually applied — the
// denominator of the coalescing ratio.
struct StormStats {
  uint64_t flips_submitted = 0;
  uint64_t flips_coalesced = 0;
  uint64_t flips_elided_null = 0;
  uint64_t plans_committed = 0;
  uint64_t batches_drained = 0;  // windows closed (committed or elided)
  uint64_t batches_elided = 0;
  uint64_t commit_failures = 0;  // drains rolled back (slots retained)
  uint64_t backpressure_waits = 0;
  uint64_t max_queue_depth = 0;  // peak pending slots (bounded by #switches)
  double busy_cycles = 0;        // summed modelled commit latency
  std::vector<double> batch_cycles;  // per-committed-batch latency samples
  CommitStats commit;                // accumulated commit outcomes

  double BatchP99Cycles() const;
  // flips per journaled plan; flips_submitted when no plan was needed at all
  // (an all-null storm coalesces infinitely — reported as the flip count).
  double CoalescingRatio() const;
  // The storm counters folded into the reusable CommitStats so one
  // RecordCommitOutcome / InstanceHealth accumulation carries them.
  CommitStats Summary() const;
};

class CommitScheduler {
 public:
  // The program must be attached and at a committed fixpoint: the elision
  // baseline is seeded from the current selection signature, so "unchanged
  // signature" means "text already bit-identical to a fresh commit".
  CommitScheduler(Program* program, const StormOptions& options);

  // Records one switch-flip request at modelled time `now_cycles`. Never
  // blocks and never commits: last-writer-wins into the pending slot, and an
  // idle scheduler opens its debounce window (deferred past the busy clock
  // when a previous drain is still in flight — the backpressure bound).
  Status Submit(const std::string& name, int64_t value, double now_cycles);

  // Closes the window if its deadline has passed. Returns true when a drain
  // ran (committed or elided). The caller's event loop is expected to Poll
  // between requests; time only advances when the caller says it does.
  Result<bool> Poll(double now_cycles);

  // Forces the open window closed now — rollout barriers, shutdown, tests.
  Result<bool> Flush(double now_cycles);

  bool idle() const { return pending_.empty(); }
  size_t pending_switches() const { return pending_.size(); }
  // When the open window will drain (meaningful only while !idle()).
  double window_deadline() const { return window_deadline_; }
  // The modelled time until which the last drain keeps the scheduler busy.
  double busy_until() const { return busy_until_; }
  const StormStats& stats() const { return stats_; }

 private:
  // Writes every pending slot, evaluates the elision check, commits once.
  Result<bool> Drain(double now_cycles);

  Program* program_;
  StormOptions options_;
  // Pending slots, keyed by switch name: deterministic drain order and O(1)
  // last-writer-wins coalescing.
  std::map<std::string, int64_t> pending_;
  double window_deadline_ = 0;
  double busy_until_ = 0;
  // Selection signature of the last committed text (the elision baseline).
  std::vector<uint64_t> committed_signature_;
  bool have_signature_ = false;
  StormStats stats_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_COMMIT_SCHEDULER_H_

#include "src/core/varprove.h"

#include <algorithm>
#include <map>

#include "src/core/abi.h"
#include "src/support/str.h"

namespace mv {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

// Full-memory snapshot for run isolation: guest bytes + runtime bookkeeping.
// Restoring rewrites every byte and flushes all icaches, so the next run
// starts from exactly this state regardless of what executed in between.
struct BaselineSnapshot {
  std::vector<uint8_t> memory;
  std::shared_ptr<const MultiverseRuntime::SavedState> runtime;

  static Result<BaselineSnapshot> Take(Program* program) {
    BaselineSnapshot snap;
    snap.memory.resize(program->vm().memory().size());
    MV_RETURN_IF_ERROR(
        program->vm().memory().ReadRaw(0, snap.memory.data(), snap.memory.size()));
    snap.runtime = program->runtime().SaveState();
    return snap;
  }

  Status Restore(Program* program) const {
    MV_RETURN_IF_ERROR(
        program->vm().memory().WriteRaw(0, memory.data(), memory.size()));
    program->vm().FlushAllIcache();
    program->runtime().RestoreState(*runtime);
    return Status::Ok();
  }
};

Status WriteAssignment(Program* program, const ConfigSpace& space,
                       size_t config) {
  const std::vector<int64_t> values = space.Assignment(config);
  for (size_t i = 0; i < space.switches.size(); ++i) {
    MV_RETURN_IF_ERROR(program->WriteGlobal(
        space.switches[i].name, values[i],
        static_cast<int>(space.switches[i].width)));
  }
  return Status::Ok();
}

}  // namespace

std::vector<int64_t> ConfigSpace::Assignment(size_t index) const {
  std::vector<int64_t> values(switches.size());
  for (size_t i = 0; i < switches.size(); ++i) {
    const size_t radix = switches[i].values.size();
    values[i] = switches[i].values[index % radix];
    index /= radix;
  }
  return values;
}

std::string ConfigSpace::DescribeConfig(size_t index) const {
  const std::vector<int64_t> values = Assignment(index);
  std::string out;
  for (size_t i = 0; i < switches.size(); ++i) {
    if (i != 0) {
      out += " ";
    }
    out += StrFormat("%s=%lld", switches[i].name.c_str(),
                     (long long)values[i]);
  }
  return out;
}

Result<ConfigSpace> CollectConfigSpace(Program* program) {
  ConfigSpace space;
  const DescriptorTable& table = program->runtime().table();
  for (const Module& module : program->modules()) {
    for (const SwitchDomain& domain : CollectSwitchDomains(module)) {
      if (domain.is_fnptr) {
        return Status::Unimplemented(StrFormat(
            "varprove: switch '%s' is a function pointer — its domain is an "
            "address set, not an enumerable integer domain",
            domain.name.c_str()));
      }
      const RtVariable* variable = nullptr;
      for (const RtVariable& candidate : table.variables) {
        if (candidate.name == domain.name) {
          variable = &candidate;
          break;
        }
      }
      if (variable == nullptr) {
        return Status::NotFound(StrFormat(
            "varprove: switch '%s' has no runtime descriptor",
            domain.name.c_str()));
      }
      if (domain.values.empty()) {
        return Status::Internal(StrFormat("varprove: switch '%s' has an empty "
                                          "domain after lowering",
                                          domain.name.c_str()));
      }
      ConfigSwitch sw;
      sw.name = domain.name;
      sw.addr = variable->addr;
      sw.width = variable->width;
      sw.values = domain.values;
      space.switches.push_back(std::move(sw));
    }
  }
  if (space.switches.empty()) {
    return Status::InvalidArgument("varprove: program has no multiverse switches");
  }
  size_t product = 1;
  for (const ConfigSwitch& sw : space.switches) {
    product *= sw.values.size();
    if (product > (1u << 20)) {
      return Status::OutOfRange(
          "varprove: switch-domain cross product exceeds 2^20 configurations");
    }
  }
  space.num_configs = product;
  return space;
}

CommitDriver PlainCommitDriver() {
  return [](Program* program) -> Status {
    return program->runtime().Commit().status();
  };
}

Result<std::vector<CommitClass>> EnumerateCommitClasses(
    Program* program, const ConfigSpace& space, const CommitDriver& commit) {
  const Image& image = program->image();
  std::vector<uint8_t> pristine(image.text_size);
  MV_RETURN_IF_ERROR(
      program->vm().memory().ReadRaw(image.text_base, pristine.data(),
                                     pristine.size()));
  const uint64_t pristine_checksum = program->runtime().TextChecksum();

  // Pass 1: group configs by selection signature (no patching).
  std::vector<CommitClass> classes;
  std::map<std::vector<uint64_t>, size_t> class_of_signature;
  for (size_t config = 0; config < space.num_configs; ++config) {
    MV_RETURN_IF_ERROR(WriteAssignment(program, space, config));
    MV_ASSIGN_OR_RETURN(std::vector<uint64_t> signature,
                        program->runtime().SelectionSignatureNow());
    auto [it, inserted] =
        class_of_signature.emplace(std::move(signature), classes.size());
    if (inserted) {
      CommitClass cls;
      cls.signature = it->first;
      cls.rep_config = config;
      cls.members = PresenceCondition::Single(space.num_configs, config);
      classes.push_back(std::move(cls));
    } else {
      classes[it->second].members.Set(config);
    }
  }

  // Pass 2: commit one representative per class, harvest its text diff,
  // revert, and verify the pristine text came back bit-identical.
  for (CommitClass& cls : classes) {
    MV_RETURN_IF_ERROR(WriteAssignment(program, space, cls.rep_config));
    MV_RETURN_IF_ERROR(commit(program));
    std::vector<uint8_t> committed(image.text_size);
    MV_RETURN_IF_ERROR(
        program->vm().memory().ReadRaw(image.text_base, committed.data(),
                                       committed.size()));
    for (uint64_t i = 0; i < image.text_size; ++i) {
      if (committed[i] != pristine[i]) {
        cls.text_diff.emplace_back(image.text_base + i, committed[i]);
      }
    }
    MV_RETURN_IF_ERROR(program->runtime().Revert().status());
    if (program->runtime().TextChecksum() != pristine_checksum) {
      return Status::Internal(StrFormat(
          "varprove: revert after class %s did not restore the pristine text",
          cls.members.ToString().c_str()));
    }
  }
  return classes;
}

Result<std::vector<VarRegion>> BuildSwitchCellRegions(Program* program,
                                                      const ConfigSpace& space) {
  (void)program;
  std::vector<VarRegion> regions;
  for (size_t s = 0; s < space.switches.size(); ++s) {
    const ConfigSwitch& sw = space.switches[s];
    VarRegion region;
    region.addr = sw.addr;
    region.len = sw.width;
    region.is_text = false;
    region.name = StrFormat("switch %s", sw.name.c_str());
    std::map<int64_t, uint32_t> content_of_value;
    region.variant_of_config.resize(space.num_configs);
    for (size_t config = 0; config < space.num_configs; ++config) {
      const int64_t value = space.Assignment(config)[s];
      auto [it, inserted] =
          content_of_value.emplace(value, region.contents.size());
      if (inserted) {
        std::vector<uint8_t> bytes(sw.width);
        for (uint32_t b = 0; b < sw.width; ++b) {
          bytes[b] = static_cast<uint8_t>(static_cast<uint64_t>(value) >> (b * 8));
        }
        region.contents.push_back(std::move(bytes));
      }
      region.variant_of_config[config] = it->second;
    }
    regions.push_back(std::move(region));
  }
  return regions;
}

Result<std::vector<VarRegion>> BuildCommittedTextRegions(
    Program* program, const ConfigSpace& space,
    const std::vector<CommitClass>& classes) {
  // Union of every byte any class patches, coalesced into ranges (gaps up to
  // 8 bytes are bridged; gap bytes are pristine in every class's content, so
  // bridging only trades region count for content size).
  std::vector<uint64_t> addrs;
  for (const CommitClass& cls : classes) {
    for (const auto& [addr, value] : cls.text_diff) {
      addrs.push_back(addr);
    }
  }
  std::sort(addrs.begin(), addrs.end());
  addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());

  // Which class each config belongs to.
  std::vector<uint32_t> class_of_config(space.num_configs, 0);
  for (size_t k = 0; k < classes.size(); ++k) {
    for (size_t config : classes[k].members.Configs()) {
      class_of_config[config] = static_cast<uint32_t>(k);
    }
  }

  std::vector<VarRegion> regions;
  size_t i = 0;
  while (i < addrs.size()) {
    size_t j = i;
    while (j + 1 < addrs.size() && addrs[j + 1] - addrs[j] <= 8) {
      ++j;
    }
    const uint64_t lo = addrs[i];
    const uint64_t len = addrs[j] - addrs[i] + 1;
    VarRegion region;
    region.addr = lo;
    region.len = static_cast<uint32_t>(len);
    region.is_text = true;
    region.name = StrFormat("text@0x%llx+%llu", (unsigned long long)lo,
                            (unsigned long long)len);
    std::vector<uint8_t> base_bytes(len);
    MV_RETURN_IF_ERROR(
        program->vm().memory().ReadRaw(lo, base_bytes.data(), len));
    region.contents.reserve(classes.size());
    for (const CommitClass& cls : classes) {
      std::vector<uint8_t> content = base_bytes;
      for (const auto& [addr, value] : cls.text_diff) {
        if (addr >= lo && addr < lo + len) {
          content[addr - lo] = value;
        }
      }
      region.contents.push_back(std::move(content));
    }
    region.variant_of_config.resize(space.num_configs);
    for (size_t config = 0; config < space.num_configs; ++config) {
      region.variant_of_config[config] = class_of_config[config];
    }
    regions.push_back(std::move(region));
    i = j + 1;
  }
  return regions;
}

std::vector<uint64_t> CollectJoinPcs(Program* program) {
  std::vector<uint64_t> pcs;
  for (const RtCallsite& site : program->runtime().table().callsites) {
    pcs.push_back(site.site_addr + 5);  // fall-through of the 5-byte CALL
  }
  std::sort(pcs.begin(), pcs.end());
  pcs.erase(std::unique(pcs.begin(), pcs.end()), pcs.end());
  return pcs;
}

void DefaultChecksumRange(const Program& program, uint64_t* lo, uint64_t* hi) {
  const Image& image = program.image();
  *lo = image.text_base + image.text_size;
  *hi = image.stack_base != 0 ? image.stack_base : image.stack_top;
}

uint64_t MemoryRangeChecksum(Program* program, uint64_t lo, uint64_t hi) {
  hi = std::min<uint64_t>(hi, program->vm().memory().size());
  if (hi <= lo) {
    return 0;
  }
  uint64_t hash = kFnvOffset;
  const uint8_t* bytes = program->vm().memory().raw(lo);
  for (uint64_t i = 0; i < hi - lo; ++i) {
    hash = (hash ^ bytes[i]) * kFnvPrime;
  }
  return hash;
}

namespace {

Result<std::vector<ConfigOutcome>> RunVariationalPass(
    Program* program, const ConfigSpace& space,
    const std::vector<VarRegion>& regions, const VarProveOptions& options,
    VarExecStats* stats_out) {
  MV_ASSIGN_OR_RETURN(const uint64_t entry,
                      program->SymbolAddress(options.entry));
  MV_ASSIGN_OR_RETURN(BaselineSnapshot snapshot, BaselineSnapshot::Take(program));
  SetupCall(program->image(), &program->vm(), entry, options.args);

  VarExecutor executor(&program->vm(), space.num_configs);
  for (const VarRegion& region : regions) {
    MV_RETURN_IF_ERROR(executor.AddRegion(region));
  }
  VarExecOptions exec_options;
  exec_options.max_steps_per_config = options.max_steps_per_config;
  exec_options.join_pcs = CollectJoinPcs(program);
  DefaultChecksumRange(*program, &exec_options.checksum_lo,
                       &exec_options.checksum_hi);
  Result<std::vector<ConfigOutcome>> outcomes = executor.Run(exec_options);
  *stats_out = executor.stats();
  MV_RETURN_IF_ERROR(snapshot.Restore(program));
  return outcomes;
}

}  // namespace

Result<VarProveReport> ProveEquivalence(Program* program,
                                        const VarProveOptions& options) {
  VarProveReport report;
  MV_ASSIGN_OR_RETURN(const ConfigSpace space, CollectConfigSpace(program));
  report.num_configs = space.num_configs;
  report.num_switches = space.switches.size();

  const CommitDriver commit = options.commit ? options.commit : PlainCommitDriver();
  // The proof is defined against the GENERIC image. The caller may hand us a
  // program that already committed (mvcc --commit/--live before --varexec);
  // save its exact state, revert to generic for the proof, restore at the end.
  MV_ASSIGN_OR_RETURN(BaselineSnapshot original, BaselineSnapshot::Take(program));
  MV_RETURN_IF_ERROR(program->runtime().Revert().status());
  MV_ASSIGN_OR_RETURN(BaselineSnapshot baseline, BaselineSnapshot::Take(program));
  MV_ASSIGN_OR_RETURN(const std::vector<CommitClass> classes,
                      EnumerateCommitClasses(program, space, commit));
  report.num_classes = classes.size();
  // Class enumeration wrote switch values and committed/reverted; rewind to
  // the caller's baseline so both proof passes share one starting state.
  MV_RETURN_IF_ERROR(baseline.Restore(program));

  MV_ASSIGN_OR_RETURN(const std::vector<VarRegion> cell_regions,
                      BuildSwitchCellRegions(program, space));
  MV_ASSIGN_OR_RETURN(report.generic_outcomes,
                      RunVariationalPass(program, space, cell_regions, options,
                                         &report.generic_stats));

  MV_ASSIGN_OR_RETURN(const std::vector<VarRegion> text_regions,
                      BuildCommittedTextRegions(program, space, classes));
  std::vector<VarRegion> committed_regions = cell_regions;
  committed_regions.insert(committed_regions.end(), text_regions.begin(),
                           text_regions.end());
  MV_ASSIGN_OR_RETURN(report.committed_outcomes,
                      RunVariationalPass(program, space, committed_regions,
                                         options, &report.committed_stats));

  for (size_t config = 0; config < space.num_configs; ++config) {
    const ConfigOutcome& generic = report.generic_outcomes[config];
    const ConfigOutcome& committed = report.committed_outcomes[config];
    const std::string who =
        StrFormat("config %zu (%s)", config, space.DescribeConfig(config).c_str());
    if (generic.exit != committed.exit ||
        generic.fault.kind != committed.fault.kind) {
      report.mismatches.push_back(StrFormat(
          "%s: exit/fault diverged (generic %d/%d, committed %d/%d)",
          who.c_str(), (int)generic.exit, (int)generic.fault.kind,
          (int)committed.exit, (int)committed.fault.kind));
      continue;
    }
    if (generic.transcript != committed.transcript) {
      report.mismatches.push_back(
          StrFormat("%s: transcript diverged ('%s' vs '%s')", who.c_str(),
                    generic.transcript.c_str(), committed.transcript.c_str()));
    }
    if (generic.exit == VmExit::Kind::kHalt && generic.r0 != committed.r0) {
      report.mismatches.push_back(StrFormat(
          "%s: return value diverged (%llu vs %llu)", who.c_str(),
          (unsigned long long)generic.r0, (unsigned long long)committed.r0));
    }
    if (generic.mem_checksum != committed.mem_checksum) {
      report.mismatches.push_back(
          StrFormat("%s: data-segment checksum diverged", who.c_str()));
    }
  }
  MV_RETURN_IF_ERROR(original.Restore(program));
  return report;
}

Result<BruteOutcome> RunOneConfig(Program* program, const ConfigSpace& space,
                                  size_t config, bool committed,
                                  const VarProveOptions& options) {
  if (config >= space.num_configs) {
    return Status::OutOfRange(StrFormat("config %zu out of %zu", config,
                                        space.num_configs));
  }
  MV_ASSIGN_OR_RETURN(const uint64_t entry,
                      program->SymbolAddress(options.entry));
  MV_ASSIGN_OR_RETURN(BaselineSnapshot snapshot, BaselineSnapshot::Take(program));
  // Like ProveEquivalence, the non-committed run is defined on the generic
  // image even if the caller committed earlier; the snapshot restores their
  // state afterwards.
  MV_RETURN_IF_ERROR(program->runtime().Revert().status());
  MV_RETURN_IF_ERROR(WriteAssignment(program, space, config));
  if (committed) {
    const CommitDriver commit =
        options.commit ? options.commit : PlainCommitDriver();
    MV_RETURN_IF_ERROR(commit(program));
  }
  SetupCall(program->image(), &program->vm(), entry, options.args);

  BruteOutcome outcome;
  // instret accumulates across runs on the same core; report this run's delta
  // (the same accounting the variational executor uses).
  const uint64_t instret_base = program->vm().core(0).instret;
  uint64_t budget = options.max_steps_per_config;
  for (;;) {
    const VmExit exit = program->vm().Run(0, budget);
    const uint64_t retired = program->vm().core(0).instret - instret_base;
    switch (exit.kind) {
      case VmExit::Kind::kVmCall:
        if (exit.vmcall_code == kVmCallPutChar) {
          outcome.transcript.push_back(
              static_cast<char>(program->vm().core(0).regs[0]));
          if (retired >= options.max_steps_per_config) {
            (void)snapshot.Restore(program);
            return Status::Internal("varprove: config exceeded its step budget");
          }
          budget = options.max_steps_per_config - retired;
          continue;
        }
        (void)snapshot.Restore(program);
        return Status::Unimplemented(StrFormat(
            "varprove: VMCALL %u inside a proof run", exit.vmcall_code));
      case VmExit::Kind::kHalt:
      case VmExit::Kind::kFault:
        outcome.exit = exit.kind;
        outcome.fault = exit.fault;
        break;
      case VmExit::Kind::kStepLimit:
        (void)snapshot.Restore(program);
        return Status::Internal("varprove: config exceeded its step budget");
      case VmExit::Kind::kBreakpoint:
        (void)snapshot.Restore(program);
        return Status::Internal("varprove: unexpected breakpoint exit");
    }
    break;
  }
  outcome.r0 = program->vm().core(0).regs[0];
  outcome.instret = program->vm().core(0).instret - instret_base;
  outcome.core_hash = HashCoreArchState(program->vm().core(0));
  uint64_t lo = 0;
  uint64_t hi = 0;
  DefaultChecksumRange(*program, &lo, &hi);
  outcome.mem_checksum = MemoryRangeChecksum(program, lo, hi);
  MV_RETURN_IF_ERROR(snapshot.Restore(program));
  return outcome;
}

}  // namespace mv

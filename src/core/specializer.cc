#include "src/core/specializer.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/opt/passes.h"
#include "src/support/str.h"

namespace mv {

namespace {

// Collects the value-switch globals referenced by `fn`, in global-index
// order. A non-empty bind_only list (partial specialization, paper §7.1)
// restricts the result to the listed switches.
std::vector<uint32_t> ReferencedSwitches(const Function& fn, const Module& module) {
  std::set<uint32_t> seen;
  for (const BasicBlock& bb : fn.blocks) {
    for (const Instr& instr : bb.instrs) {
      if (instr.op == IrOp::kLoadGlobal || instr.op == IrOp::kStoreGlobal ||
          instr.op == IrOp::kGlobalAddr) {
        const GlobalVar& g = module.globals[instr.global];
        if (g.is_multiverse && !g.is_fnptr_switch) {
          seen.insert(instr.global);
        }
      }
    }
  }
  if (!fn.mv.bind_only.empty()) {
    std::set<uint32_t> restricted;
    for (uint32_t global : fn.mv.bind_only) {
      if (seen.count(global) != 0) {
        restricted.insert(global);
      }
    }
    seen = std::move(restricted);
  }
  return {seen.begin(), seen.end()};
}

std::string VariantName(const Function& generic, const Module& module,
                        const std::map<uint32_t, int64_t>& binding) {
  std::string name = generic.name;
  for (const auto& [global, value] : binding) {
    name += StrFormat(".%s=%lld", module.globals[global].name.c_str(), (long long)value);
  }
  return name;
}

// Attempts to coalesce a set of assignments (all mapping to the same variant
// body) into per-switch [lo, hi] ranges. Succeeds only if the set is exactly
// the cross product of per-switch value sets and each value set is contiguous
// *within the switch's domain* — otherwise a range guard would over-cover.
bool TryBoxGuards(const std::vector<std::map<uint32_t, int64_t>>& assignments,
                  const std::vector<uint32_t>& switches, const Module& module,
                  std::vector<GuardRange>* out) {
  std::map<uint32_t, std::set<int64_t>> values;
  for (const auto& assignment : assignments) {
    for (const auto& [global, value] : assignment) {
      values[global].insert(value);
    }
  }
  size_t product = 1;
  for (uint32_t global : switches) {
    product *= values[global].size();
  }
  if (product != assignments.size()) {
    return false;
  }
  // Contiguity within the domain: no domain value inside [lo, hi] may be
  // missing from the merged set.
  for (uint32_t global : switches) {
    const std::set<int64_t>& vals = values[global];
    const int64_t lo = *vals.begin();
    const int64_t hi = *vals.rbegin();
    for (int64_t d : module.globals[global].domain) {
      if (d >= lo && d <= hi && vals.count(d) == 0) {
        return false;
      }
    }
  }
  // The cross-product check: every combination must be present. Since
  // product == |assignments| and assignments are unique, equality holds.
  out->clear();
  for (uint32_t global : switches) {
    const std::set<int64_t>& vals = values[global];
    out->push_back(GuardRange{global, *vals.begin(), *vals.rbegin()});
  }
  return true;
}

}  // namespace

Result<SpecializeStats> SpecializeModule(Module* module, const SpecializeOptions& options) {
  SpecializeStats stats;
  std::vector<Function> new_variants;

  for (Function& fn : module->functions) {
    if (!fn.mv.is_multiverse || fn.is_extern || fn.mv.is_variant()) {
      continue;
    }
    const std::vector<uint32_t> switches = ReferencedSwitches(fn, *module);
    if (switches.empty()) {
      stats.warnings.push_back(StrFormat(
          "%s: multiverse function references no configuration switch", fn.name.c_str()));
      continue;
    }

    // Cross product of the switch domains.
    size_t product = 1;
    for (uint32_t global : switches) {
      const std::vector<int64_t>& domain = module->globals[global].domain;
      if (domain.empty()) {
        return Status::Internal(StrFormat("switch '%s' has an empty domain",
                                          module->globals[global].name.c_str()));
      }
      product *= domain.size();
    }
    if (product > options.max_variants_per_function) {
      stats.warnings.push_back(StrFormat(
          "%s: %zu variants exceed the per-function cap of %zu; skipping "
          "specialization (narrow the switch domains)",
          fn.name.c_str(), product, options.max_variants_per_function));
      continue;
    }

    std::vector<std::map<uint32_t, int64_t>> assignments(1);
    for (uint32_t global : switches) {
      std::vector<std::map<uint32_t, int64_t>> next;
      for (const auto& partial : assignments) {
        for (int64_t value : module->globals[global].domain) {
          auto extended = partial;
          extended[global] = value;
          next.push_back(std::move(extended));
        }
      }
      assignments = std::move(next);
    }

    // Clone + bind + optimize each assignment; group by canonical body.
    struct Group {
      Function body;                 // the representative clone
      std::vector<std::map<uint32_t, int64_t>> members;
    };
    std::map<std::string, Group> groups;   // canonical form -> group
    std::vector<std::string> group_order;  // stable output order

    for (const auto& assignment : assignments) {
      Function clone = fn;  // deep copy of the pre-optimization body
      clone.name = VariantName(fn, *module, assignment);
      clone.mv.binding = assignment;
      clone.mv.generic_name = fn.name;
      clone.mv.variants.clear();
      SubstituteGlobalReads(clone, assignment, &stats.warnings);
      RunPipeline(clone, *module);
      ++stats.variants_generated;

      const std::string canonical = CanonicalizeFunction(clone);
      auto it = groups.find(canonical);
      if (it == groups.end()) {
        group_order.push_back(canonical);
        Group group;
        group.body = std::move(clone);
        group.members.push_back(assignment);
        groups.emplace(canonical, std::move(group));
      } else {
        it->second.members.push_back(assignment);
        ++stats.variants_merged;
      }
    }

    // Emit variant records. Merged groups get a shortened name when their
    // guard ranges form a box (paper: multi.A=1.B=01).
    for (const std::string& canonical : group_order) {
      Group& group = groups.at(canonical);
      std::vector<GuardRange> box;
      if (group.members.size() > 1 &&
          TryBoxGuards(group.members, switches, *module, &box)) {
        // Rename the representative to reflect the covered ranges.
        std::string merged_name = fn.name;
        for (const GuardRange& guard : box) {
          const std::string& gname = module->globals[guard.global].name;
          if (guard.lo == guard.hi) {
            merged_name += StrFormat(".%s=%lld", gname.c_str(), (long long)guard.lo);
          } else {
            merged_name +=
                StrFormat(".%s=%lld-%lld", gname.c_str(), (long long)guard.lo,
                          (long long)guard.hi);
          }
        }
        group.body.name = merged_name;
        VariantRecord record;
        record.symbol = merged_name;
        record.guards = std::move(box);
        fn.mv.variants.push_back(std::move(record));
      } else {
        // One guard record per member assignment, all sharing the same body.
        for (const auto& assignment : group.members) {
          VariantRecord record;
          record.symbol = group.body.name;
          for (uint32_t global : switches) {
            const int64_t value = assignment.at(global);
            record.guards.push_back(GuardRange{global, value, value});
          }
          fn.mv.variants.push_back(std::move(record));
        }
      }
      ++stats.variants_kept;
      new_variants.push_back(std::move(group.body));
    }
    ++stats.functions_specialized;
  }

  for (Function& variant : new_variants) {
    module->functions.push_back(std::move(variant));
  }
  return stats;
}

std::vector<SwitchDomain> CollectSwitchDomains(const Module& module) {
  std::vector<SwitchDomain> domains;
  for (const GlobalVar& global : module.globals) {
    if (!global.is_multiverse) {
      continue;
    }
    SwitchDomain domain;
    domain.name = global.name;
    domain.values = global.domain;
    domain.is_fnptr = global.is_fnptr_switch;
    domains.push_back(std::move(domain));
  }
  return domains;
}

}  // namespace mv

#include "src/core/program.h"

#include "src/codegen/codegen.h"
#include "src/core/abi.h"
#include "src/core/descriptors.h"
#include "src/opt/passes.h"
#include "src/support/str.h"

namespace mv {

Result<std::unique_ptr<Program>> Program::Build(const std::vector<ProgramSource>& sources,
                                                const BuildOptions& options) {
  auto program = std::unique_ptr<Program>(new Program());

  std::vector<ObjectFile> objects;
  for (const ProgramSource& src : sources) {
    DiagnosticSink diag;
    Result<Module> module = CompileToIr(src.source, src.name, options.frontend, &diag);
    if (!module.ok()) {
      return module.status();
    }

    // The multiverse "plugin" runs after IR generation, before optimization
    // (paper §3). It internally optimizes the variants (needed for merging).
    if (options.specialize) {
      Result<SpecializeStats> stats = SpecializeModule(&*module, options.specializer);
      if (!stats.ok()) {
        return stats.status();
      }
      program->specialize_stats_.functions_specialized += stats->functions_specialized;
      program->specialize_stats_.variants_generated += stats->variants_generated;
      program->specialize_stats_.variants_merged += stats->variants_merged;
      program->specialize_stats_.variants_kept += stats->variants_kept;
      for (std::string& warning : stats->warnings) {
        program->specialize_stats_.warnings.push_back(std::move(warning));
      }
    }

    // Regular optimization of every function (generic + non-multiverse).
    for (Function& fn : module->functions) {
      RunPipeline(fn, *module);
    }
    MV_RETURN_IF_ERROR(VerifyModule(*module));

    ObjectFile obj;
    obj.name = src.name;
    Result<CodegenInfo> info = GenerateObject(*module, &obj);
    if (!info.ok()) {
      return info.status();
    }
    MV_RETURN_IF_ERROR(EmitDescriptors(*module, *info, &obj));
    for (const auto& [fn_name, size] : info->function_sizes) {
      program->function_sizes_[fn_name] = size;
    }
    objects.push_back(std::move(obj));
    program->modules_.push_back(std::move(*module));
  }

  program->vm_ = std::make_unique<Vm>(options.vm_memory, options.vm_cores);
  program->vm_->set_hypervisor_guest(options.hypervisor_guest);
  Result<Image> image = LinkAndLoad(objects, options.link, program->vm_.get());
  if (!image.ok()) {
    return image.status();
  }
  program->image_ = std::move(*image);

  Result<MultiverseRuntime> runtime =
      MultiverseRuntime::Attach(program->vm_.get(), program->image_, options.attach);
  if (!runtime.ok()) {
    return runtime.status();
  }
  program->runtime_ = std::make_unique<MultiverseRuntime>(std::move(*runtime));
  return program;
}

Result<bool> Program::HandleVmCall(uint8_t code, int core) {
  Core& c = vm_->core(core);
  const uint64_t arg = c.regs[0];
  switch (code) {
    case kVmCallPutChar:
      output_.push_back(static_cast<char>(arg));
      c.regs[0] = arg;
      return true;
    case kVmCallCommit: {
      Result<PatchStats> stats = runtime_->Commit();
      if (!stats.ok()) {
        return stats.status();
      }
      c.regs[0] = static_cast<uint64_t>(stats->functions_committed);
      return true;
    }
    case kVmCallRevert: {
      Result<PatchStats> stats = runtime_->Revert();
      if (!stats.ok()) {
        return stats.status();
      }
      c.regs[0] = static_cast<uint64_t>(stats->functions_reverted);
      return true;
    }
    case kVmCallCommitRefs: {
      Result<PatchStats> stats = runtime_->CommitRefs(arg);
      if (!stats.ok()) {
        return stats.status();
      }
      c.regs[0] = static_cast<uint64_t>(stats->functions_committed);
      return true;
    }
    case kVmCallRevertRefs: {
      Result<PatchStats> stats = runtime_->RevertRefs(arg);
      if (!stats.ok()) {
        return stats.status();
      }
      c.regs[0] = static_cast<uint64_t>(stats->functions_reverted);
      return true;
    }
    case kVmCallCommitFn: {
      Result<PatchStats> stats = runtime_->CommitFn(arg);
      if (!stats.ok()) {
        return stats.status();
      }
      c.regs[0] = static_cast<uint64_t>(stats->functions_committed);
      return true;
    }
    case kVmCallRevertFn: {
      Result<PatchStats> stats = runtime_->RevertFn(arg);
      if (!stats.ok()) {
        return stats.status();
      }
      c.regs[0] = static_cast<uint64_t>(stats->functions_reverted);
      return true;
    }
    default:
      if (vmcall_handler_) {
        c.regs[0] = static_cast<uint64_t>(vmcall_handler_(code, arg));
        return true;
      }
      return Status::Unimplemented(StrFormat("unhandled VMCALL code %u", code));
  }
}

Result<uint64_t> Program::CallAt(uint64_t fn_addr, const std::vector<uint64_t>& args,
                                 uint64_t max_steps, int core) {
  SetupCall(image_, vm_.get(), fn_addr, args, core);
  uint64_t remaining = max_steps;
  while (true) {
    const VmExit exit = vm_->Run(core, remaining);
    switch (exit.kind) {
      case VmExit::Kind::kHalt:
        return vm_->core(core).regs[0];
      case VmExit::Kind::kVmCall: {
        Result<bool> handled = HandleVmCall(exit.vmcall_code, core);
        if (!handled.ok()) {
          return handled.status();
        }
        break;
      }
      case VmExit::Kind::kFault:
        return Status::Internal("guest fault: " + exit.fault.ToString());
      case VmExit::Kind::kStepLimit:
        return Status::Internal(
            StrFormat("guest exceeded the step limit of %llu",
                      (unsigned long long)max_steps));
      case VmExit::Kind::kBreakpoint:
        // No livepatch commit is in flight on this path: a BKPT reaching a
        // plain Call() means a torn or half-applied patch.
        return Status::Internal(
            StrFormat("guest hit a stray breakpoint at 0x%llx",
                      (unsigned long long)vm_->core(core).pc));
    }
    remaining = max_steps;  // each resume gets a fresh budget
  }
}

Result<uint64_t> Program::Call(const std::string& fn_name, const std::vector<uint64_t>& args,
                               uint64_t max_steps, int core) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, image_.SymbolAddress(fn_name));
  return CallAt(addr, args, max_steps, core);
}

Result<uint64_t> Program::FunctionSize(const std::string& name) const {
  auto it = function_sizes_.find(name);
  if (it == function_sizes_.end()) {
    return Status::NotFound(StrFormat("no defined function named '%s'", name.c_str()));
  }
  return it->second;
}

Result<int64_t> Program::ReadGlobal(const std::string& name, int width) const {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, image_.SymbolAddress(name));
  uint64_t raw = 0;
  MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(addr, &raw, static_cast<uint64_t>(width)));
  switch (width) {
    case 1:
      return static_cast<int64_t>(static_cast<int8_t>(raw));
    case 2:
      return static_cast<int64_t>(static_cast<int16_t>(raw));
    case 4:
      return static_cast<int64_t>(static_cast<int32_t>(raw));
    default:
      return static_cast<int64_t>(raw);
  }
}

Status Program::WriteGlobal(const std::string& name, int64_t value, int width) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, image_.SymbolAddress(name));
  return vm_->memory().WriteRaw(addr, &value, static_cast<uint64_t>(width));
}

}  // namespace mv

// The multiverse runtime library: late feature binding via binary patching
// (paper §4, Table 1).
//
// On commit, the runtime inspects the configuration switches through the
// variable descriptors, selects for each multiversed function the first
// variant whose guard ranges are all satisfied, and installs it:
//   * every recorded call site is verified to contain the expected 5-byte
//     CALL (or the previously installed state) and is rewritten to call the
//     variant directly;
//   * variant bodies smaller than a call instruction are inlined into the
//     call site, NOP-padded — an empty body becomes pure NOPs (Figure 3 c);
//   * the generic function's first bytes are saved and overwritten with an
//     unconditional JMP to the variant, so calls through untracked function
//     pointers, assembly, or run-time generated code also reach the variant
//     (completeness, §7.4);
//   * code pages are made writable only for the duration of each write, and
//     the instruction cache is flushed for the patched ranges (§7.2).
// If no variant matches the current switch values, the function is reverted
// to the generic code and the fallback is signalled (Figure 3 d).
//
// The runtime deliberately performs no synchronization (§2): callers must
// ensure the program is in a patchable state.
#ifndef MULTIVERSE_SRC_CORE_RUNTIME_H_
#define MULTIVERSE_SRC_CORE_RUNTIME_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/commit_stats.h"
#include "src/core/descriptors.h"
#include "src/core/patching.h"
#include "src/core/plan_cache.h"
#include "src/core/txn.h"
#include "src/obj/linker.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

// PatchStats (the commit/revert result struct) lives in patching.h so the
// plan cache can memoize it without a header cycle.

struct AttachOptions {
  // Treat the descriptor tables as untrusted input: harden parsing
  // (cross-section containment, count caps) and run the semantic validation
  // pass (ValidateDescriptorTable) before any site is snapshotted. The
  // `mvcc --paranoid` flag, on by default.
  bool paranoid = true;
  // Transactional-commit tuning for the plain (non-livepatch) API paths.
  TxnOptions txn;
  // Commit fast path: memoize fully-planned journals per configuration
  // (src/core/plan_cache.h). `mvcc --no-plan-cache` turns it off; the
  // differential suites assert on/off bit-identical text and execution.
  bool plan_cache = true;
  // When set, this runtime memoizes into (and hits from) the given cache
  // instead of a private one. Identically built images share text layout and
  // descriptor addresses, so a fleet of same-source instances converges after
  // ONE cold plan per configuration transition: instance A plans, instances
  // B..N replay. Divergent sharers are safe — a plan whose old bytes don't
  // match the instance's text fails probe validation and is evicted before a
  // byte moves — but note that whole-cache invalidation (any rollback,
  // set_plan_cache_enabled(false)) drops the entries for every sharer.
  std::shared_ptr<PlanCache> shared_plan_cache;
};

// Structured outcome of a full commit, for callers (the fleet coordinator)
// that orchestrate many runtimes and need comparable health + identity data
// rather than a bare PatchStats.
struct CommitOutcome {
  PatchStats patch;             // what the commit did (Table 1 counters)
  CommitStats stats;            // recovery counters (commit_stats.h)
  uint64_t config_fingerprint = 0;  // fingerprint of the committed config
};

class MultiverseRuntime {
 public:
  // Parses the image's descriptor sections and snapshots the pristine bytes
  // of every call site and generic prologue.
  static Result<MultiverseRuntime> Attach(Vm* vm, const Image& image);
  static Result<MultiverseRuntime> Attach(Vm* vm, const Image& image,
                                          const AttachOptions& options);

  // --- The multiverse API (paper Table 1) ---
  Result<PatchStats> Commit();
  // Commit() plus the structured outcome a coordinator wants: the recovery
  // counters of the transaction it ran and the fingerprint of the
  // configuration the instance now provably runs.
  Result<CommitOutcome> CommitWithOutcome();
  Result<PatchStats> Revert();
  Result<PatchStats> CommitFn(uint64_t generic_addr);
  Result<PatchStats> RevertFn(uint64_t generic_addr);
  Result<PatchStats> CommitRefs(uint64_t var_addr);
  Result<PatchStats> RevertRefs(uint64_t var_addr);

  // Name-based conveniences (resolve through the descriptor tables).
  Result<PatchStats> CommitFn(const std::string& name);
  Result<PatchStats> RevertFn(const std::string& name);
  Result<PatchStats> CommitRefs(const std::string& var_name);
  Result<PatchStats> RevertRefs(const std::string& var_name);

  const DescriptorTable& table() const { return table_; }

  // Introspection: the variant currently installed for a generic function
  // (0 = generic code active). Used by tests and benchmarks.
  uint64_t InstalledVariant(uint64_t generic_addr) const;

  // Reads a configuration switch's current value through its descriptor.
  Result<int64_t> ReadSwitch(const RtVariable& variable) const;

  // --- Live-patch planning (src/core/livepatch_session.h, src/livepatch) ---
  // While a plan is active, every 5-byte code write that a commit/revert
  // would perform is recorded into `*plan` instead of mutating guest memory.
  // The runtime's bookkeeping (site states, installed variants) advances as
  // if the writes had happened, so the caller MUST apply the recorded ops to
  // memory afterwards — that is the livepatch protocols' job.
  void BeginPlan(PatchPlan* plan) {
    plan_ = plan;
    // Whatever the session applies, the resulting text is not a pure
    // function of the switch vector from the cache's point of view — except
    // for a *full* planned commit, which re-establishes the invariant;
    // CommitPlanned recovers the stashed token to key the plan cache.
    pre_plan_token_ = state_token_;
    state_token_ = StateToken::Unknown();
  }
  void EndPlan() { plan_ = nullptr; }
  bool planning() const { return plan_ != nullptr; }

  // --- Commit fast path (src/core/plan_cache.h, INTERNALS.md §12) ---
  // Per-runtime counters: cache hits/misses/evictions, coalesced mprotect
  // calls and merged flush ranges, dirty-set evaluation accounting.
  const CommitFastPathStats& fast_stats() const { return fast_stats_; }
  bool plan_cache_enabled() const { return plan_cache_enabled_; }
  void set_plan_cache_enabled(bool enabled) {
    plan_cache_enabled_ = enabled;
    if (!enabled) {
      plan_cache_->Clear();
    }
  }
  size_t plan_cache_entries() const { return plan_cache_->size(); }
  // The cache this runtime memoizes into — the caller's shared cache when
  // AttachOptions::shared_plan_cache was set, else a private one.
  const std::shared_ptr<PlanCache>& plan_cache() const { return plan_cache_; }
  // Drops every memoized plan (and counts it when something was dropped).
  void InvalidatePlanCache();

  // Guard-index introspection (tests): the generic addresses of every
  // function with a guard on `var_addr`, in commit order; empty if none.
  std::vector<uint64_t> FunctionsReferencing(uint64_t var_addr) const;
  // Variant selection without patching: the indexed binary-search path when
  // `use_index` (falling back to linear if the index is unusable), else the
  // reference linear scan. Returns the selected variant address (0 = generic
  // fallback). The fuzz corpus asserts both paths agree on every function.
  Result<uint64_t> SelectVariantForTest(uint64_t generic_addr, bool use_index);
  // The per-function selection signature of the CURRENT switch values: for
  // every multiversed function (in descriptor order) the variant address a
  // commit would install now (0 = generic). Two switch assignments with equal
  // signatures produce bit-identical committed text — the equivalence the
  // variational prover (src/core/varprove.h) groups "commit classes" by.
  Result<std::vector<uint64_t>> SelectionSignatureNow();

  // --- Transactional commit (src/core/txn.h) ---
  // Outside a live-patch plan, every Table 1 operation above runs as one
  // transaction: plan -> validate -> apply -> seal, rolled back in reverse
  // order on any mid-commit failure, with bounded retry for transient
  // faults. last_txn() reports what the most recent operation went through.
  const TxnStats& last_txn() const { return last_txn_; }
  const TxnOptions& txn_options() const { return txn_options_; }
  void set_txn_options(const TxnOptions& options) { txn_options_ = options; }
  const Image& image() const { return image_; }

  // Opaque copy of the runtime's logical patch state (site states, installed
  // variants, prologue flags). The livepatch engine saves before planning a
  // live commit and restores after a rollback so bookkeeping and guest text
  // stay in lockstep. Restoring from outside the fast path marks the state
  // token unknown and drops the plan cache — a rewind means the text is no
  // longer a pure function of the switch vector.
  using SavedState = RuntimeSnapshot;
  std::shared_ptr<const SavedState> SaveState() const;
  void RestoreState(const SavedState& saved);

  // --- Instance identity (fleet provability) ---
  // Fingerprint of the switch values the instance currently holds (the same
  // hash the plan cache keys on). Two same-image instances with equal
  // fingerprints are configured identically.
  Result<uint64_t> ConfigFingerprintNow() const;
  // FNV-1a over the full text segment as the guest would fetch it. Equal
  // checksums on same-image instances mean bit-identical code — the
  // "provably fully-old or fully-new" check after a rollout or revert.
  uint64_t TextChecksum() const;

 private:
  friend struct RuntimeSnapshot;  // snapshot of the private state structs

  MultiverseRuntime(Vm* vm) : vm_(vm) {}

  enum class SiteState : uint8_t { kOriginal, kDirectCall, kInlined };

  struct Site {
    RtCallsite desc;
    std::array<uint8_t, 5> original{};
    std::array<uint8_t, 5> current{};
    SiteState state = SiteState::kOriginal;
  };

  struct FnState {
    size_t desc_index = 0;  // into table_.functions
    std::vector<size_t> sites;
    std::array<uint8_t, 5> saved_prologue{};
    bool prologue_patched = false;
    uint64_t installed = 0;
    // Dirty-set bookkeeping: the referenced switch values at the last
    // evaluation. While they are unchanged, commit skips this function
    // entirely (selection, site verify, patching). Travels with snapshots so
    // rollback rewinds it too.
    std::vector<int64_t> last_eval_values;
    bool evaluated = false;
  };

  struct FnPtrState {
    size_t var_index = 0;  // into table_.variables
    std::vector<size_t> sites;
    uint64_t installed = 0;
    uint64_t last_target = 0;  // pointer value at the last evaluation
    bool evaluated = false;
  };

  // Guard index, built once at Attach (immutable; NOT part of snapshots):
  // per referenced variable, a sorted interval table mapping a switch value
  // to the bitmask of variants whose guards on that variable accept it.
  // Selection intersects the per-variable masks (binary search per variable)
  // and takes the first set bit — the same first-viable-variant order as the
  // linear scan.
  struct VarIntervals {
    std::vector<int64_t> starts;               // interval i = [starts[i], starts[i+1])
    std::vector<std::vector<uint64_t>> masks;  // variant bitmask per interval
  };
  struct FnIndex {
    std::vector<size_t> var_indexes;   // referenced variables (table_ order)
    std::vector<VarIntervals> tables;  // parallel to var_indexes
    bool selectable = false;      // false -> reference linear scan
    bool has_unknown_var = false; // a guard names an unparsed variable
  };

  // Writes 5 bytes at `addr` with W^X handling and icache flush.
  Status PatchBytes(uint64_t addr, const std::array<uint8_t, 5>& bytes);
  // Reads 5 bytes as they will be once the active plan (if any) is applied:
  // guest memory overlaid with the pending plan ops. During planning,
  // verification must see the logical state, not the stale physical bytes.
  Status ReadEffective(uint64_t addr, std::array<uint8_t, 5>* out) const;
  // Verifies that the site still contains what we believe it contains.
  Status VerifySite(const Site& site) const;
  Status PatchSiteToCall(Site* site, uint64_t target, PatchStats* stats);
  Status RestoreSite(Site* site, PatchStats* stats);

  // If the function at `fn_addr` has a straight-line body of at most 5 bytes
  // (excluding RET) with no stack or control-flow effects, returns those
  // bytes (possibly empty); otherwise nullopt.
  Result<std::array<uint8_t, 5>> MakeCallBytes(uint64_t site_addr, uint64_t target) const;
  std::optional<std::vector<uint8_t>> TinyBody(uint64_t fn_addr) const;

  Result<PatchStats> InstallVariant(FnState* fn, uint64_t variant_addr);
  Result<PatchStats> RevertFnState(FnState* fn);
  // `values` (full per-variable vector, nullable) avoids re-reading switches
  // the caller already read for the fingerprint.
  Result<PatchStats> CommitFnState(FnState* fn,
                                   const std::vector<int64_t>* values = nullptr);
  Result<PatchStats> CommitFnPtr(FnPtrState* state);
  Result<PatchStats> RevertFnPtr(FnPtrState* state);

  Result<PatchStats> CommitImpl(const std::vector<int64_t>* values);
  Result<PatchStats> RevertImpl();
  Result<PatchStats> CommitRefsImpl(uint64_t var_addr);
  Result<PatchStats> RevertRefsImpl(uint64_t var_addr);

  // --- Fast-path machinery ---
  void BuildGuardIndex();
  // Reads every fingerprinted switch into a full per-variable vector
  // (fn-pointer switches as their raw 8-byte value).
  Status ReadConfigVector(std::vector<int64_t>* out) const;
  // First viable variant per the sorted interval tables (binary search).
  Result<uint64_t> SelectVariantIndexed(const FnIndex& index, const RtFunction& desc,
                                        const std::vector<int64_t>& vals) const;
  // The reference O(variants x guards) scan (legacy semantics, kept as the
  // agreement oracle and the fallback for unindexable functions).
  Result<uint64_t> SelectVariantLinear(const RtFunction& desc) const;
  void RestoreStateInternal(const SavedState& saved);
  void AccumulateApply(const CoalescedApplyStats& stats);
  // The memoizing full-commit transaction behind Commit().
  Result<PatchStats> CommitFast(const std::vector<int64_t>& values);

  // Full commit under an active livepatch session (plan-capture mode): the
  // session's journal owns atomicity, but selection/planning still goes
  // through the plan cache — a warm live commit replays the memoized plan
  // into the captured-plan buffer instead of re-running selection.
  Result<PatchStats> CommitPlanned();
  // Partial operations (CommitFn, CommitRefs, ...) leave the text a mix of
  // configurations: no longer a pure function of the switch vector, so the
  // state token goes unknown. Cached entries stay — they become reachable
  // again once a full Commit/Revert lands on a content-known state.
  void MarkPartialOp() {
    if (plan_ == nullptr) {
      state_token_ = StateToken::Unknown();
    }
  }

  // Runs `op` as one transaction when no live-patch plan is active (see
  // txn.h); inside a plan it is a passthrough — the livepatch engine owns
  // atomicity for the whole batched plan.
  Result<PatchStats> RunTransactional(const std::function<Result<PatchStats>()>& op);

  Vm* vm_;
  PatchPlan* plan_ = nullptr;  // non-null while planning a live commit
  Image image_;
  DescriptorTable table_;
  TxnOptions txn_options_;
  TxnStats last_txn_;
  std::vector<Site> sites_;
  std::map<uint64_t, FnState> fns_;      // keyed by generic address
  std::map<uint64_t, FnPtrState> fnptrs_;  // keyed by variable address

  // Fast-path state (the guard index and dirty sets are immutable after
  // Attach and deliberately outside RuntimeSnapshot).
  std::map<uint64_t, FnIndex> fn_indexes_;             // keyed by generic address
  std::map<uint64_t, std::vector<uint64_t>> var_to_fns_;  // var -> generic addrs
  std::vector<size_t> fingerprint_vars_;  // variable indexes in the fingerprint
  uint64_t descriptor_epoch_ = 0;         // bumped on descriptor mutation
  // Private by default; Attach swaps in AttachOptions::shared_plan_cache so a
  // fleet of same-image instances reuses each other's plans. Never null.
  std::shared_ptr<PlanCache> plan_cache_ = std::make_shared<PlanCache>();
  bool plan_cache_enabled_ = true;
  StateToken state_token_;  // identity of the current text/bookkeeping state
  // State token stashed by BeginPlan (see above); only meaningful inside a
  // planning session, so it defaults to the never-matching kind.
  StateToken pre_plan_token_ = StateToken::Unknown();
  CommitFastPathStats fast_stats_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_RUNTIME_H_

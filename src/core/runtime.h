// The multiverse runtime library: late feature binding via binary patching
// (paper §4, Table 1).
//
// On commit, the runtime inspects the configuration switches through the
// variable descriptors, selects for each multiversed function the first
// variant whose guard ranges are all satisfied, and installs it:
//   * every recorded call site is verified to contain the expected 5-byte
//     CALL (or the previously installed state) and is rewritten to call the
//     variant directly;
//   * variant bodies smaller than a call instruction are inlined into the
//     call site, NOP-padded — an empty body becomes pure NOPs (Figure 3 c);
//   * the generic function's first bytes are saved and overwritten with an
//     unconditional JMP to the variant, so calls through untracked function
//     pointers, assembly, or run-time generated code also reach the variant
//     (completeness, §7.4);
//   * code pages are made writable only for the duration of each write, and
//     the instruction cache is flushed for the patched ranges (§7.2).
// If no variant matches the current switch values, the function is reverted
// to the generic code and the fallback is signalled (Figure 3 d).
//
// The runtime deliberately performs no synchronization (§2): callers must
// ensure the program is in a patchable state.
#ifndef MULTIVERSE_SRC_CORE_RUNTIME_H_
#define MULTIVERSE_SRC_CORE_RUNTIME_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/descriptors.h"
#include "src/core/patching.h"
#include "src/core/txn.h"
#include "src/obj/linker.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

// Result of a commit/revert operation (the paper's int return, enriched).
struct PatchStats {
  int functions_committed = 0;   // functions now bound to a variant
  int functions_reverted = 0;    // functions restored to generic state
  int generic_fallbacks = 0;     // no variant matched; generic installed (§4)
  int callsites_patched = 0;     // call sites rewritten to direct calls
  int callsites_inlined = 0;     // call sites with the body inlined / NOPed
  int prologues_patched = 0;

  void Accumulate(const PatchStats& other) {
    functions_committed += other.functions_committed;
    functions_reverted += other.functions_reverted;
    generic_fallbacks += other.generic_fallbacks;
    callsites_patched += other.callsites_patched;
    callsites_inlined += other.callsites_inlined;
    prologues_patched += other.prologues_patched;
  }
};

struct AttachOptions {
  // Treat the descriptor tables as untrusted input: harden parsing
  // (cross-section containment, count caps) and run the semantic validation
  // pass (ValidateDescriptorTable) before any site is snapshotted. The
  // `mvcc --paranoid` flag, on by default.
  bool paranoid = true;
  // Transactional-commit tuning for the plain (non-livepatch) API paths.
  TxnOptions txn;
};

class MultiverseRuntime {
 public:
  // Parses the image's descriptor sections and snapshots the pristine bytes
  // of every call site and generic prologue.
  static Result<MultiverseRuntime> Attach(Vm* vm, const Image& image);
  static Result<MultiverseRuntime> Attach(Vm* vm, const Image& image,
                                          const AttachOptions& options);

  // --- The multiverse API (paper Table 1) ---
  Result<PatchStats> Commit();
  Result<PatchStats> Revert();
  Result<PatchStats> CommitFn(uint64_t generic_addr);
  Result<PatchStats> RevertFn(uint64_t generic_addr);
  Result<PatchStats> CommitRefs(uint64_t var_addr);
  Result<PatchStats> RevertRefs(uint64_t var_addr);

  // Name-based conveniences (resolve through the descriptor tables).
  Result<PatchStats> CommitFn(const std::string& name);
  Result<PatchStats> RevertFn(const std::string& name);
  Result<PatchStats> CommitRefs(const std::string& var_name);
  Result<PatchStats> RevertRefs(const std::string& var_name);

  const DescriptorTable& table() const { return table_; }

  // Introspection: the variant currently installed for a generic function
  // (0 = generic code active). Used by tests and benchmarks.
  uint64_t InstalledVariant(uint64_t generic_addr) const;

  // Reads a configuration switch's current value through its descriptor.
  Result<int64_t> ReadSwitch(const RtVariable& variable) const;

  // --- Live-patch planning (src/core/livepatch_session.h, src/livepatch) ---
  // While a plan is active, every 5-byte code write that a commit/revert
  // would perform is recorded into `*plan` instead of mutating guest memory.
  // The runtime's bookkeeping (site states, installed variants) advances as
  // if the writes had happened, so the caller MUST apply the recorded ops to
  // memory afterwards — that is the livepatch protocols' job.
  void BeginPlan(PatchPlan* plan) { plan_ = plan; }
  void EndPlan() { plan_ = nullptr; }
  bool planning() const { return plan_ != nullptr; }

  // --- Transactional commit (src/core/txn.h) ---
  // Outside a live-patch plan, every Table 1 operation above runs as one
  // transaction: plan -> validate -> apply -> seal, rolled back in reverse
  // order on any mid-commit failure, with bounded retry for transient
  // faults. last_txn() reports what the most recent operation went through.
  const TxnStats& last_txn() const { return last_txn_; }
  const TxnOptions& txn_options() const { return txn_options_; }
  void set_txn_options(const TxnOptions& options) { txn_options_ = options; }
  const Image& image() const { return image_; }

  // Opaque copy of the runtime's logical patch state (site states, installed
  // variants, prologue flags). The livepatch engine saves before planning a
  // live commit and restores after a rollback so bookkeeping and guest text
  // stay in lockstep.
  struct SavedState;
  std::shared_ptr<const SavedState> SaveState() const;
  void RestoreState(const SavedState& saved);

 private:
  MultiverseRuntime(Vm* vm) : vm_(vm) {}

  enum class SiteState : uint8_t { kOriginal, kDirectCall, kInlined };

  struct Site {
    RtCallsite desc;
    std::array<uint8_t, 5> original{};
    std::array<uint8_t, 5> current{};
    SiteState state = SiteState::kOriginal;
  };

  struct FnState {
    size_t desc_index = 0;  // into table_.functions
    std::vector<size_t> sites;
    std::array<uint8_t, 5> saved_prologue{};
    bool prologue_patched = false;
    uint64_t installed = 0;
  };

  struct FnPtrState {
    size_t var_index = 0;  // into table_.variables
    std::vector<size_t> sites;
    uint64_t installed = 0;
  };

  // Writes 5 bytes at `addr` with W^X handling and icache flush.
  Status PatchBytes(uint64_t addr, const std::array<uint8_t, 5>& bytes);
  // Reads 5 bytes as they will be once the active plan (if any) is applied:
  // guest memory overlaid with the pending plan ops. During planning,
  // verification must see the logical state, not the stale physical bytes.
  Status ReadEffective(uint64_t addr, std::array<uint8_t, 5>* out) const;
  // Verifies that the site still contains what we believe it contains.
  Status VerifySite(const Site& site) const;
  Status PatchSiteToCall(Site* site, uint64_t target, PatchStats* stats);
  Status RestoreSite(Site* site, PatchStats* stats);

  // If the function at `fn_addr` has a straight-line body of at most 5 bytes
  // (excluding RET) with no stack or control-flow effects, returns those
  // bytes (possibly empty); otherwise nullopt.
  Result<std::array<uint8_t, 5>> MakeCallBytes(uint64_t site_addr, uint64_t target) const;
  std::optional<std::vector<uint8_t>> TinyBody(uint64_t fn_addr) const;

  Result<PatchStats> InstallVariant(FnState* fn, uint64_t variant_addr);
  Result<PatchStats> RevertFnState(FnState* fn);
  Result<PatchStats> CommitFnState(FnState* fn);
  Result<PatchStats> CommitFnPtr(FnPtrState* state);
  Result<PatchStats> RevertFnPtr(FnPtrState* state);

  Result<PatchStats> CommitImpl();
  Result<PatchStats> RevertImpl();
  Result<PatchStats> CommitRefsImpl(uint64_t var_addr);
  Result<PatchStats> RevertRefsImpl(uint64_t var_addr);

  // Runs `op` as one transaction when no live-patch plan is active (see
  // txn.h); inside a plan it is a passthrough — the livepatch engine owns
  // atomicity for the whole batched plan.
  Result<PatchStats> RunTransactional(const std::function<Result<PatchStats>()>& op);

  Vm* vm_;
  PatchPlan* plan_ = nullptr;  // non-null while planning a live commit
  Image image_;
  DescriptorTable table_;
  TxnOptions txn_options_;
  TxnStats last_txn_;
  std::vector<Site> sites_;
  std::map<uint64_t, FnState> fns_;      // keyed by generic address
  std::map<uint64_t, FnPtrState> fnptrs_;  // keyed by variable address
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_RUNTIME_H_

#include "src/core/livepatch_session.h"

namespace mv {

Result<PatchStats> LivePatchSession::RunPlanned(
    Result<PatchStats> (MultiverseRuntime::*fn)()) {
  plan_.clear();
  runtime_->BeginPlan(&plan_);
  Result<PatchStats> stats = (runtime_->*fn)();
  runtime_->EndPlan();
  return stats;
}

Result<PatchStats> LivePatchSession::PlanCommit() {
  return RunPlanned(&MultiverseRuntime::Commit);
}

Result<PatchStats> LivePatchSession::PlanRevert() {
  return RunPlanned(&MultiverseRuntime::Revert);
}

Result<PatchStats> LivePatchSession::PlanCommitFn(const std::string& name) {
  plan_.clear();
  runtime_->BeginPlan(&plan_);
  Result<PatchStats> stats = runtime_->CommitFn(name);
  runtime_->EndPlan();
  return stats;
}

Result<PatchStats> LivePatchSession::PlanCommitRefs(const std::string& var_name) {
  plan_.clear();
  runtime_->BeginPlan(&plan_);
  Result<PatchStats> stats = runtime_->CommitRefs(var_name);
  runtime_->EndPlan();
  return stats;
}

std::vector<CodeRange> LivePatchSession::UnsafeRanges() const {
  std::vector<CodeRange> ranges;
  ranges.reserve(plan_.size());
  for (const PatchOp& op : plan_) {
    ranges.push_back(CodeRange{op.addr, op.new_bytes.size()});
  }
  return ranges;
}

Status LivePatchSession::ApplyOp(Vm* vm, size_t index, bool flush) const {
  const PatchOp& op = plan_[index];
  return WriteCodeBytes(vm, op.addr, op.new_bytes.data(), op.new_bytes.size(), flush);
}

Status LivePatchSession::ApplyAll(Vm* vm, bool flush) const {
  for (size_t i = 0; i < plan_.size(); ++i) {
    MV_RETURN_IF_ERROR(ApplyOp(vm, i, flush));
  }
  return Status::Ok();
}

}  // namespace mv

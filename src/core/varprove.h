// Variational equivalence proving: exhaustive variant/generic equivalence
// over the WHOLE switch-domain cross product in one shared-state pass
// (ROADMAP item 3; the oracle layer on top of src/vm/varexec.h).
//
// The repo's other correctness harnesses prove per sampled config; this one
// enumerates the full config space. The trick that keeps that tractable:
//
//  * The config space is the cross product of the normalized switch domains
//    (specializer.h CollectSwitchDomains), flattened to indices 0..N-1.
//  * A configuration reaches the machine through exactly two channels — the
//    switch data cells, and the text bytes a commit patches. Both are pure
//    functions of the config index, so both become VarRegions.
//  * Configurations whose per-function selection signatures agree
//    (runtime.h SelectionSignatureNow) commit to bit-identical text — one
//    "commit class". The class count is sub-linear in N whenever the
//    specializer merged variants under guard ranges, so the committed pass
//    needs one text region variant per CLASS, not per config.
//
// ProveEquivalence then runs the workload twice under the variational
// executor — once on the generic image (switch cells variational, text
// shared) and once on the committed image (cells + per-class text overlays)
// — and asserts every config's transcript, fault, return value and data
// checksum agree between the two, exhaustively.
//
// RunOneConfig is the brute-force counterpart (one real run per config),
// kept as the differential oracle for the varexec verdicts and as the
// instructions-per-config denominator for bench_varexec.
#ifndef MULTIVERSE_SRC_CORE_VARPROVE_H_
#define MULTIVERSE_SRC_CORE_VARPROVE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/program.h"
#include "src/support/status.h"
#include "src/vm/presence.h"
#include "src/vm/varexec.h"

namespace mv {

// One switch with its runtime storage and normalized value domain.
struct ConfigSwitch {
  std::string name;
  uint64_t addr = 0;
  uint32_t width = 0;  // bytes: 1/2/4/8
  std::vector<int64_t> values;
};

// The flattened cross product of all switch domains. Index arithmetic is
// mixed-radix: switch 0 varies fastest.
struct ConfigSpace {
  std::vector<ConfigSwitch> switches;
  size_t num_configs = 0;

  // The per-switch values config `index` assigns, in switches order.
  std::vector<int64_t> Assignment(size_t index) const;
  std::string DescribeConfig(size_t index) const;  // "fast=1 mode=2"
};

// Builds the config space of `program` from its modules' multiverse switches
// matched against the attached descriptor table. Errors on function-pointer
// switches (their domain is an address set, not an enumerable integer
// domain) and on an empty cross product.
Result<ConfigSpace> CollectConfigSpace(Program* program);

// How to commit a configuration: defaults to the runtime's transactional
// Commit(); tests substitute multiverse_commit_live (e.g. the wait-free
// protocol) to prove the equivalence holds for every commit engine.
using CommitDriver = std::function<Status(Program*)>;
CommitDriver PlainCommitDriver();

// A group of configurations that commit to bit-identical text.
struct CommitClass {
  std::vector<uint64_t> signature;  // per-function selected variant addrs
  size_t rep_config = 0;            // first member, used to take the text diff
  PresenceCondition members;
  // Text bytes this class's commit changes, relative to the pristine image.
  std::vector<std::pair<uint64_t, uint8_t>> text_diff;
};

// Enumerates the commit classes of the config space: walks every config's
// selection signature (cheap — no patching), then commits one representative
// per class to harvest its text diff, reverting and verifying the pristine
// text checksum after each. The program is left on the pristine image with
// the LAST config's switch values written.
Result<std::vector<CommitClass>> EnumerateCommitClasses(
    Program* program, const ConfigSpace& space, const CommitDriver& commit);

// The VarRegions for a proof pass over `space`:
//  * one region per switch cell (contents = each config's value bytes);
//  * when `classes` is non-null, one region per coalesced text range any
//    class patches (contents = pristine bytes overlaid per class).
Result<std::vector<VarRegion>> BuildSwitchCellRegions(Program* program,
                                                      const ConfigSpace& space);
Result<std::vector<VarRegion>> BuildCommittedTextRegions(
    Program* program, const ConfigSpace& space,
    const std::vector<CommitClass>& classes);

// Join pcs for the merge scheduler: the fall-through of every patchable call
// site (site_addr + 5 — the post-dominator of a multiverse divergence).
std::vector<uint64_t> CollectJoinPcs(Program* program);

struct VarProveOptions {
  std::string entry = "main";
  std::vector<uint64_t> args;
  uint64_t max_steps_per_config = 100'000'000;
  CommitDriver commit;  // defaults to PlainCommitDriver()
};

struct VarProveReport {
  size_t num_configs = 0;
  size_t num_switches = 0;
  size_t num_classes = 0;
  VarExecStats generic_stats;
  VarExecStats committed_stats;
  std::vector<ConfigOutcome> generic_outcomes;    // per config index
  std::vector<ConfigOutcome> committed_outcomes;  // per config index
  std::vector<std::string> mismatches;            // empty = proven equivalent

  bool equivalent() const { return mismatches.empty(); }
  uint64_t instructions_executed() const {
    return generic_stats.instructions_executed +
           committed_stats.instructions_executed;
  }
};

// The exhaustive oracle: proves every configuration's committed (variant)
// execution observationally identical to its generic execution — transcript,
// terminal fault, return value, and a checksum of the data segment (the
// stack is excluded: dead frames below SP legitimately differ between
// generic and variant codegen). Ok(report) with report.equivalent() false
// means the proof RAN and found divergence; a non-Ok status means the proof
// could not run.
Result<VarProveReport> ProveEquivalence(Program* program,
                                        const VarProveOptions& options = {});

// --- Brute-force counterpart -----------------------------------------------

struct BruteOutcome {
  VmExit::Kind exit = VmExit::Kind::kHalt;
  Fault fault;
  std::string transcript;
  uint64_t r0 = 0;
  uint64_t core_hash = 0;
  uint64_t mem_checksum = 0;
  uint64_t instret = 0;
};

// Runs ONE configuration for real: writes its switch values, optionally
// commits (committed=true), calls the entry and collects the same
// observables the variational executor reports. Restores the pre-call
// memory/runtime snapshot afterwards so calls are independent. The checksum
// range matches ProveEquivalence's ([text end, stack_base)).
Result<BruteOutcome> RunOneConfig(Program* program, const ConfigSpace& space,
                                  size_t config, bool committed,
                                  const VarProveOptions& options = {});

// FNV-1a over [lo, hi) of guest memory, the shared checksum the oracles use.
uint64_t MemoryRangeChecksum(Program* program, uint64_t lo, uint64_t hi);

// The default checksum range: [end of text, bottom of stack).
void DefaultChecksumRange(const Program& program, uint64_t* lo, uint64_t* hi);

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_VARPROVE_H_

#include "src/core/descriptors.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "src/isa/isa.h"
#include "src/support/str.h"

namespace mv {

namespace {

void Put32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &v, 4);
}

void Put64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &v, 8);
}

// Adds a string to .mv.strings and returns its offset within the section.
uint64_t AddString(Section* strings, const std::string& text) {
  const uint64_t offset = strings->data.size();
  strings->data.insert(strings->data.end(), text.begin(), text.end());
  strings->data.push_back(0);
  return offset;
}

}  // namespace

Status EmitDescriptors(const Module& module, const CodegenInfo& info, ObjectFile* obj) {
  const int text_sec = obj->FindSection(".text");
  if (text_sec < 0) {
    return Status::FailedPrecondition("EmitDescriptors: object has no .text section");
  }
  const int vars_sec = obj->FindOrAddSection(".mv.variables");
  const int fns_sec = obj->FindOrAddSection(".mv.functions");
  const int variants_sec = obj->FindOrAddSection(".mv.variants");
  const int guards_sec = obj->FindOrAddSection(".mv.guards");
  const int sites_sec = obj->FindOrAddSection(".mv.callsites");
  const int strings_sec = obj->FindOrAddSection(".mv.strings");
  obj->sections[static_cast<size_t>(strings_sec)].align = 1;

  auto data = [&](int sec) -> std::vector<uint8_t>& {
    return obj->sections[static_cast<size_t>(sec)].data;
  };
  auto reloc_abs64 = [&](int sec, uint64_t offset, const std::string& symbol,
                         int64_t addend = 0) {
    Reloc r;
    r.section = sec;
    r.offset = offset;
    r.type = RelocType::kAbs64;
    r.symbol = symbol;
    r.addend = addend;
    obj->relocs.push_back(std::move(r));
  };
  auto reloc_abs64_section = [&](int sec, uint64_t offset, int target_sec, int64_t addend) {
    Reloc r;
    r.section = sec;
    r.offset = offset;
    r.type = RelocType::kAbs64;
    r.target_section = target_sec;
    r.addend = addend;
    obj->relocs.push_back(std::move(r));
  };

  // --- .mv.variables: one 32-byte record per defined configuration switch. ---
  for (const GlobalVar& g : module.globals) {
    if (!g.is_multiverse || g.is_extern) {
      continue;
    }
    std::vector<uint8_t>& out = data(vars_sec);
    const uint64_t rec = out.size();
    Put64(&out, 0);  // [0] variable address (reloc)
    reloc_abs64(vars_sec, rec, g.name);
    Put32(&out, static_cast<uint32_t>(g.type.byte_size()));  // [8] width
    uint32_t flags = 0;
    if (g.type.is_signed) {
      flags |= kVarFlagSigned;
    }
    if (g.is_fnptr_switch) {
      flags |= kVarFlagFnPtr;
    }
    Put32(&out, flags);                                       // [12] flags
    const uint64_t name_off = AddString(&obj->sections[static_cast<size_t>(strings_sec)],
                                        g.name);
    Put64(&out, 0);  // [16] name reference (reloc into .mv.strings)
    reloc_abs64_section(vars_sec, rec + 16, strings_sec, static_cast<int64_t>(name_off));
    Put64(&out, 0);  // [24] reserved
  }

  // --- .mv.functions / .mv.variants / .mv.guards ---
  for (const Function& fn : module.functions) {
    if (!fn.mv.is_multiverse || fn.is_extern || fn.mv.is_variant()) {
      continue;
    }
    std::vector<uint8_t>& fout = data(fns_sec);
    const uint64_t frec = fout.size();
    Put64(&fout, 0);  // [0] generic function address (reloc)
    reloc_abs64(fns_sec, frec, fn.name);
    const uint64_t name_off =
        AddString(&obj->sections[static_cast<size_t>(strings_sec)], fn.name);
    Put64(&fout, 0);  // [8] name reference
    reloc_abs64_section(fns_sec, frec + 8, strings_sec, static_cast<int64_t>(name_off));
    Put32(&fout, static_cast<uint32_t>(fn.mv.variants.size()));  // [16] n_variants
    Put32(&fout, 0);                                             // [20] flags
    const uint64_t variants_off = data(variants_sec).size();
    Put64(&fout, 0);  // [24] variants pointer (reloc into .mv.variants)
    reloc_abs64_section(fns_sec, frec + 24, variants_sec,
                        static_cast<int64_t>(variants_off));
    Put64(&fout, 0);  // [32] reserved
    Put64(&fout, 0);  // [40] reserved

    for (const VariantRecord& variant : fn.mv.variants) {
      std::vector<uint8_t>& vout = data(variants_sec);
      const uint64_t vrec = vout.size();
      Put64(&vout, 0);  // [0] variant function address (reloc)
      reloc_abs64(variants_sec, vrec, variant.symbol);
      Put32(&vout, static_cast<uint32_t>(variant.guards.size()));  // [8] n_guards
      Put32(&vout, 0);                                             // [12] flags
      const uint64_t guards_off = data(guards_sec).size();
      Put64(&vout, 0);  // [16] guards pointer (reloc into .mv.guards)
      reloc_abs64_section(variants_sec, vrec + 16, guards_sec,
                          static_cast<int64_t>(guards_off));
      Put64(&vout, 0);  // [24] reserved

      for (const GuardRange& guard : variant.guards) {
        std::vector<uint8_t>& gout = data(guards_sec);
        const uint64_t grec = gout.size();
        Put64(&gout, 0);  // [0] variable address (reloc)
        reloc_abs64(guards_sec, grec, module.globals[guard.global].name);
        Put32(&gout, static_cast<uint32_t>(static_cast<int32_t>(guard.lo)));  // [8] lo
        Put32(&gout, static_cast<uint32_t>(static_cast<int32_t>(guard.hi)));  // [12] hi
      }
    }
  }

  // --- .mv.callsites: 16 bytes per recorded call site. ---
  for (const CallsiteRecord& site : info.mv_callsites) {
    std::vector<uint8_t>& out = data(sites_sec);
    const uint64_t rec = out.size();
    Put64(&out, 0);  // [0] callee: generic fn address or fn-ptr variable address
    reloc_abs64(sites_sec, rec, site.callee);
    Put64(&out, 0);  // [8] call-site address (reloc into .text)
    reloc_abs64_section(sites_sec, rec + 8, text_sec,
                        static_cast<int64_t>(site.text_offset));
  }

  // --- .pv.callsites: same layout, consumed by the baseline patcher. ---
  if (!info.pv_callsites.empty()) {
    const int pv_sec = obj->FindOrAddSection(".pv.callsites");
    for (const CallsiteRecord& site : info.pv_callsites) {
      std::vector<uint8_t>& out = data(pv_sec);
      const uint64_t rec = out.size();
      Put64(&out, 0);
      reloc_abs64(pv_sec, rec, site.callee);
      Put64(&out, 0);
      reloc_abs64_section(pv_sec, rec + 8, text_sec,
                          static_cast<int64_t>(site.text_offset));
    }
  }

  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Runtime-side parsing

namespace {

// Reads a NUL-terminated string, scanning at most `limit` bytes and never
// past `end` (the enclosing section's end in paranoid mode, memory size
// otherwise) — a corrupt name pointer must not trigger an unbounded walk.
Result<std::string> ReadCString(const Memory& memory, uint64_t addr, uint64_t end,
                                uint64_t limit) {
  std::string out;
  const uint64_t stop = end < memory.size() ? end : memory.size();
  for (uint64_t a = addr; a < stop; ++a) {
    if (out.size() >= limit) {
      return Status::OutOfRange("descriptor string exceeds length cap");
    }
    char c = 0;
    MV_RETURN_IF_ERROR(memory.ReadRaw(a, &c, 1));
    if (c == '\0') {
      return out;
    }
    out.push_back(c);
  }
  return Status::OutOfRange("unterminated descriptor string");
}

template <typename T>
Result<T> ReadScalar(const Memory& memory, uint64_t addr) {
  T value{};
  MV_RETURN_IF_ERROR(memory.ReadRaw(addr, &value, sizeof(T)));
  return value;
}

// Paranoid containment: `count` records of `rec_size` bytes starting at
// `addr` must lie inside `sec` and be record-aligned relative to its start.
Status CheckRecordArray(const char* what, uint64_t addr, uint64_t count,
                        uint64_t rec_size, const char* sec_name,
                        const SectionPlacement& sec) {
  const uint64_t bytes = count * rec_size;
  if (addr < sec.addr || addr > sec.addr + sec.size ||
      bytes > sec.addr + sec.size - addr) {
    return Status::FailedPrecondition(
        StrFormat("descriptor validation: %s pointer 0x%llx (%llu records) "
                  "outside %s",
                  what, (unsigned long long)addr, (unsigned long long)count,
                  sec_name));
  }
  if ((addr - sec.addr) % rec_size != 0) {
    return Status::FailedPrecondition(
        StrFormat("descriptor validation: %s pointer 0x%llx misaligned within %s",
                  what, (unsigned long long)addr, sec_name));
  }
  return Status::Ok();
}

}  // namespace

const RtVariable* DescriptorTable::FindVariable(uint64_t addr) const {
  for (const RtVariable& v : variables) {
    if (v.addr == addr) {
      return &v;
    }
  }
  return nullptr;
}

const RtFunction* DescriptorTable::FindFunction(uint64_t generic_addr) const {
  for (const RtFunction& f : functions) {
    if (f.generic_addr == generic_addr) {
      return &f;
    }
  }
  return nullptr;
}

Result<DescriptorTable> DescriptorTable::Parse(const Memory& memory, const Image& image) {
  return Parse(memory, image, ParseOptions{});
}

Result<DescriptorTable> DescriptorTable::Parse(const Memory& memory, const Image& image,
                                               const ParseOptions& options) {
  DescriptorTable table;

  auto section = [&](const char* name) -> SectionPlacement {
    auto it = image.sections.find(name);
    return it == image.sections.end() ? SectionPlacement{} : it->second;
  };
  const SectionPlacement strings = section(".mv.strings");
  const SectionPlacement variants_sec = section(".mv.variants");
  const SectionPlacement guards_sec = section(".mv.guards");

  // Name pointers are untrusted: in paranoid mode they must land inside
  // .mv.strings, and the scan never leaves that section either way.
  auto read_name = [&](uint64_t name_addr) -> Result<std::string> {
    if (options.paranoid &&
        (name_addr < strings.addr || name_addr >= strings.addr + strings.size)) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: name pointer 0x%llx outside .mv.strings",
                    (unsigned long long)name_addr));
    }
    const uint64_t end =
        options.paranoid ? strings.addr + strings.size : memory.size();
    return ReadCString(memory, name_addr, end, options.max_name_length);
  };

  const SectionPlacement vars = section(".mv.variables");
  if (vars.size % kVariableDescSize != 0) {
    return Status::Internal("malformed .mv.variables section");
  }
  for (uint64_t off = 0; off < vars.size; off += kVariableDescSize) {
    const uint64_t rec = vars.addr + off;
    RtVariable v;
    MV_ASSIGN_OR_RETURN(v.addr, ReadScalar<uint64_t>(memory, rec));
    MV_ASSIGN_OR_RETURN(v.width, ReadScalar<uint32_t>(memory, rec + 8));
    uint32_t flags = 0;
    MV_ASSIGN_OR_RETURN(flags, ReadScalar<uint32_t>(memory, rec + 12));
    v.is_signed = (flags & kVarFlagSigned) != 0;
    v.is_fnptr = (flags & kVarFlagFnPtr) != 0;
    uint64_t name_addr = 0;
    MV_ASSIGN_OR_RETURN(name_addr, ReadScalar<uint64_t>(memory, rec + 16));
    MV_ASSIGN_OR_RETURN(v.name, read_name(name_addr));
    table.variables.push_back(std::move(v));
  }

  const SectionPlacement fns = section(".mv.functions");
  if (fns.size % kFunctionDescSize != 0) {
    return Status::Internal("malformed .mv.functions section");
  }
  for (uint64_t off = 0; off < fns.size; off += kFunctionDescSize) {
    const uint64_t rec = fns.addr + off;
    RtFunction f;
    MV_ASSIGN_OR_RETURN(f.generic_addr, ReadScalar<uint64_t>(memory, rec));
    uint64_t name_addr = 0;
    MV_ASSIGN_OR_RETURN(name_addr, ReadScalar<uint64_t>(memory, rec + 8));
    MV_ASSIGN_OR_RETURN(f.name, read_name(name_addr));
    uint32_t n_variants = 0;
    MV_ASSIGN_OR_RETURN(n_variants, ReadScalar<uint32_t>(memory, rec + 16));
    uint64_t variants_addr = 0;
    MV_ASSIGN_OR_RETURN(variants_addr, ReadScalar<uint64_t>(memory, rec + 24));
    if (options.paranoid) {
      if (n_variants > options.max_variants_per_function) {
        return Status::FailedPrecondition(
            StrFormat("descriptor validation: function '%s' claims %u variants "
                      "(cap %u)",
                      f.name.c_str(), n_variants, options.max_variants_per_function));
      }
      MV_RETURN_IF_ERROR(CheckRecordArray("variants", variants_addr, n_variants,
                                          kVariantDescSize, ".mv.variants",
                                          variants_sec));
    }
    for (uint32_t vi = 0; vi < n_variants; ++vi) {
      const uint64_t vrec = variants_addr + vi * kVariantDescSize;
      RtVariant variant;
      MV_ASSIGN_OR_RETURN(variant.fn_addr, ReadScalar<uint64_t>(memory, vrec));
      uint32_t n_guards = 0;
      MV_ASSIGN_OR_RETURN(n_guards, ReadScalar<uint32_t>(memory, vrec + 8));
      uint64_t guards_addr = 0;
      MV_ASSIGN_OR_RETURN(guards_addr, ReadScalar<uint64_t>(memory, vrec + 16));
      if (options.paranoid) {
        if (n_guards > options.max_guards_per_variant) {
          return Status::FailedPrecondition(
              StrFormat("descriptor validation: variant of '%s' claims %u guards "
                        "(cap %u)",
                        f.name.c_str(), n_guards, options.max_guards_per_variant));
        }
        MV_RETURN_IF_ERROR(CheckRecordArray("guards", guards_addr, n_guards,
                                            kGuardDescSize, ".mv.guards",
                                            guards_sec));
      }
      for (uint32_t gi = 0; gi < n_guards; ++gi) {
        const uint64_t grec = guards_addr + gi * kGuardDescSize;
        RtGuard guard;
        MV_ASSIGN_OR_RETURN(guard.var_addr, ReadScalar<uint64_t>(memory, grec));
        MV_ASSIGN_OR_RETURN(guard.lo, ReadScalar<int32_t>(memory, grec + 8));
        MV_ASSIGN_OR_RETURN(guard.hi, ReadScalar<int32_t>(memory, grec + 12));
        variant.guards.push_back(guard);
      }
      f.variants.push_back(std::move(variant));
    }
    table.functions.push_back(std::move(f));
  }

  const SectionPlacement sites = section(".mv.callsites");
  if (sites.size % kCallsiteDescSize != 0) {
    return Status::Internal("malformed .mv.callsites section");
  }
  for (uint64_t off = 0; off < sites.size; off += kCallsiteDescSize) {
    const uint64_t rec = sites.addr + off;
    RtCallsite site;
    MV_ASSIGN_OR_RETURN(site.callee_addr, ReadScalar<uint64_t>(memory, rec));
    MV_ASSIGN_OR_RETURN(site.site_addr, ReadScalar<uint64_t>(memory, rec + 8));
    table.callsites.push_back(site);
  }

  return table;
}

Status ValidateDescriptorTable(const DescriptorTable& table, const Memory& memory,
                               const Image& image) {
  const uint64_t text_lo = image.text_base;
  const uint64_t text_hi = image.text_base + image.text_size;
  auto in_text = [&](uint64_t addr, uint64_t len) {
    return addr >= text_lo && addr <= text_hi && len <= text_hi - addr;
  };

  std::set<uint64_t> symbol_addrs;
  for (const auto& [name, addr] : image.symbols) {
    symbol_addrs.insert(addr);
  }

  for (const RtVariable& var : table.variables) {
    if (var.width != 1 && var.width != 2 && var.width != 4 && var.width != 8) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: switch '%s' has invalid width %u",
                    var.name.c_str(), var.width));
    }
    if (var.is_fnptr && var.width != 8) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: function-pointer switch '%s' must be "
                    "8 bytes wide, not %u",
                    var.name.c_str(), var.width));
    }
    if (var.addr >= memory.size() || var.width > memory.size() - var.addr) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: switch '%s' storage at 0x%llx outside "
                    "guest memory",
                    var.name.c_str(), (unsigned long long)var.addr));
    }
    if (var.addr < text_hi && var.addr + var.width > text_lo) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: switch '%s' storage at 0x%llx overlaps "
                    "the text segment",
                    var.name.c_str(), (unsigned long long)var.addr));
    }
  }

  for (const RtFunction& fn : table.functions) {
    if (!in_text(fn.generic_addr, kCallInsnSize)) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: generic entry of '%s' at 0x%llx "
                    "outside the text segment",
                    fn.name.c_str(), (unsigned long long)fn.generic_addr));
    }
    if (symbol_addrs.count(fn.generic_addr) == 0) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: generic entry of '%s' at 0x%llx does "
                    "not match any image symbol",
                    fn.name.c_str(), (unsigned long long)fn.generic_addr));
    }
    // The wait-free protocol retargets the generic prologue with one atomic
    // word store; codegen 16-aligns function entries, so a misaligned entry
    // means a corrupt descriptor, not a layout choice.
    if (fn.generic_addr % 8 > 3) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: generic entry of '%s' at 0x%llx is "
                    "not word-aligned for atomic patching (addr %% 8 must be "
                    "<= 3)",
                    fn.name.c_str(), (unsigned long long)fn.generic_addr));
    }
    for (const RtVariant& variant : fn.variants) {
      if (!in_text(variant.fn_addr, 1) || symbol_addrs.count(variant.fn_addr) == 0) {
        return Status::FailedPrecondition(
            StrFormat("descriptor validation: variant of '%s' at 0x%llx is not an "
                      "image symbol in the text segment",
                      fn.name.c_str(), (unsigned long long)variant.fn_addr));
      }
      for (const RtGuard& guard : variant.guards) {
        if (table.FindVariable(guard.var_addr) == nullptr) {
          return Status::FailedPrecondition(
              StrFormat("descriptor validation: guard of '%s' references unknown "
                        "configuration switch 0x%llx",
                        fn.name.c_str(), (unsigned long long)guard.var_addr));
        }
      }
    }
  }

  std::vector<uint64_t> site_addrs;
  site_addrs.reserve(table.callsites.size());
  for (const RtCallsite& site : table.callsites) {
    if (!in_text(site.site_addr, kCallInsnSize)) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: call site at 0x%llx outside the text "
                    "segment",
                    (unsigned long long)site.site_addr));
    }
    // Word-alignment invariant (wait-free protocol): all five mutable bytes
    // of a patchable site must fall inside one naturally aligned 8-byte word.
    // Codegen NOP-pads every recorded site to guarantee this, so a violation
    // means the site address is corrupt.
    if (site.site_addr % 8 > 3) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: call site at 0x%llx is not "
                    "word-aligned for atomic patching (addr %% 8 must be <= 3)",
                    (unsigned long long)site.site_addr));
    }
    const RtVariable* fnptr_var = table.FindVariable(site.callee_addr);
    const bool fnptr_callee = fnptr_var != nullptr && fnptr_var->is_fnptr;
    if (!fnptr_callee && table.FindFunction(site.callee_addr) == nullptr) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: call site at 0x%llx references "
                    "unknown callee 0x%llx",
                    (unsigned long long)site.site_addr,
                    (unsigned long long)site.callee_addr));
    }
    // The pristine site must decode as the call form the compiler emits:
    // CALL rel32 targeting the generic callee, or an indirect call for a
    // function-pointer switch — CALLM through the switch's own storage (the
    // PV-Ops form), or CALLR through a register. Anything else means the
    // site address is corrupt — patching it would destroy an unrelated
    // instruction.
    Result<Insn> insn =
        Decode(memory.raw(site.site_addr), memory.size() - site.site_addr);
    if (!insn.ok()) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: call site at 0x%llx does not decode "
                    "(%s)",
                    (unsigned long long)site.site_addr,
                    insn.status().message().c_str()));
    }
    if (fnptr_callee) {
      const bool callm_through_switch =
          insn->op == Op::kCallM &&
          static_cast<uint64_t>(insn->imm) == site.callee_addr;
      if (insn->op != Op::kCallR && !callm_through_switch) {
        return Status::FailedPrecondition(
            StrFormat("descriptor validation: call site at 0x%llx for "
                      "function-pointer switch '%s' is not an indirect call "
                      "through its storage",
                      (unsigned long long)site.site_addr, fnptr_var->name.c_str()));
      }
    } else if (insn->op != Op::kCall ||
               site.site_addr + kCallInsnSize + static_cast<uint64_t>(insn->imm) !=
                   site.callee_addr) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: call site at 0x%llx does not call its "
                    "declared callee 0x%llx",
                    (unsigned long long)site.site_addr,
                    (unsigned long long)site.callee_addr));
    }
    site_addrs.push_back(site.site_addr);
  }
  std::sort(site_addrs.begin(), site_addrs.end());
  for (size_t i = 1; i < site_addrs.size(); ++i) {
    if (site_addrs[i] < site_addrs[i - 1] + kCallInsnSize) {
      return Status::FailedPrecondition(
          StrFormat("descriptor validation: call sites at 0x%llx and 0x%llx "
                    "overlap",
                    (unsigned long long)site_addrs[i - 1],
                    (unsigned long long)site_addrs[i]));
    }
  }
  return Status::Ok();
}

uint64_t DescriptorSectionBytes(size_t n_variables, size_t n_callsites,
                                const std::vector<size_t>& variants_per_function,
                                const std::vector<size_t>& guards_per_variant) {
  uint64_t total = n_variables * kVariableDescSize + n_callsites * kCallsiteDescSize;
  size_t variant_index = 0;
  for (size_t variants : variants_per_function) {
    total += kFunctionDescSize;
    for (size_t v = 0; v < variants; ++v, ++variant_index) {
      const size_t guards = variant_index < guards_per_variant.size()
                                ? guards_per_variant[variant_index]
                                : 0;
      total += kVariantDescSize + guards * kGuardDescSize;
    }
  }
  return total;
}

}  // namespace mv

#include "src/core/descriptors.h"

#include <cstring>

#include "src/support/str.h"

namespace mv {

namespace {

void Put32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &v, 4);
}

void Put64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &v, 8);
}

// Adds a string to .mv.strings and returns its offset within the section.
uint64_t AddString(Section* strings, const std::string& text) {
  const uint64_t offset = strings->data.size();
  strings->data.insert(strings->data.end(), text.begin(), text.end());
  strings->data.push_back(0);
  return offset;
}

}  // namespace

Status EmitDescriptors(const Module& module, const CodegenInfo& info, ObjectFile* obj) {
  const int text_sec = obj->FindSection(".text");
  if (text_sec < 0) {
    return Status::FailedPrecondition("EmitDescriptors: object has no .text section");
  }
  const int vars_sec = obj->FindOrAddSection(".mv.variables");
  const int fns_sec = obj->FindOrAddSection(".mv.functions");
  const int variants_sec = obj->FindOrAddSection(".mv.variants");
  const int guards_sec = obj->FindOrAddSection(".mv.guards");
  const int sites_sec = obj->FindOrAddSection(".mv.callsites");
  const int strings_sec = obj->FindOrAddSection(".mv.strings");
  obj->sections[static_cast<size_t>(strings_sec)].align = 1;

  auto data = [&](int sec) -> std::vector<uint8_t>& {
    return obj->sections[static_cast<size_t>(sec)].data;
  };
  auto reloc_abs64 = [&](int sec, uint64_t offset, const std::string& symbol,
                         int64_t addend = 0) {
    Reloc r;
    r.section = sec;
    r.offset = offset;
    r.type = RelocType::kAbs64;
    r.symbol = symbol;
    r.addend = addend;
    obj->relocs.push_back(std::move(r));
  };
  auto reloc_abs64_section = [&](int sec, uint64_t offset, int target_sec, int64_t addend) {
    Reloc r;
    r.section = sec;
    r.offset = offset;
    r.type = RelocType::kAbs64;
    r.target_section = target_sec;
    r.addend = addend;
    obj->relocs.push_back(std::move(r));
  };

  // --- .mv.variables: one 32-byte record per defined configuration switch. ---
  for (const GlobalVar& g : module.globals) {
    if (!g.is_multiverse || g.is_extern) {
      continue;
    }
    std::vector<uint8_t>& out = data(vars_sec);
    const uint64_t rec = out.size();
    Put64(&out, 0);  // [0] variable address (reloc)
    reloc_abs64(vars_sec, rec, g.name);
    Put32(&out, static_cast<uint32_t>(g.type.byte_size()));  // [8] width
    uint32_t flags = 0;
    if (g.type.is_signed) {
      flags |= kVarFlagSigned;
    }
    if (g.is_fnptr_switch) {
      flags |= kVarFlagFnPtr;
    }
    Put32(&out, flags);                                       // [12] flags
    const uint64_t name_off = AddString(&obj->sections[static_cast<size_t>(strings_sec)],
                                        g.name);
    Put64(&out, 0);  // [16] name reference (reloc into .mv.strings)
    reloc_abs64_section(vars_sec, rec + 16, strings_sec, static_cast<int64_t>(name_off));
    Put64(&out, 0);  // [24] reserved
  }

  // --- .mv.functions / .mv.variants / .mv.guards ---
  for (const Function& fn : module.functions) {
    if (!fn.mv.is_multiverse || fn.is_extern || fn.mv.is_variant()) {
      continue;
    }
    std::vector<uint8_t>& fout = data(fns_sec);
    const uint64_t frec = fout.size();
    Put64(&fout, 0);  // [0] generic function address (reloc)
    reloc_abs64(fns_sec, frec, fn.name);
    const uint64_t name_off =
        AddString(&obj->sections[static_cast<size_t>(strings_sec)], fn.name);
    Put64(&fout, 0);  // [8] name reference
    reloc_abs64_section(fns_sec, frec + 8, strings_sec, static_cast<int64_t>(name_off));
    Put32(&fout, static_cast<uint32_t>(fn.mv.variants.size()));  // [16] n_variants
    Put32(&fout, 0);                                             // [20] flags
    const uint64_t variants_off = data(variants_sec).size();
    Put64(&fout, 0);  // [24] variants pointer (reloc into .mv.variants)
    reloc_abs64_section(fns_sec, frec + 24, variants_sec,
                        static_cast<int64_t>(variants_off));
    Put64(&fout, 0);  // [32] reserved
    Put64(&fout, 0);  // [40] reserved

    for (const VariantRecord& variant : fn.mv.variants) {
      std::vector<uint8_t>& vout = data(variants_sec);
      const uint64_t vrec = vout.size();
      Put64(&vout, 0);  // [0] variant function address (reloc)
      reloc_abs64(variants_sec, vrec, variant.symbol);
      Put32(&vout, static_cast<uint32_t>(variant.guards.size()));  // [8] n_guards
      Put32(&vout, 0);                                             // [12] flags
      const uint64_t guards_off = data(guards_sec).size();
      Put64(&vout, 0);  // [16] guards pointer (reloc into .mv.guards)
      reloc_abs64_section(variants_sec, vrec + 16, guards_sec,
                          static_cast<int64_t>(guards_off));
      Put64(&vout, 0);  // [24] reserved

      for (const GuardRange& guard : variant.guards) {
        std::vector<uint8_t>& gout = data(guards_sec);
        const uint64_t grec = gout.size();
        Put64(&gout, 0);  // [0] variable address (reloc)
        reloc_abs64(guards_sec, grec, module.globals[guard.global].name);
        Put32(&gout, static_cast<uint32_t>(static_cast<int32_t>(guard.lo)));  // [8] lo
        Put32(&gout, static_cast<uint32_t>(static_cast<int32_t>(guard.hi)));  // [12] hi
      }
    }
  }

  // --- .mv.callsites: 16 bytes per recorded call site. ---
  for (const CallsiteRecord& site : info.mv_callsites) {
    std::vector<uint8_t>& out = data(sites_sec);
    const uint64_t rec = out.size();
    Put64(&out, 0);  // [0] callee: generic fn address or fn-ptr variable address
    reloc_abs64(sites_sec, rec, site.callee);
    Put64(&out, 0);  // [8] call-site address (reloc into .text)
    reloc_abs64_section(sites_sec, rec + 8, text_sec,
                        static_cast<int64_t>(site.text_offset));
  }

  // --- .pv.callsites: same layout, consumed by the baseline patcher. ---
  if (!info.pv_callsites.empty()) {
    const int pv_sec = obj->FindOrAddSection(".pv.callsites");
    for (const CallsiteRecord& site : info.pv_callsites) {
      std::vector<uint8_t>& out = data(pv_sec);
      const uint64_t rec = out.size();
      Put64(&out, 0);
      reloc_abs64(pv_sec, rec, site.callee);
      Put64(&out, 0);
      reloc_abs64_section(pv_sec, rec + 8, text_sec,
                          static_cast<int64_t>(site.text_offset));
    }
  }

  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Runtime-side parsing

namespace {

Result<std::string> ReadCString(const Memory& memory, uint64_t addr) {
  std::string out;
  for (uint64_t a = addr; a < memory.size(); ++a) {
    char c = 0;
    MV_RETURN_IF_ERROR(memory.ReadRaw(a, &c, 1));
    if (c == '\0') {
      return out;
    }
    out.push_back(c);
  }
  return Status::OutOfRange("unterminated descriptor string");
}

template <typename T>
Result<T> ReadScalar(const Memory& memory, uint64_t addr) {
  T value{};
  MV_RETURN_IF_ERROR(memory.ReadRaw(addr, &value, sizeof(T)));
  return value;
}

}  // namespace

const RtVariable* DescriptorTable::FindVariable(uint64_t addr) const {
  for (const RtVariable& v : variables) {
    if (v.addr == addr) {
      return &v;
    }
  }
  return nullptr;
}

const RtFunction* DescriptorTable::FindFunction(uint64_t generic_addr) const {
  for (const RtFunction& f : functions) {
    if (f.generic_addr == generic_addr) {
      return &f;
    }
  }
  return nullptr;
}

Result<DescriptorTable> DescriptorTable::Parse(const Memory& memory, const Image& image) {
  DescriptorTable table;

  auto section = [&](const char* name) -> SectionPlacement {
    auto it = image.sections.find(name);
    return it == image.sections.end() ? SectionPlacement{} : it->second;
  };

  const SectionPlacement vars = section(".mv.variables");
  if (vars.size % kVariableDescSize != 0) {
    return Status::Internal("malformed .mv.variables section");
  }
  for (uint64_t off = 0; off < vars.size; off += kVariableDescSize) {
    const uint64_t rec = vars.addr + off;
    RtVariable v;
    MV_ASSIGN_OR_RETURN(v.addr, ReadScalar<uint64_t>(memory, rec));
    MV_ASSIGN_OR_RETURN(v.width, ReadScalar<uint32_t>(memory, rec + 8));
    uint32_t flags = 0;
    MV_ASSIGN_OR_RETURN(flags, ReadScalar<uint32_t>(memory, rec + 12));
    v.is_signed = (flags & kVarFlagSigned) != 0;
    v.is_fnptr = (flags & kVarFlagFnPtr) != 0;
    uint64_t name_addr = 0;
    MV_ASSIGN_OR_RETURN(name_addr, ReadScalar<uint64_t>(memory, rec + 16));
    MV_ASSIGN_OR_RETURN(v.name, ReadCString(memory, name_addr));
    table.variables.push_back(std::move(v));
  }

  const SectionPlacement fns = section(".mv.functions");
  if (fns.size % kFunctionDescSize != 0) {
    return Status::Internal("malformed .mv.functions section");
  }
  for (uint64_t off = 0; off < fns.size; off += kFunctionDescSize) {
    const uint64_t rec = fns.addr + off;
    RtFunction f;
    MV_ASSIGN_OR_RETURN(f.generic_addr, ReadScalar<uint64_t>(memory, rec));
    uint64_t name_addr = 0;
    MV_ASSIGN_OR_RETURN(name_addr, ReadScalar<uint64_t>(memory, rec + 8));
    MV_ASSIGN_OR_RETURN(f.name, ReadCString(memory, name_addr));
    uint32_t n_variants = 0;
    MV_ASSIGN_OR_RETURN(n_variants, ReadScalar<uint32_t>(memory, rec + 16));
    uint64_t variants_addr = 0;
    MV_ASSIGN_OR_RETURN(variants_addr, ReadScalar<uint64_t>(memory, rec + 24));
    for (uint32_t vi = 0; vi < n_variants; ++vi) {
      const uint64_t vrec = variants_addr + vi * kVariantDescSize;
      RtVariant variant;
      MV_ASSIGN_OR_RETURN(variant.fn_addr, ReadScalar<uint64_t>(memory, vrec));
      uint32_t n_guards = 0;
      MV_ASSIGN_OR_RETURN(n_guards, ReadScalar<uint32_t>(memory, vrec + 8));
      uint64_t guards_addr = 0;
      MV_ASSIGN_OR_RETURN(guards_addr, ReadScalar<uint64_t>(memory, vrec + 16));
      for (uint32_t gi = 0; gi < n_guards; ++gi) {
        const uint64_t grec = guards_addr + gi * kGuardDescSize;
        RtGuard guard;
        MV_ASSIGN_OR_RETURN(guard.var_addr, ReadScalar<uint64_t>(memory, grec));
        MV_ASSIGN_OR_RETURN(guard.lo, ReadScalar<int32_t>(memory, grec + 8));
        MV_ASSIGN_OR_RETURN(guard.hi, ReadScalar<int32_t>(memory, grec + 12));
        variant.guards.push_back(guard);
      }
      f.variants.push_back(std::move(variant));
    }
    table.functions.push_back(std::move(f));
  }

  const SectionPlacement sites = section(".mv.callsites");
  if (sites.size % kCallsiteDescSize != 0) {
    return Status::Internal("malformed .mv.callsites section");
  }
  for (uint64_t off = 0; off < sites.size; off += kCallsiteDescSize) {
    const uint64_t rec = sites.addr + off;
    RtCallsite site;
    MV_ASSIGN_OR_RETURN(site.callee_addr, ReadScalar<uint64_t>(memory, rec));
    MV_ASSIGN_OR_RETURN(site.site_addr, ReadScalar<uint64_t>(memory, rec + 8));
    table.callsites.push_back(site);
  }

  return table;
}

uint64_t DescriptorSectionBytes(size_t n_variables, size_t n_callsites,
                                const std::vector<size_t>& variants_per_function,
                                const std::vector<size_t>& guards_per_variant) {
  uint64_t total = n_variables * kVariableDescSize + n_callsites * kCallsiteDescSize;
  size_t variant_index = 0;
  for (size_t variants : variants_per_function) {
    total += kFunctionDescSize;
    for (size_t v = 0; v < variants; ++v, ++variant_index) {
      const size_t guards = variant_index < guards_per_variant.size()
                                ? guards_per_variant[variant_index]
                                : 0;
      total += kVariantDescSize + guards * kGuardDescSize;
    }
  }
  return total;
}

}  // namespace mv

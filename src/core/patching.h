// Low-level code-patching utilities shared by the multiverse runtime and the
// paravirt baseline patcher (src/baseline): W^X-disciplined writes, rel32
// call encoding, and tiny-body extraction for call-site inlining.
#ifndef MULTIVERSE_SRC_CORE_PATCHING_H_
#define MULTIVERSE_SRC_CORE_PATCHING_H_

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

// Result of a commit/revert operation (the paper's int return, enriched).
// Lives here (below the runtime) so the plan cache can memoize it alongside
// the planned ops without a header cycle.
struct PatchStats {
  int functions_committed = 0;   // functions now bound to a variant
  int functions_reverted = 0;    // functions restored to generic state
  int generic_fallbacks = 0;     // no variant matched; generic installed (§4)
  int callsites_patched = 0;     // call sites rewritten to direct calls
  int callsites_inlined = 0;     // call sites with the body inlined / NOPed
  int prologues_patched = 0;

  void Accumulate(const PatchStats& other) {
    functions_committed += other.functions_committed;
    functions_reverted += other.functions_reverted;
    generic_fallbacks += other.generic_fallbacks;
    callsites_patched += other.callsites_patched;
    callsites_inlined += other.callsites_inlined;
    prologues_patched += other.prologues_patched;
  }
};

// Writes `len` bytes of code at `addr`: temporarily adds write permission,
// writes, restores the previous protection, and — unless `flush` is false —
// flushes the icache range on every core. `flush = false` is the livepatch
// fault-injection hook: it models a buggy patcher that forgets the
// invalidation, which the VM's stale-fetch detector must catch.
Status WriteCodeBytes(Vm* vm, uint64_t addr, const uint8_t* data, uint64_t len,
                      bool flush = true);

// Writes 5 bytes of code at `addr`: temporarily adds write permission,
// writes, restores the previous protection, and flushes the icache range.
Status PatchCode(Vm* vm, uint64_t addr, const std::array<uint8_t, 5>& bytes);

// One deferred 5-byte code write, recorded by MultiverseRuntime when a live
// patch plan is active (see runtime.h BeginPlan): the batched unit the
// livepatch protocols apply with quiescence or breakpoint cross-modification.
struct PatchOp {
  uint64_t addr = 0;
  std::array<uint8_t, 5> old_bytes{};  // bytes in memory when planned
  std::array<uint8_t, 5> new_bytes{};
};

using PatchPlan = std::vector<PatchOp>;

// Page-coalesced code mutation: N writes landing on one page cost one
// Protect-up and one Protect-down instead of N of each, and the icache
// invalidations are merged into a range union issued once at the end.
//
// Usage: Acquire + Write per op (in plan order), then Release, then issue
// MergedFlushRanges() through the VM. Pages are left writable after a failed
// Write or Release — exactly like a patcher that died mid-flight — so the
// journal's rollback (which re-does its own W^X dance per op) repairs both
// bytes and protections.
//
// Write() carries the same kPatchWrite fault semantics as WriteCodeBytes: the
// injected torn write lands one byte and leaves the page writable. Acquire
// and Release cross the kProtect fault point once per page instead of once
// per op — the faultpoint sweep calibrates occurrence counts by probing, so
// it adapts to the coalesced counts automatically.
class PageWriteBatch {
 public:
  explicit PageWriteBatch(Vm* vm) : vm_(vm) {}

  // Makes every page overlapping [addr, addr+len) writable (idempotent per
  // page), remembering the original protection for Release().
  Status Acquire(uint64_t addr, uint64_t len);
  // Writes into already-acquired pages; fault-injectable torn write.
  Status Write(uint64_t addr, const uint8_t* data, uint64_t len);
  // Queues [addr, addr+len) for the merged flush set.
  void QueueFlush(uint64_t addr, uint64_t len);
  // Restores the original protection of every acquired page.
  Status Release();

  // Sorted union of the queued flush ranges (overlapping/adjacent merged).
  std::vector<CodeRange> MergedFlushRanges() const;

  uint64_t protect_calls() const { return protect_calls_; }
  uint64_t pages_acquired() const { return pages_acquired_; }

 private:
  Vm* vm_;
  std::map<uint64_t, uint8_t> pages_;  // page base -> original perms
  std::vector<CodeRange> flushes_;
  uint64_t protect_calls_ = 0;
  uint64_t pages_acquired_ = 0;  // lifetime count; survives Release()
};

// Encodes a 5-byte `CALL rel32` at `site_addr` targeting `target`.
Result<std::array<uint8_t, 5>> EncodeCallBytes(uint64_t site_addr, uint64_t target);

// If the function at `fn_addr` has a straight-line body of at most 5 bytes
// before its final RET — no control flow, no stack-pointer effects — returns
// the body bytes (possibly empty, Figure 3 c); otherwise nullopt.
std::optional<std::vector<uint8_t>> ExtractTinyBody(const Memory& memory, uint64_t fn_addr);

// The *rejected* body-patching design of paper §7.1, implemented to make its
// complexity argument concrete: copies the variant's code over the generic
// function's body instead of patching call sites. Refuses (returns false)
// whenever the variant does not fit into the generic body, or contains
// pc-relative instructions (CALL/JMP/Jcc rel32) — relocating those is
// exactly the "significant complexity increase" the paper cites for choosing
// call-site patching instead. Remaining generic bytes are NOP-filled.
//
// The overwrite itself runs through a PatchJournal (plan -> validate ->
// coalesced apply -> seal, rolled back on failure), so a torn body patch hits
// the same kPatchWrite/kProtect/kIcacheFlush fault points and read-back
// verification as the call-site path and degrades to the pristine generic
// body instead of a half-copied one.
Result<bool> TryBodyPatch(Vm* vm, uint64_t generic_addr, uint64_t generic_size,
                          uint64_t variant_addr, uint64_t variant_size);

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_PATCHING_H_

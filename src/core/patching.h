// Low-level code-patching utilities shared by the multiverse runtime and the
// paravirt baseline patcher (src/baseline): W^X-disciplined writes, rel32
// call encoding, and tiny-body extraction for call-site inlining.
#ifndef MULTIVERSE_SRC_CORE_PATCHING_H_
#define MULTIVERSE_SRC_CORE_PATCHING_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

// Writes `len` bytes of code at `addr`: temporarily adds write permission,
// writes, restores the previous protection, and — unless `flush` is false —
// flushes the icache range on every core. `flush = false` is the livepatch
// fault-injection hook: it models a buggy patcher that forgets the
// invalidation, which the VM's stale-fetch detector must catch.
Status WriteCodeBytes(Vm* vm, uint64_t addr, const uint8_t* data, uint64_t len,
                      bool flush = true);

// Writes 5 bytes of code at `addr`: temporarily adds write permission,
// writes, restores the previous protection, and flushes the icache range.
Status PatchCode(Vm* vm, uint64_t addr, const std::array<uint8_t, 5>& bytes);

// One deferred 5-byte code write, recorded by MultiverseRuntime when a live
// patch plan is active (see runtime.h BeginPlan): the batched unit the
// livepatch protocols apply with quiescence or breakpoint cross-modification.
struct PatchOp {
  uint64_t addr = 0;
  std::array<uint8_t, 5> old_bytes{};  // bytes in memory when planned
  std::array<uint8_t, 5> new_bytes{};
};

using PatchPlan = std::vector<PatchOp>;

// Encodes a 5-byte `CALL rel32` at `site_addr` targeting `target`.
Result<std::array<uint8_t, 5>> EncodeCallBytes(uint64_t site_addr, uint64_t target);

// If the function at `fn_addr` has a straight-line body of at most 5 bytes
// before its final RET — no control flow, no stack-pointer effects — returns
// the body bytes (possibly empty, Figure 3 c); otherwise nullopt.
std::optional<std::vector<uint8_t>> ExtractTinyBody(const Memory& memory, uint64_t fn_addr);

// The *rejected* body-patching design of paper §7.1, implemented to make its
// complexity argument concrete: copies the variant's code over the generic
// function's body instead of patching call sites. Refuses (returns false)
// whenever the variant does not fit into the generic body, or contains
// pc-relative instructions (CALL/JMP/Jcc rel32) — relocating those is
// exactly the "significant complexity increase" the paper cites for choosing
// call-site patching instead. Remaining generic bytes are NOP-filled.
Result<bool> TryBodyPatch(Vm* vm, uint64_t generic_addr, uint64_t generic_size,
                          uint64_t variant_addr, uint64_t variant_size);

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_PATCHING_H_

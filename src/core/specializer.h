// Ahead-of-time variant generation — the "compiler plugin" half of
// multiverse (paper §3).
//
// For every function carrying the multiverse attribute the specializer:
//  1. collects the configuration switches the body references and their
//     value domains (explicit domain > enum items > {0, 1} default);
//  2. clones the *unoptimized* body once per assignment in the cross product
//     of the domains, replacing each switch read with the bound constant and
//     warning about writes to bound switches;
//  3. lets the regular optimizer specialize each clone (constant propagation,
//     folding, dead-code elimination — src/opt);
//  4. merges clones that become structurally equal, recording guard *ranges*
//     [lo, hi] per switch; non-contiguous merges share code but keep one
//     guard record per assignment, so a guard never over-covers;
//  5. attaches the variant records to the generic function, which the
//     descriptor emitter turns into the multiverse.functions section.
//
// The generic function keeps its dynamic checks and is marked non-inlinable.
#ifndef MULTIVERSE_SRC_CORE_SPECIALIZER_H_
#define MULTIVERSE_SRC_CORE_SPECIALIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mvir/ir.h"
#include "src/support/status.h"

namespace mv {

struct SpecializeOptions {
  // Cap on the variant cross product per function. Exceeding it skips
  // specialization of that function with a warning — the mitigation for
  // combinatorial explosion the paper discusses in §7.1 (the developer is
  // expected to narrow domains instead).
  size_t max_variants_per_function = 64;
};

struct SpecializeStats {
  size_t functions_specialized = 0;
  size_t variants_generated = 0;   // clones before merging
  size_t variants_merged = 0;      // clones discarded as duplicates
  size_t variants_kept = 0;        // distinct variant bodies kept
  std::vector<std::string> warnings;
};

// Specializes all defined multiverse functions in `module`, appending the
// variant functions and attaching VariantRecords to the generic ones. Runs
// the optimization pipeline on the variants (required for merging); the
// caller optimizes the rest of the module afterwards.
Result<SpecializeStats> SpecializeModule(Module* module,
                                         const SpecializeOptions& options = {});

// One configuration switch and its value domain, as the specializer sees it
// (lower.cc has already normalized the domain: explicit > enum > {0, 1}).
// The variational prover (src/core/varprove.h) flattens the cross product of
// these domains into its config-space indices, so the exhaustive proof
// enumerates exactly the assignments the specializer generated variants for.
struct SwitchDomain {
  std::string name;
  std::vector<int64_t> values;
  bool is_fnptr = false;
};

// The multiverse switches of `module` in declaration order with their
// normalized domains. Purely observational — does not modify the module.
std::vector<SwitchDomain> CollectSwitchDomains(const Module& module);

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_SPECIALIZER_H_

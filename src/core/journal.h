// Durable write-ahead commit journal: crash consistency across process death.
//
// The in-memory PatchJournal (src/core/txn.h) makes a commit atomic for every
// failure the process *survives* — torn writes, refused mprotects, suppressed
// flushes all roll back in-process. It has no answer for an instance that
// dies mid-commit: the undo records die with it. This module closes that
// hole the way databases do (docs/INTERNALS.md §16):
//
//   every byte-level intent is serialized to an append-only durable log
//   *before* the byte moves — a begin record (txn id, op count, pre-commit
//   text checksum), one op record per patch window (address, page
//   protection, expected-old and new bytes) appended at MarkTouched time,
//   and a seal record (post-commit text checksum) appended only after the
//   in-memory seal audit passed. An in-process rollback appends an abort
//   record. Fleet-level switch writes are journaled the same way
//   (old/new value) so data state recovers alongside text state.
//
// Simulated death is a first-class fault: FaultSite::kCrash kills the
// instance at a journal entry boundary (the record is never written),
// FaultSite::kCrashTorn kills it mid-record (a torn prefix survives in the
// log). A crash surfaces as a distinguished Status (IsSimulatedCrash) that
// the commit driver propagates *without* running rollback, bookkeeping
// restore, or retry — a dead process cleans up nothing. The guest text is
// abandoned exactly as torn as the fault left it; only the durable log
// survives.
//
// On restart, RecoverFromJournal replays the log onto the instance — either
// the dead VM's still-mapped memory or a freshly rebuilt boot-state twin:
// sealed transactions are redone (forcible forward writes), aborted ones are
// skipped (their net effect was zero), and the trailing incomplete group —
// switch writes plus an unsealed transaction's op records — is undone in
// reverse. Every replayed write is idempotent, so both starting points
// converge; the final text checksum is verified against the journaled
// pre/post checksum of the resolving transaction. The invariant, asserted by
// the crash sweep (tests/durable_journal_test.cc): after a crash at any
// journal entry boundary under any protocol and either dispatch engine, the
// recovered instance is bit-identical to fully-old or fully-new text —
// never torn.
//
// A corrupt log (truncation, bit flips) is truncated to its longest valid
// prefix when the damage is at the tail — the crash-evidence case — and
// structurally rejected with zero writes when the surviving prefix itself is
// inconsistent (op outside the text segment, seal without a begin, ...).
#ifndef MULTIVERSE_SRC_CORE_JOURNAL_H_
#define MULTIVERSE_SRC_CORE_JOURNAL_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obj/linker.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

// One durable log entry kind. Values are part of the serialized format.
enum class WalRecordKind : uint8_t {
  kTxnBegin = 1,   // txn id, op count, pre-commit text checksum
  kOp = 2,         // write-ahead intent for one 5-byte patch window
  kSeal = 3,       // txn committed; post-commit text checksum
  kAbort = 4,      // txn rolled back in-process; net effect zero
  kSwitchSet = 5,  // fleet switch write: addr, width, old/new value
  kRecovery = 6,   // a restart resolved the log; post-recovery checksum
};

const char* WalRecordKindName(WalRecordKind kind);

// Parsed view of one record (union-style: fields valid per kind).
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kTxnBegin;
  uint64_t txn_id = 0;    // kTxnBegin / kOp / kSeal / kAbort
  uint64_t op_count = 0;  // kTxnBegin
  uint64_t checksum = 0;  // kTxnBegin: pre-text; kSeal / kRecovery: post-text
  uint64_t op_index = 0;  // kOp
  uint64_t addr = 0;      // kOp / kSwitchSet
  uint8_t perms = 0;      // kOp: page protection to restore on undo
  uint32_t width = 0;     // kOp: patch window size; kSwitchSet: value width
  std::array<uint8_t, 8> old_bytes{};  // kOp window / kSwitchSet value, LE
  std::array<uint8_t, 8> new_bytes{};
};

// The append-only durable log for one instance. The byte buffer models the
// instance's journal file: it survives simulated process death (the Fleet
// owns it outside the Program), and Revive() models the restart reopening
// it. Appends are the crash injection point — FaultSite::kCrash fires at the
// entry boundary (nothing written), FaultSite::kCrashTorn mid-entry (a torn
// prefix is written). Once dead, every further append fails the same way.
class DurableJournal {
 public:
  DurableJournal() = default;

  // Append primitives. Each returns a simulated-crash Status when the fault
  // injector kills the instance at this entry (see IsSimulatedCrash).
  Status AppendTxnBegin(uint64_t txn_id, uint64_t op_count,
                        uint64_t pre_text_checksum);
  Status AppendOp(uint64_t txn_id, uint64_t op_index, uint64_t addr,
                  uint8_t perms, const uint8_t* old_bytes,
                  const uint8_t* new_bytes, uint32_t width);
  Status AppendSeal(uint64_t txn_id, uint64_t post_text_checksum);
  Status AppendAbort(uint64_t txn_id);
  Status AppendSwitchSet(uint64_t addr, uint32_t width, uint64_t old_value,
                         uint64_t new_value);
  Status AppendRecovery(uint64_t post_text_checksum);

  // Monotonic transaction ids for this journal.
  uint64_t NextTxnId() { return ++txn_counter_; }

  // Simulated process death. The log bytes survive; Revive() models the
  // restarted instance reopening its journal.
  bool dead() const { return dead_; }
  void Revive() { dead_ = false; }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  // Fuzz/test hook: install a (possibly mutated) log image.
  void SetBytes(std::vector<uint8_t> bytes) { bytes_ = std::move(bytes); }
  // Number of well-formed records (a torn tail is not counted).
  size_t record_count() const;

  // Decodes the log into records. Stops at the first malformed entry: the
  // remainder is reported through *torn_tail_bytes (the crash-evidence /
  // lost-unsynced-tail case), never an error. Structural consistency of the
  // surviving prefix is the recovery machinery's job, not the parser's.
  std::vector<WalRecord> Parse(size_t* torn_tail_bytes) const;

  // Drops a torn tail so post-recovery appends rebuild a clean log.
  void TruncateTo(size_t size);

 private:
  Status AppendRecord(WalRecordKind kind, const std::vector<uint8_t>& payload);

  std::vector<uint8_t> bytes_;
  uint64_t txn_counter_ = 0;
  bool dead_ = false;
};

// True iff `status` is the distinguished simulated-process-death status. The
// commit driver uses this to skip rollback/restore/retry (a dead process
// cleans up nothing); the fleet uses it to route an instance to
// restart-and-recover instead of the failure path.
bool IsSimulatedCrash(const Status& status);

// Outcome accounting for one recovery replay.
struct RecoveryOutcome {
  int txns_redone = 0;         // sealed transactions replayed forward
  int txns_undone = 0;         // 0 or 1: the trailing unsealed transaction
  int ops_redone = 0;
  int ops_undone = 0;
  int switch_sets_replayed = 0;
  int switch_sets_undone = 0;  // trailing group's switch writes reverted
  size_t torn_tail_bytes = 0;  // bytes dropped as crash evidence
  bool tail_undone = false;    // a trailing incomplete group was rolled back
  uint64_t final_text_checksum = 0;
  uint64_t expected_text_checksum = 0;  // 0 when the log pins no expectation

  // Switch data cells as of the last SEALED transaction (cells the log never
  // touched keep their boot defaults). This is the committed configuration a
  // rebuilt replacement must commit to land on the proven text. Write-ahead
  // intent that never sealed — switch writes whose flip aborted or whose
  // transaction the recovery undid is excluded here, but aborted-flip writes
  // persist in the recovered data section: a replacement reproduces them as
  // uncommitted data on top of the committed text.
  struct CommittedSwitch {
    uint64_t addr = 0;
    uint32_t width = 0;
    std::vector<uint8_t> bytes;
  };
  std::vector<CommittedSwitch> committed_switches;
};

// Replays `journal` onto the instance: redo sealed, skip aborted, undo the
// trailing incomplete group in reverse; verify the final text checksum
// against the journaled expectation; truncate any torn tail and append a
// kRecovery record. Works both on the dead VM's torn memory and on a
// freshly rebuilt boot-state instance (every replayed write is idempotent).
// Structured reject (no writes) when the log's valid prefix is inconsistent.
Result<RecoveryOutcome> RecoverFromJournal(Vm* vm, const Image* image,
                                           DurableJournal* journal);

// FNV-1a over the image text segment — bit-compatible with
// MultiverseRuntime::TextChecksum so journal proofs and fleet identity
// proofs compare equal. Returns 0 on read failure.
uint64_t TextChecksumOf(const Vm& vm, const Image& image);

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_JOURNAL_H_

// Program — the end-to-end driver facade: mvc sources -> IR -> specialization
// -> optimization -> code generation -> descriptor emission -> link -> load,
// plus a harness to call guest functions and service VMCALL upcalls
// (including the in-guest multiverse API of paper Table 1).
#ifndef MULTIVERSE_SRC_CORE_PROGRAM_H_
#define MULTIVERSE_SRC_CORE_PROGRAM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/specializer.h"
#include "src/frontend/frontend.h"
#include "src/obj/linker.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

struct ProgramSource {
  std::string name;    // translation-unit name
  std::string source;  // mvc source text
};

struct BuildOptions {
  CompileOptions frontend;            // compile-time defines (static baseline)
  bool specialize = true;             // run the multiverse "plugin"
  SpecializeOptions specializer;
  LinkOptions link;
  uint64_t vm_memory = 64ull << 20;   // 64 MiB
  int vm_cores = 1;
  bool hypervisor_guest = false;      // run as a paravirtualized guest
  // Runtime attach options: paranoid descriptor validation (`mvcc
  // --no-paranoid` to disable) and transactional-commit tuning.
  AttachOptions attach;
};

class Program {
 public:
  // Compiles, links and loads the given translation units. Build diagnostics
  // (including the specializer's switch-write warnings) are available via
  // diagnostics()/specialize_stats().
  static Result<std::unique_ptr<Program>> Build(const std::vector<ProgramSource>& sources,
                                                const BuildOptions& options);

  Vm& vm() { return *vm_; }
  const Image& image() const { return image_; }
  MultiverseRuntime& runtime() { return *runtime_; }
  const SpecializeStats& specialize_stats() const { return specialize_stats_; }
  const std::vector<Module>& modules() const { return modules_; }

  Result<uint64_t> SymbolAddress(const std::string& name) const {
    return image_.SymbolAddress(name);
  }

  // Emitted code size of a defined function (bytes, excluding padding).
  Result<uint64_t> FunctionSize(const std::string& name) const;

  // Calls a guest function on `core` and runs it to completion, servicing
  // VMCALLs along the way. Returns r0 (the guest return value).
  Result<uint64_t> Call(const std::string& fn_name, const std::vector<uint64_t>& args = {},
                        uint64_t max_steps = 100'000'000, int core = 0);
  Result<uint64_t> CallAt(uint64_t fn_addr, const std::vector<uint64_t>& args = {},
                          uint64_t max_steps = 100'000'000, int core = 0);

  // Reads/writes a global scalar by symbol name (host-side configuration).
  Result<int64_t> ReadGlobal(const std::string& name, int width = 8) const;
  Status WriteGlobal(const std::string& name, int64_t value, int width);

  // Output accumulated through kVmCallPutChar.
  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  // Handler for VMCALL codes >= kVmCallUser: (code, r0) -> new r0.
  using VmCallHandler = std::function<int64_t(uint8_t code, uint64_t arg)>;
  void set_vmcall_handler(VmCallHandler handler) { vmcall_handler_ = std::move(handler); }

 private:
  Program() = default;

  Result<bool> HandleVmCall(uint8_t code, int core);

  std::unique_ptr<Vm> vm_;
  Image image_;
  std::unique_ptr<MultiverseRuntime> runtime_;
  SpecializeStats specialize_stats_;
  std::vector<Module> modules_;
  std::map<std::string, uint64_t> function_sizes_;
  std::string output_;
  VmCallHandler vmcall_handler_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_PROGRAM_H_

// CommitStats — the reusable commit outcome counters.
//
// Before this header every bench (and now the fleet coordinator) re-collected
// the same commit health counters by hand from three different sources:
// TxnStats (rollbacks/retries), LiveCommitStats (disturbance, parked ticks,
// wait-free fallbacks) and the Vm (superblock evictions). The fields drifted —
// one bench recorded parked cycles, another recorded parked ticks, a third
// forgot retries. CommitStats is the single struct all of them fold into:
// per-commit producers convert into it, and consumers (BenchReport,
// FleetMetrics, the rollout policy) only ever accumulate and compare it.
#ifndef MULTIVERSE_SRC_CORE_COMMIT_STATS_H_
#define MULTIVERSE_SRC_CORE_COMMIT_STATS_H_

#include <cstdint>

#include "src/core/txn.h"

namespace mv {

struct CommitStats {
  // Transactional recovery (txn.h): journal rollbacks and the retries that
  // followed them. rollbacks > 0 with an eventual success means a transient
  // failure was absorbed; the fleet rollout policy treats it as a health
  // signal either way.
  int rollbacks = 0;
  int retries = 0;

  // Mutator disturbance in modelled cycles (livepatch protocols): total
  // frozen + parked time, and the parked-at-BKPT share of it.
  double disturbance_cycles = 0;
  double parked_cycles = 0;

  // Superblock decode-cache evictions caused by the commit's code writes.
  uint64_t superblock_evictions = 0;

  // Commits that requested kWaitFree but ran the breakpoint protocol
  // because the plan contained a misaligned op.
  int waitfree_fallbacks = 0;

  // Commit-storm scheduler accounting (src/core/commit_scheduler.h): raw
  // flip submissions, submissions dropped because their debounced batch left
  // the selection signature unchanged (null flips), and the journaled plans
  // actually committed. flips_submitted / plans_committed is the coalescing
  // ratio the storm bench headlines. Zero for paths that commit directly.
  uint64_t storm_flips_submitted = 0;
  uint64_t storm_flips_elided_null = 0;
  uint64_t storm_plans_committed = 0;
  // p99 of the scheduler's per-batch commit latency — a gauge, not a sum:
  // Accumulate keeps the worst report, Delta carries the current value.
  double storm_batch_p99_cycles = 0;

  void Accumulate(const CommitStats& other) {
    rollbacks += other.rollbacks;
    retries += other.retries;
    disturbance_cycles += other.disturbance_cycles;
    parked_cycles += other.parked_cycles;
    superblock_evictions += other.superblock_evictions;
    waitfree_fallbacks += other.waitfree_fallbacks;
    storm_flips_submitted += other.storm_flips_submitted;
    storm_flips_elided_null += other.storm_flips_elided_null;
    storm_plans_committed += other.storm_plans_committed;
    storm_batch_p99_cycles =
        storm_batch_p99_cycles > other.storm_batch_p99_cycles
            ? storm_batch_p99_cycles
            : other.storm_batch_p99_cycles;
  }

  CommitStats Delta(const CommitStats& since) const {
    CommitStats d;
    d.rollbacks = rollbacks - since.rollbacks;
    d.retries = retries - since.retries;
    d.disturbance_cycles = disturbance_cycles - since.disturbance_cycles;
    d.parked_cycles = parked_cycles - since.parked_cycles;
    d.superblock_evictions = superblock_evictions - since.superblock_evictions;
    d.waitfree_fallbacks = waitfree_fallbacks - since.waitfree_fallbacks;
    d.storm_flips_submitted = storm_flips_submitted - since.storm_flips_submitted;
    d.storm_flips_elided_null =
        storm_flips_elided_null - since.storm_flips_elided_null;
    d.storm_plans_committed = storm_plans_committed - since.storm_plans_committed;
    d.storm_batch_p99_cycles = storm_batch_p99_cycles;  // gauge, not windowed
    return d;
  }
};

// The plain (non-livepatch) commit paths report through TxnStats only: no
// mutators run, so disturbance and fallback fields stay zero.
inline CommitStats CommitStatsFromTxn(const TxnStats& txn) {
  CommitStats stats;
  stats.rollbacks = txn.rollbacks;
  stats.retries = txn.retries;
  return stats;
}

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_COMMIT_STATS_H_

// Transactional commit: the write-ahead patch journal that makes every
// multiverse commit path atomic and recoverable (docs/INTERNALS.md §11).
//
// The paper's runtime declares consistency "the caller's contract" (§2/§7.3)
// and its soundness property (§7.4) only covers the happy path: a commit that
// dies after rewriting 500 of 1161 call sites leaves an image that is neither
// generic nor committed — torn. This module closes that hole:
//
//   plan      the Table 1 operation runs in planning mode (runtime.h
//             BeginPlan), producing the batched PatchPlan without touching
//             guest memory; the runtime bookkeeping snapshot taken first is
//             the undo record for the *logical* state;
//   validate  every op is checked against the loaded image before the first
//             byte moves: expected bytes still present, target inside the
//             text segment, pages executable and W^X-clean;
//   apply     ops are written (directly, or by a livepatch protocol) through
//             the journal, which records per-op undo state — old bytes,
//             original protections, icache-flush obligations — before any
//             byte of that op changes;
//   seal      the post-state is audited: new bytes in memory, protections
//             restored to X-not-W, every promised icache invalidation
//             observed (a suppressed flush is detected by counter accounting
//             and repaired in place by re-issuing the invalidation).
//
// On any mid-commit failure — a torn code write, a refused mprotect, a core
// that never reaches a safe point — the journal rolls the touched ops back in
// reverse order, restores protections, flushes every touched range on every
// core, and the caller restores the bookkeeping snapshot: the image degrades
// gracefully to its pre-commit (generic-behaving) state with a structured
// error. Transient failures are retried with bounded exponential backoff.
//
// The recovery invariant, asserted exhaustively by the fault-injection sweep
// (tests/faultpoint_sweep_test.cc): after any single fault at any fault point
// at any op index under any protocol and either dispatch engine, the workload
// transcript is bit-identical to fully-generic or fully-committed execution —
// never a mixture.
#ifndef MULTIVERSE_SRC_CORE_TXN_H_
#define MULTIVERSE_SRC_CORE_TXN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/patching.h"
#include "src/obj/linker.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

class DurableJournal;

struct TxnOptions {
  // Total plan->apply->seal attempts; 1 disables retry. Each failed attempt
  // is rolled back before the next one starts.
  int max_attempts = 3;
  // Modelled backoff after a rolled-back attempt, doubling per retry
  // (reported through the caller's backoff hook so protocol engines can
  // charge it to their virtual patch clock).
  uint64_t backoff_ticks = 256;
  // Pre-apply validation of the plan against the loaded image. Off only for
  // tests that need to drive the journal into states validation would refuse.
  bool validate = true;
  // Read back every op after a direct (non-protocol) apply and fail on
  // mismatch — catches torn writes at the op that tore, not at seal.
  bool verify_writes = true;
  // Optional durable write-ahead log (src/core/journal.h). When set, every
  // attempt journals begin/op/seal/abort records so a simulated process
  // death mid-commit is recoverable at restart (RecoverFromJournal). Not
  // owned; must outlive the commit — and, for crash recovery to mean
  // anything, outlive the instance itself.
  DurableJournal* wal = nullptr;
};

// Outcome accounting for one transactional commit (possibly several
// attempts). Carried in LiveCommitStats and MultiverseRuntime::last_txn().
struct TxnStats {
  int attempts = 0;
  int rollbacks = 0;        // attempts that were rolled back
  int retries = 0;          // rolled-back attempts that were re-tried
  int ops_applied = 0;      // ops live in the final committed image
  int ops_rolled_back = 0;  // undo records replayed across all rollbacks
  int reflushes = 0;        // suppressed icache flushes repaired at seal
  uint64_t recovery_ticks = 0;  // modelled time spent undoing + re-flushing
  std::string last_failure;     // one-line cause of the most recent rollback
};

// Per-commit accounting for one coalesced apply (see ApplyCoalesced): how
// many mprotect flips and merged flush ranges the page batching actually
// issued. Surfaced in runtime fast-path stats and every bench JSON.
struct CoalescedApplyStats {
  uint64_t mprotect_calls = 0;
  uint64_t flush_ranges = 0;
  uint64_t pages_touched = 0;
};

// The write-ahead journal for one attempt: per-op undo records plus the
// validate/seal/rollback machinery. Appliers must call MarkTouched(i) (or use
// ApplyOp, which does) before modifying any byte of op i.
class PatchJournal {
 public:
  // Snapshots undo state for `plan` and, when `validate`, rejects plans the
  // recovery machinery could not safely undo: ops out of guest memory or
  // outside the image's text segment, targets on non-executable or writable
  // (W^X-violating) pages, and ops whose expected old bytes are no longer in
  // memory (foreign modification between plan and apply). Ops overlapping an
  // earlier op in the same plan are legal (e.g. a call site at a generic
  // entry that is also prologue-patched); reverse-order undo restores them
  // exactly, but their expected-bytes check is only meaningful pre-apply.
  static Result<PatchJournal> Begin(Vm* vm, const Image* image,
                                    const PatchPlan& plan, bool validate);

  const PatchPlan& plan() const { return plan_; }
  size_t size() const { return plan_.size(); }

  // Attaches the durable write-ahead log for this attempt and journals the
  // begin record (txn id, op count, pre-commit text checksum). No-op when
  // `wal` is null. Can fail only by simulated crash (IsSimulatedCrash).
  Status AttachWal(DurableJournal* wal);

  // Declares that op `index` is about to have bytes modified. Idempotent;
  // records the undo order. With a WAL attached, the op's intent record
  // (address, perms, old/new bytes) is durably appended *before* the touch
  // is acknowledged — the write-ahead discipline; a simulated crash in the
  // append surfaces here and the op's bytes must then not be written.
  Status MarkTouched(size_t index);
  bool touched(size_t index) const { return entries_[index].touched; }

  // Promises that one icache invalidation will be issued; Seal() verifies the
  // VM's flush counter advanced by at least the promised total.
  void ExpectFlush() { ++expected_flushes_; }

  // Direct apply of op `index`: W^X dance, full write, optional read-back
  // verify, icache flush. The per-op baseline path (kUnsafe protocol, tests).
  Status ApplyOp(size_t index, const TxnOptions& options);

  // Page-coalesced apply of the whole plan (the plain commit fast path): ops
  // are written in plan order through one PageWriteBatch — one Protect-up /
  // Protect-down per touched page — and the icache invalidations are merged
  // into a range union issued once at the end. Each merged range carries one
  // ExpectFlush() promise, so the seal audit stays consistent with merging: a
  // suppressed range flush is a detectable shortfall repaired at seal.
  Status ApplyCoalesced(const TxnOptions& options, CoalescedApplyStats* stats);

  // Audits the committed state: every touched op's new bytes present, pages
  // back to executable-not-writable, flush obligations met. Missing flushes
  // are repaired in place (re-issued per touched op, counted in
  // stats->reflushes) — a suppressed invalidation is recoverable without
  // undoing the writes. Any other discrepancy is an error (caller must roll
  // back).
  Status Seal(TxnStats* stats);

  // Replays undo records in reverse touch order: force-writable, restore old
  // bytes, restore the pre-txn protection, flush the range on every core.
  // Best effort — keeps undoing past individual failures and reports the
  // first error (a failed rollback is a torn image; the sweep asserts it
  // never happens under the single-fault model).
  Status Rollback(TxnStats* stats);

 private:
  struct Entry {
    uint8_t perms = 0;          // page protection to restore on undo/seal
    bool touched = false;
    bool overlaps_earlier = false;  // shares bytes with an earlier plan op
  };

  PatchJournal(Vm* vm, const Image* image) : vm_(vm), image_(image) {}

  Status Validate() const;

  Vm* vm_;
  const Image* image_;  // may be null: bounds/perms checks only
  PatchPlan plan_;
  std::vector<Entry> entries_;
  std::vector<size_t> touch_order_;
  uint64_t flushes_at_begin_ = 0;
  uint64_t expected_flushes_ = 0;
  DurableJournal* wal_ = nullptr;  // not owned; null = volatile journal only
  uint64_t wal_txn_ = 0;
};

// Hooks that let one driver serve both commit paths (the plain runtime apply
// and the livepatch protocol engines).
struct TxnHooks {
  // Snapshots caller bookkeeping and produces the batched plan. A failure
  // here is a configuration/descriptor error: nothing was applied, nothing is
  // retried; the caller must already have restored its bookkeeping.
  std::function<Result<PatchPlan>()> plan;
  // Applies the whole plan through the journal. Any error fails the attempt.
  std::function<Status(PatchJournal*)> apply;
  // Restores the bookkeeping snapshot taken by `plan` (called after every
  // rollback, including before a retry).
  std::function<void()> restore;
  // Optional: returns false for failures retry cannot fix (e.g. a mutator
  // core faulted and is wedged). Default: everything is transient.
  std::function<bool(const Status&)> retryable;
  // Optional: charge `ticks` of backoff to the caller's modelled clock.
  std::function<void(uint64_t ticks)> backoff;
};

// Runs plan -> validate -> apply -> seal with bounded retry + backoff,
// rolling back on every failure. `*stats` is always populated (also on
// error — callers report rollbacks/retries either way). On final failure the
// returned status is the structured one-line commit diagnostic and the image
// + caller bookkeeping are back in their pre-commit state.
Status RunCommitTxn(Vm* vm, const Image* image, const TxnOptions& options,
                    const TxnHooks& hooks, TxnStats* stats);

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_TXN_H_

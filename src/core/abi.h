// Host-upcall (VMCALL) ABI between mvc guest programs and the host harness.
//
// Guest code invokes `__builtin_vmcall(code, arg)`; the VM exits to the host,
// which services the call and resumes the guest with the result in r0. Codes
// 1..7 are handled by the Program driver itself; higher codes are forwarded
// to the harness-installed handler.
#ifndef MULTIVERSE_SRC_CORE_ABI_H_
#define MULTIVERSE_SRC_CORE_ABI_H_

#include <cstdint>

namespace mv {

enum VmCallCode : uint8_t {
  kVmCallPutChar = 1,        // arg: byte to append to the program's output
  kVmCallCommit = 2,         // multiverse_commit()
  kVmCallRevert = 3,         // multiverse_revert()
  kVmCallCommitRefs = 4,     // arg: variable address
  kVmCallRevertRefs = 5,     // arg: variable address
  kVmCallCommitFn = 6,       // arg: generic function address
  kVmCallRevertFn = 7,       // arg: generic function address
  kVmCallUser = 16,          // first harness-defined code
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_ABI_H_

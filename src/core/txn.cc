#include "src/core/txn.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/core/journal.h"
#include "src/isa/cost_model.h"
#include "src/vm/memory.h"

namespace mv {

namespace {

constexpr uint64_t kOpSize = 5;  // every PatchOp rewrites one 5-byte window

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string OpDesc(size_t index, const PatchOp& op) {
  return "op " + std::to_string(index) + " at " + Hex(op.addr);
}

bool OpsOverlap(const PatchOp& a, const PatchOp& b) {
  return a.addr < b.addr + kOpSize && b.addr < a.addr + kOpSize;
}

}  // namespace

Result<PatchJournal> PatchJournal::Begin(Vm* vm, const Image* image,
                                         const PatchPlan& plan, bool validate) {
  PatchJournal journal(vm, image);
  journal.plan_ = plan;
  journal.entries_.resize(plan.size());
  journal.touch_order_.reserve(plan.size());
  journal.flushes_at_begin_ = vm->icache_flushes();

  const Memory& memory = vm->memory();
  for (size_t i = 0; i < plan.size(); ++i) {
    const PatchOp& op = plan[i];
    // Bounds are checked unconditionally: the perms snapshot below (the undo
    // record for protections) is meaningless for an unmapped address.
    if (op.addr >= memory.size() || kOpSize > memory.size() - op.addr) {
      return Status::OutOfRange("journal: " + OpDesc(i, op) +
                                " outside guest memory");
    }
    journal.entries_[i].perms = memory.PermsAt(op.addr);
  }
  // overlaps_earlier via an address-sorted sweep instead of the O(n^2)
  // pairwise scan: only ops within kOpSize of each other in address order
  // can overlap, and for each overlapping pair the later *plan* op is the
  // one whose expected-old-bytes check stops being meaningful.
  std::vector<size_t> order(plan.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&plan](size_t a, size_t b) {
    return plan[a].addr != plan[b].addr ? plan[a].addr < plan[b].addr : a < b;
  });
  for (size_t s = 0; s < order.size(); ++s) {
    for (size_t t = s + 1; t < order.size() &&
                           plan[order[t]].addr < plan[order[s]].addr + kOpSize;
         ++t) {
      journal.entries_[std::max(order[s], order[t])].overlaps_earlier = true;
    }
  }
  if (validate) {
    Status status = journal.Validate();
    if (!status.ok()) {
      return status;
    }
  }
  return journal;
}

Status PatchJournal::Validate() const {
  const Memory& memory = vm_->memory();
  for (size_t i = 0; i < plan_.size(); ++i) {
    const PatchOp& op = plan_[i];
    if (image_ != nullptr &&
        (op.addr < image_->text_base ||
         op.addr + kOpSize > image_->text_base + image_->text_size)) {
      return Status::FailedPrecondition(
          "journal: " + OpDesc(i, op) + " outside the image text segment [" +
          Hex(image_->text_base) + ", " +
          Hex(image_->text_base + image_->text_size) + ")");
    }
    // An op may straddle a page boundary; both ends must be executable and
    // W^X-clean (a page already writable means some earlier patch never
    // restored its protection — committing on top would mask that bug).
    for (uint64_t end : {op.addr, op.addr + kOpSize - 1}) {
      const uint8_t perms = memory.PermsAt(end);
      if (!(perms & kPermExec)) {
        return Status::FailedPrecondition("journal: " + OpDesc(i, op) +
                                          " targets a non-executable page");
      }
      if (perms & kPermWrite) {
        return Status::FailedPrecondition(
            "journal: " + OpDesc(i, op) +
            " targets a writable text page (W^X violated before commit)");
      }
    }
    // Expected-bytes check. Ops overlapping an earlier op in the same plan
    // recorded old bytes that are only valid pre-commit as a set (applying
    // the earlier op changes the later op's window), so the in-memory
    // comparison is only meaningful for non-overlapping ops — which at
    // Begin() time, before any apply, is every op that doesn't alias a plan
    // sibling.
    if (!entries_[i].overlaps_earlier) {
      std::array<uint8_t, kOpSize> current{};
      MV_RETURN_IF_ERROR(memory.ReadRaw(op.addr, current.data(), kOpSize));
      if (current != op.old_bytes) {
        return Status::FailedPrecondition(
            "journal: " + OpDesc(i, op) +
            " expected bytes not present (text modified since planning)");
      }
    }
  }
  return Status::Ok();
}

Status PatchJournal::AttachWal(DurableJournal* wal) {
  if (wal == nullptr) {
    return Status::Ok();
  }
  wal_ = wal;
  wal_txn_ = wal->NextTxnId();
  const uint64_t pre =
      image_ != nullptr ? TextChecksumOf(*vm_, *image_) : 0;
  return wal->AppendTxnBegin(wal_txn_, plan_.size(), pre);
}

Status PatchJournal::MarkTouched(size_t index) {
  if (index >= entries_.size() || entries_[index].touched) {
    return Status::Ok();
  }
  if (wal_ != nullptr) {
    // Write-ahead: the intent record hits the durable log before the touch
    // is acknowledged and before any byte of the op moves. A crash here
    // leaves this op cleanly unwritten — recovery's tail-undo never needs a
    // record it doesn't have.
    const PatchOp& op = plan_[index];
    MV_RETURN_IF_ERROR(wal_->AppendOp(
        wal_txn_, index, op.addr, entries_[index].perms, op.old_bytes.data(),
        op.new_bytes.data(), static_cast<uint32_t>(kOpSize)));
  }
  entries_[index].touched = true;
  touch_order_.push_back(index);
  return Status::Ok();
}

Status PatchJournal::ApplyOp(size_t index, const TxnOptions& options) {
  if (index >= plan_.size()) {
    return Status::OutOfRange("journal: apply of op " + std::to_string(index) +
                              " beyond plan size " + std::to_string(plan_.size()));
  }
  const PatchOp& op = plan_[index];
  MV_RETURN_IF_ERROR(MarkTouched(index));
  ExpectFlush();
  MV_RETURN_IF_ERROR(WriteCodeBytes(vm_, op.addr, op.new_bytes.data(),
                                    op.new_bytes.size(), /*flush=*/true));
  if (options.verify_writes) {
    std::array<uint8_t, kOpSize> readback{};
    MV_RETURN_IF_ERROR(
        vm_->memory().ReadRaw(op.addr, readback.data(), readback.size()));
    if (readback != op.new_bytes) {
      return Status::Internal("journal: torn write detected at " +
                              OpDesc(index, op) + " (read-back mismatch)");
    }
  }
  return Status::Ok();
}

Status PatchJournal::ApplyCoalesced(const TxnOptions& options,
                                    CoalescedApplyStats* stats) {
  PageWriteBatch batch(vm_);
  for (size_t i = 0; i < plan_.size(); ++i) {
    const PatchOp& op = plan_[i];
    // Touch before the page acquire: a refused mprotect mid-acquire must
    // still roll this op back (redundantly restoring unchanged bytes is
    // harmless; leaving a page writable is not).
    MV_RETURN_IF_ERROR(MarkTouched(i));
    MV_RETURN_IF_ERROR(batch.Acquire(op.addr, kOpSize));
    MV_RETURN_IF_ERROR(batch.Write(op.addr, op.new_bytes.data(), kOpSize));
    if (options.verify_writes) {
      std::array<uint8_t, kOpSize> readback{};
      MV_RETURN_IF_ERROR(
          vm_->memory().ReadRaw(op.addr, readback.data(), readback.size()));
      if (readback != op.new_bytes) {
        return Status::Internal("journal: torn write detected at " +
                                OpDesc(i, op) + " (read-back mismatch)");
      }
    }
    batch.QueueFlush(op.addr, kOpSize);
  }
  MV_RETURN_IF_ERROR(batch.Release());
  const std::vector<CodeRange> ranges = batch.MergedFlushRanges();
  for (const CodeRange& range : ranges) {
    ExpectFlush();
    vm_->FlushIcache(range.addr, range.len);
  }
  if (stats != nullptr) {
    stats->mprotect_calls += batch.protect_calls();
    stats->flush_ranges += ranges.size();
    stats->pages_touched += batch.pages_acquired();
  }
  return Status::Ok();
}

Status PatchJournal::Seal(TxnStats* stats) {
  const Memory& memory = vm_->memory();
  for (size_t pos = 0; pos < touch_order_.size(); ++pos) {
    const size_t index = touch_order_[pos];
    const PatchOp& op = plan_[index];
    std::array<uint8_t, kOpSize> current{};
    MV_RETURN_IF_ERROR(memory.ReadRaw(op.addr, current.data(), kOpSize));
    if (current != op.new_bytes) {
      // An op touched later may legitimately rewrite part of this window (a
      // call site aliasing a patched prologue); only fault when nothing
      // shadowed it.
      bool shadowed = false;
      for (size_t p2 = pos + 1; p2 < touch_order_.size(); ++p2) {
        if (OpsOverlap(plan_[touch_order_[p2]], op)) {
          shadowed = true;
          break;
        }
      }
      if (!shadowed) {
        return Status::Internal("seal: " + OpDesc(index, op) +
                                " bytes not committed");
      }
    }
    const uint8_t perms = memory.PermsAt(op.addr);
    if (perms & kPermWrite) {
      return Status::Internal("seal: " + OpDesc(index, op) +
                              " page left writable (W^X violated)");
    }
    if (perms != entries_[index].perms) {
      return Status::Internal("seal: " + OpDesc(index, op) +
                              " page protection not restored");
    }
  }

  // Flush accounting: every ExpectFlush() promise must be backed by an
  // observed FlushIcache call. A shortfall is the forgotten-invalidation bug;
  // it is repairable in place (the writes themselves are good) by re-issuing
  // the invalidation for every touched range — bounded rounds because a
  // repair flush can itself be suppressed by a still-armed injector.
  int repair_rounds = 0;
  while (vm_->icache_flushes() - flushes_at_begin_ < expected_flushes_) {
    const uint64_t missing =
        expected_flushes_ - (vm_->icache_flushes() - flushes_at_begin_);
    if (++repair_rounds > 4) {
      return Status::Internal(
          "seal: " + std::to_string(missing) +
          " icache flush obligation(s) still unmet after repair");
    }
    if (stats != nullptr) {
      stats->reflushes += static_cast<int>(missing);
      stats->recovery_ticks += missing * vm_->cost_model().icache_flush_ipi;
    }
    for (size_t index : touch_order_) {
      vm_->FlushIcache(plan_[index].addr, kOpSize);
    }
  }
  if (wal_ != nullptr) {
    // The seal record is durable only after the in-memory audit passed: its
    // presence is the recovery machinery's license to redo this txn forward.
    // A crash inside this append leaves the txn unsealed — recovery undoes
    // it and the instance lands fully-old.
    const uint64_t post =
        image_ != nullptr ? TextChecksumOf(*vm_, *image_) : 0;
    MV_RETURN_IF_ERROR(wal_->AppendSeal(wal_txn_, post));
  }
  return Status::Ok();
}

Status PatchJournal::Rollback(TxnStats* stats) {
  Memory& memory = vm_->memory();
  Status first_error = Status::Ok();
  // Reverse touch order: overlapping windows (a call site aliasing a patched
  // prologue) un-layer exactly because the last write is undone first.
  for (auto it = touch_order_.rbegin(); it != touch_order_.rend(); ++it) {
    const size_t index = *it;
    const PatchOp& op = plan_[index];
    const Entry& entry = entries_[index];
    Status status = Status::Ok();
    const uint8_t perms_now = memory.PermsAt(op.addr);
    if (!(perms_now & kPermWrite)) {
      status = memory.Protect(op.addr, kOpSize, entry.perms | kPermWrite);
    }
    if (status.ok()) {
      status = memory.WriteRaw(op.addr, op.old_bytes.data(), kOpSize);
    }
    if (status.ok()) {
      status = memory.Protect(op.addr, kOpSize, entry.perms);
    }
    vm_->FlushIcache(op.addr, kOpSize);
    if (stats != nullptr) {
      ++stats->ops_rolled_back;
      stats->recovery_ticks +=
          vm_->cost_model().patch_write + vm_->cost_model().icache_flush_ipi;
    }
    if (!status.ok() && first_error.ok()) {
      first_error = Status(status.code(), "rollback of " + OpDesc(index, op) +
                                              " failed: " + status.message());
    }
  }
  if (wal_ != nullptr && first_error.ok()) {
    // Mark the txn resolved-by-rollback so recovery skips its op records
    // (their net effect is zero). A crash inside this append is benign:
    // recovery's tail-undo replays the same old bytes — idempotent.
    Status abort_status = wal_->AppendAbort(wal_txn_);
    if (IsSimulatedCrash(abort_status)) {
      return abort_status;
    }
  }
  return first_error;
}

Status RunCommitTxn(Vm* vm, const Image* image, const TxnOptions& options,
                    const TxnHooks& hooks, TxnStats* stats) {
  TxnStats local;
  if (stats == nullptr) {
    stats = &local;
  }
  *stats = TxnStats{};

  const int max_attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  uint64_t backoff = options.backoff_ticks;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    ++stats->attempts;

    // Plan. A failure here means nothing was applied and the hook has already
    // restored its own bookkeeping: a configuration/descriptor error, never
    // retried.
    Result<PatchPlan> plan = hooks.plan();
    if (!plan.ok()) {
      stats->last_failure = plan.status().ToString();
      return plan.status();
    }

    // Validate.
    Result<PatchJournal> journal =
        PatchJournal::Begin(vm, image, *plan, options.validate);
    if (!journal.ok()) {
      hooks.restore();
      stats->last_failure = journal.status().ToString();
      return Status(journal.status().code(),
                    "commit validation failed: " + journal.status().message());
    }

    // Durable begin record (no-op without a WAL). Can fail only by
    // simulated crash: the instance is dead, nothing to clean up.
    Status walled = journal->AttachWal(options.wal);
    if (!walled.ok()) {
      stats->last_failure = walled.ToString();
      return walled;
    }

    // Apply + seal.
    Status failed = hooks.apply(&journal.value());
    if (failed.ok()) {
      failed = journal->Seal(stats);
    }
    if (failed.ok()) {
      stats->ops_applied = static_cast<int>(journal->size());
      return Status::Ok();
    }

    // A simulated process death is not a failure to recover from in
    // process: the dead instance runs no rollback, restores no bookkeeping,
    // retries nothing. The durable journal is what survives; restart-time
    // RecoverFromJournal resolves the torn image.
    if (IsSimulatedCrash(failed)) {
      stats->last_failure = failed.ToString();
      return failed;
    }

    // Roll back this attempt: bytes first (reverse order), then the caller's
    // logical bookkeeping.
    ++stats->rollbacks;
    stats->last_failure = failed.ToString();
    Status undo = journal->Rollback(stats);
    if (IsSimulatedCrash(undo)) {
      stats->last_failure = undo.ToString();
      return undo;
    }
    hooks.restore();
    if (!undo.ok()) {
      return Status::Internal("commit rollback failed — image may be torn: " +
                              undo.message());
    }

    const bool retryable = hooks.retryable ? hooks.retryable(failed) : true;
    if (!retryable || attempt >= max_attempts) {
      return Status(failed.code(),
                    "commit rolled back after " + std::to_string(attempt) +
                        " attempt(s): " + failed.ToString());
    }
    ++stats->retries;
    if (hooks.backoff) {
      hooks.backoff(backoff);
    }
    backoff *= 2;
  }
  return Status::Internal("commit retry loop exited unexpectedly");
}

}  // namespace mv

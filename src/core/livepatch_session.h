// LivePatchSession — batches the per-function patch plans that
// MultiverseRuntime/patching.cc produce into one atomic unit of work.
//
// The paper's runtime applies each 5-byte write immediately and performs no
// cross-modification synchronization (§2/§7.3). A live commit instead first
// *plans* the whole commit (recording every write the Table 1 operation
// would perform, without touching guest memory) and then hands the batch to
// a livepatch protocol (src/livepatch) that applies it safely while other
// VM cores execute: quiescence/stop-machine or breakpoint
// cross-modification.
#ifndef MULTIVERSE_SRC_CORE_LIVEPATCH_SESSION_H_
#define MULTIVERSE_SRC_CORE_LIVEPATCH_SESSION_H_

#include <vector>

#include "src/core/patching.h"
#include "src/core/runtime.h"
#include "src/support/status.h"
#include "src/vm/vm.h"

namespace mv {

class LivePatchSession {
 public:
  explicit LivePatchSession(MultiverseRuntime* runtime) : runtime_(runtime) {}
  ~LivePatchSession() { runtime_->EndPlan(); }

  LivePatchSession(const LivePatchSession&) = delete;
  LivePatchSession& operator=(const LivePatchSession&) = delete;

  // Runs the corresponding Table 1 operation in planning mode: the runtime's
  // bookkeeping advances, the returned stats describe the would-be commit,
  // and every code write is recorded into plan() instead of applied. After a
  // successful Plan*, the plan MUST be applied (ApplyAll or per-op ApplyOp)
  // or guest memory and runtime bookkeeping diverge.
  Result<PatchStats> PlanCommit();
  Result<PatchStats> PlanRevert();
  Result<PatchStats> PlanCommitFn(const std::string& name);
  Result<PatchStats> PlanCommitRefs(const std::string& var_name);

  const PatchPlan& plan() const { return plan_; }

  // The code ranges the plan writes — the unsafe regions for safe-point
  // queries (Vm::AtSafePoint).
  std::vector<CodeRange> UnsafeRanges() const;

  // Applies one recorded op / the whole plan to guest memory under W^X
  // discipline. `flush = false` suppresses the icache invalidation (the
  // fault-injection mode of the livepatch tests).
  Status ApplyOp(Vm* vm, size_t index, bool flush = true) const;
  Status ApplyAll(Vm* vm, bool flush = true) const;

 private:
  Result<PatchStats> RunPlanned(Result<PatchStats> (MultiverseRuntime::*fn)());

  MultiverseRuntime* runtime_;
  PatchPlan plan_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_CORE_LIVEPATCH_SESSION_H_

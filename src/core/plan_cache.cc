#include "src/core/plan_cache.h"

namespace mv {

uint64_t ConfigFingerprint(const std::vector<int64_t>& values, uint64_t epoch) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  const auto mix = [&hash](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xff;
      hash *= 1099511628211ull;  // FNV prime
    }
  };
  mix(epoch);
  for (int64_t value : values) {
    mix(static_cast<uint64_t>(value));
  }
  return hash;
}

const PlanCache::Entry* PlanCache::Lookup(const StateToken& pre_state,
                                          uint64_t fingerprint,
                                          const std::vector<int64_t>& values) const {
  for (const Entry& entry : entries_) {
    if (entry.fingerprint == fingerprint && entry.values == values &&
        entry.pre_state.Matches(pre_state)) {
      return &entry;
    }
  }
  return nullptr;
}

void PlanCache::Insert(Entry entry) {
  // Replace an existing entry for the same key rather than duplicating it.
  for (Entry& existing : entries_) {
    if (existing.fingerprint == entry.fingerprint &&
        existing.values == entry.values &&
        existing.pre_state.Matches(entry.pre_state)) {
      existing = std::move(entry);
      return;
    }
  }
  if (entries_.size() >= capacity_ && !entries_.empty()) {
    entries_.erase(entries_.begin());  // FIFO
  }
  entries_.push_back(std::move(entry));
}

void PlanCache::EvictMatching(const StateToken& pre_state, uint64_t fingerprint,
                              const std::vector<int64_t>& values) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->fingerprint == fingerprint && it->values == values &&
        it->pre_state.Matches(pre_state)) {
      entries_.erase(it);
      return;
    }
  }
}

}  // namespace mv

#include "src/core/runtime.h"

#include "src/core/patching.h"

#include <cstring>

#include "src/isa/isa.h"
#include "src/support/str.h"

namespace mv {

namespace {

constexpr uint8_t kNopByte = static_cast<uint8_t>(Op::kNop);

}  // namespace

Result<MultiverseRuntime> MultiverseRuntime::Attach(Vm* vm, const Image& image) {
  return Attach(vm, image, AttachOptions{});
}

Result<MultiverseRuntime> MultiverseRuntime::Attach(Vm* vm, const Image& image,
                                                    const AttachOptions& options) {
  MultiverseRuntime runtime(vm);
  runtime.image_ = image;
  runtime.txn_options_ = options.txn;
  DescriptorTable::ParseOptions parse_options;
  parse_options.paranoid = options.paranoid;
  MV_ASSIGN_OR_RETURN(runtime.table_,
                      DescriptorTable::Parse(vm->memory(), image, parse_options));
  if (options.paranoid) {
    MV_RETURN_IF_ERROR(ValidateDescriptorTable(runtime.table_, vm->memory(), image));
  }

  // Snapshot the pristine call sites.
  for (const RtCallsite& desc : runtime.table_.callsites) {
    Site site;
    site.desc = desc;
    MV_RETURN_IF_ERROR(vm->memory().ReadRaw(desc.site_addr, site.original.data(), 5));
    site.current = site.original;
    runtime.sites_.push_back(site);
  }

  // Function states with their call sites and pristine prologues.
  for (size_t fi = 0; fi < runtime.table_.functions.size(); ++fi) {
    const RtFunction& fn = runtime.table_.functions[fi];
    FnState state;
    state.desc_index = fi;
    MV_RETURN_IF_ERROR(
        vm->memory().ReadRaw(fn.generic_addr, state.saved_prologue.data(), 5));
    for (size_t si = 0; si < runtime.sites_.size(); ++si) {
      if (runtime.sites_[si].desc.callee_addr == fn.generic_addr) {
        state.sites.push_back(si);
      }
    }
    runtime.fns_.emplace(fn.generic_addr, std::move(state));
  }

  // Function-pointer switches (paper §4).
  for (size_t vi = 0; vi < runtime.table_.variables.size(); ++vi) {
    const RtVariable& var = runtime.table_.variables[vi];
    if (!var.is_fnptr) {
      continue;
    }
    FnPtrState state;
    state.var_index = vi;
    for (size_t si = 0; si < runtime.sites_.size(); ++si) {
      if (runtime.sites_[si].desc.callee_addr == var.addr) {
        state.sites.push_back(si);
      }
    }
    runtime.fnptrs_.emplace(var.addr, std::move(state));
  }

  return runtime;
}

Result<int64_t> MultiverseRuntime::ReadSwitch(const RtVariable& variable) const {
  uint64_t raw = 0;
  MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(variable.addr, &raw, variable.width));
  if (variable.is_signed) {
    switch (variable.width) {
      case 1:
        return static_cast<int64_t>(static_cast<int8_t>(raw));
      case 2:
        return static_cast<int64_t>(static_cast<int16_t>(raw));
      case 4:
        return static_cast<int64_t>(static_cast<int32_t>(raw));
      default:
        return static_cast<int64_t>(raw);
    }
  }
  return static_cast<int64_t>(raw);
}

uint64_t MultiverseRuntime::InstalledVariant(uint64_t generic_addr) const {
  auto it = fns_.find(generic_addr);
  return it == fns_.end() ? 0 : it->second.installed;
}

// ---------------------------------------------------------------------------
// Low-level patching

Status MultiverseRuntime::PatchBytes(uint64_t addr, const std::array<uint8_t, 5>& bytes) {
  if (plan_ != nullptr) {
    // Live-patch planning: defer the write. Within one commit every site and
    // prologue is written at most once, so recording the current memory
    // bytes as old_bytes is exact.
    PatchOp op;
    op.addr = addr;
    MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(addr, op.old_bytes.data(), 5));
    op.new_bytes = bytes;
    plan_->push_back(op);
    return Status::Ok();
  }
  // W^X discipline and icache flushing live in PatchCode (§7.2).
  return PatchCode(vm_, addr, bytes);
}

Status MultiverseRuntime::ReadEffective(uint64_t addr,
                                        std::array<uint8_t, 5>* out) const {
  MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(addr, out->data(), out->size()));
  if (plan_ == nullptr) {
    return Status::Ok();
  }
  for (const PatchOp& op : *plan_) {
    for (size_t i = 0; i < out->size(); ++i) {
      const uint64_t a = addr + i;
      if (a >= op.addr && a < op.addr + op.new_bytes.size()) {
        (*out)[i] = op.new_bytes[a - op.addr];
      }
    }
  }
  return Status::Ok();
}

Status MultiverseRuntime::VerifySite(const Site& site) const {
  std::array<uint8_t, 5> now{};
  MV_RETURN_IF_ERROR(ReadEffective(site.desc.site_addr, &now));
  if (now != site.current) {
    return Status::FailedPrecondition(
        StrFormat("call site at 0x%llx does not contain the expected bytes "
                  "(foreign modification?)",
                  (unsigned long long)site.desc.site_addr));
  }
  return Status::Ok();
}

Result<std::array<uint8_t, 5>> MultiverseRuntime::MakeCallBytes(uint64_t site_addr,
                                                                uint64_t target) const {
  return EncodeCallBytes(site_addr, target);
}

std::optional<std::vector<uint8_t>> MultiverseRuntime::TinyBody(uint64_t fn_addr) const {
  return ExtractTinyBody(vm_->memory(), fn_addr);
}

Status MultiverseRuntime::PatchSiteToCall(Site* site, uint64_t target, PatchStats* stats) {
  MV_RETURN_IF_ERROR(VerifySite(*site));

  // Call-site inlining: bodies smaller than the call instruction are copied
  // directly into the site; an empty body is eradicated into NOPs (§4).
  std::optional<std::vector<uint8_t>> tiny = TinyBody(target);
  std::array<uint8_t, 5> bytes{};
  SiteState new_state;
  if (tiny.has_value()) {
    bytes.fill(kNopByte);
    if (!tiny->empty()) {  // an empty (eradicated) body is pure NOPs
      std::memcpy(bytes.data(), tiny->data(), tiny->size());
    }
    new_state = SiteState::kInlined;
  } else {
    MV_ASSIGN_OR_RETURN(bytes, MakeCallBytes(site->desc.site_addr, target));
    new_state = SiteState::kDirectCall;
  }
  if (bytes == site->current) {
    return Status::Ok();  // idempotent commit
  }
  MV_RETURN_IF_ERROR(PatchBytes(site->desc.site_addr, bytes));
  site->current = bytes;
  site->state = new_state;
  if (new_state == SiteState::kInlined) {
    ++stats->callsites_inlined;
  } else {
    ++stats->callsites_patched;
  }
  return Status::Ok();
}

Status MultiverseRuntime::RestoreSite(Site* site, PatchStats* stats) {
  if (site->state == SiteState::kOriginal) {
    return Status::Ok();
  }
  std::array<uint8_t, 5> now{};
  MV_RETURN_IF_ERROR(ReadEffective(site->desc.site_addr, &now));
  if (now != site->current) {
    if (now == site->original) {
      // An overlapping undo already put the pristine bytes back (a call site
      // aliasing a patched generic prologue restores to identical content);
      // reconcile the bookkeeping without another write.
      site->current = site->original;
      site->state = SiteState::kOriginal;
      return Status::Ok();
    }
    return Status::FailedPrecondition(
        StrFormat("call site at 0x%llx does not contain the expected bytes "
                  "(foreign modification?)",
                  (unsigned long long)site->desc.site_addr));
  }
  MV_RETURN_IF_ERROR(PatchBytes(site->desc.site_addr, site->original));
  site->current = site->original;
  site->state = SiteState::kOriginal;
  ++stats->callsites_patched;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Function-level install / revert

Result<PatchStats> MultiverseRuntime::InstallVariant(FnState* fn, uint64_t variant_addr) {
  PatchStats stats;
  const RtFunction& desc = table_.functions[fn->desc_index];

  // Patch all recorded call sites.
  for (size_t si : fn->sites) {
    MV_RETURN_IF_ERROR(PatchSiteToCall(&sites_[si], variant_addr, &stats));
  }

  // Redirect the generic entry so that indirect and foreign calls also reach
  // the committed variant (completeness, §7.4).
  const int64_t rel = static_cast<int64_t>(variant_addr) -
                      static_cast<int64_t>(desc.generic_addr + kJmpInsnSize);
  if (rel > INT32_MAX || rel < INT32_MIN) {
    return Status::OutOfRange("variant out of jmp rel32 range");
  }
  std::vector<uint8_t> encoded;
  Result<int> size = Encode(MakeJmp(static_cast<int32_t>(rel)), &encoded);
  if (!size.ok()) {
    return size.status();
  }
  std::array<uint8_t, 5> jmp{};
  std::memcpy(jmp.data(), encoded.data(), 5);
  MV_RETURN_IF_ERROR(PatchBytes(desc.generic_addr, jmp));
  fn->prologue_patched = true;
  ++stats.prologues_patched;

  fn->installed = variant_addr;
  ++stats.functions_committed;
  return stats;
}

Result<PatchStats> MultiverseRuntime::RevertFnState(FnState* fn) {
  PatchStats stats;
  // Undo in reverse apply order (InstallVariant patches sites first, the
  // prologue last): the prologue comes off first, then the sites from last
  // to first, so overlapping windows — a recorded call site inside a patched
  // prologue range, tiny-body-inlined or not — un-layer exactly.
  if (fn->prologue_patched) {
    const RtFunction& desc = table_.functions[fn->desc_index];
    MV_RETURN_IF_ERROR(PatchBytes(desc.generic_addr, fn->saved_prologue));
    fn->prologue_patched = false;
    ++stats.prologues_patched;
  }
  for (auto it = fn->sites.rbegin(); it != fn->sites.rend(); ++it) {
    MV_RETURN_IF_ERROR(RestoreSite(&sites_[*it], &stats));
  }
  if (fn->installed != 0) {
    fn->installed = 0;
    ++stats.functions_reverted;
  }
  return stats;
}

Result<PatchStats> MultiverseRuntime::CommitFnState(FnState* fn) {
  const RtFunction& desc = table_.functions[fn->desc_index];

  // Inspect the switches and search for a viable variant (§4).
  for (const RtVariant& variant : desc.variants) {
    bool viable = true;
    for (const RtGuard& guard : variant.guards) {
      const RtVariable* var = table_.FindVariable(guard.var_addr);
      if (var == nullptr) {
        return Status::Internal("guard references unknown variable descriptor");
      }
      MV_ASSIGN_OR_RETURN(const int64_t value, ReadSwitch(*var));
      if (value < guard.lo || value > guard.hi) {
        viable = false;
        break;
      }
    }
    if (viable) {
      return InstallVariant(fn, variant.fn_addr);
    }
  }

  // No suitable variant: revert to the generic function, which exhibits the
  // correct behaviour for any value, and signal the situation (Figure 3 d).
  MV_ASSIGN_OR_RETURN(PatchStats stats, RevertFnState(fn));
  ++stats.generic_fallbacks;
  return stats;
}

// ---------------------------------------------------------------------------
// Function-pointer switches

Result<PatchStats> MultiverseRuntime::CommitFnPtr(FnPtrState* state) {
  PatchStats stats;
  const RtVariable& var = table_.variables[state->var_index];
  uint64_t target = 0;
  MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(var.addr, &target, 8));
  if (target == 0) {
    // Null function pointer: leave the indirect call in place.
    ++stats.generic_fallbacks;
    return stats;
  }
  // The pointer value is runtime data, not compiler-emitted metadata — it
  // can hold anything. Refuse to burn a direct call to an address outside
  // the text segment into the image.
  if (target < image_.text_base || target >= image_.text_base + image_.text_size) {
    return Status::FailedPrecondition(
        StrFormat("function-pointer switch '%s' holds 0x%llx, outside the text "
                  "segment — refusing to commit",
                  var.name.c_str(), (unsigned long long)target));
  }
  for (size_t si : state->sites) {
    MV_RETURN_IF_ERROR(PatchSiteToCall(&sites_[si], target, &stats));
  }
  state->installed = target;
  ++stats.functions_committed;
  return stats;
}

Result<PatchStats> MultiverseRuntime::RevertFnPtr(FnPtrState* state) {
  PatchStats stats;
  for (auto it = state->sites.rbegin(); it != state->sites.rend(); ++it) {
    MV_RETURN_IF_ERROR(RestoreSite(&sites_[*it], &stats));
  }
  if (state->installed != 0) {
    state->installed = 0;
    ++stats.functions_reverted;
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Transactional wrapper + logical-state snapshots (src/core/txn.h)

struct MultiverseRuntime::SavedState {
  std::vector<Site> sites;
  std::map<uint64_t, FnState> fns;
  std::map<uint64_t, FnPtrState> fnptrs;
};

std::shared_ptr<const MultiverseRuntime::SavedState> MultiverseRuntime::SaveState()
    const {
  auto saved = std::make_shared<SavedState>();
  saved->sites = sites_;
  saved->fns = fns_;
  saved->fnptrs = fnptrs_;
  return saved;
}

void MultiverseRuntime::RestoreState(const SavedState& saved) {
  sites_ = saved.sites;
  fns_ = saved.fns;
  fnptrs_ = saved.fnptrs;
}

Result<PatchStats> MultiverseRuntime::RunTransactional(
    const std::function<Result<PatchStats>()>& op) {
  if (plan_ != nullptr) {
    return op();  // a livepatch session owns atomicity for the whole plan
  }
  std::shared_ptr<const SavedState> saved = SaveState();
  PatchStats patch_stats;
  PatchPlan plan;

  TxnHooks hooks;
  hooks.plan = [&]() -> Result<PatchPlan> {
    RestoreState(*saved);
    plan.clear();
    BeginPlan(&plan);
    Result<PatchStats> planned = op();
    EndPlan();
    if (!planned.ok()) {
      RestoreState(*saved);
      return planned.status();
    }
    patch_stats = *planned;
    return plan;
  };
  hooks.apply = [&](PatchJournal* journal) -> Status {
    for (size_t i = 0; i < journal->size(); ++i) {
      MV_RETURN_IF_ERROR(journal->ApplyOp(i, txn_options_));
    }
    return Status::Ok();
  };
  hooks.restore = [&]() { RestoreState(*saved); };

  MV_RETURN_IF_ERROR(RunCommitTxn(vm_, &image_, txn_options_, hooks, &last_txn_));
  return patch_stats;
}

// ---------------------------------------------------------------------------
// Public API (paper Table 1)

Result<PatchStats> MultiverseRuntime::CommitImpl() {
  PatchStats total;
  for (auto& [addr, fn] : fns_) {
    MV_ASSIGN_OR_RETURN(PatchStats stats, CommitFnState(&fn));
    total.Accumulate(stats);
  }
  for (auto& [addr, state] : fnptrs_) {
    MV_ASSIGN_OR_RETURN(PatchStats stats, CommitFnPtr(&state));
    total.Accumulate(stats);
  }
  return total;
}

Result<PatchStats> MultiverseRuntime::RevertImpl() {
  // Reverse commit order (CommitImpl patches functions, then fn-ptr
  // switches; map iteration ascending), so a full revert un-layers every
  // overlapping window exactly.
  PatchStats total;
  for (auto it = fnptrs_.rbegin(); it != fnptrs_.rend(); ++it) {
    MV_ASSIGN_OR_RETURN(PatchStats stats, RevertFnPtr(&it->second));
    total.Accumulate(stats);
  }
  for (auto it = fns_.rbegin(); it != fns_.rend(); ++it) {
    MV_ASSIGN_OR_RETURN(PatchStats stats, RevertFnState(&it->second));
    total.Accumulate(stats);
  }
  return total;
}

Result<PatchStats> MultiverseRuntime::Commit() {
  return RunTransactional([this] { return CommitImpl(); });
}

Result<PatchStats> MultiverseRuntime::Revert() {
  return RunTransactional([this] { return RevertImpl(); });
}

Result<PatchStats> MultiverseRuntime::CommitFn(uint64_t generic_addr) {
  return RunTransactional([this, generic_addr]() -> Result<PatchStats> {
    auto it = fns_.find(generic_addr);
    if (it == fns_.end()) {
      return Status::NotFound(StrFormat("no multiversed function at 0x%llx",
                                        (unsigned long long)generic_addr));
    }
    return CommitFnState(&it->second);
  });
}

Result<PatchStats> MultiverseRuntime::RevertFn(uint64_t generic_addr) {
  return RunTransactional([this, generic_addr]() -> Result<PatchStats> {
    auto it = fns_.find(generic_addr);
    if (it == fns_.end()) {
      return Status::NotFound(StrFormat("no multiversed function at 0x%llx",
                                        (unsigned long long)generic_addr));
    }
    return RevertFnState(&it->second);
  });
}

Result<PatchStats> MultiverseRuntime::CommitRefs(uint64_t var_addr) {
  return RunTransactional([this, var_addr]() -> Result<PatchStats> {
    return CommitRefsImpl(var_addr);
  });
}

Result<PatchStats> MultiverseRuntime::CommitRefsImpl(uint64_t var_addr) {
  auto fp = fnptrs_.find(var_addr);
  if (fp != fnptrs_.end()) {
    return CommitFnPtr(&fp->second);
  }
  PatchStats total;
  bool found = false;
  for (auto& [addr, fn] : fns_) {
    const RtFunction& desc = table_.functions[fn.desc_index];
    bool references = false;
    for (const RtVariant& variant : desc.variants) {
      for (const RtGuard& guard : variant.guards) {
        if (guard.var_addr == var_addr) {
          references = true;
          break;
        }
      }
      if (references) {
        break;
      }
    }
    if (references) {
      found = true;
      MV_ASSIGN_OR_RETURN(PatchStats stats, CommitFnState(&fn));
      total.Accumulate(stats);
    }
  }
  if (!found && table_.FindVariable(var_addr) == nullptr) {
    return Status::NotFound(
        StrFormat("no configuration switch at 0x%llx", (unsigned long long)var_addr));
  }
  return total;
}

Result<PatchStats> MultiverseRuntime::RevertRefs(uint64_t var_addr) {
  return RunTransactional([this, var_addr]() -> Result<PatchStats> {
    return RevertRefsImpl(var_addr);
  });
}

Result<PatchStats> MultiverseRuntime::RevertRefsImpl(uint64_t var_addr) {
  auto fp = fnptrs_.find(var_addr);
  if (fp != fnptrs_.end()) {
    return RevertFnPtr(&fp->second);
  }
  PatchStats total;
  bool found = false;
  for (auto& [addr, fn] : fns_) {
    const RtFunction& desc = table_.functions[fn.desc_index];
    bool references = false;
    for (const RtVariant& variant : desc.variants) {
      for (const RtGuard& guard : variant.guards) {
        if (guard.var_addr == var_addr) {
          references = true;
          break;
        }
      }
      if (references) {
        break;
      }
    }
    if (references) {
      found = true;
      MV_ASSIGN_OR_RETURN(PatchStats stats, RevertFnState(&fn));
      total.Accumulate(stats);
    }
  }
  if (!found && table_.FindVariable(var_addr) == nullptr) {
    return Status::NotFound(
        StrFormat("no configuration switch at 0x%llx", (unsigned long long)var_addr));
  }
  return total;
}

namespace {

Result<uint64_t> ResolveFnByName(const DescriptorTable& table, const std::string& name) {
  for (const RtFunction& fn : table.functions) {
    if (fn.name == name) {
      return fn.generic_addr;
    }
  }
  return Status::NotFound(StrFormat("no multiversed function named '%s'", name.c_str()));
}

Result<uint64_t> ResolveVarByName(const DescriptorTable& table, const std::string& name) {
  for (const RtVariable& var : table.variables) {
    if (var.name == name) {
      return var.addr;
    }
  }
  return Status::NotFound(StrFormat("no configuration switch named '%s'", name.c_str()));
}

}  // namespace

Result<PatchStats> MultiverseRuntime::CommitFn(const std::string& name) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, ResolveFnByName(table_, name));
  return CommitFn(addr);
}

Result<PatchStats> MultiverseRuntime::RevertFn(const std::string& name) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, ResolveFnByName(table_, name));
  return RevertFn(addr);
}

Result<PatchStats> MultiverseRuntime::CommitRefs(const std::string& var_name) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, ResolveVarByName(table_, var_name));
  return CommitRefs(addr);
}

Result<PatchStats> MultiverseRuntime::RevertRefs(const std::string& var_name) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, ResolveVarByName(table_, var_name));
  return RevertRefs(addr);
}

}  // namespace mv

#include "src/core/runtime.h"

#include "src/core/patching.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "src/isa/isa.h"
#include "src/support/str.h"

namespace mv {

namespace {

constexpr uint8_t kNopByte = static_cast<uint8_t>(Op::kNop);

}  // namespace

Result<MultiverseRuntime> MultiverseRuntime::Attach(Vm* vm, const Image& image) {
  return Attach(vm, image, AttachOptions{});
}

Result<MultiverseRuntime> MultiverseRuntime::Attach(Vm* vm, const Image& image,
                                                    const AttachOptions& options) {
  MultiverseRuntime runtime(vm);
  runtime.image_ = image;
  runtime.txn_options_ = options.txn;
  runtime.plan_cache_enabled_ = options.plan_cache;
  if (options.shared_plan_cache != nullptr) {
    runtime.plan_cache_ = options.shared_plan_cache;
  }
  DescriptorTable::ParseOptions parse_options;
  parse_options.paranoid = options.paranoid;
  MV_ASSIGN_OR_RETURN(runtime.table_,
                      DescriptorTable::Parse(vm->memory(), image, parse_options));
  if (options.paranoid) {
    MV_RETURN_IF_ERROR(ValidateDescriptorTable(runtime.table_, vm->memory(), image));
  }

  // Snapshot the pristine call sites. Each one is also a host-side patch
  // point: the threaded tier records site-pc -> slot maps for any of these
  // ranges it compiles, so protocol commits on compiled traces stay
  // observable.
  for (const RtCallsite& desc : runtime.table_.callsites) {
    Site site;
    site.desc = desc;
    MV_RETURN_IF_ERROR(vm->memory().ReadRaw(desc.site_addr, site.original.data(), 5));
    site.current = site.original;
    runtime.sites_.push_back(site);
    vm->RegisterPatchPoint(desc.site_addr, 5);
  }

  // Function states with their call sites and pristine prologues.
  for (size_t fi = 0; fi < runtime.table_.functions.size(); ++fi) {
    const RtFunction& fn = runtime.table_.functions[fi];
    FnState state;
    state.desc_index = fi;
    MV_RETURN_IF_ERROR(
        vm->memory().ReadRaw(fn.generic_addr, state.saved_prologue.data(), 5));
    // Prologue rewrites (generic -> variant jmp) are patch points too.
    vm->RegisterPatchPoint(fn.generic_addr, 5);
    for (size_t si = 0; si < runtime.sites_.size(); ++si) {
      if (runtime.sites_[si].desc.callee_addr == fn.generic_addr) {
        state.sites.push_back(si);
      }
    }
    runtime.fns_.emplace(fn.generic_addr, std::move(state));
  }

  // Function-pointer switches (paper §4).
  for (size_t vi = 0; vi < runtime.table_.variables.size(); ++vi) {
    const RtVariable& var = runtime.table_.variables[vi];
    if (!var.is_fnptr) {
      continue;
    }
    FnPtrState state;
    state.var_index = vi;
    for (size_t si = 0; si < runtime.sites_.size(); ++si) {
      if (runtime.sites_[si].desc.callee_addr == var.addr) {
        state.sites.push_back(si);
      }
    }
    runtime.fnptrs_.emplace(var.addr, std::move(state));
  }

  // The guard index and dirty sets are derived once from the (immutable
  // post-attach) descriptors; the plan cache starts empty — attach is the
  // first invalidation point.
  runtime.BuildGuardIndex();
  return runtime;
}

// ---------------------------------------------------------------------------
// Guard index (commit fast path, INTERNALS.md §12)

void MultiverseRuntime::BuildGuardIndex() {
  // Variable address -> descriptor index, once (the linear FindVariable scan
  // is exactly what the index exists to avoid).
  std::map<uint64_t, size_t> var_index_by_addr;
  for (size_t vi = 0; vi < table_.variables.size(); ++vi) {
    var_index_by_addr.emplace(table_.variables[vi].addr, vi);
  }

  std::vector<bool> fingerprinted(table_.variables.size(), false);

  for (auto& [generic_addr, fn] : fns_) {
    const RtFunction& desc = table_.functions[fn.desc_index];
    FnIndex index;

    // Referenced variables (descriptor order) + the variable -> functions
    // dirty map. fns_ iterates in ascending generic address — the same order
    // CommitImpl patches in — so CommitRefs via the map preserves layering.
    std::vector<bool> referenced(table_.variables.size(), false);
    for (const RtVariant& variant : desc.variants) {
      for (const RtGuard& guard : variant.guards) {
        auto it = var_index_by_addr.find(guard.var_addr);
        if (it == var_index_by_addr.end()) {
          index.has_unknown_var = true;  // linear scan will surface the error
          continue;
        }
        if (!referenced[it->second]) {
          referenced[it->second] = true;
          var_to_fns_[guard.var_addr].push_back(generic_addr);
        }
      }
    }
    for (size_t vi = 0; vi < referenced.size(); ++vi) {
      if (referenced[vi]) {
        index.var_indexes.push_back(vi);
        fingerprinted[vi] = true;
      }
    }

    if (!index.has_unknown_var) {
      // Per referenced variable: intersect each variant's guards on it into
      // one [lo, hi] (empty if contradictory), then cut the value axis at
      // every boundary. Each resulting interval has a constant viable-variant
      // bitmask, computable by membership of its start point.
      const size_t words = (desc.variants.size() + 63) / 64;
      for (size_t vi : index.var_indexes) {
        const uint64_t var_addr = table_.variables[vi].addr;
        std::vector<int64_t> lo(desc.variants.size(), INT64_MIN);
        std::vector<int64_t> hi(desc.variants.size(), INT64_MAX);
        for (size_t k = 0; k < desc.variants.size(); ++k) {
          for (const RtGuard& guard : desc.variants[k].guards) {
            if (guard.var_addr != var_addr) {
              continue;
            }
            lo[k] = std::max<int64_t>(lo[k], guard.lo);
            hi[k] = std::min<int64_t>(hi[k], guard.hi);
          }
        }
        std::set<int64_t> cuts = {INT64_MIN};
        for (size_t k = 0; k < desc.variants.size(); ++k) {
          if (lo[k] > hi[k]) {
            continue;  // contradictory guards: never viable on this variable
          }
          cuts.insert(lo[k]);
          if (hi[k] < INT64_MAX) {
            cuts.insert(hi[k] + 1);
          }
        }
        VarIntervals table;
        table.starts.assign(cuts.begin(), cuts.end());
        table.masks.resize(table.starts.size(), std::vector<uint64_t>(words, 0));
        for (size_t i = 0; i < table.starts.size(); ++i) {
          const int64_t start = table.starts[i];
          for (size_t k = 0; k < desc.variants.size(); ++k) {
            if (start >= lo[k] && start <= hi[k]) {
              table.masks[i][k / 64] |= 1ull << (k % 64);
            }
          }
        }
        index.tables.push_back(std::move(table));
      }
      index.selectable = true;
    }

    fn_indexes_.emplace(generic_addr, std::move(index));
  }

  // Function-pointer switches participate in the configuration fingerprint
  // by their raw pointer value.
  for (const auto& [var_addr, state] : fnptrs_) {
    fingerprinted[state.var_index] = true;
  }
  for (size_t vi = 0; vi < fingerprinted.size(); ++vi) {
    if (fingerprinted[vi]) {
      fingerprint_vars_.push_back(vi);
    }
  }
}

Status MultiverseRuntime::ReadConfigVector(std::vector<int64_t>* out) const {
  out->assign(table_.variables.size(), 0);
  for (size_t vi : fingerprint_vars_) {
    const RtVariable& var = table_.variables[vi];
    if (var.is_fnptr) {
      uint64_t target = 0;
      MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(var.addr, &target, 8));
      (*out)[vi] = static_cast<int64_t>(target);
    } else {
      MV_ASSIGN_OR_RETURN((*out)[vi], ReadSwitch(var));
    }
  }
  return Status::Ok();
}

Result<uint64_t> MultiverseRuntime::SelectVariantIndexed(
    const FnIndex& index, const RtFunction& desc,
    const std::vector<int64_t>& vals) const {
  const size_t words = (desc.variants.size() + 63) / 64;
  if (desc.variants.empty()) {
    return static_cast<uint64_t>(0);
  }
  std::vector<uint64_t> viable(words, ~0ull);
  const size_t tail_bits = desc.variants.size() % 64;
  if (tail_bits != 0) {
    viable.back() = (1ull << tail_bits) - 1;
  }
  for (size_t t = 0; t < index.tables.size(); ++t) {
    const VarIntervals& table = index.tables[t];
    // Last interval whose start <= value; starts[0] == INT64_MIN, so the
    // search never underflows.
    const auto it = std::upper_bound(table.starts.begin(), table.starts.end(),
                                     vals[t]);
    const size_t interval = static_cast<size_t>(it - table.starts.begin()) - 1;
    bool any = false;
    for (size_t w = 0; w < words; ++w) {
      viable[w] &= table.masks[interval][w];
      any |= viable[w] != 0;
    }
    if (!any) {
      return static_cast<uint64_t>(0);  // generic fallback
    }
  }
  for (size_t w = 0; w < words; ++w) {
    if (viable[w] != 0) {
      size_t bit = 0;
      uint64_t word = viable[w];
      while ((word & 1) == 0) {
        word >>= 1;
        ++bit;
      }
      return desc.variants[w * 64 + bit].fn_addr;
    }
  }
  return static_cast<uint64_t>(0);
}

Result<uint64_t> MultiverseRuntime::SelectVariantLinear(const RtFunction& desc) const {
  for (const RtVariant& variant : desc.variants) {
    bool viable = true;
    for (const RtGuard& guard : variant.guards) {
      const RtVariable* var = table_.FindVariable(guard.var_addr);
      if (var == nullptr) {
        return Status::Internal("guard references unknown variable descriptor");
      }
      MV_ASSIGN_OR_RETURN(const int64_t value, ReadSwitch(*var));
      if (value < guard.lo || value > guard.hi) {
        viable = false;
        break;
      }
    }
    if (viable) {
      return variant.fn_addr;
    }
  }
  return static_cast<uint64_t>(0);
}

std::vector<uint64_t> MultiverseRuntime::FunctionsReferencing(uint64_t var_addr) const {
  auto it = var_to_fns_.find(var_addr);
  return it == var_to_fns_.end() ? std::vector<uint64_t>{} : it->second;
}

Result<uint64_t> MultiverseRuntime::SelectVariantForTest(uint64_t generic_addr,
                                                         bool use_index) {
  auto it = fns_.find(generic_addr);
  if (it == fns_.end()) {
    return Status::NotFound(StrFormat("no multiversed function at 0x%llx",
                                      (unsigned long long)generic_addr));
  }
  const RtFunction& desc = table_.functions[it->second.desc_index];
  const FnIndex& index = fn_indexes_.at(generic_addr);
  if (!use_index || !index.selectable) {
    return SelectVariantLinear(desc);
  }
  std::vector<int64_t> vals;
  vals.reserve(index.var_indexes.size());
  for (size_t vi : index.var_indexes) {
    MV_ASSIGN_OR_RETURN(const int64_t value, ReadSwitch(table_.variables[vi]));
    vals.push_back(value);
  }
  return SelectVariantIndexed(index, desc, vals);
}

Result<std::vector<uint64_t>> MultiverseRuntime::SelectionSignatureNow() {
  std::vector<uint64_t> signature;
  signature.reserve(table_.functions.size());
  for (const RtFunction& desc : table_.functions) {
    MV_ASSIGN_OR_RETURN(const uint64_t variant,
                        SelectVariantForTest(desc.generic_addr, true));
    signature.push_back(variant);
  }
  return signature;
}

void MultiverseRuntime::InvalidatePlanCache() {
  if (plan_cache_->size() > 0) {
    ++fast_stats_.plan_cache_invalidations;
    ++GlobalCommitCounters::Instance().totals.plan_cache_invalidations;
    plan_cache_->Clear();
  }
}

Result<uint64_t> MultiverseRuntime::ConfigFingerprintNow() const {
  std::vector<int64_t> values;
  MV_RETURN_IF_ERROR(ReadConfigVector(&values));
  return ConfigFingerprint(values, descriptor_epoch_);
}

uint64_t MultiverseRuntime::TextChecksum() const {
  std::vector<uint8_t> text(image_.text_size);
  if (!vm_->memory().ReadRaw(image_.text_base, text.data(), text.size()).ok()) {
    return 0;
  }
  uint64_t hash = 1469598103934665603ull;  // FNV-1a
  for (uint8_t byte : text) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

Result<CommitOutcome> MultiverseRuntime::CommitWithOutcome() {
  CommitOutcome outcome;
  MV_ASSIGN_OR_RETURN(outcome.patch, Commit());
  outcome.stats = CommitStatsFromTxn(last_txn_);
  MV_ASSIGN_OR_RETURN(outcome.config_fingerprint, ConfigFingerprintNow());
  return outcome;
}

void MultiverseRuntime::AccumulateApply(const CoalescedApplyStats& stats) {
  fast_stats_.mprotect_calls += stats.mprotect_calls;
  fast_stats_.flush_ranges += stats.flush_ranges;
  fast_stats_.pages_touched += stats.pages_touched;
  CommitFastPathStats& global = GlobalCommitCounters::Instance().totals;
  global.mprotect_calls += stats.mprotect_calls;
  global.flush_ranges += stats.flush_ranges;
  global.pages_touched += stats.pages_touched;
}

Result<int64_t> MultiverseRuntime::ReadSwitch(const RtVariable& variable) const {
  uint64_t raw = 0;
  MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(variable.addr, &raw, variable.width));
  if (variable.is_signed) {
    switch (variable.width) {
      case 1:
        return static_cast<int64_t>(static_cast<int8_t>(raw));
      case 2:
        return static_cast<int64_t>(static_cast<int16_t>(raw));
      case 4:
        return static_cast<int64_t>(static_cast<int32_t>(raw));
      default:
        return static_cast<int64_t>(raw);
    }
  }
  return static_cast<int64_t>(raw);
}

uint64_t MultiverseRuntime::InstalledVariant(uint64_t generic_addr) const {
  auto it = fns_.find(generic_addr);
  return it == fns_.end() ? 0 : it->second.installed;
}

// ---------------------------------------------------------------------------
// Low-level patching

Status MultiverseRuntime::PatchBytes(uint64_t addr, const std::array<uint8_t, 5>& bytes) {
  if (plan_ != nullptr) {
    // Live-patch planning: defer the write. Within one commit every site and
    // prologue is written at most once, so recording the current memory
    // bytes as old_bytes is exact.
    PatchOp op;
    op.addr = addr;
    MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(addr, op.old_bytes.data(), 5));
    op.new_bytes = bytes;
    plan_->push_back(op);
    return Status::Ok();
  }
  // W^X discipline and icache flushing live in PatchCode (§7.2).
  return PatchCode(vm_, addr, bytes);
}

Status MultiverseRuntime::ReadEffective(uint64_t addr,
                                        std::array<uint8_t, 5>* out) const {
  MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(addr, out->data(), out->size()));
  if (plan_ == nullptr) {
    return Status::Ok();
  }
  for (const PatchOp& op : *plan_) {
    for (size_t i = 0; i < out->size(); ++i) {
      const uint64_t a = addr + i;
      if (a >= op.addr && a < op.addr + op.new_bytes.size()) {
        (*out)[i] = op.new_bytes[a - op.addr];
      }
    }
  }
  return Status::Ok();
}

Status MultiverseRuntime::VerifySite(const Site& site) const {
  std::array<uint8_t, 5> now{};
  MV_RETURN_IF_ERROR(ReadEffective(site.desc.site_addr, &now));
  if (now != site.current) {
    return Status::FailedPrecondition(
        StrFormat("call site at 0x%llx does not contain the expected bytes "
                  "(foreign modification?)",
                  (unsigned long long)site.desc.site_addr));
  }
  return Status::Ok();
}

Result<std::array<uint8_t, 5>> MultiverseRuntime::MakeCallBytes(uint64_t site_addr,
                                                                uint64_t target) const {
  return EncodeCallBytes(site_addr, target);
}

std::optional<std::vector<uint8_t>> MultiverseRuntime::TinyBody(uint64_t fn_addr) const {
  return ExtractTinyBody(vm_->memory(), fn_addr);
}

Status MultiverseRuntime::PatchSiteToCall(Site* site, uint64_t target, PatchStats* stats) {
  MV_RETURN_IF_ERROR(VerifySite(*site));

  // Call-site inlining: bodies smaller than the call instruction are copied
  // directly into the site; an empty body is eradicated into NOPs (§4).
  std::optional<std::vector<uint8_t>> tiny = TinyBody(target);
  std::array<uint8_t, 5> bytes{};
  SiteState new_state;
  if (tiny.has_value()) {
    bytes.fill(kNopByte);
    if (!tiny->empty()) {  // an empty (eradicated) body is pure NOPs
      std::memcpy(bytes.data(), tiny->data(), tiny->size());
    }
    new_state = SiteState::kInlined;
  } else {
    MV_ASSIGN_OR_RETURN(bytes, MakeCallBytes(site->desc.site_addr, target));
    new_state = SiteState::kDirectCall;
  }
  if (bytes == site->current) {
    return Status::Ok();  // idempotent commit
  }
  MV_RETURN_IF_ERROR(PatchBytes(site->desc.site_addr, bytes));
  site->current = bytes;
  site->state = new_state;
  if (new_state == SiteState::kInlined) {
    ++stats->callsites_inlined;
  } else {
    ++stats->callsites_patched;
  }
  return Status::Ok();
}

Status MultiverseRuntime::RestoreSite(Site* site, PatchStats* stats) {
  if (site->state == SiteState::kOriginal) {
    return Status::Ok();
  }
  std::array<uint8_t, 5> now{};
  MV_RETURN_IF_ERROR(ReadEffective(site->desc.site_addr, &now));
  if (now != site->current) {
    if (now == site->original) {
      // An overlapping undo already put the pristine bytes back (a call site
      // aliasing a patched generic prologue restores to identical content);
      // reconcile the bookkeeping without another write.
      site->current = site->original;
      site->state = SiteState::kOriginal;
      return Status::Ok();
    }
    return Status::FailedPrecondition(
        StrFormat("call site at 0x%llx does not contain the expected bytes "
                  "(foreign modification?)",
                  (unsigned long long)site->desc.site_addr));
  }
  MV_RETURN_IF_ERROR(PatchBytes(site->desc.site_addr, site->original));
  site->current = site->original;
  site->state = SiteState::kOriginal;
  ++stats->callsites_patched;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Function-level install / revert

Result<PatchStats> MultiverseRuntime::InstallVariant(FnState* fn, uint64_t variant_addr) {
  PatchStats stats;
  const RtFunction& desc = table_.functions[fn->desc_index];

  // Patch all recorded call sites.
  for (size_t si : fn->sites) {
    MV_RETURN_IF_ERROR(PatchSiteToCall(&sites_[si], variant_addr, &stats));
  }

  // Redirect the generic entry so that indirect and foreign calls also reach
  // the committed variant (completeness, §7.4).
  const int64_t rel = static_cast<int64_t>(variant_addr) -
                      static_cast<int64_t>(desc.generic_addr + kJmpInsnSize);
  if (rel > INT32_MAX || rel < INT32_MIN) {
    return Status::OutOfRange("variant out of jmp rel32 range");
  }
  std::vector<uint8_t> encoded;
  Result<int> size = Encode(MakeJmp(static_cast<int32_t>(rel)), &encoded);
  if (!size.ok()) {
    return size.status();
  }
  std::array<uint8_t, 5> jmp{};
  std::memcpy(jmp.data(), encoded.data(), 5);
  MV_RETURN_IF_ERROR(PatchBytes(desc.generic_addr, jmp));
  fn->prologue_patched = true;
  ++stats.prologues_patched;

  fn->installed = variant_addr;
  ++stats.functions_committed;
  return stats;
}

Result<PatchStats> MultiverseRuntime::RevertFnState(FnState* fn) {
  PatchStats stats;
  // The generic state is not a committed evaluation; the next commit must
  // re-run selection. (The fallback path in CommitFnState re-marks after.)
  fn->evaluated = false;
  fn->last_eval_values.clear();
  // Undo in reverse apply order (InstallVariant patches sites first, the
  // prologue last): the prologue comes off first, then the sites from last
  // to first, so overlapping windows — a recorded call site inside a patched
  // prologue range, tiny-body-inlined or not — un-layer exactly.
  if (fn->prologue_patched) {
    const RtFunction& desc = table_.functions[fn->desc_index];
    MV_RETURN_IF_ERROR(PatchBytes(desc.generic_addr, fn->saved_prologue));
    fn->prologue_patched = false;
    ++stats.prologues_patched;
  }
  for (auto it = fn->sites.rbegin(); it != fn->sites.rend(); ++it) {
    MV_RETURN_IF_ERROR(RestoreSite(&sites_[*it], &stats));
  }
  if (fn->installed != 0) {
    fn->installed = 0;
    ++stats.functions_reverted;
  }
  return stats;
}

Result<PatchStats> MultiverseRuntime::CommitFnState(FnState* fn,
                                                    const std::vector<int64_t>* values) {
  const RtFunction& desc = table_.functions[fn->desc_index];
  const FnIndex& index = fn_indexes_.at(desc.generic_addr);
  CommitFastPathStats& global = GlobalCommitCounters::Instance().totals;

  // Current values of the referenced switches: the dirty-set key and the
  // indexed-selection input.
  std::vector<int64_t> vals;
  if (!index.has_unknown_var) {
    vals.reserve(index.var_indexes.size());
    for (size_t vi : index.var_indexes) {
      if (values != nullptr) {
        vals.push_back((*values)[vi]);
      } else {
        MV_ASSIGN_OR_RETURN(const int64_t value, ReadSwitch(table_.variables[vi]));
        vals.push_back(value);
      }
    }
    if (fn->evaluated && vals == fn->last_eval_values) {
      // Dirty-set skip: no referenced switch changed since the last
      // evaluation, so the installed binding is already the one selection
      // would pick. Report the standing outcome without re-deriving it.
      ++fast_stats_.fns_skipped;
      ++global.fns_skipped;
      PatchStats stats;
      if (fn->installed != 0) {
        ++stats.functions_committed;
      } else {
        ++stats.generic_fallbacks;
      }
      return stats;
    }
  }
  ++fast_stats_.fns_reevaluated;
  ++global.fns_reevaluated;

  // Select the first viable variant (§4): binary search through the guard
  // index when usable, the reference linear scan otherwise.
  uint64_t selected = 0;
  if (index.selectable) {
    MV_ASSIGN_OR_RETURN(selected, SelectVariantIndexed(index, desc, vals));
  } else {
    MV_ASSIGN_OR_RETURN(selected, SelectVariantLinear(desc));
  }

  fn->evaluated = false;
  Result<PatchStats> result = PatchStats{};
  if (selected != 0) {
    result = InstallVariant(fn, selected);
  } else {
    // No suitable variant: revert to the generic function, which exhibits the
    // correct behaviour for any value, and signal the situation (Figure 3 d).
    result = RevertFnState(fn);
    if (result.ok()) {
      ++result.value().generic_fallbacks;
    }
  }
  if (result.ok() && !index.has_unknown_var) {
    fn->last_eval_values = std::move(vals);
    fn->evaluated = true;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Function-pointer switches

Result<PatchStats> MultiverseRuntime::CommitFnPtr(FnPtrState* state) {
  PatchStats stats;
  const RtVariable& var = table_.variables[state->var_index];
  uint64_t target = 0;
  MV_RETURN_IF_ERROR(vm_->memory().ReadRaw(var.addr, &target, 8));
  CommitFastPathStats& global = GlobalCommitCounters::Instance().totals;
  if (state->evaluated && target == state->last_target) {
    // Dirty-set skip: the pointer has not moved since the last evaluation.
    // (A null pointer was a generic fallback regardless of what is still
    // burnt into the sites — legacy leaves them in place.)
    ++fast_stats_.fns_skipped;
    ++global.fns_skipped;
    if (state->last_target != 0) {
      ++stats.functions_committed;
    } else {
      ++stats.generic_fallbacks;
    }
    return stats;
  }
  ++fast_stats_.fns_reevaluated;
  ++global.fns_reevaluated;
  state->evaluated = false;
  if (target == 0) {
    // Null function pointer: leave the indirect call in place.
    ++stats.generic_fallbacks;
    state->last_target = 0;
    state->evaluated = true;
    return stats;
  }
  // The pointer value is runtime data, not compiler-emitted metadata — it
  // can hold anything. Refuse to burn a direct call to an address outside
  // the text segment into the image.
  if (target < image_.text_base || target >= image_.text_base + image_.text_size) {
    return Status::FailedPrecondition(
        StrFormat("function-pointer switch '%s' holds 0x%llx, outside the text "
                  "segment — refusing to commit",
                  var.name.c_str(), (unsigned long long)target));
  }
  for (size_t si : state->sites) {
    MV_RETURN_IF_ERROR(PatchSiteToCall(&sites_[si], target, &stats));
  }
  state->installed = target;
  state->last_target = target;
  state->evaluated = true;
  ++stats.functions_committed;
  return stats;
}

Result<PatchStats> MultiverseRuntime::RevertFnPtr(FnPtrState* state) {
  PatchStats stats;
  state->evaluated = false;
  state->last_target = 0;
  for (auto it = state->sites.rbegin(); it != state->sites.rend(); ++it) {
    MV_RETURN_IF_ERROR(RestoreSite(&sites_[*it], &stats));
  }
  if (state->installed != 0) {
    state->installed = 0;
    ++stats.functions_reverted;
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Transactional wrapper + logical-state snapshots (src/core/txn.h)

struct RuntimeSnapshot {
  std::vector<MultiverseRuntime::Site> sites;
  std::map<uint64_t, MultiverseRuntime::FnState> fns;
  std::map<uint64_t, MultiverseRuntime::FnPtrState> fnptrs;
};

std::shared_ptr<const MultiverseRuntime::SavedState> MultiverseRuntime::SaveState()
    const {
  auto saved = std::make_shared<SavedState>();
  saved->sites = sites_;
  saved->fns = fns_;
  saved->fnptrs = fnptrs_;
  return saved;
}

void MultiverseRuntime::RestoreStateInternal(const SavedState& saved) {
  sites_ = saved.sites;
  fns_ = saved.fns;
  fnptrs_ = saved.fnptrs;
}

void MultiverseRuntime::RestoreState(const SavedState& saved) {
  RestoreStateInternal(saved);
  // A rewind from outside the fast path (livepatch rollback, tests): the
  // text is no longer known to be a pure function of the switch vector, and
  // memoized diffs planned against the abandoned state chain are suspect.
  state_token_ = StateToken::Unknown();
  InvalidatePlanCache();
}

Result<PatchStats> MultiverseRuntime::RunTransactional(
    const std::function<Result<PatchStats>()>& op) {
  if (plan_ != nullptr) {
    return op();  // a livepatch session owns atomicity for the whole plan
  }
  std::shared_ptr<const SavedState> saved = SaveState();
  PatchStats patch_stats;
  PatchPlan plan;

  TxnHooks hooks;
  hooks.plan = [&]() -> Result<PatchPlan> {
    RestoreStateInternal(*saved);
    plan.clear();
    BeginPlan(&plan);
    Result<PatchStats> planned = op();
    EndPlan();
    if (!planned.ok()) {
      RestoreStateInternal(*saved);
      return planned.status();
    }
    patch_stats = *planned;
    return plan;
  };
  hooks.apply = [&](PatchJournal* journal) -> Status {
    CoalescedApplyStats apply_stats;
    Status status = journal->ApplyCoalesced(txn_options_, &apply_stats);
    AccumulateApply(apply_stats);
    return status;
  };
  hooks.restore = [&]() {
    RestoreStateInternal(*saved);
    InvalidatePlanCache();  // a rollback poisons every memoized plan
  };

  MV_RETURN_IF_ERROR(RunCommitTxn(vm_, &image_, txn_options_, hooks, &last_txn_));
  return patch_stats;
}

// ---------------------------------------------------------------------------
// Public API (paper Table 1)

Result<PatchStats> MultiverseRuntime::CommitImpl(const std::vector<int64_t>* values) {
  PatchStats total;
  for (auto& [addr, fn] : fns_) {
    MV_ASSIGN_OR_RETURN(PatchStats stats, CommitFnState(&fn, values));
    total.Accumulate(stats);
  }
  for (auto& [addr, state] : fnptrs_) {
    MV_ASSIGN_OR_RETURN(PatchStats stats, CommitFnPtr(&state));
    total.Accumulate(stats);
  }
  return total;
}

Result<PatchStats> MultiverseRuntime::RevertImpl() {
  // Reverse commit order (CommitImpl patches functions, then fn-ptr
  // switches; map iteration ascending), so a full revert un-layers every
  // overlapping window exactly.
  PatchStats total;
  for (auto it = fnptrs_.rbegin(); it != fnptrs_.rend(); ++it) {
    MV_ASSIGN_OR_RETURN(PatchStats stats, RevertFnPtr(&it->second));
    total.Accumulate(stats);
  }
  for (auto it = fns_.rbegin(); it != fns_.rend(); ++it) {
    MV_ASSIGN_OR_RETURN(PatchStats stats, RevertFnState(&it->second));
    total.Accumulate(stats);
  }
  return total;
}

Result<PatchStats> MultiverseRuntime::Commit() {
  if (plan_ != nullptr) {
    // Livepatch sessions own atomicity and sequencing (the txn fast path
    // would bypass the session's journal), but planning still composes with
    // the plan cache: a warm live commit replays the memoized plan.
    return CommitPlanned();
  }
  std::vector<int64_t> values;
  Status read = ReadConfigVector(&values);
  if (!read.ok()) {
    // A switch read failed (out-of-bounds descriptor with paranoid
    // validation off). Fall back to the legacy path so the error surface —
    // which tests pin — is identical to pre-fast-path behaviour.
    return RunTransactional([this] { return CommitImpl(nullptr); });
  }
  return CommitFast(values);
}

Result<PatchStats> MultiverseRuntime::CommitPlanned() {
  std::vector<int64_t> values;
  if (!plan_cache_enabled_ || !ReadConfigVector(&values).ok()) {
    return CommitImpl(nullptr);
  }
  const uint64_t fingerprint = ConfigFingerprint(values, descriptor_epoch_);
  // BeginPlan conservatively set state_token_ to Unknown; for a *full*
  // planned commit the stashed pre-plan token is the cache key.
  const StateToken pre_state = pre_plan_token_;
  const PlanCache::Entry* hit =
      plan_cache_->Lookup(pre_state, fingerprint, values);
  if (hit != nullptr) {
    // Probe-validate the memoized plan against the current text before
    // trusting it, exactly like CommitFast: a stale entry falls back to a
    // cold replan instead of handing the live protocol wrong old-bytes.
    Result<PatchJournal> probe =
        PatchJournal::Begin(vm_, &image_, hit->plan, /*validate=*/true);
    if (probe.ok()) {
      ++fast_stats_.plan_cache_hits;
      ++GlobalCommitCounters::Instance().totals.plan_cache_hits;
      *plan_ = hit->plan;
      PatchStats stats = hit->stats;
      // Memoized post-commit bookkeeping replaces selection replay. The
      // session's journal still applies (and can roll back) the bytes; a
      // rollback restores the caller's saved pre-state and poisons the
      // cache, so this early restore never outlives a failed apply.
      RestoreStateInternal(*hit->post_state);
      state_token_ = StateToken::Config(hit->values);
      return stats;
    }
    plan_cache_->EvictMatching(pre_state, fingerprint, values);
    ++fast_stats_.plan_cache_evictions;
    ++GlobalCommitCounters::Instance().totals.plan_cache_evictions;
  }
  Result<PatchStats> planned = CommitImpl(&values);
  if (!planned.ok()) {
    return planned;
  }
  ++fast_stats_.plan_cache_misses;
  ++GlobalCommitCounters::Instance().totals.plan_cache_misses;
  if (pre_state.kind != StateToken::Kind::kUnknown) {
    PlanCache::Entry entry;
    entry.fingerprint = fingerprint;
    entry.pre_state = pre_state;
    entry.values = values;
    entry.plan = *plan_;
    entry.stats = *planned;
    entry.post_state = SaveState();
    plan_cache_->Insert(std::move(entry));
  }
  state_token_ = StateToken::Config(values);
  return planned;
}

Result<PatchStats> MultiverseRuntime::CommitFast(const std::vector<int64_t>& values) {
  const uint64_t fingerprint = ConfigFingerprint(values, descriptor_epoch_);
  const StateToken pre_state = state_token_;

  // Copy the entry out: hooks.restore clears the cache, which would leave a
  // Lookup pointer dangling mid-transaction.
  PlanCache::Entry cached;
  bool try_cached = false;
  if (plan_cache_enabled_) {
    const PlanCache::Entry* hit = plan_cache_->Lookup(pre_state, fingerprint, values);
    if (hit != nullptr) {
      cached = *hit;
      try_cached = true;
    }
  }

  std::shared_ptr<const SavedState> saved = SaveState();
  PatchStats patch_stats;
  PatchPlan plan;
  bool used_cached = false;

  TxnHooks hooks;
  hooks.plan = [&]() -> Result<PatchPlan> {
    if (try_cached) {
      // Probe-validate the memoized plan before handing it to the
      // transaction: RunCommitTxn treats validation failure as fatal (no
      // retry), but a stale plan should fall back to a cold replan, not
      // surface an error the uncached path would never produce.
      Result<PatchJournal> probe =
          PatchJournal::Begin(vm_, &image_, cached.plan, /*validate=*/true);
      if (probe.ok()) {
        used_cached = true;
        patch_stats = cached.stats;
        return cached.plan;
      }
      plan_cache_->EvictMatching(pre_state, fingerprint, values);
      ++fast_stats_.plan_cache_evictions;
      ++GlobalCommitCounters::Instance().totals.plan_cache_evictions;
      try_cached = false;
    }
    used_cached = false;
    plan.clear();
    RestoreStateInternal(*saved);
    BeginPlan(&plan);
    Result<PatchStats> planned = CommitImpl(&values);
    EndPlan();
    if (!planned.ok()) {
      RestoreStateInternal(*saved);
      return planned.status();
    }
    patch_stats = *planned;
    return plan;
  };
  hooks.apply = [&](PatchJournal* journal) -> Status {
    CoalescedApplyStats apply_stats;
    Status status = journal->ApplyCoalesced(txn_options_, &apply_stats);
    AccumulateApply(apply_stats);
    return status;
  };
  hooks.restore = [&]() {
    RestoreStateInternal(*saved);
    InvalidatePlanCache();  // rollback: all memoized diffs are now suspect
    try_cached = false;
    used_cached = false;
  };

  Status status = RunCommitTxn(vm_, &image_, txn_options_, hooks, &last_txn_);
  if (!status.ok()) {
    // hooks.restore already rewound the bookkeeping; the text may still hold
    // partially-rolled-back bytes if even the rollback failed, so refuse to
    // assume anything about it.
    state_token_ = StateToken::Unknown();
    return status;
  }

  if (used_cached) {
    ++fast_stats_.plan_cache_hits;
    ++GlobalCommitCounters::Instance().totals.plan_cache_hits;
    // Restore the memoized post-commit bookkeeping instead of replaying
    // selection — that is the entire point of the hit.
    RestoreStateInternal(*cached.post_state);
    state_token_ = StateToken::Config(cached.values);
    return cached.stats;
  }

  state_token_ = StateToken::Config(values);
  if (plan_cache_enabled_) {
    ++fast_stats_.plan_cache_misses;
    ++GlobalCommitCounters::Instance().totals.plan_cache_misses;
    if (pre_state.kind != StateToken::Kind::kUnknown) {
      PlanCache::Entry entry;
      entry.fingerprint = fingerprint;
      entry.pre_state = pre_state;
      entry.values = values;
      entry.plan = plan;
      entry.stats = patch_stats;
      entry.post_state = SaveState();
      plan_cache_->Insert(std::move(entry));
    }
  }
  return patch_stats;
}

Result<PatchStats> MultiverseRuntime::Revert() {
  const bool planning = plan_ != nullptr;
  Result<PatchStats> result = RunTransactional([this] { return RevertImpl(); });
  if (!planning) {
    // A full revert lands on the fully-generic state — a perfectly cacheable
    // pre-state for the next commit. Failure leaves the text indeterminate.
    state_token_ = result.ok() ? StateToken::Generic() : StateToken::Unknown();
  }
  return result;
}

Result<PatchStats> MultiverseRuntime::CommitFn(uint64_t generic_addr) {
  MarkPartialOp();
  return RunTransactional([this, generic_addr]() -> Result<PatchStats> {
    auto it = fns_.find(generic_addr);
    if (it == fns_.end()) {
      return Status::NotFound(StrFormat("no multiversed function at 0x%llx",
                                        (unsigned long long)generic_addr));
    }
    return CommitFnState(&it->second);
  });
}

Result<PatchStats> MultiverseRuntime::RevertFn(uint64_t generic_addr) {
  MarkPartialOp();
  return RunTransactional([this, generic_addr]() -> Result<PatchStats> {
    auto it = fns_.find(generic_addr);
    if (it == fns_.end()) {
      return Status::NotFound(StrFormat("no multiversed function at 0x%llx",
                                        (unsigned long long)generic_addr));
    }
    return RevertFnState(&it->second);
  });
}

Result<PatchStats> MultiverseRuntime::CommitRefs(uint64_t var_addr) {
  MarkPartialOp();
  return RunTransactional([this, var_addr]() -> Result<PatchStats> {
    return CommitRefsImpl(var_addr);
  });
}

Result<PatchStats> MultiverseRuntime::CommitRefsImpl(uint64_t var_addr) {
  auto fp = fnptrs_.find(var_addr);
  if (fp != fnptrs_.end()) {
    return CommitFnPtr(&fp->second);
  }
  // The guard index's reverse map answers "who references this switch"
  // directly — no variant x guard scan (ISSUE.md tentpole part 2).
  PatchStats total;
  bool found = false;
  auto refs = var_to_fns_.find(var_addr);
  if (refs != var_to_fns_.end()) {
    for (uint64_t fn_addr : refs->second) {
      found = true;
      MV_ASSIGN_OR_RETURN(PatchStats stats, CommitFnState(&fns_.at(fn_addr)));
      total.Accumulate(stats);
    }
  }
  if (!found && table_.FindVariable(var_addr) == nullptr) {
    return Status::NotFound(
        StrFormat("no configuration switch at 0x%llx", (unsigned long long)var_addr));
  }
  return total;
}

Result<PatchStats> MultiverseRuntime::RevertRefs(uint64_t var_addr) {
  MarkPartialOp();
  return RunTransactional([this, var_addr]() -> Result<PatchStats> {
    return RevertRefsImpl(var_addr);
  });
}

Result<PatchStats> MultiverseRuntime::RevertRefsImpl(uint64_t var_addr) {
  auto fp = fnptrs_.find(var_addr);
  if (fp != fnptrs_.end()) {
    return RevertFnPtr(&fp->second);
  }
  PatchStats total;
  bool found = false;
  auto refs = var_to_fns_.find(var_addr);
  if (refs != var_to_fns_.end()) {
    for (uint64_t fn_addr : refs->second) {
      found = true;
      MV_ASSIGN_OR_RETURN(PatchStats stats, RevertFnState(&fns_.at(fn_addr)));
      total.Accumulate(stats);
    }
  }
  if (!found && table_.FindVariable(var_addr) == nullptr) {
    return Status::NotFound(
        StrFormat("no configuration switch at 0x%llx", (unsigned long long)var_addr));
  }
  return total;
}

namespace {

Result<uint64_t> ResolveFnByName(const DescriptorTable& table, const std::string& name) {
  for (const RtFunction& fn : table.functions) {
    if (fn.name == name) {
      return fn.generic_addr;
    }
  }
  return Status::NotFound(StrFormat("no multiversed function named '%s'", name.c_str()));
}

Result<uint64_t> ResolveVarByName(const DescriptorTable& table, const std::string& name) {
  for (const RtVariable& var : table.variables) {
    if (var.name == name) {
      return var.addr;
    }
  }
  return Status::NotFound(StrFormat("no configuration switch named '%s'", name.c_str()));
}

}  // namespace

Result<PatchStats> MultiverseRuntime::CommitFn(const std::string& name) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, ResolveFnByName(table_, name));
  return CommitFn(addr);
}

Result<PatchStats> MultiverseRuntime::RevertFn(const std::string& name) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, ResolveFnByName(table_, name));
  return RevertFn(addr);
}

Result<PatchStats> MultiverseRuntime::CommitRefs(const std::string& var_name) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, ResolveVarByName(table_, var_name));
  return CommitRefs(addr);
}

Result<PatchStats> MultiverseRuntime::RevertRefs(const std::string& var_name) {
  MV_ASSIGN_OR_RETURN(const uint64_t addr, ResolveVarByName(table_, var_name));
  return RevertRefs(addr);
}

}  // namespace mv

#include "src/core/journal.h"

#include <cstring>
#include <map>
#include <utility>

#include "src/support/faultpoint.h"
#include "src/vm/memory.h"

namespace mv {

namespace {

constexpr uint8_t kMagic0 = 0x4D;  // "MW" — multiverse WAL
constexpr uint8_t kMagic1 = 0x57;
constexpr size_t kHeaderSize = 7;    // magic(2) + kind(1) + payload len(4)
constexpr size_t kChecksumSize = 8;  // FNV-1a over kind + len + payload
constexpr uint32_t kOpWindow = 5;    // every PatchOp rewrites one 5-byte window
constexpr uint64_t kMaxOpsPerTxn = 1u << 20;

// Fixed payload size per record kind; the parser rejects any other length.
size_t PayloadSize(WalRecordKind kind) {
  switch (kind) {
    case WalRecordKind::kTxnBegin:
      return 24;  // txn_id(8) op_count(8) pre_checksum(8)
    case WalRecordKind::kOp:
      return 35;  // txn_id(8) op_index(8) addr(8) perms(1) old(5) new(5)
    case WalRecordKind::kSeal:
      return 16;  // txn_id(8) post_checksum(8)
    case WalRecordKind::kAbort:
      return 8;  // txn_id(8)
    case WalRecordKind::kSwitchSet:
      return 28;  // addr(8) width(4) old(8) new(8)
    case WalRecordKind::kRecovery:
      return 16;  // post_checksum(8) flags(8)
  }
  return 0;
}

bool ValidKind(uint8_t raw) {
  return raw >= static_cast<uint8_t>(WalRecordKind::kTxnBegin) &&
         raw <= static_cast<uint8_t>(WalRecordKind::kRecovery);
}

uint64_t Fnv64(const uint8_t* data, size_t len) {
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

void Put32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Put64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t Get32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t Get64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

const char* WalRecordKindName(WalRecordKind kind) {
  switch (kind) {
    case WalRecordKind::kTxnBegin:
      return "txn-begin";
    case WalRecordKind::kOp:
      return "op";
    case WalRecordKind::kSeal:
      return "seal";
    case WalRecordKind::kAbort:
      return "abort";
    case WalRecordKind::kSwitchSet:
      return "switch-set";
    case WalRecordKind::kRecovery:
      return "recovery";
  }
  return "?";
}

bool IsSimulatedCrash(const Status& status) {
  return !status.ok() &&
         status.message().find("simulated crash") != std::string::npos;
}

Status DurableJournal::AppendRecord(WalRecordKind kind,
                                    const std::vector<uint8_t>& payload) {
  if (dead_) {
    return Status::Internal(
        "simulated crash: instance already dead (journal closed)");
  }
  std::vector<uint8_t> record;
  record.reserve(kHeaderSize + payload.size() + kChecksumSize);
  record.push_back(kMagic0);
  record.push_back(kMagic1);
  record.push_back(static_cast<uint8_t>(kind));
  Put32(&record, static_cast<uint32_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  Put64(&record, Fnv64(record.data() + 2, record.size() - 2));

  // The crash injection point: the instance dies either at the entry
  // boundary (record never reaches the log) or mid-record (a torn prefix
  // does). Either way the process is gone — the caller must propagate the
  // status without any cleanup.
  FaultInjector& injector = FaultInjector::Instance();
  const bool boundary = injector.ShouldFail(FaultSite::kCrash);
  const bool torn = injector.ShouldFail(FaultSite::kCrashTorn);
  if (boundary || torn) {
    if (torn) {
      size_t prefix = record.size() / 2;
      if (prefix == 0) {
        prefix = 1;
      }
      bytes_.insert(bytes_.end(), record.begin(), record.begin() + prefix);
    }
    dead_ = true;
    return Status::Internal(
        std::string("simulated crash: instance died ") +
        (torn ? "mid-record (torn " : "at the entry boundary (") +
        WalRecordKindName(kind) +
        (torn ? " prefix left in the log)" : " record never written)"));
  }
  bytes_.insert(bytes_.end(), record.begin(), record.end());
  return Status::Ok();
}

Status DurableJournal::AppendTxnBegin(uint64_t txn_id, uint64_t op_count,
                                      uint64_t pre_text_checksum) {
  std::vector<uint8_t> payload;
  Put64(&payload, txn_id);
  Put64(&payload, op_count);
  Put64(&payload, pre_text_checksum);
  return AppendRecord(WalRecordKind::kTxnBegin, payload);
}

Status DurableJournal::AppendOp(uint64_t txn_id, uint64_t op_index,
                                uint64_t addr, uint8_t perms,
                                const uint8_t* old_bytes,
                                const uint8_t* new_bytes, uint32_t width) {
  if (width != kOpWindow) {
    return Status::InvalidArgument("journal: op record width must be " +
                                   std::to_string(kOpWindow));
  }
  std::vector<uint8_t> payload;
  Put64(&payload, txn_id);
  Put64(&payload, op_index);
  Put64(&payload, addr);
  payload.push_back(perms);
  payload.insert(payload.end(), old_bytes, old_bytes + width);
  payload.insert(payload.end(), new_bytes, new_bytes + width);
  return AppendRecord(WalRecordKind::kOp, payload);
}

Status DurableJournal::AppendSeal(uint64_t txn_id,
                                  uint64_t post_text_checksum) {
  std::vector<uint8_t> payload;
  Put64(&payload, txn_id);
  Put64(&payload, post_text_checksum);
  return AppendRecord(WalRecordKind::kSeal, payload);
}

Status DurableJournal::AppendAbort(uint64_t txn_id) {
  std::vector<uint8_t> payload;
  Put64(&payload, txn_id);
  return AppendRecord(WalRecordKind::kAbort, payload);
}

Status DurableJournal::AppendSwitchSet(uint64_t addr, uint32_t width,
                                       uint64_t old_value,
                                       uint64_t new_value) {
  std::vector<uint8_t> payload;
  Put64(&payload, addr);
  Put32(&payload, width);
  Put64(&payload, old_value);
  Put64(&payload, new_value);
  return AppendRecord(WalRecordKind::kSwitchSet, payload);
}

Status DurableJournal::AppendRecovery(uint64_t post_text_checksum) {
  std::vector<uint8_t> payload;
  Put64(&payload, post_text_checksum);
  Put64(&payload, 0);
  return AppendRecord(WalRecordKind::kRecovery, payload);
}

std::vector<WalRecord> DurableJournal::Parse(size_t* torn_tail_bytes) const {
  std::vector<WalRecord> out;
  size_t pos = 0;
  while (true) {
    if (bytes_.size() - pos < kHeaderSize + kChecksumSize) {
      break;  // clean end (pos == size) or a torn/truncated header
    }
    const uint8_t* p = bytes_.data() + pos;
    if (p[0] != kMagic0 || p[1] != kMagic1 || !ValidKind(p[2])) {
      break;
    }
    const WalRecordKind kind = static_cast<WalRecordKind>(p[2]);
    const uint32_t len = Get32(p + 3);
    if (len != PayloadSize(kind) ||
        bytes_.size() - pos < kHeaderSize + len + kChecksumSize) {
      break;
    }
    const uint64_t want = Get64(p + kHeaderSize + len);
    if (Fnv64(p + 2, kHeaderSize - 2 + len) != want) {
      break;  // bit flip or torn rewrite — everything from here is lost
    }
    const uint8_t* body = p + kHeaderSize;
    WalRecord record;
    record.kind = kind;
    switch (kind) {
      case WalRecordKind::kTxnBegin:
        record.txn_id = Get64(body);
        record.op_count = Get64(body + 8);
        record.checksum = Get64(body + 16);
        break;
      case WalRecordKind::kOp:
        record.txn_id = Get64(body);
        record.op_index = Get64(body + 8);
        record.addr = Get64(body + 16);
        record.perms = body[24];
        record.width = kOpWindow;
        std::memcpy(record.old_bytes.data(), body + 25, kOpWindow);
        std::memcpy(record.new_bytes.data(), body + 30, kOpWindow);
        break;
      case WalRecordKind::kSeal:
        record.txn_id = Get64(body);
        record.checksum = Get64(body + 8);
        break;
      case WalRecordKind::kAbort:
        record.txn_id = Get64(body);
        break;
      case WalRecordKind::kSwitchSet:
        record.addr = Get64(body);
        record.width = Get32(body + 8);
        std::memcpy(record.old_bytes.data(), body + 12, 8);
        std::memcpy(record.new_bytes.data(), body + 20, 8);
        break;
      case WalRecordKind::kRecovery:
        record.checksum = Get64(body);
        break;
    }
    out.push_back(record);
    pos += kHeaderSize + len + kChecksumSize;
  }
  if (torn_tail_bytes != nullptr) {
    *torn_tail_bytes = bytes_.size() - pos;
  }
  return out;
}

size_t DurableJournal::record_count() const {
  size_t torn = 0;
  return Parse(&torn).size();
}

void DurableJournal::TruncateTo(size_t size) {
  if (size < bytes_.size()) {
    bytes_.resize(size);
  }
}

uint64_t TextChecksumOf(const Vm& vm, const Image& image) {
  std::vector<uint8_t> text(image.text_size);
  if (!vm.memory().ReadRaw(image.text_base, text.data(), text.size()).ok()) {
    return 0;
  }
  return Fnv64(text.data(), text.size());
}

namespace {

Status WritePatchWindow(Vm* vm, const WalRecord& record, bool forward) {
  Memory& memory = vm->memory();
  const uint8_t* data =
      forward ? record.new_bytes.data() : record.old_bytes.data();
  MV_RETURN_IF_ERROR(memory.WriteRaw(record.addr, data, record.width));
  // Restore the journaled pre-transaction protection unconditionally: a
  // crash inside a page batch can leave text pages writable, and the op
  // record is the only surviving perms snapshot.
  MV_RETURN_IF_ERROR(memory.Protect(record.addr, record.width, record.perms));
  vm->FlushIcache(record.addr, record.width);
  return Status::Ok();
}

}  // namespace

Result<RecoveryOutcome> RecoverFromJournal(Vm* vm, const Image* image,
                                           DurableJournal* journal) {
  // The restart reopens the journal: the process that died is gone, the log
  // bytes are what survived.
  journal->Revive();

  RecoveryOutcome outcome;
  std::vector<WalRecord> records = journal->Parse(&outcome.torn_tail_bytes);

  // Pass 1 — structural validation, zero writes. The surviving prefix must
  // describe a replayable history; anything else is a structured reject.
  const Memory& memory = vm->memory();
  bool txn_open = false;
  uint64_t open_txn = 0;
  uint64_t open_op_count = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const WalRecord& r = records[i];
    const std::string at = "journal record " + std::to_string(i) + " (" +
                           WalRecordKindName(r.kind) + ")";
    switch (r.kind) {
      case WalRecordKind::kTxnBegin:
        if (txn_open) {
          return Status::InvalidArgument("recovery: " + at +
                                         " begins a txn inside an open txn");
        }
        if (r.op_count > kMaxOpsPerTxn) {
          return Status::InvalidArgument("recovery: " + at +
                                         " op count implausible");
        }
        txn_open = true;
        open_txn = r.txn_id;
        open_op_count = r.op_count;
        break;
      case WalRecordKind::kOp:
        if (!txn_open || r.txn_id != open_txn) {
          return Status::InvalidArgument("recovery: " + at +
                                         " outside its transaction");
        }
        if (r.op_index >= open_op_count) {
          return Status::InvalidArgument("recovery: " + at +
                                         " op index beyond txn op count");
        }
        if (r.addr >= memory.size() ||
            r.width > memory.size() - r.addr) {
          return Status::OutOfRange("recovery: " + at +
                                    " outside guest memory");
        }
        if (image != nullptr &&
            (r.addr < image->text_base ||
             r.addr + r.width > image->text_base + image->text_size)) {
          return Status::FailedPrecondition(
              "recovery: " + at + " outside the image text segment");
        }
        break;
      case WalRecordKind::kSeal:
      case WalRecordKind::kAbort:
        if (!txn_open || r.txn_id != open_txn) {
          return Status::InvalidArgument("recovery: " + at +
                                         " closes no open transaction");
        }
        txn_open = false;
        break;
      case WalRecordKind::kSwitchSet:
        if (txn_open) {
          return Status::InvalidArgument(
              "recovery: " + at + " switch write inside an open txn");
        }
        if (r.width == 0 || r.width > 8 || r.addr >= memory.size() ||
            r.width > memory.size() - r.addr) {
          return Status::OutOfRange("recovery: " + at +
                                    " switch write outside guest memory");
        }
        break;
      case WalRecordKind::kRecovery:
        // A previous restart resolved everything before this marker —
        // including an unsealed tail it undid, so an open txn closes here.
        txn_open = false;
        break;
    }
  }

  // Pass 2 — replay. Records partition into groups ended by a resolving
  // record: kSeal (redo the group), kAbort (the in-process rollback already
  // zeroed the txn's text effect; its switch writes stand — the caller's
  // restore writes follow as their own records), kRecovery (a previous
  // restart already resolved the group; if it was undone its records must
  // not be replayed). The trailing group with no resolution is this crash:
  // undo it in reverse.
  std::vector<const WalRecord*> group;
  uint64_t last_resolved_checksum = 0;
  Status write_status = Status::Ok();

  // Running view of the switch data cells as the log replays, and a snapshot
  // of that view at the last seal — the committed configuration the final
  // proven text corresponds to (RestartInstance rebuilds to it). Groups
  // resolved by a kRecovery marker were undone by the earlier restart, so
  // their writes never enter the running view.
  std::map<uint64_t, std::pair<uint32_t, std::array<uint8_t, 8>>> switch_data;
  std::map<uint64_t, std::pair<uint32_t, std::array<uint8_t, 8>>> committed_data;

  auto redo_group = [&](uint64_t post_checksum) -> Status {
    for (const WalRecord* r : group) {
      if (r->kind == WalRecordKind::kSwitchSet) {
        MV_RETURN_IF_ERROR(
            vm->memory().WriteRaw(r->addr, r->new_bytes.data(), r->width));
        switch_data[r->addr] = std::make_pair(r->width, r->new_bytes);
        ++outcome.switch_sets_replayed;
      } else if (r->kind == WalRecordKind::kOp) {
        MV_RETURN_IF_ERROR(WritePatchWindow(vm, *r, /*forward=*/true));
        ++outcome.ops_redone;
      }
    }
    ++outcome.txns_redone;
    last_resolved_checksum = post_checksum;
    committed_data = switch_data;
    return Status::Ok();
  };
  auto abort_group = [&]() -> Status {
    // Net text effect is zero, but switch writes before the begin record
    // really happened and were not reverted by the txn rollback — they stay
    // in the data section (and feed any later sealed commit's planning), yet
    // are NOT committed until a seal snapshots them.
    for (const WalRecord* r : group) {
      if (r->kind == WalRecordKind::kSwitchSet) {
        MV_RETURN_IF_ERROR(
            vm->memory().WriteRaw(r->addr, r->new_bytes.data(), r->width));
        switch_data[r->addr] = std::make_pair(r->width, r->new_bytes);
        ++outcome.switch_sets_replayed;
      }
    }
    return Status::Ok();
  };

  for (const WalRecord& r : records) {
    switch (r.kind) {
      case WalRecordKind::kSeal:
        write_status = redo_group(r.checksum);
        group.clear();
        break;
      case WalRecordKind::kAbort:
        write_status = abort_group();
        group.clear();
        break;
      case WalRecordKind::kRecovery:
        // Whatever this group held, the earlier restart resolved it; its
        // checksum is the state the log vouches for at this point.
        group.clear();
        last_resolved_checksum = r.checksum;
        break;
      default:
        group.push_back(&r);
        break;
    }
    if (!write_status.ok()) {
      return write_status;
    }
  }

  // The trailing incomplete group is the crash itself: undo it in reverse —
  // op windows back to their journaled old bytes and protections, switch
  // cells back to their old values. Idempotent, so this is correct both on
  // the dead VM's torn memory and on a freshly rebuilt boot-state twin.
  uint64_t expected = last_resolved_checksum;
  if (!group.empty()) {
    outcome.tail_undone = true;
    for (auto it = group.rbegin(); it != group.rend(); ++it) {
      const WalRecord* r = *it;
      if (r->kind == WalRecordKind::kOp) {
        MV_RETURN_IF_ERROR(WritePatchWindow(vm, *r, /*forward=*/false));
        ++outcome.ops_undone;
      } else if (r->kind == WalRecordKind::kSwitchSet) {
        MV_RETURN_IF_ERROR(
            vm->memory().WriteRaw(r->addr, r->old_bytes.data(), r->width));
        ++outcome.switch_sets_undone;
      } else if (r->kind == WalRecordKind::kTxnBegin) {
        ++outcome.txns_undone;
        expected = r->checksum;  // the pre-commit text we must land on
      }
    }
  }

  for (const auto& [addr, cell] : committed_data) {
    outcome.committed_switches.push_back(
        {addr, cell.first,
         std::vector<uint8_t>(cell.second.begin(),
                              cell.second.begin() + cell.first)});
  }

  // The proof: the recovered text must be bit-identical to the journaled
  // expectation — fully-old (the undone txn's pre checksum) or fully-new
  // (the last sealed txn's post checksum). Never torn.
  outcome.expected_text_checksum = expected;
  if (image != nullptr) {
    outcome.final_text_checksum = TextChecksumOf(*vm, *image);
    if (expected != 0 && outcome.final_text_checksum != expected) {
      return Status::Internal(
          "recovery: text checksum mismatch after replay — image torn "
          "(expected " + std::to_string(expected) + ", got " +
          std::to_string(outcome.final_text_checksum) + ")");
    }
  }

  // Drop the torn tail (crash evidence, now resolved) and stamp the log so
  // a later restart knows everything before this point is settled.
  journal->TruncateTo(journal->bytes().size() - outcome.torn_tail_bytes);
  MV_RETURN_IF_ERROR(journal->AppendRecovery(outcome.final_text_checksum));
  return outcome;
}

}  // namespace mv

#include "src/core/commit_scheduler.h"

#include <algorithm>

#include "src/core/runtime.h"
#include "src/support/str.h"

namespace mv {

double StormStats::BatchP99Cycles() const {
  if (batch_cycles.empty()) {
    return 0;
  }
  std::vector<double> sorted = batch_cycles;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  size_t index = (99 * n + 99) / 100;  // ceil(0.99 * n)
  if (index > n) {
    index = n;
  }
  return sorted[index - 1];
}

double StormStats::CoalescingRatio() const {
  if (plans_committed == 0) {
    return static_cast<double>(flips_submitted);
  }
  return static_cast<double>(flips_submitted) /
         static_cast<double>(plans_committed);
}

CommitStats StormStats::Summary() const {
  CommitStats summary = commit;
  summary.storm_flips_submitted = flips_submitted;
  summary.storm_flips_elided_null = flips_elided_null;
  summary.storm_plans_committed = plans_committed;
  summary.storm_batch_p99_cycles = BatchP99Cycles();
  return summary;
}

CommitScheduler::CommitScheduler(Program* program, const StormOptions& options)
    : program_(program), options_(options) {
  if (!options_.write_switch) {
    // Descriptor-width write, not a blanket 8-byte store: switches narrower
    // than 8 bytes may have live neighbours in the data section.
    options_.write_switch = [this](const std::string& name, int64_t value) {
      int width = 8;
      for (const RtVariable& var : program_->runtime().table().variables) {
        if (var.name == name) {
          width = static_cast<int>(var.width);
          break;
        }
      }
      return program_->WriteGlobal(name, value, width);
    };
  }
  if (!options_.commit) {
    options_.commit = [this]() -> Result<BatchCommitResult> {
      MV_ASSIGN_OR_RETURN(const CommitOutcome outcome,
                          program_->runtime().CommitWithOutcome());
      BatchCommitResult result;
      result.stats = outcome.stats;
      return result;  // the plain path has no modelled patch clock
    };
  }
  // Elision baseline: the signature of the text the program runs right now.
  // Valid only at a committed fixpoint; when the signature is unreadable the
  // baseline stays unset and the first drain commits unconditionally.
  Result<std::vector<uint64_t>> signature =
      program_->runtime().SelectionSignatureNow();
  if (signature.ok()) {
    committed_signature_ = std::move(*signature);
    have_signature_ = true;
  }
}

Status CommitScheduler::Submit(const std::string& name, int64_t value,
                               double now_cycles) {
  ++stats_.flips_submitted;
  if (now_cycles < busy_until_) {
    // A drain is still in flight at this modelled instant: the submission is
    // accepted (slots, not queues), but it waited on the busy scheduler —
    // the latency a sustained storm pays, bounded by window + batch commit.
    ++stats_.backpressure_waits;
  }
  const bool was_idle = pending_.empty();
  auto [slot, inserted] = pending_.insert_or_assign(name, value);
  (void)slot;
  if (!inserted) {
    ++stats_.flips_coalesced;  // last writer wins inside the window
  }
  stats_.max_queue_depth =
      std::max<uint64_t>(stats_.max_queue_depth, pending_.size());
  if (was_idle) {
    // The window opens when the scheduler can actually see the submission:
    // after the in-flight drain retires, never before.
    window_deadline_ =
        std::max(now_cycles, busy_until_) + options_.window_cycles;
  }
  return Status::Ok();
}

Result<bool> CommitScheduler::Poll(double now_cycles) {
  if (pending_.empty() || now_cycles < window_deadline_) {
    return false;
  }
  return Drain(now_cycles);
}

Result<bool> CommitScheduler::Flush(double now_cycles) {
  if (pending_.empty()) {
    return false;
  }
  return Drain(now_cycles);
}

Result<bool> CommitScheduler::Drain(double now_cycles) {
  // Apply the debounced values first: plain data writes (journaled as
  // write-ahead intent when the caller's write hook does so). The selection
  // signature below is computed over these final values — intermediate
  // values a slot absorbed never existed as far as the commit path knows.
  for (const auto& [name, value] : pending_) {
    Status written = options_.write_switch(name, value);
    if (!written.ok()) {
      return Status(written.code(),
                    StrFormat("storm drain: switch '%s': %s", name.c_str(),
                              written.message().c_str()));
    }
  }
  MV_ASSIGN_OR_RETURN(std::vector<uint64_t> signature,
                      program_->runtime().SelectionSignatureNow());
  if (options_.elide_null_flips && have_signature_ &&
      signature == committed_signature_) {
    // Null batch: every surviving flip selects exactly the code already
    // installed, so the committed text is bit-identical to what a commit
    // would produce. Drop the whole batch without planning a patch.
    stats_.flips_elided_null += pending_.size();
    ++stats_.batches_drained;
    ++stats_.batches_elided;
    pending_.clear();
    window_deadline_ = 0;
    return true;
  }
  Result<BatchCommitResult> committed = options_.commit();
  if (!committed.ok()) {
    // The transaction rolled the text back; the written values stay in data
    // and the slots stay pending, so the next Poll/Flush retries the same
    // coalesced batch. A fresh window keeps the retry off the hot path.
    ++stats_.commit_failures;
    window_deadline_ = now_cycles + options_.window_cycles;
    return committed.status();
  }
  const double effective_now = std::max(now_cycles, busy_until_);
  ++stats_.plans_committed;
  ++stats_.batches_drained;
  stats_.batch_cycles.push_back(committed->commit_cycles);
  stats_.busy_cycles += committed->commit_cycles;
  stats_.commit.Accumulate(committed->stats);
  busy_until_ = effective_now + committed->commit_cycles;
  committed_signature_ = std::move(signature);
  have_signature_ = true;
  pending_.clear();
  window_deadline_ = 0;
  return true;
}

}  // namespace mv

// ChaosSchedule — deterministic, seeded fault scripting for fleet rollouts.
//
// A production fleet does not fail on request: instances crash mid-commit,
// cores wedge inside rendezvous, commits stall past their deadline, health
// reports never arrive. The chaos engine makes those failures *reproducible*
// so the CommitCoordinator's failure handling (timeout -> retry -> quarantine,
// crash -> restart -> recover) can be asserted exhaustively: every event is a
// pure function of (seed, wave, instance, attempt), so two runs of the same
// seeded schedule inject byte-identical havoc, and a failing seed is a
// one-line reproducer.
//
// Two authoring modes compose:
//   * seeded   — Mix64-hashed (seed, wave, instance, attempt) draws an event
//     with bounded probability, biased to first attempts so bounded retry
//     usually wins (the transient-fault model the txn layer assumes);
//   * scripted — Script() pins an exact (wave, instance, attempt) to an
//     event, overriding the seeded draw; tests use this to place a crash at
//     a precise journal boundary of a precise canary.
#ifndef MULTIVERSE_SRC_FLEET_CHAOS_H_
#define MULTIVERSE_SRC_FLEET_CHAOS_H_

#include <cstdint>
#include <map>
#include <tuple>

namespace mv {

enum class ChaosEventKind : uint8_t {
  kNone = 0,
  kCrash,       // instance dies at a journal entry boundary mid-commit
  kCrashTorn,   // instance dies mid-record — a torn prefix survives in the log
  kWedge,       // a mutator core never reaches the rendezvous (budget starved)
  kSlowCommit,  // the commit lands but blows the per-instance deadline
  kDropHealth,  // the instance's wave health report never arrives
};

const char* ChaosEventKindName(ChaosEventKind kind);

class ChaosSchedule {
 public:
  // `crash_pct` + `degrade_pct` bound the per-(wave, instance) event
  // probability on the first attempt, in percent. Retries draw with a
  // quarter of the probability — most injected faults are transient.
  explicit ChaosSchedule(uint64_t seed, int crash_pct = 12, int degrade_pct = 25)
      : seed_(seed), crash_pct_(crash_pct), degrade_pct_(degrade_pct) {}

  uint64_t seed() const { return seed_; }

  // The event injected into `instance`'s commit attempt `attempt` (1-based)
  // of `wave`. Deterministic; scripted entries win over seeded draws.
  ChaosEventKind At(int wave, int instance, int attempt) const;

  // Pins an exact slot to an event (kNone suppresses a seeded draw there).
  void Script(int wave, int instance, int attempt, ChaosEventKind kind);

  // For crash events: the 0-based journal-append boundary the death fires
  // at. Scripted slots crash at the first boundary (guaranteed — every flip
  // appends at least its switch-set intent), seeded draws vary the boundary
  // so recovery exercises both sides: undo-the-trailing-group (fully-old)
  // and redo-after-a-sealed-transaction (fully-new).
  int CrashHit(int wave, int instance, int attempt) const;

 private:
  uint64_t seed_;
  int crash_pct_;
  int degrade_pct_;
  std::map<std::tuple<int, int, int>, ChaosEventKind> scripted_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_FLEET_CHAOS_H_

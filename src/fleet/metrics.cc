#include "src/fleet/metrics.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/support/str.h"

namespace mv {

const char* RolloutEventName(RolloutEvent::Kind kind) {
  switch (kind) {
    case RolloutEvent::Kind::kRolloutStart:
      return "rollout-start";
    case RolloutEvent::Kind::kWaveStart:
      return "wave-start";
    case RolloutEvent::Kind::kFlip:
      return "flip";
    case RolloutEvent::Kind::kFlipFailed:
      return "flip-failed";
    case RolloutEvent::Kind::kWaveHealthy:
      return "wave-healthy";
    case RolloutEvent::Kind::kBreach:
      return "breach";
    case RolloutEvent::Kind::kRevertStart:
      return "revert-start";
    case RolloutEvent::Kind::kRevertInstance:
      return "revert-instance";
    case RolloutEvent::Kind::kProof:
      return "proof";
    case RolloutEvent::Kind::kRolloutDone:
      return "rollout-done";
    case RolloutEvent::Kind::kBootCommit:
      return "boot-commit";
    case RolloutEvent::Kind::kBootRollback:
      return "boot-rollback";
    case RolloutEvent::Kind::kTimeout:
      return "timeout";
    case RolloutEvent::Kind::kQuarantine:
      return "quarantine";
    case RolloutEvent::Kind::kCrash:
      return "crash";
    case RolloutEvent::Kind::kRecovery:
      return "recovery";
  }
  return "?";
}

void RolloutLog::Append(RolloutEvent::Kind kind, int wave, int instance,
                        std::string detail) {
  RolloutEvent event;
  event.kind = kind;
  event.wave = wave;
  event.instance = instance;
  event.detail = std::move(detail);
  events_.push_back(std::move(event));
}

std::string RolloutLog::ToString() const {
  std::string out;
  for (size_t i = 0; i < events_.size(); ++i) {
    const RolloutEvent& e = events_[i];
    out += StrFormat("%04zu %-16s", i, RolloutEventName(e.kind));
    out += e.wave >= 0 ? StrFormat(" wave %d", e.wave) : std::string(" wave -");
    out += e.instance >= 0 ? StrFormat(" inst %3d", e.instance)
                           : std::string(" inst   -");
    if (!e.detail.empty()) {
      out += "  " + e.detail;
    }
    out += "\n";
  }
  return out;
}

Status RolloutLog::WriteTo(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open rollout log path '" + path + "'");
  }
  const std::string text = ToString();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::Ok();
}

void InstanceHealth::Accumulate(const InstanceHealth& other) {
  requests_served += other.requests_served;
  timed_requests += other.timed_requests;
  dropped_requests += other.dropped_requests;
  torn_requests += other.torn_requests;
  request_cycles += other.request_cycles;
  max_request_cycles = std::max(max_request_cycles, other.max_request_cycles);
  flips += other.flips;
  flip_cycles += other.flip_cycles;
  max_flip_cycles = std::max(max_flip_cycles, other.max_flip_cycles);
  commit.Accumulate(other.commit);
}

InstanceHealth InstanceHealth::Delta(const InstanceHealth& since) const {
  InstanceHealth d;
  d.requests_served = requests_served - since.requests_served;
  d.timed_requests = timed_requests - since.timed_requests;
  d.dropped_requests = dropped_requests - since.dropped_requests;
  d.torn_requests = torn_requests - since.torn_requests;
  d.request_cycles = request_cycles - since.request_cycles;
  d.max_request_cycles = max_request_cycles;
  d.flips = flips - since.flips;
  d.flip_cycles = flip_cycles - since.flip_cycles;
  d.max_flip_cycles = max_flip_cycles;
  d.commit = commit.Delta(since.commit);
  return d;
}

HealthSummary FleetMetrics::Aggregate(const std::vector<int>& instances) const {
  HealthSummary summary;
  for (int i : instances) {
    summary.totals.Accumulate(per_instance_[i]);
    summary.max_flip_cycles =
        std::max(summary.max_flip_cycles, per_instance_[i].max_flip_cycles);
    ++summary.instances;
  }
  return summary;
}

HealthSummary FleetMetrics::AggregateDelta(
    const std::vector<int>& instances,
    const std::vector<InstanceHealth>& since) const {
  HealthSummary summary;
  for (int i : instances) {
    const InstanceHealth delta = per_instance_[i].Delta(since[i]);
    summary.totals.Accumulate(delta);
    summary.max_flip_cycles = std::max(summary.max_flip_cycles, delta.max_flip_cycles);
    ++summary.instances;
  }
  return summary;
}

HealthSummary FleetMetrics::Fleet() const {
  std::vector<int> all(per_instance_.size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<int>(i);
  }
  return Aggregate(all);
}

}  // namespace mv

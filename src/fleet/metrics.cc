#include "src/fleet/metrics.h"

#include <algorithm>

namespace mv {

void InstanceHealth::Accumulate(const InstanceHealth& other) {
  requests_served += other.requests_served;
  timed_requests += other.timed_requests;
  dropped_requests += other.dropped_requests;
  torn_requests += other.torn_requests;
  request_cycles += other.request_cycles;
  max_request_cycles = std::max(max_request_cycles, other.max_request_cycles);
  flips += other.flips;
  flip_cycles += other.flip_cycles;
  max_flip_cycles = std::max(max_flip_cycles, other.max_flip_cycles);
  commit.Accumulate(other.commit);
}

InstanceHealth InstanceHealth::Delta(const InstanceHealth& since) const {
  InstanceHealth d;
  d.requests_served = requests_served - since.requests_served;
  d.timed_requests = timed_requests - since.timed_requests;
  d.dropped_requests = dropped_requests - since.dropped_requests;
  d.torn_requests = torn_requests - since.torn_requests;
  d.request_cycles = request_cycles - since.request_cycles;
  d.max_request_cycles = max_request_cycles;
  d.flips = flips - since.flips;
  d.flip_cycles = flip_cycles - since.flip_cycles;
  d.max_flip_cycles = max_flip_cycles;
  d.commit = commit.Delta(since.commit);
  return d;
}

HealthSummary FleetMetrics::Aggregate(const std::vector<int>& instances) const {
  HealthSummary summary;
  for (int i : instances) {
    summary.totals.Accumulate(per_instance_[i]);
    summary.max_flip_cycles =
        std::max(summary.max_flip_cycles, per_instance_[i].max_flip_cycles);
    ++summary.instances;
  }
  return summary;
}

HealthSummary FleetMetrics::AggregateDelta(
    const std::vector<int>& instances,
    const std::vector<InstanceHealth>& since) const {
  HealthSummary summary;
  for (int i : instances) {
    const InstanceHealth delta = per_instance_[i].Delta(since[i]);
    summary.totals.Accumulate(delta);
    summary.max_flip_cycles = std::max(summary.max_flip_cycles, delta.max_flip_cycles);
    ++summary.instances;
  }
  return summary;
}

HealthSummary FleetMetrics::Fleet() const {
  std::vector<int> all(per_instance_.size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<int>(i);
  }
  return Aggregate(all);
}

}  // namespace mv

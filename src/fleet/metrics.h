// FleetMetrics — per-instance health counters and their aggregation.
//
// The CommitCoordinator's auto-advance/auto-revert decisions are driven by
// measured health, not hope: every request served, dropped or torn, every
// journal rollback and every cycle of mutator disturbance is accounted per
// instance, and the rollout policy evaluates *deltas* over a wave's
// observation window so one noisy boot does not poison a later wave.
#ifndef MULTIVERSE_SRC_FLEET_METRICS_H_
#define MULTIVERSE_SRC_FLEET_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/commit_stats.h"
#include "src/support/status.h"

namespace mv {

// One auditable transition in a fleet's life: boot commits, rollout waves,
// flips, breaches, reverts, identity proofs. Shared by Fleet::Build (boot
// path) and the CommitCoordinator (rollout path) — the same log type records
// both, so an instance's history reads as one trail.
struct RolloutEvent {
  enum class Kind : uint8_t {
    kRolloutStart,
    kWaveStart,
    kFlip,         // one instance committed to the new assignment
    kFlipFailed,   // transaction failed; journal already restored the text
    kWaveHealthy,
    kBreach,       // a policy threshold tripped
    kRevertStart,
    kRevertInstance,
    kProof,        // per-instance identity verdict at rollout end
    kRolloutDone,
    kBootCommit,   // instance reached its boot-configuration fixpoint
    kBootRollback, // boot failed downstream; this instance was rolled back
    kTimeout,      // commit exceeded its deadline (or health report dropped)
    kQuarantine,   // repeated failures; instance parked on its old config
    kCrash,        // instance died mid-commit (simulated process death)
    kRecovery,     // restart replayed the durable journal; identity proven
  };
  Kind kind = Kind::kRolloutStart;
  int wave = -1;      // -1 when not wave-scoped
  int instance = -1;  // -1 when not instance-scoped
  std::string detail;
};

const char* RolloutEventName(RolloutEvent::Kind kind);

class RolloutLog {
 public:
  void Append(RolloutEvent::Kind kind, int wave, int instance,
              std::string detail);
  const std::vector<RolloutEvent>& events() const { return events_; }
  std::string ToString() const;
  // Persists the log, one event per line — the rollout's audit trail.
  Status WriteTo(const std::string& path) const;

 private:
  std::vector<RolloutEvent> events_;
};

// Health counters of one fleet instance. Monotonic: the coordinator computes
// windows by snapshot + Delta, never by resetting.
struct InstanceHealth {
  // Request-path accounting.
  uint64_t requests_served = 0;   // completed requests (foreground + in-flight)
  uint64_t timed_requests = 0;    // foreground requests with a latency sample
  uint64_t dropped_requests = 0;  // request call failed outright
  uint64_t torn_requests = 0;     // in-flight requests lost to a torn batch
  double request_cycles = 0;      // summed foreground latency (modelled cycles)
  double max_request_cycles = 0;

  // Commit-path accounting.
  uint64_t flips = 0;             // live commits executed on this instance
  double flip_cycles = 0;         // summed live-commit latency
  double max_flip_cycles = 0;
  CommitStats commit;             // rollbacks/retries/disturbance/... (core)

  double MeanRequestCycles() const {
    return timed_requests == 0 ? 0 : request_cycles / timed_requests;
  }

  void Accumulate(const InstanceHealth& other);
  // Field-wise `*this - since`. The max_* fields are not windowed — they
  // carry the lifetime maximum; callers that need a per-wave maximum track
  // it at the point of the flip (the coordinator does).
  InstanceHealth Delta(const InstanceHealth& since) const;
};

// Aggregate over a set of instances (one wave, or the whole fleet).
struct HealthSummary {
  int instances = 0;
  InstanceHealth totals;
  double max_flip_cycles = 0;  // slowest single flip in the set
};

class FleetMetrics {
 public:
  explicit FleetMetrics(int instances) : per_instance_(instances) {}

  InstanceHealth& instance(int i) { return per_instance_[i]; }
  const InstanceHealth& instance(int i) const { return per_instance_[i]; }
  int size() const { return static_cast<int>(per_instance_.size()); }

  // Snapshot of every instance's counters, for later windowed deltas.
  std::vector<InstanceHealth> Snapshot() const { return per_instance_; }

  HealthSummary Aggregate(const std::vector<int>& instances) const;
  // Aggregate of `instances`, windowed against a prior Snapshot().
  HealthSummary AggregateDelta(const std::vector<int>& instances,
                               const std::vector<InstanceHealth>& since) const;
  HealthSummary Fleet() const;

 private:
  std::vector<InstanceHealth> per_instance_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_FLEET_METRICS_H_

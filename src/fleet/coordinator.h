// CommitCoordinator — canary rollouts of a switch assignment across a Fleet.
//
// State machine (INTERNALS.md §14):
//
//   Plan -> [per wave: Flip -> Observe -> (advance | breach)]
//        -> Converged                      (every wave healthy)
//        -> Revert -> RolledBack           (any breach, or a failed flip)
//
// Plan partitions the unpinned instances into waves (wave 0 is the canary
// cohort, canary_pct of the fleet), snapshots every instance's config
// fingerprint and text checksum, and measures a baseline traffic slice.
// Flip rewrites one wave: per instance, write the assignment, start the
// in-flight batch on core 1, run a live commit (protocol chosen per instance
// via PreferredProtocol unless the policy forces one), drain the batch.
// Observe serves a fleet-wide traffic slice and evaluates the health delta
// since the wave began against the policy thresholds. A breach — or a flip
// whose transaction finally failed (the journal's reverse-order rollback has
// already restored that instance's text) — reverts the whole rollout:
// every flipped instance is committed back to its pre-rollout assignment in
// reverse flip order, then every instance's fingerprint and checksum is
// re-proved against the Plan snapshot. The rollout log records each
// transition, so the final fully-old-or-fully-new claim is auditable, and
// WriteTo() persists it.
#ifndef MULTIVERSE_SRC_FLEET_COORDINATOR_H_
#define MULTIVERSE_SRC_FLEET_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/fleet/chaos.h"
#include "src/fleet/fleet.h"
#include "src/fleet/metrics.h"
#include "src/livepatch/livepatch.h"

namespace mv {

struct RolloutPolicy {
  double canary_pct = 12.5;  // wave 0 size, percent of the unpinned fleet
  int waves = 4;             // total waves, canary included

  // Health thresholds, evaluated on each wave's delta. Negative = unlimited.
  int max_rollbacks = 0;          // journal rollbacks (the revert threshold)
  int max_waitfree_fallbacks = -1;
  double max_disturbance_cycles = -1;
  uint64_t max_dropped = 0;
  uint64_t max_torn = 0;
  // Mean foreground latency of the wave window vs. the baseline slice.
  double max_latency_factor = -1;

  // Traffic shape.
  uint64_t observe_requests = 128;  // fleet-wide slice after each wave
  uint64_t inflight_requests = 48;  // per-instance batch racing each flip
  uint64_t load_warmup_steps = 64;

  // > 0 routes every flip through a CommitScheduler
  // (src/core/commit_scheduler.h): the assignment's switch writes debounce
  // in one window of this many modelled cycles, a batch whose selection
  // signature is unchanged is elided without any commit, and the surviving
  // deltas commit as one coalesced plan. The scheduler's storm counters ride
  // the instance's CommitStats into FleetMetrics. 0 = the legacy direct
  // write-then-commit path.
  double storm_window_cycles = 0;

  // Protocol: per-instance PreferredProtocol() unless forced here.
  std::optional<CommitProtocol> protocol;
  // Base live-commit options (txn tuning, rendezvous budget); the
  // coordinator overrides protocol, mutator_cores and the durable journal
  // per flip.
  LiveCommitOptions live;

  // --- Failure tolerance (all off by default: a failed flip aborts the
  // whole rollout, the legacy all-or-nothing behavior) ---
  // Per-instance flip deadline in modelled cycles; exceeding it is a strike
  // even when the commit landed (the retry then no-op-commits). 0 disables.
  uint64_t commit_timeout_cycles = 0;
  // > 0 enables degraded-mode rollouts: a failing instance's flip is retried
  // with doubling backoff, and after this many failed attempts the instance
  // is quarantined on its pre-rollout configuration — still serving — while
  // the rollout carries on, instead of aborting everything.
  int quarantine_after = 0;
  // Base retry backoff in modelled cycles, doubled per strike. The simulated
  // fleet has no wall clock to sleep on; the backoff is audit-log-visible.
  uint64_t retry_backoff_cycles = 1024;
  // Deterministic fault injection during waves (crashes, wedged cores, slow
  // commits, dropped health reports). Not owned. Injected crashes need the
  // restart path, so chaos requires quarantine_after > 0 to take effect.
  const ChaosSchedule* chaos = nullptr;
};

// RolloutEvent / RolloutLog live in src/fleet/metrics.h — Fleet::Build logs
// boot commits and boot rollbacks into the same audit-trail type.

struct WaveReport {
  int wave = 0;
  std::vector<int> instances;
  HealthSummary delta;       // health attributable to this wave's window
  double flip_cycles_max = 0;  // slowest flip in the wave
  bool healthy = false;
  std::string breach;        // first threshold that tripped
};

struct RolloutReport {
  bool advanced_to_full = false;
  bool reverted = false;
  int waves_attempted = 0;
  std::string breach;  // why the rollout reverted (empty when it advanced)
  std::vector<WaveReport> waves;
  // Fleet-wide flip latency: waves flip logically in parallel, so the cost
  // of a wave is its slowest instance; the rollout pays the sum over waves.
  double fleet_flip_cycles = 0;
  uint64_t flipped_instances = 0;
  uint64_t reverted_instances = 0;
  // Identity proof at the end: instances whose fingerprint+checksum did not
  // match the expected side (new after advance, old after revert). Zero or
  // the rollout's guarantee is broken.
  uint64_t identity_mismatches = 0;
  double baseline_mean_request_cycles = 0;

  // Failure-tolerance accounting (all zero on a calm rollout).
  uint64_t commit_timeouts = 0;   // deadline misses, wedges, dropped reports
  uint64_t crash_recoveries = 0;  // instance deaths replayed from the journal
  uint64_t quarantined_instances = 0;
  std::vector<int> quarantined;   // ids parked on their pre-rollout config
};

class CommitCoordinator {
 public:
  CommitCoordinator(Fleet* fleet, const RolloutPolicy& policy)
      : fleet_(fleet), policy_(policy) {}

  // Rolls `assignment` across the unpinned fleet, wave by wave, serving the
  // sharded request stream between waves. `load_fn` (when non-empty and the
  // instances have a second core) races an in-flight batch against every
  // flip. Returns the report for both outcomes — advanced or reverted; an
  // error Status means the fleet itself failed (build/serve infrastructure),
  // not an unhealthy rollout.
  Result<RolloutReport> Rollout(const Fleet::Assignment& assignment,
                                const std::string& handler,
                                const std::string& load_fn);

  const RolloutLog& log() const { return log_; }

  // Test/bench hook, fired right before an instance's live commit — fault
  // injection arms here to make a canary unhealthy for real.
  void set_flip_hook(std::function<void(int instance, int wave)> hook) {
    flip_hook_ = std::move(hook);
  }

  // Wave partition: wave 0 is the canary cohort (canary_pct, at least one
  // instance), the remainder splits evenly across the other waves. Exposed
  // for tests.
  static std::vector<std::vector<int>> PartitionWaves(
      const std::vector<int>& instances, double canary_pct, int waves);

 private:
  struct FlippedInstance {
    int instance = -1;
    Fleet::Assignment old_values;
  };

  // Empty string = healthy; otherwise the first breached threshold.
  std::string EvaluateWave(const HealthSummary& delta, double baseline_mean) const;
  CommitProtocol ProtocolFor(int instance) const;
  // One flip attempt. `chaos_event` injects the scheduled fault: a crash
  // arms the journal-append fault site for the whole attempt (switch writes
  // and the live commit both append), a wedge starves the rendezvous budget.
  Status FlipInstance(int instance, int wave, const Fleet::Assignment& assignment,
                      const std::string& load_fn, double* flip_cycles,
                      ChaosEventKind chaos_event, int attempt);
  // Fault-tolerant flip: attempt loop with chaos injection, timeout strikes,
  // crash-restart-recovery and doubling backoff. Returns true when the
  // instance flipped, false when it was quarantined on its old config; a
  // non-ok status is an infrastructure failure (recovery itself broke).
  Result<bool> FlipWithRecovery(int instance, int wave,
                                const Fleet::Assignment& assignment,
                                const Fleet::Assignment& old_values,
                                const std::string& load_fn,
                                RolloutReport* report, double* flip_cycles);
  void RevertAll(std::vector<FlippedInstance>* flipped,
                 const std::string& load_fn, RolloutReport* report);

  Fleet* fleet_;
  RolloutPolicy policy_;
  RolloutLog log_;
  std::function<void(int, int)> flip_hook_;
  std::vector<uint64_t> pre_fingerprint_;
  std::vector<uint64_t> pre_checksum_;
  std::vector<bool> quarantined_;
};

}  // namespace mv

#endif  // MULTIVERSE_SRC_FLEET_COORDINATOR_H_

#include "src/fleet/coordinator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>

#include "src/core/commit_scheduler.h"
#include "src/support/faultpoint.h"
#include "src/support/str.h"

namespace mv {

std::vector<std::vector<int>> CommitCoordinator::PartitionWaves(
    const std::vector<int>& instances, double canary_pct, int waves) {
  std::vector<std::vector<int>> out;
  const int n = static_cast<int>(instances.size());
  if (n == 0) {
    return out;
  }
  const int total_waves = std::max(1, waves);
  int canary = static_cast<int>(std::llround(n * canary_pct / 100.0));
  canary = std::clamp(canary, 1, n);
  if (total_waves == 1) {
    canary = n;
  }
  out.emplace_back(instances.begin(), instances.begin() + canary);
  int pos = canary;
  int remaining = n - canary;
  for (int w = 1; w < total_waves && remaining > 0; ++w) {
    const int waves_left = total_waves - w;
    const int take = (remaining + waves_left - 1) / waves_left;
    out.emplace_back(instances.begin() + pos, instances.begin() + pos + take);
    pos += take;
    remaining -= take;
  }
  return out;
}

CommitProtocol CommitCoordinator::ProtocolFor(int instance) const {
  return policy_.protocol.value_or(PreferredProtocol(fleet_->runtime(instance)));
}

std::string CommitCoordinator::EvaluateWave(const HealthSummary& delta,
                                            double baseline_mean) const {
  const CommitStats& commit = delta.totals.commit;
  if (policy_.max_rollbacks >= 0 && commit.rollbacks > policy_.max_rollbacks) {
    return StrFormat("rollbacks %d > max %d", commit.rollbacks,
                     policy_.max_rollbacks);
  }
  if (policy_.max_waitfree_fallbacks >= 0 &&
      commit.waitfree_fallbacks > policy_.max_waitfree_fallbacks) {
    return StrFormat("waitfree fallbacks %d > max %d", commit.waitfree_fallbacks,
                     policy_.max_waitfree_fallbacks);
  }
  if (policy_.max_disturbance_cycles >= 0 &&
      commit.disturbance_cycles > policy_.max_disturbance_cycles) {
    return StrFormat("disturbance %.0f cycles > max %.0f",
                     commit.disturbance_cycles, policy_.max_disturbance_cycles);
  }
  if (delta.totals.dropped_requests > policy_.max_dropped) {
    return StrFormat("dropped requests %llu > max %llu",
                     (unsigned long long)delta.totals.dropped_requests,
                     (unsigned long long)policy_.max_dropped);
  }
  if (delta.totals.torn_requests > policy_.max_torn) {
    return StrFormat("torn requests %llu > max %llu",
                     (unsigned long long)delta.totals.torn_requests,
                     (unsigned long long)policy_.max_torn);
  }
  if (policy_.max_latency_factor > 0 && baseline_mean > 0 &&
      delta.totals.MeanRequestCycles() >
          baseline_mean * policy_.max_latency_factor) {
    return StrFormat("mean latency %.1f cycles > %.2fx baseline %.1f",
                     delta.totals.MeanRequestCycles(),
                     policy_.max_latency_factor, baseline_mean);
  }
  return "";
}

Status CommitCoordinator::FlipInstance(int instance, int wave,
                                       const Fleet::Assignment& assignment,
                                       const std::string& load_fn,
                                       double* flip_cycles,
                                       ChaosEventKind chaos_event, int attempt) {
  // Injected process death: arm the journal-append crash site for the whole
  // attempt — the switch-write intents and the live commit's op/seal records
  // all cross it, so the boundary the schedule picked decides whether the
  // death leaves an unsealed tail (recovers fully-old) or lands after a
  // sealed transaction (recovers fully-new).
  std::optional<ScopedFault> crash;
  if (chaos_event == ChaosEventKind::kCrash ||
      chaos_event == ChaosEventKind::kCrashTorn) {
    crash.emplace(chaos_event == ChaosEventKind::kCrash
                      ? FaultSite::kCrash
                      : FaultSite::kCrashTorn,
                  policy_.chaos->CrashHit(wave, instance, attempt));
  }
  // With a storm window, the assignment is routed through a CommitScheduler:
  // switch writes debounce into per-switch slots, a batch whose selection
  // signature is unchanged is elided without any commit, and the surviving
  // deltas land as one coalesced plan. The scheduler's write hook is
  // Fleet::WriteSwitch, so every drained value still journals its
  // write-ahead intent; the commit hook is the same live commit the legacy
  // path issues. `live` is captured by reference and fully configured below,
  // before the Flush that can invoke it.
  const bool storm = policy_.storm_window_cycles > 0;
  LiveCommitOptions live = policy_.live;
  std::optional<LiveCommitStats> live_stats;
  std::optional<CommitScheduler> scheduler;
  if (storm) {
    StormOptions options;
    options.window_cycles = policy_.storm_window_cycles;
    // The scheduler's elision baseline is seeded from the CURRENT selection
    // signature, which is only the committed text's signature while the
    // instance sits at a committed fixpoint. Attempt 1 starts from one, but
    // a retry follows a rolled-back attempt that already wrote the
    // assignment values — the signature then describes the new config while
    // the text is still old, and eliding would silently skip the flip.
    options.elide_null_flips = (attempt == 1);
    options.write_switch = [this, instance](const std::string& name,
                                            int64_t value) {
      return fleet_->WriteSwitch(instance, name, value);
    };
    options.commit = [this, instance, &live,
                      &live_stats]() -> Result<BatchCommitResult> {
      MV_ASSIGN_OR_RETURN(
          LiveCommitStats stats,
          multiverse_commit_live(&fleet_->program(instance).vm(),
                                 &fleet_->runtime(instance), live));
      live_stats = stats;
      BatchCommitResult result;
      result.stats = stats.Summary();
      result.commit_cycles = stats.CommitCycles();
      return result;
    };
    scheduler.emplace(&fleet_->program(instance), options);
    for (const auto& [name, value] : assignment) {
      MV_RETURN_IF_ERROR(scheduler->Submit(name, value, /*now_cycles=*/0));
    }
  } else {
    for (const auto& [name, value] : assignment) {
      MV_RETURN_IF_ERROR(fleet_->WriteSwitch(instance, name, value));
    }
  }
  if (flip_hook_) {
    flip_hook_(instance, wave);
  }
  const bool with_load = !load_fn.empty() &&
                         fleet_->options().cores_per_instance > 1 &&
                         policy_.inflight_requests > 0;
  if (with_load) {
    MV_RETURN_IF_ERROR(fleet_->StartLoad(
        instance, load_fn, 1000 * static_cast<uint64_t>(wave + 1) + instance,
        policy_.inflight_requests, policy_.load_warmup_steps));
  }
  live.protocol = ProtocolFor(instance);
  live.mutator_cores = with_load ? std::vector<int>{1} : std::vector<int>{};
  // The flip is write-ahead logged in the instance's durable journal; live
  // commits carry their own TxnOptions, so the journal is attached here.
  live.txn.wal = fleet_->journal(instance);
  std::optional<ScopedFault> wedge;
  if (chaos_event == ChaosEventKind::kWedge) {
    // A wedged instance: starve the rendezvous budget and arm the next
    // code-byte write to fail, so whichever the protocol hits first makes the
    // attempt fail cleanly — the transaction rolls the text back and the
    // strike is the coordinator's to count, not an in-process retry's.
    live.max_rendezvous_steps = 1;
    live.txn.max_attempts = 1;
    wedge.emplace(FaultSite::kPatchWrite, 0);
  }
  Status committed = Status::Ok();
  if (storm) {
    committed = scheduler->Flush(/*now_cycles=*/0).status();
  } else {
    Result<LiveCommitStats> stats = multiverse_commit_live(
        &fleet_->program(instance).vm(), &fleet_->runtime(instance), live);
    if (stats.ok()) {
      live_stats = *stats;
    } else {
      committed = stats.status();
    }
  }
  if (!committed.ok()) {
    if (IsSimulatedCrash(committed)) {
      // The process is dead. Its in-flight batch died with it, and the torn
      // text is RecoverFromJournal's problem now, not DrainLoad's.
      return committed;
    }
    // The transaction rolled the text back (journal, reverse order); the
    // in-flight batch keeps running on the restored old text.
    (void)fleet_->DrainLoad(instance);
    return committed;
  }
  InstanceHealth& health = fleet_->metrics().instance(instance);
  // An elided batch is a successful flip with no commit: the assignment
  // selected the code already installed.
  const double cycles = live_stats.has_value() ? live_stats->CommitCycles() : 0;
  ++health.flips;
  health.flip_cycles += cycles;
  health.max_flip_cycles = std::max(health.max_flip_cycles, cycles);
  health.commit.Accumulate(storm ? scheduler->stats().Summary()
                                 : live_stats->Summary());
  const char* storm_note =
      !storm ? "" : (live_stats.has_value() ? " (storm coalesced)" : " (storm elided)");
  log_.Append(RolloutEvent::Kind::kFlip, wave, instance,
              StrFormat("%s, %.0f cycles%s%s", CommitProtocolName(live.protocol),
                        cycles,
                        live_stats.has_value() && live_stats->txn.rollbacks > 0
                            ? " (recovered by retry)"
                            : "",
                        storm_note));
  // A torn in-flight batch is a flip failure even though the commit landed:
  // the caller reverts the rollout.
  MV_RETURN_IF_ERROR(fleet_->DrainLoad(instance));
  *flip_cycles = cycles;
  return Status::Ok();
}

Result<bool> CommitCoordinator::FlipWithRecovery(
    int instance, int wave, const Fleet::Assignment& assignment,
    const Fleet::Assignment& old_values, const std::string& load_fn,
    RolloutReport* report, double* flip_cycles) {
  uint64_t backoff = policy_.retry_backoff_cycles;
  for (int attempt = 1; attempt <= policy_.quarantine_after; ++attempt) {
    const ChaosEventKind event =
        policy_.chaos != nullptr ? policy_.chaos->At(wave, instance, attempt)
                                 : ChaosEventKind::kNone;
    // Doubling backoff between strikes, noted on each strike's log line —
    // the simulated fleet has no wall clock to actually sleep on.
    const std::string strike_suffix =
        attempt < policy_.quarantine_after
            ? StrFormat("; retrying after %llu-cycle backoff",
                        (unsigned long long)backoff)
            : std::string("; attempts exhausted");
    double cycles = 0;
    Status flip = FlipInstance(instance, wave, assignment, load_fn, &cycles,
                               event, attempt);
    if (IsSimulatedCrash(flip)) {
      // The instance died mid-commit. Its in-flight batch died with it
      // (unacknowledged, so no healthy-instance request is dropped); the
      // durable journal decides which side of the flip the replacement
      // lands on.
      log_.Append(RolloutEvent::Kind::kCrash, wave, instance,
                  StrFormat("attempt %d: %s", attempt,
                            flip.ToString().c_str()));
      Result<RecoveryOutcome> recovered = fleet_->RestartInstance(instance);
      if (!recovered.ok()) {
        return Status(recovered.status().code(),
                      StrFormat("instance %d crash-restart: %s", instance,
                                recovered.status().message().c_str()));
      }
      ++report->crash_recoveries;
      const bool old_side =
          recovered->final_text_checksum == pre_checksum_[instance];
      log_.Append(
          RolloutEvent::Kind::kRecovery, wave, instance,
          StrFormat("journal replayed: %d txn(s) redone, %d undone, "
                    "%d switch set(s) undone, %zu torn byte(s) dropped — "
                    "recovered %s%s",
                    recovered->txns_redone, recovered->txns_undone,
                    recovered->switch_sets_undone,
                    recovered->torn_tail_bytes,
                    old_side ? "fully-old" : "fully-new",
                    strike_suffix.c_str()));
    } else if (!flip.ok()) {
      // Clean failure: the transaction rolled the text back. A wedged core
      // surfaces here as a rendezvous-budget timeout.
      ++report->commit_timeouts;
      log_.Append(RolloutEvent::Kind::kTimeout, wave, instance,
                  StrFormat("attempt %d: %s%s", attempt,
                            flip.ToString().c_str(), strike_suffix.c_str()));
    } else {
      // The commit landed. It still strikes if it blew the deadline or its
      // health report never arrived — but the text is already new, so the
      // retry is a cheap no-op commit.
      if (event == ChaosEventKind::kSlowCommit) {
        cycles += policy_.commit_timeout_cycles > 0
                      ? 4.0 * static_cast<double>(policy_.commit_timeout_cycles)
                      : 1e6;
      }
      const bool deadline_missed =
          policy_.commit_timeout_cycles > 0 &&
          cycles > static_cast<double>(policy_.commit_timeout_cycles);
      if (!deadline_missed && event != ChaosEventKind::kDropHealth) {
        *flip_cycles = cycles;
        return true;
      }
      ++report->commit_timeouts;
      log_.Append(
          RolloutEvent::Kind::kTimeout, wave, instance,
          deadline_missed
              ? StrFormat("attempt %d: commit took %.0f cycles > deadline "
                          "%llu%s",
                          attempt, cycles,
                          (unsigned long long)policy_.commit_timeout_cycles,
                          strike_suffix.c_str())
              : StrFormat("attempt %d: health report dropped%s", attempt,
                          strike_suffix.c_str()));
    }
    backoff *= 2;
  }
  // Out of attempts: quarantine. Park the instance on its pre-rollout
  // configuration through the normal journaled commit path — committed old
  // text, so it keeps serving its shard (degraded mode, zero dropped
  // requests) while the rollout carries on without it.
  for (const auto& [name, value] : old_values) {
    MV_RETURN_IF_ERROR(fleet_->WriteSwitch(instance, name, value));
  }
  Result<CommitOutcome> park = fleet_->runtime(instance).CommitWithOutcome();
  if (!park.ok()) {
    return Status(park.status().code(),
                  StrFormat("instance %d quarantine park: %s", instance,
                            park.status().message().c_str()));
  }
  quarantined_[instance] = true;
  ++report->quarantined_instances;
  report->quarantined.push_back(instance);
  log_.Append(RolloutEvent::Kind::kQuarantine, wave, instance,
              StrFormat("after %d failed attempt(s); serving pre-rollout "
                        "config",
                        policy_.quarantine_after));
  return false;
}

void CommitCoordinator::RevertAll(std::vector<FlippedInstance>* flipped,
                                  const std::string& load_fn,
                                  RolloutReport* report) {
  log_.Append(RolloutEvent::Kind::kRevertStart, -1, -1,
              StrFormat("%zu instance(s) to restore, reverse flip order",
                        flipped->size()));
  for (auto it = flipped->rbegin(); it != flipped->rend(); ++it) {
    const int instance = it->instance;
    std::string detail;
    Status status = Status::Ok();
    for (const auto& [name, value] : it->old_values) {
      Status write = fleet_->WriteSwitch(instance, name, value);
      if (!write.ok() && status.ok()) {
        status = write;
      }
    }
    const bool with_load = !load_fn.empty() &&
                           fleet_->options().cores_per_instance > 1 &&
                           policy_.inflight_requests > 0;
    if (status.ok() && with_load) {
      status = fleet_->StartLoad(instance, load_fn,
                                 9'000'000ull + static_cast<uint64_t>(instance),
                                 policy_.inflight_requests,
                                 policy_.load_warmup_steps);
    }
    if (status.ok()) {
      // The revert is a forward journaled commit back to the old assignment;
      // with the shared plan cache the first instance replans cold and the
      // rest replay the memoized reverse transition.
      LiveCommitOptions live = policy_.live;
      live.protocol = ProtocolFor(instance);
      live.mutator_cores =
          with_load ? std::vector<int>{1} : std::vector<int>{};
      live.txn.wal = fleet_->journal(instance);
      Result<LiveCommitStats> stats = multiverse_commit_live(
          &fleet_->program(instance).vm(), &fleet_->runtime(instance), live);
      if (stats.ok()) {
        InstanceHealth& health = fleet_->metrics().instance(instance);
        const double cycles = stats->CommitCycles();
        ++health.flips;
        health.flip_cycles += cycles;
        health.max_flip_cycles = std::max(health.max_flip_cycles, cycles);
        health.commit.Accumulate(stats->Summary());
        detail = StrFormat("%s, %.0f cycles",
                           CommitProtocolName(live.protocol), cycles);
      } else {
        status = stats.status();
      }
      Status drain = fleet_->DrainLoad(instance);
      if (!drain.ok() && status.ok()) {
        status = drain;
      }
    }
    if (!status.ok()) {
      detail = "FAILED: " + status.ToString();
    }
    ++report->reverted_instances;
    log_.Append(RolloutEvent::Kind::kRevertInstance, -1, instance, detail);
  }
  flipped->clear();
}

Result<RolloutReport> CommitCoordinator::Rollout(
    const Fleet::Assignment& assignment, const std::string& handler,
    const std::string& load_fn) {
  RolloutReport report;
  const std::vector<int> targets = fleet_->UnpinnedInstances();
  if (targets.empty()) {
    return Status::FailedPrecondition("no unpinned instances to roll out to");
  }
  std::vector<int> everyone(fleet_->size());
  for (int i = 0; i < fleet_->size(); ++i) {
    everyone[i] = i;
  }

  // Plan: identity snapshot (the fully-old proof baseline) + wave partition.
  pre_fingerprint_.assign(fleet_->size(), 0);
  pre_checksum_.assign(fleet_->size(), 0);
  quarantined_.assign(fleet_->size(), false);
  for (int i = 0; i < fleet_->size(); ++i) {
    MV_ASSIGN_OR_RETURN(pre_fingerprint_[i], fleet_->ConfigFingerprint(i));
    pre_checksum_[i] = fleet_->TextChecksum(i);
  }
  const std::vector<std::vector<int>> waves =
      PartitionWaves(targets, policy_.canary_pct, policy_.waves);
  std::string assignment_text;
  for (const auto& [name, value] : assignment) {
    assignment_text += StrFormat("%s%s=%lld", assignment_text.empty() ? "" : " ",
                                 name.c_str(), (long long)value);
  }
  log_.Append(RolloutEvent::Kind::kRolloutStart, -1, -1,
              StrFormat("{%s} over %zu instance(s), %zu wave(s), canary %zu",
                        assignment_text.c_str(), targets.size(), waves.size(),
                        waves.empty() ? 0 : waves[0].size()));

  // Baseline traffic slice: the latency yardstick the policy compares to.
  {
    const std::vector<InstanceHealth> snapshot = fleet_->metrics().Snapshot();
    MV_RETURN_IF_ERROR(fleet_->Serve(
        fleet_->GenerateRequests(policy_.observe_requests), handler));
    const HealthSummary baseline =
        fleet_->metrics().AggregateDelta(everyone, snapshot);
    report.baseline_mean_request_cycles = baseline.totals.MeanRequestCycles();
  }

  std::vector<FlippedInstance> flipped;
  for (size_t w = 0; w < waves.size(); ++w) {
    ++report.waves_attempted;
    WaveReport wave_report;
    wave_report.wave = static_cast<int>(w);
    wave_report.instances = waves[w];
    log_.Append(RolloutEvent::Kind::kWaveStart, static_cast<int>(w), -1,
                StrFormat("%zu instance(s)", waves[w].size()));
    const std::vector<InstanceHealth> snapshot = fleet_->metrics().Snapshot();

    for (int instance : waves[w]) {
      FlippedInstance record;
      record.instance = instance;
      for (const auto& [name, value] : assignment) {
        (void)value;
        MV_ASSIGN_OR_RETURN(const int64_t old_value,
                            fleet_->ReadSwitchValue(instance, name));
        record.old_values.emplace_back(name, old_value);
      }
      double flip_cycles = 0;
      if (policy_.quarantine_after > 0) {
        // Failure-tolerant mode: retry with backoff, recover crashes from
        // the durable journal, quarantine a persistently failing instance
        // on its old config — and carry on with the wave either way.
        Result<bool> flipped_ok = FlipWithRecovery(
            instance, static_cast<int>(w), assignment, record.old_values,
            load_fn, &report, &flip_cycles);
        if (!flipped_ok.ok()) {
          return flipped_ok.status();  // infrastructure, not health
        }
        if (*flipped_ok) {
          flipped.push_back(std::move(record));
          wave_report.flip_cycles_max =
              std::max(wave_report.flip_cycles_max, flip_cycles);
        }
        continue;
      }
      Status flip =
          FlipInstance(instance, static_cast<int>(w), assignment, load_fn,
                       &flip_cycles, ChaosEventKind::kNone, /*attempt=*/1);
      if (flip.ok()) {
        flipped.push_back(std::move(record));
        wave_report.flip_cycles_max =
            std::max(wave_report.flip_cycles_max, flip_cycles);
        continue;
      }
      // Final transaction failure: the journal already restored this
      // instance's text in reverse order; restore its switch values so
      // config matches text again, then abandon the rollout.
      for (const auto& [name, value] : record.old_values) {
        (void)fleet_->WriteSwitch(instance, name, value);
      }
      log_.Append(RolloutEvent::Kind::kFlipFailed, static_cast<int>(w),
                  instance, flip.ToString());
      wave_report.breach = StrFormat("instance %d flip failed: %s", instance,
                                     flip.ToString().c_str());
      break;
    }

    if (wave_report.breach.empty()) {
      // Observe: a fleet-wide traffic slice, then the policy verdict on this
      // wave's health delta.
      MV_RETURN_IF_ERROR(fleet_->Serve(
          fleet_->GenerateRequests(policy_.observe_requests), handler));
      wave_report.delta = fleet_->metrics().AggregateDelta(everyone, snapshot);
      wave_report.breach =
          EvaluateWave(wave_report.delta, report.baseline_mean_request_cycles);
    }
    wave_report.healthy = wave_report.breach.empty();
    report.fleet_flip_cycles += wave_report.flip_cycles_max;
    if (wave_report.healthy) {
      log_.Append(RolloutEvent::Kind::kWaveHealthy, static_cast<int>(w), -1,
                  StrFormat("slowest flip %.0f cycles",
                            wave_report.flip_cycles_max));
      report.waves.push_back(std::move(wave_report));
      continue;
    }
    log_.Append(RolloutEvent::Kind::kBreach, static_cast<int>(w), -1,
                wave_report.breach);
    report.breach = wave_report.breach;
    report.waves.push_back(std::move(wave_report));
    break;
  }

  report.flipped_instances = flipped.size();
  const bool reverting = !report.breach.empty();
  // Reference identity for the fully-new proof: the first instance that
  // actually flipped (targets[0] may be quarantined on its old config).
  const int new_ref =
      !reverting && !flipped.empty() ? flipped.front().instance : -1;
  if (reverting) {
    report.reverted = true;
    RevertAll(&flipped, load_fn, &report);
  } else {
    report.advanced_to_full = true;
  }

  // Identity proof: every instance must be provably on one side. After an
  // advance, flipped instances must agree with the first flipped instance's
  // post-commit identity; after a revert — and always for pinned and
  // quarantined instances — identity must match the Plan snapshot.
  uint64_t new_fingerprint = 0;
  uint64_t new_checksum = 0;
  if (new_ref >= 0) {
    MV_ASSIGN_OR_RETURN(new_fingerprint, fleet_->ConfigFingerprint(new_ref));
    new_checksum = fleet_->TextChecksum(new_ref);
  }
  for (int i = 0; i < fleet_->size(); ++i) {
    const bool expect_new =
        new_ref >= 0 && !fleet_->pinned(i) && !quarantined_[i];
    Result<uint64_t> fingerprint = fleet_->ConfigFingerprint(i);
    const uint64_t checksum = fleet_->TextChecksum(i);
    const uint64_t want_fingerprint =
        expect_new ? new_fingerprint : pre_fingerprint_[i];
    const uint64_t want_checksum = expect_new ? new_checksum : pre_checksum_[i];
    const bool match = fingerprint.ok() && *fingerprint == want_fingerprint &&
                       checksum == want_checksum;
    if (!match) {
      ++report.identity_mismatches;
    }
    log_.Append(RolloutEvent::Kind::kProof, -1, i,
                StrFormat("%s%s%s", fleet_->pinned(i) ? "pinned, " : "",
                          quarantined_[i] ? "quarantined, " : "",
                          match ? (expect_new ? "fully-new" : "fully-old")
                                : "IDENTITY MISMATCH"));
  }
  log_.Append(
      RolloutEvent::Kind::kRolloutDone, -1, -1,
      reverting
          ? "reverted: " + report.breach
          : StrFormat("advanced to 100%% (%llu instance(s)%s)",
                      (unsigned long long)report.flipped_instances,
                      report.quarantined_instances > 0
                          ? StrFormat(", %llu quarantined",
                                      (unsigned long long)
                                          report.quarantined_instances)
                                .c_str()
                          : ""));
  return report;
}

}  // namespace mv

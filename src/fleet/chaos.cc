#include "src/fleet/chaos.h"

#include "src/support/rng.h"

namespace mv {

const char* ChaosEventKindName(ChaosEventKind kind) {
  switch (kind) {
    case ChaosEventKind::kNone:
      return "none";
    case ChaosEventKind::kCrash:
      return "crash";
    case ChaosEventKind::kCrashTorn:
      return "crash-torn";
    case ChaosEventKind::kWedge:
      return "wedge";
    case ChaosEventKind::kSlowCommit:
      return "slow-commit";
    case ChaosEventKind::kDropHealth:
      return "drop-health";
  }
  return "?";
}

ChaosEventKind ChaosSchedule::At(int wave, int instance, int attempt) const {
  const auto scripted = scripted_.find({wave, instance, attempt});
  if (scripted != scripted_.end()) {
    return scripted->second;
  }
  // One hash per slot; the low bits pick whether an event fires, the high
  // bits pick which. Retries draw at a quarter of the first-attempt odds so
  // bounded retry converges (transient faults), while a scripted schedule
  // can still starve every attempt.
  const uint64_t h = SplitMix64(seed_ ^ SplitMix64(static_cast<uint64_t>(wave) * 0x9e37ull +
                                         static_cast<uint64_t>(instance) * 0x51edull +
                                         static_cast<uint64_t>(attempt)));
  const int divisor = attempt <= 1 ? 1 : 4;
  const int roll = static_cast<int>(h % 100);
  if (roll < crash_pct_ / divisor) {
    return (h >> 32) % 2 == 0 ? ChaosEventKind::kCrash
                              : ChaosEventKind::kCrashTorn;
  }
  if (roll < (crash_pct_ + degrade_pct_) / divisor) {
    switch ((h >> 32) % 3) {
      case 0:
        return ChaosEventKind::kWedge;
      case 1:
        return ChaosEventKind::kSlowCommit;
      default:
        return ChaosEventKind::kDropHealth;
    }
  }
  return ChaosEventKind::kNone;
}

void ChaosSchedule::Script(int wave, int instance, int attempt,
                           ChaosEventKind kind) {
  scripted_[{wave, instance, attempt}] = kind;
}

int ChaosSchedule::CrashHit(int wave, int instance, int attempt) const {
  if (scripted_.count({wave, instance, attempt}) > 0) {
    return 0;  // scripted crashes must fire: the first boundary always exists
  }
  const uint64_t h =
      SplitMix64(seed_ ^ 0x5c5c5c5cull ^
            SplitMix64(static_cast<uint64_t>(wave) * 131ull +
                  static_cast<uint64_t>(instance) * 17ull +
                  static_cast<uint64_t>(attempt)));
  return static_cast<int>(h % 8);
}

}  // namespace mv

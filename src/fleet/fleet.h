// Fleet — N independent multiverse VM instances behind one request stream.
//
// The paper commits one image; the ROADMAP north-star is a production fleet
// whose configuration flips roll out under live traffic. A Fleet owns N
// fully independent instances (each its own Vm, Runtime and dispatch engine
// — no shared guest state whatsoever), built from the same sources so their
// images are bit-identical at boot. Identical images mean identical text
// layout, which buys two things:
//   * one shared PlanCache across the fleet: the first instance to plan a
//     configuration transition pays the cold commit, every later instance
//     replays the memoized journal (probe-validated against its own text
//     first, so a diverged instance can never be torn by a foreign plan);
//   * cheap identity proofs: equal TextChecksum + ConfigFingerprint across
//     instances is exactly "this instance runs the same multiverse".
//
// A deterministic generated request stream is sharded by tenant id over the
// unpinned instances; per-tenant variant pinning dedicates an instance to a
// tenant and routes its config overrides through the per-switch
// CommitRefs() path, so the pinned tenant keeps its variant while the
// CommitCoordinator rolls the rest of the fleet around it.
#ifndef MULTIVERSE_SRC_FLEET_FLEET_H_
#define MULTIVERSE_SRC_FLEET_FLEET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/journal.h"
#include "src/core/program.h"
#include "src/fleet/metrics.h"
#include "src/support/status.h"

namespace mv {

struct FleetOptions {
  int instances = 8;
  // Core 0 of every instance serves foreground requests and runs commits;
  // core 1 (when present) runs the in-flight batch a flip must not tear.
  int cores_per_instance = 2;
  uint64_t vm_memory = 1ull << 20;  // per instance; fleets are wide, not deep
  int tenants = 64;                 // tenant id space of the request stream
  uint64_t stream_seed = 0x5eedf1ee7ull;
  bool share_plan_cache = true;
  // Symbol of the guest counter the workload bumps once per handled request;
  // lets DrainLoad() account a torn in-flight batch exactly. Empty disables
  // exact accounting (a torn batch then counts whole).
  std::string served_counter = "served";
  // Base build options; vm_cores/vm_memory and the shared plan cache are
  // overridden from the fields above.
  BuildOptions build;
  // Optional audit trail for the boot path. When set, Build appends a
  // kBootCommit event per committed instance and — if instance k's boot
  // commit fails — a kBootRollback note per already-committed instance it
  // rolls back, so a failed boot leaves the same auditable trail as a
  // reverted rollout. Not owned; must outlive Build().
  RolloutLog* boot_log = nullptr;
};

struct Request {
  uint64_t tenant = 0;
  uint64_t payload = 0;
};

struct TenantPin {
  uint64_t tenant = 0;
  int instance = -1;
  std::vector<std::pair<std::string, int64_t>> overrides;
};

class Fleet {
 public:
  using Assignment = std::vector<std::pair<std::string, int64_t>>;

  static Result<std::unique_ptr<Fleet>> Build(
      const std::vector<ProgramSource>& sources, const FleetOptions& options);

  int size() const { return static_cast<int>(instances_.size()); }
  const FleetOptions& options() const { return options_; }
  Program& program(int i) { return *instances_[i]; }
  MultiverseRuntime& runtime(int i) { return instances_[i]->runtime(); }
  FleetMetrics& metrics() { return metrics_; }

  // --- Configuration ---
  // Writes a switch through its descriptor (correct width), no commit.
  Status WriteSwitch(int instance, const std::string& name, int64_t value);
  Result<int64_t> ReadSwitchValue(int instance, const std::string& name);
  // Boot path: writes `values` into every instance and full-commits each.
  // With a shared plan cache the first instance plans cold, the rest replay.
  Status CommitAll(const Assignment& values);

  // --- Request stream ---
  // Deterministic stream slices: repeated calls advance an internal cursor,
  // so the whole run is a pure function of stream_seed.
  std::vector<Request> GenerateRequests(uint64_t count);
  // Pinned tenant -> its instance; otherwise tenant mod the unpinned pool.
  int RouteTenant(uint64_t tenant) const;
  // Serves each request as a foreground call `handler(tenant, payload)` on
  // its routed instance's core 0, recording latency per instance. A failed
  // call counts as dropped (and does not abort the slice).
  Status Serve(const std::vector<Request>& requests, const std::string& handler);

  // --- In-flight load (what a flip must not tear) ---
  // Starts `load_fn(base, requests)` on `instance`'s core 1 and steps it into
  // the batch. The caller then runs a live commit with mutator core 1.
  Status StartLoad(int instance, const std::string& load_fn, uint64_t base,
                   uint64_t requests, uint64_t warmup_steps = 64);
  // Runs the in-flight batch to completion. A clean halt books the batch as
  // served; a fault, stray trap or step-limit books the unfinished remainder
  // (exact via served_counter) as torn.
  Status DrainLoad(int instance);
  bool load_active(int instance) const { return load_active_[instance]; }

  // --- Per-tenant variant pinning ---
  // Dedicates an instance (taken from the back of the shard pool) to
  // `tenant`: writes the overrides and commits each through the per-switch
  // CommitRefs path, then excludes the instance from sharding and from
  // coordinator rollouts. Re-pinning an already-pinned tenant updates its
  // overrides in place.
  Status PinTenant(uint64_t tenant, const Assignment& overrides);
  const std::vector<TenantPin>& pins() const { return pins_; }
  bool pinned(int instance) const { return pinned_[instance]; }
  std::vector<int> UnpinnedInstances() const;

  // --- Identity proofs ---
  Result<uint64_t> ConfigFingerprint(int instance) {
    return runtime(instance).ConfigFingerprintNow();
  }
  uint64_t TextChecksum(int instance) { return runtime(instance).TextChecksum(); }

  // --- Crash consistency ---
  // Every instance owns a durable write-ahead journal (attached to its
  // runtime's transaction options after boot): post-boot switch writes and
  // commits — pins, CommitAll, coordinator flips — are serialized to it, so
  // a simulated process death mid-commit is recoverable. The journal lives
  // in the Fleet, outside the Program, exactly because it must survive the
  // instance.
  DurableJournal* journal(int instance) { return journals_[instance].get(); }
  // Restart-and-recover after a simulated crash: (1) RecoverFromJournal
  // resolves the dead VM's torn text in place — redo sealed, undo unsealed,
  // checksum-proven fully-old or fully-new; (2) the resolved switch values
  // are read off the recovered image; (3) a replacement instance is built
  // from the stored sources, booted, and committed to those values through
  // the normal journaled path (the dead process's runtime bookkeeping died
  // with it); (4) the replacement's text checksum must equal the recovered
  // one bit-for-bit before it is adopted and the journal re-attached.
  Result<RecoveryOutcome> RestartInstance(int instance);

 private:
  explicit Fleet(const FleetOptions& options)
      : options_(options), metrics_(options.instances) {}

  FleetOptions options_;
  std::vector<ProgramSource> sources_;  // for crash-restart rebuilds
  std::vector<std::unique_ptr<Program>> instances_;
  std::vector<std::unique_ptr<DurableJournal>> journals_;
  std::shared_ptr<PlanCache> plan_cache_;
  FleetMetrics metrics_;
  std::vector<TenantPin> pins_;
  std::vector<bool> pinned_;
  std::vector<bool> load_active_;
  std::vector<uint64_t> load_requests_;      // batch size of the active load
  std::vector<int64_t> load_served_before_;  // served_counter at StartLoad
  uint64_t stream_cursor_ = 0;
};

// The built-in fleet workload: a request processor with two multiversed
// switches. `fast_path` selects between two observably equivalent accounting
// paths (so a mid-rollout fleet stays response-consistent); `log_level`'s off
// variant is empty, so its call site is NOP-eradicated — in-flight batches
// can be parked *inside* the 5-byte site, the adversarial case the live
// protocols exist for. Handler: handle_request(tenant, payload); in-flight
// batch: serve_batch(base, n); served counter: served.
std::string FleetRequestKernelSource();
inline const char* kFleetHandler = "handle_request";
inline const char* kFleetLoadFn = "serve_batch";

}  // namespace mv

#endif  // MULTIVERSE_SRC_FLEET_FLEET_H_
